// Package event is a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, a seeded RNG, and a
// processor-sharing resource model. The scale simulator (internal/sim)
// uses it to replay the paper's experiments — 100k invocations over
// 150 workers — in milliseconds of real time while preserving the
// contention dynamics (shared filesystem, manager link, worker NICs)
// that shape the results.
package event

import (
	"math"
)

// Time is simulated seconds since the start of the run.
type Time = float64

type event struct {
	at  Time
	seq int64 // tie-breaker for determinism
	fn  func()
}

// eventHeap is a binary min-heap of events stored by value. The sift
// routines are hand-rolled rather than container/heap so that pushing
// an event never boxes it through an interface: one slice slot per
// pending event is the whole footprint.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	// Sift up.
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	n := len(q)
	top := q[0]
	q[0] = q[n-1]
	q[n-1] = event{} // release the closure for GC
	q = q[:n-1]
	*h = q
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= len(q) {
			break
		}
		child := l
		if r := l + 1; r < len(q) && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// Sim is a discrete-event simulator. Not safe for concurrent use: the
// entire simulation runs single-threaded for determinism.
type Sim struct {
	now    Time
	queue  eventHeap
	seq    int64
	events int64
	// MaxEvents aborts the run (panic) if exceeded — a backstop against
	// runaway event loops. Zero means no limit.
	MaxEvents int64
}

// NewSim creates a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Events returns the number of events executed so far.
func (s *Sim) Events() int64 { return s.events }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue drains, returning the final
// time.
func (s *Sim) Run() Time {
	for len(s.queue) > 0 {
		e := s.queue.pop()
		s.now = e.at
		s.events++
		if s.MaxEvents > 0 && s.events > s.MaxEvents {
			panic("event: MaxEvents exceeded — runaway event loop")
		}
		e.fn()
	}
	return s.now
}

// RunUntil executes events with at <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		e := s.queue.pop()
		s.now = e.at
		s.events++
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// RNG is a small deterministic random source (splitmix64 core).
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed ^ 0x9E3779B97F4A7C15} }

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -mean * math.Log(u)
}

// Normal returns a normal variate (Box-Muller).
func (r *RNG) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	return mu + sigma*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(Normal(mu, sigma)) scaled so the result has
// the given median: median * exp(sigma * N(0,1)).
func (r *RNG) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(r.Normal(0, sigma))
}
