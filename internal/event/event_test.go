package event

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var log []int
	s.At(3, func() { log = append(log, 3) })
	s.At(1, func() { log = append(log, 1) })
	s.At(2, func() { log = append(log, 2) })
	s.At(1, func() { log = append(log, 11) }) // same time: FIFO by seq
	end := s.Run()
	want := []int{1, 11, 2, 3}
	if len(log) != 4 {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if end != 3 {
		t.Errorf("end time = %f", end)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []Time
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestPastEventClamped(t *testing.T) {
	s := NewSim()
	fired := false
	s.After(5, func() {
		s.At(1, func() { // in the past: clamp to now
			if s.Now() != 5 {
				t.Errorf("past event fired at %f", s.Now())
			}
			fired = true
		})
	})
	s.Run()
	if !fired {
		t.Errorf("clamped event never fired")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	s.RunUntil(5.5)
	if count != 5 {
		t.Errorf("count = %d after RunUntil(5.5)", count)
	}
	if s.Now() != 5.5 {
		t.Errorf("now = %f", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Errorf("count = %d after Run", count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds look identical")
	}
}

func TestRNGDistributions(t *testing.T) {
	r := NewRNG(7)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %f", x)
		}
		sum += x
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("uniform mean = %f", mean)
	}
	// Exponential mean.
	sum = 0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	if mean := sum / float64(n); math.Abs(mean-3.0) > 0.15 {
		t.Errorf("exp mean = %f, want ~3", mean)
	}
	// LogNormal median.
	var xs []float64
	for i := 0; i < n; i++ {
		xs = append(xs, r.LogNormal(10, 0.5))
	}
	sort.Float64s(xs)
	if med := xs[n/2]; math.Abs(med-10) > 0.6 {
		t.Errorf("lognormal median = %f, want ~10", med)
	}
}

func TestFairShareSingleFlow(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 100, 0) // 100 units/s
	var doneAt Time
	fs.Start(500, func() { doneAt = s.Now() })
	s.Run()
	if math.Abs(doneAt-5) > 1e-6 {
		t.Errorf("single flow finished at %f, want 5", doneAt)
	}
}

func TestFairShareTwoEqualFlows(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 100, 0)
	var a, b Time
	fs.Start(500, func() { a = s.Now() })
	fs.Start(500, func() { b = s.Now() })
	s.Run()
	// Sharing halves the rate: both finish at 10.
	if math.Abs(a-10) > 1e-6 || math.Abs(b-10) > 1e-6 {
		t.Errorf("flows finished at %f, %f; want 10, 10", a, b)
	}
}

func TestFairShareLateArrivalSlowsFirst(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 100, 0)
	var a, b Time
	fs.Start(500, func() { a = s.Now() })
	s.After(2.5, func() {
		fs.Start(500, func() { b = s.Now() })
	})
	s.Run()
	// First flow: 250 units alone (2.5s), then shares: remaining 250 at
	// 50/s → finishes at 7.5. Second: 250 shared (5s) + 250 alone
	// (2.5s) → 10.
	if math.Abs(a-7.5) > 1e-6 {
		t.Errorf("first flow at %f, want 7.5", a)
	}
	if math.Abs(b-10) > 1e-6 {
		t.Errorf("second flow at %f, want 10", b)
	}
}

func TestFairSharePerFlowCap(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 1000, 100) // huge capacity, 100/s per flow
	var a Time
	fs.Start(500, func() { a = s.Now() })
	s.Run()
	if math.Abs(a-5) > 1e-6 {
		t.Errorf("capped flow at %f, want 5", a)
	}
}

func TestFairShareCancel(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 100, 0)
	fired := false
	f := fs.Start(500, func() { fired = true })
	var b Time
	fs.Start(500, func() { b = s.Now() })
	s.After(1, func() { fs.Cancel(f) })
	s.Run()
	if fired {
		t.Errorf("cancelled flow completed")
	}
	// b receives 50 units during the shared first second, then the
	// remaining 450 alone at 100/s → finishes at 5.5.
	if math.Abs(b-5.5) > 1e-6 {
		t.Errorf("remaining flow at %f, want 5.5", b)
	}
	if fs.Active() != 0 {
		t.Errorf("active = %d", fs.Active())
	}
}

func TestFairShareManyFlowsConservation(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 1000, 0)
	const n = 200
	var last Time
	total := 0.0
	for i := 0; i < n; i++ {
		size := float64(100 + i)
		total += size
		fs.Start(size, func() { last = s.Now() })
	}
	s.Run()
	// Work conservation: everything finishes no earlier than
	// total/capacity, and close to it (the largest flow lingers
	// slightly).
	lower := total / 1000
	if last < lower-1e-6 {
		t.Errorf("finished at %f, impossible before %f", last, lower)
	}
	if last > lower*1.3 {
		t.Errorf("finished at %f, way beyond work-conserving bound %f", last, lower)
	}
}

func TestDualFairShareIOPSDominates(t *testing.T) {
	s := NewSim()
	// 1000 bytes/s, 10 ops/s.
	d := NewDualFairShare(s, 1000, 0, 10, 0)
	var doneAt Time
	d.Start(100, 50, func() { doneAt = s.Now() }) // 0.1s of bytes, 5s of ops
	s.Run()
	if math.Abs(doneAt-5) > 1e-6 {
		t.Errorf("dual flow at %f, want 5 (ops-bound)", doneAt)
	}
}

// Property: with k simultaneous equal flows, each finishes at
// k*size/capacity.
func TestQuickFairShareEqualFlows(t *testing.T) {
	f := func(k uint8, sz uint16) bool {
		n := int(k%8) + 1
		size := float64(sz%1000) + 1
		s := NewSim()
		fs := NewFairShare(s, 100, 0)
		finish := make([]Time, n)
		for i := 0; i < n; i++ {
			i := i
			fs.Start(size, func() { finish[i] = s.Now() })
		}
		s.Run()
		want := float64(n) * size / 100
		for _, ft := range finish {
			if math.Abs(ft-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
