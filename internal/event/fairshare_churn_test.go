package event

import "testing"

// TestFairShareStaleCancelRecycled pins the handle-safety contract the
// manager's transfer teardown relies on: a Flow handle kept past its
// flow's completion must cancel nothing — not before the node is
// recycled (dead flag) and, critically, not after a later Start reuses
// the node (generation check). A regression here would let worker-death
// cleanup silently kill an unrelated tenant's in-flight transfer.
func TestFairShareStaleCancelRecycled(t *testing.T) {
	s := NewSim()
	fs := NewFairShare(s, 100, 0)

	fired := 0
	h1 := fs.Start(100, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("first flow fired %d times, want 1", fired)
	}
	// Completed node sits on the free list: stale Cancel is a no-op.
	fs.Cancel(h1)
	if fs.Active() != 0 {
		t.Fatalf("stale Cancel disturbed the empty resource: Active=%d", fs.Active())
	}

	// The next Start reuses the node under a bumped generation; the old
	// handle must not reach through to the new flow.
	h2 := fs.Start(100, func() { fired++ })
	if h2.n != h1.n {
		t.Fatalf("free list did not recycle the node (got %p, want %p)", h2.n, h1.n)
	}
	if h2.gen == h1.gen {
		t.Fatal("recycled node kept its generation; stale handles would alias")
	}
	fs.Cancel(h1)
	if fs.Active() != 1 {
		t.Fatalf("stale Cancel killed the recycled flow: Active=%d, want 1", fs.Active())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("recycled flow fired %d completions total, want 2", fired)
	}
	// And the genuinely live handle still cancels cleanly.
	h3 := fs.Start(100, func() { fired++ })
	fs.Cancel(h3)
	s.Run()
	if fired != 2 || fs.Active() != 0 {
		t.Fatalf("live Cancel failed: fired=%d Active=%d", fired, fs.Active())
	}
}

// TestFairShareCancelChurn drives a random mix of starts, partial
// advances, live cancels, and repeated stale cancels (handles are kept
// forever and re-cancelled long after completion and recycling),
// checking exact completion bookkeeping: every flow either completes
// once or was cancelled while live, never both, and stale cancels
// never change the outcome of the node's next occupant.
func TestFairShareCancelChurn(t *testing.T) {
	const (
		statePending = iota
		stateDone
		stateCancelled
	)
	s := NewSim()
	fs := NewFairShare(s, 50, 30)
	rng := NewRNG(11)

	var handles []Flow
	var state []int
	start := func() {
		i := len(state)
		state = append(state, statePending)
		handles = append(handles, fs.Start(rng.Uniform(1, 200), func() {
			if state[i] != statePending {
				t.Fatalf("flow %d completed from state %d", i, state[i])
			}
			state[i] = stateDone
		}))
	}
	for round := 0; round < 400; round++ {
		switch rng.Intn(4) {
		case 0, 1:
			start()
		case 2:
			// Cancel a uniformly random handle from the full history —
			// mostly stale (done or already cancelled), sometimes live.
			if len(handles) > 0 {
				i := rng.Intn(len(handles))
				fs.Cancel(handles[i])
				if state[i] == statePending {
					state[i] = stateCancelled
				}
			}
		default:
			s.RunUntil(s.Now() + rng.Uniform(0, 3))
		}
	}
	s.Run()
	if fs.Active() != 0 {
		t.Fatalf("flows still active after drain: %d", fs.Active())
	}
	done, cancelled := 0, 0
	for i, st := range state {
		switch st {
		case stateDone:
			done++
		case stateCancelled:
			cancelled++
		default:
			t.Errorf("flow %d neither completed nor cancelled", i)
		}
	}
	if done == 0 || cancelled == 0 {
		t.Fatalf("degenerate churn: done=%d cancelled=%d", done, cancelled)
	}
}
