package event

import (
	"container/heap"
	"math"
)

// FairShare models a processor-sharing resource: a server with fixed
// total capacity divided equally among active flows, with an optional
// per-flow rate cap. It is the standard model for a shared filesystem's
// aggregate bandwidth, a NIC, or a disk serving concurrent readers —
// the contention that produces L1's long tail in the paper.
//
// The implementation uses virtual service time: every active flow
// receives service at the same instantaneous rate r(t) =
// min(Capacity/n(t), PerFlowCap), so a flow needing S units finishes
// when the accumulated per-flow service V(t) grows by S. Arrivals and
// departures are O(log n).
type FairShare struct {
	sim *Sim
	// Capacity is the total service units per second (e.g. bytes/s).
	Capacity float64
	// PerFlowCap bounds a single flow's rate (0 = unbounded).
	PerFlowCap float64

	v       float64 // accumulated per-flow service
	lastT   Time
	flows   flowHeap
	free    []*flow // recycled nodes; steady-state Start allocates nothing
	seq     int64
	wakeGen int64 // generation of the authoritative pending wake
}

// Flow is a cancellation handle for one request on a FairShare
// resource. The zero Flow is valid and cancels nothing. Handles stay
// safe after completion: the underlying node is recycled, and the
// generation check makes Cancel on a stale handle a no-op.
type Flow struct {
	n   *flow
	gen uint64
}

// flow is the heap node for one active request.
type flow struct {
	needV float64 // v value at which this flow completes
	seq   int64
	gen   uint64 // bumped on every reuse; validates Flow handles
	done  func()
	idx   int
	dead  bool
}

type flowHeap []*flow

func (h flowHeap) Len() int { return len(h) }
func (h flowHeap) Less(i, j int) bool {
	if h[i].needV != h[j].needV {
		return h[i].needV < h[j].needV
	}
	return h[i].seq < h[j].seq
}
func (h flowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *flowHeap) Push(x any) {
	f := x.(*flow)
	f.idx = len(*h)
	*h = append(*h, f)
}
func (h *flowHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}

// NewFairShare creates a fair-share resource attached to a simulator.
func NewFairShare(sim *Sim, capacity, perFlowCap float64) *FairShare {
	return &FairShare{sim: sim, Capacity: capacity, PerFlowCap: perFlowCap, lastT: sim.Now()}
}

// Active returns the number of flows in service.
func (fs *FairShare) Active() int { return len(fs.flows) }

// rate returns the current per-flow service rate.
func (fs *FairShare) rate() float64 {
	n := len(fs.flows)
	if n == 0 {
		return 0
	}
	r := fs.Capacity / float64(n)
	if fs.PerFlowCap > 0 && r > fs.PerFlowCap {
		r = fs.PerFlowCap
	}
	return r
}

// advance accrues virtual service up to the current simulation time.
func (fs *FairShare) advance() {
	now := fs.sim.Now()
	if now > fs.lastT {
		if r := fs.rate(); r > 0 {
			fs.v += (now - fs.lastT) * r
		}
		fs.lastT = now
	}
}

// Start begins a flow needing `size` service units; done fires at its
// completion time.
func (fs *FairShare) Start(size float64, done func()) Flow {
	fs.advance()
	if size < 0 {
		size = 0
	}
	fs.seq++
	var f *flow
	if n := len(fs.free); n > 0 {
		f = fs.free[n-1]
		fs.free[n-1] = nil
		fs.free = fs.free[:n-1]
	} else {
		f = &flow{}
	}
	f.needV = fs.v + size
	f.seq = fs.seq
	f.gen++
	f.done = done
	f.dead = false
	heap.Push(&fs.flows, f)
	fs.schedule()
	return Flow{n: f, gen: f.gen}
}

// recycle returns a finished node to the free list.
func (fs *FairShare) recycle(f *flow) {
	f.done = nil
	fs.free = append(fs.free, f)
}

// Cancel aborts a flow without firing its completion. Stale handles
// (already completed, already cancelled, or zero) are no-ops.
func (fs *FairShare) Cancel(f Flow) {
	if f.n == nil || f.n.dead || f.n.gen != f.gen {
		return
	}
	fs.advance()
	f.n.dead = true
	heap.Remove(&fs.flows, f.n.idx)
	fs.recycle(f.n)
	fs.schedule()
}

// schedule (re)arms the wake event for the earliest completion. A
// generation counter invalidates previously scheduled wakes so that
// rate changes do not leave chains of live stale events (which would
// make a run quadratic in the number of flows).
func (fs *FairShare) schedule() {
	if len(fs.flows) == 0 {
		return
	}
	r := fs.rate()
	if r <= 0 {
		return
	}
	next := fs.flows[0]
	dt := (next.needV - fs.v) / r
	if dt < 0 {
		dt = 0
	}
	fs.wakeGen++
	gen := fs.wakeGen
	fs.sim.At(fs.sim.Now()+dt, func() {
		if gen == fs.wakeGen {
			fs.wake()
		}
	})
}

// wake completes every flow whose service requirement is met, then
// re-arms. The tolerance is relative to the virtual-service magnitude:
// v accumulates over an entire run (e.g. 10^13 bytes), so a fixed
// epsilon would be swamped by float64 rounding and the wake would
// reschedule forever at the same timestamp.
func (fs *FairShare) wake() {
	fs.advance()
	eps := 1e-9 * (math.Abs(fs.v) + 1)
	for len(fs.flows) > 0 && fs.flows[0].needV <= fs.v+eps {
		f := heap.Pop(&fs.flows).(*flow)
		if f.dead {
			continue
		}
		f.dead = true
		done := f.done
		fs.recycle(f)
		done()
	}
	fs.schedule()
}

// EstimateAlone returns the uncontended duration for a request of the
// given size.
func (fs *FairShare) EstimateAlone(size float64) float64 {
	r := fs.Capacity
	if fs.PerFlowCap > 0 && fs.PerFlowCap < r {
		r = fs.PerFlowCap
	}
	if r <= 0 {
		return math.Inf(1)
	}
	return size / r
}

// DualFairShare couples two fair-share constraints (bandwidth and
// IOPS, as on the paper's Panasas system): a request needs `bytes` of
// bandwidth service and `ops` of operation service; it completes when
// the slower of the two finishes.
type DualFairShare struct {
	bw  *FairShare
	ops *FairShare
}

// NewDualFairShare builds the coupled resource. perFlowBW caps one
// client's streaming rate; perFlowOps caps one client's operation rate
// (metadata RPCs are latency-bound per client long before the server's
// aggregate IOPS ceiling).
func NewDualFairShare(sim *Sim, bwCapacity, perFlowBW, opsCapacity, perFlowOps float64) *DualFairShare {
	return &DualFairShare{
		bw:  NewFairShare(sim, bwCapacity, perFlowBW),
		ops: NewFairShare(sim, opsCapacity, perFlowOps),
	}
}

// Active returns the number of in-flight requests (bandwidth view).
func (d *DualFairShare) Active() int { return d.bw.Active() }

// Start begins a request; done fires when both constraints are
// satisfied.
func (d *DualFairShare) Start(bytes, ops float64, done func()) {
	remaining := 2
	finish := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	d.bw.Start(bytes, finish)
	d.ops.Start(ops, finish)
}
