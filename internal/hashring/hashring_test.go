package hashring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEmptyRing(t *testing.T) {
	r := New(0)
	if got := r.Lookup("key"); got != "" {
		t.Errorf("Lookup on empty ring = %q", got)
	}
	if seq := r.Sequence("key", 5); seq != nil {
		t.Errorf("Sequence on empty ring = %v", seq)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestAddRemove(t *testing.T) {
	r := New(16)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	r.Add("a") // duplicate is a no-op
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	r.Remove("b")
	r.Remove("b") // double remove is a no-op
	if r.Len() != 2 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
	for i := 0; i < 50; i++ {
		got := r.Lookup(fmt.Sprintf("key-%d", i))
		if got == "b" || got == "" {
			t.Errorf("Lookup returned removed/empty member %q", got)
		}
	}
}

func TestLookupStability(t *testing.T) {
	r := New(64)
	for i := 0; i < 10; i++ {
		r.Add(fmt.Sprintf("w%02d", i))
	}
	before := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("lib-%d", i)
		before[k] = r.Lookup(k)
	}
	// Removing one member must only remap keys that were owned by it.
	r.Remove("w03")
	moved := 0
	for k, owner := range before {
		now := r.Lookup(k)
		if owner == "w03" {
			if now == "w03" {
				t.Errorf("key %q still maps to removed member", k)
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed member were remapped", moved)
	}
}

func TestSequenceProperties(t *testing.T) {
	r := New(32)
	members := []string{"a", "b", "c", "d", "e"}
	for _, m := range members {
		r.Add(m)
	}
	seq := r.Sequence("some-library", 0)
	if len(seq) != len(members) {
		t.Fatalf("full sequence has %d members, want %d", len(seq), len(members))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		if seen[m] {
			t.Errorf("sequence repeats member %q", m)
		}
		seen[m] = true
	}
	short := r.Sequence("some-library", 2)
	if len(short) != 2 || short[0] != seq[0] || short[1] != seq[1] {
		t.Errorf("short sequence %v is not a prefix of %v", short, seq)
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	r := New(64)
	n := 8
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	counts := map[string]int{}
	total := 8000
	for i := 0; i < total; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.04 || frac > 0.30 {
			t.Errorf("member %s owns %.1f%% of keys — badly unbalanced", m, frac*100)
		}
	}
}

// Property: Lookup is deterministic and always returns a member.
func TestQuickLookupValid(t *testing.T) {
	r := New(16)
	members := map[string]bool{}
	for i := 0; i < 7; i++ {
		m := fmt.Sprintf("m%d", i)
		members[m] = true
		r.Add(m)
	}
	f := func(key string) bool {
		a := r.Lookup(key)
		b := r.Lookup(key)
		return a == b && members[a]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
