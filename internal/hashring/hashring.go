// Package hashring implements the consistent hash ring of connected
// workers the manager walks when placing libraries (§3.5.2): "the
// manager sequentially checks a hash ring of connected workers to see
// if any is available to run the library."
package hashring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// Ring is a consistent hash ring of member names. It is safe for
// concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []point // sorted by hash
	members  map[string]bool
}

type point struct {
	hash   uint64
	member string
}

// New creates a ring with the given number of virtual points per
// member (more points → smoother distribution). replicas < 1 defaults
// to 64.
func New(replicas int) *Ring {
	if replicas < 1 {
		replicas = 64
	}
	return &Ring{replicas: replicas, members: map[string]bool{}}
}

func hashOf(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		h := hashOf(member + "#" + string(rune('0'+i%10)) + string(rune('a'+i/10)))
		r.points = append(r.points, point{hash: h, member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	out := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			out = append(out, p)
		}
	}
	r.points = out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the members, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning key, or "" if the ring is empty.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Partition maps a key to one of n fixed partitions by hashing it
// with the ring's member hash. Unlike ring membership this is a pure
// function — the sharded dispatch plane uses it as the stable "home"
// partition for a key when no live-worker routing is possible yet.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(hashOf(key) % uint64(n))
}

// Sequence returns up to n distinct members in ring order starting at
// key's position — the order the manager checks workers for library
// placement. n <= 0 means all members.
func (r *Ring) Sequence(key string, n int) []string {
	return r.AppendSequence(nil, key, n)
}

// AppendSequence is Sequence appending into dst — hot callers walk the
// ring every placement, so they keep one scratch slice and reuse it.
// Deduplication is a linear scan of the appended run: member counts
// are small and the scan beats allocating a set per walk.
func (r *Ring) AppendSequence(dst []string, key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return dst
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hashOf(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	start := len(dst)
	for i := 0; i < len(r.points) && len(dst)-start < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		dup := false
		for _, m := range dst[start:] {
			if m == p.member {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p.member)
		}
	}
	return dst
}
