// Package dasklite is the Dask-style lazy task graph counterpart to
// the Parsl layer: applications build a graph of Delayed nodes and
// compute it at the end, instead of eagerly submitting futures. The
// paper (§5) presents TaskVine as an execution engine "fully
// integrated with popular libraries like Parsl and Dask"; this package
// plays Dask's role, executing graphs through any parsl.Executor —
// including the TaskVineExecutor, which turns each node into a
// FunctionCall against a context-retaining library.
//
// Shared nodes (diamond dependencies) are computed exactly once;
// independent subgraphs run concurrently.
package dasklite

import (
	"fmt"
	"sync"

	"repro/internal/minipy"
	"repro/internal/parsl"
)

// Delayed is a lazy value: either a literal or a deferred function
// application over other Delayed values.
type Delayed struct {
	fn   *minipy.Func
	deps []*Delayed
	lit  minipy.Value

	once sync.Once
	val  minipy.Value
	err  error
}

// Value wraps a literal as a leaf node.
func Value(v minipy.Value) *Delayed {
	return &Delayed{lit: v}
}

// Call defers fn over the given arguments.
func Call(fn *minipy.Func, args ...*Delayed) *Delayed {
	return &Delayed{fn: fn, deps: args}
}

// IsLeaf reports whether the node is a literal.
func (d *Delayed) IsLeaf() bool { return d.fn == nil }

// Count returns the number of distinct computation nodes (excluding
// leaves) in the graph rooted at d.
func (d *Delayed) Count() int {
	seen := map[*Delayed]bool{}
	var walk func(n *Delayed) int
	walk = func(n *Delayed) int {
		if n == nil || seen[n] {
			return 0
		}
		seen[n] = true
		total := 0
		if !n.IsLeaf() {
			total = 1
		}
		for _, dep := range n.deps {
			total += walk(dep)
		}
		return total
	}
	return walk(d)
}

// compute resolves the node exactly once, recursively resolving its
// dependencies in parallel first.
func (d *Delayed) compute(exec parsl.Executor) (minipy.Value, error) {
	d.once.Do(func() {
		if d.IsLeaf() {
			if d.lit == nil {
				d.err = fmt.Errorf("dasklite: leaf with nil value")
				return
			}
			d.val = d.lit
			return
		}
		args := make([]minipy.Value, len(d.deps))
		errs := make([]error, len(d.deps))
		var wg sync.WaitGroup
		for i, dep := range d.deps {
			if dep == nil {
				errs[i] = fmt.Errorf("dasklite: nil dependency at position %d", i)
				continue
			}
			wg.Add(1)
			go func(i int, dep *Delayed) {
				defer wg.Done()
				args[i], errs[i] = dep.compute(exec)
			}(i, dep)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				d.err = err
				return
			}
		}
		d.val, d.err = exec.Execute(d.fn, args)
	})
	return d.val, d.err
}

// Compute resolves the graph rooted at d through the executor.
func (d *Delayed) Compute(exec parsl.Executor) (minipy.Value, error) {
	if d == nil {
		return nil, fmt.Errorf("dasklite: Compute on nil graph")
	}
	return d.compute(exec)
}

// ComputeAll resolves several roots concurrently, sharing any common
// subgraphs between them.
func ComputeAll(exec parsl.Executor, roots ...*Delayed) ([]minipy.Value, error) {
	out := make([]minipy.Value, len(roots))
	errs := make([]error, len(roots))
	var wg sync.WaitGroup
	for i, r := range roots {
		if r == nil {
			errs[i] = fmt.Errorf("dasklite: nil root at position %d", i)
			continue
		}
		wg.Add(1)
		go func(i int, r *Delayed) {
			defer wg.Done()
			out[i], errs[i] = r.Compute(exec)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Map builds one Call node per item — the dask.bag-ish fanout helper.
func Map(fn *minipy.Func, items []minipy.Value) []*Delayed {
	out := make([]*Delayed, len(items))
	for i, it := range items {
		out[i] = Call(fn, Value(it))
	}
	return out
}

// Reduce folds a slice of Delayed values pairwise with a two-argument
// function, producing a balanced tree so independent pairs reduce in
// parallel (the dask tree-reduce pattern).
func Reduce(fn *minipy.Func, items []*Delayed) (*Delayed, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("dasklite: Reduce of empty list")
	}
	level := items
	for len(level) > 1 {
		var next []*Delayed
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, Call(fn, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0], nil
}
