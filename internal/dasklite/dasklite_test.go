package dasklite

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/parsl"
	"repro/taskvine"
)

func defineFn(t *testing.T, ip *minipy.Interp, src, name string) *minipy.Func {
	t.Helper()
	env, err := ip.RunModule(src, "app")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("no %q", name)
	}
	return v.(*minipy.Func)
}

// countingExecutor wraps a LocalExecutor and counts Execute calls.
type countingExecutor struct {
	inner parsl.Executor
	n     atomic.Int64
}

func (c *countingExecutor) Execute(fn *minipy.Func, args []minipy.Value) (minipy.Value, error) {
	c.n.Add(1)
	return c.inner.Execute(fn, args)
}

func newLocal(t *testing.T) (*minipy.Interp, *countingExecutor) {
	t.Helper()
	ip := minipy.NewInterp(nil)
	return ip, &countingExecutor{inner: parsl.NewLocalExecutor(ip)}
}

func TestComputeChain(t *testing.T) {
	ip, exec := newLocal(t)
	add := defineFn(t, ip, "def add(a, b):\n    return a + b\n", "add")
	dbl := defineFn(t, ip, "def dbl(a):\n    return a * 2\n", "dbl")

	g := Call(add, Call(dbl, Value(minipy.Int(3))), Value(minipy.Int(4)))
	v, err := g.Compute(exec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Repr() != "10" {
		t.Errorf("graph = %s, want 10", v.Repr())
	}
	if g.Count() != 2 {
		t.Errorf("count = %d", g.Count())
	}
}

func TestDiamondComputedOnce(t *testing.T) {
	ip, exec := newLocal(t)
	add := defineFn(t, ip, "def add(a, b):\n    return a + b\n", "add")
	inc := defineFn(t, ip, "def inc(a):\n    return a + 1\n", "inc")

	shared := Call(inc, Value(minipy.Int(10))) // 11
	left := Call(inc, shared)                  // 12
	right := Call(inc, shared)                 // 12
	root := Call(add, left, right)             // 24
	v, err := root.Compute(exec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Repr() != "24" {
		t.Errorf("diamond = %s", v.Repr())
	}
	// shared must execute once: 4 nodes total.
	if got := exec.n.Load(); got != 4 {
		t.Errorf("executed %d nodes, want 4", got)
	}
	// Recompute is memoized, no new executions.
	if _, err := root.Compute(exec); err != nil {
		t.Fatal(err)
	}
	if got := exec.n.Load(); got != 4 {
		t.Errorf("recompute re-executed: %d", got)
	}
}

func TestErrorPropagates(t *testing.T) {
	ip, exec := newLocal(t)
	boom := defineFn(t, ip, "def boom(a):\n    return 1 / a\n", "boom")
	inc := defineFn(t, ip, "def inc(a):\n    return a + 1\n", "inc")
	g := Call(inc, Call(boom, Value(minipy.Int(0))))
	if _, err := g.Compute(exec); err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("error not propagated: %v", err)
	}
	// And it is sticky (memoized).
	if _, err := g.Compute(exec); err == nil {
		t.Errorf("memoized error lost")
	}
}

func TestNilSafety(t *testing.T) {
	ip, exec := newLocal(t)
	inc := defineFn(t, ip, "def inc(a):\n    return a + 1\n", "inc")
	var nilG *Delayed
	if _, err := nilG.Compute(exec); err == nil {
		t.Errorf("nil graph computed")
	}
	if _, err := Call(inc, nil).Compute(exec); err == nil {
		t.Errorf("nil dependency computed")
	}
	if _, err := (&Delayed{}).Compute(exec); err == nil {
		t.Errorf("empty leaf computed")
	}
	if _, err := ComputeAll(exec, nil); err == nil {
		t.Errorf("nil root computed")
	}
}

func TestMapReduce(t *testing.T) {
	ip, exec := newLocal(t)
	sq := defineFn(t, ip, "def sq(a):\n    return a * a\n", "sq")
	add := defineFn(t, ip, "def add(a, b):\n    return a + b\n", "add")

	items := make([]minipy.Value, 10)
	for i := range items {
		items[i] = minipy.Int(int64(i + 1))
	}
	squares := Map(sq, items)
	root, err := Reduce(add, squares)
	if err != nil {
		t.Fatal(err)
	}
	v, err := root.Compute(exec)
	if err != nil {
		t.Fatal(err)
	}
	// 1^2 + ... + 10^2 = 385.
	if v.Repr() != "385" {
		t.Errorf("sum of squares = %s", v.Repr())
	}
	if _, err := Reduce(add, nil); err == nil {
		t.Errorf("empty reduce accepted")
	}
}

func TestReduceSingleItem(t *testing.T) {
	ip, exec := newLocal(t)
	add := defineFn(t, ip, "def add(a, b):\n    return a + b\n", "add")
	root, err := Reduce(add, []*Delayed{Value(minipy.Int(7))})
	if err != nil {
		t.Fatal(err)
	}
	v, err := root.Compute(exec)
	if err != nil || v.Repr() != "7" {
		t.Errorf("single reduce = %v %v", v, err)
	}
}

func TestComputeAllSharesSubgraphs(t *testing.T) {
	ip, exec := newLocal(t)
	inc := defineFn(t, ip, "def inc(a):\n    return a + 1\n", "inc")
	shared := Call(inc, Value(minipy.Int(1)))
	a := Call(inc, shared)
	b := Call(inc, shared)
	vals, err := ComputeAll(exec, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Repr() != "3" || vals[1].Repr() != "3" {
		t.Errorf("vals = %s %s", vals[0].Repr(), vals[1].Repr())
	}
	if exec.n.Load() != 3 {
		t.Errorf("executed %d, want 3 (shared once)", exec.n.Load())
	}
}

func TestConcurrentComputeSafe(t *testing.T) {
	ip, exec := newLocal(t)
	inc := defineFn(t, ip, "def inc(a):\n    return a + 1\n", "inc")
	g := Call(inc, Call(inc, Value(minipy.Int(0))))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := g.Compute(exec); err != nil || v.Repr() != "2" {
				t.Errorf("concurrent compute: %v %v", v, err)
			}
		}()
	}
	wg.Wait()
	if exec.n.Load() != 2 {
		t.Errorf("executed %d, want 2", exec.n.Load())
	}
}

// The dask path through the real engine: a graph of chemistry tasks
// over the TaskVineExecutor, each node a FunctionCall against a
// retained library.
func TestDaskOverTaskVine(t *testing.T) {
	m, err := taskvine.NewManager(taskvine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	if err := m.SpawnLocalWorkers(2, taskvine.WorkerOptions{}); err != nil {
		t.Fatal(err)
	}
	src := `
def featurize(smiles):
    import chemtools
    return chemtools.featurize(chemtools.parse_smiles(smiles))

def dim(feats):
    return len(feats)

def add(a, b):
    return a + b
`
	env, err := m.Interp().RunModule(src, "app")
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) *minipy.Func {
		v, _ := env.Get(name)
		return v.(*minipy.Func)
	}
	// Partial allocations let the three libraries coexist on one worker
	// instead of evicting each other.
	exec := parsl.NewTaskVineExecutor(m, parsl.ExecutorOptions{
		Mode: parsl.ModeFunctionCall, Slots: 4, ExecMode: core.ExecFork,
		Resources: core.Resources{Cores: 8, MemoryMB: 8 << 10, DiskMB: 8 << 10},
	})
	defer exec.Close()

	mols := []minipy.Value{minipy.Str("CCO"), minipy.Str("CCC"), minipy.Str("CCN"), minipy.Str("COC")}
	var dims []*Delayed
	for _, mol := range mols {
		dims = append(dims, Call(get("dim"), Call(get("featurize"), Value(mol))))
	}
	root, err := Reduce(get("add"), dims)
	if err != nil {
		t.Fatal(err)
	}
	v, err := root.Compute(exec)
	if err != nil {
		t.Fatal(err)
	}
	// 4 molecules x 16 features each.
	if v.Repr() != "64" {
		t.Errorf("total dims = %s, want 64", v.Repr())
	}
	// Context reuse across the graph: few libraries, many invocations.
	instances, served := m.LibraryDeployments()
	if served < 11 { // 4 featurize + 4 dim + 3 add
		t.Errorf("served = %d", served)
	}
	if instances > 6 {
		t.Errorf("instances = %d, expected few", instances)
	}
}
