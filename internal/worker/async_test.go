package worker

import (
	"encoding/binary"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/proto"
)

// stallingPeer accepts data-server connections, reads the request, and
// never answers — the pathological source that used to wedge the
// worker's whole message loop.
func stallingPeer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				buf := make([]byte, 256)
				nc.Read(buf)
				<-done
			}()
		}
	}()
	var once bool
	return ln.Addr().String(), func() {
		if !once {
			once = true
			close(done)
			ln.Close()
		}
	}
}

func TestStalledFetchDoesNotBlockExecution(t *testing.T) {
	// The tentpole acceptance test: a peer fetch hanging on a stalled
	// source must not stop the worker from running unrelated work. With
	// the old inline handleFetchFile, the control loop sat inside the
	// fetch for the full PeerIOTimeout and the task below never started.
	addr, stop := stallingPeer(t)
	defer stop()

	fm := newFakeManager(t)
	_, _ = startWorker(t, fm, Config{ID: "w", PeerIOTimeout: 10 * time.Second})

	if err := fm.conn.Send(proto.MsgFetchFile, proto.FetchFile{
		ID: "deadbeef", Name: "stuck.bin", FromAddr: addr, Cache: true,
	}); err != nil {
		t.Fatal(err)
	}
	spec := core.TaskSpec{
		ID:        1,
		Script:    "import vine_runtime\nvine_runtime.store_result(41 + 1)\n",
		Resources: core.Resources{Cores: 1},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}

	// The result must arrive while the fetch is still hanging — well
	// inside the 10s idle timeout the fetch is budgeted.
	type frame struct {
		t   proto.MsgType
		raw []byte
	}
	got := make(chan frame, 1)
	go func() {
		typ, raw, err := fm.conn.Recv()
		if err == nil {
			got <- frame{typ, raw}
		}
	}()
	select {
	case f := <-got:
		if f.t != proto.MsgResult {
			t.Fatalf("expected the task result first, got %v", f.t)
		}
		res, _ := proto.DecodeResult(f.raw)
		if !res.Ok {
			t.Fatalf("task failed: %s", res.Err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("task blocked behind a stalled peer fetch")
	}

	// Release the stall; the fetch fails (connection cut mid-request)
	// and its FileAck arrives — completing, not wedging.
	stop()
	ack, _ := proto.Decode[proto.FileAck](fm.expect(t, proto.MsgFileAck))
	if ack.ID != "deadbeef" || ack.Ok {
		t.Errorf("stalled fetch ack = %+v, want a failure for deadbeef", ack)
	}
}

func TestDuplicateFetchesShareOneWireTransfer(t *testing.T) {
	// Wire-level single flight: several FetchFile frames for one object
	// cost one data-server connection; each still gets its own FileAck.
	obj := content.NewBlob("shared.bin", []byte("once over the wire"))
	var accepts atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func() {
				defer nc.Close()
				pc := proto.NewConn(nc)
				typ, raw, err := pc.Recv()
				if err != nil || typ != proto.MsgGetFile {
					return
				}
				req, _ := proto.Decode[proto.GetFile](raw)
				if req.ID != obj.ID {
					return
				}
				// Linger before answering so the duplicates pile up on the
				// in-flight transfer instead of finding the object cached.
				time.Sleep(100 * time.Millisecond)
				_ = pc.SendBulk(proto.MsgFileDataBulk, proto.FileHdr{
					ID: obj.ID, Name: obj.Name, Kind: int(obj.Kind), LogicalSize: obj.LogicalSize,
				}, obj.Data)
			}()
		}
	}()

	fm := newFakeManager(t)
	w, _ := startWorker(t, fm, Config{ID: "w"})
	const n = 3
	for i := 0; i < n; i++ {
		if err := fm.conn.Send(proto.MsgFetchFile, proto.FetchFile{
			ID: obj.ID, Name: obj.Name, FromAddr: ln.Addr().String(), Cache: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ack, _ := proto.Decode[proto.FileAck](fm.expect(t, proto.MsgFileAck))
		if !ack.Ok {
			t.Fatalf("fetch %d failed: %s", i, ack.Err)
		}
	}
	if got := accepts.Load(); got != 1 {
		t.Errorf("%d wire transfers for %d duplicate fetches, want 1", got, n)
	}
	if st := w.Stats(); st.Data.Fetches != 1 || st.Data.Deduped != n-1 {
		t.Errorf("data plane stats = %+v, want 1 fetch and %d deduped", st.Data, n-1)
	}
}

func TestUndecodableFrameIsCountedAndReported(t *testing.T) {
	// Satellite bugfix: a frame that fails to decode must not vanish
	// silently — the worker counts it and tells the manager via MsgLog,
	// and the control loop keeps serving afterwards.
	fm := newFakeManager(t)
	w, _ := startWorker(t, fm, Config{ID: "w"})

	// A MsgRunTask frame whose body is not JSON.
	garbage := []byte("this is not json")
	frame := make([]byte, 4+1+len(garbage))
	binary.BigEndian.PutUint32(frame[:4], uint32(1+len(garbage)))
	frame[4] = byte(proto.MsgRunTask)
	copy(frame[5:], garbage)
	if _, err := fm.nc.Write(frame); err != nil {
		t.Fatal(err)
	}

	lm, _ := proto.Decode[proto.LogMsg](fm.expect(t, proto.MsgLog))
	if lm.Worker != "w" || !strings.Contains(lm.Text, "protocol error") {
		t.Errorf("log message = %+v", lm)
	}
	if got := w.Stats().ProtocolErrors; got != 1 {
		t.Errorf("ProtocolErrors = %d, want 1", got)
	}

	// An unknown message type is a protocol error too.
	unknown := []byte{0, 0, 0, 1, 0xEE}
	if _, err := fm.nc.Write(unknown); err != nil {
		t.Fatal(err)
	}
	lm2, _ := proto.Decode[proto.LogMsg](fm.expect(t, proto.MsgLog))
	if !strings.Contains(lm2.Text, "unknown") {
		t.Errorf("unknown-type log = %+v", lm2)
	}
	if got := w.Stats().ProtocolErrors; got != 2 {
		t.Errorf("ProtocolErrors = %d, want 2", got)
	}

	// The loop survived: a valid task still runs.
	spec := core.TaskSpec{
		ID:        7,
		Script:    "import vine_runtime\nvine_runtime.store_result(3)\n",
		Resources: core.Resources{Cores: 1},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if !res.Ok {
		t.Errorf("task after protocol errors failed: %s", res.Err)
	}
}
