package worker

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/library"
	"repro/internal/minipy"
	"repro/internal/poncho"
	"repro/internal/proto"
)

// executor is the worker's execution layer: stateless tasks, library
// lifecycle, and invocations. It owns the worker's resource accounting
// and its installed-library table, and reaches staged objects only
// through the data plane's PinResolve — so an input still in flight is
// waited for, and a resolved input can never be evicted mid-task.
type executor struct {
	cfg   *Config
	plane *dataplane.Plane
	w     *Worker // result/ack delivery only

	mu        sync.Mutex
	libs      map[string]*libHolder
	committed core.Resources
}

// libHolder pairs a library instance with its execution lock (direct
// mode serializes invocations in the shared memory space).
type libHolder struct {
	lib    *library.Library
	direct sync.Mutex
	res    core.Resources
}

func newExecutor(w *Worker) *executor {
	return &executor{
		cfg:   &w.cfg,
		plane: w.plane,
		w:     w,
		libs:  map[string]*libHolder{},
	}
}

// reserve commits resources for a task/library, enforcing the worker's
// allocation.
func (e *executor) reserve(r core.Resources) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	avail := e.cfg.Resources.Sub(e.committed)
	if !r.Fits(avail) {
		return fmt.Errorf("worker %s: insufficient resources (want %+v, have %+v)", e.cfg.ID, r, avail)
	}
	e.committed = e.committed.Add(r)
	return nil
}

func (e *executor) release(r core.Resources) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.committed = e.committed.Sub(r)
}

func failResult(id int64, err error) core.Result {
	return core.Result{ID: id, Ok: false, Err: err.Error()}
}

// infraResult marks a failure as infrastructure-caused (staging gaps,
// cache pressure, lost libraries) so the manager may retry the work on
// another placement; errors raised by the submitted code itself use
// failResult and are never retried.
func infraResult(id int64, err error) core.Result {
	return core.Result{ID: id, Ok: false, Err: err.Error(), Retryable: true}
}

func (e *executor) stdout() io.Writer {
	if e.cfg.Out == nil {
		return io.Discard
	}
	return e.cfg.Out
}

// moduleResolver builds the module-resolution function for a sandbox
// or library: only modules installed by the unpacked environments in
// `allowed` (plus the always-present vine_runtime) are importable.
func (e *executor) moduleResolver(allowed map[string]bool, sb *sandbox) func(*minipy.Interp, string) (*minipy.ModuleVal, error) {
	return func(ip *minipy.Interp, name string) (*minipy.ModuleVal, error) {
		if name == "vine_runtime" && sb != nil {
			return sb.runtimeModule(ip), nil
		}
		if !allowed[name] {
			return nil, fmt.Errorf("no module named '%s'", name)
		}
		if e.cfg.Registry == nil || !e.cfg.Registry.Has(name) {
			return nil, fmt.Errorf("no module named '%s'", name)
		}
		return e.cfg.Registry.Build(name)
	}
}

// allowedModules collects the package names installed by every
// unpacked environment tarball among the given objects.
func allowedModules(objs []*content.Object) map[string]bool {
	allowed := map[string]bool{}
	for _, obj := range objs {
		if obj.Kind != content.Tarball {
			continue
		}
		spec, err := poncho.UnpackManifest(obj.Data)
		if err != nil {
			continue
		}
		for _, m := range spec.Modules() {
			allowed[m] = true
		}
	}
	return allowed
}

// ---- task execution ----

// runTask executes a stateless task (the L1/L2 path): resolve inputs
// through the data plane (waiting out in-flight fetches), read shared
// FS, unpack environments, run the script in a sandbox, return the
// pickled result.
func (e *executor) runTask(spec core.TaskSpec) {
	start := time.Now()
	var pinned []string
	defer func() {
		for _, id := range pinned {
			_ = e.plane.Unpin(id)
		}
		// Stateless tasks leave nothing behind: drop inputs that were
		// not bound to the worker (Evict refuses if another task still
		// pins them).
		for _, in := range spec.Inputs {
			if in.Object != nil && !in.Cache {
				e.plane.Evict(in.Object.ID)
			}
		}
	}()
	if err := e.reserve(spec.Resources); err != nil {
		e.w.sendResult(infraResult(spec.ID, err))
		return
	}
	defer e.release(spec.Resources)

	var metrics core.InvocationMetrics

	// Stage inputs: PinResolve pins each cached object atomically with
	// respect to eviction, and waits if the object's peer transfer is
	// still in flight (the control loop no longer serializes staging
	// ahead of dispatch). Shared FS reads happen now (and are the L1
	// bottleneck in the paper).
	sb := newSandbox()
	var objs []*content.Object
	for _, in := range spec.Inputs {
		obj, err := e.plane.PinResolve(in.Object.ID)
		if err != nil {
			e.w.sendResult(infraResult(spec.ID, fmt.Errorf("input %q not staged on worker: %v", in.Object.Name, err)))
			return
		}
		pinned = append(pinned, in.Object.ID)
		if in.Unpack && obj.Kind == content.Tarball {
			if _, err := e.plane.MarkUnpacked(obj.ID); err != nil {
				e.w.sendResult(infraResult(spec.ID, err))
				return
			}
		}
		sb.add(obj)
		objs = append(objs, obj)
	}
	for _, in := range spec.SharedFSReads {
		// Shared FS reads go through the plane like every other byte
		// source — the executor never touches the store directly (§10).
		obj, err := e.plane.SharedRead(in.Object.ID)
		if err != nil {
			e.w.sendResult(infraResult(spec.ID, fmt.Errorf("shared FS read %q: %v", in.Object.Name, err)))
			return
		}
		sb.add(obj)
		objs = append(objs, obj)
	}
	metrics.WorkerTime = time.Since(start).Seconds()

	// Execute the script.
	execStart := time.Now()
	host := &library.Host{
		Resolve: e.moduleResolver(allowedModules(objs), sb),
		Out:     e.stdout(),
	}
	ip := minipy.NewInterp(host)
	ip.StepLimit = e.cfg.StepLimit
	_, err := ip.RunModule(spec.Script, fmt.Sprintf("task-%d", spec.ID))
	metrics.ExecTime = time.Since(execStart).Seconds()

	if err != nil {
		e.w.sendResult(core.Result{ID: spec.ID, Ok: false, Err: err.Error(), Metrics: metrics})
		return
	}
	if sb.result == nil {
		e.w.sendResult(core.Result{ID: spec.ID, Ok: false, Err: "task script did not call vine_runtime.store_result", Metrics: metrics})
		return
	}
	if spec.ResultByRef {
		// Pass-by-reference completion: the result bytes stay here — this
		// worker becomes the ref's owner — and only the proxy handle
		// travels to the manager. A store failure is the
		// infrastructure's fault, not the task's.
		obj := content.NewBlob(fmt.Sprintf("task-%d.out", spec.ID), sb.result)
		if err := e.plane.PutOwned(obj); err != nil {
			e.w.sendResult(infraResult(spec.ID, err))
			return
		}
		e.w.sendResult(core.Result{ID: spec.ID, Ok: true, Ref: &core.ObjectRef{
			ID: obj.ID, Name: obj.Name, Size: obj.LogicalSize, Owner: e.cfg.ID, Tier: core.TierCache,
		}, Metrics: metrics})
		return
	}
	e.w.sendResult(core.Result{ID: spec.ID, Ok: true, Value: sb.result, Metrics: metrics})
}

// ---- library hosting ----

func (e *executor) installLibrary(spec core.LibrarySpec) {
	res := spec.Resources
	if res == (core.Resources{}) {
		// A library by default takes all resources of a worker (§3.5.2).
		res = e.cfg.Resources
	}
	// Install failures split the same way task failures do: a missing
	// staged input or exhausted resources is the infrastructure's fault
	// (retryable — the manager redeploys after recovery), while a
	// context setup that raises is the library's own bug and counts
	// toward quarantine.
	ackErr := func(err error, retryable bool) {
		e.w.sendMsg(proto.MsgLibraryAck, proto.LibraryAck{Library: spec.Name, Ok: false, Err: err.Error(), Retryable: retryable})
	}
	if err := e.reserve(res); err != nil {
		ackErr(err, true)
		return
	}

	// Pin and unpack the library's environment and inputs; PinResolve
	// waits out any still-in-flight peer transfer.
	var objs []*content.Object
	pinned := []string{}
	fail := func(err error, retryable bool) {
		for _, id := range pinned {
			_ = e.plane.Unpin(id)
		}
		e.release(res)
		ackErr(err, retryable)
	}
	specs := spec.Inputs
	if spec.Env != nil {
		specs = append([]core.FileSpec{*spec.Env}, specs...)
	}
	for _, in := range specs {
		obj, err := e.plane.PinResolve(in.Object.ID)
		if err != nil {
			fail(fmt.Errorf("library input %q not staged: %v", in.Object.Name, err), true)
			return
		}
		pinned = append(pinned, obj.ID)
		if in.Unpack && obj.Kind == content.Tarball {
			if _, err := e.plane.MarkUnpacked(obj.ID); err != nil {
				fail(err, true)
				return
			}
		}
		objs = append(objs, obj)
	}

	instance := fmt.Sprintf("%s@%s", spec.Name, e.cfg.ID)
	inputs := map[string]*content.Object{}
	for _, obj := range objs {
		if obj.Kind != content.Tarball {
			inputs[obj.Name] = obj
		}
	}
	host := &library.Host{
		Resolve: e.moduleResolver(allowedModules(objs), nil),
		Out:     e.stdout(),
		Inputs:  inputs,
	}
	lib, err := library.Start(spec, instance, host)
	if err != nil {
		fail(err, false)
		return
	}

	e.mu.Lock()
	if _, exists := e.libs[spec.Name]; exists {
		e.mu.Unlock()
		fail(fmt.Errorf("library %s already installed", spec.Name), true)
		return
	}
	e.libs[spec.Name] = &libHolder{lib: lib, res: res}
	e.mu.Unlock()

	e.w.sendMsg(proto.MsgLibraryAck, proto.LibraryAck{
		Library:   spec.Name,
		Instance:  instance,
		Ok:        true,
		SetupTime: lib.SetupDuration.Seconds(),
	})
}

func (e *executor) removeLibrary(name string) {
	e.mu.Lock()
	h, ok := e.libs[name]
	if ok {
		delete(e.libs, name)
	}
	e.mu.Unlock()
	if !ok {
		return
	}
	specs := h.lib.Spec.Inputs
	if h.lib.Spec.Env != nil {
		specs = append([]core.FileSpec{*h.lib.Spec.Env}, specs...)
	}
	for _, in := range specs {
		_ = e.plane.Unpin(in.Object.ID)
	}
	e.release(h.res)
}

func (e *executor) runInvocation(spec core.InvocationSpec) {
	e.mu.Lock()
	h, ok := e.libs[spec.Library]
	e.mu.Unlock()
	if !ok {
		// The manager believed an instance was here; it may have been
		// lost to eviction racing the dispatch — retryable.
		e.w.sendResult(infraResult(spec.ID, fmt.Errorf("worker %s has no library %q", e.cfg.ID, spec.Library)))
		return
	}
	if h.lib.Spec.Mode == core.ExecDirect {
		h.direct.Lock()
		defer h.direct.Unlock()
	}
	res, err := h.lib.Invoke(spec.Function, spec.Args)
	if err != nil {
		e.w.sendResult(core.Result{
			ID: spec.ID, Ok: false, Err: err.Error(),
			Metrics: core.InvocationMetrics{LibraryInstance: h.lib.Instance},
		})
		return
	}
	e.w.sendResult(core.Result{
		ID:    spec.ID,
		Ok:    true,
		Value: res.Value,
		Metrics: core.InvocationMetrics{
			SetupTime:       res.SetupTime,
			ExecTime:        res.ExecTime,
			LibraryInstance: h.lib.Instance,
		},
	})
}

// Libraries returns the installed library names (tests).
func (w *Worker) Libraries() []string {
	w.exec.mu.Lock()
	defer w.exec.mu.Unlock()
	out := make([]string, 0, len(w.exec.libs))
	for name := range w.exec.libs {
		out = append(out, name)
	}
	return out
}

// LibraryShare returns the share value (invocations served) of an
// installed library, or -1.
func (w *Worker) LibraryShare(name string) int64 {
	w.exec.mu.Lock()
	h, ok := w.exec.libs[name]
	w.exec.mu.Unlock()
	if !ok {
		return -1
	}
	return h.lib.Served()
}
