package worker

import (
	"repro/internal/dataplane"
	"repro/internal/proto"
)

// Staging-message handlers: the control loop's entry points into the
// data plane. Each hands the work to dataplane.Plane and returns
// immediately — acks are sent from the plane's completion callbacks,
// never inline in the read loop.

func (w *Worker) ackFile(id string, cache bool, err error) {
	w.ackFileFrom(id, "", cache, err)
}

// ackFileFrom acknowledges a staged file, echoing the peer source the
// transfer was assigned ("" for direct puts) so the manager can return
// the source's outbound transfer slot even if its own fetch record is
// gone.
func (w *Worker) ackFileFrom(id, source string, cache bool, err error) {
	ack := proto.FileAck{ID: id, Ok: err == nil, Cache: cache, Source: source}
	if err != nil {
		ack.Err = err.Error()
	}
	_ = w.conn.Send(proto.MsgFileAck, ack)
}

func (w *Worker) handlePutFile(msg proto.PutFile) {
	obj := metaToObject(msg.File)
	if err := obj.Validate(); err != nil {
		w.ackFile(obj.ID, msg.Cache, err)
		return
	}
	w.ackFile(obj.ID, msg.Cache, w.plane.Put(obj, msg.Unpack))
}

// handlePutFileBulk is handlePutFile for the binary-framed path: the
// object bytes arrive as the frame payload instead of base64 JSON.
func (w *Worker) handlePutFileBulk(hdr proto.PutFileHdr, data []byte) {
	obj := hdrToObject(hdr.File, data)
	if err := obj.Validate(); err != nil {
		w.ackFile(obj.ID, hdr.Cache, err)
		return
	}
	w.ackFile(obj.ID, hdr.Cache, w.plane.Put(obj, hdr.Unpack))
}

// handleFetchFile hands a peer pull — one edge of the spanning-tree
// broadcast (Figure 3b) — to the data plane and returns immediately;
// the FileAck is sent from the transfer's completion callback.
// Duplicate in-flight requests for the same object share one transfer
// but each still acks with its own Source echo.
func (w *Worker) handleFetchFile(msg proto.FetchFile) {
	req := dataplane.Request{
		ID: msg.ID, Addr: msg.FromAddr, AltAddrs: msg.AltAddrs,
		Unpack: msg.Unpack, Shared: msg.Shared, Own: msg.Own,
	}
	w.plane.Fetch(req, func(err error) {
		w.ackFileFrom(msg.ID, msg.Source, msg.Cache, err)
	})
}

// handleSpillObject demotes an owned ref to the shared tier. The
// manager re-tiered its catalog at decision time; failure here is
// surfaced as a log line — the shared copy simply never materializes
// and a later resolve walks the remaining replicas.
func (w *Worker) handleSpillObject(msg proto.SpillObject) {
	if err := w.plane.Spill(msg.ID); err != nil {
		w.sendMsg(proto.MsgLog, proto.LogMsg{Worker: w.cfg.ID, Text: "spill: " + err.Error()})
	}
}

// handleOwnObject adopts a replica as this worker's owned copy after
// the previous owner died.
func (w *Worker) handleOwnObject(msg proto.OwnObject) {
	if err := w.plane.AdoptOwned(msg.ID); err != nil {
		w.sendMsg(proto.MsgLog, proto.LogMsg{Worker: w.cfg.ID, Text: "own: " + err.Error()})
	}
}
