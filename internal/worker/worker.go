// Package worker implements the TaskVine worker as a layered runtime:
//
//   - This file is the control layer: connection lifecycle plus a
//     non-blocking message loop that only decodes frames and
//     dispatches. Nothing here performs network transfers or runs
//     user code, so one slow peer or long task can never stall the
//     message stream.
//   - internal/dataplane owns object staging: asynchronous peer
//     fetches on a bounded pool with single-flight dedup, the cache
//     state machine, and the concurrency-capped peer serve side.
//   - exec.go is the executor layer: tasks, invocations, and library
//     lifecycle, reaching staged objects only through the data
//     plane's Pin/Resolve.
//
// Together they implement the per-node process of §3.3-3.4: cache
// content-addressed data, execute stateless tasks in sandboxes, host
// library instances that retain function contexts, and serve the
// cache to peers for spanning-tree distribution.
package worker

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/modlib"
	"repro/internal/proto"
	"repro/internal/sharedfs"
)

// Config configures a worker.
type Config struct {
	ID        string
	Resources core.Resources
	// Cluster is the network-locality group name (Figure 3c).
	Cluster string
	// GFlops rates this machine's compute speed (Table 3).
	GFlops float64
	// CacheCapacity bounds the local cache in bytes (0 = unlimited).
	CacheCapacity int64
	// Registry supplies module implementations for task and library
	// interpreters. Nil means no modules are importable.
	Registry *modlib.Registry
	// SharedFS is the shared filesystem L1 tasks read from; nil
	// disables shared FS reads.
	SharedFS *sharedfs.Store
	// Out receives task print output (nil discards).
	Out io.Writer
	// StepLimit bounds interpreter steps per task/invocation (0 = the
	// default of 50M).
	StepLimit int64
	// PeerIOTimeout bounds idle time on peer data-plane connections:
	// a fetch or serve that makes no progress for this long is aborted
	// instead of wedging the transfer forever behind a hung peer. Zero
	// defaults to 30s.
	PeerIOTimeout time.Duration
	// FetchConcurrency bounds concurrent peer fetches on the data
	// plane (0 = the dataplane default). A stalled source costs one
	// pool slot; everything else keeps moving.
	FetchConcurrency int
	// ServeConcurrency bounds concurrent peer-serve connections
	// (0 = the dataplane default).
	ServeConcurrency int
	// WrapDataListener, when set, wraps the peer data listener before
	// serving — the hook fault-injection tests use to stall or cut
	// peer transfers.
	WrapDataListener func(net.Listener) net.Listener
}

const (
	defaultStepLimit     = 50_000_000
	defaultPeerIOTimeout = 30 * time.Second
	// managerDialTimeout bounds the initial dial to the manager so a
	// wrong address or partitioned manager fails fast instead of
	// hanging in the kernel's connect queue.
	managerDialTimeout = 10 * time.Second
)

// Stats is a snapshot of the worker's own counters.
type Stats struct {
	// ProtocolErrors counts manager frames that failed to decode (or
	// carried an unknown type). Non-zero means version skew or
	// corruption — each one is also reported to the manager as a log
	// line.
	ProtocolErrors int64
	// Data is the data plane's staging counters.
	Data dataplane.Stats
}

// Worker is a running worker.
type Worker struct {
	cfg   Config
	cache *content.Cache
	plane *dataplane.Plane
	exec  *executor
	conn  *proto.Conn

	dataLn   net.Listener
	dataAddr string

	mu     sync.Mutex
	closed bool

	// sendq feeds the single sender goroutine. Executor goroutines
	// finish invocations concurrently; funneling their results (and
	// acks) through one drain loop lets a burst of K frames coalesce
	// into one write syscall via the conn's Buffer/Flush pair instead
	// of costing K syscalls from K goroutines.
	sendq chan outFrame

	protoErrors atomic.Int64

	wg   sync.WaitGroup
	done chan struct{}
}

// outFrame is one queued control frame headed for the manager.
// Results — the once-per-invocation hot payload — travel in the typed
// res field instead of v: boxing each core.Result into an interface
// would cost one heap allocation per completion.
type outFrame struct {
	t      proto.MsgType
	v      any
	res    core.Result
	hasRes bool
}

// sendQueueSize bounds the outbound frame queue. Results are small and
// the sender drains in batches, so the queue only fills if the manager
// link itself has stalled — then enqueues block, which is the right
// backpressure.
const sendQueueSize = 1024

// New creates a worker (not yet connected).
func New(cfg Config) *Worker {
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.Resources.Cores == 0 {
		cfg.Resources.Cores = 32
	}
	if cfg.Resources.MemoryMB == 0 {
		cfg.Resources.MemoryMB = 64 << 10
	}
	if cfg.Resources.DiskMB == 0 {
		cfg.Resources.DiskMB = 64 << 10
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = defaultStepLimit
	}
	if cfg.PeerIOTimeout == 0 {
		cfg.PeerIOTimeout = defaultPeerIOTimeout
	}
	w := &Worker{
		cfg:   cfg,
		cache: content.NewCache(cfg.CacheCapacity),
		sendq: make(chan outFrame, sendQueueSize),
		done:  make(chan struct{}),
	}
	pcfg := dataplane.Config{
		Cache:            w.cache,
		FetchConcurrency: cfg.FetchConcurrency,
		ServeConcurrency: cfg.ServeConcurrency,
		IdleTimeout:      cfg.PeerIOTimeout,
	}
	// The shared filesystem doubles as the data plane's spill tier; the
	// explicit nil check keeps a nil *Store from becoming a non-nil
	// interface.
	if cfg.SharedFS != nil {
		pcfg.Shared = cfg.SharedFS
	}
	w.plane = dataplane.New(pcfg)
	w.exec = newExecutor(w)
	return w
}

// Cache exposes the worker's content cache (tests and metrics).
func (w *Worker) Cache() *content.Cache { return w.cache }

// Plane exposes the worker's data plane (tests and metrics).
func (w *Worker) Plane() *dataplane.Plane { return w.plane }

// ID returns the worker's identifier.
func (w *Worker) ID() string { return w.cfg.ID }

// DataAddr returns the address peers fetch cached objects from.
func (w *Worker) DataAddr() string { return w.dataAddr }

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats {
	return Stats{
		ProtocolErrors: w.protoErrors.Load(),
		Data:           w.plane.Snapshot(),
	}
}

// Connect dials the manager, starts the peer data server, and begins
// serving messages. It returns once the hello has been sent; message
// processing continues in background goroutines until Shutdown or
// connection loss.
func (w *Worker) Connect(managerAddr string) error {
	conn, err := net.DialTimeout("tcp", managerAddr, managerDialTimeout)
	if err != nil {
		return fmt.Errorf("worker %s: dialing manager: %w", w.cfg.ID, err)
	}
	return w.Serve(conn)
}

// Serve runs the worker over an established manager connection.
func (w *Worker) Serve(nc net.Conn) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("worker %s: starting data server: %w", w.cfg.ID, err)
	}
	if w.cfg.WrapDataListener != nil {
		ln = w.cfg.WrapDataListener(ln)
	}
	w.dataLn = ln
	w.dataAddr = ln.Addr().String()
	// The manager control link is idle by design between work bursts
	// (a worker may legitimately sit minutes without a dispatch), so it
	// carries no idle deadline; liveness is the manager's job via its
	// per-worker send deadlines and gone-detection (§7).
	w.conn = proto.NewConn(nc) //vinelint:ignore ctxdeadline control link is idle-by-design; manager side owns liveness detection

	hello := proto.Hello{
		WorkerID:      w.cfg.ID,
		Resources:     w.cfg.Resources,
		Cluster:       w.cfg.Cluster,
		DataAddr:      w.dataAddr,
		MachineGFlops: w.cfg.GFlops,
	}
	if err := w.conn.Send(proto.MsgHello, hello); err != nil {
		return err
	}

	w.wg.Add(4)
	go func() {
		defer w.wg.Done()
		w.plane.Serve(ln)
	}()
	go func() {
		defer w.wg.Done()
		w.loop(nc)
	}()
	go func() {
		defer w.wg.Done()
		w.sendLoop()
	}()
	// Sever the manager link on Shutdown so the manager observes the
	// worker's departure immediately (and requeues its work) instead of
	// holding a half-dead connection open.
	go func() {
		defer w.wg.Done()
		<-w.done
		nc.Close()
	}()
	return nil
}

// Wait blocks until the worker has shut down and its background work
// (in-flight transfers, serve connections) has drained.
func (w *Worker) Wait() {
	w.wg.Wait()
	w.plane.Wait()
}

// Shutdown stops the worker.
func (w *Worker) Shutdown() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	if w.dataLn != nil {
		w.dataLn.Close()
	}
	w.plane.Close()
}

// loop is the control loop: it decodes manager frames and dispatches
// them, and must never block on network transfers or execution. Peer
// fetches go to the data plane's pool; tasks, installs, and
// invocations go to executor goroutines; only in-memory work (puts,
// library removal) runs inline.
func (w *Worker) loop(nc net.Conn) {
	defer nc.Close()
	// strs interns the identifier strings every invocation repeats
	// (library, function) — used only by this loop goroutine.
	var strs proto.Interner
	for {
		// RecvReuse: every case below decodes (copying what it keeps)
		// before the next receive; the one exception — a bulk frame's
		// payload — is copied explicitly in its case.
		t, raw, err := w.conn.RecvReuse()
		if err != nil {
			w.Shutdown()
			return
		}
		switch t {
		case proto.MsgPutFile:
			msg, err := proto.Decode[proto.PutFile](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.handlePutFile(msg)
		case proto.MsgPutFileBulk:
			hdr, payload, err := proto.DecodeBulk[proto.PutFileHdr](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			// payload aliases the reused receive buffer; the object
			// outlives this frame, so take a copy.
			w.handlePutFileBulk(hdr, append([]byte(nil), payload...))
		case proto.MsgFetchFile:
			msg, err := proto.Decode[proto.FetchFile](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.handleFetchFile(msg)
		case proto.MsgSpillObject:
			msg, err := proto.Decode[proto.SpillObject](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.handleSpillObject(msg)
		case proto.MsgOwnObject:
			msg, err := proto.Decode[proto.OwnObject](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.handleOwnObject(msg)
		case proto.MsgRunTask:
			msg, err := proto.Decode[core.TaskSpec](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.spawn(func() { w.exec.runTask(msg) })
		case proto.MsgInstallLibrary:
			msg, err := proto.Decode[core.LibrarySpec](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.spawn(func() { w.exec.installLibrary(msg) })
		case proto.MsgRemoveLibrary:
			msg, err := proto.Decode[proto.RemoveLibrary](raw)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.exec.removeLibrary(msg.Library)
		case proto.MsgInvoke:
			msg, err := proto.DecodeInvocationInterned(raw, &strs)
			if err != nil {
				w.protocolError(t, err)
				continue
			}
			w.spawn(func() { w.exec.runInvocation(msg) })
		case proto.MsgShutdown:
			w.Shutdown()
			return
		default:
			w.protocolError(t, fmt.Errorf("unknown message type"))
		}
	}
}

func (w *Worker) spawn(f func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		f()
	}()
}

// protocolError counts an undecodable (or unknown) manager frame and
// surfaces it to the manager as a log line instead of dropping it
// silently: a frame we cannot decode means version skew or corruption,
// and the work it carried is lost — someone must find out.
func (w *Worker) protocolError(t proto.MsgType, err error) {
	w.protoErrors.Add(1)
	_ = w.conn.Send(proto.MsgLog, proto.LogMsg{
		Worker: w.cfg.ID,
		Text:   fmt.Sprintf("protocol error: %v frame: %v", t, err),
	})
}

// Staging-message handlers (PutFile, FetchFile, acks) live in
// staging.go; wire-format conversion helpers live in wire.go.

func (w *Worker) sendResult(res core.Result) {
	res.Metrics.WorkerID = w.cfg.ID
	select {
	case w.sendq <- outFrame{t: proto.MsgResult, res: res, hasRes: true}:
	case <-w.done:
	}
}

// sendMsg queues a result or ack for the manager unless the worker is
// shutting down. Once Shutdown has begun, execution aborts (PinResolve
// fails, libraries die) for reasons that are not the work's fault; the
// manager must learn of them from the connection closing — which
// requeues everything in flight — not from a racing "shutting down"
// failure result that would burn the spec's retry budget.
func (w *Worker) sendMsg(t proto.MsgType, v any) {
	select {
	case w.sendq <- outFrame{t: t, v: v}:
	case <-w.done:
	}
}

// sendLoop is the single writer on the manager link: it blocks for one
// frame, then drains everything already queued into the conn's pending
// buffer and flushes once, so a completion burst coalesces into a
// single write syscall. Write errors are ignored here for the same
// reason sendMsg ignores shutdown: a broken manager link is reported
// by the read loop tearing the worker down.
func (w *Worker) sendLoop() {
	// scratch is one stable heap slot for unboxed result frames: Buffer
	// encodes synchronously, so the pointer never outlives the call and
	// every result frame reuses the same allocation.
	var scratch core.Result
	buffer := func(f outFrame) {
		if f.hasRes {
			scratch = f.res
			_ = w.conn.Buffer(f.t, &scratch)
			return
		}
		_ = w.conn.Buffer(f.t, f.v)
	}
	for {
		var f outFrame
		select {
		case f = <-w.sendq:
		case <-w.done:
			return
		}
		buffer(f)
		yielded := false
		for {
			select {
			case f = <-w.sendq:
				buffer(f)
				continue
			default:
			}
			// One cooperative yield before flushing lets same-core
			// executor goroutines finish results into the queue, so the
			// flush coalesces a completion burst into one write syscall.
			if !yielded {
				yielded = true
				runtime.Gosched()
				continue
			}
			break
		}
		_ = w.conn.Flush()
	}
}
