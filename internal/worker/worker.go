// Package worker implements the TaskVine worker: the per-node process
// that caches content-addressed data, executes stateless tasks in
// sandboxes, hosts library instances that retain function contexts, and
// serves its cache to peers for spanning-tree distribution (§3.3-3.4).
package worker

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/minipy"
	"repro/internal/modlib"
	"repro/internal/pickle"
	"repro/internal/poncho"
	"repro/internal/proto"
	"repro/internal/sharedfs"
)

// Config configures a worker.
type Config struct {
	ID        string
	Resources core.Resources
	// Cluster is the network-locality group name (Figure 3c).
	Cluster string
	// GFlops rates this machine's compute speed (Table 3).
	GFlops float64
	// CacheCapacity bounds the local cache in bytes (0 = unlimited).
	CacheCapacity int64
	// Registry supplies module implementations for task and library
	// interpreters. Nil means no modules are importable.
	Registry *modlib.Registry
	// SharedFS is the shared filesystem L1 tasks read from; nil
	// disables shared FS reads.
	SharedFS *sharedfs.Store
	// Out receives task print output (nil discards).
	Out io.Writer
	// StepLimit bounds interpreter steps per task/invocation (0 = the
	// default of 50M).
	StepLimit int64
	// PeerIOTimeout bounds idle time on peer data-plane connections:
	// a fetch or serve that makes no progress for this long is aborted
	// instead of wedging the worker forever behind a hung peer. Zero
	// defaults to 30s.
	PeerIOTimeout time.Duration
	// WrapDataListener, when set, wraps the peer data listener before
	// serving — the hook fault-injection tests use to stall or cut
	// peer transfers.
	WrapDataListener func(net.Listener) net.Listener
}

const (
	defaultStepLimit     = 50_000_000
	defaultPeerIOTimeout = 30 * time.Second
)

// Worker is a running worker.
type Worker struct {
	cfg   Config
	cache *content.Cache
	conn  *proto.Conn

	dataLn   net.Listener
	dataAddr string

	mu        sync.Mutex
	libs      map[string]*libHolder
	committed core.Resources
	closed    bool

	wg   sync.WaitGroup
	done chan struct{}
}

// libHolder pairs a library instance with its execution lock (direct
// mode serializes invocations in the shared memory space).
type libHolder struct {
	lib    *library.Library
	direct sync.Mutex
	res    core.Resources
}

// New creates a worker (not yet connected).
func New(cfg Config) *Worker {
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.Resources.Cores == 0 {
		cfg.Resources.Cores = 32
	}
	if cfg.Resources.MemoryMB == 0 {
		cfg.Resources.MemoryMB = 64 << 10
	}
	if cfg.Resources.DiskMB == 0 {
		cfg.Resources.DiskMB = 64 << 10
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = defaultStepLimit
	}
	if cfg.PeerIOTimeout == 0 {
		cfg.PeerIOTimeout = defaultPeerIOTimeout
	}
	return &Worker{
		cfg:   cfg,
		cache: content.NewCache(cfg.CacheCapacity),
		libs:  map[string]*libHolder{},
		done:  make(chan struct{}),
	}
}

// Cache exposes the worker's content cache (tests and metrics).
func (w *Worker) Cache() *content.Cache { return w.cache }

// ID returns the worker's identifier.
func (w *Worker) ID() string { return w.cfg.ID }

// DataAddr returns the address peers fetch cached objects from.
func (w *Worker) DataAddr() string { return w.dataAddr }

// Connect dials the manager, starts the peer data server, and begins
// serving messages. It returns once the hello has been sent; message
// processing continues in background goroutines until Shutdown or
// connection loss.
func (w *Worker) Connect(managerAddr string) error {
	conn, err := net.Dial("tcp", managerAddr)
	if err != nil {
		return fmt.Errorf("worker %s: dialing manager: %w", w.cfg.ID, err)
	}
	return w.Serve(conn)
}

// Serve runs the worker over an established manager connection.
func (w *Worker) Serve(nc net.Conn) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("worker %s: starting data server: %w", w.cfg.ID, err)
	}
	if w.cfg.WrapDataListener != nil {
		ln = w.cfg.WrapDataListener(ln)
	}
	w.dataLn = ln
	w.dataAddr = ln.Addr().String()
	w.conn = proto.NewConn(nc)

	hello := proto.Hello{
		WorkerID:      w.cfg.ID,
		Resources:     w.cfg.Resources,
		Cluster:       w.cfg.Cluster,
		DataAddr:      w.dataAddr,
		MachineGFlops: w.cfg.GFlops,
	}
	if err := w.conn.Send(proto.MsgHello, hello); err != nil {
		return err
	}

	w.wg.Add(3)
	go func() {
		defer w.wg.Done()
		w.serveData()
	}()
	go func() {
		defer w.wg.Done()
		w.loop(nc)
	}()
	// Sever the manager link on Shutdown so the manager observes the
	// worker's departure immediately (and requeues its work) instead of
	// holding a half-dead connection open.
	go func() {
		defer w.wg.Done()
		<-w.done
		nc.Close()
	}()
	return nil
}

// Wait blocks until the worker has shut down.
func (w *Worker) Wait() { w.wg.Wait() }

// Shutdown stops the worker.
func (w *Worker) Shutdown() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	if w.dataLn != nil {
		w.dataLn.Close()
	}
}

// loop processes manager messages until the connection closes.
func (w *Worker) loop(nc net.Conn) {
	defer nc.Close()
	for {
		t, raw, err := w.conn.Recv()
		if err != nil {
			w.Shutdown()
			return
		}
		switch t {
		case proto.MsgPutFile:
			msg, err := proto.Decode[proto.PutFile](raw)
			if err != nil {
				continue
			}
			w.handlePutFile(msg)
		case proto.MsgPutFileBulk:
			hdr, payload, err := proto.DecodeBulk[proto.PutFileHdr](raw)
			if err != nil {
				continue
			}
			// payload aliases the frame's receive buffer, which is fresh
			// per frame — safe to retain as the object's data without a
			// copy.
			w.handlePutFileBulk(hdr, payload)
		case proto.MsgFetchFile:
			msg, err := proto.Decode[proto.FetchFile](raw)
			if err != nil {
				continue
			}
			w.handleFetchFile(msg)
		case proto.MsgRunTask:
			msg, err := proto.Decode[core.TaskSpec](raw)
			if err != nil {
				continue
			}
			// Pin inputs before the task goroutine starts: two tasks
			// sharing a content-addressed input must not race with each
			// other's cleanup.
			var pinned []string
			for _, in := range msg.Inputs {
				if in.Object != nil && w.cache.Pin(in.Object.ID) == nil {
					pinned = append(pinned, in.Object.ID)
				}
			}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				w.runTask(msg, pinned)
			}()
		case proto.MsgInstallLibrary:
			msg, err := proto.Decode[core.LibrarySpec](raw)
			if err != nil {
				continue
			}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				w.installLibrary(msg)
			}()
		case proto.MsgRemoveLibrary:
			msg, err := proto.Decode[proto.RemoveLibrary](raw)
			if err != nil {
				continue
			}
			w.removeLibrary(msg.Library)
		case proto.MsgInvoke:
			msg, err := proto.Decode[core.InvocationSpec](raw)
			if err != nil {
				continue
			}
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				w.runInvocation(msg)
			}()
		case proto.MsgShutdown:
			w.Shutdown()
			return
		}
	}
}

func metaToObject(m proto.FileMeta) *content.Object {
	return &content.Object{
		ID:           m.ID,
		Name:         m.Name,
		Kind:         content.Kind(m.Kind),
		Data:         m.Data,
		LogicalSize:  m.LogicalSize,
		UnpackedSize: m.UnpackedSize,
	}
}

func objectToMeta(o *content.Object) proto.FileMeta {
	return proto.FileMeta{
		ID:           o.ID,
		Name:         o.Name,
		Kind:         int(o.Kind),
		Data:         o.Data,
		LogicalSize:  o.LogicalSize,
		UnpackedSize: o.UnpackedSize,
	}
}

// hdrToObject assembles an object from a bulk frame's header and raw
// payload; data is retained as-is, no copy.
func hdrToObject(h proto.FileHdr, data []byte) *content.Object {
	return &content.Object{
		ID:           h.ID,
		Name:         h.Name,
		Kind:         content.Kind(h.Kind),
		Data:         data,
		LogicalSize:  h.LogicalSize,
		UnpackedSize: h.UnpackedSize,
	}
}

func objectToHdr(o *content.Object) proto.FileHdr {
	return proto.FileHdr{
		ID:           o.ID,
		Name:         o.Name,
		Kind:         int(o.Kind),
		LogicalSize:  o.LogicalSize,
		UnpackedSize: o.UnpackedSize,
	}
}

func (w *Worker) ackFile(id string, cache bool, err error) {
	w.ackFileFrom(id, "", cache, err)
}

// ackFileFrom acknowledges a staged file, echoing the peer source the
// transfer was assigned ("" for direct puts) so the manager can return
// the source's outbound transfer slot even if its own fetch record is
// gone.
func (w *Worker) ackFileFrom(id, source string, cache bool, err error) {
	ack := proto.FileAck{ID: id, Ok: err == nil, Cache: cache, Source: source}
	if err != nil {
		ack.Err = err.Error()
	}
	_ = w.conn.Send(proto.MsgFileAck, ack)
}

func (w *Worker) handlePutFile(msg proto.PutFile) {
	obj := metaToObject(msg.File)
	if err := obj.Validate(); err != nil {
		w.ackFile(obj.ID, msg.Cache, err)
		return
	}
	if err := w.cacheObject(obj, msg.Unpack); err != nil {
		w.ackFile(obj.ID, msg.Cache, err)
		return
	}
	w.ackFile(obj.ID, msg.Cache, nil)
}

// handlePutFileBulk is handlePutFile for the binary-framed path: the
// object bytes arrive as the frame payload instead of base64 JSON.
func (w *Worker) handlePutFileBulk(hdr proto.PutFileHdr, data []byte) {
	obj := hdrToObject(hdr.File, data)
	if err := obj.Validate(); err != nil {
		w.ackFile(obj.ID, hdr.Cache, err)
		return
	}
	if err := w.cacheObject(obj, hdr.Unpack); err != nil {
		w.ackFile(obj.ID, hdr.Cache, err)
		return
	}
	w.ackFile(obj.ID, hdr.Cache, nil)
}

// handleFetchFile pulls an object from a peer data server — one edge
// of the spanning-tree broadcast (Figure 3b).
func (w *Worker) handleFetchFile(msg proto.FetchFile) {
	obj, err := fetchFromPeer(msg.FromAddr, msg.ID, w.cfg.PeerIOTimeout)
	if err != nil {
		w.ackFileFrom(msg.ID, msg.Source, msg.Cache, err)
		return
	}
	if err := w.cacheObject(obj, msg.Unpack); err != nil {
		w.ackFileFrom(msg.ID, msg.Source, msg.Cache, err)
		return
	}
	w.ackFileFrom(msg.ID, msg.Source, msg.Cache, nil)
}

func (w *Worker) cacheObject(obj *content.Object, unpack bool) error {
	if err := w.cache.Put(obj); err != nil {
		return err
	}
	if unpack && obj.Kind == content.Tarball {
		if _, err := w.cache.MarkUnpacked(obj.ID); err != nil {
			return err
		}
	}
	return nil
}

// FetchFromPeer requests an object by ID from a worker data server,
// with the default idle timeout on every read and write.
func FetchFromPeer(addr, id string) (*content.Object, error) {
	return fetchFromPeer(addr, id, defaultPeerIOTimeout)
}

// fetchFromPeer is FetchFromPeer with an explicit idle timeout: the
// dial, the request write, and every read of the response must each
// make progress within `idle`, so a stalled or vanished peer costs a
// bounded wait instead of wedging the fetch (and, transitively, every
// worker queued behind the in-flight copy) forever.
func fetchFromPeer(addr, id string, idle time.Duration) (*content.Object, error) {
	dial := idle
	if dial <= 0 || dial > 5*time.Second {
		dial = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, dial)
	if err != nil {
		return nil, fmt.Errorf("worker: dialing peer %s: %w", addr, err)
	}
	defer nc.Close()
	pc := proto.NewConn(proto.WithIdleTimeout(nc, idle))
	if err := pc.Send(proto.MsgGetFile, proto.GetFile{ID: id}); err != nil {
		return nil, err
	}
	t, raw, err := pc.Recv()
	if err != nil {
		return nil, fmt.Errorf("worker: reading peer response: %w", err)
	}
	switch t {
	case proto.MsgFileDataBulk:
		hdr, payload, err := proto.DecodeBulk[proto.FileHdr](raw)
		if err != nil {
			return nil, err
		}
		obj := hdrToObject(hdr, payload)
		if err := obj.Validate(); err != nil {
			return nil, fmt.Errorf("worker: peer sent corrupt object: %w", err)
		}
		return obj, nil
	case proto.MsgFileData:
		// Legacy JSON-framed response, kept for mixed-version peers.
		meta, err := proto.Decode[proto.FileMeta](raw)
		if err != nil {
			return nil, err
		}
		obj := metaToObject(meta)
		if err := obj.Validate(); err != nil {
			return nil, fmt.Errorf("worker: peer sent corrupt object: %w", err)
		}
		return obj, nil
	case proto.MsgError:
		em, _ := proto.Decode[proto.ErrorMsg](raw)
		return nil, fmt.Errorf("worker: peer error: %s", em.Err)
	}
	return nil, fmt.Errorf("worker: unexpected peer message %v", t)
}

// serveData answers MsgGetFile requests from peers, one connection per
// goroutine.
func (w *Worker) serveData() {
	for {
		nc, err := w.dataLn.Accept()
		if err != nil {
			return
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer nc.Close()
			// A requester that stops reading must not pin this goroutine
			// (and its transfer slot on the manager) forever.
			pc := proto.NewConn(proto.WithIdleTimeout(nc, w.cfg.PeerIOTimeout))
			t, raw, err := pc.Recv()
			if err != nil || t != proto.MsgGetFile {
				return
			}
			req, err := proto.Decode[proto.GetFile](raw)
			if err != nil {
				return
			}
			obj, ok := w.cache.Get(req.ID)
			if !ok {
				_ = pc.Send(proto.MsgError, proto.ErrorMsg{Err: "object not cached"})
				return
			}
			// Bulk frame: header JSON plus the raw bytes straight from the
			// cache's backing slice — no base64 copy on either side.
			_ = pc.SendBulk(proto.MsgFileDataBulk, objectToHdr(obj), obj.Data)
		}()
	}
}

// reserve commits resources for a task/library, enforcing the worker's
// allocation.
func (w *Worker) reserve(r core.Resources) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	avail := w.cfg.Resources.Sub(w.committed)
	if !r.Fits(avail) {
		return fmt.Errorf("worker %s: insufficient resources (want %+v, have %+v)", w.cfg.ID, r, avail)
	}
	w.committed = w.committed.Add(r)
	return nil
}

func (w *Worker) release(r core.Resources) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.committed = w.committed.Sub(r)
}

func (w *Worker) sendResult(res core.Result) {
	res.Metrics.WorkerID = w.cfg.ID
	_ = w.conn.Send(proto.MsgResult, res)
}

func failResult(id int64, err error) core.Result {
	return core.Result{ID: id, Ok: false, Err: err.Error()}
}

// infraResult marks a failure as infrastructure-caused (staging gaps,
// cache pressure, lost libraries) so the manager may retry the work on
// another placement; errors raised by the submitted code itself use
// failResult and are never retried.
func infraResult(id int64, err error) core.Result {
	return core.Result{ID: id, Ok: false, Err: err.Error(), Retryable: true}
}

func (w *Worker) stdout() io.Writer {
	if w.cfg.Out == nil {
		return io.Discard
	}
	return w.cfg.Out
}

// moduleResolver builds the module-resolution function for a sandbox
// or library: only modules installed by the unpacked environments in
// `allowed` (plus the always-present vine_runtime) are importable.
func (w *Worker) moduleResolver(allowed map[string]bool, sb *sandbox) func(*minipy.Interp, string) (*minipy.ModuleVal, error) {
	return func(ip *minipy.Interp, name string) (*minipy.ModuleVal, error) {
		if name == "vine_runtime" && sb != nil {
			return sb.runtimeModule(ip), nil
		}
		if !allowed[name] {
			return nil, fmt.Errorf("no module named '%s'", name)
		}
		if w.cfg.Registry == nil || !w.cfg.Registry.Has(name) {
			return nil, fmt.Errorf("no module named '%s'", name)
		}
		return w.cfg.Registry.Build(name)
	}
}

// allowedModules collects the package names installed by every
// unpacked environment tarball among the given objects.
func allowedModules(objs []*content.Object) map[string]bool {
	allowed := map[string]bool{}
	for _, obj := range objs {
		if obj.Kind != content.Tarball {
			continue
		}
		spec, err := poncho.UnpackManifest(obj.Data)
		if err != nil {
			continue
		}
		for _, m := range spec.Modules() {
			allowed[m] = true
		}
	}
	return allowed
}

// ---- task execution ----

// runTask executes a stateless task (the L1/L2 path): stage inputs
// from cache and shared FS, unpack environments, run the script in a
// sandbox, return the pickled result.
func (w *Worker) runTask(spec core.TaskSpec, pinned []string) {
	start := time.Now()
	defer func() {
		for _, id := range pinned {
			_ = w.cache.Unpin(id)
		}
		// Stateless tasks leave nothing behind: drop inputs that were
		// not bound to the worker (Evict refuses if another task still
		// pins them).
		for _, in := range spec.Inputs {
			if in.Object != nil && !in.Cache {
				w.cache.Evict(in.Object.ID)
			}
		}
	}()
	if err := w.reserve(spec.Resources); err != nil {
		w.sendResult(infraResult(spec.ID, err))
		return
	}
	defer w.release(spec.Resources)

	var metrics core.InvocationMetrics

	// Stage inputs: cached objects were delivered ahead of the task on
	// this ordered connection; shared FS reads happen now (and are the
	// L1 bottleneck in the paper).
	sb := newSandbox()
	var objs []*content.Object
	for _, in := range spec.Inputs {
		obj, ok := w.cache.Get(in.Object.ID)
		if !ok {
			w.sendResult(infraResult(spec.ID, fmt.Errorf("input %q not staged on worker", in.Object.Name)))
			return
		}
		if in.Unpack && obj.Kind == content.Tarball {
			if _, err := w.cache.MarkUnpacked(obj.ID); err != nil {
				w.sendResult(infraResult(spec.ID, err))
				return
			}
		}
		sb.add(obj)
		objs = append(objs, obj)
	}
	for _, in := range spec.SharedFSReads {
		if w.cfg.SharedFS == nil {
			w.sendResult(infraResult(spec.ID, fmt.Errorf("task needs shared FS but worker has none")))
			return
		}
		obj, err := w.cfg.SharedFS.Fetch(in.Object.ID)
		if err != nil {
			w.sendResult(infraResult(spec.ID, err))
			return
		}
		sb.add(obj)
		objs = append(objs, obj)
	}
	metrics.WorkerTime = time.Since(start).Seconds()

	// Execute the script.
	execStart := time.Now()
	host := &library.Host{
		Resolve: w.moduleResolver(allowedModules(objs), sb),
		Out:     w.stdout(),
	}
	ip := minipy.NewInterp(host)
	ip.StepLimit = w.cfg.StepLimit
	_, err := ip.RunModule(spec.Script, fmt.Sprintf("task-%d", spec.ID))
	metrics.ExecTime = time.Since(execStart).Seconds()

	if err != nil {
		w.sendResult(core.Result{ID: spec.ID, Ok: false, Err: err.Error(), Metrics: metrics})
		return
	}
	if sb.result == nil {
		w.sendResult(core.Result{ID: spec.ID, Ok: false, Err: "task script did not call vine_runtime.store_result", Metrics: metrics})
		return
	}
	w.sendResult(core.Result{ID: spec.ID, Ok: true, Value: sb.result, Metrics: metrics})
}

// ---- library hosting ----

func (w *Worker) installLibrary(spec core.LibrarySpec) {
	res := spec.Resources
	if res == (core.Resources{}) {
		// A library by default takes all resources of a worker (§3.5.2).
		res = w.cfg.Resources
	}
	// Install failures split the same way task failures do: a missing
	// staged input or exhausted resources is the infrastructure's fault
	// (retryable — the manager redeploys after recovery), while a
	// context setup that raises is the library's own bug and counts
	// toward quarantine.
	ackErr := func(err error, retryable bool) {
		_ = w.conn.Send(proto.MsgLibraryAck, proto.LibraryAck{Library: spec.Name, Ok: false, Err: err.Error(), Retryable: retryable})
	}
	if err := w.reserve(res); err != nil {
		ackErr(err, true)
		return
	}

	// Pin and unpack the library's environment and inputs.
	var objs []*content.Object
	pinned := []string{}
	fail := func(err error, retryable bool) {
		for _, id := range pinned {
			_ = w.cache.Unpin(id)
		}
		w.release(res)
		ackErr(err, retryable)
	}
	specs := spec.Inputs
	if spec.Env != nil {
		specs = append([]core.FileSpec{*spec.Env}, specs...)
	}
	for _, in := range specs {
		obj, ok := w.cache.Get(in.Object.ID)
		if !ok {
			fail(fmt.Errorf("library input %q not staged", in.Object.Name), true)
			return
		}
		if in.Unpack && obj.Kind == content.Tarball {
			if _, err := w.cache.MarkUnpacked(obj.ID); err != nil {
				fail(err, true)
				return
			}
		}
		if err := w.cache.Pin(obj.ID); err != nil {
			fail(err, true)
			return
		}
		pinned = append(pinned, obj.ID)
		objs = append(objs, obj)
	}

	instance := fmt.Sprintf("%s@%s", spec.Name, w.cfg.ID)
	inputs := map[string]*content.Object{}
	for _, obj := range objs {
		if obj.Kind != content.Tarball {
			inputs[obj.Name] = obj
		}
	}
	host := &library.Host{
		Resolve: w.moduleResolver(allowedModules(objs), nil),
		Out:     w.stdout(),
		Inputs:  inputs,
	}
	lib, err := library.Start(spec, instance, host)
	if err != nil {
		fail(err, false)
		return
	}

	w.mu.Lock()
	if _, exists := w.libs[spec.Name]; exists {
		w.mu.Unlock()
		fail(fmt.Errorf("library %s already installed", spec.Name), true)
		return
	}
	w.libs[spec.Name] = &libHolder{lib: lib, res: res}
	w.mu.Unlock()

	_ = w.conn.Send(proto.MsgLibraryAck, proto.LibraryAck{
		Library:   spec.Name,
		Instance:  instance,
		Ok:        true,
		SetupTime: lib.SetupDuration.Seconds(),
	})
}

func (w *Worker) removeLibrary(name string) {
	w.mu.Lock()
	h, ok := w.libs[name]
	if ok {
		delete(w.libs, name)
	}
	w.mu.Unlock()
	if !ok {
		return
	}
	specs := h.lib.Spec.Inputs
	if h.lib.Spec.Env != nil {
		specs = append([]core.FileSpec{*h.lib.Spec.Env}, specs...)
	}
	for _, in := range specs {
		_ = w.cache.Unpin(in.Object.ID)
	}
	w.release(h.res)
}

// Libraries returns the installed library names (tests).
func (w *Worker) Libraries() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.libs))
	for name := range w.libs {
		out = append(out, name)
	}
	return out
}

// LibraryShare returns the share value (invocations served) of an
// installed library, or -1.
func (w *Worker) LibraryShare(name string) int64 {
	w.mu.Lock()
	h, ok := w.libs[name]
	w.mu.Unlock()
	if !ok {
		return -1
	}
	return h.lib.Served()
}

func (w *Worker) runInvocation(spec core.InvocationSpec) {
	w.mu.Lock()
	h, ok := w.libs[spec.Library]
	w.mu.Unlock()
	if !ok {
		// The manager believed an instance was here; it may have been
		// lost to eviction racing the dispatch — retryable.
		w.sendResult(infraResult(spec.ID, fmt.Errorf("worker %s has no library %q", w.cfg.ID, spec.Library)))
		return
	}
	if h.lib.Spec.Mode == core.ExecDirect {
		h.direct.Lock()
		defer h.direct.Unlock()
	}
	res, err := h.lib.Invoke(spec.Function, spec.Args)
	if err != nil {
		w.sendResult(core.Result{
			ID: spec.ID, Ok: false, Err: err.Error(),
			Metrics: core.InvocationMetrics{LibraryInstance: h.lib.Instance},
		})
		return
	}
	w.sendResult(core.Result{
		ID:    spec.ID,
		Ok:    true,
		Value: res.Value,
		Metrics: core.InvocationMetrics{
			SetupTime:       res.SetupTime,
			ExecTime:        res.ExecTime,
			LibraryInstance: h.lib.Instance,
		},
	})
}

// ---- sandbox ----

// sandbox is the per-task working directory: staged input objects by
// name, plus the result file the script writes.
type sandbox struct {
	mu     sync.Mutex
	inputs map[string]*content.Object
	result []byte
}

func newSandbox() *sandbox {
	return &sandbox{inputs: map[string]*content.Object{}}
}

func (sb *sandbox) add(obj *content.Object) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.inputs[obj.Name] = obj
}

// runtimeModule exposes the sandbox to task scripts as the
// vine_runtime module: load staged inputs, unpickle them, apply
// functions, and store the pickled result.
func (sb *sandbox) runtimeModule(ip *minipy.Interp) *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "vine_runtime", Attrs: map[string]minipy.Value{}}
	m.Attrs["load_text"] = &minipy.Builtin{Name: "load_text", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		name, err := argStr(args, 0, "load_text")
		if err != nil {
			return nil, err
		}
		obj, err := sb.lookup(name)
		if err != nil {
			return nil, err
		}
		return minipy.Str(obj.Data), nil
	}}
	m.Attrs["load_pickle"] = &minipy.Builtin{Name: "load_pickle", Fn: func(ip *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		name, err := argStr(args, 0, "load_pickle")
		if err != nil {
			return nil, err
		}
		obj, err := sb.lookup(name)
		if err != nil {
			return nil, err
		}
		return pickle.Unmarshal(obj.Data, ip)
	}}
	m.Attrs["call"] = &minipy.Builtin{Name: "call", Fn: func(ip *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("call() takes a function and an argument list")
		}
		elems, ok := seqElems(args[1])
		if !ok {
			return nil, fmt.Errorf("call() second argument must be a list or tuple")
		}
		return ip.Call(args[0], elems, nil)
	}}
	m.Attrs["store_result"] = &minipy.Builtin{Name: "store_result", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("store_result() takes 1 argument")
		}
		data, err := pickle.Marshal(args[0])
		if err != nil {
			return nil, fmt.Errorf("store_result(): %v", err)
		}
		sb.mu.Lock()
		sb.result = data
		sb.mu.Unlock()
		return minipy.NoneValue, nil
	}}
	m.Attrs["input_names"] = &minipy.Builtin{Name: "input_names", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		sb.mu.Lock()
		defer sb.mu.Unlock()
		l := &minipy.List{}
		for name := range sb.inputs {
			l.Elems = append(l.Elems, minipy.Str(name))
		}
		sortStrValues(l)
		return l, nil
	}}
	return m
}

func (sb *sandbox) lookup(name string) (*content.Object, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	obj, ok := sb.inputs[name]
	if !ok {
		return nil, fmt.Errorf("no staged input named %q", name)
	}
	return obj, nil
}

func argStr(args []minipy.Value, i int, fname string) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("%s() missing argument %d", fname, i+1)
	}
	s, ok := args[i].(minipy.Str)
	if !ok {
		return "", fmt.Errorf("%s() argument must be a str", fname)
	}
	return string(s), nil
}

func seqElems(v minipy.Value) ([]minipy.Value, bool) {
	switch x := v.(type) {
	case *minipy.List:
		return x.Elems, true
	case *minipy.Tuple:
		return x.Elems, true
	}
	return nil, false
}

func sortStrValues(l *minipy.List) {
	strs := make([]string, len(l.Elems))
	for i, e := range l.Elems {
		strs[i] = string(e.(minipy.Str))
	}
	// insertion sort; lists are tiny
	for i := 1; i < len(strs); i++ {
		for j := i; j > 0 && strs[j] < strs[j-1]; j-- {
			strs[j], strs[j-1] = strs[j-1], strs[j]
		}
	}
	for i, s := range strs {
		l.Elems[i] = minipy.Str(s)
	}
}

// WrapperScript is the generic script that turns a function invocation
// into a stateless task (§1's "naive transformation"): it deserializes
// the function and arguments from its inputs and executes them, paying
// the full context-reload cost every time. The L1 and L2 evaluation
// levels run invocations through this wrapper.
const WrapperScript = `
import vine_runtime
f = vine_runtime.load_pickle("func")
args = vine_runtime.load_pickle("args")
vine_runtime.store_result(vine_runtime.call(f, args))
`
