package worker

import (
	"time"

	"repro/internal/content"
	"repro/internal/dataplane"
	"repro/internal/proto"
)

func metaToObject(m proto.FileMeta) *content.Object {
	return &content.Object{
		ID:           m.ID,
		Name:         m.Name,
		Kind:         content.Kind(m.Kind),
		Data:         m.Data,
		LogicalSize:  m.LogicalSize,
		UnpackedSize: m.UnpackedSize,
	}
}

// hdrToObject assembles an object from a bulk frame's header and raw
// payload; data is retained as-is, no copy.
func hdrToObject(h proto.FileHdr, data []byte) *content.Object {
	return &content.Object{
		ID:           h.ID,
		Name:         h.Name,
		Kind:         content.Kind(h.Kind),
		Data:         data,
		LogicalSize:  h.LogicalSize,
		UnpackedSize: h.UnpackedSize,
	}
}

// FetchFromPeer requests an object by ID from a worker data server,
// with the default idle timeout on every read and write.
func FetchFromPeer(addr, id string) (*content.Object, error) {
	return fetchFromPeer(addr, id, defaultPeerIOTimeout)
}

// fetchFromPeer delegates to the data plane's wire fetch with an
// explicit idle timeout.
func fetchFromPeer(addr, id string, idle time.Duration) (*content.Object, error) {
	return dataplane.FetchPeer(addr, id, idle)
}
