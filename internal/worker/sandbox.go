package worker

import (
	"fmt"
	"sync"

	"repro/internal/content"
	"repro/internal/minipy"
	"repro/internal/pickle"
)

// sandbox is the per-task working directory: staged input objects by
// name, plus the result file the script writes.
type sandbox struct {
	mu     sync.Mutex
	inputs map[string]*content.Object
	result []byte
}

func newSandbox() *sandbox {
	return &sandbox{inputs: map[string]*content.Object{}}
}

func (sb *sandbox) add(obj *content.Object) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.inputs[obj.Name] = obj
}

// runtimeModule exposes the sandbox to task scripts as the
// vine_runtime module: load staged inputs, unpickle them, apply
// functions, and store the pickled result.
func (sb *sandbox) runtimeModule(ip *minipy.Interp) *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "vine_runtime", Attrs: map[string]minipy.Value{}}
	m.Attrs["load_text"] = &minipy.Builtin{Name: "load_text", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		name, err := argStr(args, 0, "load_text")
		if err != nil {
			return nil, err
		}
		obj, err := sb.lookup(name)
		if err != nil {
			return nil, err
		}
		return minipy.Str(obj.Data), nil
	}}
	m.Attrs["load_pickle"] = &minipy.Builtin{Name: "load_pickle", Fn: func(ip *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		name, err := argStr(args, 0, "load_pickle")
		if err != nil {
			return nil, err
		}
		obj, err := sb.lookup(name)
		if err != nil {
			return nil, err
		}
		return pickle.Unmarshal(obj.Data, ip)
	}}
	m.Attrs["call"] = &minipy.Builtin{Name: "call", Fn: func(ip *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("call() takes a function and an argument list")
		}
		elems, ok := seqElems(args[1])
		if !ok {
			return nil, fmt.Errorf("call() second argument must be a list or tuple")
		}
		return ip.Call(args[0], elems, nil)
	}}
	m.Attrs["store_result"] = &minipy.Builtin{Name: "store_result", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("store_result() takes 1 argument")
		}
		data, err := pickle.Marshal(args[0])
		if err != nil {
			return nil, fmt.Errorf("store_result(): %v", err)
		}
		sb.mu.Lock()
		sb.result = data
		sb.mu.Unlock()
		return minipy.NoneValue, nil
	}}
	m.Attrs["input_names"] = &minipy.Builtin{Name: "input_names", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		sb.mu.Lock()
		defer sb.mu.Unlock()
		l := &minipy.List{}
		for name := range sb.inputs {
			l.Elems = append(l.Elems, minipy.Str(name))
		}
		sortStrValues(l)
		return l, nil
	}}
	return m
}

func (sb *sandbox) lookup(name string) (*content.Object, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	obj, ok := sb.inputs[name]
	if !ok {
		return nil, fmt.Errorf("no staged input named %q", name)
	}
	return obj, nil
}

func argStr(args []minipy.Value, i int, fname string) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("%s() missing argument %d", fname, i+1)
	}
	s, ok := args[i].(minipy.Str)
	if !ok {
		return "", fmt.Errorf("%s() argument must be a str", fname)
	}
	return string(s), nil
}

func seqElems(v minipy.Value) ([]minipy.Value, bool) {
	switch x := v.(type) {
	case *minipy.List:
		return x.Elems, true
	case *minipy.Tuple:
		return x.Elems, true
	}
	return nil, false
}

func sortStrValues(l *minipy.List) {
	strs := make([]string, len(l.Elems))
	for i, e := range l.Elems {
		strs[i] = string(e.(minipy.Str))
	}
	// insertion sort; lists are tiny
	for i := 1; i < len(strs); i++ {
		for j := i; j > 0 && strs[j] < strs[j-1]; j-- {
			strs[j], strs[j-1] = strs[j-1], strs[j]
		}
	}
	for i, s := range strs {
		l.Elems[i] = minipy.Str(s)
	}
}

// WrapperScript is the generic script that turns a function invocation
// into a stateless task (§1's "naive transformation"): it deserializes
// the function and arguments from its inputs and executes them, paying
// the full context-reload cost every time. The L1 and L2 evaluation
// levels run invocations through this wrapper.
const WrapperScript = `
import vine_runtime
f = vine_runtime.load_pickle("func")
args = vine_runtime.load_pickle("args")
vine_runtime.store_result(vine_runtime.call(f, args))
`
