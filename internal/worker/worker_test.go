package worker

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/modlib"
	"repro/internal/poncho"
	"repro/internal/proto"

	"repro/internal/minipy"
	"repro/internal/pickle"
	"repro/internal/pkgindex"
)

// fakeManager accepts one worker connection and exposes the framed
// conn for driving the worker directly.
type fakeManager struct {
	ln   net.Listener
	conn *proto.Conn
	nc   net.Conn
}

func newFakeManager(t *testing.T) *fakeManager {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fm := &fakeManager{ln: ln}
	t.Cleanup(func() {
		ln.Close()
		if fm.nc != nil {
			fm.nc.Close()
		}
	})
	return fm
}

func (fm *fakeManager) accept(t *testing.T) proto.Hello {
	t.Helper()
	nc, err := fm.ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	fm.nc = nc
	fm.conn = proto.NewConn(nc)
	typ, raw, err := fm.conn.Recv()
	if err != nil || typ != proto.MsgHello {
		t.Fatalf("expected hello, got %v %v", typ, err)
	}
	hello, err := proto.Decode[proto.Hello](raw)
	if err != nil {
		t.Fatal(err)
	}
	return hello
}

func (fm *fakeManager) expect(t *testing.T, want proto.MsgType) []byte {
	t.Helper()
	typ, raw, err := fm.conn.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if typ != want {
		t.Fatalf("got %v, want %v", typ, want)
	}
	return raw
}

func startWorker(t *testing.T, fm *fakeManager, cfg Config) (*Worker, proto.Hello) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = modlib.Standard()
	}
	w := New(cfg)
	if err := w.Connect(fm.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Shutdown)
	hello := fm.accept(t)
	return w, hello
}

func TestHelloAnnouncesResources(t *testing.T) {
	fm := newFakeManager(t)
	_, hello := startWorker(t, fm, Config{
		ID:        "w-test",
		Resources: core.Resources{Cores: 8, MemoryMB: 1024, DiskMB: 2048},
		Cluster:   "rack1",
		GFlops:    4.4,
	})
	if hello.WorkerID != "w-test" || hello.Resources.Cores != 8 ||
		hello.Cluster != "rack1" || hello.MachineGFlops != 4.4 {
		t.Errorf("hello = %+v", hello)
	}
	if hello.DataAddr == "" {
		t.Errorf("no data server address announced")
	}
}

func TestPutFileValidatesContent(t *testing.T) {
	fm := newFakeManager(t)
	w, _ := startWorker(t, fm, Config{ID: "w"})
	good := content.NewBlob("ok.bin", []byte("data"))
	if err := fm.conn.Send(proto.MsgPutFile, proto.PutFile{
		File:  proto.FileMeta{ID: good.ID, Name: good.Name, Data: good.Data, LogicalSize: good.LogicalSize},
		Cache: true,
	}); err != nil {
		t.Fatal(err)
	}
	ack, _ := proto.Decode[proto.FileAck](fm.expect(t, proto.MsgFileAck))
	if !ack.Ok || !ack.Cache {
		t.Fatalf("ack = %+v", ack)
	}
	if !w.Cache().Has(good.ID) {
		t.Errorf("object not cached")
	}

	// Corrupt content: ID does not match data.
	if err := fm.conn.Send(proto.MsgPutFile, proto.PutFile{
		File: proto.FileMeta{ID: good.ID, Name: "bad", Data: []byte("tampered"), LogicalSize: 8},
	}); err != nil {
		t.Fatal(err)
	}
	ack2, _ := proto.Decode[proto.FileAck](fm.expect(t, proto.MsgFileAck))
	if ack2.Ok || !strings.Contains(ack2.Err, "corrupt") {
		t.Errorf("corrupt put accepted: %+v", ack2)
	}
}

func TestPeerDataServer(t *testing.T) {
	fm := newFakeManager(t)
	w, hello := startWorker(t, fm, Config{ID: "src"})
	obj := content.NewBlob("shared.bin", []byte("hello peers"))
	if err := w.Cache().Put(obj); err != nil {
		t.Fatal(err)
	}
	got, err := FetchFromPeer(hello.DataAddr, obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "hello peers" {
		t.Errorf("peer fetch data = %q", got.Data)
	}
	if _, err := FetchFromPeer(hello.DataAddr, "nonexistent"); err == nil {
		t.Errorf("fetch of uncached object should fail")
	}
	if _, err := FetchFromPeer("127.0.0.1:1", obj.ID); err == nil {
		t.Errorf("fetch from dead peer should fail")
	}
}

func TestFetchFileChainsWorkers(t *testing.T) {
	// Worker B fetches from worker A on instruction — a spanning tree
	// edge.
	fmA := newFakeManager(t)
	wA, helloA := startWorker(t, fmA, Config{ID: "a"})
	fmB := newFakeManager(t)
	wB, _ := startWorker(t, fmB, Config{ID: "b"})

	obj := content.NewBlob("env.tar", []byte("environment bytes"))
	if err := wA.Cache().Put(obj); err != nil {
		t.Fatal(err)
	}
	if err := fmB.conn.Send(proto.MsgFetchFile, proto.FetchFile{
		ID: obj.ID, Name: obj.Name, FromAddr: helloA.DataAddr, Cache: true,
	}); err != nil {
		t.Fatal(err)
	}
	ack, _ := proto.Decode[proto.FileAck](fmB.expect(t, proto.MsgFileAck))
	if !ack.Ok {
		t.Fatalf("fetch failed: %s", ack.Err)
	}
	if !wB.Cache().Has(obj.ID) {
		t.Errorf("fetched object not cached on B")
	}
}

func TestTaskNeedsStagedInputs(t *testing.T) {
	fm := newFakeManager(t)
	_, _ = startWorker(t, fm, Config{ID: "w"})
	missing := content.NewBlob("gone.bin", []byte("z"))
	spec := core.TaskSpec{
		ID:        1,
		Script:    "import vine_runtime\nvine_runtime.store_result(1)\n",
		Inputs:    []core.FileSpec{{Object: missing}},
		Resources: core.Resources{Cores: 1},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if res.Ok || !strings.Contains(res.Err, "not staged") {
		t.Errorf("task with missing input: %+v", res)
	}
}

func TestTaskModuleIsolation(t *testing.T) {
	// A task may import only what its staged environments install.
	fm := newFakeManager(t)
	_, _ = startWorker(t, fm, Config{ID: "w"})

	spec := core.TaskSpec{
		ID:        2,
		Script:    "import mathx\nimport vine_runtime\nvine_runtime.store_result(mathx.sqrt(4.0))\n",
		Resources: core.Resources{Cores: 1},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if res.Ok || !strings.Contains(res.Err, "no module named 'mathx'") {
		t.Errorf("import without environment should fail: %+v", res)
	}

	// Now stage an environment that installs mathx and retry.
	envSpec, err := poncho.Resolve(pkgindex.StandardIndex(), []string{"mathx"})
	if err != nil {
		t.Fatal(err)
	}
	tarball, err := envSpec.Pack("env.tar.gz")
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.conn.Send(proto.MsgPutFile, proto.PutFile{
		File: proto.FileMeta{ID: tarball.ID, Name: tarball.Name, Kind: int(tarball.Kind),
			Data: tarball.Data, LogicalSize: tarball.LogicalSize, UnpackedSize: tarball.UnpackedSize},
		Cache: true, Unpack: true,
	}); err != nil {
		t.Fatal(err)
	}
	fm.expect(t, proto.MsgFileAck)
	spec.ID = 3
	spec.Inputs = []core.FileSpec{{Object: tarball, Cache: true, Unpack: true}}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res2, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if !res2.Ok {
		t.Errorf("task with environment failed: %s", res2.Err)
	}
}

func TestResourceEnforcement(t *testing.T) {
	fm := newFakeManager(t)
	_, _ = startWorker(t, fm, Config{ID: "w", Resources: core.Resources{Cores: 2, MemoryMB: 100, DiskMB: 100}})
	spec := core.TaskSpec{
		ID:        9,
		Script:    "import vine_runtime\nvine_runtime.store_result(0)\n",
		Resources: core.Resources{Cores: 64},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if res.Ok || !strings.Contains(res.Err, "insufficient resources") {
		t.Errorf("oversized task accepted: %+v", res)
	}
}

func TestStepLimitStopsRunawayTask(t *testing.T) {
	fm := newFakeManager(t)
	_, _ = startWorker(t, fm, Config{ID: "w", StepLimit: 10000})
	spec := core.TaskSpec{
		ID:        4,
		Script:    "while True:\n    pass\n",
		Resources: core.Resources{Cores: 1},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if res.Ok || !strings.Contains(res.Err, "step limit") {
		t.Errorf("runaway task not stopped: %+v", res)
	}
}

func TestLibraryInstallAndRemove(t *testing.T) {
	fm := newFakeManager(t)
	w, _ := startWorker(t, fm, Config{ID: "w"})
	spec := core.LibrarySpec{
		Name:      "lib",
		Functions: []core.FunctionSpec{{Name: "f", Source: "def f(x):\n    return x + 1\n"}},
		Resources: core.Resources{Cores: 1, MemoryMB: 64, DiskMB: 64},
	}
	if err := fm.conn.Send(proto.MsgInstallLibrary, spec); err != nil {
		t.Fatal(err)
	}
	ack, _ := proto.Decode[proto.LibraryAck](fm.expect(t, proto.MsgLibraryAck))
	if !ack.Ok || ack.Library != "lib" || ack.Instance == "" {
		t.Fatalf("install ack = %+v", ack)
	}
	if len(w.Libraries()) != 1 {
		t.Errorf("libraries = %v", w.Libraries())
	}
	// Duplicate install fails.
	if err := fm.conn.Send(proto.MsgInstallLibrary, spec); err != nil {
		t.Fatal(err)
	}
	dup, _ := proto.Decode[proto.LibraryAck](fm.expect(t, proto.MsgLibraryAck))
	if dup.Ok {
		t.Errorf("duplicate install accepted")
	}
	// Remove frees it; share value resets to "not installed".
	if err := fm.conn.Send(proto.MsgRemoveLibrary, proto.RemoveLibrary{Library: "lib"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(w.Libraries()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("library not removed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w.LibraryShare("lib") != -1 {
		t.Errorf("share of removed library should be -1")
	}
}

func TestWrapperScriptRunsPickledFunction(t *testing.T) {
	// The L1/L2 wrapper: deserialize func+args from inputs and run.
	fm := newFakeManager(t)
	_, _ = startWorker(t, fm, Config{ID: "w"})

	funcBlob, argsBlob := buildWrappedPayload(t)
	for _, obj := range []*content.Object{funcBlob, argsBlob} {
		if err := fm.conn.Send(proto.MsgPutFile, proto.PutFile{
			File: proto.FileMeta{ID: obj.ID, Name: obj.Name, Data: obj.Data, LogicalSize: obj.LogicalSize},
		}); err != nil {
			t.Fatal(err)
		}
		fm.expect(t, proto.MsgFileAck)
	}
	spec := core.TaskSpec{
		ID:     5,
		Script: WrapperScript,
		Inputs: []core.FileSpec{
			{Object: funcBlob},
			{Object: argsBlob},
		},
		Resources: core.Resources{Cores: 1},
	}
	if err := fm.conn.Send(proto.MsgRunTask, spec); err != nil {
		t.Fatal(err)
	}
	res, _ := proto.DecodeResult(fm.expect(t, proto.MsgResult))
	if !res.Ok {
		t.Fatalf("wrapper task failed: %s", res.Err)
	}
}

// buildWrappedPayload pickles a trivial function and args into the
// "func"/"args" input blobs the wrapper script expects.
func buildWrappedPayload(t *testing.T) (fn, args *content.Object) {
	t.Helper()
	ip := minipy.NewInterp(nil)
	env, err := ip.RunModule("def add(a, b):\n    return a + b\n", "m")
	if err != nil {
		t.Fatal(err)
	}
	fv, _ := env.Get("add")
	funcData, err := pickle.Marshal(fv)
	if err != nil {
		t.Fatal(err)
	}
	argsData, err := pickle.Marshal(minipy.NewTuple(minipy.Int(1), minipy.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	return content.NewBlob("func", funcData), content.NewBlob("args", argsData)
}

func TestFetchFromPeerTimesOutOnSilentServer(t *testing.T) {
	// A peer that accepts the connection but never answers must cost a
	// bounded wait, not wedge the worker's message loop forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		// Read the request, then go silent.
		buf := make([]byte, 1024)
		nc.Read(buf)
		time.Sleep(5 * time.Second)
	}()

	start := time.Now()
	_, err = fetchFromPeer(ln.Addr().String(), "some-object", 100*time.Millisecond)
	if err == nil {
		t.Fatal("fetch from a silent peer should fail")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("fetch took %v, want ~100ms idle timeout", d)
	}
}

func TestFetchFromPeerTimesOutMidStream(t *testing.T) {
	// A peer that starts answering and then stalls mid-frame must also
	// be cut by the idle deadline.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		buf := make([]byte, 1024)
		nc.Read(buf)
		// A frame header promising a large body, then silence.
		nc.Write([]byte{0x00, 0x10, 0x00, 0x00})
		time.Sleep(5 * time.Second)
	}()

	start := time.Now()
	_, err = fetchFromPeer(ln.Addr().String(), "some-object", 100*time.Millisecond)
	if err == nil {
		t.Fatal("fetch from a stalling peer should fail")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("fetch took %v, want ~100ms idle timeout", d)
	}
}
