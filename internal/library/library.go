// Package library implements the "library" of §3.4: the special
// daemon task a worker runs to set up and retain a function context in
// memory. A Library executes its context-setup function once, reports
// ready, and then serves invocations — either directly in its own
// memory space or by forking a copy-on-write child — so that every
// invocation after the first pays only for argument loading.
package library

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/pickle"
)

// Host is the library's view of its environment: which modules its
// unpacked software environment makes importable, where prints go, and
// which input data objects are bound to the context (the
// data-to-worker binding of §2.2.1).
type Host struct {
	// Resolve builds a module instance, or errors if not installed.
	Resolve func(ip *minipy.Interp, name string) (*minipy.ModuleVal, error)
	// Out receives print() output from library code.
	Out io.Writer
	// Inputs maps staged input names to their cached objects; library
	// code reads them through the always-importable vine_data module.
	Inputs map[string]*content.Object
}

// ResolveModule implements minipy.Host.
func (h *Host) ResolveModule(ip *minipy.Interp, name string) (*minipy.ModuleVal, error) {
	if name == "vine_data" {
		return h.dataModule(), nil
	}
	if h.Resolve == nil {
		return nil, fmt.Errorf("no module named '%s'", name)
	}
	return h.Resolve(ip, name)
}

// dataModule exposes the context's bound input data to library code:
// the one shared copy every invocation reads (§2.2.1's
// data-to-invocation binding).
func (h *Host) dataModule() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "vine_data", Attrs: map[string]minipy.Value{}}
	lookup := func(name string) (*content.Object, error) {
		obj, ok := h.Inputs[name]
		if !ok {
			return nil, fmt.Errorf("no input data named %q bound to this context", name)
		}
		return obj, nil
	}
	m.Attrs["load_text"] = &minipy.Builtin{Name: "load_text", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("load_text() takes 1 argument")
		}
		name, ok := args[0].(minipy.Str)
		if !ok {
			return nil, fmt.Errorf("load_text() argument must be a str")
		}
		obj, err := lookup(string(name))
		if err != nil {
			return nil, err
		}
		return minipy.Str(obj.Data), nil
	}}
	m.Attrs["load_pickle"] = &minipy.Builtin{Name: "load_pickle", Fn: func(ip *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("load_pickle() takes 1 argument")
		}
		name, ok := args[0].(minipy.Str)
		if !ok {
			return nil, fmt.Errorf("load_pickle() argument must be a str")
		}
		obj, err := lookup(string(name))
		if err != nil {
			return nil, err
		}
		return pickle.Unmarshal(obj.Data, ip)
	}}
	m.Attrs["names"] = &minipy.Builtin{Name: "names", Fn: func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		l := &minipy.List{}
		for n := range h.Inputs {
			l.Elems = append(l.Elems, minipy.Str(n))
		}
		l.Elems = sortStrs(l.Elems)
		return l, nil
	}}
	return m
}

func sortStrs(elems []minipy.Value) []minipy.Value {
	for i := 1; i < len(elems); i++ {
		for j := i; j > 0 && string(elems[j].(minipy.Str)) < string(elems[j-1].(minipy.Str)); j-- {
			elems[j], elems[j-1] = elems[j-1], elems[j]
		}
	}
	return elems
}

// Stdout implements minipy.Host.
func (h *Host) Stdout() io.Writer {
	if h.Out == nil {
		return io.Discard
	}
	return h.Out
}

// Library is a running library instance on a worker.
type Library struct {
	Spec core.LibrarySpec
	// Instance uniquely identifies this deployment of the library (one
	// library name may have instances on many workers).
	Instance string

	ip      *minipy.Interp
	globals *minipy.Env
	funcs   map[string]*minipy.Func

	mu     sync.Mutex
	served int64 // completed invocations — the share value of Figure 11

	// SetupDuration is the wall time the context setup took (the
	// library overhead row of Table 5).
	SetupDuration time.Duration
}

// Start launches a library instance: it reconstructs the library's
// functions (from source or pickles) into one shared namespace, runs
// the context-setup function, and returns ready to serve invocations —
// steps (1) and (2) of the §3.4 protocol.
func Start(spec core.LibrarySpec, instance string, host *Host) (*Library, error) {
	ip := minipy.NewInterp(host)
	lib := &Library{
		Spec:     spec,
		Instance: instance,
		ip:       ip,
		globals:  ip.NewGlobals(),
		funcs:    map[string]*minipy.Func{},
	}

	// Reconstruct every function into the shared library namespace.
	for _, fs := range spec.Functions {
		fn, err := lib.buildFunction(fs)
		if err != nil {
			return nil, fmt.Errorf("library %s: %w", spec.Name, err)
		}
		lib.funcs[fs.Name] = fn
		lib.globals.Set(fs.Name, fn)
	}

	// Run the context setup function, if any, in the shared namespace:
	// whatever it registers with `global` stays loaded for invocations.
	start := time.Now()
	if len(spec.ContextSetup) > 0 {
		setupVal, err := pickle.Unmarshal(spec.ContextSetup, ip)
		if err != nil {
			return nil, fmt.Errorf("library %s: deserializing context setup: %w", spec.Name, err)
		}
		setup, ok := setupVal.(*minipy.Func)
		if !ok {
			return nil, fmt.Errorf("library %s: context setup is %s, not a function", spec.Name, setupVal.Type())
		}
		minipy.AdoptGlobals(setup, lib.globals)
		var args []minipy.Value
		if len(spec.ContextArgs) > 0 {
			argsVal, err := pickle.Unmarshal(spec.ContextArgs, ip)
			if err != nil {
				return nil, fmt.Errorf("library %s: deserializing context args: %w", spec.Name, err)
			}
			tup, ok := argsVal.(*minipy.Tuple)
			if !ok {
				return nil, fmt.Errorf("library %s: context args must be a tuple", spec.Name)
			}
			args = tup.Elems
		}
		if _, err := ip.Call(setup, args, nil); err != nil {
			return nil, fmt.Errorf("library %s: context setup failed: %w", spec.Name, err)
		}
	}
	lib.SetupDuration = time.Since(start)
	return lib, nil
}

// buildFunction reconstructs one function spec into the library
// namespace, preferring source (defined by name, as §3.2 describes)
// and falling back to the pickled code object.
func (l *Library) buildFunction(fs core.FunctionSpec) (*minipy.Func, error) {
	if fs.Source != "" {
		mod, err := minipy.Parse(fs.Source)
		if err != nil {
			return nil, fmt.Errorf("function %s: parsing source: %w", fs.Name, err)
		}
		if err := l.ip.ExecBlockWithSource(mod.Body, l.globals, fs.Source, l.Spec.Name); err != nil {
			return nil, fmt.Errorf("function %s: executing source: %w", fs.Name, err)
		}
		v, ok := l.globals.Get(fs.Name)
		if !ok {
			return nil, fmt.Errorf("function %s: source did not define it", fs.Name)
		}
		fn, ok := v.(*minipy.Func)
		if !ok {
			return nil, fmt.Errorf("function %s: source defined a %s, not a function", fs.Name, v.Type())
		}
		return fn, nil
	}
	if len(fs.Pickled) == 0 {
		return nil, fmt.Errorf("function %s: spec has neither source nor pickled code", fs.Name)
	}
	v, err := pickle.Unmarshal(fs.Pickled, l.ip)
	if err != nil {
		return nil, fmt.Errorf("function %s: deserializing: %w", fs.Name, err)
	}
	fn, ok := v.(*minipy.Func)
	if !ok {
		return nil, fmt.Errorf("function %s: pickle holds a %s, not a function", fs.Name, v.Type())
	}
	minipy.AdoptGlobals(fn, l.globals)
	return fn, nil
}

// Functions returns the names this library serves, for scheduling.
func (l *Library) Functions() []string {
	out := make([]string, 0, len(l.funcs))
	for name := range l.funcs {
		out = append(out, name)
	}
	return out
}

// Served returns the number of invocations completed so far — the
// library's share value.
func (l *Library) Served() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.served
}

// Globals exposes the shared namespace (tests and the worker use it to
// inspect retained state).
func (l *Library) Globals() *minipy.Env { return l.globals }

// InvokeResult is the outcome of one invocation, with the state
// reconstruction (SetupTime) and execution components separated as in
// Table 5.
type InvokeResult struct {
	Value     []byte // pickled return value
	SetupTime float64
	ExecTime  float64
}

// Invoke executes one invocation — steps (3) and (4) of the §3.4
// protocol. The args payload is the pickled argument tuple. In direct
// mode the invocation runs synchronously in the library's memory
// space; in fork mode it runs on a copy-on-write clone, so concurrent
// invocations and global mutations cannot corrupt the retained
// context.
func (l *Library) Invoke(function string, args []byte) (InvokeResult, error) {
	fn, ok := l.funcs[function]
	if !ok {
		return InvokeResult{}, fmt.Errorf("library %s has no function %q", l.Spec.Name, function)
	}

	setupStart := time.Now()
	ip := l.ip
	if l.Spec.Mode == core.ExecFork {
		ip = l.ip.Fork()
		fn = minipy.ForkFunc(fn)
	}
	var argVals []minipy.Value
	if len(args) > 0 {
		av, err := pickle.Unmarshal(args, ip)
		if err != nil {
			return InvokeResult{}, fmt.Errorf("library %s: deserializing args for %s: %w", l.Spec.Name, function, err)
		}
		tup, ok := av.(*minipy.Tuple)
		if !ok {
			return InvokeResult{}, fmt.Errorf("library %s: args for %s must be a tuple, got %s", l.Spec.Name, function, av.Type())
		}
		argVals = tup.Elems
	}
	setupTime := time.Since(setupStart).Seconds()

	execStart := time.Now()
	out, err := ip.Call(fn, argVals, nil)
	if err != nil {
		return InvokeResult{}, fmt.Errorf("invocation of %s.%s failed: %w", l.Spec.Name, function, err)
	}
	execTime := time.Since(execStart).Seconds()

	value, err := pickle.Marshal(out)
	if err != nil {
		return InvokeResult{}, fmt.Errorf("library %s: serializing result of %s: %w", l.Spec.Name, function, err)
	}
	l.mu.Lock()
	l.served++
	l.mu.Unlock()
	return InvokeResult{Value: value, SetupTime: setupTime, ExecTime: execTime}, nil
}
