package library

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/minipy"
	"repro/internal/modlib"
	"repro/internal/pickle"
)

// testHost exposes the full module registry.
func testHost() *Host {
	reg := modlib.Standard()
	return &Host{Resolve: func(_ *minipy.Interp, name string) (*minipy.ModuleVal, error) {
		if !reg.Has(name) {
			return nil, fmt.Errorf("no module named '%s'", name)
		}
		return reg.Build(name)
	}}
}

// pickled compiles src in a scratch interpreter and pickles the named
// function.
func pickled(t *testing.T, src, name string) []byte {
	t.Helper()
	ip := minipy.NewInterp(nil)
	env, err := ip.RunModule(src, "app")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("no %q", name)
	}
	data, err := pickle.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func pickledArgs(t *testing.T, args ...minipy.Value) []byte {
	t.Helper()
	data, err := pickle.Marshal(minipy.NewTuple(args...))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStartFromSource(t *testing.T) {
	spec := core.LibrarySpec{
		Name: "lib",
		Functions: []core.FunctionSpec{{
			Name:   "double",
			Source: "def double(x):\n    return x * 2\n",
		}},
	}
	lib, err := Start(spec, "lib@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lib.Invoke("double", pickledArgs(t, minipy.Int(21)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
	if err != nil {
		t.Fatal(err)
	}
	if v.Repr() != "42" {
		t.Errorf("double(21) = %s", v.Repr())
	}
	if lib.Served() != 1 {
		t.Errorf("served = %d", lib.Served())
	}
}

func TestContextSetupSharedNamespace(t *testing.T) {
	// The setup function registers state via `global`; the function
	// reads it — the Figure 4 pattern.
	src := `
def setup(k):
    global key
    key = k * 10

def get(x):
    global key
    return key + x
`
	spec := core.LibrarySpec{
		Name:         "ctx",
		Functions:    []core.FunctionSpec{{Name: "get", Pickled: pickled(t, src, "get")}},
		ContextSetup: pickled(t, src, "setup"),
		ContextArgs:  pickledArgs(t, minipy.Int(7)),
	}
	lib, err := Start(spec, "ctx@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lib.Invoke("get", pickledArgs(t, minipy.Int(3)))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
	if v.Repr() != "73" {
		t.Errorf("get(3) = %s, want 73 (setup state + arg)", v.Repr())
	}
	if lib.SetupDuration <= 0 {
		t.Errorf("setup duration not recorded")
	}
}

func TestSetupCanUseModules(t *testing.T) {
	src := `
def setup():
    global model
    import resnet
    model = resnet.load_model("resnet50")

def infer(img):
    global model
    return model.infer(img)
`
	spec := core.LibrarySpec{
		Name:         "ml",
		Functions:    []core.FunctionSpec{{Name: "infer", Pickled: pickled(t, src, "infer")}},
		ContextSetup: pickled(t, src, "setup"),
	}
	lib, err := Start(spec, "ml@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := lib.Invoke("infer", pickledArgs(t, minipy.Int(5)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := lib.Invoke("infer", pickledArgs(t, minipy.Int(5)))
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Value) != string(r2.Value) {
		t.Errorf("same input through retained model gave different answers")
	}
}

func TestSetupFailsWithoutModule(t *testing.T) {
	src := `
def setup():
    import resnet

def f(x):
    return x
`
	spec := core.LibrarySpec{
		Name:         "broken",
		Functions:    []core.FunctionSpec{{Name: "f", Pickled: pickled(t, src, "f")}},
		ContextSetup: pickled(t, src, "setup"),
	}
	// A host with no modules: the import during setup must fail the
	// library install.
	_, err := Start(spec, "broken@test", &Host{})
	if err == nil || !strings.Contains(err.Error(), "no module named 'resnet'") {
		t.Errorf("expected import failure, got %v", err)
	}
}

func TestDirectModeRetainsMutation(t *testing.T) {
	src := `
def setup():
    global n
    n = 0

def bump():
    global n
    n = n + 1
    return n
`
	spec := core.LibrarySpec{
		Name:         "ctr",
		Mode:         core.ExecDirect,
		Functions:    []core.FunctionSpec{{Name: "bump", Pickled: pickled(t, src, "bump")}},
		ContextSetup: pickled(t, src, "setup"),
	}
	lib, err := Start(spec, "ctr@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for i := 0; i < 3; i++ {
		res, err := lib.Invoke("bump", pickledArgs(t))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
		last = v.Repr()
	}
	if last != "3" {
		t.Errorf("direct mode counter = %s, want 3", last)
	}
}

func TestForkModeIsolatesMutation(t *testing.T) {
	src := `
def setup():
    global n
    n = 0

def bump():
    global n
    n = n + 1
    return n
`
	spec := core.LibrarySpec{
		Name:         "ctr",
		Mode:         core.ExecFork,
		Functions:    []core.FunctionSpec{{Name: "bump", Pickled: pickled(t, src, "bump")}},
		ContextSetup: pickled(t, src, "setup"),
	}
	lib, err := Start(spec, "ctr@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := lib.Invoke("bump", pickledArgs(t))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
		if v.Repr() != "1" {
			t.Errorf("fork invocation %d saw counter %s, want 1", i, v.Repr())
		}
	}
}

func TestMultipleFunctionsShareNamespace(t *testing.T) {
	src := `
def seta(v):
    global shared
    shared = v
    return True

def geta():
    global shared
    return shared
`
	spec := core.LibrarySpec{
		Name: "multi",
		Mode: core.ExecDirect,
		Functions: []core.FunctionSpec{
			{Name: "seta", Pickled: pickled(t, src, "seta")},
			{Name: "geta", Pickled: pickled(t, src, "geta")},
		},
	}
	lib, err := Start(spec, "multi@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Invoke("seta", pickledArgs(t, minipy.Str("hello"))); err != nil {
		t.Fatal(err)
	}
	res, err := lib.Invoke("geta", pickledArgs(t))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
	if minipy.ToStr(v) != "hello" {
		t.Errorf("functions do not share the library namespace: %s", v.Repr())
	}
	names := lib.Functions()
	if len(names) != 2 {
		t.Errorf("functions = %v", names)
	}
}

func TestInvokeErrors(t *testing.T) {
	spec := core.LibrarySpec{
		Name:      "e",
		Functions: []core.FunctionSpec{{Name: "f", Source: "def f(x):\n    return 1 / x\n"}},
	}
	lib, err := Start(spec, "e@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Invoke("nope", pickledArgs(t)); err == nil {
		t.Errorf("unknown function should fail")
	}
	if _, err := lib.Invoke("f", pickledArgs(t, minipy.Int(0))); err == nil {
		t.Errorf("division by zero should propagate")
	}
	if _, err := lib.Invoke("f", []byte("garbage")); err == nil {
		t.Errorf("corrupt args should fail")
	}
	// The library survives all of that.
	if _, err := lib.Invoke("f", pickledArgs(t, minipy.Int(2))); err != nil {
		t.Errorf("library broken after failed invocations: %v", err)
	}
}

func TestStartErrors(t *testing.T) {
	cases := []core.LibrarySpec{
		{Name: "bad-source", Functions: []core.FunctionSpec{{Name: "f", Source: "def f(:\n"}}},
		{Name: "no-code", Functions: []core.FunctionSpec{{Name: "f"}}},
		{Name: "wrong-name", Functions: []core.FunctionSpec{{Name: "g", Source: "def f(x):\n    return x\n"}}},
		{Name: "bad-pickle", Functions: []core.FunctionSpec{{Name: "f", Pickled: []byte("junk")}}},
	}
	for _, spec := range cases {
		if _, err := Start(spec, "x", testHost()); err == nil {
			t.Errorf("library %q should fail to start", spec.Name)
		}
	}
}

func TestVineDataModule(t *testing.T) {
	src := `
def setup():
    global names, text
    import vine_data
    names = vine_data.names()
    text = vine_data.load_text("notes.txt")

def peek():
    global names, text
    return (names, text)
`
	host := testHost()
	host.Inputs = map[string]*content.Object{
		"notes.txt": content.NewBlob("notes.txt", []byte("hello data")),
		"blob.bin":  content.NewBlob("blob.bin", []byte{1, 2, 3}),
	}
	spec := core.LibrarySpec{
		Name:         "data",
		Functions:    []core.FunctionSpec{{Name: "peek", Pickled: pickled(t, src, "peek")}},
		ContextSetup: pickled(t, src, "setup"),
	}
	lib, err := Start(spec, "data@test", host)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lib.Invoke("peek", pickledArgs(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := `(["blob.bin", "notes.txt"], "hello data")`
	if v.Repr() != want {
		t.Errorf("peek() = %s, want %s", v.Repr(), want)
	}
}

func TestVineDataMissingName(t *testing.T) {
	src := `
def bad():
    import vine_data
    return vine_data.load_text("ghost")
`
	spec := core.LibrarySpec{
		Name:      "data2",
		Functions: []core.FunctionSpec{{Name: "bad", Pickled: pickled(t, src, "bad")}},
	}
	lib, err := Start(spec, "data2@test", testHost())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Invoke("bad", pickledArgs(t)); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("missing data name should fail: %v", err)
	}
}
