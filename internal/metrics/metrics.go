// Package metrics provides the statistics the paper reports: summary
// statistics of invocation run times (Table 4), fixed-bin histograms
// (Figure 7), and time series sampled against completed-invocation
// counts (Figures 10 and 11).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds mean/std/min/max of a sample, as in Table 4.
type Summary struct {
	Count int
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width binned histogram over [Lo, Hi); values
// outside the range land in the overflow/underflow counters.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
	width     float64
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n), width: (hi - lo) / float64(n)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x >= h.Hi {
		h.Overflow++
		return
	}
	i := int((x - h.Lo) / h.width)
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// ModeBin returns the center of the most populated bin.
func (h *Histogram) ModeBin() float64 {
	best := 0
	for i, b := range h.Bins {
		if b > h.Bins[best] {
			best = i
		}
	}
	return h.Lo + (float64(best)+0.5)*h.width
}

// MassBetween returns the fraction of in-range samples in [a, b).
func (h *Histogram) MassBetween(a, b float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	count := 0
	for i, n := range h.Bins {
		lo := h.Lo + float64(i)*h.width
		hi := lo + h.width
		if lo >= a && hi <= b {
			count += n
		}
	}
	return float64(count) / float64(total)
}

// Render draws an ASCII histogram (for vinebench output).
func (h *Histogram) Render(width int) string {
	max := 0
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return "(empty)\n"
	}
	var sb strings.Builder
	for i, b := range h.Bins {
		lo := h.Lo + float64(i)*h.width
		bar := strings.Repeat("#", b*width/max)
		fmt.Fprintf(&sb, "%8.1f-%-8.1f %7d %s\n", lo, lo+h.width, b, bar)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&sb, "%17s %7d\n", ">"+fmt.Sprintf("%.1f", h.Hi), h.Overflow)
	}
	return sb.String()
}

// Point is one sample of a value against a progress axis (completed
// invocations for Figures 10 and 11).
type Point struct {
	X float64
	Y float64
}

// Series collects sampled points.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Last returns the final point (zero if empty).
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Max returns the maximum Y (zero if empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// YAt returns Y at the largest X <= x (zero if none).
func (s *Series) YAt(x float64) float64 {
	y := 0.0
	for _, p := range s.Points {
		if p.X > x {
			break
		}
		y = p.Y
	}
	return y
}

// LinearFit returns slope and intercept of a least-squares fit, plus
// the correlation coefficient r — used to verify Figure 11's "share
// value grows linearly".
func (s *Series) LinearFit() (slope, intercept, r float64) {
	n := float64(len(s.Points))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range s.Points {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		syy += p.Y * p.Y
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	rden := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if rden != 0 {
		r = (n*sxy - sx*sy) / rden
	}
	return slope, intercept, r
}
