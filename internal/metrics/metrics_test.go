package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Errorf("std = %f", s.Std)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Std != 0 || one.Min != 3 || one.Max != 3 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("percentile of empty should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5.5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin 0 = %d", h.Bins[0])
	}
	if mass := h.MassBetween(0, 2); math.Abs(mass-0.4) > 1e-9 {
		t.Errorf("mass [0,2) = %f", mass)
	}
	if h.Render(20) == "" {
		t.Errorf("render empty")
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(4.5)
	}
	h.Add(1.5)
	if m := h.ModeBin(); m != 4.5 {
		t.Errorf("mode = %f", m)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != (Point{}) || s.Max() != 0 {
		t.Errorf("empty series accessors wrong")
	}
	for i := 1; i <= 10; i++ {
		s.Add(float64(i), float64(2*i))
	}
	if s.Last().Y != 20 || s.Max() != 20 {
		t.Errorf("last/max wrong: %+v", s.Last())
	}
	if y := s.YAt(5.5); y != 10 {
		t.Errorf("YAt(5.5) = %f", y)
	}
	if y := s.YAt(0.5); y != 0 {
		t.Errorf("YAt before first point = %f", y)
	}
}

func TestLinearFit(t *testing.T) {
	var s Series
	for i := 0; i < 50; i++ {
		s.Add(float64(i), 3*float64(i)+7)
	}
	slope, intercept, r := s.LinearFit()
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-7) > 1e-9 {
		t.Errorf("fit = %f x + %f", slope, intercept)
	}
	if math.Abs(r-1) > 1e-9 {
		t.Errorf("r = %f for a perfect line", r)
	}
	var flat Series
	flat.Add(1, 5)
	flat.Add(2, 5)
	_, b, _ := flat.LinearFit()
	if math.Abs(b-5) > 1e-9 {
		t.Errorf("flat intercept = %f", b)
	}
}

// Property: Summarize matches a direct recomputation, and min <= mean
// <= max.
func TestQuickSummary(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
			return false
		}
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total + under + over equals the number of added
// samples.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(0, 100, 10)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		return h.Total()+h.Underflow+h.Overflow == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
