package shardplane

import (
	"fmt"
	"testing"

	"repro/internal/hashring"
)

func TestShardOfIsStableAndInRange(t *testing.T) {
	r := NewRouter(8)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("w%04d", i)
		s := r.ShardOf(id)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%s) = %d out of range", id, s)
		}
		if s != hashring.Partition(id, 8) {
			t.Fatalf("ShardOf(%s) disagrees with hashring.Partition", id)
		}
	}
	if NewRouter(1).ShardOf("anything") != 0 {
		t.Fatal("single-shard router must map everything to shard 0")
	}
}

func TestRouteSpecRoundRobinsAliveShards(t *testing.T) {
	r := NewRouter(4)
	if _, ok := r.RouteSpec(1); ok {
		t.Fatal("RouteSpec with no live workers must report !ok")
	}
	// Add workers until at least two shards are populated.
	shards := map[int]bool{}
	for i := 0; len(shards) < 2; i++ {
		id := fmt.Sprintf("w%04d", i)
		r.Add(id)
		shards[r.ShardOf(id)] = true
	}
	seen := map[int]bool{}
	for id := int64(0); id < 16; id++ {
		s, ok := r.RouteSpec(id)
		if !ok {
			t.Fatal("RouteSpec must succeed with live workers")
		}
		if r.LiveIn(s) == 0 {
			t.Fatalf("RouteSpec(%d) chose empty shard %d", id, s)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatalf("round-robin visited %d shards, want >= 2", len(seen))
	}
	// Consecutive IDs cycle through alive shards in order.
	s0, _ := r.RouteSpec(0)
	sN, _ := r.RouteSpec(int64(len(seen)))
	if s0 != sN {
		t.Fatalf("RouteSpec must cycle with period len(alive): got %d then %d", s0, sN)
	}
}

func TestOwnerFollowsRingAndDeath(t *testing.T) {
	r := NewRouter(4)
	if _, ok := r.Owner("task-1"); ok {
		t.Fatal("Owner with no live workers must report !ok")
	}
	ring := hashring.New(0)
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("w%04d", i)
		r.Add(id)
		ring.Add(id)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("task-%d", i)
		s, ok := r.Owner(key)
		if !ok {
			t.Fatalf("Owner(%s) failed with live workers", key)
		}
		if want := r.ShardOf(ring.Lookup(key)); s != want {
			t.Fatalf("Owner(%s) = %d, want shard of ring owner %d", key, s, want)
		}
	}
	// Removing a worker re-routes its keys to the next ring member.
	victim := ring.Lookup("task-7")
	r.Remove(victim)
	ring.Remove(victim)
	s, ok := r.Owner("task-7")
	if !ok || s != r.ShardOf(ring.Lookup("task-7")) {
		t.Fatal("Owner must follow the ring after member removal")
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := NewRouter(2)
	if !r.Add("w1") || r.Add("w1") {
		t.Fatal("Add must report membership change exactly once")
	}
	if r.Live() != 1 {
		t.Fatalf("Live = %d, want 1", r.Live())
	}
	if !r.Remove("w1") || r.Remove("w1") {
		t.Fatal("Remove must report membership change exactly once")
	}
	if r.Live() != 0 {
		t.Fatalf("Live = %d, want 0", r.Live())
	}
}

func TestMergeTracesConcatenatesInShardOrder(t *testing.T) {
	got := MergeTraces([][]string{{"a", "b"}, nil, {"c"}})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("merged %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}
