// Package shardplane is the routing fabric of the sharded dispatch
// plane (DESIGN.md §12). The manager partitions worker state into N
// shards — each with its own scheduler lock, event loop, and
// dirty-mark machinery — and every spec (task or invocation) is routed
// to exactly one shard at submission. This package owns the routing
// rules, shared verbatim by the real manager and the simulator's
// sharded replay driver so the differential harness can prove the two
// engines route identically:
//
//   - A worker's home shard is hashring.Partition(workerID, N) — a
//     pure function of the ID, so both engines agree without
//     coordination.
//   - Tasks route to the shard owning the task key's ring-preferred
//     live worker (Owner): the per-shard ring walk then starts at the
//     same worker the unsharded ring walk would have chosen.
//   - Invocations round-robin across shards that have live workers
//     (RouteSpec): invocations of one library are interchangeable, so
//     spreading them is pure load balancing.
//   - With no live workers anywhere, specs park in a key-derived home
//     shard (Park) and are re-routed when the first worker joins.
//
// The Router holds no spec state and takes no shard locks — it is a
// read-mostly membership index. Cross-shard spec migration (a shard
// losing its last worker forwards its queues) is driven by the engines
// themselves, using these routing rules to pick targets.
package shardplane

import (
	"sync"

	"repro/internal/hashring"
)

// DefaultShards is the dispatch plane's default partition count. It is
// a fixed constant — not derived from the machine — so decision traces
// are reproducible across hosts.
const DefaultShards = 8

// Router maps workers and specs to shards. Safe for concurrent use.
type Router struct {
	mu      sync.RWMutex
	n       int
	ring    *hashring.Ring
	members map[string]bool
	live    []int // live worker count per shard
	alive   []int // sorted shard indexes with live > 0
}

// NewRouter builds a router over n shards (n < 1 defaults to
// DefaultShards).
func NewRouter(n int) *Router {
	if n < 1 {
		n = DefaultShards
	}
	return &Router{
		n:       n,
		ring:    hashring.New(0),
		members: map[string]bool{},
		live:    make([]int, n),
	}
}

// Shards returns the partition count.
func (r *Router) Shards() int { return r.n }

// ShardOf returns workerID's home shard — a pure function of the ID.
func (r *Router) ShardOf(workerID string) int {
	return hashring.Partition(workerID, r.n)
}

// Add registers a live worker. Reports whether membership changed.
func (r *Router) Add(workerID string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[workerID] {
		return false
	}
	r.members[workerID] = true
	r.ring.Add(workerID)
	r.live[hashring.Partition(workerID, r.n)]++
	r.recomputeAlive()
	return true
}

// Remove unregisters a worker. Reports whether membership changed.
func (r *Router) Remove(workerID string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[workerID] {
		return false
	}
	delete(r.members, workerID)
	r.ring.Remove(workerID)
	r.live[hashring.Partition(workerID, r.n)]--
	r.recomputeAlive()
	return true
}

func (r *Router) recomputeAlive() {
	r.alive = r.alive[:0]
	for s := 0; s < r.n; s++ {
		if r.live[s] > 0 {
			r.alive = append(r.alive, s)
		}
	}
}

// Live reports how many live workers the router knows.
func (r *Router) Live() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// LiveIn reports how many live workers shard s holds.
func (r *Router) LiveIn(s int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live[s]
}

// Owner routes a key to the shard of its ring-preferred live worker.
// ok is false when no worker is live anywhere.
func (r *Router) Owner(key string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id := r.ring.Lookup(key)
	if id == "" {
		return 0, false
	}
	return hashring.Partition(id, r.n), true
}

// RouteSpec round-robins a spec ID across shards with live workers.
// ok is false when no worker is live anywhere.
func (r *Router) RouteSpec(id int64) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.alive) == 0 {
		return 0, false
	}
	if id < 0 {
		id = -id
	}
	return r.alive[int(id)%len(r.alive)], true
}

// RouteSpecTenant routes one tenant's seq-th drained spec across the
// shards with live workers: a per-tenant round-robin whose start is a
// pure hash of the tenant name. Each tenant's cursor advances with its
// own drain count — not the global spec ID — so one tenant's burst
// sweeps every live shard evenly no matter how the global ID sequence
// interleaves with other tenants, and no shard's intake can be
// monopolized. ok is false when no worker is live anywhere.
func (r *Router) RouteSpecTenant(tenant string, seq int64) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.alive) == 0 {
		return 0, false
	}
	if seq < 0 {
		seq = -seq
	}
	off := int64(tenantHash(tenant) % uint32(len(r.alive)))
	return r.alive[int((off+seq)%int64(len(r.alive)))], true
}

// tenantHash is FNV-1a over the tenant name — a fixed, seedless hash
// so both engines and every host agree on each tenant's shard offset.
func tenantHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Park returns the key's home shard for specs submitted while no
// worker is live — a pure function, so re-routing on the first join
// finds them deterministically.
func (r *Router) Park(key string) int {
	return hashring.Partition(key, r.n)
}

// NextAlive returns the first shard with live workers strictly after
// `after` in cyclic shard-index order, excluding `after` itself — the
// overflow-forwarding rule: work a shard cannot place locally hops to
// the next live shard, visiting every live shard within n-1 hops. ok
// is false when no *other* shard has live workers.
func (r *Router) NextAlive(after int) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := 1; i < r.n; i++ {
		s := (after + i) % r.n
		if r.live[s] > 0 {
			return s, true
		}
	}
	return 0, false
}

// MergeTraces is the deterministic merge rule for per-shard decision
// traces: concatenate in shard-index order. Within a shard the trace
// is already the shard's own deterministic decision order; across
// shards no order is defined (the shards are independent loops), so
// the merge pins one.
func MergeTraces(perShard [][]string) []string {
	var out []string
	for _, t := range perShard {
		out = append(out, t...)
	}
	return out
}
