package faultnet

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pair returns a wrapped server-side conn and a raw client-side conn
// over a real TCP socket.
func pair(t *testing.T, inj *Injector) (server, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	wrapped := inj.WrapListener(ln)
	done := make(chan net.Conn, 1)
	go func() {
		nc, err := wrapped.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- nc
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { server.Close() })
	return server, client
}

func TestNoFaultsPassesThrough(t *testing.T) {
	inj := NewInjector()
	server, client := pair(t, inj)
	if _, err := server.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("got %q", buf)
	}
}

func TestDropAfterBytesCutsMidStream(t *testing.T) {
	inj := NewInjector()
	inj.Set(Faults{DropAfterBytes: 4})
	server, client := pair(t, inj)
	n, err := server.Write([]byte("0123456789"))
	if err == nil || n != 4 {
		t.Fatalf("write = (%d, %v), want 4 bytes then error", n, err)
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Errorf("err = %v", err)
	}
	// The client sees the 4 delivered bytes then EOF.
	buf := make([]byte, 16)
	got, _ := io.ReadFull(client, buf[:4])
	if got != 4 {
		t.Errorf("client read %d bytes before cut", got)
	}
	if _, err := client.Read(buf); err == nil {
		t.Errorf("client should see the connection die")
	}
}

func TestStallBlocksUntilHealed(t *testing.T) {
	inj := NewInjector()
	inj.Set(Faults{StallAfterBytes: 4})
	server, client := pair(t, inj)
	wrote := make(chan error, 1)
	go func() {
		_, err := server.Write([]byte("0123456789"))
		wrote <- err
	}()
	// Only the pre-stall prefix arrives.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wrote:
		t.Fatalf("write finished during stall: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Healing releases the stalled write and the rest flows.
	inj.Set(Faults{})
	if err := <-wrote; err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	rest := make([]byte, 6)
	if _, err := io.ReadFull(client, rest); err != nil {
		t.Fatal(err)
	}
	if string(rest) != "456789" {
		t.Errorf("got %q", rest)
	}
}

func TestStallReleasedByClose(t *testing.T) {
	inj := NewInjector()
	inj.Set(Faults{StallAfterBytes: 0})
	server, _ := pair(t, inj)
	inj.Set(Faults{StallAfterBytes: 1})
	wrote := make(chan error, 1)
	go func() {
		_, err := server.Write([]byte("abc"))
		wrote <- err
	}()
	time.Sleep(20 * time.Millisecond)
	server.Close()
	if err := <-wrote; err == nil {
		t.Errorf("stalled write should fail once the conn closes")
	}
}

func TestRefuseAccept(t *testing.T) {
	inj := NewInjector()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wrapped := inj.WrapListener(ln)
	inj.Set(Faults{RefuseAccept: true})
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, _ := wrapped.Accept()
		accepted <- nc
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// The refused dialer sees EOF/reset on first read.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Errorf("refused connection should die")
	}
	nc.Close()
	select {
	case c := <-accepted:
		t.Fatalf("listener accepted %v while refusing", c)
	case <-time.After(50 * time.Millisecond):
	}
	// Healing lets the next dial through.
	inj.Set(Faults{})
	nc2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	select {
	case c := <-accepted:
		if c == nil {
			t.Fatal("accept failed after heal")
		}
		c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not resume after heal")
	}
}

func TestWriteLatencyDelays(t *testing.T) {
	inj := NewInjector()
	inj.Set(Faults{WriteLatency: 30 * time.Millisecond})
	server, client := pair(t, inj)
	start := time.Now()
	go io.Copy(io.Discard, client)
	if _, err := server.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("write took %v, want >= 30ms latency", d)
	}
}
