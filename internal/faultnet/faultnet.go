// Package faultnet wraps net.Conn and net.Listener with injectable
// faults — added latency, connections dropped or stalled after a byte
// budget, refused accepts — so chaos tests can drive the engine's
// failure paths over real sockets. An Injector holds the live fault
// configuration; every wrapped connection re-reads it on each I/O
// operation, so tests can turn faults on and off mid-run.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults describes the failure behaviour injected into wrapped
// connections. The zero value injects nothing.
type Faults struct {
	// ReadLatency delays every Read by this much.
	ReadLatency time.Duration
	// WriteLatency delays every Write by this much.
	WriteLatency time.Duration
	// DropAfterBytes closes the connection with an error once this
	// many bytes have been written through it (0 = never). The write
	// that crosses the boundary is truncated at it, so the peer sees a
	// mid-stream cut, not a clean frame boundary.
	DropAfterBytes int64
	// StallAfterBytes freezes every Write once this many bytes have
	// been written (0 = never). A stalled write blocks until the
	// connection is closed or the injector's faults change — the peer
	// sees a connection that stops making progress without erroring,
	// which is exactly the failure read deadlines exist to catch.
	StallAfterBytes int64
	// RefuseAccept makes wrapped listeners close every incoming
	// connection immediately, so dialers see a reset/EOF.
	RefuseAccept bool
}

// Injector is a live fault configuration shared by any number of
// wrapped connections and listeners.
type Injector struct {
	mu  sync.Mutex
	f   Faults
	gen chan struct{} // closed and replaced on every Set, waking stalled ops
}

// NewInjector returns an injector with no faults active.
func NewInjector() *Injector {
	return &Injector{gen: make(chan struct{})}
}

// Set replaces the active faults and wakes any writes currently
// stalled under the previous configuration (they re-evaluate against
// the new one). Set(Faults{}) heals everything.
func (inj *Injector) Set(f Faults) {
	inj.mu.Lock()
	inj.f = f
	close(inj.gen)
	inj.gen = make(chan struct{})
	inj.mu.Unlock()
}

// snapshot returns the current faults plus the channel that signals
// the next configuration change.
func (inj *Injector) snapshot() (Faults, chan struct{}) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.f, inj.gen
}

// Wrap returns nc with this injector's faults applied.
func (inj *Injector) Wrap(nc net.Conn) net.Conn {
	return &faultConn{Conn: nc, inj: inj, closed: make(chan struct{})}
}

// WrapListener returns ln whose accepted connections carry this
// injector's faults (and which refuses accepts while RefuseAccept is
// set).
func (inj *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, inj: inj}
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if f, _ := l.inj.snapshot(); f.RefuseAccept {
			nc.Close()
			continue
		}
		return l.inj.Wrap(nc), nil
	}
}

type faultConn struct {
	net.Conn
	inj       *Injector
	written   atomic.Int64
	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) Read(p []byte) (int, error) {
	if f, _ := c.inj.snapshot(); f.ReadLatency > 0 {
		time.Sleep(f.ReadLatency)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		f, gen := c.inj.snapshot()
		if f.WriteLatency > 0 {
			time.Sleep(f.WriteLatency)
		}
		w := c.written.Load()
		if f.DropAfterBytes > 0 && w >= f.DropAfterBytes {
			c.Close()
			return total, fmt.Errorf("faultnet: connection dropped after %d bytes", w)
		}
		if f.StallAfterBytes > 0 && w >= f.StallAfterBytes {
			select {
			case <-c.closed:
				return total, net.ErrClosed
			case <-gen:
				continue // faults changed; re-evaluate
			}
		}
		// Write only up to the next fault boundary so the drop/stall
		// triggers mid-stream.
		chunk := int64(len(p) - total)
		if f.DropAfterBytes > 0 && w+chunk > f.DropAfterBytes {
			chunk = f.DropAfterBytes - w
		}
		if f.StallAfterBytes > 0 && w+chunk > f.StallAfterBytes {
			chunk = f.StallAfterBytes - w
		}
		n, err := c.Conn.Write(p[total : total+int(chunk)])
		c.written.Add(int64(n))
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
