package content

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashStability(t *testing.T) {
	a := HashBytes([]byte("hello"))
	b := HashBytes([]byte("hello"))
	c := HashBytes([]byte("hellp"))
	if a != b {
		t.Errorf("same bytes hash differently")
	}
	if a == c {
		t.Errorf("different bytes hash identically")
	}
	if len(a) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(a))
	}
}

func TestObjectKinds(t *testing.T) {
	blob := NewBlob("args", []byte("x"))
	if blob.Kind != Blob || blob.LogicalSize != 1 {
		t.Errorf("blob: %+v", blob)
	}
	ds := NewDataset("imgs", []byte("manifest"), 1<<30)
	if ds.LogicalSize != 1<<30 {
		t.Errorf("dataset logical size %d", ds.LogicalSize)
	}
	tb := NewTarball("env", []byte("m"), 572<<20, 3<<30)
	if tb.Kind != Tarball || tb.UnpackedSize != 3<<30 {
		t.Errorf("tarball: %+v", tb)
	}
	if err := tb.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	tb.Data = []byte("tampered")
	if err := tb.Validate(); err == nil {
		t.Errorf("tampered object should fail validation")
	}
}

func TestLogicalSizeNeverBelowActual(t *testing.T) {
	d := NewDataset("d", []byte("0123456789"), 3)
	if d.LogicalSize != 10 {
		t.Errorf("logical size clamped to %d, want 10", d.LogicalSize)
	}
}

func TestKindString(t *testing.T) {
	if Blob.String() != "blob" || Tarball.String() != "tarball" || Dataset.String() != "dataset" {
		t.Errorf("kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still stringify")
	}
}

func TestCachePutGet(t *testing.T) {
	c := NewCache(0)
	obj := NewBlob("a", []byte("data-a"))
	if err := c.Put(obj); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(obj.ID)
	if !ok || got != obj {
		t.Fatalf("Get after Put failed")
	}
	if !c.Has(obj.ID) {
		t.Errorf("Has false for cached object")
	}
	if _, ok := c.Get("nope"); ok {
		t.Errorf("Get of missing object succeeded")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses", hits, misses)
	}
}

func TestCacheDoublePutIsNoop(t *testing.T) {
	c := NewCache(0)
	obj := NewBlob("a", []byte("data"))
	_ = c.Put(obj)
	before := c.Used()
	_ = c.Put(obj)
	if c.Used() != before {
		t.Errorf("double put changed accounting: %d -> %d", before, c.Used())
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(25)
	a := NewBlob("a", []byte("aaaaaaaaaa")) // 10 bytes
	b := NewBlob("b", []byte("bbbbbbbbbb"))
	if err := c.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b); err != nil {
		t.Fatal(err)
	}
	// Touch a so b is LRU.
	c.Get(a.ID)
	d := NewBlob("d", []byte("dddddddddd"))
	if err := c.Put(d); err != nil {
		t.Fatal(err)
	}
	if !c.Has(a.ID) {
		t.Errorf("recently used object evicted")
	}
	if c.Has(b.ID) {
		t.Errorf("LRU object not evicted")
	}
	if c.Used() > 25 {
		t.Errorf("used %d exceeds capacity", c.Used())
	}
}

func TestCachePinPreventsEviction(t *testing.T) {
	c := NewCache(25)
	a := NewBlob("a", []byte("aaaaaaaaaa"))
	b := NewBlob("b", []byte("bbbbbbbbbb"))
	_ = c.Put(a)
	_ = c.Put(b)
	if err := c.Pin(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(b.ID); err != nil {
		t.Fatal(err)
	}
	d := NewBlob("d", []byte("dddddddddd"))
	if err := c.Put(d); err == nil {
		t.Errorf("Put should fail when everything is pinned")
	}
	if err := c.Unpin(b.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(d); err != nil {
		t.Errorf("Put after unpin failed: %v", err)
	}
	if c.Has(b.ID) {
		t.Errorf("unpinned object should have been evicted")
	}
	if !c.Has(a.ID) {
		t.Errorf("pinned object was evicted")
	}
}

func TestCachePinErrors(t *testing.T) {
	c := NewCache(0)
	if err := c.Pin("missing"); err == nil {
		t.Errorf("pin of missing object should fail")
	}
	obj := NewBlob("a", []byte("x"))
	_ = c.Put(obj)
	if err := c.Unpin(obj.ID); err == nil {
		t.Errorf("unpin of unpinned object should fail")
	}
}

func TestCacheObjectLargerThanCapacity(t *testing.T) {
	c := NewCache(5)
	obj := NewBlob("big", []byte("0123456789"))
	if err := c.Put(obj); err == nil {
		t.Errorf("oversized Put should fail")
	}
}

func TestCacheUnpackAccounting(t *testing.T) {
	c := NewCache(0)
	tb := NewTarball("env", []byte("manifest"), 600, 3000)
	if err := c.Put(tb); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 600 {
		t.Errorf("used = %d, want 600", c.Used())
	}
	first, err := c.MarkUnpacked(tb.ID)
	if err != nil || !first {
		t.Fatalf("first unpack: first=%v err=%v", first, err)
	}
	if c.Used() != 3600 {
		t.Errorf("used after unpack = %d, want 3600", c.Used())
	}
	// Second unpack is a no-op: the L2 reuse fast path.
	first, err = c.MarkUnpacked(tb.ID)
	if err != nil || first {
		t.Fatalf("second unpack: first=%v err=%v", first, err)
	}
	if !c.IsUnpacked(tb.ID) {
		t.Errorf("IsUnpacked false after unpack")
	}
}

func TestCacheUnpackErrors(t *testing.T) {
	c := NewCache(0)
	if _, err := c.MarkUnpacked("missing"); err == nil {
		t.Errorf("unpack of uncached object should fail")
	}
	blob := NewBlob("b", []byte("x"))
	_ = c.Put(blob)
	if _, err := c.MarkUnpacked(blob.ID); err == nil {
		t.Errorf("unpack of non-tarball should fail")
	}
}

func TestCacheEvictExplicit(t *testing.T) {
	c := NewCache(0)
	obj := NewBlob("a", []byte("x"))
	_ = c.Put(obj)
	_ = c.Pin(obj.ID)
	if c.Evict(obj.ID) {
		t.Errorf("evict of pinned object should fail")
	}
	_ = c.Unpin(obj.ID)
	if !c.Evict(obj.ID) {
		t.Errorf("evict of unpinned object failed")
	}
	if c.Evict(obj.ID) {
		t.Errorf("evict of missing object should report false")
	}
	if c.Used() != 0 {
		t.Errorf("used = %d after evicting everything", c.Used())
	}
}

func TestCacheUnpackedEvictionReleasesBothCharges(t *testing.T) {
	c := NewCache(0)
	tb := NewTarball("env", []byte("m"), 100, 900)
	_ = c.Put(tb)
	_, _ = c.MarkUnpacked(tb.ID)
	if c.Used() != 1000 {
		t.Fatalf("used = %d", c.Used())
	}
	c.Evict(tb.ID)
	if c.Used() != 0 {
		t.Errorf("used = %d after eviction, want 0", c.Used())
	}
}

// Property: cache usage equals the sum of logical sizes of resident
// objects (plus unpacked charges), under any Put/Evict sequence.
func TestQuickCacheAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCache(1000)
		resident := map[string]int64{}
		for i, op := range ops {
			data := []byte(fmt.Sprintf("object-%d", int(op)%7))
			obj := NewBlob(fmt.Sprintf("o%d", i), data)
			if op%3 == 0 {
				if c.Evict(obj.ID) {
					delete(resident, obj.ID)
				}
			} else {
				if err := c.Put(obj); err == nil {
					if _, ok := resident[obj.ID]; !ok {
						resident[obj.ID] = obj.LogicalSize
					}
				}
			}
			// The cache may have evicted arbitrary objects to make room;
			// recompute residency from the cache's own view.
			var want int64
			for _, id := range c.IDs() {
				if sz, ok := resident[id]; ok {
					want += sz
				} else {
					want = -1
					break
				}
			}
			if want >= 0 && c.Used() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
