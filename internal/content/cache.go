package content

import (
	"fmt"
	"sort"
	"sync"
)

// Cache is a worker's local object store: a byte-budgeted,
// pin-aware, LRU-evicting map from content ID to object. Cached objects
// are what make L2 context reuse work — the first invocation pays the
// fetch (and unpack, for tarballs) and every later invocation on the
// same worker shares the single copy.
type Cache struct {
	mu       sync.Mutex
	capacity int64 // bytes; 0 = unlimited
	used     int64
	entries  map[string]*cacheEntry
	clock    int64 // logical LRU clock

	// Hits and Misses count Get outcomes for share-value metrics.
	hits   int64
	misses int64
}

type cacheEntry struct {
	obj      *Object
	pins     int
	lastUse  int64
	unpacked bool
}

// NewCache creates a cache with the given byte capacity (0 = unlimited).
func NewCache(capacity int64) *Cache {
	return &Cache{capacity: capacity, entries: map[string]*cacheEntry{}}
}

// Used returns the bytes currently charged to the cache (logical sizes
// plus unpacked sizes).
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte capacity (0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity }

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached objects.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Has reports whether an object is cached, without touching LRU state.
func (c *Cache) Has(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// Get returns a cached object and refreshes its LRU position.
func (c *Cache) Get(id string) (*Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.clock++
	e.lastUse = c.clock
	return e.obj, true
}

// Put inserts an object, evicting unpinned LRU entries if needed to fit
// the capacity. It fails if the object alone exceeds capacity or if
// pinned entries prevent making room.
func (c *Cache) Put(obj *Object) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[obj.ID]; ok {
		return nil // already cached; contents are immutable
	}
	need := obj.LogicalSize
	if c.capacity > 0 && need > c.capacity {
		return fmt.Errorf("content: object %q (%d bytes) exceeds cache capacity %d", obj.Name, need, c.capacity)
	}
	if err := c.makeRoom(need); err != nil {
		return err
	}
	c.clock++
	c.entries[obj.ID] = &cacheEntry{obj: obj, lastUse: c.clock}
	c.used += need
	return nil
}

// makeRoom evicts unpinned entries in LRU order until need bytes fit.
// Caller holds the lock.
func (c *Cache) makeRoom(need int64) error {
	if c.capacity == 0 {
		return nil
	}
	if c.used+need <= c.capacity {
		return nil
	}
	type cand struct {
		id      string
		lastUse int64
	}
	var cands []cand
	for id, e := range c.entries {
		if e.pins == 0 {
			cands = append(cands, cand{id, e.lastUse})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUse < cands[j].lastUse })
	for _, cd := range cands {
		if c.used+need <= c.capacity {
			return nil
		}
		c.evictLocked(cd.id)
	}
	if c.used+need <= c.capacity {
		return nil
	}
	return fmt.Errorf("content: cannot free %d bytes (used %d of %d, rest pinned)", need, c.used, c.capacity)
}

func (c *Cache) evictLocked(id string) {
	e, ok := c.entries[id]
	if !ok {
		return
	}
	c.used -= e.obj.LogicalSize
	if e.unpacked {
		c.used -= e.obj.UnpackedSize
	}
	delete(c.entries, id)
}

// Evict removes an unpinned object, reporting whether it was removed.
func (c *Cache) Evict(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok || e.pins > 0 {
		return false
	}
	c.evictLocked(id)
	return true
}

// Pin marks an object as in use by a task or library; pinned objects
// are never evicted. Pins nest.
func (c *Cache) Pin(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return fmt.Errorf("content: pin of uncached object %s", shortID(id))
	}
	e.pins++
	return nil
}

// Unpin releases one pin.
func (c *Cache) Unpin(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return fmt.Errorf("content: unpin of uncached object %s", shortID(id))
	}
	if e.pins == 0 {
		return fmt.Errorf("content: unpin of unpinned object %s", shortID(id))
	}
	e.pins--
	return nil
}

// MarkUnpacked records that a tarball has been expanded on local disk,
// charging its unpacked size to the cache. Unpacking an already
// unpacked object reports false (no work needed) — this is the check
// that makes environment reuse on disk (L2) cheap.
func (c *Cache) MarkUnpacked(id string) (first bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false, fmt.Errorf("content: unpack of uncached object %s", shortID(id))
	}
	if e.obj.Kind != Tarball {
		return false, fmt.Errorf("content: unpack of non-tarball object %q", e.obj.Name)
	}
	if e.unpacked {
		return false, nil
	}
	if err := c.makeRoom(e.obj.UnpackedSize); err != nil {
		return false, err
	}
	e.unpacked = true
	c.used += e.obj.UnpackedSize
	return true, nil
}

// IsUnpacked reports whether a cached tarball has been expanded.
func (c *Cache) IsUnpacked(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	return ok && e.unpacked
}

// IDs returns the cached object IDs (unordered).
func (c *Cache) IDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	return out
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
