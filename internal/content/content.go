// Package content implements the content-addressed data layer TaskVine
// uses to keep transferable data uniquely identified and read-only: every
// object is named by the hash of its contents, so replicas on different
// workers are interchangeable and can be fetched from any peer without
// risking silent corruption (§2.2.2 of the paper).
//
// Objects carry both their actual bytes (what the real engine moves over
// connections) and a logical size (what the cost models and cache
// accounting charge). This lets the repository model multi-hundred-MB
// environment tarballs faithfully without materializing them.
package content

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Kind classifies an object for cache and unpack accounting.
type Kind int

const (
	// Blob is opaque data (arguments, results, serialized functions).
	Blob Kind = iota
	// Tarball is a packed software environment that must be unpacked
	// into a directory before use, charging unpack time and extra disk.
	Tarball
	// Dataset is shareable input data bound to a function context.
	Dataset
)

func (k Kind) String() string {
	switch k {
	case Blob:
		return "blob"
	case Tarball:
		return "tarball"
	case Dataset:
		return "dataset"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Object is an immutable, content-addressed piece of data.
type Object struct {
	// ID is the hex SHA-256 of the object's bytes.
	ID string
	// Name is a human-readable label (file name); not part of identity.
	Name string
	Kind Kind
	// Data is the object's actual bytes.
	Data []byte
	// LogicalSize is the size charged to caches and transfer models. It
	// defaults to len(Data) but may be larger for modeled artifacts
	// (e.g. a manifest standing in for a 572 MB tarball).
	LogicalSize int64
	// UnpackedSize is the additional disk consumed once a Tarball is
	// expanded (0 for other kinds).
	UnpackedSize int64
}

// HashBytes returns the content ID for a byte slice.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// NewBlob creates a blob object whose logical size is its actual size.
func NewBlob(name string, data []byte) *Object {
	return &Object{
		ID:          HashBytes(data),
		Name:        name,
		Kind:        Blob,
		Data:        data,
		LogicalSize: int64(len(data)),
	}
}

// NewDataset creates a dataset object with a modeled logical size (the
// data bytes act as a manifest or sample standing in for the real
// content).
func NewDataset(name string, data []byte, logicalSize int64) *Object {
	if logicalSize < int64(len(data)) {
		logicalSize = int64(len(data))
	}
	return &Object{
		ID:          HashBytes(data),
		Name:        name,
		Kind:        Dataset,
		Data:        data,
		LogicalSize: logicalSize,
	}
}

// NewTarball creates a packed-environment object with modeled packed and
// unpacked sizes.
func NewTarball(name string, data []byte, packedSize, unpackedSize int64) *Object {
	if packedSize < int64(len(data)) {
		packedSize = int64(len(data))
	}
	return &Object{
		ID:           HashBytes(data),
		Name:         name,
		Kind:         Tarball,
		Data:         data,
		LogicalSize:  packedSize,
		UnpackedSize: unpackedSize,
	}
}

// Validate checks that the object's ID matches its data.
func (o *Object) Validate() error {
	if got := HashBytes(o.Data); got != o.ID {
		return fmt.Errorf("content: object %q corrupt: id %s, data hashes to %s", o.Name, o.ID, got)
	}
	return nil
}
