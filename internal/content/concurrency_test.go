package content

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestRandomizedConcurrentCacheOps hammers one cache with randomized
// Put/Get/Pin/Unpin/Evict/MarkUnpacked interleavings from many
// goroutines. Run under -race, it proves the cache's locking covers
// every public entry point; the inline checks prove the semantic
// guarantees hold under contention:
//
//   - an object a goroutine has pinned cannot disappear until that
//     goroutine unpins it (the executor's correctness contract);
//   - a bounded cache never overcommits its byte budget.
func TestRandomizedConcurrentCacheOps(t *testing.T) {
	const (
		workers = 8
		ops     = 4000
		objects = 12
	)
	// Mixed population: blobs and tarballs (tarballs also exercise
	// MarkUnpacked's unpacked-size accounting).
	var objs []*Object
	for i := 0; i < objects; i++ {
		data := []byte(fmt.Sprintf("object-%d-payload", i))
		if i%3 == 0 {
			objs = append(objs, NewTarball(fmt.Sprintf("env-%d.tar", i), data, int64(len(data)), 64))
		} else {
			objs = append(objs, NewBlob(fmt.Sprintf("blob-%d", i), data))
		}
	}
	// A capacity tight enough to force eviction pressure but big enough
	// that a handful of pinned entries cannot wedge every Put.
	var one int64
	for _, o := range objs {
		if o.LogicalSize+o.UnpackedSize > one {
			one = o.LogicalSize + o.UnpackedSize
		}
	}
	capacity := one * objects / 2
	c := NewCache(capacity)

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				obj := objs[rng.Intn(len(objs))]
				switch rng.Intn(6) {
				case 0:
					_ = c.Put(obj)
				case 1:
					c.Get(obj.ID)
				case 2:
					// Pin → verify visible → Unpin. Between the pin and the
					// unpin the object must be un-evictable, no matter what
					// the other goroutines do.
					if err := c.Pin(obj.ID); err == nil {
						if _, ok := c.Get(obj.ID); !ok {
							t.Errorf("pinned object %s vanished", obj.Name)
						}
						if c.Evict(obj.ID) {
							t.Errorf("evict succeeded on pinned object %s", obj.Name)
						}
						if _, ok := c.Get(obj.ID); !ok {
							t.Errorf("pinned object %s vanished after refused evict", obj.Name)
						}
						_ = c.Unpin(obj.ID)
					}
				case 3:
					c.Evict(obj.ID)
				case 4:
					if _, err := c.MarkUnpacked(obj.ID); err == nil && obj.Kind != Tarball {
						t.Errorf("MarkUnpacked accepted non-tarball %s", obj.Name)
					}
				case 5:
					c.Has(obj.ID)
				}
				if used := c.Used(); used > capacity {
					t.Errorf("cache overcommitted: used %d of %d", used, capacity)
				}
			}
		}(int64(g) + 42)
	}
	wg.Wait()

	if used := c.Used(); used < 0 || used > capacity {
		t.Fatalf("final accounting out of range: used %d of %d", used, capacity)
	}
	// Everything is unpinned now: the cache must be fully drainable,
	// and a full drain must return the accounting to exactly zero.
	for _, o := range objs {
		c.Evict(o.ID)
	}
	if used := c.Used(); used != 0 {
		t.Fatalf("drained cache still charges %d bytes", used)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("drained cache still holds %d entries", n)
	}
}
