// Package pkgindex provides a synthetic software package index — the
// stand-in for the Conda channel the paper's Poncho toolkit resolves
// environments against. Packages have versions, dependency edges, and
// installed/packed sizes, so environment resolution produces realistic
// transitive closures and the LNNI environment reproduces the paper's
// numbers: 144 packages, 572 MB packed, 3.1 GB unpacked (§4.7).
package pkgindex

import (
	"fmt"
	"sort"
)

// Package describes one installable package version.
type Package struct {
	Name string
	// Version is a semantic-ish version string; the index stores one
	// resolved version per name (like a solved Conda environment).
	Version string
	// Deps are the names of directly required packages.
	Deps []string
	// InstalledSize is bytes on disk once installed.
	InstalledSize int64
	// PackedSize is bytes this package contributes to a conda-pack
	// style tarball (compressed).
	PackedSize int64
}

// Index is a set of resolvable packages.
type Index struct {
	pkgs map[string]*Package
}

// New creates an empty index.
func New() *Index {
	return &Index{pkgs: map[string]*Package{}}
}

// Add registers a package, replacing any same-named entry.
func (ix *Index) Add(p *Package) { ix.pkgs[p.Name] = p }

// Lookup finds a package by name.
func (ix *Index) Lookup(name string) (*Package, bool) {
	p, ok := ix.pkgs[name]
	return p, ok
}

// Len returns the number of packages in the index.
func (ix *Index) Len() int { return len(ix.pkgs) }

// Names returns all package names, sorted.
func (ix *Index) Names() []string {
	out := make([]string, 0, len(ix.pkgs))
	for n := range ix.pkgs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ResolveClosure computes the transitive dependency closure of roots,
// returning packages sorted by name. Unknown packages are an error;
// dependency cycles are tolerated (each package appears once).
func (ix *Index) ResolveClosure(roots []string) ([]*Package, error) {
	seen := map[string]bool{}
	var out []*Package
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		if seen[name] {
			return nil
		}
		p, ok := ix.pkgs[name]
		if !ok {
			if len(path) == 0 {
				return fmt.Errorf("pkgindex: no package %q in index", name)
			}
			return fmt.Errorf("pkgindex: no package %q (required via %v)", name, path)
		}
		seen[name] = true
		for _, d := range p.Deps {
			if err := visit(d, append(path, name)); err != nil {
				return err
			}
		}
		out = append(out, p)
		return nil
	}
	for _, r := range roots {
		if err := visit(r, nil); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// StandardIndex builds the deterministic synthetic package universe
// used throughout this repository. It contains:
//
//   - The ML inference stack the LNNI application imports (resnet →
//     tensorstore → ... ) whose closure is exactly 144 packages totaling
//     572 MB packed / 3.1 GB installed, matching §4.7 of the paper.
//   - The chemistry/ML stack ExaMol imports (chemtools, mlpack,
//     quantumsim), a smaller environment.
//   - Assorted small utility packages.
func StandardIndex() *Index {
	ix := New()

	// Utility packages available to any environment.
	ix.Add(&Package{Name: "mathx", Version: "2.1.0", InstalledSize: 3 * mb, PackedSize: 800 * kb})
	ix.Add(&Package{Name: "timex", Version: "1.0.4", InstalledSize: 1 * mb, PackedSize: 300 * kb})
	ix.Add(&Package{Name: "randomx", Version: "1.2.0", InstalledSize: 2 * mb, PackedSize: 500 * kb})
	ix.Add(&Package{Name: "jsonx", Version: "3.0.1", InstalledSize: 2 * mb, PackedSize: 500 * kb})

	// The ML inference stack. resnet pulls tensorstore and imageproc;
	// tensorstore pulls a deep runtime tree of mlrt-* packages. The
	// counts and sizes are tuned so the LNNI closure is 144 packages,
	// ~572 MB packed, ~3.1 GB installed.
	nRT := 138 // mlrt-000 .. mlrt-137
	var rtNames []string
	for i := 0; i < nRT; i++ {
		name := fmt.Sprintf("mlrt-%03d", i)
		rtNames = append(rtNames, name)
		var deps []string
		if i > 0 && i%7 == 0 {
			deps = append(deps, fmt.Sprintf("mlrt-%03d", i-1))
		}
		ix.Add(&Package{
			Name:          name,
			Version:       fmt.Sprintf("0.%d.%d", i%10, i%4),
			Deps:          deps,
			InstalledSize: 18 * mb,
			PackedSize:    3450 * kb,
		})
	}
	ix.Add(&Package{
		Name: "tensorstore", Version: "2.14.0",
		Deps:          rtNames,
		InstalledSize: 520 * mb, PackedSize: 76 * mb,
	})
	ix.Add(&Package{
		Name: "imageproc", Version: "9.4.0",
		Deps:          []string{"mathx", "timex"},
		InstalledSize: 60 * mb, PackedSize: 12 * mb,
	})
	ix.Add(&Package{
		Name: "weightstore", Version: "1.3.2",
		InstalledSize: 30 * mb, PackedSize: 8 * mb,
	})
	ix.Add(&Package{
		Name: "resnet", Version: "50.1.0",
		Deps:          []string{"tensorstore", "imageproc", "weightstore"},
		InstalledSize: 40 * mb, PackedSize: 10 * mb,
	})

	// The chemistry stack for ExaMol.
	ix.Add(&Package{
		Name: "chemtools", Version: "2023.9.1",
		Deps:          []string{"mathx", "jsonx"},
		InstalledSize: 180 * mb, PackedSize: 45 * mb,
	})
	ix.Add(&Package{
		Name: "quantumsim", Version: "7.1.0",
		Deps:          []string{"mathx"},
		InstalledSize: 95 * mb, PackedSize: 24 * mb,
	})
	ix.Add(&Package{
		Name: "mlpack", Version: "1.11.2",
		Deps:          []string{"mathx", "randomx"},
		InstalledSize: 140 * mb, PackedSize: 35 * mb,
	})
	ix.Add(&Package{
		Name: "surrogates", Version: "0.9.0",
		Deps:          []string{"mlpack"},
		InstalledSize: 25 * mb, PackedSize: 6 * mb,
	})
	return ix
}
