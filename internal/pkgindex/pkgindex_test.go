package pkgindex

import (
	"strings"
	"testing"
)

func TestStandardIndexLNNIClosure(t *testing.T) {
	ix := StandardIndex()
	pkgs, err := ix.ResolveClosure([]string{"resnet"})
	if err != nil {
		t.Fatal(err)
	}
	// §4.7: 144 packages, ~572 MB packed, ~3.1 GB installed.
	if len(pkgs) != 144 {
		t.Errorf("resnet closure = %d packages, want 144", len(pkgs))
	}
	var packed, installed int64
	for _, p := range pkgs {
		packed += p.PackedSize
		installed += p.InstalledSize
	}
	if mb := packed >> 20; mb < 540 || mb > 610 {
		t.Errorf("packed = %d MB, want ~572", mb)
	}
	if gb10 := installed * 10 >> 30; gb10 < 29 || gb10 > 33 {
		t.Errorf("installed = %d tenths of GB, want ~31", gb10)
	}
}

func TestResolveClosureDedup(t *testing.T) {
	ix := StandardIndex()
	// chemtools and mlpack both depend on mathx; the closure holds it
	// once.
	pkgs, err := ix.ResolveClosure([]string{"chemtools", "mlpack"})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, p := range pkgs {
		if p.Name == "mathx" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("mathx appears %d times", count)
	}
	// Sorted by name.
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Name >= pkgs[i].Name {
			t.Fatalf("closure not sorted at %d: %s >= %s", i, pkgs[i-1].Name, pkgs[i].Name)
		}
	}
}

func TestResolveClosureErrors(t *testing.T) {
	ix := StandardIndex()
	if _, err := ix.ResolveClosure([]string{"nope"}); err == nil {
		t.Errorf("unknown root accepted")
	}
	// Missing transitive dependency reports the requiring chain.
	ix2 := New()
	ix2.Add(&Package{Name: "a", Deps: []string{"missing-dep"}})
	_, err := ix2.ResolveClosure([]string{"a"})
	if err == nil || !strings.Contains(err.Error(), "missing-dep") {
		t.Errorf("missing dep error = %v", err)
	}
}

func TestCyclicDependenciesTolerated(t *testing.T) {
	ix := New()
	ix.Add(&Package{Name: "a", Deps: []string{"b"}})
	ix.Add(&Package{Name: "b", Deps: []string{"a"}})
	pkgs, err := ix.ResolveClosure([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Errorf("cycle closure = %d packages", len(pkgs))
	}
}

func TestLookupAndNames(t *testing.T) {
	ix := StandardIndex()
	if p, ok := ix.Lookup("tensorstore"); !ok || p.Version == "" {
		t.Errorf("tensorstore lookup failed")
	}
	if _, ok := ix.Lookup("ghost"); ok {
		t.Errorf("ghost package found")
	}
	names := ix.Names()
	if len(names) != ix.Len() {
		t.Errorf("Names/Len mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted")
		}
	}
}
