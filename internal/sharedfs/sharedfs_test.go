package sharedfs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/content"
)

func TestStorePutFetch(t *testing.T) {
	s := NewStore()
	obj := content.NewBlob("data.bin", []byte("payload"))
	s.Put(obj)

	got, err := s.Fetch(obj.ID)
	if err != nil || got != obj {
		t.Fatalf("Fetch: %v", err)
	}
	byName, err := s.FetchByName("data.bin")
	if err != nil || byName != obj {
		t.Fatalf("FetchByName: %v", err)
	}
	if _, err := s.Fetch("missing"); err == nil {
		t.Errorf("missing ID should fail")
	}
	if _, err := s.FetchByName("missing"); err == nil {
		t.Errorf("missing name should fail")
	}
	reads, bytes := s.Stats()
	if reads != 2 || bytes != 2*obj.LogicalSize {
		t.Errorf("stats = %d reads, %d bytes", reads, bytes)
	}
}

func TestStoreNameReplacement(t *testing.T) {
	s := NewStore()
	a := content.NewBlob("f", []byte("v1"))
	b := content.NewBlob("f", []byte("v2"))
	s.Put(a)
	s.Put(b)
	got, err := s.FetchByName("f")
	if err != nil || got != b {
		t.Errorf("name should resolve to the latest object")
	}
	// Both remain addressable by content.
	if _, err := s.Fetch(a.ID); err != nil {
		t.Errorf("old version lost: %v", err)
	}
}

func TestStoreReadDelay(t *testing.T) {
	s := NewStore()
	obj := content.NewDataset("big", []byte("x"), 1000)
	s.Put(obj)
	s.SetReadDelay(50 * time.Microsecond) // 1000 * 50us = 50ms
	start := time.Now()
	if _, err := s.Fetch(obj.ID); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Errorf("read returned in %v, expected ~50ms of modeled delay", el)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	obj := content.NewBlob("c", []byte("shared"))
	s.Put(obj)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := s.Fetch(obj.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	reads, _ := s.Stats()
	if reads != 3200 {
		t.Errorf("reads = %d, want 3200", reads)
	}
}

func TestModelBandwidthBound(t *testing.T) {
	m := PaperPanasas()
	// One reader of 1 GB: bandwidth-bound at 10.5 GB/s aggregate.
	one := m.ReadTime(1<<30, 1)
	if one < 0.08 || one > 0.15 {
		t.Errorf("single 1GB read = %.3f s", one)
	}
	// 100 readers: each gets 1/100 of the bandwidth.
	hundred := m.ReadTime(1<<30, 100)
	if hundred < one*80 || hundred > one*120 {
		t.Errorf("contended read %.2f s, want ~100x of %.3f", hundred, one)
	}
}

func TestModelIOPSBound(t *testing.T) {
	// With the published 256 KB/op streaming pattern, bandwidth always
	// dominates (10.5 GB/s < 256 KB x 94k/s). Small-file patterns flip
	// that: at 4 KB/op the op count explodes and the IOPS ceiling
	// binds.
	m := PaperPanasas()
	m.PerOpBytes = 4 << 10
	small := m.ReadTime(256<<20, 100)
	bwOnly := float64(256<<20) / (m.AggregateBandwidth / 100)
	if small <= bwOnly {
		t.Errorf("IOPS limit should dominate for small files: %.2f vs bandwidth-only %.2f", small, bwOnly)
	}
	if m.ReadTime(0, 10) != 0 {
		t.Errorf("zero-size read should take no time")
	}
	if m.ReadTime(100, 0) <= 0 {
		t.Errorf("concurrency clamps to 1")
	}
}
