// Package sharedfs stands in for the cluster's shared filesystem (the
// Panasas ActiveStor 16 of §4.2): the common data storage L1 tasks pull
// code, data, and dependencies from on every execution.
//
// Two pieces live here. Store is the functional in-process store the
// real engine's L1 path reads from, with operation counters and an
// optional artificial per-byte delay. Model is the analytic contention
// model the scale simulator uses to charge realistic read times when
// dozens of workers hammer the filesystem at once — the effect that
// produces L1's long tail in Table 4.
package sharedfs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/content"
)

// Store is a thread-safe shared object store addressed by content ID
// and by name.
type Store struct {
	mu      sync.Mutex
	byID    map[string]*content.Object
	byName  map[string]*content.Object
	reads   int64
	bytes   int64
	perByte time.Duration // optional artificial read delay
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{byID: map[string]*content.Object{}, byName: map[string]*content.Object{}}
}

// SetReadDelay sets an artificial delay charged per byte read,
// letting real-engine tests observe shared-FS slowness without a
// simulator. Zero disables delays.
func (s *Store) SetReadDelay(perByte time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perByte = perByte
}

// Put stores an object (by ID and by name; a later Put with the same
// name replaces the name binding).
func (s *Store) Put(obj *content.Object) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[obj.ID] = obj
	s.byName[obj.Name] = obj
}

// Fetch reads an object by content ID, charging the read delay.
func (s *Store) Fetch(id string) (*content.Object, error) {
	s.mu.Lock()
	obj, ok := s.byID[id]
	var delay time.Duration
	if ok {
		s.reads++
		s.bytes += obj.LogicalSize
		delay = s.perByte * time.Duration(obj.LogicalSize)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sharedfs: no object with id %s", short(id))
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return obj, nil
}

// FetchByName reads an object by its name.
func (s *Store) FetchByName(name string) (*content.Object, error) {
	s.mu.Lock()
	obj, ok := s.byName[name]
	var delay time.Duration
	if ok {
		s.reads++
		s.bytes += obj.LogicalSize
		delay = s.perByte * time.Duration(obj.LogicalSize)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sharedfs: no object named %q", name)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return obj, nil
}

// Stats returns cumulative read count and bytes served.
func (s *Store) Stats() (reads, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.bytes
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Model is the analytic shared-filesystem contention model used by the
// simulator. It follows the published shape of the Panasas ActiveStor
// 16 deployment in §4.3: an aggregate read bandwidth and an IOPS
// ceiling shared fairly among concurrent readers.
type Model struct {
	// AggregateBandwidth is total read bandwidth in bytes/second
	// (84 Gb/s for the paper's system).
	AggregateBandwidth float64
	// MaxIOPS is the read-operations ceiling (94,000 for the paper's
	// system).
	MaxIOPS float64
	// PerOpBytes is the average bytes moved per read operation, used to
	// convert a transfer into an op count for the IOPS limit.
	PerOpBytes float64
}

// PaperPanasas returns the model configured with §4.3's published
// figures.
func PaperPanasas() *Model {
	return &Model{
		AggregateBandwidth: 84e9 / 8, // 84 Gb/s in bytes/s
		MaxIOPS:            94000,
		PerOpBytes:         256 << 10,
	}
}

// ReadTime returns the seconds a read of size bytes takes when
// `concurrent` clients are reading simultaneously. Bandwidth is shared
// fairly; the IOPS ceiling adds a second constraint that dominates for
// many small operations.
func (m *Model) ReadTime(size int64, concurrent int) float64 {
	if size <= 0 {
		return 0
	}
	if concurrent < 1 {
		concurrent = 1
	}
	bwShare := m.AggregateBandwidth / float64(concurrent)
	tBW := float64(size) / bwShare
	ops := float64(size)/m.PerOpBytes + 1
	iopsShare := m.MaxIOPS / float64(concurrent)
	tIOPS := ops / iopsShare
	if tIOPS > tBW {
		return tIOPS
	}
	return tBW
}
