// Package parsl implements the parallel-library layer of Figure 1: a
// Parsl-like dataflow kernel where applications invoke functions that
// return futures, futures chain into a DAG, and ready invocations
// stream to an executor. The TaskVineExecutor (§3.6) adapts that
// stream onto the TaskVine engine, packaging each invocation as either
// a stateless Task (L1/L2) or a FunctionCall against an automatically
// created library (L3).
package parsl

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/taskvine"
)

// Future is the promise returned by Submit. It resolves exactly once.
type Future struct {
	done chan struct{}
	val  minipy.Value
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) resolve(v minipy.Value, err error) {
	f.val = v
	f.err = err
	close(f.done)
}

// Result blocks until the future resolves.
func (f *Future) Result() (minipy.Value, error) {
	<-f.done
	return f.val, f.err
}

// Done reports whether the future has resolved without blocking.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Executor runs one ready invocation to completion.
type Executor interface {
	Execute(fn *minipy.Func, args []minipy.Value) (minipy.Value, error)
}

// DFK is the dataflow kernel: it tracks the DAG of pending invocations
// (via futures used as arguments) and sends ready ones to the
// executor.
type DFK struct {
	exec Executor
	wg   sync.WaitGroup

	mu        sync.Mutex
	submitted int64
	completed int64
	failed    int64
}

// NewDFK creates a dataflow kernel over an executor.
func NewDFK(exec Executor) *DFK {
	return &DFK{exec: exec}
}

// Stats returns submitted/completed/failed invocation counts.
func (d *DFK) Stats() (submitted, completed, failed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.submitted, d.completed, d.failed
}

// Submit registers an invocation of fn. Arguments may be plain MiniPy
// values or *Future results of earlier invocations; the invocation
// launches once every future argument has resolved, giving the DAG
// semantics of Parsl apps.
func (d *DFK) Submit(fn *minipy.Func, args ...any) *Future {
	fut := newFuture()
	d.mu.Lock()
	d.submitted++
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		resolved := make([]minipy.Value, len(args))
		for i, a := range args {
			switch x := a.(type) {
			case *Future:
				v, err := x.Result()
				if err != nil {
					fut.resolve(nil, fmt.Errorf("parsl: dependency failed: %w", err))
					d.countFail()
					return
				}
				resolved[i] = v
			case minipy.Value:
				resolved[i] = x
			default:
				fut.resolve(nil, fmt.Errorf("parsl: argument %d has unsupported type %T", i, a))
				d.countFail()
				return
			}
		}
		v, err := d.exec.Execute(fn, resolved)
		if err != nil {
			d.countFail()
		} else {
			d.mu.Lock()
			d.completed++
			d.mu.Unlock()
		}
		fut.resolve(v, err)
	}()
	return fut
}

func (d *DFK) countFail() {
	d.mu.Lock()
	d.failed++
	d.mu.Unlock()
}

// Wait blocks until every submitted invocation has resolved.
func (d *DFK) Wait() { d.wg.Wait() }

// ---- LocalExecutor ----

// LocalExecutor runs invocations in-process — the Parsl ThreadPool
// equivalent, used for tests and as the Local Invocation baseline of
// Table 2.
type LocalExecutor struct {
	ip *minipy.Interp
	mu sync.Mutex
}

// NewLocalExecutor wraps an interpreter.
func NewLocalExecutor(ip *minipy.Interp) *LocalExecutor {
	return &LocalExecutor{ip: ip}
}

// Execute implements Executor.
func (e *LocalExecutor) Execute(fn *minipy.Func, args []minipy.Value) (minipy.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ip.Call(fn, args, nil)
}

// ---- TaskVineExecutor ----

// Mode selects how the executor packages invocations (§3.6: "packages
// the invocation into either a TaskVine Task or FunctionCall").
type Mode int

const (
	// ModeTask wraps every invocation as a stateless task at the given
	// reuse level (L1 or L2).
	ModeTask Mode = iota
	// ModeFunctionCall creates one library per distinct function and
	// submits lightweight FunctionCalls (L3).
	ModeFunctionCall
)

// ExecutorOptions configures a TaskVineExecutor.
type ExecutorOptions struct {
	Mode Mode
	// Level is the reuse level for ModeTask (L1 or L2).
	Level core.ReuseLevel
	// Resources per invocation.
	Resources core.Resources
	// Slots per library instance in ModeFunctionCall.
	Slots int
	// ExecMode for libraries (direct or fork).
	ExecMode core.ExecMode
}

// TaskVineExecutor is the §3.6 integration: a service that receives an
// arbitrary stream of function invocations from the DFK and runs them
// through a TaskVine manager.
type TaskVineExecutor struct {
	m    *taskvine.Manager
	opts ExecutorOptions

	mu      sync.Mutex
	wrapped map[*minipy.Func]*taskvine.WrappedFunction
	libs    map[string]bool // function name → library created
	waiters map[int64]chan core.Result
	orphans map[int64]core.Result // results that arrived before their waiter
	stop    chan struct{}
}

// NewTaskVineExecutor creates the executor over an existing manager.
func NewTaskVineExecutor(m *taskvine.Manager, opts ExecutorOptions) *TaskVineExecutor {
	if opts.Mode == ModeTask && opts.Level == 0 {
		opts.Level = core.L2
	}
	if opts.Slots == 0 {
		opts.Slots = 4
	}
	e := &TaskVineExecutor{
		m:       m,
		opts:    opts,
		wrapped: map[*minipy.Func]*taskvine.WrappedFunction{},
		libs:    map[string]bool{},
		waiters: map[int64]chan core.Result{},
		orphans: map[int64]core.Result{},
		stop:    make(chan struct{}),
	}
	go e.collect()
	return e
}

// collect routes manager results to the per-invocation waiters.
// Results that arrive before their waiter registers (the submit→claim
// window) are parked in orphans.
func (e *TaskVineExecutor) collect() {
	for {
		select {
		case res := <-e.m.Results():
			e.mu.Lock()
			ch, ok := e.waiters[res.ID]
			if ok {
				delete(e.waiters, res.ID)
			} else {
				e.orphans[res.ID] = res
			}
			e.mu.Unlock()
			if ok {
				ch <- res
			}
		case <-e.stop:
			return
		}
	}
}

// claim attaches a waiter channel to an invocation ID, delivering
// immediately if the result already arrived.
func (e *TaskVineExecutor) claim(id int64, ch chan core.Result) {
	e.mu.Lock()
	if res, ok := e.orphans[id]; ok {
		delete(e.orphans, id)
		e.mu.Unlock()
		ch <- res
		return
	}
	e.waiters[id] = ch
	e.mu.Unlock()
}

// Close stops the executor's collector.
func (e *TaskVineExecutor) Close() { close(e.stop) }

// Execute implements Executor.
func (e *TaskVineExecutor) Execute(fn *minipy.Func, args []minipy.Value) (minipy.Value, error) {
	ch := make(chan core.Result, 1)
	var id int64
	var err error
	switch e.opts.Mode {
	case ModeTask:
		id, err = e.executeAsTask(fn, args, ch)
	case ModeFunctionCall:
		id, err = e.executeAsCall(fn, args, ch)
	default:
		return nil, fmt.Errorf("parsl: unknown executor mode %d", e.opts.Mode)
	}
	if err != nil {
		return nil, err
	}
	res := <-ch
	_ = id
	if !res.Ok {
		return nil, fmt.Errorf("parsl: invocation failed: %s", res.Err)
	}
	return e.m.DecodeValue(res)
}

func (e *TaskVineExecutor) executeAsTask(fn *minipy.Func, args []minipy.Value, ch chan core.Result) (int64, error) {
	e.mu.Lock()
	w, ok := e.wrapped[fn]
	e.mu.Unlock()
	if !ok {
		var err error
		w, err = e.m.WrapFunction(fn)
		if err != nil {
			return 0, err
		}
		e.mu.Lock()
		e.wrapped[fn] = w
		e.mu.Unlock()
	}
	id, err := e.m.SubmitWrappedCall(w, e.opts.Level, e.opts.Resources, args...)
	if err != nil {
		return 0, err
	}
	e.claim(id, ch)
	return id, nil
}

func (e *TaskVineExecutor) executeAsCall(fn *minipy.Func, args []minipy.Value, ch chan core.Result) (int64, error) {
	name := fn.Name
	if name == "" {
		name = fmt.Sprintf("lambda_%p", fn)
	}
	libName := "parsl-" + name
	// Serialize library creation per executor so concurrent invocations
	// of a new function produce exactly one library.
	e.mu.Lock()
	if !e.libs[libName] {
		lib, err := e.m.CreateLibraryFromFunc(libName, name, fn, taskvine.LibraryOptions{
			Slots:     e.opts.Slots,
			Mode:      e.opts.ExecMode,
			Resources: e.opts.Resources,
		})
		if err != nil {
			e.mu.Unlock()
			return 0, err
		}
		if err := e.m.InstallLibrary(lib); err != nil {
			e.mu.Unlock()
			return 0, err
		}
		e.libs[libName] = true
	}
	e.mu.Unlock()
	id, err := e.m.Call(libName, name, args...)
	if err != nil {
		return 0, err
	}
	e.claim(id, ch)
	return id, nil
}
