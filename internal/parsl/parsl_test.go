package parsl

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/minipy"
	"repro/taskvine"
)

func defineFn(t *testing.T, ip *minipy.Interp, src, name string) *minipy.Func {
	t.Helper()
	env, err := ip.RunModule(src, "app")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("no %q", name)
	}
	return v.(*minipy.Func)
}

func TestLocalExecutorChain(t *testing.T) {
	ip := minipy.NewInterp(nil)
	add := defineFn(t, ip, "def add(a, b):\n    return a + b\n", "add")
	dbl := defineFn(t, ip, "def dbl(a):\n    return a * 2\n", "dbl")

	dfk := NewDFK(NewLocalExecutor(ip))
	f1 := dfk.Submit(add, minipy.Int(1), minipy.Int(2))
	f2 := dfk.Submit(dbl, f1)
	f3 := dfk.Submit(add, f1, f2)
	v, err := f3.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v.Repr() != "9" {
		t.Errorf("chain result = %s, want 9", v.Repr())
	}
	dfk.Wait()
	sub, comp, fail := dfk.Stats()
	if sub != 3 || comp != 3 || fail != 0 {
		t.Errorf("stats = %d/%d/%d", sub, comp, fail)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	ip := minipy.NewInterp(nil)
	boom := defineFn(t, ip, "def boom(a):\n    return 1 / a\n", "boom")
	dbl := defineFn(t, ip, "def dbl(a):\n    return a * 2\n", "dbl")

	dfk := NewDFK(NewLocalExecutor(ip))
	f1 := dfk.Submit(boom, minipy.Int(0))
	f2 := dfk.Submit(dbl, f1)
	_, err := f2.Result()
	if err == nil || !strings.Contains(err.Error(), "dependency failed") {
		t.Errorf("expected dependency failure, got %v", err)
	}
	dfk.Wait()
	_, _, fail := dfk.Stats()
	if fail != 2 {
		t.Errorf("failed = %d, want 2", fail)
	}
}

func TestUnsupportedArgType(t *testing.T) {
	ip := minipy.NewInterp(nil)
	dbl := defineFn(t, ip, "def dbl(a):\n    return a * 2\n", "dbl")
	dfk := NewDFK(NewLocalExecutor(ip))
	f := dfk.Submit(dbl, 42) // raw Go int: unsupported
	if _, err := f.Result(); err == nil {
		t.Errorf("expected type error")
	}
}

func TestFutureDone(t *testing.T) {
	f := newFuture()
	if f.Done() {
		t.Errorf("unresolved future reports done")
	}
	f.resolve(minipy.Int(1), nil)
	if !f.Done() {
		t.Errorf("resolved future reports not done")
	}
}

func newVine(t *testing.T, workers int) *taskvine.Manager {
	t.Helper()
	m, err := taskvine.NewManager(taskvine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	if err := m.SpawnLocalWorkers(workers, taskvine.WorkerOptions{}); err != nil {
		t.Fatal(err)
	}
	return m
}

const examolLikeSrc = `
def simulate(smiles):
    import chemtools
    import quantumsim
    mol = chemtools.parse_smiles(smiles)
    return quantumsim.ionization_potential(mol, 50)

def featurize(smiles):
    import chemtools
    mol = chemtools.parse_smiles(smiles)
    return chemtools.featurize(mol)
`

func TestTaskVineExecutorFunctionCallMode(t *testing.T) {
	m := newVine(t, 2)
	simulate := defineFn(t, m.Interp(), examolLikeSrc, "simulate")

	exec := NewTaskVineExecutor(m, ExecutorOptions{
		Mode: ModeFunctionCall, Slots: 4, ExecMode: core.ExecFork,
	})
	defer exec.Close()
	dfk := NewDFK(exec)

	smiles := []string{"CCO", "C1CCCCC1", "CCN", "COC"}
	futs := make([]*Future, len(smiles))
	for i, s := range smiles {
		futs[i] = dfk.Submit(simulate, minipy.Str(s))
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil {
			t.Fatalf("simulate(%s): %v", smiles[i], err)
		}
		// Cross-check against local execution.
		want, err := m.Interp().Call(simulate, []minipy.Value{minipy.Str(smiles[i])}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !minipy.Equal(v, want) {
			t.Errorf("simulate(%s) remote %s != local %s", smiles[i], v.Repr(), want.Repr())
		}
	}
	dfk.Wait()
	// One library serves all invocations of the same function.
	instances, served := m.LibraryDeployments()
	if served != int64(len(smiles)) {
		t.Errorf("share value %d, want %d", served, len(smiles))
	}
	if instances < 1 || instances > 2 {
		t.Errorf("instances = %d", instances)
	}
}

func TestTaskVineExecutorTaskMode(t *testing.T) {
	m := newVine(t, 1)
	featurize := defineFn(t, m.Interp(), examolLikeSrc, "featurize")

	exec := NewTaskVineExecutor(m, ExecutorOptions{
		Mode: ModeTask, Level: core.L2, Resources: core.Resources{Cores: 2},
	})
	defer exec.Close()
	dfk := NewDFK(exec)

	f := dfk.Submit(featurize, minipy.Str("CCO"))
	v, err := f.Result()
	if err != nil {
		t.Fatal(err)
	}
	feats, ok := v.(*minipy.List)
	if !ok || len(feats.Elems) != 16 {
		t.Errorf("featurize result wrong: %s", v.Repr())
	}
	dfk.Wait()
	if st := m.Stats(); st.TasksDone != 1 || st.InvocationsDone != 0 {
		t.Errorf("task mode used wrong path: %+v", st)
	}
}

func TestTaskVineExecutorConcurrentSameFunction(t *testing.T) {
	m := newVine(t, 2)
	simulate := defineFn(t, m.Interp(), examolLikeSrc, "simulate")

	exec := NewTaskVineExecutor(m, ExecutorOptions{
		Mode: ModeFunctionCall, Slots: 8, ExecMode: core.ExecFork,
	})
	defer exec.Close()
	dfk := NewDFK(exec)

	const n = 20
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := fmt.Sprintf("C%sO", strings.Repeat("C", i%5))
			f := dfk.Submit(simulate, minipy.Str(s))
			_, errs[i] = f.Result()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	// Despite 20 concurrent first-calls, only one library exists.
	if st := m.Stats(); st.LibrariesDeployed > 2 {
		t.Errorf("deployed %d libraries, want <= 2", st.LibrariesDeployed)
	}
}

func TestActiveLearningLoopDAG(t *testing.T) {
	// A miniature ExaMol round: simulate a few molecules, train a
	// surrogate on the results, then score a new candidate — exercising
	// future-to-argument chaining through the executor.
	m := newVine(t, 2)
	src := examolLikeSrc + `
def train(feat_list, y):
    import mlpack
    return mlpack.train(feat_list, y, 200)

def score(model, feats):
    import mlpack
    preds = mlpack.predict(model, [feats])
    return preds[0]
`
	env, err := m.Interp().RunModule(src, "app")
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) *minipy.Func {
		v, _ := env.Get(name)
		return v.(*minipy.Func)
	}
	exec := NewTaskVineExecutor(m, ExecutorOptions{Mode: ModeFunctionCall, Slots: 4, ExecMode: core.ExecFork})
	defer exec.Close()
	dfk := NewDFK(exec)

	mols := []string{"CCO", "CCC", "CCN"}
	var feats, ips []*Future
	for _, s := range mols {
		feats = append(feats, dfk.Submit(get("featurize"), minipy.Str(s)))
		ips = append(ips, dfk.Submit(get("simulate"), minipy.Str(s)))
	}
	// Gather resolved values into lists locally (the application's
	// steering step, as Colmena does between batches).
	featList := &minipy.List{}
	yList := &minipy.List{}
	for i := range mols {
		fv, err := feats[i].Result()
		if err != nil {
			t.Fatal(err)
		}
		yv, err := ips[i].Result()
		if err != nil {
			t.Fatal(err)
		}
		featList.Elems = append(featList.Elems, fv)
		yList.Elems = append(yList.Elems, yv)
	}
	modelFut := dfk.Submit(get("train"), featList, yList)
	scoreFut := dfk.Submit(get("score"), modelFut, feats[0])
	v, err := scoreFut.Result()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(minipy.Float); !ok {
		t.Errorf("score is %s, want float", v.Type())
	}
	dfk.Wait()
}
