// Package poncho reproduces the paper's Poncho toolkit (§3.2): it scans
// function ASTs for imported modules, resolves them against a package
// index into a pinned environment specification, and packs that
// environment into a content-addressed tarball artifact (the conda-pack
// equivalent) that workers cache, share, and unpack once.
package poncho

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/content"
	"repro/internal/minipy"
	"repro/internal/pkgindex"
)

// EnvSpec is a resolved software environment: a pinned, sorted package
// list with size accounting.
type EnvSpec struct {
	Packages []PinnedPackage `json:"packages"`
}

// PinnedPackage is one resolved package in an environment.
type PinnedPackage struct {
	Name          string `json:"name"`
	Version       string `json:"version"`
	InstalledSize int64  `json:"installed_size"`
	PackedSize    int64  `json:"packed_size"`
}

// RuntimeModules are provided by the worker/library runtime itself
// (sandbox access, bound input data) and are never software
// dependencies.
var RuntimeModules = map[string]bool{
	"vine_runtime": true,
	"vine_data":    true,
}

// ScanFunction discovers the modules a function needs: import
// statements anywhere in its code (including nested defs and lambdas),
// modules captured by reference from its defining module, and imports
// of any captured helper functions, transitively. Runtime-provided
// modules (vine_runtime, vine_data) are excluded.
func ScanFunction(fn *minipy.Func) []string {
	seenMods := map[string]bool{}
	seenFuncs := map[*minipy.Func]bool{}
	var scan func(f *minipy.Func)
	scan = func(f *minipy.Func) {
		if f == nil || seenFuncs[f] {
			return
		}
		seenFuncs[f] = true
		for _, m := range minipy.ImportedModules(f) {
			seenMods[m] = true
		}
		closure, globals, _ := minipy.ResolveFree(f)
		for _, m := range []map[string]minipy.Value{closure, globals} {
			for _, v := range m {
				switch x := v.(type) {
				case *minipy.ModuleVal:
					seenMods[x.Name] = true
				case *minipy.Func:
					scan(x)
				}
			}
		}
	}
	scan(fn)
	out := make([]string, 0, len(seenMods))
	for m := range seenMods {
		if RuntimeModules[m] {
			continue
		}
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Resolve turns a list of required module names into a pinned
// environment by computing the transitive closure against the index.
func Resolve(ix *pkgindex.Index, modules []string) (*EnvSpec, error) {
	pkgs, err := ix.ResolveClosure(modules)
	if err != nil {
		return nil, fmt.Errorf("poncho: %w", err)
	}
	spec := &EnvSpec{}
	for _, p := range pkgs {
		spec.Packages = append(spec.Packages, PinnedPackage{
			Name:          p.Name,
			Version:       p.Version,
			InstalledSize: p.InstalledSize,
			PackedSize:    p.PackedSize,
		})
	}
	return spec, nil
}

// ResolveForFunction is the full Discover pipeline for software
// dependencies: scan the function, then resolve what it imports.
func ResolveForFunction(ix *pkgindex.Index, fn *minipy.Func) (*EnvSpec, error) {
	return Resolve(ix, ScanFunction(fn))
}

// PackedSize is the tarball size of the environment in bytes.
func (s *EnvSpec) PackedSize() int64 {
	var total int64
	for _, p := range s.Packages {
		total += p.PackedSize
	}
	return total
}

// InstalledSize is the unpacked on-disk size of the environment.
func (s *EnvSpec) InstalledSize() int64 {
	var total int64
	for _, p := range s.Packages {
		total += p.InstalledSize
	}
	return total
}

// Modules returns the installed package names, sorted.
func (s *EnvSpec) Modules() []string {
	out := make([]string, 0, len(s.Packages))
	for _, p := range s.Packages {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the environment installs the named package.
func (s *EnvSpec) Has(name string) bool {
	for _, p := range s.Packages {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Pack produces the environment tarball artifact: a content-addressed
// object whose data is the JSON manifest of the environment and whose
// logical packed/unpacked sizes are the modeled sizes, so caches and
// transfer models charge what a real conda-pack tarball would.
func (s *EnvSpec) Pack(name string) (*content.Object, error) {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return nil, fmt.Errorf("poncho: packing environment: %w", err)
	}
	return content.NewTarball(name, data, s.PackedSize(), s.InstalledSize()), nil
}

// UnpackManifest parses a packed environment back into its spec — what
// a worker does when expanding a tarball to learn which modules become
// importable.
func UnpackManifest(data []byte) (*EnvSpec, error) {
	var spec EnvSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("poncho: unpacking environment manifest: %w", err)
	}
	return &spec, nil
}
