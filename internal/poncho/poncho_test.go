package poncho

import (
	"testing"

	"repro/internal/minipy"
	"repro/internal/pkgindex"
)

func mustFunc(t *testing.T, src, name string) *minipy.Func {
	t.Helper()
	ip := minipy.NewInterp(nil)
	mod, err := minipy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env := ip.NewGlobals()
	if err := ip.ExecBlockWithSource(mod.Body, env, src, "m"); err != nil {
		t.Fatal(err)
	}
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("no function %q", name)
	}
	return v.(*minipy.Func)
}

func TestScanFunctionDirectImports(t *testing.T) {
	fn := mustFunc(t, `
def f(x):
    import resnet
    from imageproc import normalize
    return normalize(x)
`, "f")
	got := ScanFunction(fn)
	want := []string{"imageproc", "resnet"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ScanFunction = %v, want %v", got, want)
	}
}

func TestScanFunctionTransitiveThroughHelpers(t *testing.T) {
	fn := mustFunc(t, `
def helper(x):
    import chemtools
    return x

def f(x):
    import mathx
    return helper(x)
`, "f")
	got := ScanFunction(fn)
	want := []string{"chemtools", "mathx"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ScanFunction = %v, want %v", got, want)
	}
}

func TestScanHandlesRecursiveHelpers(t *testing.T) {
	fn := mustFunc(t, `
def f(n):
    import jsonx
    if n == 0:
        return 0
    return f(n - 1)
`, "f")
	got := ScanFunction(fn)
	if len(got) != 1 || got[0] != "jsonx" {
		t.Errorf("ScanFunction = %v", got)
	}
}

func TestResolveClosureCounts(t *testing.T) {
	ix := pkgindex.StandardIndex()
	spec, err := Resolve(ix, []string{"resnet"})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's LNNI environment: 144 packages, 572 MB packed, 3.1 GB
	// installed (§4.7).
	if len(spec.Packages) != 144 {
		t.Errorf("resnet closure has %d packages, want 144", len(spec.Packages))
	}
	packedMB := float64(spec.PackedSize()) / (1 << 20)
	if packedMB < 540 || packedMB > 610 {
		t.Errorf("packed size %.0f MB, want ~572 MB", packedMB)
	}
	installedGB := float64(spec.InstalledSize()) / (1 << 30)
	if installedGB < 2.8 || installedGB > 3.4 {
		t.Errorf("installed size %.2f GB, want ~3.1 GB", installedGB)
	}
}

func TestResolveUnknownPackage(t *testing.T) {
	ix := pkgindex.StandardIndex()
	if _, err := Resolve(ix, []string{"nonexistent-pkg"}); err == nil {
		t.Errorf("expected resolve error for unknown package")
	}
}

func TestResolveDeterministic(t *testing.T) {
	ix := pkgindex.StandardIndex()
	a, err := Resolve(ix, []string{"resnet", "mathx"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(ix, []string{"mathx", "resnet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Packages) != len(b.Packages) {
		t.Fatalf("closures differ in size")
	}
	for i := range a.Packages {
		if a.Packages[i] != b.Packages[i] {
			t.Errorf("package %d differs: %v vs %v", i, a.Packages[i], b.Packages[i])
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	ix := pkgindex.StandardIndex()
	spec, err := Resolve(ix, []string{"chemtools", "mlpack"})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := spec.Pack("examol-env.tar.gz")
	if err != nil {
		t.Fatal(err)
	}
	if obj.LogicalSize != spec.PackedSize() {
		t.Errorf("tarball logical size %d != packed size %d", obj.LogicalSize, spec.PackedSize())
	}
	if obj.UnpackedSize != spec.InstalledSize() {
		t.Errorf("tarball unpacked size mismatch")
	}
	got, err := UnpackManifest(obj.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packages) != len(spec.Packages) {
		t.Fatalf("unpacked %d packages, want %d", len(got.Packages), len(spec.Packages))
	}
	if !got.Has("chemtools") || !got.Has("mathx") {
		t.Errorf("unpacked env missing expected packages: %v", got.Modules())
	}
	if got.Has("resnet") {
		t.Errorf("unpacked env has unexpected package")
	}
}

func TestPackDeterministicID(t *testing.T) {
	ix := pkgindex.StandardIndex()
	s1, _ := Resolve(ix, []string{"resnet"})
	s2, _ := Resolve(ix, []string{"resnet"})
	o1, err := s1.Pack("env")
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s2.Pack("env")
	if err != nil {
		t.Fatal(err)
	}
	if o1.ID != o2.ID {
		t.Errorf("same environment packs to different content IDs")
	}
}

func TestUnpackManifestCorrupt(t *testing.T) {
	if _, err := UnpackManifest([]byte("not json")); err == nil {
		t.Errorf("corrupt manifest should fail")
	}
}

func TestEndToEndDiscoverPipeline(t *testing.T) {
	fn := mustFunc(t, `
def infer(seed, n):
    import resnet
    import imageproc
    model = resnet.load_model("resnet50")
    batch = imageproc.generate_batch(seed, n)
    return model.infer_batch(batch)
`, "infer")
	ix := pkgindex.StandardIndex()
	spec, err := ResolveForFunction(ix, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Has("resnet") || !spec.Has("tensorstore") || !spec.Has("mlrt-000") {
		t.Errorf("LNNI env missing transitive deps: %d packages", len(spec.Packages))
	}
}

func TestRuntimeModulesExcluded(t *testing.T) {
	fn := mustFunc(t, `
def f(x):
    import vine_runtime
    import vine_data
    import mathx
    return x
`, "f")
	got := ScanFunction(fn)
	if len(got) != 1 || got[0] != "mathx" {
		t.Errorf("ScanFunction = %v, want [mathx] only", got)
	}
}
