// Package lint is vinelint: a suite of static analyzers that
// mechanically enforce the repo's determinism, purity, and concurrency
// invariants — the contracts the fidelity harness (DESIGN.md §9), the
// failure model (§7), and the worker layering (§10) rest on but that
// nothing else checks.
//
// The analyzers:
//
//   - policypurity: internal/policy must stay a pure decision core —
//     no time, math/rand, os, sync, or internal/proto imports, no
//     package-level mutable state, and no path in its call graph that
//     reaches time.Now or math/rand.
//   - mapdeterminism: no raw `for range` over a map in the packages
//     whose iteration order can leak into a policy decision, a trace
//     line, an eviction order, or wire output (internal/policy,
//     internal/manager, internal/sim, internal/experiments). Iterate a
//     sorted key slice (core.SortedKeys) or justify the loop with a
//     `//vinelint:unordered <why>` pragma.
//   - lockdiscipline: in internal/manager, internal/worker, and
//     internal/dataplane, no channel sends, proto writes, or blocking
//     network I/O while a sync.Mutex/RWMutex is held, and no Lock()
//     without a dominating Unlock or defer in the same function.
//   - ctxdeadline: peer/network I/O in internal/worker and
//     internal/dataplane must be deadline-armed — dials bounded by
//     net.DialTimeout/DialContext and framed conns built over
//     proto.WithIdleTimeout (the PR 1 failure-model contract).
//   - pinresolve: executor-layer code (internal/worker) reaches cached
//     objects only through the data plane's Pin/Resolve API, never by
//     calling content.Cache methods or unwrapping Plane.Cache().
//
// A finding is suppressed only by an explicit pragma comment on its
// line (or the line above):
//
//	//vinelint:unordered <justification>      (mapdeterminism only)
//	//vinelint:ignore <analyzer> <justification>
//
// Pragmas require a justification, unknown analyzer names are
// rejected, and a pragma that suppresses nothing is itself an error —
// suppressions cannot rot in place.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer/Pass/Diagnostic and an analysistest-style fixture runner)
// but is built on the standard library's go/ast + go/types only, with
// its own source importer, so the suite runs in hermetic environments
// with an empty module cache.
package lint
