package lint

import (
	"go/ast"
	"go/types"
)

// mapdeterminism flags raw `for range` over maps in the packages where
// iteration order can reach a policy decision, a decision-trace line,
// an eviction order, or wire output. The fix is either to iterate a
// sorted key slice (core.SortedKeys — a slice range is never flagged)
// or to justify the loop with //vinelint:unordered when its body is
// genuinely order-insensitive (a commutative fold such as a min, max,
// sum, or set insert).
var mapdeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "no raw map iteration where order can leak into decisions, traces, or the wire",
	Suffixes: []string{
		"internal/core",
		"internal/policy",
		"internal/manager",
		"internal/shardplane",
		"internal/sim",
		"internal/experiments",
		"internal/dataplane",
	},
	Run: runMapDeterminism,
}

func runMapDeterminism(pass *Pass) {
	pass.InspectPkg(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(rs.For, "map iteration order is nondeterministic here; range over core.SortedKeys(...) or justify with //vinelint:unordered")
		}
		return true
	})
}
