package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of loaded packages sharing one FileSet and one
// type-checking universe. Target holds the packages the analyzers run
// over; ByPath additionally indexes every module-internal dependency
// that was type-checked along the way, so whole-program passes (the
// policypurity call graph) can follow calls across package boundaries.
type Program struct {
	Fset   *token.FileSet
	Target []*Package
	ByPath map[string]*Package

	funcDecls map[*types.Func]*ast.FuncDecl
	declPkg   map[*types.Func]*Package
}

// Loader type-checks packages from source. It resolves imports itself:
// paths under ModulePath map into ModuleDir, everything else is looked
// up through go/build (GOROOT for the standard library). Cgo is
// disabled so constrained stdlib packages select their pure-Go
// variants — the loader never needs a compiler or network.
type Loader struct {
	// ModulePath is the module's import path prefix (e.g. "repro").
	ModulePath string
	// ModuleDir is the on-disk module root.
	ModuleDir string

	fset *token.FileSet
	ctxt build.Context
	pkgs map[string]*Package
	// checking guards against import cycles during recursive loads.
	checking map[string]bool
}

// NewLoader creates a loader rooted at the given module.
func NewLoader(modulePath, moduleDir string) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		fset:       token.NewFileSet(),
		ctxt:       ctxt,
		pkgs:       map[string]*Package{},
		checking:   map[string]bool{},
	}
}

// Load type-checks the packages in the given directories (relative to
// ModuleDir or absolute) and returns them as a Program. Directories
// without buildable Go files are skipped.
func (l *Loader) Load(dirs ...string) (*Program, error) {
	prog := &Program{Fset: l.fset, ByPath: map[string]*Package{}}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModuleDir, dir)
		}
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadFrom(path, l.ModuleDir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		prog.Target = append(prog.Target, pkg)
	}
	for p, pkg := range l.pkgs {
		if pkg != nil {
			prog.ByPath[p] = pkg
		}
	}
	return prog, nil
}

// ExpandPatterns resolves command-line package patterns to directories:
// "./..." walks a subtree (skipping testdata and dot-dirs unless the
// pattern itself points inside a testdata tree), plain paths name one
// package directory.
func ExpandPatterns(moduleDir string, patterns []string) ([]string, error) {
	var dirs []string
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "." {
			pat = moduleDir
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(moduleDir, pat)
		}
		if !recursive {
			dirs = append(dirs, pat)
			continue
		}
		inTestdata := strings.Contains(pat, "testdata")
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if name == "testdata" && !inTestdata {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs = append(dirs, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps an import path to its source directory, or "" for paths
// the loader does not type-check from the module tree (stdlib handled
// separately).
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if strings.HasPrefix(path, l.ModulePath+"/") {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom; srcDir is the importing
// package's directory, which lets go/build resolve GOROOT-vendored
// paths (net → vendor/golang.org/x/net/...) for stdlib packages.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	pkg, err := l.loadFrom(path, srcDir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no buildable Go files for %q", path)
	}
	return pkg.Types, nil
}

// loadFrom type-checks one package (memoized). Module-internal
// packages keep their syntax and full types.Info so analyzers can
// inspect them; stdlib packages keep only the *types.Package.
func (l *Loader) loadFrom(path, srcDir string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: "unsafe", Types: types.Unsafe}, nil
	}
	if pkg, done := l.pkgs[path]; done {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirFor(path)
	var filenames []string
	if dir != "" {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			filenames = append(filenames, filepath.Join(dir, name))
		}
		if len(filenames) == 0 {
			l.pkgs[path] = nil
			return nil, nil
		}
	} else {
		// Standard library (or anything else go/build can place, such
		// as GOROOT-vendored golang.org/x packages).
		bp, err := l.ctxt.Import(path, srcDir, 0)
		if err != nil {
			return nil, fmt.Errorf("lint: resolving import %q: %w", path, err)
		}
		dir = bp.Dir
		for _, name := range bp.GoFiles {
			filenames = append(filenames, filepath.Join(bp.Dir, name))
		}
	}
	sort.Strings(filenames)

	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}

	internal := strings.HasPrefix(path, l.ModulePath+"/") || path == l.ModulePath
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect only the first hard error below
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %q: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Types: tpkg}
	if internal {
		pkg.Files = files
		pkg.Info = info
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// FuncDecl returns the declaration of a function (with its body) if it
// belongs to a loaded module-internal package, along with that package.
func (p *Program) FuncDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	if p.funcDecls == nil {
		p.funcDecls = map[*types.Func]*ast.FuncDecl{}
		p.declPkg = map[*types.Func]*Package{}
		for _, pkg := range p.ByPath {
			if pkg.Info == nil {
				continue
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.funcDecls[obj] = fd
						p.declPkg[obj] = pkg
					}
				}
			}
		}
	}
	return p.funcDecls[fn], p.declPkg[fn]
}
