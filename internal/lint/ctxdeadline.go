package lint

import (
	"go/ast"
	"go/types"
)

// ctxdeadline enforces the PR 1 failure-model contract (DESIGN.md §7)
// on the peer data layer: every network I/O call site must be
// deadline-armed. Concretely, in internal/worker and
// internal/dataplane:
//
//   - net.Dial is banned — use net.DialTimeout, or net.Dialer /
//     DialContext with a deadline-carrying context, so a vanished peer
//     costs a bounded wait.
//   - proto.NewConn over a raw net.Conn is banned — wrap the conn in
//     proto.WithIdleTimeout first, so every read and write must make
//     progress. (A control link that is idle by design carries a
//     //vinelint:ignore ctxdeadline justification instead.)
var ctxdeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "peer/network I/O must flow through proto.WithIdleTimeout or a deadline-bounded dial",
	Suffixes: []string{
		"internal/worker",
		"internal/dataplane",
	},
	Run: runCtxDeadline,
}

func runCtxDeadline(pass *Pass) {
	info := pass.Pkg.Info
	pass.InspectPkg(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "net" && fn.Name() == "Dial":
			pass.Reportf(call.Pos(), "net.Dial has no deadline; use net.DialTimeout (or DialContext with a deadline) so a dead peer costs a bounded wait")
		case fn.Name() == "NewConn" && isProtoPkg(fn.Pkg()) && len(call.Args) == 1:
			arg := ast.Unparen(call.Args[0])
			if !isNetConnType(info, arg) {
				return true // in-memory pipes, buffers: no wire involved
			}
			if wrapped := wrappedInIdleTimeout(info, arg); !wrapped {
				pass.Reportf(call.Pos(), "proto.NewConn over a raw net.Conn; wrap it in proto.WithIdleTimeout so stalled I/O times out (§7 failure model)")
			}
		}
		return true
	})
}

func isProtoPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/proto" || hasPathSuffix(pkg.Path(), "internal/proto"))
}

func hasPathSuffix(path, suffix string) bool {
	return path == suffix || (len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix)
}

// isNetConnType reports whether the expression's static type is (or
// implements) net.Conn.
func isNetConnType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	named, ok := t.(*types.Named)
	if ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net" {
		return true
	}
	// Interface values declared as net.Conn elsewhere in the module.
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// net.Conn has exactly these methods; a structural check avoids
		// needing the net package's type object here.
		want := map[string]bool{"Read": true, "Write": true, "Close": true,
			"LocalAddr": true, "RemoteAddr": true, "SetDeadline": true,
			"SetReadDeadline": true, "SetWriteDeadline": true}
		if iface.NumMethods() != len(want) {
			return false
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if !want[iface.Method(i).Name()] {
				return false
			}
		}
		return true
	}
	return false
}

// wrappedInIdleTimeout reports whether the expression is a direct call
// to proto.WithIdleTimeout(...).
func wrappedInIdleTimeout(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := staticCallee(info, call)
	return fn != nil && fn.Name() == "WithIdleTimeout" && isProtoPkg(fn.Pkg())
}
