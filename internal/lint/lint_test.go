package lint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools analysistest: fixture packages
// under testdata/src carry `// want `regex`` comments on the lines
// where diagnostics are expected, and each test loads one or more
// fixture trees, runs a subset of the suite, and diffs the result
// against the annotations. Fixture import paths live under the real
// module path (repro/internal/lint/testdata/src/...), so suffix-based
// analyzer scoping and imports of real module packages both work
// exactly as they do in production.

// sharedLoader memoizes type-checking across tests in this package —
// every case pays for the stdlib once.
var sharedLoader *Loader

func loadCase(t *testing.T, analyzers []*Analyzer, cases ...string) (*Program, *Result) {
	t.Helper()
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if sharedLoader == nil {
		sharedLoader = NewLoader("repro", moduleDir)
	}
	var dirs []string
	for _, c := range cases {
		ds, err := ExpandPatterns(moduleDir, []string{"internal/lint/testdata/src/" + c + "/..."})
		if err != nil {
			t.Fatalf("expanding fixture %s: %v", c, err)
		}
		if len(ds) == 0 {
			t.Fatalf("fixture %s matched no directories", c)
		}
		dirs = append(dirs, ds...)
	}
	prog, err := sharedLoader.Load(dirs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", cases, err)
	}
	return prog, RunAnalyzers(prog, analyzers)
}

// A want comment holds one or more backticked regexes:
// `// want `A` `B“ expects two diagnostics on its line.
var (
	wantRE     = regexp.MustCompile("// want `")
	wantPatRE  = regexp.MustCompile("`([^`]+)`")
	wantMarker = "// want "
)

// checkWants diffs the run's diagnostics (findings and pragma errors
// both) against the fixtures' `// want` annotations: every annotation
// must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by an annotation.
func checkWants(t *testing.T, prog *Program, res *Result) {
	t.Helper()
	type line struct {
		file string
		n    int
	}
	wants := map[line][]*regexp.Regexp{}
	for _, pkg := range prog.Target {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, wantMarker)
					if idx < 0 || !wantRE.MatchString(c.Text) {
						continue
					}
					for _, m := range wantPatRE.FindAllStringSubmatch(c.Text[idx+len(wantMarker):], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", m[1], err)
						}
						pos := prog.Fset.Position(c.Pos())
						k := line{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}
	all := append([]Diagnostic{}, res.Diagnostics...)
	all = append(all, res.PragmaErrors...)
	for _, d := range all {
		k := line{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		hit := -1
		for i, re := range ws {
			if re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(ws[:hit], ws[hit+1:]...)
	}
	for k, ws := range wants {
		for _, re := range ws {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.n, re)
		}
	}
}

func TestPolicyPurity(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{policypurity}, "policypurity_bad", "policypurity_ok")
	checkWants(t, prog, res)
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
}

func TestMapDeterminism(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{mapdeterminism}, "mapdet_bad", "mapdet_ok")
	checkWants(t, prog, res)
	// mapdet_ok's counting loop and the dataplane's size-summing loop
	// are absorbed by their pragmas — visible as suppressions, never as
	// findings or stale-pragma errors.
	if res.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", res.Suppressed)
	}
}

func TestLockDiscipline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{lockdiscipline}, "lockdiscipline_bad", "lockdiscipline_ok")
	checkWants(t, prog, res)
}

func TestPoolDiscipline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{pooldiscipline}, "pooldiscipline_bad", "pooldiscipline_ok")
	checkWants(t, prog, res)
	// pooldiscipline_ok's ParkBuffer leak is absorbed by its justified
	// pragma; pooldiscipline_bad's stale pragma surfaces as a pragma
	// error (claimed by a want annotation), not a suppression.
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

func TestCtxDeadline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{ctxdeadline}, "ctxdeadline_bad", "ctxdeadline_ok")
	checkWants(t, prog, res)
}

func TestPinResolve(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{pinresolve}, "pinresolve_bad", "pinresolve_ok")
	checkWants(t, prog, res)
}

func TestTraceStability(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{tracestability}, "tracestability_bad", "tracestability_ok")
	checkWants(t, prog, res)
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
}

func TestMirrorParity(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{mirrorparity}, "mirrorparity_bad", "mirrorparity_ok")
	checkWants(t, prog, res)
	// mirrorparity_ok's PickDelay is deliberately one-sided and carries
	// a justified pragma: one suppression, no stale-pragma error.
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

func TestStatDiscipline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{statdiscipline}, "statdiscipline_bad", "statdiscipline_ok")
	checkWants(t, prog, res)
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
}

func TestGoroutineLifecycle(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{goroutinelifecycle}, "goroutinelifecycle_bad", "goroutinelifecycle_ok")
	checkWants(t, prog, res)
	// goroutinelifecycle_ok's telemetry flush is fire-and-forget by
	// design and carries a justified pragma.
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

// loadReal loads real module packages (not fixtures) through the
// shared loader.
func loadReal(t *testing.T, patterns ...string) *Program {
	t.Helper()
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if sharedLoader == nil {
		sharedLoader = NewLoader("repro", moduleDir)
	}
	dirs, err := ExpandPatterns(moduleDir, patterns)
	if err != nil {
		t.Fatalf("expanding %v: %v", patterns, err)
	}
	prog, err := sharedLoader.Load(dirs...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	return prog
}

// TestTraceVocabularyCoversGoldenTraces proves the pinned vocabulary
// is complete against the ground truth: every line of every golden
// trace must match some vocabulary format (with %s and %d widened to
// value patterns). A golden line no format can produce means the
// vocabulary — and therefore tracestability — has drifted from what
// the engines actually emit.
func TestTraceVocabularyCoversGoldenTraces(t *testing.T) {
	var res []*regexp.Regexp
	for format := range traceVocabulary {
		pat := regexp.QuoteMeta(format)
		pat = strings.ReplaceAll(pat, "%s", `[^ ]*`)
		pat = strings.ReplaceAll(pat, "%d", `-?\d+`)
		res = append(res, regexp.MustCompile("^"+pat+"$"))
	}
	goldens, err := filepath.Glob("../experiments/testdata/golden_trace_*.txt")
	if err != nil || len(goldens) == 0 {
		t.Fatalf("no golden traces found: %v", err)
	}
	for _, path := range goldens {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			matched := false
			for _, re := range res {
				if re.MatchString(line) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: golden trace line %q matches no pinned vocabulary format", filepath.Base(path), i+1, line)
			}
		}
	}
}

// TestTraceSchemaCurrent proves traceschema.go is regenerated: the
// vocabulary extracted from the real policy package and engine
// recorders must equal the pinned map exactly, both directions.
func TestTraceSchemaCurrent(t *testing.T) {
	prog := loadReal(t, "internal/policy", "internal/manager", "internal/sim")
	got := TraceFormats(prog)
	for _, format := range got {
		if !traceVocabulary[format] {
			t.Errorf("format %q is in the tree but not in traceschema.go; regenerate with `go run ./cmd/vinelint -write-traceschema`", format)
		}
	}
	gotSet := map[string]bool{}
	for _, format := range got {
		gotSet[format] = true
	}
	for format := range traceVocabulary {
		if !gotSet[format] {
			t.Errorf("format %q is pinned in traceschema.go but no longer in the tree; regenerate with `go run ./cmd/vinelint -write-traceschema`", format)
		}
	}
	// Regeneration must round-trip byte-identically, so running
	// -write-traceschema on a clean tree never dirties the checkout.
	src, err := GenTraceSchema(got)
	if err != nil {
		t.Fatalf("GenTraceSchema: %v", err)
	}
	disk, err := os.ReadFile("traceschema.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, disk) {
		t.Errorf("GenTraceSchema output differs from traceschema.go on disk; regenerate with `go run ./cmd/vinelint -write-traceschema`")
	}
}

// TestPragmaErrors drives every pragma failure mode through a fixture:
// unknown keywords and analyzer names are rejected, a pragma without a
// justification is rejected (and the finding under it survives), and a
// pragma that suppresses nothing is a stale-pragma error. The one
// well-formed pragma suppresses exactly one finding.
func TestPragmaErrors(t *testing.T) {
	_, res := loadCase(t, All(), "pragma_errors")
	wantErrs := []string{
		`unknown vinelint pragma "frobnicate"`,
		`names unknown analyzer "nosuchanalyzer"`,
		"needs a justification",
		"stale //vinelint:mapdeterminism pragma",
	}
	if len(res.PragmaErrors) != len(wantErrs) {
		t.Fatalf("pragma errors = %d, want %d:\n%s", len(res.PragmaErrors), len(wantErrs), diagLines(res.PragmaErrors))
	}
	for _, want := range wantErrs {
		found := false
		for _, d := range res.PragmaErrors {
			if regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no pragma error containing %q in:\n%s", want, diagLines(res.PragmaErrors))
		}
	}
	// The unjustified pragma does not count as a suppression, so its
	// loop's finding survives.
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Analyzer != "mapdeterminism" {
		t.Errorf("diagnostics = %v, want exactly the unjustified loop's mapdeterminism finding", res.Diagnostics)
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
	if res.Clean() {
		t.Error("Clean() = true for a run with findings and pragma errors")
	}
}

func diagLines(ds []Diagnostic) string {
	out := ""
	for _, d := range ds {
		out += fmt.Sprintln(d)
	}
	return out
}
