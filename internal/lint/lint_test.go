package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness mirrors x/tools analysistest: fixture packages
// under testdata/src carry `// want `regex`` comments on the lines
// where diagnostics are expected, and each test loads one or more
// fixture trees, runs a subset of the suite, and diffs the result
// against the annotations. Fixture import paths live under the real
// module path (repro/internal/lint/testdata/src/...), so suffix-based
// analyzer scoping and imports of real module packages both work
// exactly as they do in production.

// sharedLoader memoizes type-checking across tests in this package —
// every case pays for the stdlib once.
var sharedLoader *Loader

func loadCase(t *testing.T, analyzers []*Analyzer, cases ...string) (*Program, *Result) {
	t.Helper()
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if sharedLoader == nil {
		sharedLoader = NewLoader("repro", moduleDir)
	}
	var dirs []string
	for _, c := range cases {
		ds, err := ExpandPatterns(moduleDir, []string{"internal/lint/testdata/src/" + c + "/..."})
		if err != nil {
			t.Fatalf("expanding fixture %s: %v", c, err)
		}
		if len(ds) == 0 {
			t.Fatalf("fixture %s matched no directories", c)
		}
		dirs = append(dirs, ds...)
	}
	prog, err := sharedLoader.Load(dirs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", cases, err)
	}
	return prog, RunAnalyzers(prog, analyzers)
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// checkWants diffs the run's diagnostics (findings and pragma errors
// both) against the fixtures' `// want` annotations: every annotation
// must be matched by a diagnostic on its line, and every diagnostic
// must be claimed by an annotation.
func checkWants(t *testing.T, prog *Program, res *Result) {
	t.Helper()
	type line struct {
		file string
		n    int
	}
	wants := map[line][]*regexp.Regexp{}
	for _, pkg := range prog.Target {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", m[1], err)
						}
						pos := prog.Fset.Position(c.Pos())
						k := line{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}
	all := append([]Diagnostic{}, res.Diagnostics...)
	all = append(all, res.PragmaErrors...)
	for _, d := range all {
		k := line{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		hit := -1
		for i, re := range ws {
			if re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(ws[:hit], ws[hit+1:]...)
	}
	for k, ws := range wants {
		for _, re := range ws {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.n, re)
		}
	}
}

func TestPolicyPurity(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{policypurity}, "policypurity_bad", "policypurity_ok")
	checkWants(t, prog, res)
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
}

func TestMapDeterminism(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{mapdeterminism}, "mapdet_bad", "mapdet_ok")
	checkWants(t, prog, res)
	// mapdet_ok's counting loop is absorbed by its pragma — visible as
	// a suppression, never as a finding or a stale-pragma error.
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
}

func TestLockDiscipline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{lockdiscipline}, "lockdiscipline_bad", "lockdiscipline_ok")
	checkWants(t, prog, res)
}

func TestPoolDiscipline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{pooldiscipline}, "pooldiscipline_bad", "pooldiscipline_ok")
	checkWants(t, prog, res)
}

func TestCtxDeadline(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{ctxdeadline}, "ctxdeadline_bad", "ctxdeadline_ok")
	checkWants(t, prog, res)
}

func TestPinResolve(t *testing.T) {
	prog, res := loadCase(t, []*Analyzer{pinresolve}, "pinresolve_bad", "pinresolve_ok")
	checkWants(t, prog, res)
}

// TestPragmaErrors drives every pragma failure mode through a fixture:
// unknown keywords and analyzer names are rejected, a pragma without a
// justification is rejected (and the finding under it survives), and a
// pragma that suppresses nothing is a stale-pragma error. The one
// well-formed pragma suppresses exactly one finding.
func TestPragmaErrors(t *testing.T) {
	_, res := loadCase(t, All(), "pragma_errors")
	wantErrs := []string{
		`unknown vinelint pragma "frobnicate"`,
		`names unknown analyzer "nosuchanalyzer"`,
		"needs a justification",
		"stale //vinelint:mapdeterminism pragma",
	}
	if len(res.PragmaErrors) != len(wantErrs) {
		t.Fatalf("pragma errors = %d, want %d:\n%s", len(res.PragmaErrors), len(wantErrs), diagLines(res.PragmaErrors))
	}
	for _, want := range wantErrs {
		found := false
		for _, d := range res.PragmaErrors {
			if regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no pragma error containing %q in:\n%s", want, diagLines(res.PragmaErrors))
		}
	}
	// The unjustified pragma does not count as a suppression, so its
	// loop's finding survives.
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Analyzer != "mapdeterminism" {
		t.Errorf("diagnostics = %v, want exactly the unjustified loop's mapdeterminism finding", res.Diagnostics)
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", res.Suppressed)
	}
	if res.Clean() {
		t.Error("Clean() = true for a run with findings and pragma errors")
	}
}

func diagLines(ds []Diagnostic) string {
	out := ""
	for _, d := range ds {
		out += fmt.Sprintln(d)
	}
	return out
}
