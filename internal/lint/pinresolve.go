package lint

import (
	"go/ast"
	"go/types"
)

// pinresolve enforces the worker layering contract (DESIGN.md §10):
// executor-layer code reaches cached objects only through the data
// plane's Pin/Resolve API. Inside internal/worker, calling a method on
// a content.Cache value — or unwrapping the raw cache via
// dataplane.Plane.Cache() — bypasses the per-object state machine that
// makes pins atomic with respect to eviction, so both are flagged.
// (Constructing the cache with content.NewCache and handing it to the
// plane is the control layer's job and stays legal.)
var pinresolve = &Analyzer{
	Name: "pinresolve",
	Doc:  "executor-layer code must use dataplane Pin/Resolve, never content.Cache directly",
	Suffixes: []string{
		"internal/worker",
	},
	Run: runPinResolve,
}

func runPinResolve(pass *Pass) {
	info := pass.Pkg.Info
	pass.InspectPkg(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Method call with a *content.Cache receiver.
		if tv, ok := info.Types[sel.X]; ok && isContentCache(tv.Type) {
			pass.Reportf(call.Pos(), "direct content.Cache.%s call in the worker; go through the data plane's Pin/Resolve API (§10 layering)", sel.Sel.Name)
			return true
		}
		// Unwrapping the raw cache out of the plane.
		fn := staticCallee(info, call)
		if fn != nil && fn.Name() == "Cache" && fn.Pkg() != nil && hasPathSuffix(fn.Pkg().Path(), "internal/dataplane") {
			pass.Reportf(call.Pos(), "Plane.Cache() unwraps the raw content cache; executor code must stay behind Pin/Resolve (§10 layering)")
		}
		return true
	})
}

// isContentCache reports whether t is (a pointer to) content.Cache.
func isContentCache(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cache" && obj.Pkg() != nil && hasPathSuffix(obj.Pkg().Path(), "internal/content")
}
