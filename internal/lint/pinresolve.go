package lint

import (
	"go/ast"
	"go/types"
)

// pinresolve enforces the worker layering contract (DESIGN.md §10,
// §15): executor-layer code reaches bytes only through the data
// plane's Pin/Resolve API. Inside internal/worker, calling a method on
// a content.Cache value — or unwrapping the raw cache via
// dataplane.Plane.Cache() — bypasses the per-object state machine that
// makes pins atomic with respect to eviction, and calling a method on
// a sharedfs.Store (or any dataplane.SharedTier) value bypasses the
// plane's tier accounting and spill/promote state, so all three are
// flagged. (Constructing the cache or store and handing it to the
// plane is the control layer's job and stays legal.)
var pinresolve = &Analyzer{
	Name: "pinresolve",
	Doc:  "executor-layer code must use dataplane Pin/Resolve, never content.Cache or the shared tier directly",
	Suffixes: []string{
		"internal/worker",
	},
	Run: runPinResolve,
}

func runPinResolve(pass *Pass) {
	info := pass.Pkg.Info
	pass.InspectPkg(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Method call with a *content.Cache receiver.
		if tv, ok := info.Types[sel.X]; ok && isContentCache(tv.Type) {
			pass.Reportf(call.Pos(), "direct content.Cache.%s call in the worker; go through the data plane's Pin/Resolve API (§10 layering)", sel.Sel.Name)
			return true
		}
		// Method call on the shared tier (a sharedfs.Store or the
		// dataplane.SharedTier interface it satisfies).
		if tv, ok := info.Types[sel.X]; ok && isSharedTier(tv.Type) {
			pass.Reportf(call.Pos(), "direct shared-tier %s call in the worker; the shared tier is reached only through the data plane (§15 layering)", sel.Sel.Name)
			return true
		}
		// Unwrapping the raw cache out of the plane.
		fn := staticCallee(info, call)
		if fn != nil && fn.Name() == "Cache" && fn.Pkg() != nil && hasPathSuffix(fn.Pkg().Path(), "internal/dataplane") {
			pass.Reportf(call.Pos(), "Plane.Cache() unwraps the raw content cache; executor code must stay behind Pin/Resolve (§10 layering)")
		}
		return true
	})
}

// isContentCache reports whether t is (a pointer to) content.Cache.
func isContentCache(t types.Type) bool {
	return isNamedFrom(t, "Cache", "internal/content")
}

// isSharedTier reports whether t is (a pointer to) sharedfs.Store or
// the dataplane.SharedTier interface.
func isSharedTier(t types.Type) bool {
	return isNamedFrom(t, "Store", "internal/sharedfs") ||
		isNamedFrom(t, "SharedTier", "internal/dataplane")
}

// isNamedFrom reports whether t is (a pointer to) the named type
// pkgSuffix.name.
func isNamedFrom(t types.Type, name, pkgSuffix string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}
