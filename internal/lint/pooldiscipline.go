package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pooldiscipline enforces the wire path's buffer-pool hygiene
// (DESIGN.md §13): in internal/proto, a function that takes a buffer
// from a pool — sync.Pool.Get, a Get on any pool-shaped value, or the
// package's getEncBuf helper — must pair it with a deferred Put
// (putEncBuf or pool.Put) in the same function, so no early error
// return can leak the buffer. Functions whose results include
// *bytes.Buffer are exempt: they transfer ownership to the caller,
// which then owes the Put (getEncBuf itself and pool adapters have
// this shape).
//
// The analysis is lexical and intra-procedural, like lockdiscipline:
// it proves the code's shape; the counting-pool leak test in
// internal/proto proves the dynamic Get/Put balance.
var pooldiscipline = &Analyzer{
	Name:     "pooldiscipline",
	Doc:      "every pool Get pairs with a dominating deferred Put, unless the function returns the buffer",
	Suffixes: []string{"internal/proto"},
	Run:      runPoolDiscipline,
}

func runPoolDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolBody(pass, fd.Body, fd.Type)
			}
		}
	}
	// Function literals are their own ownership frames: a buffer taken
	// inside one must be put inside it.
	pass.InspectPkg(func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkPoolBody(pass, fl.Body, fl.Type)
		}
		return true
	})
}

// checkPoolBody scans one function body (nested literals excluded) for
// pool Gets and classifies the Puts that could balance them.
func checkPoolBody(pass *Pass, body *ast.BlockStmt, ft *ast.FuncType) {
	info := pass.Pkg.Info
	if returnsBuffer(info, ft) {
		return
	}
	var gets []*ast.CallExpr
	deferredPut, plainPut := false, false
	var deferPos token.Pos
	var returns []token.Pos
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own frame
		case *ast.ReturnStmt:
			returns = append(returns, nn.Pos())
		case *ast.DeferStmt:
			if isPoolPut(info, nn.Call) {
				if !deferredPut || nn.Pos() < deferPos {
					deferPos = nn.Pos()
				}
				deferredPut = true
			}
			// Still walk the deferred call's arguments — they run now,
			// and could themselves Get.
			for _, arg := range nn.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			if isPoolGet(info, nn) {
				gets = append(gets, nn)
			} else if isPoolPut(info, nn) {
				plainPut = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	for _, g := range gets {
		switch {
		case deferredPut:
			// The deferred Put runs on every return — but only once it is
			// armed. A return lexically between the Get and the defer
			// escapes before arming and leaks the buffer.
			for _, rp := range returns {
				if g.Pos() < rp && rp < deferPos {
					pass.Reportf(g.Pos(), "pool Get with an early return before the deferred Put is armed; that path leaks the buffer — defer the Put immediately after the Get")
					break
				}
			}
		case plainPut:
			pass.Reportf(g.Pos(), "pool Get whose Put is not deferred; an early return path leaks the buffer — use `defer`")
		default:
			pass.Reportf(g.Pos(), "pool Get with no Put in this function; every path must return the buffer to the pool")
		}
	}
}

// isPoolGet matches `x.Get()` on a pool-shaped x, and calls to the
// package's getEncBuf helper.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "getEncBuf"
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Get" || len(call.Args) != 0 {
			return false
		}
		return recvIsPool(info, fun)
	}
	return false
}

// isPoolPut matches `x.Put(buf)` on a pool-shaped x, and calls to the
// package's putEncBuf helper.
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "putEncBuf"
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Put" || len(call.Args) != 1 {
			return false
		}
		return recvIsPool(info, fun)
	}
	return false
}

func recvIsPool(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return poolish(tv.Type)
}

// poolish reports whether t is a pool: sync.Pool, an interface with
// both Get and Put methods (the package's bufferPool contract and any
// test double implementing it), or a named type spelled like a pool.
func poolish(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return hasGetPut(iface)
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
		return true
	}
	return strings.Contains(strings.ToLower(obj.Name()), "pool")
}

func hasGetPut(iface *types.Interface) bool {
	get, put := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Get":
			get = true
		case "Put":
			put = true
		}
	}
	return get && put
}

// returnsBuffer reports whether the function's results include a
// *bytes.Buffer — the ownership-transfer shape.
func returnsBuffer(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() == "bytes" && named.Obj().Name() == "Buffer" {
			return true
		}
	}
	return false
}
