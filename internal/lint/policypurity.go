package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// policypurity enforces the purity contract of the scheduling-policy
// core (DESIGN.md §9): the package both engines replay decisions from
// may not observe wall clocks, randomness, the OS, goroutine
// synchronization, or the wire protocol, may not hold package-level
// mutable state, and may not reach time.Now or math/rand through any
// function it calls in-module.
var policypurity = &Analyzer{
	Name: "policypurity",
	Doc:  "internal/policy must stay pure and deterministic",
	Suffixes: []string{
		"internal/policy",
	},
	Run: runPolicyPurity,
}

// purityBannedImports are import paths (or path suffixes, for
// module-internal packages) the policy core may not depend on.
var purityBannedImports = []string{
	"time", "math/rand", "math/rand/v2", "os", "sync", "internal/proto",
}

func runPolicyPurity(pass *Pass) {
	pkg := pass.Pkg

	// 1. Banned imports.
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, banned := range purityBannedImports {
				if path == banned || strings.HasSuffix(path, "/"+banned) {
					pass.Reportf(imp.Pos(), "policy core must not import %q (purity contract: decisions depend only on the ClusterView)", path)
				}
			}
		}
	}

	// 2. Package-level mutable state. Any top-level var is flagged:
	// even a write-once table could be mutated by a future edit, and
	// the policy core has no legitimate global state.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					pass.Reportf(name.Pos(), "policy core must not declare package-level state (%s); thread it through the ClusterView", name.Name)
				}
			}
		}
	}

	// 3. Call-graph reachability of time.Now / math/rand: follow
	// static calls out of every policy function through module-internal
	// code. The import ban already rules out direct calls; this catches
	// impurity smuggled in through a helper package.
	seen := map[*types.Func]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if root == nil {
				continue
			}
			if callee, chain := findImpureCall(pass.Prog, pkg, fd, nil, seen); callee != nil {
				pass.Reportf(fd.Name.Pos(), "%s reaches %s (via %s); the policy core must not observe clocks or randomness",
					fd.Name.Name, callee.FullName(), strings.Join(chain, " -> "))
			}
		}
	}
}

// impureCallee reports whether fn is one of the banned leaf calls.
func impureCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		return fn.Name() == "Now"
	case "math/rand", "math/rand/v2":
		return true
	}
	return false
}

// findImpureCall walks the static call graph from fd. It returns the
// banned callee and the call chain that reaches it, or nil. seen
// memoizes functions already proven clean (or currently on the stack,
// which breaks recursion cycles).
func findImpureCall(prog *Program, pkg *Package, fd *ast.FuncDecl, chain []string, seen map[*types.Func]bool) (*types.Func, []string) {
	var found *types.Func
	var foundChain []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(pkg.Info, call)
		if callee == nil {
			return true
		}
		if impureCallee(callee) {
			found = callee
			foundChain = append(chain, fd.Name.Name)
			return false
		}
		if seen[callee] {
			return true
		}
		seen[callee] = true
		decl, declPkg := prog.FuncDecl(callee)
		if decl == nil || decl.Body == nil {
			return true // out-of-module or bodiless: boundary of the walk
		}
		if c, cc := findImpureCall(prog, declPkg, decl, append(chain, fd.Name.Name), seen); c != nil {
			found, foundChain = c, cc
			return false
		}
		return true
	})
	return found, foundChain
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes (plain calls and concrete method calls; interface
// dispatch and function values resolve to nil).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Concrete method call; interface methods have no body and
			// their declaring type is an interface.
			fn, _ := sel.Obj().(*types.Func)
			if fn != nil && !isInterfaceRecv(fn) {
				return fn
			}
			return nil
		}
		id = fun.Sel // package-qualified call: pkg.Fn
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn != nil && isInterfaceRecv(fn) {
		return nil
	}
	return fn
}

func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
