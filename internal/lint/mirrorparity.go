package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mirrorparity enforces the fidelity contract's coverage half
// (DESIGN.md §9, §16): every decision entry point the policy core
// exports must be wired into BOTH engines — the real manager and the
// simulator — or the differential harness is comparing traces that one
// engine can never emit. PR 6's L3-commitment drift hid exactly this
// way: a decision modeled in one engine only stays latent until a
// workload happens to exercise it.
//
// A decision entry point is an exported package-level function or
// exported method in internal/policy whose name starts with Plan,
// Place, Admit, Next, or Pick, or that takes a *Recorder parameter
// (the recording decision shape, e.g. NoteRefResult). The analyzer
// computes, for each engine, the set of policy functions statically
// reachable from that engine's packages — direct references plus
// policy-internal call chains (PlanTaskBatchInto -> PlanTask ->
// PlanStageAll -> PickSource all count as reached through the batch
// entry) — and flags entry points one side cannot reach. A
// deliberately one-sided entry point carries
// //vinelint:ignore mirrorparity with a justification.
var mirrorparity = &Analyzer{
	Name: "mirrorparity",
	Doc:  "every exported policy decision entry point is referenced by both the manager and the simulator",
	Suffixes: []string{
		"internal/policy",
	},
	Run: runMirrorParity,
}

// mirrorEnginePrefixes names the two engine package suffixes whose
// parity the analyzer proves.
var mirrorEngineSuffixes = []string{"internal/manager", "internal/sim"}

func runMirrorParity(pass *Pass) {
	// Engine packages that import this policy package. Without both
	// sides loaded there is no basis to judge parity — running vinelint
	// on ./internal/policy alone must not fabricate findings.
	engines := map[string][]*Package{}
	for _, suffix := range mirrorEngineSuffixes {
		for _, pkg := range pass.Prog.Target {
			if pkg.Info == nil || !hasPathSuffix(pkg.Path, suffix) {
				continue
			}
			if importsPackage(pkg.Types, pass.Pkg.Types) {
				engines[suffix] = append(engines[suffix], pkg)
			}
		}
	}
	for _, suffix := range mirrorEngineSuffixes {
		if len(engines[suffix]) == 0 {
			return
		}
	}

	entries := decisionEntryPoints(pass.Pkg)
	if len(entries) == 0 {
		return
	}

	for _, suffix := range mirrorEngineSuffixes {
		reached := map[*types.Func]bool{}
		for _, epkg := range engines[suffix] {
			seedPolicyRefs(pass, epkg, reached)
		}
		// Close over policy-internal calls: a policy function reached by
		// the engine drags in everything it calls within the package.
		var grow func(fn *types.Func)
		grow = func(fn *types.Func) {
			decl, declPkg := pass.Prog.FuncDecl(fn)
			if decl == nil || decl.Body == nil || declPkg == nil || declPkg.Types != pass.Pkg.Types {
				return
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(declPkg.Info, call)
				if callee == nil || callee.Pkg() != pass.Pkg.Types || reached[callee] {
					return true
				}
				reached[callee] = true
				grow(callee)
				return true
			})
		}
		for fn := range reached {
			grow(fn)
		}

		for _, e := range entries {
			if !reached[e.fn] {
				pass.Reportf(e.pos, "policy decision entry point %s is not referenced by %s; wire it into both engines (fidelity contract) or justify with //vinelint:ignore mirrorparity", e.fn.Name(), suffix)
			}
		}
	}
}

type entryPoint struct {
	fn  *types.Func
	pos token.Pos
}

// decisionEntryPoints collects the policy package's exported decision
// entry points, in declaration order.
func decisionEntryPoints(pkg *Package) []entryPoint {
	var out []entryPoint
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !isDecisionEntryPoint(pkg, fn) {
				continue
			}
			out = append(out, entryPoint{fn: fn, pos: fd.Name.Pos()})
		}
	}
	return out
}

// isDecisionEntryPoint classifies one exported policy function.
func isDecisionEntryPoint(pkg *Package, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	// Methods on unexported types are not part of the decision API.
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && !named.Obj().Exported() {
			return false
		}
	}
	for _, prefix := range []string{"Plan", "Place", "Admit", "Next", "Pick"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	// Recording decisions: any exported function taking a *Recorder.
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		ptr, ok := params.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if ok && named.Obj().Name() == "Recorder" && named.Obj().Pkg() == pkg.Types {
			return true
		}
	}
	return false
}

// seedPolicyRefs adds every policy function the engine package
// references (calls, assigns, passes as a value) to reached.
func seedPolicyRefs(pass *Pass, epkg *Package, reached map[*types.Func]bool) {
	for _, obj := range epkg.Info.Uses {
		fn, ok := obj.(*types.Func)
		if ok && fn.Pkg() == pass.Pkg.Types {
			reached[fn] = true
		}
	}
}

// importsPackage reports whether pkg directly imports target.
func importsPackage(pkg, target *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if imp == target {
			return true
		}
	}
	return false
}
