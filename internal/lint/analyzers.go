package lint

// All returns the full vinelint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		policypurity,
		mapdeterminism,
		lockdiscipline,
		pooldiscipline,
		ctxdeadline,
		pinresolve,
		tracestability,
		mirrorparity,
		statdiscipline,
		goroutinelifecycle,
	}
}
