package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// tracestability enforces the fidelity contract's formatting half
// (DESIGN.md §9, §16): the decision-trace vocabulary is pinned. Golden
// traces and differential replays compare traces byte for byte, so a
// reworded trace line — or a brand-new one wired into only one engine
// — silently invalidates every pinned trace until a run happens to
// exercise it. Statically:
//
//   - Every format string used by a Trace* helper in internal/policy
//     must appear in the pinned vocabulary (traceschema.go,
//     regenerated with `go run ./cmd/vinelint -write-traceschema`).
//   - Recorder.Record call sites in the policy core and the
//     manager/sim plane recorders must pass either a Trace* helper
//     call or a registered constant format — never an ad-hoc string
//     built at the call site.
//   - Trace formats may not contain nondeterministic verbs: %p never,
//     and %v (or %+v/%#v) on a map- or float-typed argument, whose
//     rendering depends on iteration order or shortest-float rounding.
var tracestability = &Analyzer{
	Name: "tracestability",
	Doc:  "decision-trace formats come from the pinned vocabulary and contain no nondeterministic verbs",
	Suffixes: []string{
		"internal/policy",
		"internal/manager",
		"internal/sim",
	},
	Run: runTraceStability,
}

func runTraceStability(pass *Pass) {
	info := pass.Pkg.Info
	isPolicy := pkgIsPolicy(pass.Pkg.Path)

	// Trace* helpers in the policy package are the single source of the
	// decision-string format: every Sprintf format and literal return in
	// one must be a registered vocabulary entry.
	if isPolicy {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Trace") {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch nn := n.(type) {
					case *ast.CallExpr:
						if isSprintf(info, nn) {
							checkTraceFormat(pass, nn)
						}
					case *ast.ReturnStmt:
						for _, res := range nn.Results {
							if lit := stringLit(res); lit != "" && !traceVocabulary[lit] {
								pass.Reportf(res.Pos(), "trace line %q is not in the pinned vocabulary; regenerate with `go run ./cmd/vinelint -write-traceschema` (fidelity contract: golden traces pin every format)", lit)
							}
						}
					}
					return true
				})
			}
		}
	}

	// Record call sites: the argument must flow through the vocabulary.
	pass.InspectPkg(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isRecorderRecord(info, call) || len(call.Args) != 1 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		switch a := arg.(type) {
		case *ast.CallExpr:
			if fn := staticCallee(info, a); fn != nil && strings.HasPrefix(fn.Name(), "Trace") && fn.Pkg() != nil && pkgIsPolicy(fn.Pkg().Path()) {
				return true // the canonical shape: rec.Record(policy.TraceX(...))
			}
			if isSprintf(info, a) {
				checkTraceFormat(pass, a)
				return true
			}
		case *ast.BasicLit:
			if lit := stringLit(a); lit != "" {
				if !traceVocabulary[lit] {
					pass.Reportf(a.Pos(), "trace line %q is not in the pinned vocabulary; regenerate with `go run ./cmd/vinelint -write-traceschema` (fidelity contract: golden traces pin every format)", lit)
				}
				return true
			}
		}
		pass.Reportf(arg.Pos(), "decision trace recorded from an ad-hoc expression; record through a policy Trace* helper (or a registered constant format) so both engines share one vocabulary")
		return true
	})
}

// checkTraceFormat validates one Sprintf whose result becomes a trace
// line: registered format, no nondeterministic verbs.
func checkTraceFormat(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	format := stringLit(ast.Unparen(call.Args[0]))
	if format == "" {
		pass.Reportf(call.Args[0].Pos(), "trace format must be a constant string literal so the vocabulary can pin it")
		return
	}
	if !traceVocabulary[format] {
		pass.Reportf(call.Args[0].Pos(), "trace format %q is not in the pinned vocabulary; regenerate with `go run ./cmd/vinelint -write-traceschema` (fidelity contract: golden traces pin every format)", format)
	}
	checkTraceVerbs(pass, call, format)
}

// checkTraceVerbs walks the verbs of a trace format left to right,
// pairing them with the call's variadic arguments, and flags the
// nondeterministic ones.
func checkTraceVerbs(pass *Pass, call *ast.CallExpr, format string) {
	info := pass.Pkg.Info
	argIdx := 1 // args[0] is the format
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		// Scan flags/width to the verb rune.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[j])) {
			j++
		}
		if j >= len(format) {
			break
		}
		verb := format[j]
		i = j
		if verb == '%' {
			continue
		}
		var argType types.Type
		if argIdx < len(call.Args) {
			if tv, ok := info.Types[call.Args[argIdx]]; ok {
				argType = tv.Type
			}
		}
		argIdx++
		switch verb {
		case 'p':
			pass.Reportf(call.Args[0].Pos(), "trace format uses %%p; pointer addresses differ between runs and engines (fidelity contract)")
		case 'v':
			if argType == nil {
				continue
			}
			switch argType.Underlying().(type) {
			case *types.Map:
				pass.Reportf(call.Args[0].Pos(), "trace format applies %%v to a map-typed argument; rendering depends on iteration order — format sorted keys explicitly")
			case *types.Basic:
				b := argType.Underlying().(*types.Basic)
				if b.Info()&types.IsFloat != 0 {
					pass.Reportf(call.Args[0].Pos(), "trace format applies %%v to a float-typed argument; scale to an integer first (the vtScale idiom) so no float formatting enters traces")
				}
			}
		}
	}
}

// isSprintf matches fmt.Sprintf calls.
func isSprintf(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf"
}

// isRecorderRecord matches method calls to (*Recorder).Record where
// Recorder is declared in a policy package.
func isRecorderRecord(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Record" {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Recorder" && pkgIsPolicy(named.Obj().Pkg().Path())
}

// pkgIsPolicy reports whether the import path is a policy package.
func pkgIsPolicy(path string) bool {
	return hasPathSuffix(path, "internal/policy")
}

// stringLit returns the value of a string literal expression, or "".
func stringLit(e ast.Expr) string {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}

// TraceFormats extracts the trace-format vocabulary from a loaded
// program: every constant Sprintf format and literal return inside a
// Trace* helper of a policy package, plus constant formats passed
// directly to Recorder.Record anywhere in the program. cmd/vinelint
// -write-traceschema regenerates traceschema.go from this set.
func TraceFormats(prog *Program) []string {
	set := map[string]bool{}
	for _, pkg := range prog.Target {
		if pkg.Info == nil {
			continue
		}
		if pkgIsPolicy(pkg.Path) {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Trace") {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch nn := n.(type) {
						case *ast.CallExpr:
							if isSprintf(pkg.Info, nn) && len(nn.Args) > 0 {
								if lit := stringLit(ast.Unparen(nn.Args[0])); lit != "" {
									set[lit] = true
								}
							}
						case *ast.ReturnStmt:
							for _, res := range nn.Results {
								if lit := stringLit(res); lit != "" {
									set[lit] = true
								}
							}
						}
						return true
					})
				}
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRecorderRecord(pkg.Info, call) || len(call.Args) != 1 {
					return true
				}
				switch a := ast.Unparen(call.Args[0]).(type) {
				case *ast.CallExpr:
					if isSprintf(pkg.Info, a) && len(a.Args) > 0 {
						if lit := stringLit(ast.Unparen(a.Args[0])); lit != "" {
							set[lit] = true
						}
					}
				case *ast.BasicLit:
					if lit := stringLit(a); lit != "" {
						set[lit] = true
					}
				}
				return true
			})
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// GenTraceSchema renders traceschema.go source for the given formats,
// gofmt-formatted, so `cmd/vinelint -write-traceschema` regenerates
// the pinned vocabulary byte-identically from a clean tree.
func GenTraceSchema(formats []string) ([]byte, error) {
	sorted := append([]string(nil), formats...)
	sort.Strings(sorted)
	var b strings.Builder
	b.WriteString("// Code generated by `go run ./cmd/vinelint -write-traceschema`. DO NOT EDIT by hand:\n")
	b.WriteString("// regenerate after changing a policy Trace* helper, then re-pin the golden traces.\n")
	b.WriteString("package lint\n\n")
	b.WriteString("// traceVocabulary is the pinned set of decision-trace format strings.\n")
	b.WriteString("// The tracestability analyzer rejects any trace format not listed\n")
	b.WriteString("// here, so a reworded or brand-new trace line is a compile-adjacent\n")
	b.WriteString("// failure instead of a silent golden-trace invalidation.\n")
	b.WriteString("var traceVocabulary = map[string]bool{\n")
	prev := ""
	for _, f := range sorted {
		if f == prev {
			continue
		}
		prev = f
		fmt.Fprintf(&b, "\t%q: true,\n", f)
	}
	b.WriteString("}\n")
	return format.Source([]byte(b.String()))
}
