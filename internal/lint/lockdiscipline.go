package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockdiscipline enforces the engines' lock hygiene: while a
// sync.Mutex/RWMutex is held, no channel sends, no proto writes, and
// no blocking network I/O — the hot-path contract that keeps the
// scheduler and data plane from stalling behind TCP backpressure
// (DESIGN.md §8, §10). It also flags a Lock() with no dominating
// Unlock (explicit or deferred) in the same function, the shape behind
// most leaked-lock deadlocks.
//
// The analysis is intra-procedural and lexical: a lock region runs
// from an `x.Lock()` statement to the matching `x.Unlock()` in the
// same statement list, or to the end of the function when the unlock
// is deferred. Calls into helpers are not followed — a helper that
// performs I/O under a caller's lock needs its own justification.
var lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no channel sends, proto writes, or blocking I/O under a mutex; every Lock has a dominating Unlock",
	Suffixes: []string{
		"internal/manager",
		"internal/worker",
		"internal/dataplane",
	},
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockDiscipline(pass, fd)
		}
	}
	// Function literals get the same treatment (goroutine bodies,
	// callbacks): each is analyzed as its own function.
	pass.InspectPkg(func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkLockBody(pass, fl.Body)
		}
		return true
	})
}

func checkLockDiscipline(pass *Pass, fd *ast.FuncDecl) {
	checkLockBody(pass, fd.Body)
}

// checkLockBody walks one function body's statement lists, tracking
// which mutexes are held at each point.
func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass}
	w.walkList(body.List, nil)
	for _, lk := range w.unmatched {
		pass.Reportf(lk.pos, "%s.Lock() has no dominating Unlock or defer in this function", lk.name)
	}
}

type heldLock struct {
	name string // receiver expression, printed
	pos  token.Pos
}

type lockWalker struct {
	pass      *Pass
	unmatched []heldLock
	// deferred names mutexes with a `defer x.Unlock()` seen anywhere in
	// the walked body; a Lock on one of those is considered matched.
	deferred map[string]bool
	// unlocked names mutexes with a plain Unlock anywhere in the body,
	// used for the no-dominating-Unlock check across branches.
	unlocked map[string]bool
}

// walkList scans one statement list. held carries the mutexes locked
// by enclosing statements; locks opened in this list extend it.
func (w *lockWalker) walkList(stmts []ast.Stmt, held []heldLock) {
	if w.deferred == nil {
		w.deferred = map[string]bool{}
		w.unlocked = map[string]bool{}
		// Pre-scan for defers and unlocks so order within the function
		// does not matter for the dominating-Unlock check.
		for _, s := range stmts {
			w.prescan(s)
		}
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if name, kind := w.mutexCall(st.X); kind == "Lock" {
				if !w.deferred[name] && !w.unlocked[name] {
					w.unmatched = append(w.unmatched, heldLock{name: name, pos: st.Pos()})
				}
				held = append(held, heldLock{name: name, pos: st.Pos()})
				continue
			} else if kind == "Unlock" {
				held = dropLock(held, name)
				continue
			}
			w.checkStmt(s, held)
		case *ast.DeferStmt:
			// defer x.Unlock() closes the region at function exit; the
			// statements after it still run with the lock held.
			if name, kind := w.mutexCall(st.Call); kind == "Unlock" {
				_ = name // region stays open: held is unchanged on purpose
				continue
			}
			w.checkStmt(s, held)
		case *ast.BlockStmt:
			w.walkList(st.List, held)
		case *ast.IfStmt:
			w.checkExprUnder(st.Cond, held)
			w.walkList(st.Body.List, held)
			if st.Else != nil {
				w.walkList([]ast.Stmt{st.Else}, held)
			}
		case *ast.ForStmt:
			w.walkList(st.Body.List, held)
		case *ast.RangeStmt:
			w.walkList(st.Body.List, held)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkList(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkList(cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			// A select with a default case is non-blocking by
			// construction; without one, its sends and receives block.
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range st.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil && !hasDefault {
					w.checkStmt(cc.Comm, held)
				}
				w.walkList(cc.Body, held)
			}
		default:
			w.checkStmt(s, held)
		}
	}
}

func (w *lockWalker) prescan(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's defers don't unlock the outer frame
		}
		switch st := n.(type) {
		case *ast.DeferStmt:
			if name, kind := w.mutexCall(st.Call); kind == "Unlock" {
				w.deferred[name] = true
			}
		case *ast.ExprStmt:
			if name, kind := w.mutexCall(st.X); kind == "Unlock" {
				w.unlocked[name] = true
			}
		}
		return true
	})
}

func dropLock(held []heldLock, name string) []heldLock {
	out := held[:0:0]
	for _, lk := range held {
		if lk.name != name {
			out = append(out, lk)
		}
	}
	return out
}

// checkStmt flags blocking operations inside a statement executed with
// locks held. Function literals are skipped: they run later, not under
// this region.
func (w *lockWalker) checkStmt(s ast.Stmt, held []heldLock) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			w.pass.Reportf(nn.Arrow, "channel send while %s is held; a full channel stalls every path behind this lock", held[len(held)-1].name)
		case *ast.CallExpr:
			w.checkCall(nn, held)
		}
		return true
	})
}

func (w *lockWalker) checkExprUnder(e ast.Expr, held []heldLock) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			w.checkCall(call, held)
		}
		return true
	})
}

// checkCall flags proto writes and blocking network I/O performed with
// a lock held.
func (w *lockWalker) checkCall(call *ast.CallExpr, held []heldLock) {
	info := w.pass.Pkg.Info
	fn := staticCallee(info, call)
	lock := held[len(held)-1].name
	if fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		switch {
		case strings.HasSuffix(path, "internal/proto") && fn.Name() != "Decode" && fn.Name() != "DecodeBulk" && fn.Name() != "SplitBulk" && fn.Name() != "NewConn" && fn.Name() != "WithIdleTimeout":
			w.pass.Reportf(call.Pos(), "proto I/O (%s) while %s is held; frame the message after releasing the lock", fn.Name(), lock)
		case path == "net":
			w.pass.Reportf(call.Pos(), "net.%s while %s is held; network I/O must not run under the scheduler lock", fn.Name(), lock)
		case path == "time" && fn.Name() == "Sleep":
			w.pass.Reportf(call.Pos(), "time.Sleep while %s is held", lock)
		case path == "io" && (fn.Name() == "ReadFull" || fn.Name() == "Copy" || fn.Name() == "ReadAll"):
			w.pass.Reportf(call.Pos(), "io.%s while %s is held; stream I/O must not run under a mutex", fn.Name(), lock)
		}
	}
	// Method calls on net.Conn / net.Listener values (Read, Write,
	// Accept, ...) block on the peer.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isNetConnish(tv.Type) {
			w.pass.Reportf(call.Pos(), "%s on a network connection while %s is held", sel.Sel.Name, lock)
		}
	}
}

// isNetConnish reports whether t is net.Conn, net.Listener, or a named
// type from package net.
func isNetConnish(t types.Type) bool {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// mutexCall classifies an expression as `x.Lock()` / `x.Unlock()` on a
// sync.Mutex or RWMutex (RLock/RUnlock count too), returning the
// printed receiver and "Lock"/"Unlock", or "" when it is neither.
func (w *lockWalker) mutexCall(e ast.Expr) (name, kind string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := staticCallee(w.pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return exprString(sel.X), "Lock"
	case "Unlock", "RUnlock":
		return exprString(sel.X), "Unlock"
	}
	return "", ""
}

// exprString renders a receiver expression for region matching —
// identical spellings pair a Lock with its Unlock.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	default:
		return "?"
	}
}
