package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// statdiscipline enforces the stats contract of the long-lived server
// packages (DESIGN.md §16): a struct field that is accessed through
// sync/atomic anywhere in the package must be accessed atomically
// everywhere in the package. A mixed regime — atomic.AddInt64 on the
// hot path, a plain load in a snapshot — is a data race the race
// detector only catches when a test happens to interleave the two
// sites; the analyzer catches it on field identity alone.
//
// The analysis keys on go/types field objects: pass 1 collects every
// field whose address reaches an atomic.Load/Store/Add/Swap/
// CompareAndSwap call, pass 2 flags plain selector loads and stores of
// those same fields. Two shapes stay legal: taking the field's address
// (&s.counter handed to a helper that does the atomic ops — ownership
// handoff, the sendq drops-counter idiom), and access through a
// by-value copy of the enclosing struct (a Stats snapshot returned by
// value is immutable private memory, not the shared instance).
var statdiscipline = &Analyzer{
	Name: "statdiscipline",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Suffixes: []string{
		"internal/manager",
		"internal/worker",
		"internal/dataplane",
	},
	Run: runStatDiscipline,
}

func runStatDiscipline(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: fields whose address flows into a sync/atomic call.
	atomicFields := map[*types.Var]string{}
	pass.InspectPkg(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOpName(fn.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if fv := addressedField(info, arg); fv != nil {
				if _, seen := atomicFields[fv]; !seen {
					atomicFields[fv] = fn.Name()
				}
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: plain selector accesses of those fields. Selectors that
	// are themselves the &-operand of any unary address-of (atomic call
	// arguments included) are skipped, as are accesses rooted in a
	// by-value struct copy.
	addressed := map[*ast.SelectorExpr]bool{}
	pass.InspectPkg(func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
			if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
				addressed[sel] = true
			}
		}
		return true
	})
	pass.InspectPkg(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || addressed[sel] {
			return true
		}
		fv, _ := info.Uses[sel.Sel].(*types.Var)
		if fv == nil || !fv.IsField() {
			return true
		}
		op, tracked := atomicFields[fv]
		if !tracked || !sharedAccess(info, sel) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "plain access to field %s, which is accessed via atomic.%s elsewhere in this package; mixed atomic/plain access is a data race — use sync/atomic here too, or justify with //vinelint:ignore statdiscipline", sel.Sel.Name, op)
		return true
	})
}

// isAtomicOpName matches the sync/atomic package-level load/store
// family (typed variants included).
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addressedField unwraps `&expr.Field` to the field's types.Var.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op.String() != "&" {
		return nil
	}
	sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fv, _ := info.Uses[sel.Sel].(*types.Var)
	if fv == nil || !fv.IsField() {
		return nil
	}
	return fv
}

// sharedAccess reports whether the selector reaches shared memory: its
// base chain passes through a pointer dereference or a package-level
// variable. A chain rooted entirely in a local by-value struct (a
// snapshot copy) is private memory and not a race.
func sharedAccess(info *types.Info, sel *ast.SelectorExpr) bool {
	x := ast.Unparen(sel.X)
	for {
		if tv, ok := info.Types[x]; ok && tv.Type != nil {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				return true
			}
		}
		switch base := x.(type) {
		case *ast.SelectorExpr:
			x = ast.Unparen(base.X)
		case *ast.Ident:
			obj := info.Uses[base]
			if obj == nil {
				return true // conservatively shared
			}
			if v, ok := obj.(*types.Var); ok {
				// Package-level variables are shared; locals of value
				// type are this goroutine's copy.
				return v.Parent() == v.Pkg().Scope()
			}
			return true
		case *ast.IndexExpr:
			x = ast.Unparen(base.X)
		case *ast.CallExpr:
			// A value returned by a call is a fresh copy.
			return false
		default:
			return true
		}
	}
}
