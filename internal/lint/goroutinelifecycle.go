package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinelifecycle enforces the shutdown contract of the long-lived
// server packages (DESIGN.md §16): every goroutine the manager,
// worker, or data plane spawns must be tied to a shutdown mechanism,
// so Close/Shutdown/Wait can actually drain it. An orphan goroutine is
// how a "stopped" server keeps a socket open, a test leaks into the
// next one, and CheckQuiescence lies.
//
// A `go` statement is owned when:
//
//   - a sync.WaitGroup Add call lexically dominates it in the same
//     function frame (the Add-then-spawn idiom; Add(4) covers the four
//     spawns below it), or
//   - the spawned body — a function literal, or the statically
//     resolved declaration of a named function — contains a channel
//     receive or select (a done-channel loop) or a WaitGroup Done
//     call.
//
// Anything else carries //vinelint:ignore goroutinelifecycle with a
// justification.
var goroutinelifecycle = &Analyzer{
	Name: "goroutinelifecycle",
	Doc:  "every goroutine in a long-lived server package is tied to a WaitGroup or a done-channel",
	Suffixes: []string{
		"internal/manager",
		"internal/worker",
		"internal/dataplane",
	},
	Run: runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Walk function frames: top-level declarations plus literals,
		// each providing the lexical scope for the Add-dominates check.
		var walkFrame func(body *ast.BlockStmt)
		walkFrame = func(body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.FuncLit:
					walkFrame(nn.Body)
					return false
				case *ast.GoStmt:
					checkGoStmt(pass, info, body, nn)
					// The spawned literal's own body is still a frame for
					// nested spawns.
					if fl, ok := nn.Call.Fun.(*ast.FuncLit); ok {
						walkFrame(fl.Body)
					}
					return false
				}
				return true
			})
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkFrame(fd.Body)
			}
		}
	}
}

// checkGoStmt validates one go statement against the ownership rules.
func checkGoStmt(pass *Pass, info *types.Info, frame *ast.BlockStmt, g *ast.GoStmt) {
	if addDominates(info, frame, g.Pos()) {
		return
	}
	var body *ast.BlockStmt
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		body = fl.Body
	} else if fn := staticCallee(info, g.Call); fn != nil {
		if decl, _ := pass.Prog.FuncDecl(fn); decl != nil {
			body = decl.Body
		}
	}
	if body != nil && bodyHasShutdownLinkage(info, body) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine has no shutdown linkage: add a dominating WaitGroup.Add (with Done inside), select on a done channel in the body, or justify with //vinelint:ignore goroutinelifecycle")
}

// addDominates reports whether a sync.WaitGroup Add call appears in
// the frame before pos (nested function literals excluded — their Adds
// belong to their own frames).
func addDominates(info *types.Info, frame *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(frame, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.End() < pos && isWaitGroupCall(info, call, "Add") {
			found = true
			return false
		}
		return true
	})
	return found
}

// bodyHasShutdownLinkage reports whether a spawned body contains a
// channel receive, a select statement, or a WaitGroup Done call —
// nested literals excluded, they are their own goroutines' bodies only
// when spawned, and their linkage does not drain this one.
func bodyHasShutdownLinkage(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			// Ranging a channel drains until close — a shutdown signal.
			if tv, ok := info.Types[nn.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if isWaitGroupCall(info, nn, "Done") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWaitGroupCall matches `x.<name>(...)` on a sync.WaitGroup.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}
