package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// A pragma is one parsed //vinelint: suppression comment. It absorbs
// findings of the named analyzer reported on its own line or the line
// directly below (the comment-above-the-loop idiom).
//
//	//vinelint:unordered <justification>      → analyzer mapdeterminism
//	//vinelint:ignore <analyzer> <justification>
type pragma struct {
	name    string // analyzer the pragma suppresses
	file    string
	line    int
	pos     token.Position
	justify string
	used    int
	rawName string // pragma keyword as written (unordered / ignore)
}

const pragmaPrefix = "//vinelint:"

// collectPragmas parses every vinelint pragma in the package, emitting
// errors for malformed ones: unknown pragma keywords, unknown analyzer
// names, and missing justifications are all hard failures — a
// suppression that cannot explain itself is worse than the finding.
func collectPragmas(fset *token.FileSet, pkg *Package, knownAnalyzers map[string]bool) ([]*pragma, []Diagnostic) {
	var out []*pragma
	var errs []Diagnostic
	bad := func(pos token.Position, format string, args ...any) {
		errs = append(errs, Diagnostic{Analyzer: "pragma", Pos: pos, Message: fmt.Sprintf(format, args...), Severity: SeverityError})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				keyword, arg, _ := strings.Cut(rest, " ")
				arg = strings.TrimSpace(arg)
				pr := &pragma{file: pos.Filename, line: pos.Line, pos: pos, rawName: keyword}
				switch keyword {
				case "unordered":
					pr.name = "mapdeterminism"
					pr.justify = arg
				case "ignore":
					analyzer, justify, _ := strings.Cut(arg, " ")
					pr.name = analyzer
					pr.justify = strings.TrimSpace(justify)
					if analyzer == "" {
						bad(pos, "//vinelint:ignore needs an analyzer name and a justification")
						continue
					}
					if !knownAnalyzers[analyzer] {
						bad(pos, "//vinelint:ignore names unknown analyzer %q", analyzer)
						continue
					}
				default:
					bad(pos, "unknown vinelint pragma %q (want unordered or ignore)", keyword)
					continue
				}
				if pr.justify == "" {
					bad(pos, "//vinelint:%s needs a justification — say why the invariant holds here", keyword)
					continue
				}
				out = append(out, pr)
			}
		}
	}
	return out, errs
}

// matchPragma finds a pragma that suppresses the diagnostic: same
// analyzer, same file, on the finding's line or the line above it.
// Same-line matches win over line-above matches, so nested loops with
// per-line pragmas each consume their own (a line-above match must not
// steal the pragma belonging to the previous line's finding).
func matchPragma(pragmas []*pragma, d Diagnostic) *pragma {
	var above *pragma
	for _, pr := range pragmas {
		if pr.name != d.Analyzer || pr.file != d.Pos.Filename {
			continue
		}
		if pr.line == d.Pos.Line {
			return pr
		}
		if pr.line == d.Pos.Line-1 && above == nil {
			above = pr
		}
	}
	return above
}
