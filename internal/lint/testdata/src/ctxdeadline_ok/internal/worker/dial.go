// Package worker is a clean fixture for the deadline contract: dials
// are bounded, wire connections are idle-deadline wrapped, and
// in-memory transports carry no deadline obligation.
package worker

import (
	"bytes"
	"net"
	"time"

	"repro/internal/proto"
)

func Connect(addr string, idle time.Duration) (*proto.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, idle)
	if err != nil {
		return nil, err
	}
	return proto.NewConn(proto.WithIdleTimeout(nc, idle)), nil
}

func Loopback(buf *bytes.Buffer) *proto.Conn {
	return proto.NewConn(buf) // no wire involved: never flagged
}
