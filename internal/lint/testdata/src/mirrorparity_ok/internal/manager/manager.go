// Package manager is the real-engine side of the clean mirrorparity
// fixture.
package manager

import policy "repro/internal/lint/testdata/src/mirrorparity_ok/internal/policy"

// Drive plans a batch, records it, and schedules a retry.
func Drive(v *policy.View, rec *policy.Recorder, keys []string) int {
	ds := v.PlanBatch(keys)
	for _, d := range ds {
		policy.NoteThing(rec, d.Worker)
	}
	return policy.PickDelay(len(ds)) + policy.Helper()
}
