// Package sim is the simulator side of the clean mirrorparity fixture:
// it reaches every decision entry point PlanBatch drags in, without
// ever waiting out a retry delay.
package sim

import policy "repro/internal/lint/testdata/src/mirrorparity_ok/internal/policy"

// Replay mirrors the manager's decisions.
func Replay(v *policy.View, rec *policy.Recorder, keys []string) {
	for _, d := range v.PlanBatch(keys) {
		policy.NoteThing(rec, d.Worker)
	}
}
