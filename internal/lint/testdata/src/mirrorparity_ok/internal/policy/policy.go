// Package policy is a clean fixture for mirrorparity: every decision
// entry point is reachable from both engines — directly, or through a
// policy-internal call chain (the batch-wrapper shape) — and the one
// deliberately one-sided entry carries a justified pragma.
package policy

// View is the decision substrate.
type View struct{ Workers []string }

// Decision is one placement.
type Decision struct{ Worker string }

// Recorder mirrors the real policy Recorder shape.
type Recorder struct{ Decisions []string }

// PlanThing is referenced by neither engine directly: both reach it
// through PlanBatch, which must count as parity.
func (v *View) PlanThing(key string) Decision {
	return v.pickFirst(key)
}

// PlanBatch is the entry both engines actually call.
func (v *View) PlanBatch(keys []string) []Decision {
	out := make([]Decision, 0, len(keys))
	for _, k := range keys {
		out = append(out, v.PlanThing(k))
	}
	return out
}

// NoteThing records a decision; the *Recorder parameter marks it as a
// decision entry point, and both engines call it.
func NoteThing(rec *Recorder, line string) {
	rec.Decisions = append(rec.Decisions, line)
}

//vinelint:ignore mirrorparity backoff timing is real-engine-only; the untimed replay never waits
func PickDelay(attempt int) int {
	return attempt * 2
}

// Helper is exported but not a decision entry point (no decision
// prefix, no Recorder parameter): one-sided use is fine.
func Helper() int { return 1 }

func (v *View) pickFirst(string) Decision {
	if len(v.Workers) == 0 {
		return Decision{}
	}
	return Decision{Worker: v.Workers[0]}
}
