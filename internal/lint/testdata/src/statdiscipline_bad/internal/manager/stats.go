// Package manager is a fixture violating statdiscipline: the Done
// counter is atomic on the hot path but read and written plainly
// through shared pointers elsewhere.
package manager

import "sync/atomic"

type stats struct{ Done int64 }

// Manager owns shared stats.
type Manager struct{ stats stats }

// Bump increments atomically.
func (m *Manager) Bump() {
	atomic.AddInt64(&m.stats.Done, 1)
}

// Peek reads the same field without atomic through the shared
// receiver pointer: a data race with Bump.
func (m *Manager) Peek() int64 {
	return m.stats.Done // want `plain access to field Done, which is accessed via atomic.AddInt64`
}

// Reset writes it plainly: also a race.
func (m *Manager) Reset() {
	m.stats.Done = 0 // want `plain access to field Done`
}
