// Package manager is a fixture exercising every pragma failure mode:
// unknown keyword, unknown analyzer name, missing justification, and a
// stale pragma suppressing nothing — plus one valid suppression.
package manager

//vinelint:frobnicate this keyword does not exist

//vinelint:ignore nosuchanalyzer because reasons

// A pragma without a justification is rejected, so the finding below
// it survives.
func Unjustified(m map[string]int) int {
	n := 0
	//vinelint:unordered
	for range m { // want `map iteration order is nondeterministic`
		n++
	}
	return n
}

//vinelint:unordered this loop was rewritten long ago; the pragma is stale

func Suppressed(m map[string]int) int {
	n := 0
	for range m { //vinelint:unordered counting map entries is order-independent
		n++
	}
	return n
}
