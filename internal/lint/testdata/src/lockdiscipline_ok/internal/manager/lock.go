// Package manager is a clean fixture for lock hygiene: work happens
// after release, sends under the lock are non-blocking selects, and
// goroutine bodies are their own lock frames.
package manager

import "sync"

type state struct {
	mu  sync.Mutex
	out chan int
	n   int
}

func (s *state) IncThenSend() {
	s.mu.Lock()
	s.n++
	v := s.n
	s.mu.Unlock()
	s.out <- v
}

func (s *state) TryNotify() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- s.n: // non-blocking: the select has a default
	default:
	}
}

func (s *state) Spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.out <- 1 // runs after the region, in its own frame
	}()
}

func (s *state) Branchy(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		s.out <- 1
		return
	}
	s.mu.Unlock()
}
