// Package worker is a fixture breaking the §10/§15 layering: executor
// code touching the content cache directly, unwrapping the raw cache
// out of the data plane, and reaching the shared tier around it.
package worker

import (
	"repro/internal/content"
	"repro/internal/dataplane"
	"repro/internal/sharedfs"
)

func Load(c *content.Cache, id string) (*content.Object, bool) {
	return c.Get(id) // want `direct content.Cache.Get call`
}

func Unwrap(p *dataplane.Plane) *content.Cache {
	return p.Cache() // want `Plane.Cache\(\) unwraps the raw content cache`
}

func ReadAroundPlane(s *sharedfs.Store, id string) (*content.Object, error) {
	return s.Fetch(id) // want `direct shared-tier Fetch call`
}

func SpillAroundPlane(tier dataplane.SharedTier, obj *content.Object) {
	tier.Put(obj) // want `direct shared-tier Put call`
}
