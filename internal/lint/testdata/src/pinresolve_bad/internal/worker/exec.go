// Package worker is a fixture breaking the §10 layering: executor
// code touching the content cache directly and unwrapping the raw
// cache out of the data plane.
package worker

import (
	"repro/internal/content"
	"repro/internal/dataplane"
)

func Load(c *content.Cache, id string) (*content.Object, bool) {
	return c.Get(id) // want `direct content.Cache.Get call`
}

func Unwrap(p *dataplane.Plane) *content.Cache {
	return p.Cache() // want `Plane.Cache\(\) unwraps the raw content cache`
}
