// Package proto is a fixture breaking the encode-buffer pool
// discipline: Gets with no Put, Gets whose Put is not deferred, and
// the same shapes through an interface pool and the getEncBuf helper.
package proto

import (
	"bytes"
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

type bufferPool interface {
	Get() *bytes.Buffer
	Put(*bytes.Buffer)
}

var encPool bufferPool

func getEncBuf() *bytes.Buffer {
	buf := pool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putEncBuf(buf *bytes.Buffer) { pool.Put(buf) }

func LeakOnEveryPath(v []byte) error {
	buf := pool.Get().(*bytes.Buffer) // want `pool Get with no Put in this function`
	buf.Write(v)
	if buf.Len() == 0 {
		return errors.New("empty")
	}
	return nil
}

func LeakOnErrorPath(v []byte) error {
	buf := pool.Get().(*bytes.Buffer) // want `pool Get whose Put is not deferred`
	buf.Write(v)
	if buf.Len() == 0 {
		return errors.New("empty") // leaks: the Put below never runs
	}
	pool.Put(buf)
	return nil
}

func LeakThroughInterfacePool(v []byte) error {
	buf := encPool.Get() // want `pool Get with no Put in this function`
	buf.Write(v)
	if buf.Len() == 0 {
		return errors.New("empty")
	}
	return nil
}

func LeakThroughHelper(v []byte) error {
	buf := getEncBuf() // want `pool Get whose Put is not deferred`
	buf.Write(v)
	if buf.Len() == 0 {
		return errors.New("empty") // leaks: putEncBuf below never runs
	}
	putEncBuf(buf)
	return nil
}

func LeakInsideLiteral(v []byte) func() {
	return func() {
		buf := getEncBuf() // want `pool Get with no Put in this function`
		buf.Write(v)
	}
}

func LeakBeforeDefer(v []byte) error {
	buf := pool.Get().(*bytes.Buffer) // want `pool Get with an early return before the deferred Put is armed`
	if len(v) == 0 {
		return errors.New("empty input") // escapes before the defer below arms
	}
	defer pool.Put(buf)
	buf.Write(v)
	return nil
}

// The suppression below sits on a clean function: it absorbs nothing,
// and the analyzer rejects it as stale rather than letting a dead
// exemption rot in place.
//
//vinelint:ignore pooldiscipline exemption kept from a leak that was since fixed // want `stale //vinelint:pooldiscipline pragma`
func BalancedAfterFix(v []byte) error {
	buf := pool.Get().(*bytes.Buffer)
	defer pool.Put(buf)
	buf.Write(v)
	return nil
}
