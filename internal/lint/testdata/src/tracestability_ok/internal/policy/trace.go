// Package policy is a clean fixture for tracestability: Trace* helpers
// format only pinned vocabulary entries, and every Record call flows
// through a helper or a registered constant format.
package policy

import "fmt"

// Recorder mirrors the real policy Recorder shape.
type Recorder struct{ Decisions []string }

func (r *Recorder) Record(line string) { r.Decisions = append(r.Decisions, line) }

// Place is a decision payload.
type Place struct {
	Worker string
	Stages int
}

// TracePlaceTask renders a placement with a registered format.
func TracePlaceTask(key string, d Place) string {
	return fmt.Sprintf("task key=%s worker=%s stages=%d", key, d.Worker, d.Stages)
}

// TracePick branches between two registered formats.
func TracePick(lib, worker string, promote bool) string {
	if promote {
		return fmt.Sprintf("promote obj=%s worker=%s", lib, worker)
	}
	return fmt.Sprintf("place lib=%s worker=%s", lib, worker)
}

// Decide records through the canonical shapes.
func Decide(rec *Recorder, key string) {
	rec.Record(TracePlaceTask(key, Place{Worker: "w0"}))
	rec.Record(fmt.Sprintf("place lib=%s worker=%s", key, "w0"))
}
