// Package manager is a clean fixture: the engine records only through
// the policy package's Trace* helpers.
package manager

import policy "repro/internal/lint/testdata/src/tracestability_ok/internal/policy"

// Run drives one recorded decision.
func Run(rec *policy.Recorder, key string) {
	rec.Record(policy.TracePlaceTask(key, policy.Place{Worker: "w1", Stages: 1}))
}
