// Package dataplane is a clean fixture: the data plane is now in
// mapdeterminism's scope, and its sorted and pragma-absorbed loops
// stay quiet.
package dataplane

import "repro/internal/core"

func Owners(objs map[string]string) []string {
	var out []string
	for _, k := range core.SortedKeys(objs) {
		out = append(out, objs[k])
	}
	return out
}

func TotalBytes(sizes map[string]int64) int64 {
	var t int64
	for _, n := range sizes { //vinelint:unordered summing spill sizes is order-independent
		t += n
	}
	return t
}
