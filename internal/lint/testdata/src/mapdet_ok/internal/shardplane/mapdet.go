// Package shardplane is a clean fixture: sorted-keys iteration keeps
// shard routing deterministic without a pragma.
package shardplane

import "repro/internal/core"

func Drain(parked map[string][]int) []int {
	var out []int
	for _, k := range core.SortedKeys(parked) {
		out = append(out, parked[k]...)
	}
	return out
}
