// Package manager is a clean fixture: sorted-keys iteration and slice
// ranges are never flagged, and a justified //vinelint:unordered
// pragma absorbs a genuinely commutative loop.
package manager

import "repro/internal/core"

func Keys(m map[string]int) []string {
	return core.SortedKeys(m)
}

func Sum(m map[string]int) int {
	t := 0
	for _, k := range core.SortedKeys(m) {
		t += m[k]
	}
	return t
}

func Count(m map[string]bool) int {
	n := 0
	for range m { //vinelint:unordered counting map entries is order-independent
		n++
	}
	return n
}
