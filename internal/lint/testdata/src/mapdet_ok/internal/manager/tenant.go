// Tenant-plane fixture, clean form: the registry maps tenant names to
// dense indices once, and every order-sensitive walk runs over the
// index-ordered slice — the shape the real submission plane uses.
package manager

import "repro/internal/core"

type tenantQueue struct {
	specs []int64
}

// DrainTenants walks queues in registry (slice) order; the name map is
// only a lookup table.
func DrainTenants(byName map[string]int, queues []*tenantQueue) []int64 {
	var out []int64
	for _, q := range queues {
		out = append(out, q.specs...)
	}
	_ = byName["lookup-only"]
	return out
}

// QuotaReport iterates tenant names sorted.
func QuotaReport(inflight map[string]int) []string {
	var over []string
	for _, tenant := range core.SortedKeys(inflight) {
		if inflight[tenant] > 0 {
			over = append(over, tenant)
		}
	}
	return over
}
