// Tenant-plane fixture, clean form: admission verdicts and fair-share
// picks as pure functions of explicit tenant state — virtual time in,
// decision out, ties broken by index.
package policy

const tenantScale = 720720

// TenantState is explicit caller-owned accounting.
type TenantState struct {
	Weight int
	VTime  int64
	Queued int
}

// AdmitTenant sheds on the caller-supplied bound, never on a clock.
func AdmitTenant(st *TenantState, maxQueue int) bool {
	return maxQueue == 0 || st.Queued < maxQueue
}

// NextTenant picks the eligible tenant with minimum virtual time,
// lowest index winning ties — deterministic for any input order.
func NextTenant(states []*TenantState) int {
	best := -1
	for i, st := range states {
		if st.Queued == 0 {
			continue
		}
		if best < 0 || st.VTime < states[best].VTime {
			best = i
		}
	}
	if best >= 0 {
		states[best].VTime += tenantScale / int64(states[best].Weight)
	}
	return best
}
