// Package policy is a clean fixture: pure decisions over explicit
// inputs, constants instead of globals, sorted iteration via core.
package policy

import "repro/internal/core"

const maxCandidates = 8

// Best returns the smallest key, bounded by maxCandidates probes.
func Best(m map[string]int) string {
	keys := core.SortedKeys(m)
	if len(keys) > maxCandidates {
		keys = keys[:maxCandidates]
	}
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}
