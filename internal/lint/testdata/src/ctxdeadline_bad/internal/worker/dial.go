// Package worker is a fixture violating the deadline contract: an
// unbounded dial and a framed connection over a raw net.Conn.
package worker

import (
	"net"

	"repro/internal/proto"
)

func Connect(addr string) (*proto.Conn, error) {
	nc, err := net.Dial("tcp", addr) // want `net.Dial has no deadline`
	if err != nil {
		return nil, err
	}
	return proto.NewConn(nc), nil // want `proto.NewConn over a raw net.Conn`
}
