// Package proto is a fixture obeying the encode-buffer pool
// discipline: deferred Puts dominate every Get, and the
// ownership-transfer shapes (functions returning the buffer) are
// recognized as exempt.
package proto

import (
	"bytes"
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

type bufferPool interface {
	Get() *bytes.Buffer
	Put(*bytes.Buffer)
}

type countingPool struct {
	n int
	p sync.Pool
}

// Get transfers ownership out: exempt, like the real getEncBuf.
func (c *countingPool) Get() *bytes.Buffer {
	c.n++
	if b, ok := c.p.Get().(*bytes.Buffer); ok {
		return b
	}
	return new(bytes.Buffer)
}

func (c *countingPool) Put(b *bytes.Buffer) { c.p.Put(b) }

var encPool bufferPool = &countingPool{}

func getEncBuf() *bytes.Buffer {
	buf := encPool.Get()
	buf.Reset()
	return buf
}

func putEncBuf(buf *bytes.Buffer) { encPool.Put(buf) }

func DeferredPut(v []byte) error {
	buf := pool.Get().(*bytes.Buffer)
	defer pool.Put(buf)
	buf.Reset()
	buf.Write(v)
	if buf.Len() == 0 {
		return errors.New("empty")
	}
	return nil
}

func DeferredHelperPut(v []byte) error {
	buf := getEncBuf()
	defer putEncBuf(buf)
	buf.Write(v)
	if buf.Len() == 0 {
		return errors.New("empty")
	}
	return nil
}

// OwnershipTransfer hands the buffer to the caller, which owes the
// Put — the getEncBuf shape.
func OwnershipTransfer(v []byte) *bytes.Buffer {
	buf := getEncBuf()
	buf.Write(v)
	return buf
}

// LiteralWithDefer shows a function literal balancing its own frame.
func LiteralWithDefer(v []byte) func() error {
	return func() error {
		buf := getEncBuf()
		defer putEncBuf(buf)
		buf.Write(v)
		return nil
	}
}

// ParkBuffer hands the buffer to a package global; UnparkBuffer puts
// it back later. The analyzer cannot see that cross-function balance,
// so a justified pragma carries the proof.
var parked *bytes.Buffer

func ParkBuffer(v []byte) {
	//vinelint:ignore pooldiscipline the buffer is parked in the package global and returned to the pool by UnparkBuffer
	buf := getEncBuf()
	buf.Write(v)
	parked = buf
}

func UnparkBuffer() {
	if parked != nil {
		putEncBuf(parked)
		parked = nil
	}
}

// NoPoolTraffic never touches a pool; Get/Put on non-pool types are
// not the analyzer's business.
type registry struct{ m map[string]int }

func (r *registry) Get() *registry  { return r }
func (r *registry) Put(x *registry) {}

func UnrelatedGetPut() {
	r := &registry{}
	_ = r.Get()
}
