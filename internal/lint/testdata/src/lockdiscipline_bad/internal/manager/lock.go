// Package manager is a fixture breaking lock hygiene: channel sends,
// proto writes, network I/O, and sleeps under a held mutex, plus a
// Lock with no dominating Unlock.
package manager

import (
	"net"
	"sync"
	"time"

	"repro/internal/proto"
)

type state struct {
	mu   sync.Mutex
	out  chan int
	conn net.Conn
	n    int
}

func (s *state) SendUnderLock() {
	s.mu.Lock()
	s.out <- s.n // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func (s *state) WriteUnderLock(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(buf) // want `Write on a network connection while s.mu is held`
}

func (s *state) ProtoUnderLock(c *proto.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Send(proto.MsgHello, struct{}{}) // want `proto I/O \(Send\) while s.mu is held`
}

func (s *state) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
	s.mu.Unlock()
}

func (s *state) DialUnderLock(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	net.Dial("tcp", addr) // want `net.Dial while s.mu is held`
}

func (s *state) Leak(cond bool) int {
	s.mu.Lock() // want `s.mu.Lock\(\) has no dominating Unlock`
	if cond {
		return 0
	}
	return s.n
}
