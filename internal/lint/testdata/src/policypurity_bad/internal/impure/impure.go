// Package impure smuggles clocks and randomness behind an innocent
// API — the policypurity call-graph walk must see through it.
package impure

import (
	"math/rand"
	"time"
)

func Jitter(n int) int {
	return n + time.Now().Nanosecond()
}

func Choose(n int) int {
	return rand.Intn(n)
}
