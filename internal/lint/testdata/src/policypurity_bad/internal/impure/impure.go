// Package impure smuggles clocks and randomness behind an innocent
// API — the policypurity call-graph walk must see through it.
package impure

import (
	"math/rand"
	"time"
)

func Jitter(n int) int {
	return n + time.Now().Nanosecond()
}

func Choose(n int) int {
	return rand.Intn(n)
}

// Age and Spin are the tenant fixture's own impure leaves: the
// analyzer memoizes visited callees across roots, so each fixture
// function needs a distinct smuggling route to keep its diagnostic.
func Age(d int) int {
	return d + time.Now().Second()
}

func Spin(n int) int {
	return rand.New(rand.NewSource(int64(n))).Intn(n)
}
