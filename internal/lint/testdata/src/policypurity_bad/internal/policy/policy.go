// Package policy is a fixture violating every policypurity rule: a
// banned import, package-level mutable state, and clock/randomness
// reached transitively through a helper package.
package policy

import (
	"os" // want `policy core must not import "os"`

	"repro/internal/lint/testdata/src/policypurity_bad/internal/impure"
)

var defaultSeed = os.Getpid() // want `package-level state`

func Decide(n int) int { // want `Decide reaches time.Now`
	return impure.Jitter(n) + defaultSeed
}

func Pick(n int) int { // want `Pick reaches math/rand`
	return impure.Choose(n)
}
