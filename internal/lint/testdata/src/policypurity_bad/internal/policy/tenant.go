// Tenant-plane fixture: admission and fair-share decisions that smuggle
// wall-clock age and randomized tie-breaks into the policy core — the
// exact impurities the submission plane's determinism forbids.
package policy

import "repro/internal/lint/testdata/src/policypurity_bad/internal/impure"

var tenantRR int // want `package-level state`

// AdmitTenant sheds by wall-clock queue age (reached through the
// helper), so two replays of the same trace disagree.
func AdmitTenant(queued int) bool { // want `AdmitTenant reaches time.Now`
	return impure.Age(queued) < 100
}

// NextTenant breaks fair-share ties randomly and advances a hidden
// round-robin cursor.
func NextTenant(n int) int { // want `NextTenant reaches .*math/rand`
	tenantRR++
	return (impure.Spin(n) + tenantRR) % n
}
