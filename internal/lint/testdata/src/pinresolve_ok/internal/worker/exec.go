// Package worker is a clean fixture for the §10 layering: cached
// objects are reached through the plane's Pin/Resolve API, and
// constructing a cache (the control layer's job) stays legal.
package worker

import (
	"repro/internal/content"
	"repro/internal/dataplane"
)

func Resolve(p *dataplane.Plane, id string) (*content.Object, error) {
	return p.PinResolve(id)
}

func Release(p *dataplane.Plane, id string) error {
	return p.Unpin(id)
}

func Build(capacity int64) *content.Cache {
	return content.NewCache(capacity)
}
