// Package worker is a clean fixture for the §10/§15 layering: cached
// objects are reached through the plane's Pin/Resolve API, the shared
// tier through the plane's SharedRead and Spill, and constructing a
// cache or store (the control layer's job) stays legal — including
// handing the store to the plane's config as its shared tier.
package worker

import (
	"repro/internal/content"
	"repro/internal/dataplane"
	"repro/internal/sharedfs"
)

func Resolve(p *dataplane.Plane, id string) (*content.Object, error) {
	return p.PinResolve(id)
}

func Release(p *dataplane.Plane, id string) error {
	return p.Unpin(id)
}

func Build(capacity int64) *content.Cache {
	return content.NewCache(capacity)
}

func ReadShared(p *dataplane.Plane, id string) (*content.Object, error) {
	return p.SharedRead(id)
}

func Demote(p *dataplane.Plane, id string) error {
	return p.Spill(id)
}

func Wire(capacity int64) dataplane.Config {
	return dataplane.Config{
		Cache:  content.NewCache(capacity),
		Shared: sharedfs.NewStore(),
	}
}
