// Package sim is the simulator side of the violating mirrorparity
// fixture: it calls PlanGhost, which the manager never does.
package sim

import policy "repro/internal/lint/testdata/src/mirrorparity_bad/internal/policy"

// Replay executes one ghost decision.
func Replay(v *policy.View, key string) string {
	return v.PlanGhost(key).Worker
}
