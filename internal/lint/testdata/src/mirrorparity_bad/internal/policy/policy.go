// Package policy is a fixture breaking mirrorparity: entry points
// wired into one engine only, or into neither.
package policy

// View is the decision substrate.
type View struct{ Workers []string }

// Decision is one placement.
type Decision struct{ Worker string }

// PlanOrphan is wired into the manager only.
func (v *View) PlanOrphan(key string) Decision { // want `PlanOrphan is not referenced by internal/sim`
	return Decision{}
}

// PlanGhost is wired into the simulator only.
func (v *View) PlanGhost(key string) Decision { // want `PlanGhost is not referenced by internal/manager`
	return Decision{}
}

// PlanNowhere compiles clean and runs nowhere.
func (v *View) PlanNowhere(key string) Decision { // want `PlanNowhere is not referenced by internal/manager` `PlanNowhere is not referenced by internal/sim`
	return Decision{}
}
