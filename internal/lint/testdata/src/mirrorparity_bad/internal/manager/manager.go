// Package manager is the real-engine side of the violating
// mirrorparity fixture: it calls PlanOrphan, which the sim never does.
package manager

import policy "repro/internal/lint/testdata/src/mirrorparity_bad/internal/policy"

// Drive executes one orphaned decision.
func Drive(v *policy.View, key string) string {
	return v.PlanOrphan(key).Worker
}
