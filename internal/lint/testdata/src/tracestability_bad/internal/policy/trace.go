// Package policy is a fixture breaking tracestability: unregistered
// formats, nondeterministic verbs, non-constant formats, and ad-hoc
// Record arguments.
package policy

import "fmt"

// Recorder mirrors the real policy Recorder shape.
type Recorder struct{ Decisions []string }

func (r *Recorder) Record(line string) { r.Decisions = append(r.Decisions, line) }

// TraceBogus formats a line nobody pinned.
func TraceBogus(key string) string {
	return fmt.Sprintf("bogus key=%s", key) // want `trace format "bogus key=%s" is not in the pinned vocabulary`
}

// TraceLiteral returns a constant line nobody pinned.
func TraceLiteral() string {
	return "quiesce reached" // want `trace line "quiesce reached" is not in the pinned vocabulary`
}

// TracePointer leaks an address into the trace.
func TracePointer(v *int) string {
	return fmt.Sprintf("ptr at=%p", v) // want `not in the pinned vocabulary` `uses %p`
}

// TraceMap renders a map through %v.
func TraceMap(m map[string]int) string {
	return fmt.Sprintf("state=%v", m) // want `not in the pinned vocabulary` `%v to a map-typed argument`
}

// TraceFloat renders a float through %v.
func TraceFloat(f float64) string {
	return fmt.Sprintf("load=%v", f) // want `not in the pinned vocabulary` `%v to a float-typed argument`
}

// TraceDynamic cannot be pinned at all.
func TraceDynamic(format, key string) string {
	return fmt.Sprintf(format, key) // want `trace format must be a constant string literal`
}

// Decide records lines the vocabulary cannot vouch for.
func Decide(rec *Recorder, key string) {
	rec.Record("ad-hoc literal line")    // want `trace line "ad-hoc literal line" is not in the pinned vocabulary`
	rec.Record(key + " done")            // want `decision trace recorded from an ad-hoc expression`
	rec.Record(fmt.Sprintf("x=%s", key)) // want `trace format "x=%s" is not in the pinned vocabulary`
}
