// Package manager is a fixture: an engine-side recorder call that
// builds its own trace line instead of going through a Trace* helper.
package manager

import (
	"fmt"

	policy "repro/internal/lint/testdata/src/tracestability_bad/internal/policy"
)

// Run smuggles an engine-local format into the decision trace.
func Run(rec *policy.Recorder, n int) {
	rec.Record(fmt.Sprintf("mgr pass=%d", n)) // want `trace format "mgr pass=%d" is not in the pinned vocabulary`
}
