// Package shardplane is a fixture: shard routing and trace merging
// must stay deterministic, so raw map iteration is flagged here like
// in the other decision-bearing packages.
package shardplane

func Drain(parked map[string][]int) []int {
	var out []int
	for _, q := range parked { // want `map iteration order is nondeterministic`
		out = append(out, q...)
	}
	return out
}
