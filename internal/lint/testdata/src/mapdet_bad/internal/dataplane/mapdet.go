// Package dataplane is a fixture proving mapdeterminism now covers
// the data plane: raw iteration over the object table is flagged.
package dataplane

func Evictable(objs map[string]int64) []string {
	var out []string
	for k := range objs { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}
