// Package manager is a fixture with raw map iteration in an
// order-sensitive package: both loop shapes must be flagged, and
// pointer-to-map indirection must not hide the map.
package manager

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

func Pairs(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order is nondeterministic`
		out = append(out, v)
	}
	return out
}

func Deref(m *map[string]int) []string {
	var out []string
	for k := range *m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}
