// Tenant-plane fixture: draining tenant-keyed maps by raw iteration —
// the drain order (and thus the decision trace) would differ run to
// run.
package manager

type tenantQueue struct {
	specs []int64
}

func DrainTenants(queues map[string]*tenantQueue) []int64 {
	var out []int64
	for _, q := range queues { // want `map iteration order is nondeterministic`
		out = append(out, q.specs...)
	}
	return out
}

func QuotaReport(inflight map[string]int) []string {
	var over []string
	for tenant, n := range inflight { // want `map iteration order is nondeterministic`
		if n > 0 {
			over = append(over, tenant)
		}
	}
	return over
}
