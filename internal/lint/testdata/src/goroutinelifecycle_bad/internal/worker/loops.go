// Package worker is a fixture violating goroutinelifecycle: orphan
// goroutines with no WaitGroup, no done-channel, and no pragma.
package worker

import "sync"

// Server leaks its background loops.
type Server struct {
	wg   sync.WaitGroup
	jobs chan int
}

// Start spawns orphans.
func (s *Server) Start() {
	// Bare literal with no linkage at all.
	go func() { // want `goroutine has no shutdown linkage`
		work()
	}()

	// Named function whose body has no linkage either.
	go busy() // want `goroutine has no shutdown linkage`

	// A channel send is not shutdown linkage: nothing stops this loop.
	go func() { // want `goroutine has no shutdown linkage`
		for {
			s.jobs <- 1
		}
	}()

	// The Add comes after the spawn, so it does not dominate it.
	go func() { // want `goroutine has no shutdown linkage`
		work()
	}()
	s.wg.Add(1)
}

func work() {}

func busy() {
	n := 0
	for {
		n++
	}
}
