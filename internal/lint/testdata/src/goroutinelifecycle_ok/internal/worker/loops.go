// Package worker is a clean fixture for goroutinelifecycle: every
// goroutine is owned — by a dominating WaitGroup.Add, by a
// done-channel in its body, or by an explicit justified pragma.
package worker

import "sync"

// Server owns its background loops.
type Server struct {
	wg   sync.WaitGroup
	done chan struct{}
	jobs chan int
}

// Start spawns the owned loops.
func (s *Server) Start() {
	// Add-then-spawn: the Add(2) lexically dominates both spawns.
	s.wg.Add(2)
	go s.drain()
	go func() {
		defer s.wg.Done()
		for range s.jobs {
		}
	}()

	// No Add, but the body selects on the done channel.
	go func() {
		for {
			select {
			case <-s.done:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()

	// A bare receive in the body is linkage too.
	go func() {
		<-s.done
	}()

	// Ranging a channel drains until close — owned by the closer.
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()

	// Named function: linkage is found in the resolved declaration.
	go s.pump()
}

// FlushAsync fires a fire-and-forget goroutine: no WaitGroup in this
// frame, no linkage in the body, so only the pragma vouches for it.
func (s *Server) FlushAsync() {
	//vinelint:ignore goroutinelifecycle best-effort telemetry flush; process exit reaps it and nothing joins on its result
	go flushTelemetry()
}

func (s *Server) drain() {
	for range s.jobs {
	}
}

func (s *Server) pump() {
	for {
		select {
		case <-s.done:
			return
		default:
			return
		}
	}
}

func flushTelemetry() {}
