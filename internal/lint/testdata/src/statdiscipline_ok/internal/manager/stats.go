// Package manager is a clean fixture for statdiscipline: the counter
// touched by sync/atomic is only ever read atomically when shared, and
// the two legal non-atomic shapes — address handoff and value-copy
// snapshots — stay quiet.
package manager

import "sync/atomic"

type stats struct {
	Done    int64
	Dropped int64
}

// Manager owns shared stats.
type Manager struct{ stats stats }

// Bump increments atomically.
func (m *Manager) Bump() {
	atomic.AddInt64(&m.stats.Done, 1)
}

// Snapshot reads atomically and returns a private copy.
func (m *Manager) Snapshot() stats {
	return stats{
		Done:    atomic.LoadInt64(&m.stats.Done),
		Dropped: atomic.LoadInt64(&m.stats.Dropped),
	}
}

// Report reads fields of a value copy: the copy is private, so plain
// access is fine even though the same field identity is atomic on the
// shared struct.
func (m *Manager) Report() int64 {
	st := m.Snapshot()
	return st.Done + st.Dropped
}

// Handoff passes the field's address to a collaborator, which is how
// the counter gets shared in the first place; taking the address is
// not a racy read.
func (m *Manager) Handoff() *int64 {
	return &m.stats.Dropped
}
