package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one vinelint check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers port mechanically if
// the dependency ever becomes available.
type Analyzer struct {
	Name string
	Doc  string
	// Suffixes restricts the analyzer to packages whose import path
	// ends in one of these (path-segment aligned). Empty means every
	// target package.
	Suffixes []string
	Run      func(*Pass)
}

// Applies reports whether the analyzer covers the package path.
func (a *Analyzer) Applies(pkgPath string) bool {
	if len(a.Suffixes) == 0 {
		return true
	}
	for _, s := range a.Suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Severity: SeverityError,
	})
}

// Severity levels for diagnostics. Every analyzer finding gates the
// build (error); pragma misuse does too — a suppression that cannot
// explain itself is worse than the finding.
const (
	SeverityError = "error"
)

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Severity string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Result is the outcome of running a suite over a program: the
// findings that survived pragma suppression, the count of findings an
// explicit pragma absorbed, and pragma misuse (malformed, unknown
// name, missing justification, or stale — suppressing nothing).
type Result struct {
	Diagnostics  []Diagnostic
	Suppressed   int
	PragmaErrors []Diagnostic
}

// Clean reports whether the run produced nothing actionable.
func (r *Result) Clean() bool {
	return len(r.Diagnostics) == 0 && len(r.PragmaErrors) == 0
}

// RunAnalyzers applies every analyzer to the program's target packages
// and resolves pragma suppressions across the whole run.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) *Result {
	var diags []Diagnostic
	for _, pkg := range prog.Target {
		for _, a := range analyzers {
			if !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}

	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var pragmas []*pragma
	var pragmaErrs []Diagnostic
	for _, pkg := range prog.Target {
		ps, errs := collectPragmas(prog.Fset, pkg, known)
		pragmas = append(pragmas, ps...)
		pragmaErrs = append(pragmaErrs, errs...)
	}

	res := &Result{PragmaErrors: pragmaErrs}
	for _, d := range diags {
		if pr := matchPragma(pragmas, d); pr != nil {
			pr.used++
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	for _, pr := range pragmas {
		if pr.used == 0 {
			res.PragmaErrors = append(res.PragmaErrors, Diagnostic{
				Analyzer: "pragma",
				Pos:      pr.pos,
				Message:  fmt.Sprintf("stale //vinelint:%s pragma: it suppresses no finding", pr.name),
				Severity: SeverityError,
			})
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.PragmaErrors)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return ds[i].Message < ds[j].Message
	})
}

// InspectPkg walks every file of the pass's package.
func (p *Pass) InspectPkg(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
