package manager

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/modlib"
	"repro/internal/pickle"
	"repro/internal/worker"

	"repro/internal/minipy"
)

// harness wires a manager with n real workers over TCP.
type harness struct {
	m       *Manager
	addr    string
	workers []*worker.Worker
}

func newHarness(t *testing.T, n int, opts Options) *harness {
	t.Helper()
	m := New(opts)
	addr, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{m: m, addr: addr}
	t.Cleanup(func() {
		m.Shutdown()
		for _, w := range h.workers {
			w.Shutdown()
		}
	})
	for i := 0; i < n; i++ {
		h.addWorker(t, fmt.Sprintf("w%02d", i))
	}
	if err := m.WaitForWorkers(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) addWorker(t *testing.T, id string) *worker.Worker {
	t.Helper()
	w := worker.New(worker.Config{ID: id, Registry: modlib.Standard()})
	if err := w.Connect(h.addr); err != nil {
		t.Fatal(err)
	}
	h.workers = append(h.workers, w)
	return w
}

// simpleTask builds a task whose script stores a constant result.
func simpleTask(tag string) *core.TaskSpec {
	script := fmt.Sprintf(`
import vine_runtime
vine_runtime.store_result(%q)
`, tag)
	return &core.TaskSpec{Script: script, Resources: core.Resources{Cores: 1}}
}

func decodeStr(t *testing.T, res core.Result) string {
	t.Helper()
	if !res.Ok {
		t.Fatalf("result failed: %s", res.Err)
	}
	v, err := pickle.Unmarshal(res.Value, minipy.NewInterp(nil))
	if err != nil {
		t.Fatal(err)
	}
	return minipy.ToStr(v)
}

func TestTaskRoundTrip(t *testing.T) {
	h := newHarness(t, 1, Options{PeerTransfers: true})
	id := h.m.Submit(simpleTask("hello"))
	results, err := h.m.Collect(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID != id || decodeStr(t, results[0]) != "hello" {
		t.Errorf("result = %+v", results[0])
	}
	if st := h.m.Stats(); st.TasksDone != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestManyTasksAcrossWorkers(t *testing.T) {
	h := newHarness(t, 3, Options{PeerTransfers: true})
	const n = 30
	for i := 0; i < n; i++ {
		h.m.Submit(simpleTask(fmt.Sprintf("t%d", i)))
	}
	results, err := h.m.Collect(n, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	byWorker := map[string]int{}
	for _, r := range results {
		seen[decodeStr(t, r)] = true
		byWorker[r.Metrics.WorkerID]++
	}
	if len(seen) != n {
		t.Errorf("got %d distinct results", len(seen))
	}
	if len(byWorker) < 2 {
		t.Errorf("all tasks ran on one worker: %v", byWorker)
	}
}

func TestWorkerCrashRequeuesWork(t *testing.T) {
	h := newHarness(t, 2, Options{PeerTransfers: true})
	// A slow task: loops enough to still be running when we kill its
	// worker.
	slow := &core.TaskSpec{
		Script: `
import vine_runtime
total = 0
for i in range(300000):
    total += i
vine_runtime.store_result(total)
`,
		Resources: core.Resources{Cores: 1},
	}
	for i := 0; i < 6; i++ {
		h.m.Submit(slow)
		slow = &core.TaskSpec{Script: slow.Script, Resources: slow.Resources}
	}
	// Kill one worker quickly; its in-flight tasks must requeue and
	// finish on the survivor.
	time.Sleep(20 * time.Millisecond)
	h.workers[0].Shutdown()
	results, err := h.m.Collect(6, 30*time.Second)
	if err != nil {
		t.Fatalf("collect after crash: %v (stats %+v)", err, h.m.Stats())
	}
	for _, r := range results {
		if !r.Ok {
			t.Errorf("post-crash result failed: %s", r.Err)
		}
	}
}

func TestLibraryLifecycleAndEviction(t *testing.T) {
	h := newHarness(t, 1, Options{PeerTransfers: true, EvictEmptyLibraries: true})
	mkLib := func(name, tag string) *core.LibrarySpec {
		return &core.LibrarySpec{
			Name: name,
			Functions: []core.FunctionSpec{{
				Name:   "f",
				Source: fmt.Sprintf("def f(x):\n    return %q + str(x)\n", tag),
			}},
			Slots: 1,
		}
	}
	if err := h.m.RegisterLibrary(mkLib("liba", "a")); err != nil {
		t.Fatal(err)
	}
	if err := h.m.RegisterLibrary(mkLib("libb", "b")); err != nil {
		t.Fatal(err)
	}
	if err := h.m.RegisterLibrary(mkLib("liba", "a")); err == nil {
		t.Errorf("duplicate registration should fail")
	}

	call := func(lib string, arg int64) string {
		args, _ := pickle.Marshal(minipy.NewTuple(minipy.Int(arg)))
		h.m.SubmitInvocation(&core.InvocationSpec{Library: lib, Function: "f", Args: args})
		results, err := h.m.Collect(1, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return decodeStr(t, results[0])
	}
	if got := call("liba", 1); got != "a1" {
		t.Errorf("liba f(1) = %q", got)
	}
	// libb needs the whole worker: liba's idle instance must be evicted.
	if got := call("libb", 2); got != "b2" {
		t.Errorf("libb f(2) = %q", got)
	}
	st := h.m.Stats()
	if st.LibrariesEvicted != 1 || st.LibrariesDeployed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInvocationValidation(t *testing.T) {
	h := newHarness(t, 1, Options{PeerTransfers: true})
	if err := h.m.RegisterLibrary(&core.LibrarySpec{Name: "lib"}); err == nil {
		t.Errorf("empty library should be rejected")
	}
	if err := h.m.RegisterLibrary(&core.LibrarySpec{
		Functions: []core.FunctionSpec{{Name: "f", Source: "def f():\n    pass\n"}},
	}); err == nil {
		t.Errorf("nameless library should be rejected")
	}
	lib := &core.LibrarySpec{
		Name:      "lib",
		Functions: []core.FunctionSpec{{Name: "f", Source: "def f(x):\n    return x\n"}},
	}
	if err := h.m.RegisterLibrary(lib); err != nil {
		t.Fatal(err)
	}
	h.m.SubmitInvocation(&core.InvocationSpec{Library: "lib", Function: "nope"})
	results, err := h.m.Collect(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Ok || !strings.Contains(results[0].Err, "no function") {
		t.Errorf("expected unknown-function failure: %+v", results[0])
	}
}

func TestFileDistributionDedup(t *testing.T) {
	h := newHarness(t, 1, Options{PeerTransfers: true})
	// Two tasks share a cacheable input: the manager must send it once.
	shared := content.NewDataset("big.bin", []byte("shared dataset"), 1<<20)
	mk := func() *core.TaskSpec {
		return &core.TaskSpec{
			Script: `
import vine_runtime
vine_runtime.store_result(vine_runtime.load_text("big.bin"))
`,
			Inputs:    []core.FileSpec{{Object: shared, Cache: true, PeerTransfer: true}},
			Resources: core.Resources{Cores: 1},
		}
	}
	h.m.Submit(mk())
	if _, err := h.m.Collect(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	before := h.m.Stats().DirectTransfers
	h.m.Submit(mk())
	if _, err := h.m.Collect(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	after := h.m.Stats().DirectTransfers
	if after != before {
		t.Errorf("shared cached input re-sent: %d -> %d transfers", before, after)
	}
	if h.m.ObjectHolders(shared) != 1 {
		t.Errorf("holders = %d", h.m.ObjectHolders(shared))
	}
}

func TestLateWorkerPicksUpPendingWork(t *testing.T) {
	m := New(Options{PeerTransfers: true})
	addr, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	// Submit before any worker exists.
	m.Submit(simpleTask("late"))
	time.Sleep(20 * time.Millisecond)
	w := worker.New(worker.Config{ID: "late-worker", Registry: modlib.Standard()})
	if err := w.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer w.Shutdown()
	results, err := m.Collect(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if decodeStr(t, results[0]) != "late" {
		t.Errorf("late result wrong")
	}
}
