package manager

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// TestFairShareNoStarvation is the bounded-wait guarantee behind the
// submission plane: a tenant saturating the cluster cannot starve a
// light one. A heavy tenant floods 200 tasks through a single-slot
// worker, a light equal-weight tenant then submits 20; the virtual-time
// fair share must interleave the light tenant's specs from its first
// eligible drain — never banking the heavy tenant's head start as
// credit (CatchUpVTime) — so the light tenant drains in a window
// proportional to its share, not after the flood.
func TestFairShareNoStarvation(t *testing.T) {
	m := New(Options{
		DecisionTrace: &policy.Recorder{},
		Shards:        1,
		Tenants: []core.TenantSpec{
			{Name: "heavy", Weight: 1, Quota: 2},
			{Name: "light", Weight: 1, Quota: 2},
		},
	})
	w := &workerState{
		id:           "w0",
		hello:        proto.Hello{WorkerID: "w0", Resources: core.Resources{Cores: 1}},
		sendq:        make(chan outMsg, 256),
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}
	if !m.adoptWorker(w) {
		t.Fatal("adoptWorker failed")
	}
	const heavyN, lightN = 200, 20
	for i := 0; i < heavyN; i++ {
		m.Submit(&core.TaskSpec{Script: "1", Resources: core.Resources{Cores: 1}, TenantID: "heavy"})
	}
	for i := 0; i < lightN; i++ {
		m.Submit(&core.TaskSpec{Script: "1", Resources: core.Resources{Cores: 1}, TenantID: "light"})
	}

	// Serial completions: wait for the single slot's dispatch, complete
	// it, repeat. Every completion returns a quota unit, and the drain
	// it triggers is the fair-share decision under test.
	s := m.shardFor(w.id)
	next := func() (int64, bool) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			drainMsgs(w)
			s.mu.Lock()
			best := int64(-1)
			for id, e := range s.inflight {
				if e.worker == w.id && len(e.waiting) == 0 && (best < 0 || id < best) {
					best = id
				}
			}
			s.mu.Unlock()
			if best >= 0 {
				return best, true
			}
			time.Sleep(20 * time.Microsecond)
		}
		return 0, false
	}
	for done := 0; done < heavyN+lightN; done++ {
		id, ok := next()
		if !ok {
			t.Fatalf("dispatch stalled after %d completions", done)
		}
		s.onResult(w, core.Result{ID: id, Ok: true, Value: []byte("x")})
	}
	if err := m.CheckQuiescence(); err != nil {
		t.Fatalf("not quiescent after drain: %v", err)
	}

	// Parse the plane trace's fair-share picks and bound the light
	// tenant's wait: once light is eligible, no more than a few heavy
	// picks may separate consecutive light picks (equal weights should
	// alternate; 3 leaves slack for quota-release batching), and the
	// whole light queue must drain in a window proportional to its
	// share — not trail the flood.
	var picks []string
	for _, line := range m.PlaneDecisions() {
		if rest, ok := strings.CutPrefix(line, "tenant pick="); ok {
			picks = append(picks, rest[:strings.IndexByte(rest, ' ')])
		}
	}
	if len(picks) != heavyN+lightN {
		t.Fatalf("plane released %d specs, want %d", len(picks), heavyN+lightN)
	}
	firstLight, lastLight, lightSeen, run, maxRun := -1, -1, 0, 0, 0
	for i, p := range picks {
		if p == "light" {
			if firstLight < 0 {
				firstLight = i
			}
			lastLight = i
			lightSeen++
			run = 0
			continue
		}
		if firstLight >= 0 && lightSeen < lightN {
			run++
			if run > maxRun {
				maxRun = run
			}
		}
	}
	if firstLight < 0 {
		t.Fatal("light tenant never picked")
	}
	if maxRun > 3 {
		t.Errorf("light tenant starved: %d consecutive heavy picks between light picks (want <= 3)", maxRun)
	}
	if window := lastLight - firstLight; window > 3*lightN {
		t.Errorf("light tenant's %d specs took a %d-pick window to drain (want <= %d)", lightN, window, 3*lightN)
	}
}
