package manager

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// These tests drive the manager's failure-path bookkeeping directly,
// with synthetic worker states instead of live connections: released
// transfer slots, re-staged peer fetches, retry budgets, library
// deployment accounting, and the never-block result delivery.

// fakeWorker registers a synthetic worker state. The send queue is
// buffered and never drained; tests only inspect what was enqueued.
func fakeWorker(m *Manager, id string) *workerState {
	w := &workerState{
		id:           id,
		hello:        proto.Hello{WorkerID: id, Resources: core.Resources{Cores: 32, MemoryMB: 64 << 10, DiskMB: 64 << 10}},
		sendq:        make(chan outMsg, 256),
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}
	m.mu.Lock()
	m.registerWorkerLocked(w)
	m.mu.Unlock()
	return w
}

func drainMsgs(w *workerState) []outMsg {
	var out []outMsg
	for {
		select {
		case msg := <-w.sendq:
			out = append(out, msg)
		default:
			return out
		}
	}
}

func TestWorkerGoneReleasesPeerTransferSlots(t *testing.T) {
	// A destination dying mid-peer-fetch must hand the source's
	// transfer slot back; otherwise each crash permanently leaks one
	// slot until pickSourceLocked excludes the source forever.
	m := New(Options{PeerTransfers: true})
	src := fakeWorker(m, "src")
	dst := fakeWorker(m, "dst")
	src.v.TransfersOut = 2
	dst.fetchSources["obj-a"] = "src"
	dst.fetchSources["obj-b"] = "src"

	m.onWorkerGone(dst)

	if src.v.TransfersOut != 0 {
		t.Errorf("source still holds %d transfer slots", src.v.TransfersOut)
	}
	if _, there := m.workers["dst"]; there {
		t.Errorf("dead worker still registered")
	}
	if err := m.CheckQuiescence(); err != nil {
		t.Errorf("quiescence after crash: %v", err)
	}
}

func TestWorkerGoneToleratesDeadSource(t *testing.T) {
	// Both ends of a peer fetch dying must not panic or underflow.
	m := New(Options{PeerTransfers: true})
	dst := fakeWorker(m, "dst")
	dst.fetchSources["obj"] = "already-gone"
	m.onWorkerGone(dst)
	if err := m.CheckQuiescence(); err != nil {
		t.Errorf("quiescence: %v", err)
	}
}

func TestWorkerGoneRequeuesWithinBudget(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: 2})
	lost := fakeWorker(m, "lost")
	survivor := fakeWorker(m, "survivor")
	task := simpleTask("requeue-me")
	task.ID = 7
	m.inflight[7] = &inflightEntry{worker: "lost", task: task, sentAt: time.Now()}

	m.onWorkerGone(lost)

	requeued := m.Stats().Requeued
	m.mu.Lock()
	defer m.mu.Unlock()
	if requeued != 1 || m.retries[7] != 1 {
		t.Errorf("requeued=%d retries=%d", requeued, m.retries[7])
	}
	// The schedule pass after requeue must have placed it on the
	// survivor, not the dead worker.
	e := m.inflight[7]
	if e == nil || e.worker != "survivor" {
		t.Fatalf("inflight after requeue: %+v", e)
	}
	if len(drainMsgs(survivor)) == 0 {
		t.Errorf("nothing dispatched to the survivor")
	}
}

func TestWorkerGoneFailsWhenBudgetExhausted(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: 1})
	lost := fakeWorker(m, "lost")
	task := simpleTask("doomed")
	task.ID = 9
	m.inflight[9] = &inflightEntry{worker: "lost", task: task, sentAt: time.Now()}
	m.mu.Lock()
	m.retries[9] = 1 // budget already spent
	m.mu.Unlock()

	m.onWorkerGone(lost)

	select {
	case res := <-m.Results():
		if res.Ok || res.ID != 9 || !strings.Contains(res.Err, "retry budget exhausted") {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no failure delivered")
	}
	failures := m.Stats().Failures
	m.mu.Lock()
	defer m.mu.Unlock()
	if failures != 1 || len(m.retries) != 0 || len(m.avoid) != 0 {
		t.Errorf("failures=%d retries=%v avoid=%v", failures, m.retries, m.avoid)
	}
}

func TestFailedPeerFetchRestagesFromManager(t *testing.T) {
	// A peer fetch that times out must be recovered over the manager's
	// own link, so dispatches queued behind the copy do not all die on
	// "input not staged".
	m := New(Options{PeerTransfers: true})
	src := fakeWorker(m, "src")
	dst := fakeWorker(m, "dst")
	obj := content.NewBlob("shared", []byte("payload"))
	fs := core.FileSpec{Object: obj, Cache: true, PeerTransfer: true}
	m.mu.Lock()
	m.catalog[obj.ID] = fs
	src.v.TransfersOut = 1
	m.notePendingLocked(dst, obj.ID)
	dst.fetchSources[obj.ID] = "src"
	m.mu.Unlock()

	m.onFileAck(dst, proto.FileAck{ID: obj.ID, Ok: false, Err: "peer stalled"})

	if src.v.TransfersOut != 0 {
		t.Errorf("source slot not released: %d", src.v.TransfersOut)
	}
	if m.Stats().Restaged != 1 {
		t.Errorf("restaged = %d", m.Stats().Restaged)
	}
	msgs := drainMsgs(dst)
	if len(msgs) != 1 || msgs[0].t != proto.MsgPutFileBulk {
		t.Fatalf("expected one bulk PutFile re-stage, got %v", msgs)
	}
	if !dst.v.Pending[obj.ID] {
		t.Errorf("re-staged object not marked pending")
	}
}

func TestFailedDirectSendDoesNotRestage(t *testing.T) {
	// A failed direct send (cache too small) must NOT re-stage: the
	// manager's link already failed, so resending would loop forever.
	m := New(Options{PeerTransfers: true})
	dst := fakeWorker(m, "dst")
	obj := content.NewBlob("big", []byte("payload"))
	m.mu.Lock()
	m.catalog[obj.ID] = core.FileSpec{Object: obj, Cache: true}
	m.notePendingLocked(dst, obj.ID)
	m.mu.Unlock()

	m.onFileAck(dst, proto.FileAck{ID: obj.ID, Ok: false, Err: "cache full"})

	if m.Stats().Restaged != 0 {
		t.Errorf("direct-send failure was re-staged")
	}
	if msgs := drainMsgs(dst); len(msgs) != 0 {
		t.Errorf("unexpected messages: %v", msgs)
	}
}

func TestTransferTimeMeasuresDispatchToAck(t *testing.T) {
	// TransferTime must cover dispatch→last FileAck — the wire time —
	// not the microseconds spent enqueueing into in-memory channels.
	m := New(Options{PeerTransfers: true})
	w := fakeWorker(m, "w")
	obj := content.NewBlob("input", []byte("x"))
	task := simpleTask("timed")
	task.ID = 3
	task.Inputs = []core.FileSpec{{Object: obj, Cache: true}}
	m.mu.Lock()
	m.notePendingLocked(w, obj.ID)
	w.v.Commit = w.v.Commit.Add(task.Resources)
	e := &inflightEntry{
		worker:  "w",
		task:    task,
		sentAt:  time.Now(),
		waiting: map[string]bool{obj.ID: true},
	}
	m.inflight[3] = e
	w.ackWaiters[obj.ID] = append(w.ackWaiters[obj.ID], e)
	m.mu.Unlock()

	const wire = 25 * time.Millisecond
	time.Sleep(wire)
	m.onFileAck(w, proto.FileAck{ID: obj.ID, Ok: true, Cache: true})
	m.onResult(w, core.Result{ID: 3, Ok: true})

	select {
	case res := <-m.Results():
		if got := res.Metrics.TransferTime; got < (wire / 2).Seconds() {
			t.Errorf("TransferTime = %.6fs, want at least ~%.3fs of wire time", got, wire.Seconds())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no result delivered")
	}
}

func TestLibraryAckAccounting(t *testing.T) {
	m := New(Options{PeerTransfers: true})
	w := fakeWorker(m, "w")
	spec := &core.LibrarySpec{Name: "lib", Functions: []core.FunctionSpec{{Name: "f", Source: "def f():\n    return 1\n"}}}
	m.mu.Lock()
	m.libSpecs["lib"] = spec
	m.mu.Unlock()
	res := core.Resources{Cores: 8}
	install := func() {
		m.mu.Lock()
		li := &libInstance{LibraryView: policy.LibraryView{Name: "lib", Slots: 1, MaxInstances: 1, Res: res}}
		w.libs["lib"] = li
		m.view.AddInstance(w.v, &li.LibraryView)
		w.v.Commit = w.v.Commit.Add(res)
		m.mu.Unlock()
	}

	// Failure: the commit must be released, the instance removed, and
	// the failure counted.
	install()
	m.onLibraryAck(w, proto.LibraryAck{Library: "lib", Ok: false, Err: "setup exploded"})
	m.mu.Lock()
	if _, there := w.libs["lib"]; there || w.v.Commit.Cores != 0 || m.libFailures["lib"] != 1 {
		t.Errorf("after failed ack: libs=%v commit=%+v failures=%d", w.libs, w.v.Commit, m.libFailures["lib"])
	}
	m.mu.Unlock()

	// Success resets the failure streak — only consecutive failures
	// quarantine a library.
	install()
	m.onLibraryAck(w, proto.LibraryAck{Library: "lib", Ok: true, Instance: "lib@w#1"})
	m.mu.Lock()
	li := w.libs["lib"]
	if li == nil || !li.Ready || li.instance != "lib@w#1" || m.libFailures["lib"] != 0 {
		t.Errorf("after ok ack: li=%+v failures=%d", li, m.libFailures["lib"])
	}
	m.mu.Unlock()
}

func TestRepeatedLibraryFailureFailsPendingInvocations(t *testing.T) {
	m := New(Options{PeerTransfers: true})
	w := fakeWorker(m, "w")
	spec := &core.LibrarySpec{Name: "bad", Functions: []core.FunctionSpec{{Name: "f", Source: "def f():\n    return 1\n"}}}
	m.mu.Lock()
	m.libSpecs["bad"] = spec
	m.enqueueInvLocked(&core.InvocationSpec{ID: 11, Library: "bad", Function: "f"})
	m.mu.Unlock()

	for i := 0; i < maxLibraryFailures; i++ {
		m.mu.Lock()
		bi := &libInstance{LibraryView: policy.LibraryView{Name: "bad", MaxInstances: 1}}
		w.libs["bad"] = bi
		m.view.AddInstance(w.v, &bi.LibraryView)
		m.mu.Unlock()
		m.onLibraryAck(w, proto.LibraryAck{Library: "bad", Ok: false, Err: "setup exploded"})
	}

	select {
	case res := <-m.Results():
		if res.Ok || res.ID != 11 || !strings.Contains(res.Err, "failed to deploy") {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending invocation never failed after quarantine")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pendingInvCount != 0 {
		t.Errorf("%d invocations still pending for a quarantined library", m.pendingInvCount)
	}
}

func TestEvictEmptyAccounting(t *testing.T) {
	m := New(Options{PeerTransfers: true, EvictEmptyLibraries: true})
	w := fakeWorker(m, "w")
	m.mu.Lock()
	res := core.Resources{Cores: 32, MemoryMB: 64 << 10, DiskMB: 64 << 10}
	idle := &libInstance{LibraryView: policy.LibraryView{Name: "idle", Ready: true, Slots: 1, MaxInstances: 1, Res: res}}
	w.libs["idle"] = idle
	m.view.AddInstance(w.v, &idle.LibraryView)
	w.v.Commit = w.v.Commit.Add(res)

	if !m.evictForLocked(w, "incoming", res) {
		t.Fatalf("eviction should free the idle library")
	}
	if _, there := w.libs["idle"]; there || w.v.Commit.Cores != 0 {
		t.Errorf("after evict: libs=%v commit=%+v", w.libs, w.v.Commit)
	}
	if n := atomic.LoadInt64(&m.stats.LibrariesEvicted); n != 1 {
		t.Errorf("evicted = %d", n)
	}
	m.mu.Unlock()
	msgs := drainMsgs(w)
	if len(msgs) != 1 || msgs[0].t != proto.MsgRemoveLibrary {
		t.Errorf("expected RemoveLibrary, got %v", msgs)
	}

	// A busy instance must never be evicted.
	m.mu.Lock()
	busy := &libInstance{LibraryView: policy.LibraryView{Name: "busy", Ready: true, Slots: 1, SlotsUsed: 1, MaxInstances: 1, Res: res}}
	w.libs["busy"] = busy
	m.view.AddInstance(w.v, &busy.LibraryView)
	w.v.Commit = w.v.Commit.Add(res)
	if m.evictForLocked(w, "incoming", res) {
		t.Errorf("evicted a library with invocations in flight")
	}
	if _, there := w.libs["busy"]; !there {
		t.Errorf("busy library disappeared from the worker")
	}
	m.mu.Unlock()
}

func TestDeliverNeverBlocks(t *testing.T) {
	// With a full results buffer and no reader, deliver must return
	// immediately — blocking here would wedge the worker's reader
	// goroutine and stop FileAcks from draining.
	m := New(Options{ResultBuffer: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= 3; i++ {
			m.deliver(core.Result{ID: i, Ok: true})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("deliver blocked on a full results channel")
	}
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		select {
		case res := <-m.Results():
			seen[res.ID] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of 3 spilled results arrived", len(seen))
		}
	}
	if len(seen) != 3 {
		t.Errorf("results = %v", seen)
	}
}

func TestBackoffDelayProgression(t *testing.T) {
	m := New(Options{RetryBaseDelay: 50 * time.Millisecond, RetryMaxDelay: 400 * time.Millisecond})
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := m.backoffDelayLocked(i + 1); got != w {
			t.Errorf("attempt %d: %v, want %v", i+1, got, w)
		}
	}
}

func TestRetryableResultRetriesWithBackoff(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: 3,
		RetryBaseDelay: 10 * time.Millisecond, RetryMaxDelay: 40 * time.Millisecond})
	w := fakeWorker(m, "w")
	task := simpleTask("flaky")
	task.ID = 5
	m.mu.Lock()
	w.v.Commit = w.v.Commit.Add(task.Resources)
	m.inflight[5] = &inflightEntry{worker: "w", task: task, sentAt: time.Now()}
	m.mu.Unlock()

	m.onResult(w, core.Result{ID: 5, Ok: false, Retryable: true, Err: "input not staged"})

	retries := m.Stats().Retries
	m.mu.Lock()
	if retries != 1 || m.retries[5] != 1 || m.avoid[5] != "w" || m.backoffs != 1 {
		t.Errorf("retries=%d avoid=%v backoffs=%d", retries, m.avoid, m.backoffs)
	}
	m.mu.Unlock()

	// After the backoff, the task must be back in flight (the only
	// worker is the avoided one, so the fallback pass places it there).
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		_, inflight := m.inflight[5]
		m.mu.Unlock()
		if inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retried task never redispatched")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A non-retryable failure on the same path is final.
	m.onResult(w, core.Result{ID: 5, Ok: false, Err: "NameError: boom"})
	select {
	case res := <-m.Results():
		if res.Ok || res.Retryable || !strings.Contains(res.Err, "NameError") {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("final failure not delivered")
	}
	if m.Stats().Failures != 1 {
		t.Errorf("failures = %d", m.Stats().Failures)
	}
}

func TestRetriesDisabledDeliversFirstFailure(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: -1})
	w := fakeWorker(m, "w")
	task := simpleTask("once")
	task.ID = 2
	m.mu.Lock()
	w.v.Commit = w.v.Commit.Add(task.Resources)
	m.inflight[2] = &inflightEntry{worker: "w", task: task, sentAt: time.Now()}
	m.mu.Unlock()

	m.onResult(w, core.Result{ID: 2, Ok: false, Retryable: true, Err: "infra hiccup"})
	select {
	case res := <-m.Results():
		if res.Ok || m.Stats().Retries != 0 {
			t.Errorf("res=%+v retries=%d", res, m.Stats().Retries)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure not delivered with retries disabled")
	}
}
