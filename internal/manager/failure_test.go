package manager

import (
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// These tests drive the manager's failure-path bookkeeping directly,
// with synthetic worker states instead of live connections: released
// transfer slots, re-staged peer fetches, retry budgets, library
// deployment accounting, and the never-block result delivery. They run
// single-shard (Shards: 1) so every worker and spec lands in
// m.shards[0], whose fields they inspect.

// fakeWorker registers a synthetic worker state in its home shard and
// the router. The send queue is buffered and never drained; tests only
// inspect what was enqueued.
func fakeWorker(m *Manager, id string) *workerState {
	w := &workerState{
		id:           id,
		hello:        proto.Hello{WorkerID: id, Resources: core.Resources{Cores: 32, MemoryMB: 64 << 10, DiskMB: 64 << 10}},
		sendq:        make(chan outMsg, 256),
		drops:        &m.stats.SendQueueDrops,
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}
	s := m.shardFor(id)
	s.mu.Lock()
	s.registerWorkerLocked(w)
	s.mu.Unlock()
	m.router.Add(id)
	return w
}

func drainMsgs(w *workerState) []outMsg {
	var out []outMsg
	for {
		select {
		case msg := <-w.sendq:
			out = append(out, msg)
		default:
			return out
		}
	}
}

func TestWorkerGoneReleasesPeerTransferSlots(t *testing.T) {
	// A destination dying mid-peer-fetch must hand the source's
	// transfer slot back; otherwise each crash permanently leaks one
	// slot until PickSource excludes the source forever.
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	src := fakeWorker(m, "src")
	dst := fakeWorker(m, "dst")
	src.v.TransfersOut = 2
	dst.fetchSources["obj-a"] = "src"
	dst.fetchSources["obj-b"] = "src"

	m.onWorkerGone(dst)

	if src.v.TransfersOut != 0 {
		t.Errorf("source still holds %d transfer slots", src.v.TransfersOut)
	}
	if _, there := s.workers["dst"]; there {
		t.Errorf("dead worker still registered")
	}
	if err := m.CheckQuiescence(); err != nil {
		t.Errorf("quiescence after crash: %v", err)
	}
}

func TestWorkerGoneToleratesDeadSource(t *testing.T) {
	// Both ends of a peer fetch dying must not panic or underflow.
	m := New(Options{PeerTransfers: true, Shards: 1})
	dst := fakeWorker(m, "dst")
	dst.fetchSources["obj"] = "already-gone"
	m.onWorkerGone(dst)
	if err := m.CheckQuiescence(); err != nil {
		t.Errorf("quiescence: %v", err)
	}
}

func TestWorkerGoneRequeuesWithinBudget(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: 2, Shards: 1})
	s := m.shards[0]
	lost := fakeWorker(m, "lost")
	survivor := fakeWorker(m, "survivor")
	task := simpleTask("requeue-me")
	task.ID = 7
	s.inflight[7] = &inflightEntry{worker: "lost", task: task, sentAt: time.Now()}

	m.onWorkerGone(lost)

	requeued := m.Stats().Requeued
	s.mu.Lock()
	defer s.mu.Unlock()
	if requeued != 1 {
		t.Errorf("requeued=%d", requeued)
	}
	// The schedule pass after requeue must have placed it on the
	// survivor, not the dead worker — carrying its spent retry budget.
	e := s.inflight[7]
	if e == nil || e.worker != "survivor" || e.retries != 1 {
		t.Fatalf("inflight after requeue: %+v", e)
	}
	if len(drainMsgs(survivor)) == 0 {
		t.Errorf("nothing dispatched to the survivor")
	}
}

func TestWorkerGoneFailsWhenBudgetExhausted(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: 1, Shards: 1})
	s := m.shards[0]
	lost := fakeWorker(m, "lost")
	task := simpleTask("doomed")
	task.ID = 9
	// Budget already spent: the entry carries its retry count.
	s.inflight[9] = &inflightEntry{worker: "lost", task: task, retries: 1, sentAt: time.Now()}

	m.onWorkerGone(lost)

	select {
	case res := <-m.Results():
		if res.Ok || res.ID != 9 || !strings.Contains(res.Err, "retry budget exhausted") {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no failure delivered")
	}
	failures := m.Stats().Failures
	s.mu.Lock()
	defer s.mu.Unlock()
	if failures != 1 || len(s.inflight) != 0 || len(s.pendingTasks) != 0 {
		t.Errorf("failures=%d inflight=%v pending=%v", failures, s.inflight, s.pendingTasks)
	}
}

func TestFailedPeerFetchRestagesFromManager(t *testing.T) {
	// A peer fetch that fails on the assigned source and every
	// alternate must be recovered over the manager's own link, so
	// dispatches queued behind the copy do not all die on "input not
	// staged".
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	src := fakeWorker(m, "src")
	dst := fakeWorker(m, "dst")
	obj := content.NewBlob("shared", []byte("payload"))
	fs := core.FileSpec{Object: obj, Cache: true, PeerTransfer: true}
	s.mu.Lock()
	s.m.catalogAdd(fs)
	src.v.TransfersOut = 1
	s.notePendingLocked(dst, obj.ID)
	dst.fetchSources[obj.ID] = "src"
	s.mu.Unlock()

	s.onFileAck(dst, proto.FileAck{ID: obj.ID, Ok: false, Err: "peer stalled"})

	if src.v.TransfersOut != 0 {
		t.Errorf("source slot not released: %d", src.v.TransfersOut)
	}
	if m.Stats().Restaged != 1 {
		t.Errorf("restaged = %d", m.Stats().Restaged)
	}
	msgs := drainMsgs(dst)
	if len(msgs) != 1 || msgs[0].t != proto.MsgPutFileBulk {
		t.Fatalf("expected one bulk PutFile re-stage, got %v", msgs)
	}
	if !dst.v.Pending[obj.ID] {
		t.Errorf("re-staged object not marked pending")
	}
}

func TestFailedDirectSendDoesNotRestage(t *testing.T) {
	// A failed direct send (cache too small) must NOT re-stage: the
	// manager's link already failed, so resending would loop forever.
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	dst := fakeWorker(m, "dst")
	obj := content.NewBlob("big", []byte("payload"))
	s.mu.Lock()
	s.m.catalogAdd(core.FileSpec{Object: obj, Cache: true})
	s.notePendingLocked(dst, obj.ID)
	s.mu.Unlock()

	s.onFileAck(dst, proto.FileAck{ID: obj.ID, Ok: false, Err: "cache full"})

	if m.Stats().Restaged != 0 {
		t.Errorf("direct-send failure was re-staged")
	}
	if msgs := drainMsgs(dst); len(msgs) != 0 {
		t.Errorf("unexpected messages: %v", msgs)
	}
}

func TestTransferTimeMeasuresDispatchToAck(t *testing.T) {
	// TransferTime must cover dispatch→last FileAck — the wire time —
	// not the microseconds spent enqueueing into in-memory channels.
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	w := fakeWorker(m, "w")
	obj := content.NewBlob("input", []byte("x"))
	task := simpleTask("timed")
	task.ID = 3
	task.Inputs = []core.FileSpec{{Object: obj, Cache: true}}
	s.mu.Lock()
	s.notePendingLocked(w, obj.ID)
	w.v.Commit = w.v.Commit.Add(task.Resources)
	e := &inflightEntry{
		worker:  "w",
		task:    task,
		sentAt:  time.Now(),
		waiting: map[string]bool{obj.ID: true},
	}
	s.inflight[3] = e
	w.ackWaiters[obj.ID] = append(w.ackWaiters[obj.ID], e)
	s.mu.Unlock()

	const wire = 25 * time.Millisecond
	time.Sleep(wire)
	s.onFileAck(w, proto.FileAck{ID: obj.ID, Ok: true, Cache: true})
	s.onResult(w, core.Result{ID: 3, Ok: true})

	select {
	case res := <-m.Results():
		if got := res.Metrics.TransferTime; got < (wire / 2).Seconds() {
			t.Errorf("TransferTime = %.6fs, want at least ~%.3fs of wire time", got, wire.Seconds())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no result delivered")
	}
}

func TestLibraryAckAccounting(t *testing.T) {
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	w := fakeWorker(m, "w")
	spec := &core.LibrarySpec{Name: "lib", Functions: []core.FunctionSpec{{Name: "f", Source: "def f():\n    return 1\n"}}}
	m.libMu.Lock()
	m.libSpecs["lib"] = spec
	m.libMu.Unlock()
	res := core.Resources{Cores: 8}
	install := func() {
		s.mu.Lock()
		li := &libInstance{LibraryView: policy.LibraryView{Name: "lib", Slots: 1, MaxInstances: 1, Res: res}}
		w.libs["lib"] = li
		s.view.AddInstance(w.v, &li.LibraryView)
		w.v.Commit = w.v.Commit.Add(res)
		s.mu.Unlock()
	}

	// Failure: the commit must be released, the instance removed, and
	// the failure counted.
	install()
	s.onLibraryAck(w, proto.LibraryAck{Library: "lib", Ok: false, Err: "setup exploded"})
	s.mu.Lock()
	if _, there := w.libs["lib"]; there || w.v.Commit.Cores != 0 || s.libFailures["lib"] != 1 {
		t.Errorf("after failed ack: libs=%v commit=%+v failures=%d", w.libs, w.v.Commit, s.libFailures["lib"])
	}
	s.mu.Unlock()

	// Success resets the failure streak — only consecutive failures
	// quarantine a library.
	install()
	s.onLibraryAck(w, proto.LibraryAck{Library: "lib", Ok: true, Instance: "lib@w#1"})
	s.mu.Lock()
	li := w.libs["lib"]
	if li == nil || !li.Ready || li.instance != "lib@w#1" || s.libFailures["lib"] != 0 {
		t.Errorf("after ok ack: li=%+v failures=%d", li, s.libFailures["lib"])
	}
	s.mu.Unlock()
}

func TestRepeatedLibraryFailureFailsPendingInvocations(t *testing.T) {
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	w := fakeWorker(m, "w")
	spec := &core.LibrarySpec{Name: "bad", Functions: []core.FunctionSpec{{Name: "f", Source: "def f():\n    return 1\n"}}}
	m.libMu.Lock()
	m.libSpecs["bad"] = spec
	m.libMu.Unlock()
	s.mu.Lock()
	s.enqueueInvLocked(pendingInv{inv: &core.InvocationSpec{ID: 11, Library: "bad", Function: "f"}})
	s.mu.Unlock()

	for i := 0; i < maxLibraryFailures; i++ {
		s.mu.Lock()
		bi := &libInstance{LibraryView: policy.LibraryView{Name: "bad", MaxInstances: 1}}
		w.libs["bad"] = bi
		s.view.AddInstance(w.v, &bi.LibraryView)
		s.mu.Unlock()
		s.onLibraryAck(w, proto.LibraryAck{Library: "bad", Ok: false, Err: "setup exploded"})
	}

	select {
	case res := <-m.Results():
		if res.Ok || res.ID != 11 || !strings.Contains(res.Err, "failed to deploy") {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending invocation never failed after quarantine")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pendingInvCount != 0 {
		t.Errorf("%d invocations still pending for a quarantined library", s.pendingInvCount)
	}
}

func TestEvictEmptyAccounting(t *testing.T) {
	m := New(Options{PeerTransfers: true, EvictEmptyLibraries: true, Shards: 1})
	s := m.shards[0]
	w := fakeWorker(m, "w")
	s.mu.Lock()
	res := core.Resources{Cores: 32, MemoryMB: 64 << 10, DiskMB: 64 << 10}
	idle := &libInstance{LibraryView: policy.LibraryView{Name: "idle", Ready: true, Slots: 1, MaxInstances: 1, Res: res}}
	w.libs["idle"] = idle
	s.view.AddInstance(w.v, &idle.LibraryView)
	w.v.Commit = w.v.Commit.Add(res)

	if !s.evictForLocked(w, "incoming", res) {
		t.Fatalf("eviction should free the idle library")
	}
	if _, there := w.libs["idle"]; there || w.v.Commit.Cores != 0 {
		t.Errorf("after evict: libs=%v commit=%+v", w.libs, w.v.Commit)
	}
	if n := atomic.LoadInt64(&m.stats.LibrariesEvicted); n != 1 {
		t.Errorf("evicted = %d", n)
	}
	s.mu.Unlock()
	msgs := drainMsgs(w)
	if len(msgs) != 1 || msgs[0].t != proto.MsgRemoveLibrary {
		t.Errorf("expected RemoveLibrary, got %v", msgs)
	}

	// A busy instance must never be evicted.
	s.mu.Lock()
	busy := &libInstance{LibraryView: policy.LibraryView{Name: "busy", Ready: true, Slots: 1, SlotsUsed: 1, MaxInstances: 1, Res: res}}
	w.libs["busy"] = busy
	s.view.AddInstance(w.v, &busy.LibraryView)
	w.v.Commit = w.v.Commit.Add(res)
	if s.evictForLocked(w, "incoming", res) {
		t.Errorf("evicted a library with invocations in flight")
	}
	if _, there := w.libs["busy"]; !there {
		t.Errorf("busy library disappeared from the worker")
	}
	s.mu.Unlock()
}

func TestDeliverNeverBlocks(t *testing.T) {
	// With a full results buffer and no reader, deliver must return
	// immediately — blocking here would wedge the worker's reader
	// goroutine and stop FileAcks from draining.
	m := New(Options{ResultBuffer: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(1); i <= 3; i++ {
			m.deliver(core.Result{ID: i, Ok: true})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("deliver blocked on a full results channel")
	}
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		select {
		case res := <-m.Results():
			seen[res.ID] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of 3 spilled results arrived", len(seen))
		}
	}
	if len(seen) != 3 {
		t.Errorf("results = %v", seen)
	}
}

func TestBackoffDelayProgression(t *testing.T) {
	base, cap := 50*time.Millisecond, 400*time.Millisecond
	unjittered := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
	}
	const specID = 42
	var prev time.Duration
	for i, d := range unjittered {
		got := retryBackoff(base, cap, i+1, specID)
		// Jitter is bounded: within [3d/4, 5d/4) of the exponential.
		if got < d*3/4 || got >= d*5/4 {
			t.Errorf("attempt %d: %v outside jitter band around %v", i+1, got, d)
		}
		// Deterministic: same (spec, attempt) → same delay, every time.
		if again := retryBackoff(base, cap, i+1, specID); again != got {
			t.Errorf("attempt %d: nondeterministic backoff %v vs %v", i+1, got, again)
		}
		// The jitter band never overlaps the next doubling, so delays
		// still grow strictly until the cap region.
		if i > 0 && d != unjittered[i-1] && got <= prev {
			t.Errorf("attempt %d: delay %v did not grow past %v", i+1, got, prev)
		}
		prev = got
	}
}

func TestBackoffJitterSpreadsRetryStorm(t *testing.T) {
	// After a mass failure every affected spec retries at the same
	// attempt number. Without jitter they would all share one delay —
	// a synchronized retry storm. The spec-derived jitter must spread
	// them across the band.
	base, cap := 50*time.Millisecond, 400*time.Millisecond
	delays := map[time.Duration]bool{}
	for id := int64(1); id <= 32; id++ {
		delays[retryBackoff(base, cap, 1, id)] = true
	}
	if len(delays) < 16 {
		t.Errorf("32 specs share only %d distinct retry delays — storm not spread", len(delays))
	}
}

func TestEnqueueOverflowDropsAndCounts(t *testing.T) {
	// A worker whose outbound queue fills must be disconnected — not
	// silently wedged — and the drop must be observable in Stats.
	m := New(Options{Shards: 1})
	w := fakeWorker(m, "slow")
	// Replace the connection with a real one so the drop path can close
	// it; fakeWorker leaves nc nil.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	w.nc = a
	w.sendq = make(chan outMsg, 2)
	for i := 0; i < 2; i++ {
		w.enqueue(outMsg{t: proto.MsgRunTask, v: simpleTask("fill")})
	}
	if got := m.Stats().SendQueueDrops; got != 0 {
		t.Fatalf("drops before overflow = %d", got)
	}
	w.enqueue(outMsg{t: proto.MsgRunTask, v: simpleTask("overflow")})
	if got := m.Stats().SendQueueDrops; got != 1 {
		t.Errorf("SendQueueDrops = %d, want 1", got)
	}
	// The connection was closed: the peer sees EOF, not a timeout.
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := b.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("peer read after overflow drop = %v, want EOF", err)
	}
}

func TestSendQueueSizedFromSlots(t *testing.T) {
	if small, big := sendQueueSize(1), sendQueueSize(64); small >= big {
		t.Errorf("queue size not scaling with slots: %d vs %d", small, big)
	}
	if sendQueueSize(0) < 1 {
		t.Errorf("zero-core worker must still get a usable queue")
	}
}

func TestRetryableResultRetriesWithBackoff(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: 3,
		RetryBaseDelay: 10 * time.Millisecond, RetryMaxDelay: 40 * time.Millisecond, Shards: 1})
	s := m.shards[0]
	w := fakeWorker(m, "w")
	task := simpleTask("flaky")
	task.ID = 5
	s.mu.Lock()
	w.v.Commit = w.v.Commit.Add(task.Resources)
	s.inflight[5] = &inflightEntry{worker: "w", task: task, sentAt: time.Now()}
	s.mu.Unlock()

	s.onResult(w, core.Result{ID: 5, Ok: false, Retryable: true, Err: "input not staged"})

	retries := m.Stats().Retries
	s.mu.Lock()
	if retries != 1 || s.backoffs != 1 {
		t.Errorf("retries=%d backoffs=%d", retries, s.backoffs)
	}
	s.mu.Unlock()

	// After the backoff, the task must be back in flight with its spent
	// budget carried along (the only worker is the avoided one, so the
	// fallback pass places it there).
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		e, inflight := s.inflight[5]
		s.mu.Unlock()
		if inflight {
			if e.retries != 1 {
				t.Fatalf("redispatched entry carries retries=%d, want 1", e.retries)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retried task never redispatched")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A non-retryable failure on the same path is final.
	s.onResult(w, core.Result{ID: 5, Ok: false, Err: "NameError: boom"})
	select {
	case res := <-m.Results():
		if res.Ok || res.Retryable || !strings.Contains(res.Err, "NameError") {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("final failure not delivered")
	}
	if m.Stats().Failures != 1 {
		t.Errorf("failures = %d", m.Stats().Failures)
	}
}

func TestRetriesDisabledDeliversFirstFailure(t *testing.T) {
	m := New(Options{PeerTransfers: true, MaxRetries: -1, Shards: 1})
	s := m.shards[0]
	w := fakeWorker(m, "w")
	task := simpleTask("once")
	task.ID = 2
	s.mu.Lock()
	w.v.Commit = w.v.Commit.Add(task.Resources)
	s.inflight[2] = &inflightEntry{worker: "w", task: task, sentAt: time.Now()}
	s.mu.Unlock()

	s.onResult(w, core.Result{ID: 2, Ok: false, Retryable: true, Err: "infra hiccup"})
	select {
	case res := <-m.Results():
		if res.Ok || m.Stats().Retries != 0 {
			t.Errorf("res=%+v retries=%d", res, m.Stats().Retries)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure not delivered with retries disabled")
	}
}
