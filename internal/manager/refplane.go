package manager

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// The ref plane (DESIGN.md §15) is the manager's half of the
// proxy-object data plane: a global catalog of results that stayed on
// their producing workers (pass-by-reference), driven entirely by the
// pure policy.RefTable. Like the submission plane it serializes its
// decisions on one leaf mutex with its OWN recorder — ref ownership,
// spills, promotes, resolves, and rehomes form a single global decision
// stream, compared against the simulator mirrors as its own trace
// (RefDecisions), never interleaved into any shard's.
//
// Locking: refMu is a leaf below shard locks. Under it the plane only
// mutates the table and records; message sends to spill victims and
// new owners go through the global live-worker registry (obsMu →
// enqueue), acquired after refMu is released or nested inside it —
// never a shard lock. The lock order is therefore s.mu → refMu →
// obsMu, consistent with every other path.
//
// Trace determinism: the ref stream is written from whichever shard's
// event handler triggered the decision. With Shards == 1 (the traced
// differential and golden configurations) the single shard lock
// serializes every producer, so the stream is deterministic; untraced
// multi-shard runs pay no ordering constraint.
type refPlane struct {
	m *Manager
	// rec records the global ref decision stream (nil when tracing is
	// off — Recorder.Record on nil is a no-op, keeping call sites flat).
	rec *policy.Recorder

	// active flips on the first ref result, so workloads without proxy
	// objects pay one atomic load per ack instead of a mutex hop.
	active atomic.Bool

	mu  sync.Mutex
	tab *policy.RefTable
}

func newRefPlane(m *Manager, ownedBytesCap int64, traced bool) *refPlane {
	p := &refPlane{m: m, tab: policy.NewRefTable(ownedBytesCap)}
	if traced {
		p.rec = &policy.Recorder{}
	}
	return p
}

// noteResult is the ownership transfer on completion: the producing
// worker becomes the ref's owner and holder of record, and the manager
// only updates its catalog — the result bytes never transit it. Spills
// cascaded by the owner's budget are executed immediately. Callable
// with a shard lock held.
func (p *refPlane) noteResult(workerID string, ref *core.ObjectRef) {
	p.active.Store(true)
	p.mu.Lock()
	spills := p.tab.NoteRefResult(workerID, ref.ID, ref.Name, ref.Size, p.rec)
	p.mu.Unlock()
	p.execSpills(spills)
}

// resolve plans where consumer dst pulls ref id from, executing any
// promote-cascaded spills before returning. catalog reports whether
// the manager's own staging catalog could restage the bytes (the last
// resort — normally false for by-ref results, whose bytes the manager
// never held).
func (p *refPlane) resolve(dst, id string, catalog bool) policy.ResolveDecision {
	p.mu.Lock()
	d := p.tab.PlanResolve(dst, id, catalog, p.rec)
	p.mu.Unlock()
	if d.Promote {
		atomic.AddInt64(&p.m.stats.RefPromotes, 1)
	}
	p.execSpills(d.Spills)
	return d
}

// execSpills tells each spill victim to demote the object to the
// shared tier. Victims may live in any shard, so the sends go through
// the global live-worker registry — enqueue only, no shard locks. The
// catalog was re-tiered at decision time; a victim that died in the
// window simply never materializes the shared copy, and a later
// resolve walks the surviving replicas instead.
func (p *refPlane) execSpills(spills []policy.RefSpill) {
	if len(spills) == 0 {
		return
	}
	atomic.AddInt64(&p.m.stats.RefSpills, int64(len(spills)))
	p.m.obsMu.RLock()
	for _, sp := range spills {
		if ps := p.m.peers[sp.Worker]; ps != nil {
			ps.w.enqueue(outMsg{t: proto.MsgSpillObject, v: proto.SpillObject{ID: sp.ID}})
		}
	}
	p.m.obsMu.RUnlock()
}

// noteHolder records a consumer's confirmed replica after its fetch
// acked — the ref-catalog twin of noteReplicaLocked. No-op for
// untracked objects and on workloads without refs.
func (p *refPlane) noteHolder(workerID, id string) {
	if !p.active.Load() {
		return
	}
	p.mu.Lock()
	p.tab.AddRefHolder(workerID, id)
	p.mu.Unlock()
}

// isRef reports whether id names a tracked proxy object. One atomic
// load on workloads without refs.
func (p *refPlane) isRef(id string) bool {
	if !p.active.Load() {
		return false
	}
	p.mu.Lock()
	ok := p.tab.Has(id)
	p.mu.Unlock()
	return ok
}

// refMeta returns a tracked ref's name and size (for re-staging a
// failed fetch, where no FileSpec travels with the ack).
func (p *refPlane) refMeta(id string) (name string, size int64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ref := p.tab.Get(id)
	if ref == nil {
		return "", 0, false
	}
	return ref.Name, ref.Size, true
}

// invalidateHolders retracts every non-owner replica of a ref after a
// fetch failed against the whole holder set: the walk just proved the
// replica records unreliable (a consumer's copy can be LRU-evicted
// under cache pressure without the catalog hearing about it), and only
// the owner's pinned copy and the shared-tier copy carry durability
// guarantees. The next resolve therefore lands on the owner, the
// shared tier, or lost — guaranteed progress instead of re-picking the
// same dead replica forever. Holder retraction is an untraced state
// update (like AddRefHolder); the re-resolve it forces is traced.
func (p *refPlane) invalidateHolders(id string) {
	p.mu.Lock()
	ref := p.tab.Get(id)
	if ref != nil {
		for _, w := range core.SortedKeys(ref.Holders) {
			if w != ref.Owner {
				p.tab.DropRefHolder(w, id)
			}
		}
	}
	p.mu.Unlock()
}

// rehome handles an owner's death: every ref it owned is re-homed onto
// a surviving holder (told to adopt the copy), falls back to its
// shared-tier copy, or is declared lost. Called from onWorkerGone with
// no shard lock held.
func (p *refPlane) rehome(deadID string) {
	if !p.active.Load() {
		return
	}
	p.mu.Lock()
	rhs := p.tab.PlanRehome(deadID, p.rec)
	p.mu.Unlock()
	if len(rhs) == 0 {
		return
	}
	atomic.AddInt64(&p.m.stats.RefRehomes, int64(len(rhs)))
	var spills []policy.RefSpill
	p.m.obsMu.RLock()
	for _, rh := range rhs {
		if rh.Lost {
			atomic.AddInt64(&p.m.stats.RefLost, 1)
			continue
		}
		if rh.Owner == "" {
			continue // fell back to the durable shared-tier copy
		}
		if ps := p.m.peers[rh.Owner]; ps != nil {
			ps.w.enqueue(outMsg{t: proto.MsgOwnObject, v: proto.OwnObject{ID: rh.ID}})
		}
		spills = append(spills, rh.Spills...)
	}
	p.m.obsMu.RUnlock()
	p.execSpills(spills)
}

// Decisions returns a copy of the recorded ref decision stream.
func (p *refPlane) Decisions() []string {
	if p == nil || p.rec == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.rec.Decisions...)
}

// RefDecisions returns the global ref-plane decision trace: one line
// per ownership transfer, spill, resolve, promote, and rehome. Empty
// unless Options.DecisionTrace was set.
func (m *Manager) RefDecisions() []string {
	return m.refs.Decisions()
}

// refSourceAddrs maps resolve-picked worker IDs to data-server
// addresses through the global live-worker registry — the source may
// live in any shard. A dead source comes back as "" and the caller
// falls through to recovery.
func (m *Manager) refSourceAddrs(src string, alts []string) (string, []string) {
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	var addr string
	if ps := m.peers[src]; ps != nil {
		addr = ps.w.hello.DataAddr
	}
	var altAddrs []string
	for _, id := range alts {
		if ps := m.peers[id]; ps != nil {
			altAddrs = append(altAddrs, ps.w.hello.DataAddr)
		}
	}
	return addr, altAddrs
}
