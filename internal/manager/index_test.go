package manager

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/proto"
)

// TestIndexConsistencyRandomized drives the scheduler's incremental
// indexes through 1000 random events — worker joins and deaths, file
// staging and acks (success and failure), library deploys, ready acks,
// failed installs, slot take/release, and evictions — and after every
// operation asserts each index matches a brute-force recomputation
// from the ground-truth worker state. A concurrent goroutine hammers
// the lock-free observability APIs (Stats, ObjectHolders) the whole
// time, so running under -race also checks the obsMu split.
func TestIndexConsistencyRandomized(t *testing.T) {
	m := New(Options{PeerTransfers: true, EvictEmptyLibraries: true, Shards: 1})
	s := m.shards[0]
	rng := rand.New(rand.NewSource(42))

	libs := []string{"libA", "libB", "libC"}
	objs := []string{"o1", "o2", "o3", "o4", "o5", "o6"}
	specs := map[string]*core.LibrarySpec{}
	for _, name := range libs {
		specs[name] = &core.LibrarySpec{Name: name, Slots: 2}
	}

	done := make(chan struct{})
	go func() {
		obj := &content.Object{ID: objs[0]}
		for {
			select {
			case <-done:
				return
			default:
				m.Stats()
				m.ObjectHolders(obj)
			}
		}
	}()
	defer close(done)

	newWorker := func(i int) *workerState {
		id := fmt.Sprintf("w%03d", i)
		return &workerState{
			id:           id,
			hello:        proto.Hello{WorkerID: id, Resources: core.Resources{Cores: 32, MemoryMB: 64 << 10, DiskMB: 64 << 10}},
			sendq:        make(chan outMsg, 4096),
			fetchSources: map[string]string{},
			ackWaiters:   map[string][]*inflightEntry{},
			libs:         map[string]*libInstance{},
		}
	}
	var live []*workerState
	nextWorker, nextInv := 0, int64(0)

	pickWorker := func() *workerState {
		if len(live) == 0 {
			return nil
		}
		return live[rng.Intn(len(live))]
	}

	// verify recomputes every index from the worker table and compares.
	verify := func(step int, op string) {
		t.Helper()
		wantHolders := map[string]map[string]bool{}
		wantPending := map[string]int{}
		wantLibOn := map[string]int{}
		wantReady := map[string]map[string]bool{}
		for id, w := range s.workers {
			for obj := range w.v.Files {
				if wantHolders[obj] == nil {
					wantHolders[obj] = map[string]bool{}
				}
				wantHolders[obj][id] = true
			}
			for obj := range w.v.Pending {
				wantPending[obj]++
			}
			for name, li := range w.libs {
				wantLibOn[name]++
				if li.Ready && !li.Failed && w.v.Alive && li.SlotsUsed < li.Slots {
					if wantReady[name] == nil {
						wantReady[name] = map[string]bool{}
					}
					wantReady[name][id] = true
				}
			}
		}

		if len(s.view.Holders) != len(wantHolders) {
			t.Fatalf("step %d (%s): holders has %d objects, want %d", step, op, len(s.view.Holders), len(wantHolders))
		}
		for obj, set := range wantHolders {
			got := s.view.Holders[obj]
			if len(got) != len(set) {
				t.Fatalf("step %d (%s): holders[%s] has %d workers, want %d", step, op, obj, len(got), len(set))
			}
			for id := range set {
				if got[id] == nil {
					t.Fatalf("step %d (%s): holders[%s] missing %s", step, op, obj, id)
				}
			}
		}
		if len(s.view.PendingCopies) != len(wantPending) {
			t.Fatalf("step %d (%s): pendingCopies has %d objects, want %d", step, op, len(s.view.PendingCopies), len(wantPending))
		}
		for obj, n := range wantPending {
			if s.view.PendingCopies[obj] != n {
				t.Fatalf("step %d (%s): pendingCopies[%s] = %d, want %d", step, op, obj, s.view.PendingCopies[obj], n)
			}
		}
		if len(s.view.LibFull) != len(wantLibOn) {
			t.Fatalf("step %d (%s): LibFull has %d libraries, want %d", step, op, len(s.view.LibFull), len(wantLibOn))
		}
		for name, n := range wantLibOn {
			if s.view.LibFull[name] != n {
				t.Fatalf("step %d (%s): LibFull[%s] = %d, want %d", step, op, name, s.view.LibFull[name], n)
			}
		}
		if len(s.view.ReadyFree) != len(wantReady) {
			t.Fatalf("step %d (%s): readyFree has %d libraries, want %d", step, op, len(s.view.ReadyFree), len(wantReady))
		}
		for name, set := range wantReady {
			got := s.view.ReadyFree[name]
			if len(got) != len(set) {
				t.Fatalf("step %d (%s): readyFree[%s] has %d workers, want %d", step, op, name, len(got), len(set))
			}
			for id := range set {
				if got[id] == nil {
					t.Fatalf("step %d (%s): readyFree[%s] missing %s", step, op, name, id)
				}
			}
		}
		m.obsMu.RLock()
		counts := make(map[string]int, len(m.holders))
		for obj, hs := range m.holders {
			counts[obj] = len(hs)
		}
		m.obsMu.RUnlock()
		if len(counts) != len(wantHolders) {
			t.Fatalf("step %d (%s): holder registry has %d objects, want %d", step, op, len(counts), len(wantHolders))
		}
		for obj, set := range wantHolders {
			if counts[obj] != len(set) {
				t.Fatalf("step %d (%s): holders[%s] = %d, want %d", step, op, obj, counts[obj], len(set))
			}
		}
	}

	drain := func() {
		for _, w := range live {
			for {
				select {
				case <-w.sendq:
				default:
					goto next
				}
			}
		next:
		}
	}

	const steps = 1000
	for step := 0; step < steps; step++ {
		s.mu.Lock()
		op := "noop"
		switch k := rng.Intn(12); k {
		case 0: // join
			if len(live) < 8 {
				op = "join"
				w := newWorker(nextWorker)
				nextWorker++
				s.registerWorkerLocked(w)
				live = append(live, w)
			}
		case 1: // death
			if len(live) > 1 && rng.Intn(4) == 0 {
				op = "death"
				i := rng.Intn(len(live))
				s.dropWorkerLocked(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		case 2: // stage a copy
			if w := pickWorker(); w != nil {
				op = "stage"
				s.notePendingLocked(w, objs[rng.Intn(len(objs))])
			}
		case 3: // file ack ok
			if w := pickWorker(); w != nil {
				op = "ack-ok"
				obj := objs[rng.Intn(len(objs))]
				if s.clearPendingLocked(w, obj) {
					s.noteReplicaLocked(w, obj)
				}
			}
		case 4: // file ack failed
			if w := pickWorker(); w != nil {
				op = "ack-fail"
				s.clearPendingLocked(w, objs[rng.Intn(len(objs))])
			}
		case 5: // deploy a library
			if w := pickWorker(); w != nil {
				name := libs[rng.Intn(len(libs))]
				if w.libs[name] == nil {
					op = "deploy"
					s.deployLibraryLocked(w, specs[name], core.Resources{Cores: 2})
				}
			}
		case 6: // library ack ok
			if w := pickWorker(); w != nil {
				name := libs[rng.Intn(len(libs))]
				if li := w.libs[name]; li != nil && !li.Ready && !li.Failed {
					op = "lib-ok"
					li.Ready = true
					s.libSlotsChangedLocked(w, li)
				}
			}
		case 7: // library ack failed
			if w := pickWorker(); w != nil {
				name := libs[rng.Intn(len(libs))]
				if li := w.libs[name]; li != nil && !li.Ready {
					op = "lib-fail"
					li.Failed = true
					delete(w.libs, name)
					s.view.RemoveLibrary(w.v, name)
				}
			}
		case 8: // place an invocation on a ready instance
			name := libs[rng.Intn(len(libs))]
			inv := &core.InvocationSpec{ID: nextInv, Library: name}
			nextInv++
			if s.placeInvocationOnReadyLocked(pendingInv{inv: inv}, nil) {
				op = "place"
			}
		case 9: // invocation result frees a slot
			if w := pickWorker(); w != nil {
				name := libs[rng.Intn(len(libs))]
				if li := w.libs[name]; li != nil && li.SlotsUsed > 0 {
					op = "result"
					li.SlotsUsed--
					s.libSlotsChangedLocked(w, li)
				}
			}
		case 10: // evict everything idle on one worker
			if w := pickWorker(); w != nil {
				op = "evict"
				for name, li := range w.libs {
					if li.Ready && li.SlotsUsed == 0 {
						s.evictLibraryLocked(w, name)
					}
				}
			}
		case 11: // spurious clear (retry path re-acking an unknown copy)
			if w := pickWorker(); w != nil {
				op = "spurious-clear"
				s.clearPendingLocked(w, "unknown-object")
			}
		}
		verify(step, op)
		drain()
		s.mu.Unlock()
	}
}
