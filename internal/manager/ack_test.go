package manager

import (
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/proto"
)

// With the worker's asynchronous data plane, FileAcks complete in
// whatever order the transfers finish — not the order the manager
// staged them. These tests prove the ack bookkeeping (pending marks,
// source transfer slots, ack-waiter index, TransferTime stamping)
// tolerates arbitrary reordering and duplicate/stale acks.

func TestOutOfOrderFileAcks(t *testing.T) {
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	src := fakeWorker(m, "src")
	w := fakeWorker(m, "w")

	objA := content.NewBlob("a.bin", []byte("first staged"))
	objB := content.NewBlob("b.bin", []byte("second staged"))
	task := simpleTask("ooo")
	task.ID = 21
	task.Inputs = []core.FileSpec{
		{Object: objA, Cache: true, PeerTransfer: true},
		{Object: objB, Cache: true, PeerTransfer: true},
	}

	// Stage A then B on w (both peer fetches from src), with one
	// dispatched task waiting on both — the shape tryPlaceTaskOnLocked
	// builds when it commits a placement behind in-flight copies.
	s.mu.Lock()
	s.m.catalogAdd(task.Inputs[0])
	s.m.catalogAdd(task.Inputs[1])
	s.notePendingLocked(w, objA.ID)
	s.notePendingLocked(w, objB.ID)
	w.fetchSources[objA.ID] = "src"
	w.fetchSources[objB.ID] = "src"
	src.v.TransfersOut = 2
	w.v.Commit = w.v.Commit.Add(task.Resources)
	e := &inflightEntry{
		worker:  "w",
		task:    task,
		sentAt:  time.Now(),
		waiting: map[string]bool{objA.ID: true, objB.ID: true},
	}
	s.inflight[task.ID] = e
	w.ackWaiters[objA.ID] = append(w.ackWaiters[objA.ID], e)
	w.ackWaiters[objB.ID] = append(w.ackWaiters[objB.ID], e)
	s.mu.Unlock()

	// B's transfer finishes first, even though A was staged first.
	s.onFileAck(w, proto.FileAck{ID: objB.ID, Ok: true, Cache: true})

	s.mu.Lock()
	if w.v.Pending[objB.ID] {
		t.Errorf("B still pending after its ack")
	}
	if !w.v.Pending[objA.ID] {
		t.Errorf("A's pending mark cleared by B's ack")
	}
	if !e.waiting[objA.ID] || e.waiting[objB.ID] {
		t.Errorf("waiting set after B's ack = %v", e.waiting)
	}
	if src.v.TransfersOut != 1 {
		t.Errorf("source slots after one ack = %d, want 1", src.v.TransfersOut)
	}
	if _, still := w.ackWaiters[objB.ID]; still {
		t.Errorf("B's ack-waiter list not cleared")
	}
	afterB := e.transfer
	s.mu.Unlock()
	if afterB <= 0 {
		t.Errorf("transfer not stamped by B's ack")
	}

	// A — the straggler — lands last and closes the staging window.
	time.Sleep(5 * time.Millisecond)
	s.onFileAck(w, proto.FileAck{ID: objA.ID, Ok: true, Cache: true})

	s.mu.Lock()
	if len(e.waiting) != 0 {
		t.Errorf("waiting set after both acks = %v", e.waiting)
	}
	if len(w.v.Pending) != 0 {
		t.Errorf("pending after both acks = %v", w.v.Pending)
	}
	if len(w.ackWaiters) != 0 {
		t.Errorf("ack-waiter index not drained: %v", w.ackWaiters)
	}
	if src.v.TransfersOut != 0 {
		t.Errorf("source slots not fully released: %d", src.v.TransfersOut)
	}
	if e.transfer <= afterB {
		t.Errorf("TransferTime not extended by the straggler: %.9f <= %.9f", e.transfer, afterB)
	}
	s.mu.Unlock()

	// The task completes; its TransferTime covers dispatch → last ack.
	s.onResult(w, core.Result{ID: task.ID, Ok: true})
	select {
	case res := <-m.Results():
		if !res.Ok || res.Metrics.TransferTime <= 0 {
			t.Errorf("result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no result delivered")
	}
	if err := m.CheckQuiescence(); err != nil {
		t.Errorf("quiescence after out-of-order acks: %v", err)
	}
}

func TestDuplicateAndStaleFileAcksAreHarmless(t *testing.T) {
	// The async data plane acks every FetchFile it was sent, including
	// duplicates the manager coalesced out of its own records. A second
	// ack for an already-settled object must not double-release slots,
	// underflow counters, or disturb other waiters.
	m := New(Options{PeerTransfers: true, Shards: 1})
	s := m.shards[0]
	src := fakeWorker(m, "src")
	w := fakeWorker(m, "w")
	obj := content.NewBlob("dup.bin", []byte("once"))

	s.mu.Lock()
	s.m.catalogAdd(core.FileSpec{Object: obj, Cache: true, PeerTransfer: true})
	s.notePendingLocked(w, obj.ID)
	w.fetchSources[obj.ID] = "src"
	src.v.TransfersOut = 1
	s.mu.Unlock()

	s.onFileAck(w, proto.FileAck{ID: obj.ID, Ok: true, Cache: true})
	// Same ack again: the fetchSources record is gone, Source echoes the
	// original assignment (the worker always echoes it back).
	s.onFileAck(w, proto.FileAck{ID: obj.ID, Ok: true, Cache: true, Source: "src"})

	s.mu.Lock()
	defer s.mu.Unlock()
	if src.v.TransfersOut != 0 {
		t.Errorf("transfer slots underflowed or leaked: %d", src.v.TransfersOut)
	}
	if len(w.v.Pending) != 0 {
		t.Errorf("pending after duplicate acks = %v", w.v.Pending)
	}
	// An ack for an object this worker never staged (a stale record from
	// a prior life of the ID) is a no-op too.
	s.mu.Unlock()
	s.onFileAck(w, proto.FileAck{ID: "never-staged", Ok: false, Err: "who?"})
	s.mu.Lock()
	if len(w.v.Pending) != 0 || len(w.ackWaiters) != 0 {
		t.Errorf("stale ack left residue: pending=%v waiters=%v", w.v.Pending, w.ackWaiters)
	}
}
