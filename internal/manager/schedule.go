package manager

import (
	"fmt"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/proto"
)

// schedule is the manager's scheduling pass: it tries to place every
// pending task and invocation. It is called after any state change
// (submissions, worker joins, acks, results).
func (m *Manager) schedule() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scheduleTasksLocked()
	m.scheduleInvocationsLocked()
}

// ---- file staging ----

// fileReady reports whether the worker already has (or will have, via
// an earlier message on the same ordered connection) the object.
func fileReady(w *workerState, id string) bool {
	return w.files[id] || w.pending[id]
}

// canStageFileLocked reports whether obj could be made present on w
// right now, and stages it when commit is true. The policy implements
// §3.3's distribution discipline for cacheable, peer-transferable
// objects: the manager sends the first copy itself; while that copy is
// in flight every other worker waits; once a worker confirms a replica
// it becomes a transfer source for up to PeerTransferCap concurrent
// peers, growing a spanning tree. Non-cacheable objects (per-call
// arguments) always flow directly from the manager.
func (m *Manager) canStageFileLocked(w *workerState, fs core.FileSpec, commit bool) bool {
	obj := fs.Object
	if obj == nil {
		return false
	}
	if fileReady(w, obj.ID) {
		return true
	}
	if fs.Cache && fs.PeerTransfer && m.opts.PeerTransfers {
		if src := m.pickSourceLocked(w, obj.ID); src != nil {
			if commit {
				m.catalog[obj.ID] = fs
				src.transfersOut++
				w.pending[obj.ID] = true
				w.fetchSources[obj.ID] = src.id
				w.enqueue(outMsg{proto.MsgFetchFile, proto.FetchFile{
					ID:       obj.ID,
					Name:     obj.Name,
					FromAddr: src.hello.DataAddr,
					Cache:    fs.Cache,
					Unpack:   fs.Unpack,
				}})
				m.stats.PeerTransfers++
			}
			return true
		}
		// No confirmed source yet. If a first copy is already in flight
		// somewhere, wait for it instead of flooding direct sends — but
		// only during the check pass: once a dispatch is committed the
		// file must move now, and the manager's own link is always a
		// valid (if less scalable) source.
		if !commit {
			for _, other := range m.workers {
				if other.pending[obj.ID] {
					return false
				}
			}
		}
	}
	if commit {
		m.directSendLocked(w, fs)
	}
	return true
}

func (m *Manager) directSendLocked(w *workerState, fs core.FileSpec) {
	obj := fs.Object
	m.catalog[obj.ID] = fs
	w.pending[obj.ID] = true
	w.enqueue(outMsg{proto.MsgPutFile, proto.PutFile{
		File: proto.FileMeta{
			ID:           obj.ID,
			Name:         obj.Name,
			Kind:         int(obj.Kind),
			Data:         obj.Data,
			LogicalSize:  obj.LogicalSize,
			UnpackedSize: obj.UnpackedSize,
		},
		Cache:  fs.Cache,
		Unpack: fs.Unpack,
	}})
	m.stats.DirectTransfers++
}

// pickSourceLocked chooses a worker that has obj cached and has a free
// outbound transfer slot, preferring same-cluster sources when cluster
// awareness is on.
func (m *Manager) pickSourceLocked(dst *workerState, id string) *workerState {
	var fallback *workerState
	for _, cand := range m.workers {
		if cand.id == dst.id || !cand.files[id] || !cand.alive {
			continue
		}
		if cand.transfersOut >= m.opts.PeerTransferCap {
			continue
		}
		if m.opts.ClusterAware && cand.hello.Cluster == dst.hello.Cluster {
			return cand
		}
		if fallback == nil {
			fallback = cand
		}
	}
	if m.opts.ClusterAware && fallback != nil && fallback.hello.Cluster != dst.hello.Cluster {
		// Cross-cluster peer links are the constrained ones (Figure 3c);
		// prefer the manager's own link instead.
		return nil
	}
	return fallback
}

// canStageAllLocked checks (and optionally performs) staging for a set
// of file specs on one worker.
func (m *Manager) canStageAllLocked(w *workerState, specs []core.FileSpec, commit bool) bool {
	for _, fs := range specs {
		if !m.canStageFileLocked(w, fs, false) {
			return false
		}
	}
	if commit {
		for _, fs := range specs {
			m.canStageFileLocked(w, fs, true)
		}
	}
	return true
}

// ---- task scheduling ----

func (m *Manager) scheduleTasksLocked() {
	var remaining []*core.TaskSpec
	for _, t := range m.pendingTasks {
		if !m.tryPlaceTaskLocked(t) {
			remaining = append(remaining, t)
		}
	}
	m.pendingTasks = remaining
}

func (m *Manager) tryPlaceTaskLocked(t *core.TaskSpec) bool {
	// Retries prefer a worker other than the one that just failed; if
	// no other placement exists, the avoided worker is better than
	// starving.
	if m.tryPlaceTaskOnLocked(t, m.avoid[t.ID]) {
		return true
	}
	if m.avoid[t.ID] != "" {
		return m.tryPlaceTaskOnLocked(t, "")
	}
	return false
}

func (m *Manager) tryPlaceTaskOnLocked(t *core.TaskSpec, avoid string) bool {
	key := fmt.Sprintf("task-%d", t.ID)
	for _, wid := range m.ring.Sequence(key, 0) {
		w := m.workers[wid]
		if w == nil || !w.alive || w.id == avoid {
			continue
		}
		if !t.Resources.Fits(w.total.Sub(w.commit)) {
			continue
		}
		if !m.canStageAllLocked(w, t.Inputs, false) {
			continue
		}
		start := time.Now()
		m.canStageAllLocked(w, t.Inputs, true)
		w.commit = w.commit.Add(t.Resources)
		w.enqueue(outMsg{proto.MsgRunTask, t})
		e := &inflightEntry{
			worker:  w.id,
			task:    t,
			sentAt:  start,
			waiting: map[string]bool{},
		}
		// TransferTime runs from dispatch until the last input this
		// dispatch depends on is acked on the worker — not the time
		// spent enqueueing messages into in-memory channels.
		for _, in := range t.Inputs {
			if in.Object != nil && w.pending[in.Object.ID] {
				e.waiting[in.Object.ID] = true
			}
		}
		m.inflight[t.ID] = e
		return true
	}
	return false
}

// ---- invocation scheduling (§3.5.2) ----

func (m *Manager) scheduleInvocationsLocked() {
	var remaining []*core.InvocationSpec
	for _, inv := range m.pendingInvs {
		placed, err := m.tryPlaceInvocationLocked(inv)
		if err != nil {
			m.stats.Failures++
			m.emitFailure(inv, err)
			continue
		}
		if !placed {
			remaining = append(remaining, inv)
		}
	}
	m.pendingInvs = remaining
}

// emitFailure delivers a synthetic failed result for an unschedulable
// invocation. Called with the lock held; deliver never blocks the
// scheduler on a full results channel.
func (m *Manager) emitFailure(inv *core.InvocationSpec, err error) {
	delete(m.retries, inv.ID)
	delete(m.avoid, inv.ID)
	m.deliver(core.Result{ID: inv.ID, Ok: false, Err: err.Error()})
}

func (m *Manager) tryPlaceInvocationLocked(inv *core.InvocationSpec) (bool, error) {
	spec, known := m.libSpecs[inv.Library]
	if !known {
		return false, fmt.Errorf("manager: invocation %d names unknown library %q", inv.ID, inv.Library)
	}
	if m.libFailures[inv.Library] >= maxLibraryFailures || m.libInfraFailures[inv.Library] >= maxLibraryInfraFailures {
		return false, fmt.Errorf("manager: library %q is marked broken after repeated deployment failures", inv.Library)
	}
	hasFn := false
	for _, f := range spec.Functions {
		if f.Name == inv.Function {
			hasFn = true
			break
		}
	}
	if !hasFn {
		return false, fmt.Errorf("manager: library %q has no function %q", inv.Library, inv.Function)
	}

	// First choice: a ready instance with a free slot — preferring a
	// worker other than the one a retry just failed on, when possible.
	if m.placeInvocationOnReadyLocked(inv, spec, m.avoid[inv.ID]) {
		return true, nil
	}
	if m.avoid[inv.ID] != "" && m.placeInvocationOnReadyLocked(inv, spec, "") {
		return true, nil
	}

	return m.deployForInvocationLocked(inv, spec)
}

// placeInvocationOnReadyLocked dispatches inv to a ready instance with
// a free slot, skipping the avoided worker.
func (m *Manager) placeInvocationOnReadyLocked(inv *core.InvocationSpec, spec *core.LibrarySpec, avoid string) bool {
	for _, wid := range m.ring.Sequence(inv.Library, 0) {
		w := m.workers[wid]
		if w == nil || !w.alive || w.id == avoid {
			continue
		}
		li := w.libs[inv.Library]
		if li == nil || !li.ready || li.slotsUsed >= spec.SlotCount() {
			continue
		}
		li.slotsUsed++
		w.enqueue(outMsg{proto.MsgInvoke, inv})
		m.inflight[inv.ID] = &inflightEntry{worker: w.id, library: inv.Library, inv: inv, sentAt: time.Now()}
		return true
	}
	return false
}

func (m *Manager) deployForInvocationLocked(inv *core.InvocationSpec, spec *core.LibrarySpec) (bool, error) {
	// Second choice: deploy a new instance on the next ring worker with
	// room, evicting an empty foreign library if allowed (§3.5.2).
	for _, wid := range m.ring.Sequence(inv.Library, 0) {
		w := m.workers[wid]
		if w == nil || !w.alive {
			continue
		}
		if _, already := w.libs[inv.Library]; already {
			continue // installed or installing here
		}
		need := spec.Resources
		if need == (core.Resources{}) {
			need = w.total
		}
		var libFiles []core.FileSpec
		if spec.Env != nil {
			libFiles = append(libFiles, *spec.Env)
		}
		libFiles = append(libFiles, spec.Inputs...)
		if !m.canStageAllLocked(w, libFiles, false) {
			continue
		}
		if !need.Fits(w.total.Sub(w.commit)) {
			if !m.opts.EvictEmptyLibraries || !m.evictEmptyLocked(w, inv.Library, need) {
				continue
			}
		}
		m.deployLibraryLocked(w, spec, need)
		// The invocation stays pending until the LibraryAck arrives.
		return false, nil
	}
	return false, nil
}

// evictEmptyLocked removes idle instances of other libraries on w until
// `need` fits, returning whether it succeeded.
func (m *Manager) evictEmptyLocked(w *workerState, wantLib string, need core.Resources) bool {
	for name, li := range w.libs {
		if name == wantLib || li.slotsUsed > 0 || !li.ready {
			continue
		}
		delete(w.libs, name)
		w.commit = w.commit.Sub(li.res)
		w.enqueue(outMsg{proto.MsgRemoveLibrary, proto.RemoveLibrary{Library: name}})
		m.stats.LibrariesEvicted++
		if need.Fits(w.total.Sub(w.commit)) {
			return true
		}
	}
	return need.Fits(w.total.Sub(w.commit))
}

// deployLibraryLocked stages the library's files and sends the install
// message.
func (m *Manager) deployLibraryLocked(w *workerState, spec *core.LibrarySpec, res core.Resources) {
	if spec.Env != nil {
		m.canStageFileLocked(w, *spec.Env, true)
	}
	for _, fs := range spec.Inputs {
		m.canStageFileLocked(w, fs, true)
	}
	w.libs[spec.Name] = &libInstance{name: spec.Name, res: res}
	w.commit = w.commit.Add(res)
	w.enqueue(outMsg{proto.MsgInstallLibrary, spec})
	m.stats.LibrariesDeployed++
}

// ObjectHolders returns how many workers hold the object — visibility
// for distribution tests.
func (m *Manager) ObjectHolders(obj *content.Object) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.workers {
		if w.files[obj.ID] {
			n++
		}
	}
	return n
}
