package manager

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// The scheduling passes below are invoked from each shard's coalesced
// wake loop (index.go): scheduleTasksLocked when the task queue is
// dirty and scheduleLibQueueLocked per dirty library. They never scan
// state that their dirty mark could not have changed.
//
// Every scheduling decision — which worker runs a task, where a library
// instance deploys, which peer sources a transfer, what gets evicted —
// comes from the pure policy core (internal/policy) reading the shard's
// ClusterView. This file only *executes* decisions: it sends messages,
// moves resource commitments, and reports the resulting transitions
// back into the view. Passes plan in batches (PlanTaskBatch,
// PlaceReadyBatch) whose contract is strict sequential equivalence, so
// the decision sequence is identical to the one-at-a-time loop the
// simulator replays — the differential test in this package proves it.

// ---- staging execution ----

// altSourcesLocked collects up to two alternate holders' data
// addresses for a peer fetch, so the worker's data plane can retry a
// failed transfer against another source before surfacing the failure
// to the manager (which would re-stage from its own link). Candidates
// are this shard's confirmed holders minus the assigned source and the
// destination, in sorted-ID order for determinism.
func (s *shard) altSourcesLocked(objID, src, dst string) []string {
	holders := s.view.Holders[objID]
	if len(holders) <= 1 {
		return nil
	}
	var alts []string
	for _, id := range core.SortedKeys(holders) {
		if id == src || id == dst {
			continue
		}
		if hw, live := s.workers[id]; live {
			alts = append(alts, hw.hello.DataAddr)
			if len(alts) == 2 {
				break
			}
		}
	}
	return alts
}

// execStageLocked carries out one staging decision on a worker: a peer
// fetch from the chosen source or a direct bulk send from the manager.
// StageReady decisions are no-ops by construction and StageWait never
// reaches execution (placements with waiting inputs are not committed).
func (s *shard) execStageLocked(w *workerState, sf policy.StageFile) {
	switch sf.Mode {
	case policy.StagePeer:
		src := s.workers[sf.Src.ID]
		if src == nil {
			// The source died between decision and execution (same lock
			// hold in practice, but the fallback is free): the manager's
			// own link is always valid.
			s.directSendLocked(w, sf.Spec)
			return
		}
		obj := sf.Spec.Object
		s.m.catalogAdd(sf.Spec)
		src.v.TransfersOut++
		s.view.NotePending(w.v, obj.ID)
		w.fetchSources[obj.ID] = src.id
		w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
			ID:       obj.ID,
			Name:     obj.Name,
			FromAddr: src.hello.DataAddr,
			AltAddrs: s.altSourcesLocked(obj.ID, src.id, w.id),
			Source:   src.id,
			Cache:    sf.Spec.Cache,
			Unpack:   sf.Spec.Unpack,
		}})
		atomic.AddInt64(&s.m.stats.PeerTransfers, 1)
		if s.rec != nil {
			s.rec.Record(policy.TraceStage(sf))
		}
	case policy.StageDirect:
		obj := sf.Spec.Object
		if s.m.opts.PeerTransfers && sf.Spec.PeerTransfer {
			if src, alts := s.m.acquireRemoteSource(obj.ID, s.idx, w.id); src != nil {
				// Cross-shard peer sourcing: the policy core planned a
				// manager send because this shard's view holds no
				// replica — but another shard's worker does. Upgrade
				// the transport to a peer fetch from that holder. The
				// decision trace keeps the planned StageDirect: which
				// link carries the bytes across shards is a transport
				// concern, invisible to the pure per-shard policy and
				// to the simulator's replay.
				s.m.catalogAdd(sf.Spec)
				s.view.NotePending(w.v, obj.ID)
				w.fetchSources[obj.ID] = src.id
				w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
					ID:       obj.ID,
					Name:     obj.Name,
					FromAddr: src.hello.DataAddr,
					AltAddrs: alts,
					Source:   src.id,
					Cache:    sf.Spec.Cache,
					Unpack:   sf.Spec.Unpack,
				}})
				atomic.AddInt64(&s.m.stats.PeerTransfers, 1)
				if s.rec != nil {
					s.rec.Record(policy.TraceStage(sf))
				}
				return
			}
		}
		s.directSendLocked(w, sf.Spec)
		if s.rec != nil {
			s.rec.Record(policy.TraceStage(sf))
		}
	case policy.StageRef:
		// Proxy-object input: the per-shard view cannot plan this copy —
		// the bytes never transited the manager — so the shard trace
		// records only that a ref stage ran and the global ref plane
		// plans (and traces) the actual source.
		if s.rec != nil {
			s.rec.Record(policy.TraceStage(sf))
		}
		s.execRefStageLocked(w, sf)
	}
}

// execRefStageLocked resolves one proxy-object input through the ref
// plane and executes the decision. Ref transfers consume no
// view-tracked transfer slots and register no fetch-source record —
// they are bounded by the workers' data-plane serve concurrency, not
// the spanning-tree cap — so the FileAck plumbing sees them as direct
// sends that happen to arrive from a peer.
func (s *shard) execRefStageLocked(w *workerState, sf policy.StageFile) {
	m := s.m
	_, catalogKnown := m.catalogGet(sf.Object)
	d := m.refs.resolve(w.id, sf.Object, catalogKnown)
	switch d.Mode {
	case policy.ResolveReady:
		// The consumer already holds (or is receiving) a replica.
	case policy.ResolvePeer:
		addr, altAddrs := m.refSourceAddrs(d.Src, d.Alts)
		if addr == "" {
			// The chosen holder died between decision and execution; the
			// next membership event re-plans through rehome. Fall back to
			// the manager's catalog when it happens to have the bytes.
			if fs, known := m.catalogGet(sf.Object); known {
				s.directSendLocked(w, fs)
			}
			return
		}
		s.notePendingLocked(w, sf.Object)
		w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
			ID:       sf.Object,
			Name:     sf.Spec.Object.Name,
			FromAddr: addr,
			AltAddrs: altAddrs,
			Cache:    true,
			Size:     d.Size,
		}})
		atomic.AddInt64(&m.stats.RefTransfers, 1)
	case policy.ResolveShared:
		s.notePendingLocked(w, sf.Object)
		w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
			ID:     sf.Object,
			Name:   sf.Spec.Object.Name,
			Shared: true,
			Own:    d.Promote,
			Cache:  true,
			Size:   d.Size,
		}})
	case policy.ResolveDirect:
		if fs, known := m.catalogGet(sf.Object); known {
			s.directSendLocked(w, fs)
		}
	case policy.ResolveLost:
		// No copy survives anywhere. The dispatch proceeds and fails on
		// the worker with a retryable "input not staged", drawing on the
		// spec's retry budget — the documented owner-death semantics.
	}
}

// restageRefLocked recovers a failed ref fetch: the walk proved the
// replica records unreliable, so retract every non-owner holder and
// plan a fresh traced resolve against what survives. Reports whether a
// replacement transfer (whose own ack will settle the waiters) was
// issued.
func (s *shard) restageRefLocked(w *workerState, id string) bool {
	m := s.m
	name, size, tracked := m.refs.refMeta(id)
	if !tracked {
		return false
	}
	m.refs.invalidateHolders(id)
	_, catalogKnown := m.catalogGet(id)
	d := m.refs.resolve(w.id, id, catalogKnown)
	switch d.Mode {
	case policy.ResolvePeer:
		addr, altAddrs := m.refSourceAddrs(d.Src, d.Alts)
		if addr == "" {
			return false
		}
		s.notePendingLocked(w, id)
		w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
			ID: id, Name: name, FromAddr: addr, AltAddrs: altAddrs,
			Cache: true, Size: size,
		}})
		atomic.AddInt64(&m.stats.RefTransfers, 1)
		atomic.AddInt64(&m.stats.Restaged, 1)
		return true
	case policy.ResolveShared:
		s.notePendingLocked(w, id)
		w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
			ID: id, Name: name, Shared: true, Own: d.Promote,
			Cache: true, Size: size,
		}})
		atomic.AddInt64(&m.stats.Restaged, 1)
		return true
	case policy.ResolveDirect:
		if fs, known := m.catalogGet(id); known {
			s.directSendLocked(w, fs)
			atomic.AddInt64(&m.stats.Restaged, 1)
			return true
		}
	}
	return false
}

// acquireRemoteSource picks a live holder of the object outside shard
// idx with a free cross-shard transfer slot, reserving the slot, and
// collects up to two other holders' data addresses as worker-side
// retry alternates. Holders are scanned in sorted-ID order for
// determinism. Cross-shard slots are accounted in the global registry
// (peerSource.out), separate from the per-shard policy views — the
// same cap applies to each domain independently.
func (m *Manager) acquireRemoteSource(objID string, idx int, dstID string) (*workerState, []string) {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	hs := m.holders[objID]
	if len(hs) == 0 {
		return nil, nil
	}
	var src *workerState
	var alts []string
	for _, id := range core.SortedKeys(hs) {
		if id == dstID {
			continue
		}
		p := m.peers[id]
		if p == nil {
			continue
		}
		if src == nil && m.router.ShardOf(id) != idx && p.out < m.opts.PeerTransferCap {
			p.out++
			src = p.w
			continue
		}
		if len(alts) < 2 {
			alts = append(alts, p.w.hello.DataAddr)
		}
	}
	if src == nil {
		return nil, nil
	}
	return src, alts
}

// releaseRemoteSource returns a cross-shard transfer slot. A no-op if
// the source died in the meantime — its slots died with it.
func (m *Manager) releaseRemoteSource(workerID string) {
	m.obsMu.Lock()
	if p := m.peers[workerID]; p != nil && p.out > 0 {
		p.out--
	}
	m.obsMu.Unlock()
}

// directSendLocked stages an object from the manager's own link as a
// bulk frame: JSON header plus the raw bytes, no base64 expansion.
func (s *shard) directSendLocked(w *workerState, fs core.FileSpec) {
	obj := fs.Object
	s.m.catalogAdd(fs)
	s.view.NotePending(w.v, obj.ID)
	w.enqueue(outMsg{t: proto.MsgPutFileBulk, v: proto.PutFileHdr{
		File: proto.FileHdr{
			ID:           obj.ID,
			Name:         obj.Name,
			Kind:         int(obj.Kind),
			LogicalSize:  obj.LogicalSize,
			UnpackedSize: obj.UnpackedSize,
		},
		Cache:  fs.Cache,
		Unpack: fs.Unpack,
	}, bulk: true, payload: obj.Data})
	atomic.AddInt64(&s.m.stats.DirectTransfers, 1)
}

// ---- task scheduling ----

// scheduleTasksLocked plans placements for the whole pending-task
// queue in one batched policy call, then executes the returned
// decisions in order. PlanTaskBatch's sequential-equivalence contract
// makes this emit exactly the decision sequence of the old
// plan-one/execute-one loop.
func (s *shard) scheduleTasksLocked() (forward []pendingTask, target int) {
	if len(s.pendingTasks) == 0 {
		return nil, 0
	}
	next, hasNext := s.m.router.NextAlive(s.idx)
	// Static dead ends leave before planning: a task no non-avoided
	// worker here is large enough to ever hold must not reach the
	// planner, whose avoid fallback would otherwise pin it to the
	// avoided worker forever. The global preference order is
	// non-avoided local, then any other shard, then the avoided
	// worker (once the hop budget proves nowhere else wants it).
	if hasNext {
		keep := s.pendingTasks[:0]
		for _, pt := range s.pendingTasks {
			if pt.hops < len(s.m.shards) && !s.anyEligibleWorkerLocked(pt) {
				pt.hops++
				forward = append(forward, pt)
				continue
			}
			keep = append(keep, pt)
		}
		s.pendingTasks = keep
		if len(s.pendingTasks) == 0 {
			return forward, next
		}
	}
	reqs := s.reqScratch[:0]
	for _, pt := range s.pendingTasks {
		reqs = append(reqs, policy.TaskReq{Key: pt.key, Res: pt.t.Resources, Inputs: pt.t.Inputs, Avoid: pt.avoid, Tenant: pt.t.TenantID})
	}
	decisions := s.view.PlanTaskBatchInto(s.planScratch[:0], reqs, nil)
	s.reqScratch, s.planScratch = reqs, decisions
	remaining := s.pendingTasks[:0]
	for i, pt := range s.pendingTasks {
		d := decisions[i]
		if d.Worker == nil {
			if len(d.Blocked) > 0 {
				// Blocked behind first copies in flight: each object's
				// next ack re-dirties the task queue.
				for _, obj := range d.Blocked {
					s.addObjWaiterLocked(obj, "")
				}
				remaining = append(remaining, pt)
				continue
			}
			// Capacity exists on paper but is committed, and nothing
			// local is in flight to free it (idle deployments pinning
			// workers): hop to the next live shard.
			if hasNext && pt.hops < len(s.m.shards) && s.quietLocked() {
				pt.hops++
				forward = append(forward, pt)
				continue
			}
			remaining = append(remaining, pt)
			continue
		}
		s.execPlaceTaskLocked(pt, d)
	}
	s.pendingTasks = remaining
	return forward, next
}

// execPlaceTaskLocked carries out one planned task placement: staging,
// resource commitment, dispatch, and inflight registration.
func (s *shard) execPlaceTaskLocked(pt pendingTask, d policy.PlaceTask) {
	t := pt.t
	w := s.workers[d.Worker.ID]
	if s.rec != nil {
		s.rec.Record(policy.TraceTask(pt.key, d))
	}
	start := time.Now()
	for _, sf := range d.Stages {
		s.execStageLocked(w, sf)
	}
	w.v.Commit = w.v.Commit.Add(t.Resources)
	w.enqueue(outMsg{t: proto.MsgRunTask, v: t})
	e := &inflightEntry{
		worker:  w.id,
		ringKey: pt.key,
		task:    t,
		retries: pt.retries,
		sentAt:  start,
		waiting: map[string]bool{},
	}
	// TransferTime runs from dispatch until the last input this
	// dispatch depends on is acked on the worker — not the time
	// spent enqueueing messages into in-memory channels. Register
	// in the worker's ack-waiter index so the ack finds this entry
	// without scanning the inflight table.
	for _, in := range t.Inputs {
		if in.Object != nil && w.v.Pending[in.Object.ID] {
			e.waiting[in.Object.ID] = true
			w.ackWaiters[in.Object.ID] = append(w.ackWaiters[in.Object.ID], e)
		}
	}
	s.inflight[t.ID] = e
}

// ---- invocation scheduling (§3.5.2) ----

// scheduleLibQueueLocked runs one placement pass over a single
// library's pending invocations. Ready-instance placements are planned
// in batches: one PlaceReadyBatch call covers a run of queue entries
// sharing the same avoid preference, and its cached decisions are
// popped as the run executes (deploys started mid-pass never change a
// ready placement — a new instance is not Ready until its ack — so the
// cache stays valid for the whole pass). When an invocation can
// neither be placed nor make progress by deploying a new instance, the
// rest of the queue is left untouched: every later invocation of the
// same library would hit the identical cluster state, so rescanning it
// is pure waste. (Per-invocation validation of the skipped tail is
// deferred until the queue drains to it.)
func (s *shard) scheduleLibQueueLocked(lib string) {
	q := s.pendingInvs[lib]
	if len(q) == 0 {
		return
	}
	remaining := q[:0]
	// Installs in flight at pass start can each absorb one queued
	// invocation when they ack; deploys started *during* this pass
	// don't join the pool — each one is already the instance its own
	// invocation will run on.
	claimable := s.installing[lib]
	claimed := 0
	var cache []policy.PlaceInvocation
	cacheAvoid := ""
	cacheValid := false
	for i, pi := range q {
		if err := s.validateInvLocked(pi.inv); err != nil {
			atomic.AddInt64(&s.m.stats.Failures, 1)
			s.emitFailure(pi.inv, err)
			continue
		}
		// First choice: a ready instance with a free slot — preferring
		// a worker other than the one a retry just failed on, when
		// possible. The batch is keyed by the avoid preference; cache
		// exhaustion within a run means no admitted capacity remains.
		if !cacheValid || cacheAvoid != pi.avoid {
			// Refilling drops any previous cache slice, so reusing the
			// shard scratch buffer underneath it is safe.
			cache = s.view.PlaceReadyBatchInto(s.invScratch[:0], lib, len(q)-i, policy.Excluding(pi.avoid))
			s.invScratch = cache
			cacheAvoid, cacheValid = pi.avoid, true
		}
		if len(cache) > 0 {
			d := cache[0]
			cache = cache[1:]
			s.execPlaceInvLocked(pi, d)
			continue
		}
		// Avoided-worker fallback: starving beats the preference. Any
		// capacity found here is on the avoided worker — the filtered
		// cache excluded it — so the cache stays exhausted, not stale.
		if pi.avoid != "" && s.placeInvocationOnReadyLocked(pi, nil) {
			continue
		}
		// An install already in flight will serve one queued invocation
		// when its ack arrives; let this invocation claim it instead of
		// over-provisioning another instance.
		if claimed < claimable {
			claimed++
			remaining = append(remaining, pi)
			continue
		}
		remaining = append(remaining, pi)
		if !s.deployForInvocationLocked(pi.inv) {
			remaining = append(remaining, q[i+1:]...)
			break
		}
	}
	s.pendingInvCount -= len(q) - len(remaining)
	if len(remaining) == 0 {
		delete(s.pendingInvs, lib)
	} else {
		s.pendingInvs[lib] = remaining
	}
}

// validateInvLocked rejects invocations that can never run: unknown
// library, quarantined library, unknown function.
func (s *shard) validateInvLocked(inv *core.InvocationSpec) error {
	spec, known := s.m.libSpec(inv.Library)
	if !known {
		return fmt.Errorf("manager: invocation %d names unknown library %q", inv.ID, inv.Library)
	}
	if s.libFailures[inv.Library] >= maxLibraryFailures || s.libInfraFailures[inv.Library] >= maxLibraryInfraFailures {
		return fmt.Errorf("manager: library %q is marked broken after repeated deployment failures", inv.Library)
	}
	for _, f := range spec.Functions {
		if f.Name == inv.Function {
			return nil
		}
	}
	return fmt.Errorf("manager: library %q has no function %q", inv.Library, inv.Function)
}

// emitFailure delivers a synthetic failed result for an unschedulable
// invocation. Called with the shard lock held; deliver never blocks
// the scheduler on a full results channel.
func (s *shard) emitFailure(inv *core.InvocationSpec, err error) {
	s.m.deliver(core.Result{ID: inv.ID, Ok: false, Err: err.Error()})
	// A plane-admitted spec resolving here returns its quota unit;
	// the shard lock is held, so drained wakes park until pump().
	if s.m.planeActive.Load() {
		s.m.plane.release(inv.TenantID, false)
	}
}

// placeInvocationOnReadyLocked plans and executes a single ready
// placement — the unbatched path, used for avoided-worker fallback.
func (s *shard) placeInvocationOnReadyLocked(pi pendingInv, f policy.Filter) bool {
	d := s.view.PlaceReady(pi.inv.Library, f)
	if d.Worker == nil {
		return false
	}
	s.execPlaceInvLocked(pi, d)
	return true
}

// execPlaceInvLocked dispatches inv to the ready instance the policy
// core picked: most free ready slots, minimum worker ID on ties (the
// deterministic order shared with the simulator).
func (s *shard) execPlaceInvLocked(pi pendingInv, d policy.PlaceInvocation) {
	inv := pi.inv
	w := s.workers[d.Worker.ID]
	li := w.libs[inv.Library]
	if s.rec != nil {
		s.rec.Record(policy.TracePlace(inv.Library, d))
	}
	li.SlotsUsed++
	s.libSlotsChangedLocked(w, li)
	w.enqueue(outMsg{t: proto.MsgInvoke, v: inv})
	var e *inflightEntry
	if n := len(s.freeInflight); n > 0 {
		e = s.freeInflight[n-1]
		s.freeInflight[n-1] = nil
		s.freeInflight = s.freeInflight[:n-1]
		*e = inflightEntry{}
	} else {
		e = &inflightEntry{}
	}
	e.worker, e.library, e.inv, e.retries, e.sentAt = w.id, inv.Library, inv, pi.retries, time.Now()
	s.inflight[inv.ID] = e
}

// deployForInvocationLocked asks the policy core for a deploy decision
// for the invocation's library and executes it: evictions first, then
// staging, then the install message. Returns whether a deployment was
// started.
func (s *shard) deployForInvocationLocked(inv *core.InvocationSpec) bool {
	spec, known := s.m.libSpec(inv.Library)
	if !known {
		return false
	}
	var libFiles []core.FileSpec
	if spec.Env != nil {
		libFiles = append(libFiles, *spec.Env)
	}
	libFiles = append(libFiles, spec.Inputs...)
	d := s.view.PlanDeploy(policy.DeploySpec{
		Name:  spec.Name,
		Res:   spec.Resources,
		Files: libFiles,
	}, nil)
	if d.Worker == nil {
		// Workers blocked only on an in-flight first copy of the
		// environment: its ack re-dirties this library's queue.
		for _, obj := range d.Blocked {
			s.addObjWaiterLocked(obj, inv.Library)
		}
		return false
	}
	w := s.workers[d.Worker.ID]
	if s.rec != nil {
		s.rec.Record(policy.TraceDeploy(spec.Name, d))
	}
	for _, e := range d.Evict {
		s.evictLibraryLocked(w, e.Lib)
	}
	for _, sf := range d.Stages {
		s.execStageLocked(w, sf)
	}
	s.installLibraryLocked(w, spec, d.Res)
	// The invocation stays pending until the LibraryAck arrives.
	return true
}

// evictLibraryLocked removes one library instance from a worker,
// releasing its resources and telling the worker to tear it down.
func (s *shard) evictLibraryLocked(w *workerState, name string) {
	li := w.libs[name]
	if li == nil {
		return
	}
	delete(w.libs, name)
	s.view.RemoveLibrary(w.v, name)
	w.v.Commit = w.v.Commit.Sub(li.Res)
	w.enqueue(outMsg{t: proto.MsgRemoveLibrary, v: proto.RemoveLibrary{Library: name}})
	atomic.AddInt64(&s.m.stats.LibrariesEvicted, 1)
}

// evictForLocked plans and executes evictions on w so that need fits.
// The plan is all-or-nothing: if even evicting every idle instance
// cannot make room, nothing is evicted and false comes back.
func (s *shard) evictForLocked(w *workerState, wantLib string, need core.Resources) bool {
	evict, ok := s.view.PlanEviction(w.v, wantLib, need)
	if !ok {
		return false
	}
	for _, e := range evict {
		s.evictLibraryLocked(w, e.Lib)
	}
	return true
}

// deployLibraryLocked stages the library's files on w and installs an
// instance with commitment res. The staging decisions come from the
// policy core; a Wait answer is forced direct because the deploy is
// already committed and the manager's own link is always a valid (if
// less scalable) source.
func (s *shard) deployLibraryLocked(w *workerState, spec *core.LibrarySpec, res core.Resources) {
	var files []core.FileSpec
	if spec.Env != nil {
		files = append(files, *spec.Env)
	}
	files = append(files, spec.Inputs...)
	for _, fs := range files {
		sf := s.view.PlanStage(w.v, fs, nil)
		if sf.Mode == policy.StageWait {
			sf.Mode = policy.StageDirect
		}
		s.execStageLocked(w, sf)
	}
	s.installLibraryLocked(w, spec, res)
}

// installLibraryLocked records the new instance in the view and sends
// the install message.
func (s *shard) installLibraryLocked(w *workerState, spec *core.LibrarySpec, res core.Resources) {
	li := &libInstance{LibraryView: policy.LibraryView{
		Name:         spec.Name,
		Slots:        spec.SlotCount(),
		MaxInstances: 1,
		Res:          res,
	}}
	w.libs[spec.Name] = li
	s.view.AddInstance(w.v, &li.LibraryView)
	w.v.Commit = w.v.Commit.Add(res)
	s.installing[spec.Name]++
	w.enqueue(outMsg{t: proto.MsgInstallLibrary, v: spec})
	atomic.AddInt64(&s.m.stats.LibrariesDeployed, 1)
}

// ObjectHolders returns how many workers hold the object — visibility
// for distribution tests. It reads the global replica registry and
// never touches any shard's scheduler lock.
func (m *Manager) ObjectHolders(obj *content.Object) int {
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	return len(m.holders[obj.ID])
}
