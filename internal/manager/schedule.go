package manager

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// The scheduling passes below are invoked from the coalesced wake loop
// (index.go): scheduleTasksLocked when the task queue is dirty and
// scheduleLibQueueLocked per dirty library. They never scan state that
// their dirty mark could not have changed.
//
// Every scheduling decision — which worker runs a task, where a library
// instance deploys, which peer sources a transfer, what gets evicted —
// comes from the pure policy core (internal/policy) reading the
// manager's ClusterView. This file only *executes* decisions: it sends
// messages, moves resource commitments, and reports the resulting
// transitions back into the view. The simulator drives the identical
// policy functions, and the differential test in this package proves
// both drivers emit the same decision sequences.

// ---- staging execution ----

// execStageLocked carries out one staging decision on a worker: a peer
// fetch from the chosen source or a direct bulk send from the manager.
// StageReady decisions are no-ops by construction and StageWait never
// reaches execution (placements with waiting inputs are not committed).
func (m *Manager) execStageLocked(w *workerState, sf policy.StageFile) {
	switch sf.Mode {
	case policy.StagePeer:
		src := m.workers[sf.Src.ID]
		if src == nil {
			// The source died between decision and execution (same lock
			// hold in practice, but the fallback is free): the manager's
			// own link is always valid.
			m.directSendLocked(w, sf.Spec)
			return
		}
		obj := sf.Spec.Object
		m.catalog[obj.ID] = sf.Spec
		src.v.TransfersOut++
		m.view.NotePending(w.v, obj.ID)
		w.fetchSources[obj.ID] = src.id
		w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
			ID:       obj.ID,
			Name:     obj.Name,
			FromAddr: src.hello.DataAddr,
			Source:   src.id,
			Cache:    sf.Spec.Cache,
			Unpack:   sf.Spec.Unpack,
		}})
		atomic.AddInt64(&m.stats.PeerTransfers, 1)
		if m.rec != nil {
			m.rec.Record(policy.TraceStage(sf))
		}
	case policy.StageDirect:
		m.directSendLocked(w, sf.Spec)
		if m.rec != nil {
			m.rec.Record(policy.TraceStage(sf))
		}
	}
}

// directSendLocked stages an object from the manager's own link as a
// bulk frame: JSON header plus the raw bytes, no base64 expansion.
func (m *Manager) directSendLocked(w *workerState, fs core.FileSpec) {
	obj := fs.Object
	m.catalog[obj.ID] = fs
	m.view.NotePending(w.v, obj.ID)
	w.enqueue(outMsg{t: proto.MsgPutFileBulk, v: proto.PutFileHdr{
		File: proto.FileHdr{
			ID:           obj.ID,
			Name:         obj.Name,
			Kind:         int(obj.Kind),
			LogicalSize:  obj.LogicalSize,
			UnpackedSize: obj.UnpackedSize,
		},
		Cache:  fs.Cache,
		Unpack: fs.Unpack,
	}, bulk: true, payload: obj.Data})
	atomic.AddInt64(&m.stats.DirectTransfers, 1)
}

// ---- task scheduling ----

func (m *Manager) scheduleTasksLocked() {
	if len(m.pendingTasks) == 0 {
		return
	}
	remaining := m.pendingTasks[:0]
	for _, pt := range m.pendingTasks {
		if !m.tryPlaceTaskLocked(pt) {
			remaining = append(remaining, pt)
		}
	}
	m.pendingTasks = remaining
}

func (m *Manager) tryPlaceTaskLocked(pt pendingTask) bool {
	// Retries prefer a worker other than the one that just failed; if
	// no other placement exists, the avoided worker is better than
	// starving.
	avoid := m.avoid[pt.t.ID]
	if m.tryPlaceTaskOnLocked(pt, policy.Excluding(avoid)) {
		return true
	}
	if avoid != "" {
		return m.tryPlaceTaskOnLocked(pt, nil)
	}
	return false
}

func (m *Manager) tryPlaceTaskOnLocked(pt pendingTask, f policy.Filter) bool {
	t := pt.t
	d := m.view.PlanTask(pt.key, t.Resources, t.Inputs, f)
	if d.Worker == nil {
		// Blocked behind first copies in flight: each object's next ack
		// re-dirties the task queue.
		for _, obj := range d.Blocked {
			m.addObjWaiterLocked(obj, "")
		}
		return false
	}
	w := m.workers[d.Worker.ID]
	if m.rec != nil {
		m.rec.Record(policy.TraceTask(pt.key, d))
	}
	start := time.Now()
	for _, sf := range d.Stages {
		m.execStageLocked(w, sf)
	}
	w.v.Commit = w.v.Commit.Add(t.Resources)
	w.enqueue(outMsg{t: proto.MsgRunTask, v: t})
	e := &inflightEntry{
		worker:  w.id,
		ringKey: pt.key,
		task:    t,
		sentAt:  start,
		waiting: map[string]bool{},
	}
	// TransferTime runs from dispatch until the last input this
	// dispatch depends on is acked on the worker — not the time
	// spent enqueueing messages into in-memory channels. Register
	// in the worker's ack-waiter index so the ack finds this entry
	// without scanning the inflight table.
	for _, in := range t.Inputs {
		if in.Object != nil && w.v.Pending[in.Object.ID] {
			e.waiting[in.Object.ID] = true
			w.ackWaiters[in.Object.ID] = append(w.ackWaiters[in.Object.ID], e)
		}
	}
	m.inflight[t.ID] = e
	return true
}

// ---- invocation scheduling (§3.5.2) ----

// scheduleLibQueueLocked runs one placement pass over a single
// library's pending invocations. When an invocation can neither be
// placed nor make progress by deploying a new instance, the rest of
// the queue is left untouched: every later invocation of the same
// library would hit the identical cluster state, so rescanning it is
// pure waste. (Per-invocation validation of the skipped tail is
// deferred until the queue drains to it.)
func (m *Manager) scheduleLibQueueLocked(lib string) {
	q := m.pendingInvs[lib]
	if len(q) == 0 {
		return
	}
	remaining := q[:0]
	// Installs in flight at pass start can each absorb one queued
	// invocation when they ack; deploys started *during* this pass
	// don't join the pool — each one is already the instance its own
	// invocation will run on.
	claimable := m.installing[lib]
	claimed := 0
	for i, inv := range q {
		placed, progressed, err := m.tryPlaceInvocationLocked(inv, &claimed, claimable)
		if err != nil {
			atomic.AddInt64(&m.stats.Failures, 1)
			m.emitFailure(inv, err)
			continue
		}
		if placed {
			continue
		}
		remaining = append(remaining, inv)
		if !progressed {
			remaining = append(remaining, q[i+1:]...)
			break
		}
	}
	m.pendingInvCount -= len(q) - len(remaining)
	if len(remaining) == 0 {
		delete(m.pendingInvs, lib)
	} else {
		m.pendingInvs[lib] = remaining
	}
}

// emitFailure delivers a synthetic failed result for an unschedulable
// invocation. Called with the lock held; deliver never blocks the
// scheduler on a full results channel.
func (m *Manager) emitFailure(inv *core.InvocationSpec, err error) {
	delete(m.retries, inv.ID)
	delete(m.avoid, inv.ID)
	m.deliver(core.Result{ID: inv.ID, Ok: false, Err: err.Error()})
}

// tryPlaceInvocationLocked attempts one invocation. placed means it
// was dispatched; progressed means the invocation is provisioned for —
// it deployed a new library instance, or claimed one already
// installing — even though it is itself still waiting. claimed counts
// the in-flight installs earlier invocations in this pass claimed out
// of the claimable pool (installs in flight at pass start), so one
// slow install absorbs exactly one queued invocation instead of the
// whole queue triggering redundant deploys.
func (m *Manager) tryPlaceInvocationLocked(inv *core.InvocationSpec, claimed *int, claimable int) (placed, progressed bool, err error) {
	spec, known := m.libSpecs[inv.Library]
	if !known {
		return false, false, fmt.Errorf("manager: invocation %d names unknown library %q", inv.ID, inv.Library)
	}
	if m.libFailures[inv.Library] >= maxLibraryFailures || m.libInfraFailures[inv.Library] >= maxLibraryInfraFailures {
		return false, false, fmt.Errorf("manager: library %q is marked broken after repeated deployment failures", inv.Library)
	}
	hasFn := false
	for _, f := range spec.Functions {
		if f.Name == inv.Function {
			hasFn = true
			break
		}
	}
	if !hasFn {
		return false, false, fmt.Errorf("manager: library %q has no function %q", inv.Library, inv.Function)
	}

	// First choice: a ready instance with a free slot — preferring a
	// worker other than the one a retry just failed on, when possible.
	avoid := m.avoid[inv.ID]
	if m.placeInvocationOnReadyLocked(inv, policy.Excluding(avoid)) {
		return true, true, nil
	}
	if avoid != "" && m.placeInvocationOnReadyLocked(inv, nil) {
		return true, true, nil
	}

	// An install already in flight will serve one queued invocation
	// when its ack arrives; let this invocation claim it instead of
	// over-provisioning another instance.
	if claimed != nil && *claimed < claimable {
		*claimed++
		return false, true, nil
	}

	progressed = m.deployForInvocationLocked(inv, spec)
	return false, progressed, nil
}

// placeInvocationOnReadyLocked dispatches inv to the ready instance the
// policy core picks: most free ready slots, minimum worker ID on ties
// (the deterministic order shared with the simulator).
func (m *Manager) placeInvocationOnReadyLocked(inv *core.InvocationSpec, f policy.Filter) bool {
	d := m.view.PlaceReady(inv.Library, f)
	if d.Worker == nil {
		return false
	}
	w := m.workers[d.Worker.ID]
	li := w.libs[inv.Library]
	if m.rec != nil {
		m.rec.Record(policy.TracePlace(inv.Library, d))
	}
	li.SlotsUsed++
	m.libSlotsChangedLocked(w, li)
	w.enqueue(outMsg{t: proto.MsgInvoke, v: inv})
	m.inflight[inv.ID] = &inflightEntry{worker: w.id, library: inv.Library, inv: inv, sentAt: time.Now()}
	return true
}

// deployForInvocationLocked asks the policy core for a deploy decision
// for the invocation's library and executes it: evictions first, then
// staging, then the install message. Returns whether a deployment was
// started.
func (m *Manager) deployForInvocationLocked(inv *core.InvocationSpec, spec *core.LibrarySpec) bool {
	var libFiles []core.FileSpec
	if spec.Env != nil {
		libFiles = append(libFiles, *spec.Env)
	}
	libFiles = append(libFiles, spec.Inputs...)
	d := m.view.PlanDeploy(policy.DeploySpec{
		Name:  spec.Name,
		Res:   spec.Resources,
		Files: libFiles,
	}, nil)
	if d.Worker == nil {
		// Workers blocked only on an in-flight first copy of the
		// environment: its ack re-dirties this library's queue.
		for _, obj := range d.Blocked {
			m.addObjWaiterLocked(obj, inv.Library)
		}
		return false
	}
	w := m.workers[d.Worker.ID]
	if m.rec != nil {
		m.rec.Record(policy.TraceDeploy(spec.Name, d))
	}
	for _, e := range d.Evict {
		m.evictLibraryLocked(w, e.Lib)
	}
	for _, sf := range d.Stages {
		m.execStageLocked(w, sf)
	}
	m.installLibraryLocked(w, spec, d.Res)
	// The invocation stays pending until the LibraryAck arrives.
	return true
}

// evictLibraryLocked removes one library instance from a worker,
// releasing its resources and telling the worker to tear it down.
func (m *Manager) evictLibraryLocked(w *workerState, name string) {
	li := w.libs[name]
	if li == nil {
		return
	}
	delete(w.libs, name)
	m.view.RemoveLibrary(w.v, name)
	w.v.Commit = w.v.Commit.Sub(li.Res)
	w.enqueue(outMsg{t: proto.MsgRemoveLibrary, v: proto.RemoveLibrary{Library: name}})
	atomic.AddInt64(&m.stats.LibrariesEvicted, 1)
}

// evictForLocked plans and executes evictions on w so that need fits.
// The plan is all-or-nothing: if even evicting every idle instance
// cannot make room, nothing is evicted and false comes back.
func (m *Manager) evictForLocked(w *workerState, wantLib string, need core.Resources) bool {
	evict, ok := m.view.PlanEviction(w.v, wantLib, need)
	if !ok {
		return false
	}
	for _, e := range evict {
		m.evictLibraryLocked(w, e.Lib)
	}
	return true
}

// deployLibraryLocked stages the library's files on w and installs an
// instance with commitment res. The staging decisions come from the
// policy core; a Wait answer is forced direct because the deploy is
// already committed and the manager's own link is always a valid (if
// less scalable) source.
func (m *Manager) deployLibraryLocked(w *workerState, spec *core.LibrarySpec, res core.Resources) {
	var files []core.FileSpec
	if spec.Env != nil {
		files = append(files, *spec.Env)
	}
	files = append(files, spec.Inputs...)
	for _, fs := range files {
		sf := m.view.PlanStage(w.v, fs, nil)
		if sf.Mode == policy.StageWait {
			sf.Mode = policy.StageDirect
		}
		m.execStageLocked(w, sf)
	}
	m.installLibraryLocked(w, spec, res)
}

// installLibraryLocked records the new instance in the view and sends
// the install message.
func (m *Manager) installLibraryLocked(w *workerState, spec *core.LibrarySpec, res core.Resources) {
	li := &libInstance{LibraryView: policy.LibraryView{
		Name:         spec.Name,
		Slots:        spec.SlotCount(),
		MaxInstances: 1,
		Res:          res,
	}}
	w.libs[spec.Name] = li
	m.view.AddInstance(w.v, &li.LibraryView)
	w.v.Commit = w.v.Commit.Add(res)
	m.installing[spec.Name]++
	w.enqueue(outMsg{t: proto.MsgInstallLibrary, v: spec})
	atomic.AddInt64(&m.stats.LibrariesDeployed, 1)
}

// ObjectHolders returns how many workers hold the object — visibility
// for distribution tests. It reads the maintained replica counter and
// never touches the scheduler lock.
func (m *Manager) ObjectHolders(obj *content.Object) int {
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	return m.holderCount[obj.ID]
}
