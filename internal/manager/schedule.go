package manager

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/proto"
)

// The scheduling passes below are invoked from the coalesced wake loop
// (index.go): scheduleTasksLocked when the task queue is dirty and
// scheduleLibQueueLocked per dirty library. They never scan state that
// their dirty mark could not have changed.

// ---- file staging ----

// fileReady reports whether the worker already has (or will have, via
// an earlier message on the same ordered connection) the object.
func fileReady(w *workerState, id string) bool {
	return w.files[id] || w.pending[id]
}

// canStageFileLocked reports whether obj could be made present on w
// right now, and stages it when commit is true. The policy implements
// §3.3's distribution discipline for cacheable, peer-transferable
// objects: the manager sends the first copy itself; while that copy is
// in flight every other worker waits; once a worker confirms a replica
// it becomes a transfer source for up to PeerTransferCap concurrent
// peers, growing a spanning tree. Non-cacheable objects (per-call
// arguments) always flow directly from the manager.
//
// When the answer is "not yet" because a first copy is in flight, the
// blocking object's ID comes back so the caller can register an
// objWaiter and be woken by exactly that object's next ack.
func (m *Manager) canStageFileLocked(w *workerState, fs core.FileSpec, commit bool) (bool, string) {
	obj := fs.Object
	if obj == nil {
		return false, ""
	}
	if fileReady(w, obj.ID) {
		return true, ""
	}
	if fs.Cache && fs.PeerTransfer && m.opts.PeerTransfers {
		if src := m.pickSourceLocked(w, obj.ID); src != nil {
			if commit {
				m.catalog[obj.ID] = fs
				src.transfersOut++
				m.notePendingLocked(w, obj.ID)
				w.fetchSources[obj.ID] = src.id
				w.enqueue(outMsg{t: proto.MsgFetchFile, v: proto.FetchFile{
					ID:       obj.ID,
					Name:     obj.Name,
					FromAddr: src.hello.DataAddr,
					Cache:    fs.Cache,
					Unpack:   fs.Unpack,
				}})
				atomic.AddInt64(&m.stats.PeerTransfers, 1)
			}
			return true, ""
		}
		// No confirmed source yet. If a first copy is already in flight
		// somewhere, wait for it instead of flooding direct sends — but
		// only during the check pass: once a dispatch is committed the
		// file must move now, and the manager's own link is always a
		// valid (if less scalable) source. The in-flight count makes
		// this O(1); fileReady above already excluded w itself.
		if !commit && m.pendingCopies[obj.ID] > 0 {
			return false, obj.ID
		}
	}
	if commit {
		m.directSendLocked(w, fs)
	}
	return true, ""
}

// directSendLocked stages an object from the manager's own link as a
// bulk frame: JSON header plus the raw bytes, no base64 expansion.
func (m *Manager) directSendLocked(w *workerState, fs core.FileSpec) {
	obj := fs.Object
	m.catalog[obj.ID] = fs
	m.notePendingLocked(w, obj.ID)
	w.enqueue(outMsg{t: proto.MsgPutFileBulk, v: proto.PutFileHdr{
		File: proto.FileHdr{
			ID:           obj.ID,
			Name:         obj.Name,
			Kind:         int(obj.Kind),
			LogicalSize:  obj.LogicalSize,
			UnpackedSize: obj.UnpackedSize,
		},
		Cache:  fs.Cache,
		Unpack: fs.Unpack,
	}, bulk: true, payload: obj.Data})
	atomic.AddInt64(&m.stats.DirectTransfers, 1)
}

// pickSourceLocked chooses a worker that has obj cached and has a free
// outbound transfer slot, preferring same-cluster sources when cluster
// awareness is on. Candidates come from the holders index — only
// workers actually holding a replica are examined.
func (m *Manager) pickSourceLocked(dst *workerState, id string) *workerState {
	var fallback *workerState
	for _, cand := range m.holders[id] {
		if cand.id == dst.id || !cand.alive {
			continue
		}
		if cand.transfersOut >= m.opts.PeerTransferCap {
			continue
		}
		if m.opts.ClusterAware && cand.hello.Cluster == dst.hello.Cluster {
			return cand
		}
		if fallback == nil {
			fallback = cand
		}
	}
	if m.opts.ClusterAware && fallback != nil && fallback.hello.Cluster != dst.hello.Cluster {
		// Cross-cluster peer links are the constrained ones (Figure 3c);
		// prefer the manager's own link instead.
		return nil
	}
	return fallback
}

// canStageAllLocked checks (and optionally performs) staging for a set
// of file specs on one worker, returning the blocking object ID when
// an in-flight first copy is the reason staging must wait.
func (m *Manager) canStageAllLocked(w *workerState, specs []core.FileSpec, commit bool) (bool, string) {
	for _, fs := range specs {
		if ok, blockedOn := m.canStageFileLocked(w, fs, false); !ok {
			return false, blockedOn
		}
	}
	if commit {
		for _, fs := range specs {
			m.canStageFileLocked(w, fs, true)
		}
	}
	return true, ""
}

// ---- task scheduling ----

func (m *Manager) scheduleTasksLocked() {
	if len(m.pendingTasks) == 0 {
		return
	}
	remaining := m.pendingTasks[:0]
	for _, pt := range m.pendingTasks {
		if !m.tryPlaceTaskLocked(pt) {
			remaining = append(remaining, pt)
		}
	}
	m.pendingTasks = remaining
}

func (m *Manager) tryPlaceTaskLocked(pt pendingTask) bool {
	// Retries prefer a worker other than the one that just failed; if
	// no other placement exists, the avoided worker is better than
	// starving.
	if m.tryPlaceTaskOnLocked(pt, m.avoid[pt.t.ID]) {
		return true
	}
	if m.avoid[pt.t.ID] != "" {
		return m.tryPlaceTaskOnLocked(pt, "")
	}
	return false
}

func (m *Manager) tryPlaceTaskOnLocked(pt pendingTask, avoid string) bool {
	t := pt.t
	for _, wid := range m.ring.Sequence(pt.key, 0) {
		w := m.workers[wid]
		if w == nil || !w.alive || w.id == avoid {
			continue
		}
		if !t.Resources.Fits(w.total.Sub(w.commit)) {
			continue
		}
		if ok, blockedOn := m.canStageAllLocked(w, t.Inputs, false); !ok {
			if blockedOn != "" {
				// Blocked behind a first copy in flight: that object's
				// next ack re-dirties the task queue.
				m.addObjWaiterLocked(blockedOn, "")
			}
			continue
		}
		start := time.Now()
		m.canStageAllLocked(w, t.Inputs, true)
		w.commit = w.commit.Add(t.Resources)
		w.enqueue(outMsg{t: proto.MsgRunTask, v: t})
		e := &inflightEntry{
			worker:  w.id,
			ringKey: pt.key,
			task:    t,
			sentAt:  start,
			waiting: map[string]bool{},
		}
		// TransferTime runs from dispatch until the last input this
		// dispatch depends on is acked on the worker — not the time
		// spent enqueueing messages into in-memory channels. Register
		// in the worker's ack-waiter index so the ack finds this entry
		// without scanning the inflight table.
		for _, in := range t.Inputs {
			if in.Object != nil && w.pending[in.Object.ID] {
				e.waiting[in.Object.ID] = true
				w.ackWaiters[in.Object.ID] = append(w.ackWaiters[in.Object.ID], e)
			}
		}
		m.inflight[t.ID] = e
		return true
	}
	return false
}

// ---- invocation scheduling (§3.5.2) ----

// scheduleLibQueueLocked runs one placement pass over a single
// library's pending invocations. When an invocation can neither be
// placed nor make progress by deploying a new instance, the rest of
// the queue is left untouched: every later invocation of the same
// library would hit the identical cluster state, so rescanning it is
// pure waste. (Per-invocation validation of the skipped tail is
// deferred until the queue drains to it.)
func (m *Manager) scheduleLibQueueLocked(lib string) {
	q := m.pendingInvs[lib]
	if len(q) == 0 {
		return
	}
	remaining := q[:0]
	for i, inv := range q {
		placed, progressed, err := m.tryPlaceInvocationLocked(inv)
		if err != nil {
			atomic.AddInt64(&m.stats.Failures, 1)
			m.emitFailure(inv, err)
			continue
		}
		if placed {
			continue
		}
		remaining = append(remaining, inv)
		if !progressed {
			remaining = append(remaining, q[i+1:]...)
			break
		}
	}
	m.pendingInvCount -= len(q) - len(remaining)
	if len(remaining) == 0 {
		delete(m.pendingInvs, lib)
	} else {
		m.pendingInvs[lib] = remaining
	}
}

// emitFailure delivers a synthetic failed result for an unschedulable
// invocation. Called with the lock held; deliver never blocks the
// scheduler on a full results channel.
func (m *Manager) emitFailure(inv *core.InvocationSpec, err error) {
	delete(m.retries, inv.ID)
	delete(m.avoid, inv.ID)
	m.deliver(core.Result{ID: inv.ID, Ok: false, Err: err.Error()})
}

// tryPlaceInvocationLocked attempts one invocation. placed means it
// was dispatched; progressed means the attempt changed cluster state
// (deployed a library instance) even though the invocation itself is
// still waiting.
func (m *Manager) tryPlaceInvocationLocked(inv *core.InvocationSpec) (placed, progressed bool, err error) {
	spec, known := m.libSpecs[inv.Library]
	if !known {
		return false, false, fmt.Errorf("manager: invocation %d names unknown library %q", inv.ID, inv.Library)
	}
	if m.libFailures[inv.Library] >= maxLibraryFailures || m.libInfraFailures[inv.Library] >= maxLibraryInfraFailures {
		return false, false, fmt.Errorf("manager: library %q is marked broken after repeated deployment failures", inv.Library)
	}
	hasFn := false
	for _, f := range spec.Functions {
		if f.Name == inv.Function {
			hasFn = true
			break
		}
	}
	if !hasFn {
		return false, false, fmt.Errorf("manager: library %q has no function %q", inv.Library, inv.Function)
	}

	// First choice: a ready instance with a free slot — preferring a
	// worker other than the one a retry just failed on, when possible.
	if m.placeInvocationOnReadyLocked(inv, spec, m.avoid[inv.ID]) {
		return true, true, nil
	}
	if m.avoid[inv.ID] != "" && m.placeInvocationOnReadyLocked(inv, spec, "") {
		return true, true, nil
	}

	progressed = m.deployForInvocationLocked(inv, spec)
	return false, progressed, nil
}

// placeInvocationOnReadyLocked dispatches inv to a ready instance with
// a free slot, skipping the avoided worker. Candidates come from the
// readyFree index (§3.5.2) — only workers that actually hold a ready
// instance with room are examined. Among them the least-loaded
// instance wins, with worker ID as the deterministic tie-break.
func (m *Manager) placeInvocationOnReadyLocked(inv *core.InvocationSpec, spec *core.LibrarySpec, avoid string) bool {
	var best *workerState
	var bestLi *libInstance
	bestFree := 0
	for _, w := range m.readyFree[inv.Library] {
		if !w.alive || w.id == avoid {
			continue
		}
		li := w.libs[inv.Library]
		if li == nil || !li.ready || li.slotsUsed >= spec.SlotCount() {
			continue
		}
		free := spec.SlotCount() - li.slotsUsed
		if best == nil || free > bestFree || (free == bestFree && w.id < best.id) {
			best, bestLi, bestFree = w, li, free
		}
	}
	if best == nil {
		return false
	}
	bestLi.slotsUsed++
	m.libSlotsChangedLocked(best, bestLi)
	best.enqueue(outMsg{t: proto.MsgInvoke, v: inv})
	m.inflight[inv.ID] = &inflightEntry{worker: best.id, library: inv.Library, inv: inv, sentAt: time.Now()}
	return true
}

// deployForInvocationLocked tries to deploy a new instance of the
// invocation's library, returning whether a deployment was started.
func (m *Manager) deployForInvocationLocked(inv *core.InvocationSpec, spec *core.LibrarySpec) bool {
	// Every worker already has an instance (installing or ready): the
	// ring walk below would find nothing, so skip it — this is the
	// steady state of a saturated cluster.
	if m.libOn[inv.Library] >= len(m.workers) {
		return false
	}
	// Second choice: deploy a new instance on the next ring worker with
	// room, evicting an empty foreign library if allowed (§3.5.2).
	for _, wid := range m.ring.Sequence(inv.Library, 0) {
		w := m.workers[wid]
		if w == nil || !w.alive {
			continue
		}
		if _, already := w.libs[inv.Library]; already {
			continue // installed or installing here
		}
		need := spec.Resources
		if need == (core.Resources{}) {
			need = w.total
		}
		var libFiles []core.FileSpec
		if spec.Env != nil {
			libFiles = append(libFiles, *spec.Env)
		}
		libFiles = append(libFiles, spec.Inputs...)
		if ok, blockedOn := m.canStageAllLocked(w, libFiles, false); !ok {
			if blockedOn != "" {
				// The environment's first copy is in flight: its ack
				// re-dirties this library's queue.
				m.addObjWaiterLocked(blockedOn, inv.Library)
			}
			continue
		}
		if !need.Fits(w.total.Sub(w.commit)) {
			if !m.opts.EvictEmptyLibraries || !m.evictEmptyLocked(w, inv.Library, need) {
				continue
			}
		}
		m.deployLibraryLocked(w, spec, need)
		// The invocation stays pending until the LibraryAck arrives.
		return true
	}
	return false
}

// evictEmptyLocked removes idle instances of other libraries on w until
// `need` fits, returning whether it succeeded. Candidates are visited
// in sorted library-name order so eviction — and therefore stats and
// test outcomes — is deterministic run to run.
func (m *Manager) evictEmptyLocked(w *workerState, wantLib string, need core.Resources) bool {
	names := make([]string, 0, len(w.libs))
	for name := range w.libs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		li := w.libs[name]
		if name == wantLib || li.slotsUsed > 0 || !li.ready {
			continue
		}
		delete(w.libs, name)
		m.decLibOnLocked(name)
		m.removeReadyLocked(name, w.id)
		w.commit = w.commit.Sub(li.res)
		w.enqueue(outMsg{t: proto.MsgRemoveLibrary, v: proto.RemoveLibrary{Library: name}})
		atomic.AddInt64(&m.stats.LibrariesEvicted, 1)
		if need.Fits(w.total.Sub(w.commit)) {
			return true
		}
	}
	return need.Fits(w.total.Sub(w.commit))
}

// deployLibraryLocked stages the library's files and sends the install
// message.
func (m *Manager) deployLibraryLocked(w *workerState, spec *core.LibrarySpec, res core.Resources) {
	if spec.Env != nil {
		m.canStageFileLocked(w, *spec.Env, true)
	}
	for _, fs := range spec.Inputs {
		m.canStageFileLocked(w, fs, true)
	}
	w.libs[spec.Name] = &libInstance{name: spec.Name, res: res}
	m.libOn[spec.Name]++
	w.commit = w.commit.Add(res)
	w.enqueue(outMsg{t: proto.MsgInstallLibrary, v: spec})
	atomic.AddInt64(&m.stats.LibrariesDeployed, 1)
}

// ObjectHolders returns how many workers hold the object — visibility
// for distribution tests. It reads the maintained replica counter and
// never touches the scheduler lock.
func (m *Manager) ObjectHolders(obj *content.Object) int {
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	return m.holderCount[obj.ID]
}
