// Package manager implements the TaskVine manager: it accepts worker
// connections, distributes content-addressed files (directly or via
// peer spanning trees, §3.3), schedules stateless tasks and stateful
// invocations, deploys library instances on demand around a hash ring
// of workers, evicts empty libraries to reclaim resources (§3.5.2),
// and retrieves results.
package manager

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hashring"
	"repro/internal/proto"
)

// Options configures a manager.
type Options struct {
	// Name labels the manager (logs only).
	Name string
	// PeerTransfers enables worker-to-worker distribution (Figure 3b);
	// off means every byte flows from the manager (Figure 3a).
	PeerTransfers bool
	// PeerTransferCap is the per-worker cap N on concurrent outbound
	// transfers, avoiding sinks in the spanning tree (§3.3). Zero
	// defaults to 3.
	PeerTransferCap int
	// ClusterAware prefers same-cluster peers as transfer sources
	// (Figure 3c).
	ClusterAware bool
	// EvictEmptyLibraries enables reclaiming workers occupied by idle
	// libraries when another library needs the space (§3.5.2). Defaults
	// to true via New.
	EvictEmptyLibraries bool
	// ResultBuffer sizes the results channel (default 4096).
	ResultBuffer int
}

// Stats counts manager-side activity for tests and experiments.
type Stats struct {
	DirectTransfers   int64 // manager→worker file sends
	PeerTransfers     int64 // worker→worker file sends
	LibrariesDeployed int64
	LibrariesEvicted  int64
	TasksDone         int64
	InvocationsDone   int64
	Failures          int64
	Requeued          int64
}

// Manager coordinates workers.
type Manager struct {
	opts Options
	ln   net.Listener

	mu           sync.Mutex
	workers      map[string]*workerState
	ring         *hashring.Ring
	libSpecs     map[string]*core.LibrarySpec
	libFailures  map[string]int
	pendingTasks []*core.TaskSpec
	pendingInvs  []*core.InvocationSpec
	inflight     map[int64]*inflightEntry
	nextID       int64
	stats        Stats
	closed       bool

	results chan core.Result
	wg      sync.WaitGroup
}

type inflightEntry struct {
	worker   string
	library  string // "" for plain tasks
	task     *core.TaskSpec
	inv      *core.InvocationSpec
	sentAt   time.Time
	transfer float64 // seconds spent staging files for this dispatch
}

type outMsg struct {
	t proto.MsgType
	v any
}

type workerState struct {
	id      string
	hello   proto.Hello
	conn    *proto.Conn
	nc      net.Conn
	sendq   chan outMsg
	total   core.Resources
	commit  core.Resources
	files   map[string]bool // confirmed cached
	pending map[string]bool // sent, awaiting ack
	// fetchSources maps object ID → source worker of an in-flight peer
	// fetch, to release the source's transfer slot on ack.
	fetchSources map[string]string
	transfersOut int
	libs         map[string]*libInstance
	alive        bool
}

type libInstance struct {
	name      string
	instance  string
	ready     bool
	failed    bool
	slotsUsed int
	served    int64
	res       core.Resources
}

// New creates a manager with defaults applied.
func New(opts Options) *Manager {
	if opts.PeerTransferCap <= 0 {
		opts.PeerTransferCap = 3
	}
	if opts.ResultBuffer <= 0 {
		opts.ResultBuffer = 4096
	}
	return &Manager{
		opts:        opts,
		workers:     map[string]*workerState{},
		ring:        hashring.New(0),
		libSpecs:    map[string]*core.LibrarySpec{},
		libFailures: map[string]int{},
		inflight:    map[int64]*inflightEntry{},
		results:     make(chan core.Result, opts.ResultBuffer),
	}
}

// NewDefault creates a manager with peer transfers and empty-library
// eviction enabled — the paper's recommended configuration.
func NewDefault() *Manager {
	return New(Options{PeerTransfers: true, EvictEmptyLibraries: true})
}

// Listen starts accepting worker connections on 127.0.0.1 and returns
// the address workers should dial.
func (m *Manager) Listen() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("manager: listen: %w", err)
	}
	m.ln = ln
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.serveWorker(nc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Results is the stream of completed task/invocation results.
func (m *Manager) Results() <-chan core.Result { return m.results }

// Stats returns a snapshot of manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// WorkersConnected returns the number of live workers.
func (m *Manager) WorkersConnected() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// WaitForWorkers blocks until at least n workers are connected or the
// timeout elapses.
func (m *Manager) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.WorkersConnected() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("manager: only %d of %d workers connected after %v", m.WorkersConnected(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Shutdown stops the manager and tells all workers to exit.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, w := range m.workers {
		w.enqueue(outMsg{proto.MsgShutdown, struct{}{}})
	}
	m.mu.Unlock()
	if m.ln != nil {
		m.ln.Close()
	}
}

// RegisterLibrary makes a library known to the manager. Instances are
// deployed to workers on demand when invocations arrive (§3.5.2).
func (m *Manager) RegisterLibrary(spec *core.LibrarySpec) error {
	if spec.Name == "" {
		return fmt.Errorf("manager: library needs a name")
	}
	if len(spec.Functions) == 0 {
		return fmt.Errorf("manager: library %q has no functions", spec.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.libSpecs[spec.Name]; dup {
		return fmt.Errorf("manager: library %q already registered", spec.Name)
	}
	m.libSpecs[spec.Name] = spec
	return nil
}

// Submit enqueues a stateless task and returns its ID.
func (m *Manager) Submit(t *core.TaskSpec) int64 {
	m.mu.Lock()
	m.nextID++
	t.ID = m.nextID
	m.pendingTasks = append(m.pendingTasks, t)
	m.mu.Unlock()
	m.schedule()
	return t.ID
}

// SubmitInvocation enqueues a FunctionCall and returns its ID.
func (m *Manager) SubmitInvocation(inv *core.InvocationSpec) int64 {
	m.mu.Lock()
	m.nextID++
	inv.ID = m.nextID
	m.pendingInvs = append(m.pendingInvs, inv)
	m.mu.Unlock()
	m.schedule()
	return inv.ID
}

// Collect drains n results from the result stream.
func (m *Manager) Collect(n int, timeout time.Duration) ([]core.Result, error) {
	out := make([]core.Result, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case r := <-m.results:
			out = append(out, r)
		case <-deadline:
			return out, fmt.Errorf("manager: collected %d of %d results before timeout", len(out), n)
		}
	}
	return out, nil
}

// ---- worker connection handling ----

func (w *workerState) enqueue(msg outMsg) {
	select {
	case w.sendq <- msg:
	default:
		// Queue full: drop the connection rather than deadlock the
		// scheduler; the reader loop will clean up.
		w.nc.Close()
	}
}

func (m *Manager) serveWorker(nc net.Conn) {
	conn := proto.NewConn(nc)
	t, raw, err := conn.Recv()
	if err != nil || t != proto.MsgHello {
		nc.Close()
		return
	}
	hello, err := proto.Decode[proto.Hello](raw)
	if err != nil || hello.WorkerID == "" {
		nc.Close()
		return
	}

	w := &workerState{
		id:           hello.WorkerID,
		hello:        hello,
		conn:         conn,
		nc:           nc,
		sendq:        make(chan outMsg, 65536),
		total:        hello.Resources,
		files:        map[string]bool{},
		pending:      map[string]bool{},
		fetchSources: map[string]string{},
		libs:         map[string]*libInstance{},
		alive:        true,
	}

	m.mu.Lock()
	if _, dup := m.workers[w.id]; dup || m.closed {
		m.mu.Unlock()
		nc.Close()
		return
	}
	m.workers[w.id] = w
	m.ring.Add(w.id)
	m.mu.Unlock()

	// Sender goroutine drains the queue so scheduling never blocks on
	// TCP backpressure.
	done := make(chan struct{})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case msg := <-w.sendq:
				if err := conn.Send(msg.t, msg.v); err != nil {
					nc.Close()
					return
				}
			case <-done:
				return
			}
		}
	}()

	m.schedule()

	for {
		t, raw, err := conn.Recv()
		if err != nil {
			break
		}
		switch t {
		case proto.MsgFileAck:
			if ack, err := proto.Decode[proto.FileAck](raw); err == nil {
				m.onFileAck(w, ack)
			}
		case proto.MsgLibraryAck:
			if ack, err := proto.Decode[proto.LibraryAck](raw); err == nil {
				m.onLibraryAck(w, ack)
			}
		case proto.MsgResult:
			if res, err := proto.Decode[core.Result](raw); err == nil {
				m.onResult(w, res)
			}
		}
	}
	close(done)
	m.onWorkerGone(w)
	nc.Close()
}

func (m *Manager) onWorkerGone(w *workerState) {
	m.mu.Lock()
	delete(m.workers, w.id)
	m.ring.Remove(w.id)
	w.alive = false
	// Requeue everything that was running there.
	var requeued int64
	for id, e := range m.inflight {
		if e.worker != w.id {
			continue
		}
		delete(m.inflight, id)
		if e.task != nil {
			m.pendingTasks = append(m.pendingTasks, e.task)
		} else if e.inv != nil {
			m.pendingInvs = append(m.pendingInvs, e.inv)
		}
		requeued++
	}
	m.stats.Requeued += requeued
	m.mu.Unlock()
	m.schedule()
}

func (m *Manager) onFileAck(w *workerState, ack proto.FileAck) {
	m.mu.Lock()
	delete(w.pending, ack.ID)
	if src, ok := w.fetchSources[ack.ID]; ok {
		delete(w.fetchSources, ack.ID)
		if sw, live := m.workers[src]; live && sw.transfersOut > 0 {
			sw.transfersOut--
		}
	}
	if ack.Ok && ack.Cache {
		w.files[ack.ID] = true
	}
	m.mu.Unlock()
	m.schedule()
}

// maxLibraryFailures is how many consecutive failed deployments a
// library gets before its pending invocations are failed instead of
// retried — a broken context setup would otherwise redeploy forever.
const maxLibraryFailures = 3

func (m *Manager) onLibraryAck(w *workerState, ack proto.LibraryAck) {
	m.mu.Lock()
	li := w.libs[ack.Library]
	if li != nil {
		if ack.Ok {
			li.ready = true
			li.instance = ack.Instance
			m.libFailures[ack.Library] = 0
		} else {
			li.failed = true
			delete(w.libs, ack.Library)
			w.commit = w.commit.Sub(li.res)
			m.libFailures[ack.Library]++
			if m.libFailures[ack.Library] >= maxLibraryFailures {
				m.failPendingForLibraryLocked(ack.Library, ack.Err)
			}
		}
	}
	m.mu.Unlock()
	m.schedule()
}

// failPendingForLibraryLocked fails every queued invocation of a
// library that cannot be deployed. Caller holds the lock.
func (m *Manager) failPendingForLibraryLocked(library, reason string) {
	var remaining []*core.InvocationSpec
	for _, inv := range m.pendingInvs {
		if inv.Library == library {
			m.stats.Failures++
			m.emitFailure(inv, fmt.Errorf("manager: library %q failed to deploy %d times: %s",
				library, maxLibraryFailures, reason))
			continue
		}
		remaining = append(remaining, inv)
	}
	m.pendingInvs = remaining
}

func (m *Manager) onResult(w *workerState, res core.Result) {
	m.mu.Lock()
	e, ok := m.inflight[res.ID]
	if ok {
		delete(m.inflight, res.ID)
		res.Metrics.TransferTime += e.transfer
		if e.task != nil {
			m.stats.TasksDone++
			w.commit = w.commit.Sub(e.task.Resources)
			// Cacheable inputs are now resident on that worker.
			for _, in := range e.task.Inputs {
				if in.Cache {
					w.files[in.Object.ID] = true
				}
			}
		} else if e.inv != nil {
			m.stats.InvocationsDone++
			if li := w.libs[e.library]; li != nil {
				if li.slotsUsed > 0 {
					li.slotsUsed--
				}
				li.served++
			}
		}
		if !res.Ok {
			m.stats.Failures++
		}
	}
	m.mu.Unlock()
	if ok {
		m.results <- res
	}
	m.schedule()
}

// LibraryDeployments returns, for each registered library, how many
// instances are currently deployed and their total share values —
// the data behind Figures 10 and 11.
func (m *Manager) LibraryDeployments() (instances int, totalServed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		for _, li := range w.libs {
			if li.ready {
				instances++
				totalServed += li.served
			}
		}
	}
	return instances, totalServed
}
