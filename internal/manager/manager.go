// Package manager implements the TaskVine manager: it accepts worker
// connections, distributes content-addressed files (directly or via
// peer spanning trees, §3.3), schedules stateless tasks and stateful
// invocations, deploys library instances on demand around a hash ring
// of workers, evicts empty libraries to reclaim resources (§3.5.2),
// and retrieves results.
//
// The dispatch plane is sharded (DESIGN.md §12): worker state is
// partitioned across N shards, each with its own scheduler lock, event
// loop, and dirty-mark/coalesced-wake machinery. Every spec is routed
// to exactly one shard at submission (internal/shardplane owns the
// routing rules, shared with the simulator's sharded replay driver).
// Cross-shard concerns — spec routing, evacuating a shard that lost
// its last worker, parked work meeting its first worker — go through
// explicit message paths that never hold two shard locks at once.
//
// Within a shard, scheduling is incremental: every event records which
// queues it could unblock (dirty marks, index.go) and the wake loop
// runs one coalesced pass over exactly those queues. Each pass plans
// placements in batches — one policy call plans K placements with
// strict sequential equivalence (internal/policy batch entry points) —
// so pass setup amortizes over the queue.
package manager

import (
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/shardplane"
)

// Options configures a manager.
type Options struct {
	// Name labels the manager (logs only).
	Name string
	// Shards partitions the dispatch plane (DESIGN.md §12): worker
	// state splits across this many independent scheduler shards, each
	// with its own lock, event loop, and dirty marks. Zero defaults to
	// shardplane.DefaultShards; 1 recovers the single-loop manager.
	Shards int
	// PeerTransfers enables worker-to-worker distribution (Figure 3b);
	// off means every byte flows from the manager (Figure 3a).
	PeerTransfers bool
	// PeerTransferCap is the per-worker cap N on concurrent outbound
	// transfers, avoiding sinks in the spanning tree (§3.3). Zero
	// defaults to 3.
	PeerTransferCap int
	// ClusterAware prefers same-cluster peers as transfer sources
	// (Figure 3c).
	ClusterAware bool
	// EvictEmptyLibraries enables reclaiming workers occupied by idle
	// libraries when another library needs the space (§3.5.2). Defaults
	// to true via New.
	EvictEmptyLibraries bool
	// ResultBuffer sizes the results channel (default 4096).
	ResultBuffer int
	// MaxRetries bounds how many times one task or invocation is
	// retried after infrastructure failures; worker-crash requeues and
	// retryable worker errors both draw on the same per-spec budget.
	// Zero defaults to 3; negative disables retries entirely.
	MaxRetries int
	// RetryBaseDelay is the backoff before the first retry of a failed
	// (but retryable) result; it doubles on each subsequent retry up
	// to RetryMaxDelay, with a deterministic spec-derived jitter so a
	// mass failure does not retry in lockstep. Zero defaults to 50ms.
	// Crash requeues skip the backoff — the failed worker is already
	// gone.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff. Zero defaults to 2s.
	RetryMaxDelay time.Duration
	// RefOwnedBytesCap bounds the owned (holder-of-record, cache-tier)
	// proxy-object bytes per worker (DESIGN.md §15): a producer pushed
	// over the cap by a new by-ref result spills its oldest owned
	// objects to the shared filesystem tier. Zero — the default — means
	// unbounded: no spills, every ref stays cache-tier on its producer.
	RefOwnedBytesCap int64
	// Tenants, when non-empty, activates the submission plane
	// (DESIGN.md §14): specs carrying a TenantID pass admission
	// control, queue per tenant, and reach the shards in weighted
	// fair-share order. Entries are normalized (sorted by name,
	// weights clamped) via core.NormalizeTenants. Empty — the default
	// — keeps the plane entirely off: single-tenant submission is
	// byte-for-byte the old path.
	Tenants []core.TenantSpec
	// DecisionTrace, when set, enables decision tracing (differential
	// and golden tests). With Shards == 1 every decision lands in this
	// recorder — the legacy single-loop contract. With Shards > 1 each
	// shard records into its own internal recorder (interleaving all
	// shards into one recorder would be nondeterministic); read them
	// with ShardDecisions or MergedDecisions. nil — the default —
	// keeps tracing entirely off the hot path.
	DecisionTrace *policy.Recorder
}

// Stats counts manager-side activity for tests and experiments. All
// fields are maintained with atomic adds so Stats() never takes a
// scheduler lock.
type Stats struct {
	DirectTransfers   int64 // manager→worker file sends
	PeerTransfers     int64 // worker→worker file sends
	LibrariesDeployed int64
	LibrariesEvicted  int64
	TasksDone         int64
	InvocationsDone   int64
	Failures          int64 // final failures delivered to the application
	Requeued          int64 // specs requeued because their worker died
	Retries           int64 // retryable failed results re-dispatched
	Restaged          int64 // failed peer fetches re-staged from the manager
	SchedulePasses    int64 // coalesced scheduling passes executed
	CoalescedWakeups  int64 // wakeups absorbed by an already-running pass
	WorkerLogs        int64 // worker-side diagnostics received (MsgLog), e.g. protocol decode errors
	SendQueueDrops    int64 // worker connections dropped because their outbound queue overflowed
	ShardForwards     int64 // specs moved across shards (evacuation, parked work meeting its first worker)
	SubmitsShed       int64 // submissions rejected by admission control (tenant queue bound hit)
	SubmitsThrottled  int64 // submissions accepted with a backpressure verdict (quota or queue pressure)
	FairDrains        int64 // specs released from tenant plane queues to shard intakes

	// Proxy-object (pass-by-reference) data plane accounting (§15).
	// BytesThroughManager counts inline result payload bytes that
	// transited the manager; BytesByRef counts result bytes that stayed
	// on their producing workers with only the handle traveling — the
	// headline split the by-ref experiment reports.
	RefResults          int64 // results returned as proxy handles (ownership transfers)
	RefTransfers        int64 // consumer ref fetches sourced worker→worker
	RefSpills           int64 // owned objects demoted to the shared tier
	RefPromotes         int64 // shared-tier objects promoted back to a cache-tier owner
	RefRehomes          int64 // refs re-homed (or tier-demoted) after their owner died
	RefLost             int64 // refs with no surviving copy after owner death
	BytesThroughManager int64 // inline result bytes relayed through the manager
	BytesByRef          int64 // result bytes that never transited the manager

	// Coalesced-writer accounting: each per-worker sender goroutine
	// drains its queue greedily into the connection's pending buffer
	// and issues one flush per drain batch, so FramesSent/FlushBatches
	// is the mean frames-per-write — the wire path's syscall
	// amortization factor. MaxFlushBatch is the largest single batch.
	FramesSent    int64
	FlushBatches  int64
	MaxFlushBatch int64
}

// Manager coordinates workers across the sharded dispatch plane.
type Manager struct {
	opts Options
	ln   net.Listener

	// shards partition all worker and spec state; router owns the
	// worker→shard and spec→shard routing rules (shared with the
	// simulator's sharded replay driver).
	shards []*shard
	router *shardplane.Router

	// libMu guards the registered-library table, read by every shard's
	// validation path and written only by RegisterLibrary.
	libMu    sync.RWMutex
	libSpecs map[string]*core.LibrarySpec

	// plane is the multi-tenant submission plane (nil without
	// Options.Tenants); planeActive keeps the single-tenant hot path's
	// tenancy cost to one predictable branch.
	plane       *submitPlane
	planeActive atomic.Bool

	// refs is the proxy-object plane (refplane.go): the global catalog
	// of pass-by-reference results and the decision stream over it.
	refs *refPlane

	nextID atomic.Int64
	closed atomic.Bool
	stats  Stats

	// obsMu guards the global replica registry: which workers hold a
	// confirmed copy of each object (holders), and the live-worker
	// table with each worker's cross-shard outbound transfer count
	// (peers). Shards maintain it with per-transition deltas; it backs
	// both ObjectHolders and cross-shard peer sourcing — a shard whose
	// own view has no holder of an object can still assign a peer
	// fetch from a holder in another shard (transport-level, outside
	// the policy trace).
	obsMu   sync.RWMutex
	holders map[string]map[string]bool
	peers   map[string]*peerSource

	// catMu guards the global staging catalog: every FileSpec any
	// shard has staged, so a failed peer fetch — or a deploy planned
	// in a shard that never staged the object — can always recover
	// from the manager's own link.
	catMu   sync.RWMutex
	catalog map[string]core.FileSpec

	// starveMu guards the set of starving shards: shards resting
	// queued work that cannot place locally and that no local event
	// will unblock. Any capacity-freeing event anywhere (a result, a
	// ready instance, membership change) nudges them — the
	// shard-crossing signal replacing the single loop's global view
	// of freed capacity. nStarving mirrors the set size so the hot
	// path pays one atomic load when the set is empty.
	starveMu  sync.Mutex
	starving  map[int]bool
	nStarving atomic.Int32

	results chan core.Result
	wg      sync.WaitGroup
}

// peerSource is a live worker's entry in the global replica registry:
// the connection (for its data address and send queue) plus how many
// cross-shard peer fetches it is currently serving. Local-shard
// transfer slots are accounted in the shard's policy view; cross-shard
// assignments use this counter, under the same cap.
type peerSource struct {
	w   *workerState
	out int
}

// shard is one partition of the dispatch plane: a worker table, a
// policy view over exactly those workers, the spec queues routed here,
// and the dirty-mark/coalesced-wake scheduler that drains them. All
// mutable state below mu is touched only with mu held; shards never
// take each other's locks (cross-shard movement goes through the
// coordinator with at most one shard lock held at a time).
type shard struct {
	m   *Manager
	idx int

	mu          sync.Mutex
	workers     map[string]*workerState
	libFailures map[string]int
	// libInfraFailures counts consecutive retryable (infrastructure)
	// deployment failures per library, bounded separately from
	// broken-setup failures. Like libFailures it is per shard: a
	// library quarantines independently in each partition.
	libInfraFailures map[string]int
	// installing counts library instances deployed but not yet acked,
	// per library. Each queued invocation claims one in-flight install
	// before the scheduler plans a new deploy, so a burst of events
	// during a slow install cannot over-provision instances beyond the
	// queue length.
	installing   map[string]int
	pendingTasks []pendingTask
	// pendingInvs queues invocations per library, so an event touching
	// one library reconsiders only that library's queue. Order within a
	// queue is submission order.
	pendingInvs     map[string][]pendingInv
	pendingInvCount int
	inflight        map[int64]*inflightEntry
	// backoffs counts retries sitting in their backoff timers — work
	// that is in neither pendingTasks/pendingInvs nor inflight.
	backoffs int

	// ---- scheduler view (policy core) ----

	// view is the cluster snapshot every scheduling decision reads: the
	// shard's worker table, its placement ring, and the derived indexes
	// (Holders, PendingCopies, ReadyFree, LibFull). index.go keeps it
	// current; internal/policy decides against it; schedule.go executes.
	// Peer-transfer sources are shard-local by construction: PickSource
	// only sees this shard's holders.
	view *policy.ClusterView
	// rec, when non-nil, records this shard's decision trace.
	rec *policy.Recorder
	// objWaiters: object ID → queues blocked on its first copy.
	objWaiters map[string]*objWaiter

	// ---- dirty marks for the coalesced wake loop ----
	dirtyTasks   bool
	dirtyAllLibs bool
	dirtyLibs    map[string]bool
	// libScratch is the wake loop's reusable sorted-key buffer for
	// dirtyLibs — the map and this slice are retained across passes so
	// the steady-state pass allocates nothing.
	libScratch []string
	// reqScratch/planScratch/invScratch are the scheduling passes'
	// reusable batch buffers (requests in, decisions out). Each pass
	// truncates and refills them under the shard lock, so steady-state
	// planning allocates no slices.
	reqScratch  []policy.TaskReq
	planScratch []policy.PlaceTask
	invScratch  []policy.PlaceInvocation
	// freeInflight recycles invocation inflight entries (only those —
	// task entries can be referenced by ackWaiters past completion;
	// invocation entries never register there).
	freeInflight []*inflightEntry

	// ---- lock-free submit intake (MPSC) ----

	// intake is a Treiber stack submitters push onto without touching
	// mu, so SubmitInvocation/Submit never contend with a running wake
	// pass. The wake loop swaps the whole stack out under mu and
	// replays it in FIFO (reversed) order into the pending queues.
	intake atomic.Pointer[intakeNode]
	// wakeState is the lock-free coalescing latch replacing the old
	// mu-guarded scheduling flag: wakeIdle (no loop running),
	// wakeRunning (a loop is draining), wakeRerun (a loop is draining
	// and at least one wake arrived since its last pass — it must run
	// again before going idle).
	wakeState atomic.Int32
}

const (
	wakeIdle int32 = iota
	wakeRunning
	wakeRerun
)

// intakeNode is one submitted spec waiting in a shard's intake stack.
// Nodes are pooled: the submit path must not trade its lock for an
// allocation per spec.
type intakeNode struct {
	next   *intakeNode
	isTask bool
	task   pendingTask
	inv    pendingInv
}

var intakeNodePool = sync.Pool{New: func() any { return new(intakeNode) }}

// pushIntake publishes one node onto the shard's intake stack —
// multiple producers, lock-free.
func (s *shard) pushIntake(n *intakeNode) {
	for {
		old := s.intake.Load()
		n.next = old
		if s.intake.CompareAndSwap(old, n) {
			return
		}
	}
}

// drainIntakeLocked moves every spec published to the intake stack
// into the shard's pending queues (marking the matching dirty bits).
// Called with s.mu held; the single consumer. The swap claims the
// whole stack, so concurrent pushers are never blocked; reversing it
// restores submission (FIFO) order.
func (s *shard) drainIntakeLocked() {
	head := s.intake.Swap(nil)
	if head == nil {
		return
	}
	var rev *intakeNode
	for head != nil {
		next := head.next
		head.next = rev
		rev = head
		head = next
	}
	for n := rev; n != nil; {
		next := n.next
		if n.isTask {
			s.pendingTasks = append(s.pendingTasks, n.task)
			s.markTasksDirtyLocked()
		} else {
			s.enqueueInvLocked(n.inv)
		}
		*n = intakeNode{} // drop spec pointers before pooling
		intakeNodePool.Put(n)
		n = next
	}
}

// pendingTask pairs a queued task with its precomputed ring key and
// its retry state. The retry count and avoid preference travel with
// the spec so it can migrate between shards without losing them.
type pendingTask struct {
	t       *core.TaskSpec
	key     string
	retries int
	avoid   string
	// hops counts overflow forwards across shards (not evacuations):
	// a spec no shard can place stops circulating after visiting every
	// shard, until a membership change or a starvation nudge resets it.
	hops int
}

// pendingInv pairs a queued invocation with its retry state.
type pendingInv struct {
	inv     *core.InvocationSpec
	retries int
	avoid   string
	hops    int
}

type inflightEntry struct {
	worker  string
	library string // "" for plain tasks
	ringKey string // tasks only: consistent-hash key, reused on requeue
	task    *core.TaskSpec
	inv     *core.InvocationSpec
	retries int // re-dispatches so far (crash requeues + retryable failures)
	sentAt  time.Time
	// waiting holds object IDs staged for this dispatch whose FileAck
	// has not arrived yet; the last ack stamps the transfer duration.
	waiting  map[string]bool
	transfer float64 // dispatch→last FileAck, seconds
}

type outMsg struct {
	t proto.MsgType
	v any
	// bulk frames carry v as a JSON header and payload as raw bytes
	// (proto.SendBulk) — no base64, no second buffer.
	bulk    bool
	payload []byte
}

type workerState struct {
	id    string
	hello proto.Hello
	conn  *proto.Conn
	nc    net.Conn
	sendq chan outMsg
	// drops points at the shared Stats.SendQueueDrops counter so a
	// queue-overflow disconnect is counted, not silent.
	drops *int64
	// v is this worker's entry in the policy view: resources, cached
	// and in-flight files, transfer slots, liveness. index.go binds it
	// at registration and every handler reports transitions through it.
	v *policy.WorkerView
	// fetchSources maps object ID → source worker of an in-flight peer
	// fetch, to release the source's transfer slot on ack.
	fetchSources map[string]string
	// ackWaiters maps object ID → dispatches on this worker whose
	// TransferTime is waiting for that object's FileAck.
	ackWaiters map[string][]*inflightEntry
	libs       map[string]*libInstance
}

// libInstance is one deployed library instance: the policy-visible
// state (embedded view, shared by pointer with the ClusterView) plus
// engine-only bookkeeping.
type libInstance struct {
	policy.LibraryView
	instance string
	served   int64
}

// sendQueueSize derives a worker's outbound queue depth from its slot
// count: each occupied slot can have a dispatch, its staging messages,
// and a few control frames outstanding, with generous headroom for
// bursts. The old flat 16384 wasted memory on small workers and still
// had no principled relation to how much the scheduler can reasonably
// have in flight to one worker.
func sendQueueSize(cores int) int {
	const perSlot, floor = 128, 1024
	n := cores * perSlot
	if n < floor {
		n = floor
	}
	return n
}

// New creates a manager with defaults applied.
func New(opts Options) *Manager {
	if opts.Shards <= 0 {
		opts.Shards = shardplane.DefaultShards
	}
	if opts.PeerTransferCap <= 0 {
		opts.PeerTransferCap = 3
	}
	if opts.ResultBuffer <= 0 {
		opts.ResultBuffer = 4096
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBaseDelay <= 0 {
		opts.RetryBaseDelay = 50 * time.Millisecond
	}
	if opts.RetryMaxDelay <= 0 {
		opts.RetryMaxDelay = 2 * time.Second
	}
	m := &Manager{
		opts:     opts,
		router:   shardplane.NewRouter(opts.Shards),
		libSpecs: map[string]*core.LibrarySpec{},
		holders:  map[string]map[string]bool{},
		peers:    map[string]*peerSource{},
		catalog:  map[string]core.FileSpec{},
		starving: map[int]bool{},
		results:  make(chan core.Result, opts.ResultBuffer),
	}
	m.shards = make([]*shard, opts.Shards)
	for i := range m.shards {
		var rec *policy.Recorder
		if opts.DecisionTrace != nil {
			if opts.Shards == 1 {
				rec = opts.DecisionTrace
			} else {
				rec = &policy.Recorder{}
			}
		}
		m.shards[i] = &shard{
			m:                m,
			idx:              i,
			workers:          map[string]*workerState{},
			libFailures:      map[string]int{},
			libInfraFailures: map[string]int{},
			installing:       map[string]int{},
			pendingInvs:      map[string][]pendingInv{},
			inflight:         map[int64]*inflightEntry{},
			view: policy.NewClusterView(policy.Options{
				PeerTransfers:       opts.PeerTransfers,
				PeerTransferCap:     opts.PeerTransferCap,
				ClusterAware:        opts.ClusterAware,
				EvictEmptyLibraries: opts.EvictEmptyLibraries,
			}),
			rec:        rec,
			objWaiters: map[string]*objWaiter{},
		}
	}
	if len(opts.Tenants) > 0 {
		m.plane = newSubmitPlane(m, opts.Tenants, opts.DecisionTrace != nil)
		m.planeActive.Store(true)
	}
	m.refs = newRefPlane(m, opts.RefOwnedBytesCap, opts.DecisionTrace != nil)
	return m
}

// NewDefault creates a manager with peer transfers and empty-library
// eviction enabled — the paper's recommended configuration.
func NewDefault() *Manager {
	return New(Options{PeerTransfers: true, EvictEmptyLibraries: true})
}

// shardFor returns a worker's home shard — a pure function of its ID.
func (m *Manager) shardFor(workerID string) *shard {
	return m.shards[m.router.ShardOf(workerID)]
}

// Shards reports the dispatch plane's partition count.
func (m *Manager) Shards() int { return len(m.shards) }

// ShardDecisions returns each shard's recorded decision trace, in
// shard-index order. Empty unless Options.DecisionTrace was set.
func (m *Manager) ShardDecisions() [][]string {
	out := make([][]string, len(m.shards))
	for i, s := range m.shards {
		if s.rec != nil {
			out[i] = append([]string(nil), s.rec.Decisions...)
		}
	}
	return out
}

// MergedDecisions returns the per-shard decision traces merged by the
// deterministic rule shared with the simulator's sharded replay
// (shardplane.MergeTraces: concatenation in shard-index order), with
// the global streams — the submission plane's admission/drain trace
// and the ref plane's ownership/resolve trace, when present —
// prepended in that order.
func (m *Manager) MergedDecisions() []string {
	merged := shardplane.MergeTraces(m.ShardDecisions())
	if refs := m.RefDecisions(); len(refs) > 0 {
		merged = append(refs, merged...)
	}
	if plane := m.PlaneDecisions(); len(plane) > 0 {
		return append(plane, merged...)
	}
	return merged
}

// PlaneDecisions returns the submission plane's recorded trace: one
// admit line per submission, one pick line per fair-share drain.
// Empty without Options.Tenants or Options.DecisionTrace.
func (m *Manager) PlaneDecisions() []string {
	return m.plane.Decisions()
}

// Listen starts accepting worker connections on 127.0.0.1 and returns
// the address workers should dial.
func (m *Manager) Listen() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("manager: listen: %w", err)
	}
	m.ln = ln
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.serveWorker(nc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Results is the stream of completed task/invocation results.
func (m *Manager) Results() <-chan core.Result { return m.results }

// Stats returns a snapshot of manager counters without touching any
// scheduler lock.
func (m *Manager) Stats() Stats {
	return Stats{
		DirectTransfers:   atomic.LoadInt64(&m.stats.DirectTransfers),
		PeerTransfers:     atomic.LoadInt64(&m.stats.PeerTransfers),
		LibrariesDeployed: atomic.LoadInt64(&m.stats.LibrariesDeployed),
		LibrariesEvicted:  atomic.LoadInt64(&m.stats.LibrariesEvicted),
		TasksDone:         atomic.LoadInt64(&m.stats.TasksDone),
		InvocationsDone:   atomic.LoadInt64(&m.stats.InvocationsDone),
		Failures:          atomic.LoadInt64(&m.stats.Failures),
		Requeued:          atomic.LoadInt64(&m.stats.Requeued),
		Retries:           atomic.LoadInt64(&m.stats.Retries),
		Restaged:          atomic.LoadInt64(&m.stats.Restaged),
		SchedulePasses:    atomic.LoadInt64(&m.stats.SchedulePasses),
		CoalescedWakeups:  atomic.LoadInt64(&m.stats.CoalescedWakeups),
		WorkerLogs:        atomic.LoadInt64(&m.stats.WorkerLogs),
		SendQueueDrops:    atomic.LoadInt64(&m.stats.SendQueueDrops),
		ShardForwards:     atomic.LoadInt64(&m.stats.ShardForwards),
		SubmitsShed:       atomic.LoadInt64(&m.stats.SubmitsShed),
		SubmitsThrottled:  atomic.LoadInt64(&m.stats.SubmitsThrottled),
		FairDrains:        atomic.LoadInt64(&m.stats.FairDrains),
		RefResults:        atomic.LoadInt64(&m.stats.RefResults),
		RefTransfers:      atomic.LoadInt64(&m.stats.RefTransfers),
		RefSpills:         atomic.LoadInt64(&m.stats.RefSpills),
		RefPromotes:       atomic.LoadInt64(&m.stats.RefPromotes),
		RefRehomes:        atomic.LoadInt64(&m.stats.RefRehomes),
		RefLost:           atomic.LoadInt64(&m.stats.RefLost),

		BytesThroughManager: atomic.LoadInt64(&m.stats.BytesThroughManager),
		BytesByRef:          atomic.LoadInt64(&m.stats.BytesByRef),
		FramesSent:          atomic.LoadInt64(&m.stats.FramesSent),
		FlushBatches:        atomic.LoadInt64(&m.stats.FlushBatches),
		MaxFlushBatch:       atomic.LoadInt64(&m.stats.MaxFlushBatch),
	}
}

// WorkersConnected returns the number of live workers.
func (m *Manager) WorkersConnected() int {
	return m.router.Live()
}

// WaitForWorkers blocks until at least n workers are connected or the
// timeout elapses.
func (m *Manager) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.WorkersConnected() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("manager: only %d of %d workers connected after %v", m.WorkersConnected(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Shutdown stops the manager and tells all workers to exit.
func (m *Manager) Shutdown() {
	if m.closed.Swap(true) {
		return
	}
	for _, s := range m.shards {
		s.mu.Lock()
		for _, id := range core.SortedKeys(s.workers) {
			s.workers[id].enqueue(outMsg{t: proto.MsgShutdown, v: struct{}{}})
		}
		s.mu.Unlock()
	}
	if m.ln != nil {
		m.ln.Close()
	}
}

// RegisterLibrary makes a library known to the manager. Instances are
// deployed to workers on demand when invocations arrive (§3.5.2).
func (m *Manager) RegisterLibrary(spec *core.LibrarySpec) error {
	if spec.Name == "" {
		return fmt.Errorf("manager: library needs a name")
	}
	if len(spec.Functions) == 0 {
		return fmt.Errorf("manager: library %q has no functions", spec.Name)
	}
	m.libMu.Lock()
	defer m.libMu.Unlock()
	if _, dup := m.libSpecs[spec.Name]; dup {
		return fmt.Errorf("manager: library %q already registered", spec.Name)
	}
	m.libSpecs[spec.Name] = spec
	return nil
}

// libSpec looks up a registered library.
func (m *Manager) libSpec(name string) (*core.LibrarySpec, bool) {
	m.libMu.RLock()
	spec, ok := m.libSpecs[name]
	m.libMu.RUnlock()
	return spec, ok
}

// ---- spec routing (the cross-shard submit path) ----

// Submit enqueues a stateless task and returns its ID. A task naming
// a registered tenant enters through the submission plane (admission
// control, per-tenant queue, fair-share release); everything else —
// no TenantID, no plane, or an unregistered tenant — routes directly.
func (m *Manager) Submit(t *core.TaskSpec) int64 {
	t.ID = m.nextID.Add(1)
	pt := pendingTask{t: t, key: taskRingKey(t.ID)}
	if t.TenantID != "" && m.planeActive.Load() &&
		m.plane.submit(t.TenantID, planeItem{isTask: true, task: pt}, t.ID) {
		return t.ID
	}
	m.routeTask(pt)
	return t.ID
}

// SubmitInvocation enqueues a FunctionCall and returns its ID. Tenant
// handling matches Submit.
func (m *Manager) SubmitInvocation(inv *core.InvocationSpec) int64 {
	inv.ID = m.nextID.Add(1)
	if inv.TenantID != "" && m.planeActive.Load() &&
		m.plane.submit(inv.TenantID, planeItem{inv: pendingInv{inv: inv}}, inv.ID) {
		return inv.ID
	}
	m.routeInv(pendingInv{inv: inv})
	return inv.ID
}

// routeTask delivers a task to the shard owning its ring key — or, in
// an empty cluster, parks it in the key's home shard until the first
// worker joins (shardplane routing rules). The hand-off is lock-free:
// the spec goes onto the shard's intake stack and the wake latch does
// the rest, so a submit burst never contends with a running pass.
func (m *Manager) routeTask(pt pendingTask) {
	idx, ok := m.router.Owner(pt.key)
	if !ok {
		idx = m.router.Park(pt.key)
	}
	s := m.shards[idx]
	n := intakeNodePool.Get().(*intakeNode)
	n.isTask, n.task = true, pt
	s.pushIntake(n)
	s.wake()
}

// routeInv delivers an invocation to a live shard by round-robin over
// its spec ID — invocations of one library are interchangeable, so
// spreading them across shards is pure load balancing. In an empty
// cluster it parks in the library's home shard. Lock-free hand-off,
// like routeTask.
func (m *Manager) routeInv(pi pendingInv) {
	idx, ok := m.router.RouteSpec(pi.inv.ID)
	if !ok {
		idx = m.router.Park(pi.inv.Library)
	}
	s := m.shards[idx]
	n := intakeNodePool.Get().(*intakeNode)
	n.isTask, n.inv = false, pi
	s.pushIntake(n)
	s.wake()
}

// forwardInvQueue moves one library's whole pending queue into a
// target shard, preserving order. Whole-queue moves (rather than
// per-spec re-routing) are the rule the simulator's sharded replay can
// mirror exactly — its invocation pool is keyless.
func (m *Manager) forwardInvQueue(idx int, lib string, q []pendingInv) {
	s := m.shards[idx]
	s.mu.Lock()
	s.pendingInvs[lib] = append(s.pendingInvs[lib], q...)
	s.pendingInvCount += len(q)
	s.markLibDirtyLocked(lib)
	s.mu.Unlock()
	atomic.AddInt64(&m.stats.ShardForwards, int64(len(q)))
	s.wake()
}

// Collect drains n results from the result stream.
func (m *Manager) Collect(n int, timeout time.Duration) ([]core.Result, error) {
	out := make([]core.Result, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case r := <-m.results:
			out = append(out, r)
		case <-deadline:
			return out, fmt.Errorf("manager: collected %d of %d results before timeout", len(out), n)
		}
	}
	return out, nil
}

// ---- worker connection handling ----

func (w *workerState) enqueue(msg outMsg) {
	select {
	case w.sendq <- msg:
	default:
		// Queue full: drop the connection rather than deadlock the
		// scheduler; the reader loop will clean up. Count and log the
		// drop — a silent disconnect here looks exactly like a worker
		// crash from the outside and is otherwise undiagnosable.
		if w.drops != nil {
			atomic.AddInt64(w.drops, 1)
		}
		log.Printf("manager: worker %s outbound queue full (%d); dropping connection", w.id, cap(w.sendq))
		w.nc.Close()
	}
}

// adoptWorker registers a connected worker in its home shard and the
// routing fabric. It reports false (without registering) for duplicate
// IDs or a closed manager.
func (m *Manager) adoptWorker(w *workerState) bool {
	s := m.shardFor(w.id)
	s.mu.Lock()
	if _, dup := s.workers[w.id]; dup || m.closed.Load() {
		s.mu.Unlock()
		return false
	}
	s.registerWorkerLocked(w)
	// Fresh capacity: pending tasks and every waiting library queue in
	// this shard may now be placeable here.
	s.wakeCapacityLocked()
	s.mu.Unlock()
	m.peerAdd(w)
	m.router.Add(w.id)
	s.wake()
	// Parked work in workerless shards can now be evacuated here, and
	// work starving in shards this worker doesn't belong to gets its
	// overflow hop budget back so it can reach the new capacity.
	m.wakeParked()
	m.nudgeStarving()
	return true
}

// wakeParked nudges every workerless shard holding queued specs: its
// wake loop will evacuate them to live shards (shard-crossing path).
func (m *Manager) wakeParked() {
	for _, s := range m.shards {
		s.mu.Lock()
		if len(s.workers) == 0 && s.hasPendingLocked() {
			s.wakeCapacityLocked()
			s.mu.Unlock()
			s.wake()
			continue
		}
		s.mu.Unlock()
	}
}

func (m *Manager) serveWorker(nc net.Conn) {
	conn := proto.NewConn(nc)
	t, raw, err := conn.Recv()
	if err != nil || t != proto.MsgHello {
		nc.Close()
		return
	}
	hello, err := proto.Decode[proto.Hello](raw)
	if err != nil || hello.WorkerID == "" {
		nc.Close()
		return
	}

	w := &workerState{
		id:           hello.WorkerID,
		hello:        hello,
		conn:         conn,
		nc:           nc,
		sendq:        make(chan outMsg, sendQueueSize(hello.Resources.Cores)),
		drops:        &m.stats.SendQueueDrops,
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}

	if !m.adoptWorker(w) {
		nc.Close()
		return
	}
	s := m.shardFor(w.id)

	// Sender goroutine drains the queue so scheduling never blocks on
	// TCP backpressure. Frames are coalesced: a burst of queued
	// messages is encoded into the connection's pending buffer and
	// flushed in one write syscall once the queue runs momentarily dry.
	done := make(chan struct{})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			var msg outMsg
			select {
			case msg = <-w.sendq:
			case <-done:
				return
			}
			var batch int64
			yielded := false
			for {
				var err error
				if msg.bulk {
					// SendBulk drains the pending buffer first, so
					// ordering with buffered frames is preserved.
					err = conn.SendBulk(msg.t, msg.v, msg.payload)
				} else {
					err = conn.Buffer(msg.t, msg.v)
				}
				if err != nil {
					nc.Close()
					return
				}
				batch++
				select {
				case msg = <-w.sendq:
					continue
				default:
				}
				// One cooperative yield before flushing lets same-core
				// producers (the scheduler mid-burst) top the queue off,
				// so the flush carries a bigger batch in one write
				// syscall instead of many near-empty ones.
				if !yielded {
					yielded = true
					runtime.Gosched()
					select {
					case msg = <-w.sendq:
						continue
					default:
					}
				}
				break
			}
			if err := conn.Flush(); err != nil {
				nc.Close()
				return
			}
			atomic.AddInt64(&m.stats.FramesSent, batch)
			atomic.AddInt64(&m.stats.FlushBatches, 1)
			for {
				max := atomic.LoadInt64(&m.stats.MaxFlushBatch)
				if batch <= max || atomic.CompareAndSwapInt64(&m.stats.MaxFlushBatch, max, batch) {
					break
				}
			}
		}
	}()

	s.wake()

	// strs interns the identifier strings every completion repeats
	// (worker ID, library instance) — one table per connection, used
	// only by this reader goroutine.
	var strs proto.Interner
	for {
		// RecvReuse: every case decodes (copying what it keeps) before
		// the next receive; nothing below retains the raw payload.
		t, raw, err := conn.RecvReuse()
		if err != nil {
			break
		}
		switch t {
		case proto.MsgFileAck:
			if ack, err := proto.Decode[proto.FileAck](raw); err == nil {
				s.onFileAck(w, ack)
			}
		case proto.MsgLibraryAck:
			if ack, err := proto.Decode[proto.LibraryAck](raw); err == nil {
				s.onLibraryAck(w, ack)
			}
		case proto.MsgResult:
			if res, err := proto.DecodeResultInterned(raw, &strs); err == nil {
				s.onResult(w, res)
			}
		case proto.MsgLog:
			// Worker-side diagnostics (today: protocol decode errors the
			// worker would otherwise swallow). Surface them in the
			// manager's log and count them so tests and operators notice.
			if lm, err := proto.Decode[proto.LogMsg](raw); err == nil {
				atomic.AddInt64(&m.stats.WorkerLogs, 1)
				log.Printf("manager %s: worker %s: %s", m.opts.Name, lm.Worker, lm.Text)
			}
		}
	}
	close(done)
	m.onWorkerGone(w)
	nc.Close()
}

// onWorkerGone tears down a dead worker in its home shard. Crash
// requeues stay in the shard (the rule the simulator's sharded replay
// mirrors); if the shard just lost its last worker, its wake loop
// evacuates the queues to live shards.
// releaseSourceSlotLocked returns a peer-fetch source's transfer
// slot: a live local source's slot lives in the shard view; anything
// else — a holder in another shard — is accounted in the global
// registry (a no-op if that holder died).
func (s *shard) releaseSourceSlotLocked(src string) {
	if sw, live := s.workers[src]; live {
		if sw.v.TransfersOut > 0 {
			sw.v.TransfersOut--
		}
		return
	}
	s.m.releaseRemoteSource(src)
}

func (m *Manager) onWorkerGone(w *workerState) {
	m.router.Remove(w.id)
	m.peerDrop(w.id)
	// Re-home every ref the dead worker owned before requeueing its
	// work: surviving holders adopt ownership (pinning their copies),
	// spilled refs fall back to the durable shared tier, and the rest
	// are declared lost — the traced failure semantics of §15.
	m.refs.rehome(w.id)
	s := m.shardFor(w.id)
	s.mu.Lock()
	// The dead worker may have been the destination of in-flight peer
	// fetches: release each source's transfer slot, or the sources are
	// bled dry one crash at a time until PickSource permanently
	// excludes them and the spanning tree degrades to manager-only
	// sends.
	for id, src := range w.fetchSources { //vinelint:unordered slot releases commute; each entry touches a distinct record
		delete(w.fetchSources, id)
		s.releaseSourceSlotLocked(src)
	}
	// Drop the worker from every index (replicas, ready instances,
	// in-flight copies — waking placements queued behind a first copy
	// that will now never confirm).
	s.dropWorkerLocked(w)
	// Requeue everything that was running there, within each spec's
	// retry budget; a spec that has already exhausted it fails instead
	// of bouncing between crashing workers forever. Requeue in
	// ascending spec-ID order — map iteration order would otherwise
	// make the post-crash schedule nondeterministic, which the
	// differential fidelity harness (and anyone replaying a decision
	// trace) cannot tolerate.
	var lost []int64
	for _, id := range core.SortedKeys(s.inflight) {
		if s.inflight[id].worker == w.id {
			lost = append(lost, id)
		}
	}
	for _, id := range lost {
		e := s.inflight[id]
		delete(s.inflight, id)
		if m.opts.MaxRetries >= 0 && e.retries < m.opts.MaxRetries {
			e.retries++
			atomic.AddInt64(&m.stats.Requeued, 1)
			if e.task != nil {
				s.pendingTasks = append(s.pendingTasks, pendingTask{t: e.task, key: e.ringKey, retries: e.retries, avoid: w.id})
				s.markTasksDirtyLocked()
			} else if e.inv != nil {
				s.enqueueInvLocked(pendingInv{inv: e.inv, retries: e.retries, avoid: w.id})
			}
			continue
		}
		atomic.AddInt64(&m.stats.Failures, 1)
		m.deliver(core.Result{ID: id, Ok: false,
			Err: fmt.Sprintf("manager: worker %s lost and retry budget exhausted", w.id)})
		// Shard lock held: quota returns and the drain runs now, but
		// the wakes park until pump() at the next wake-loop exit.
		if m.planeActive.Load() {
			m.plane.release(specTenant(e), false)
		}
	}
	// Losing a worker changes the ring; anything whose placement was
	// pinned behind this worker's state gets another look.
	s.wakeCapacityLocked()
	s.mu.Unlock()
	s.wake()
	// Membership changed: overflow targets and ring ownership moved,
	// so rested work elsewhere gets its hop budget back.
	m.nudgeStarving()
}

func (s *shard) onFileAck(w *workerState, ack proto.FileAck) {
	s.mu.Lock()
	s.clearPendingLocked(w, ack.ID)
	src, fromPeer := w.fetchSources[ack.ID]
	if fromPeer {
		delete(w.fetchSources, ack.ID)
		s.releaseSourceSlotLocked(src)
	} else if ack.Source != "" {
		// The worker echoes the source the fetch was assigned
		// (proto.FetchFile.Source), so a fetch the manager no longer
		// tracks — its record displaced by recovery — still returns the
		// source's transfer slot instead of bleeding it.
		fromPeer = true
		s.releaseSourceSlotLocked(ack.Source)
	}
	if ack.Ok && ack.Cache {
		s.noteReplicaLocked(w, ack.ID)
		// A confirmed ref replica also registers in the global ref
		// catalog, so later resolves can source from this consumer.
		// No-op for ordinary objects.
		s.m.refs.noteHolder(w.id, ack.ID)
	}
	restaged := false
	if !ack.Ok && w.v.Alive {
		if s.m.refs.isRef(ack.ID) {
			// A ref fetch failed on every source the data plane tried.
			// The manager never held these bytes, so the catalog restage
			// below cannot apply: retract the unreliable replica records
			// and plan a fresh traced resolve against what survives —
			// the owner's pinned copy, the shared tier, or lost.
			restaged = s.restageRefLocked(w, ack.ID)
		} else if fromPeer {
			// The peer fetch failed on every source the data plane tried —
			// the assigned one and the alternates it retried on its own
			// (§4.3). The manager's own link is always a valid source:
			// re-stage directly rather than leaving every dispatch behind
			// this copy to die on "input not staged".
			if fs, known := s.m.catalogGet(ack.ID); known {
				s.directSendLocked(w, fs)
				atomic.AddInt64(&s.m.stats.Restaged, 1)
				restaged = true
			}
		}
	}
	// Stamp staging completion on every dispatch that was waiting for
	// this object on this worker: TransferTime is dispatch→last ack,
	// not the time spent enqueueing messages. The per-worker waiter
	// index hands us exactly those dispatches — unless the copy is
	// being restaged, in which case they are still waiting: the
	// replacement transfer's own ack will settle them.
	if list := w.ackWaiters[ack.ID]; !restaged && len(list) > 0 {
		delete(w.ackWaiters, ack.ID)
		now := time.Now()
		for _, e := range list {
			if e.waiting[ack.ID] {
				delete(e.waiting, ack.ID)
				e.transfer = now.Sub(e.sentAt).Seconds()
			}
		}
	}
	// Whether the copy confirmed (new source available) or failed (the
	// block is gone), everything queued behind this object gets one
	// reconsideration.
	s.wakeObjWaitersLocked(ack.ID)
	s.mu.Unlock()
	s.wake()
}

// maxLibraryFailures is how many consecutive failed deployments a
// library gets before its pending invocations are failed instead of
// retried — a broken context setup would otherwise redeploy forever.
const maxLibraryFailures = 3

// maxLibraryInfraFailures bounds consecutive *retryable* deployment
// failures (inputs lost to stalled transfers, resources exhausted).
// It is deliberately generous: chaos that heals should never
// quarantine a healthy library, but a library whose environment can
// never be staged must eventually fail its invocations cleanly.
const maxLibraryInfraFailures = 20

func (s *shard) onLibraryAck(w *workerState, ack proto.LibraryAck) {
	s.mu.Lock()
	li := w.libs[ack.Library]
	if li != nil {
		if !li.Ready && s.installing[ack.Library] > 0 {
			s.installing[ack.Library]--
		}
		if ack.Ok {
			li.Ready = true
			li.instance = ack.Instance
			s.libFailures[ack.Library] = 0
			s.libInfraFailures[ack.Library] = 0
			s.libSlotsChangedLocked(w, li)
			s.markLibDirtyLocked(ack.Library)
			// A ready instance with no slots in use is an eviction
			// candidate (§3.5.2): other libraries blocked on capacity
			// may now be deployable here.
			if li.SlotsUsed == 0 && s.m.opts.EvictEmptyLibraries {
				s.markAllLibsDirtyLocked()
			}
		} else {
			li.Failed = true
			delete(w.libs, ack.Library)
			s.view.RemoveLibrary(w.v, ack.Library)
			w.v.Commit = w.v.Commit.Sub(li.Res)
			// Infrastructure-caused install failures (inputs lost to a
			// stalled transfer, resources gone) draw on a much larger
			// budget than broken-setup failures: transient chaos should
			// not quarantine a healthy library, but a persistently
			// unstageable one must still fail cleanly instead of
			// redeploying forever.
			if ack.Retryable {
				s.libInfraFailures[ack.Library]++
				if s.libInfraFailures[ack.Library] >= maxLibraryInfraFailures {
					s.failPendingForLibraryLocked(ack.Library, ack.Err)
				}
			} else {
				s.libFailures[ack.Library]++
				if s.libFailures[ack.Library] >= maxLibraryFailures {
					s.failPendingForLibraryLocked(ack.Library, ack.Err)
				}
			}
			// The failed install released resources on this worker.
			s.wakeCapacityLocked()
		}
	}
	s.mu.Unlock()
	s.wake()
	// An instance turning ready (or an install releasing resources)
	// is capacity other shards' starving work may be waiting for.
	s.m.nudgeStarving()
}

// failPendingForLibraryLocked fails every queued invocation of a
// library that cannot be deployed. Caller holds the shard lock.
func (s *shard) failPendingForLibraryLocked(library, reason string) {
	q := s.pendingInvs[library]
	if len(q) == 0 {
		return
	}
	delete(s.pendingInvs, library)
	s.pendingInvCount -= len(q)
	for _, pi := range q {
		atomic.AddInt64(&s.m.stats.Failures, 1)
		s.m.deliver(core.Result{ID: pi.inv.ID, Ok: false,
			Err: fmt.Sprintf("manager: library %q failed to deploy %d times: %s",
				library, maxLibraryFailures, reason)})
		if s.m.planeActive.Load() {
			s.m.plane.release(pi.inv.TenantID, false)
		}
	}
}

func (s *shard) onResult(w *workerState, res core.Result) {
	m := s.m
	s.mu.Lock()
	e, ok := s.inflight[res.ID]
	if ok {
		delete(s.inflight, res.ID)
		res.Metrics.TransferTime += e.transfer
		if res.Ok {
			if res.Ref != nil {
				// Pass-by-reference completion doubles as the ownership
				// transfer (§15): the bytes stayed on the producer, the
				// manager only updates its ref catalog.
				atomic.AddInt64(&m.stats.RefResults, 1)
				atomic.AddInt64(&m.stats.BytesByRef, res.Ref.Size)
				m.refs.noteResult(w.id, res.Ref)
			} else if n := len(res.Value); n > 0 {
				atomic.AddInt64(&m.stats.BytesThroughManager, int64(n))
			}
		}
		if e.task != nil {
			atomic.AddInt64(&m.stats.TasksDone, 1)
			w.v.Commit = w.v.Commit.Sub(e.task.Resources)
			// Cacheable inputs are now resident on that worker.
			for _, in := range e.task.Inputs {
				if in.Cache {
					s.noteReplicaLocked(w, in.Object.ID)
				}
			}
			// Freed resources: tasks and deployments compete for them.
			s.wakeCapacityLocked()
		} else if e.inv != nil {
			atomic.AddInt64(&m.stats.InvocationsDone, 1)
			idle := false
			if li := w.libs[e.library]; li != nil {
				if li.SlotsUsed > 0 {
					li.SlotsUsed--
				}
				li.served++
				idle = li.SlotsUsed == 0
				s.libSlotsChangedLocked(w, li)
			}
			// A freed slot unblocks this library's queue; an instance
			// going fully idle additionally becomes an eviction
			// candidate, which can unblock every other library waiting
			// on capacity (§3.5.2).
			s.markLibDirtyLocked(e.library)
			if idle && m.opts.EvictEmptyLibraries {
				s.markAllLibsDirtyLocked()
			}
		}
	}
	var backoff time.Duration
	retried := false
	if ok && !res.Ok && res.Retryable && m.opts.MaxRetries >= 0 &&
		e.retries < m.opts.MaxRetries && !m.closed.Load() {
		e.retries++
		atomic.AddInt64(&m.stats.Retries, 1)
		s.backoffs++
		backoff = retryBackoff(m.opts.RetryBaseDelay, m.opts.RetryMaxDelay, e.retries, res.ID)
		retried = true
	}
	if ok && !retried && !res.Ok {
		atomic.AddInt64(&m.stats.Failures, 1)
	}
	if ok && !retried && e.inv != nil && len(s.freeInflight) < 1024 {
		s.freeInflight = append(s.freeInflight, e)
	}
	s.mu.Unlock()
	if ok && !retried {
		m.deliver(res)
		// Final delivery returns the spec's tenant quota unit; the
		// freed capacity may release queued plane work, drained and
		// woken inline — no shard lock is held here.
		if m.planeActive.Load() {
			m.plane.release(specTenant(e), true)
		}
	}
	if retried {
		s.requeueAfter(e, w.id, backoff)
	}
	s.wake()
	// Freed capacity is a shard-crossing signal: shards starving on
	// unplaceable work get another chance to reach it.
	m.nudgeStarving()
}

// retryBackoff computes the delay before retry attempt n (1-based):
// exponential growth from base, capped, with a deterministic jitter
// derived from the spec ID so a mass failure does not send every
// retry back at the same instant (policy.RetryJitter — pure and
// seedable, so fidelity traces stay stable).
func retryBackoff(base, cap time.Duration, attempt int, specID int64) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	return time.Duration(policy.RetryJitter(int64(d), specID, attempt))
}

// requeueAfter puts a failed dispatch back on this shard's pending
// queue once its backoff elapses. Requeues stay shard-local — the rule
// the simulator's sharded replay mirrors; if the shard has meanwhile
// lost its workers, the wake loop's evacuation path takes over.
func (s *shard) requeueAfter(e *inflightEntry, avoid string, delay time.Duration) {
	s.m.wg.Add(1)
	time.AfterFunc(delay, func() {
		defer s.m.wg.Done()
		s.mu.Lock()
		s.backoffs--
		if s.m.closed.Load() {
			s.mu.Unlock()
			return
		}
		if e.task != nil {
			s.pendingTasks = append(s.pendingTasks, pendingTask{t: e.task, key: e.ringKey, retries: e.retries, avoid: avoid})
			s.markTasksDirtyLocked()
		} else if e.inv != nil {
			s.enqueueInvLocked(pendingInv{inv: e.inv, retries: e.retries, avoid: avoid})
		}
		s.mu.Unlock()
		s.wake()
	})
}

// deliver pushes a result to the application without ever blocking
// the caller: a full results channel spills into a goroutine instead
// of stalling the worker's reader goroutine (which would stop its
// FileAcks and LibraryAcks from draining). Safe to call with or
// without a shard lock held.
func (m *Manager) deliver(res core.Result) {
	select {
	case m.results <- res:
	default:
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.results <- res
		}()
	}
}

// CheckQuiescence verifies the manager's recovery invariants at rest:
// no pending entry has outlived its transfer, every transfer slot has
// been returned, and no work is queued, in flight, or waiting out a
// retry backoff — in any shard. Chaos tests call this after collecting
// all results; a non-nil error means bookkeeping leaked somewhere
// along a failure path.
func (m *Manager) CheckQuiescence() error {
	if m.planeActive.Load() {
		if err := m.plane.checkQuiescence(); err != nil {
			return err
		}
	}
	for _, s := range m.shards {
		if err := s.checkQuiescence(); err != nil {
			return err
		}
	}
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	for _, id := range core.SortedKeys(m.peers) {
		if n := m.peers[id].out; n != 0 {
			return fmt.Errorf("manager: worker %s still holds %d cross-shard transfer slots", id, n)
		}
	}
	return nil
}

func (s *shard) checkQuiescence() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range core.SortedKeys(s.workers) {
		w := s.workers[id]
		if w.v.TransfersOut != 0 {
			return fmt.Errorf("manager: worker %s still holds %d outbound transfer slots", w.id, w.v.TransfersOut)
		}
		if len(w.v.Pending) != 0 {
			return fmt.Errorf("manager: worker %s has %d unacked staged files", w.id, len(w.v.Pending))
		}
		if len(w.fetchSources) != 0 {
			return fmt.Errorf("manager: worker %s has %d dangling fetch-source records", w.id, len(w.fetchSources))
		}
	}
	if n := len(s.view.PendingCopies); n != 0 {
		return fmt.Errorf("manager: shard %d has %d objects still counted as in-flight copies", s.idx, n)
	}
	if n := len(s.inflight); n != 0 {
		return fmt.Errorf("manager: shard %d has %d dispatches still in flight", s.idx, n)
	}
	if n := len(s.pendingTasks) + s.pendingInvCount; n != 0 {
		return fmt.Errorf("manager: shard %d has %d specs still queued", s.idx, n)
	}
	if s.backoffs != 0 {
		return fmt.Errorf("manager: shard %d has %d retries waiting out backoff", s.idx, s.backoffs)
	}
	return nil
}

// LibraryDeployments returns, for each registered library, how many
// instances are currently deployed and their total share values —
// the data behind Figures 10 and 11.
func (m *Manager) LibraryDeployments() (instances int, totalServed int64) {
	for _, s := range m.shards {
		s.mu.Lock()
		for _, w := range s.workers { //vinelint:unordered summing counters commutes
			for _, li := range w.libs { //vinelint:unordered summing counters commutes
				if li.Ready {
					instances++
					totalServed += li.served
				}
			}
		}
		s.mu.Unlock()
	}
	return instances, totalServed
}
