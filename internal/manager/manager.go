// Package manager implements the TaskVine manager: it accepts worker
// connections, distributes content-addressed files (directly or via
// peer spanning trees, §3.3), schedules stateless tasks and stateful
// invocations, deploys library instances on demand around a hash ring
// of workers, evicts empty libraries to reclaim resources (§3.5.2),
// and retrieves results.
//
// Scheduling is incremental: every event records which queues it could
// unblock (dirty marks, index.go) and the wake loop runs one coalesced
// pass over exactly those queues, instead of rescanning every pending
// spec against every worker after every event.
package manager

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
)

// Options configures a manager.
type Options struct {
	// Name labels the manager (logs only).
	Name string
	// PeerTransfers enables worker-to-worker distribution (Figure 3b);
	// off means every byte flows from the manager (Figure 3a).
	PeerTransfers bool
	// PeerTransferCap is the per-worker cap N on concurrent outbound
	// transfers, avoiding sinks in the spanning tree (§3.3). Zero
	// defaults to 3.
	PeerTransferCap int
	// ClusterAware prefers same-cluster peers as transfer sources
	// (Figure 3c).
	ClusterAware bool
	// EvictEmptyLibraries enables reclaiming workers occupied by idle
	// libraries when another library needs the space (§3.5.2). Defaults
	// to true via New.
	EvictEmptyLibraries bool
	// ResultBuffer sizes the results channel (default 4096).
	ResultBuffer int
	// MaxRetries bounds how many times one task or invocation is
	// retried after infrastructure failures; worker-crash requeues and
	// retryable worker errors both draw on the same per-spec budget.
	// Zero defaults to 3; negative disables retries entirely.
	MaxRetries int
	// RetryBaseDelay is the backoff before the first retry of a failed
	// (but retryable) result; it doubles on each subsequent retry up
	// to RetryMaxDelay. Zero defaults to 50ms. Crash requeues skip the
	// backoff — the failed worker is already gone.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff. Zero defaults to 2s.
	RetryMaxDelay time.Duration
	// DecisionTrace, when set, records every scheduling decision the
	// policy core hands this manager (differential and golden tests).
	// nil — the default — keeps tracing entirely off the hot path.
	DecisionTrace *policy.Recorder
}

// Stats counts manager-side activity for tests and experiments. All
// fields are maintained with atomic adds so Stats() never takes the
// scheduler lock.
type Stats struct {
	DirectTransfers   int64 // manager→worker file sends
	PeerTransfers     int64 // worker→worker file sends
	LibrariesDeployed int64
	LibrariesEvicted  int64
	TasksDone         int64
	InvocationsDone   int64
	Failures          int64 // final failures delivered to the application
	Requeued          int64 // specs requeued because their worker died
	Retries           int64 // retryable failed results re-dispatched
	Restaged          int64 // failed peer fetches re-staged from the manager
	SchedulePasses    int64 // coalesced scheduling passes executed
	CoalescedWakeups  int64 // wakeups absorbed by an already-running pass
	WorkerLogs        int64 // worker-side diagnostics received (MsgLog), e.g. protocol decode errors
}

// Manager coordinates workers.
type Manager struct {
	opts Options
	ln   net.Listener

	mu          sync.Mutex
	workers     map[string]*workerState
	libSpecs    map[string]*core.LibrarySpec
	libFailures map[string]int
	// libInfraFailures counts consecutive retryable (infrastructure)
	// deployment failures per library, bounded separately from
	// broken-setup failures.
	libInfraFailures map[string]int
	// installing counts library instances deployed but not yet acked,
	// per library. Each queued invocation claims one in-flight install
	// before the scheduler plans a new deploy, so a burst of events
	// during a slow install cannot over-provision instances beyond the
	// queue length.
	installing   map[string]int
	pendingTasks []pendingTask
	// pendingInvs queues invocations per library, so an event touching
	// one library reconsiders only that library's queue. Order within a
	// queue is submission order.
	pendingInvs     map[string][]*core.InvocationSpec
	pendingInvCount int
	inflight        map[int64]*inflightEntry
	// retries counts, per spec ID, how many times the work has been
	// re-dispatched (crash requeues + retryable failures).
	retries map[int64]int
	// avoid remembers the worker a spec last failed on, so the retry
	// prefers a different placement when one exists.
	avoid map[int64]string
	// catalog remembers every FileSpec the manager has staged, so a
	// failed peer fetch can be recovered by re-staging the object from
	// the manager's own link.
	catalog map[string]core.FileSpec
	// backoffs counts retries sitting in their backoff timers — work
	// that is in neither pendingTasks/pendingInvs nor inflight.
	backoffs int
	nextID   int64
	stats    Stats
	closed   bool

	// ---- scheduler view (policy core) ----

	// view is the cluster snapshot every scheduling decision reads: the
	// worker table, the placement ring, and the derived indexes
	// (Holders, PendingCopies, ReadyFree, LibFull). index.go keeps it
	// current; internal/policy decides against it; schedule.go executes.
	view *policy.ClusterView
	// rec, when non-nil, records the decision trace (Options.DecisionTrace).
	rec *policy.Recorder
	// objWaiters: object ID → queues blocked on its first copy.
	objWaiters map[string]*objWaiter

	// ---- dirty marks for the coalesced wake loop ----
	dirtyTasks   bool
	dirtyAllLibs bool
	dirtyLibs    map[string]bool
	scheduling   bool

	// obsMu guards holderCount so ObjectHolders reads never contend
	// with the scheduler.
	obsMu       sync.RWMutex
	holderCount map[string]int

	results chan core.Result
	wg      sync.WaitGroup
}

// pendingTask pairs a queued task with its precomputed ring key, so
// placement attempts never re-format it.
type pendingTask struct {
	t   *core.TaskSpec
	key string
}

type inflightEntry struct {
	worker  string
	library string // "" for plain tasks
	ringKey string // tasks only: consistent-hash key, reused on requeue
	task    *core.TaskSpec
	inv     *core.InvocationSpec
	sentAt  time.Time
	// waiting holds object IDs staged for this dispatch whose FileAck
	// has not arrived yet; the last ack stamps the transfer duration.
	waiting  map[string]bool
	transfer float64 // dispatch→last FileAck, seconds
}

type outMsg struct {
	t proto.MsgType
	v any
	// bulk frames carry v as a JSON header and payload as raw bytes
	// (proto.SendBulk) — no base64, no second buffer.
	bulk    bool
	payload []byte
}

type workerState struct {
	id    string
	hello proto.Hello
	conn  *proto.Conn
	nc    net.Conn
	sendq chan outMsg
	// v is this worker's entry in the policy view: resources, cached
	// and in-flight files, transfer slots, liveness. index.go binds it
	// at registration and every handler reports transitions through it.
	v *policy.WorkerView
	// fetchSources maps object ID → source worker of an in-flight peer
	// fetch, to release the source's transfer slot on ack.
	fetchSources map[string]string
	// ackWaiters maps object ID → dispatches on this worker whose
	// TransferTime is waiting for that object's FileAck.
	ackWaiters map[string][]*inflightEntry
	libs       map[string]*libInstance
}

// libInstance is one deployed library instance: the policy-visible
// state (embedded view, shared by pointer with the ClusterView) plus
// engine-only bookkeeping.
type libInstance struct {
	policy.LibraryView
	instance string
	served   int64
}

// New creates a manager with defaults applied.
func New(opts Options) *Manager {
	if opts.PeerTransferCap <= 0 {
		opts.PeerTransferCap = 3
	}
	if opts.ResultBuffer <= 0 {
		opts.ResultBuffer = 4096
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.RetryBaseDelay <= 0 {
		opts.RetryBaseDelay = 50 * time.Millisecond
	}
	if opts.RetryMaxDelay <= 0 {
		opts.RetryMaxDelay = 2 * time.Second
	}
	return &Manager{
		opts:             opts,
		workers:          map[string]*workerState{},
		libSpecs:         map[string]*core.LibrarySpec{},
		libFailures:      map[string]int{},
		libInfraFailures: map[string]int{},
		installing:       map[string]int{},
		pendingInvs:      map[string][]*core.InvocationSpec{},
		inflight:         map[int64]*inflightEntry{},
		retries:          map[int64]int{},
		avoid:            map[int64]string{},
		catalog:          map[string]core.FileSpec{},
		view: policy.NewClusterView(policy.Options{
			PeerTransfers:       opts.PeerTransfers,
			PeerTransferCap:     opts.PeerTransferCap,
			ClusterAware:        opts.ClusterAware,
			EvictEmptyLibraries: opts.EvictEmptyLibraries,
		}),
		rec:         opts.DecisionTrace,
		objWaiters:  map[string]*objWaiter{},
		holderCount: map[string]int{},
		results:     make(chan core.Result, opts.ResultBuffer),
	}
}

// NewDefault creates a manager with peer transfers and empty-library
// eviction enabled — the paper's recommended configuration.
func NewDefault() *Manager {
	return New(Options{PeerTransfers: true, EvictEmptyLibraries: true})
}

// Listen starts accepting worker connections on 127.0.0.1 and returns
// the address workers should dial.
func (m *Manager) Listen() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("manager: listen: %w", err)
	}
	m.ln = ln
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.serveWorker(nc)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Results is the stream of completed task/invocation results.
func (m *Manager) Results() <-chan core.Result { return m.results }

// Stats returns a snapshot of manager counters without touching the
// scheduler lock.
func (m *Manager) Stats() Stats {
	return Stats{
		DirectTransfers:   atomic.LoadInt64(&m.stats.DirectTransfers),
		PeerTransfers:     atomic.LoadInt64(&m.stats.PeerTransfers),
		LibrariesDeployed: atomic.LoadInt64(&m.stats.LibrariesDeployed),
		LibrariesEvicted:  atomic.LoadInt64(&m.stats.LibrariesEvicted),
		TasksDone:         atomic.LoadInt64(&m.stats.TasksDone),
		InvocationsDone:   atomic.LoadInt64(&m.stats.InvocationsDone),
		Failures:          atomic.LoadInt64(&m.stats.Failures),
		Requeued:          atomic.LoadInt64(&m.stats.Requeued),
		Retries:           atomic.LoadInt64(&m.stats.Retries),
		Restaged:          atomic.LoadInt64(&m.stats.Restaged),
		SchedulePasses:    atomic.LoadInt64(&m.stats.SchedulePasses),
		CoalescedWakeups:  atomic.LoadInt64(&m.stats.CoalescedWakeups),
		WorkerLogs:        atomic.LoadInt64(&m.stats.WorkerLogs),
	}
}

// WorkersConnected returns the number of live workers.
func (m *Manager) WorkersConnected() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// WaitForWorkers blocks until at least n workers are connected or the
// timeout elapses.
func (m *Manager) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if m.WorkersConnected() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("manager: only %d of %d workers connected after %v", m.WorkersConnected(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Shutdown stops the manager and tells all workers to exit.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, id := range core.SortedKeys(m.workers) {
		m.workers[id].enqueue(outMsg{t: proto.MsgShutdown, v: struct{}{}})
	}
	m.mu.Unlock()
	if m.ln != nil {
		m.ln.Close()
	}
}

// RegisterLibrary makes a library known to the manager. Instances are
// deployed to workers on demand when invocations arrive (§3.5.2).
func (m *Manager) RegisterLibrary(spec *core.LibrarySpec) error {
	if spec.Name == "" {
		return fmt.Errorf("manager: library needs a name")
	}
	if len(spec.Functions) == 0 {
		return fmt.Errorf("manager: library %q has no functions", spec.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.libSpecs[spec.Name]; dup {
		return fmt.Errorf("manager: library %q already registered", spec.Name)
	}
	m.libSpecs[spec.Name] = spec
	return nil
}

// Submit enqueues a stateless task and returns its ID.
func (m *Manager) Submit(t *core.TaskSpec) int64 {
	m.mu.Lock()
	m.nextID++
	t.ID = m.nextID
	m.pendingTasks = append(m.pendingTasks, pendingTask{t: t, key: taskRingKey(t.ID)})
	m.markTasksDirtyLocked()
	m.mu.Unlock()
	m.wake()
	return t.ID
}

// SubmitInvocation enqueues a FunctionCall and returns its ID.
func (m *Manager) SubmitInvocation(inv *core.InvocationSpec) int64 {
	m.mu.Lock()
	m.nextID++
	inv.ID = m.nextID
	m.enqueueInvLocked(inv)
	m.mu.Unlock()
	m.wake()
	return inv.ID
}

// Collect drains n results from the result stream.
func (m *Manager) Collect(n int, timeout time.Duration) ([]core.Result, error) {
	out := make([]core.Result, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case r := <-m.results:
			out = append(out, r)
		case <-deadline:
			return out, fmt.Errorf("manager: collected %d of %d results before timeout", len(out), n)
		}
	}
	return out, nil
}

// ---- worker connection handling ----

func (w *workerState) enqueue(msg outMsg) {
	select {
	case w.sendq <- msg:
	default:
		// Queue full: drop the connection rather than deadlock the
		// scheduler; the reader loop will clean up.
		w.nc.Close()
	}
}

func (m *Manager) serveWorker(nc net.Conn) {
	conn := proto.NewConn(nc)
	t, raw, err := conn.Recv()
	if err != nil || t != proto.MsgHello {
		nc.Close()
		return
	}
	hello, err := proto.Decode[proto.Hello](raw)
	if err != nil || hello.WorkerID == "" {
		nc.Close()
		return
	}

	w := &workerState{
		id:           hello.WorkerID,
		hello:        hello,
		conn:         conn,
		nc:           nc,
		sendq:        make(chan outMsg, 16384),
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}

	m.mu.Lock()
	if _, dup := m.workers[w.id]; dup || m.closed {
		m.mu.Unlock()
		nc.Close()
		return
	}
	m.registerWorkerLocked(w)
	// Fresh capacity: pending tasks and every waiting library queue may
	// now be placeable here.
	m.wakeCapacityLocked()
	m.mu.Unlock()

	// Sender goroutine drains the queue so scheduling never blocks on
	// TCP backpressure.
	done := make(chan struct{})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case msg := <-w.sendq:
				var err error
				if msg.bulk {
					err = conn.SendBulk(msg.t, msg.v, msg.payload)
				} else {
					err = conn.Send(msg.t, msg.v)
				}
				if err != nil {
					nc.Close()
					return
				}
			case <-done:
				return
			}
		}
	}()

	m.wake()

	for {
		t, raw, err := conn.Recv()
		if err != nil {
			break
		}
		switch t {
		case proto.MsgFileAck:
			if ack, err := proto.Decode[proto.FileAck](raw); err == nil {
				m.onFileAck(w, ack)
			}
		case proto.MsgLibraryAck:
			if ack, err := proto.Decode[proto.LibraryAck](raw); err == nil {
				m.onLibraryAck(w, ack)
			}
		case proto.MsgResult:
			if res, err := proto.Decode[core.Result](raw); err == nil {
				m.onResult(w, res)
			}
		case proto.MsgLog:
			// Worker-side diagnostics (today: protocol decode errors the
			// worker would otherwise swallow). Surface them in the
			// manager's log and count them so tests and operators notice.
			if lm, err := proto.Decode[proto.LogMsg](raw); err == nil {
				atomic.AddInt64(&m.stats.WorkerLogs, 1)
				log.Printf("manager %s: worker %s: %s", m.opts.Name, lm.Worker, lm.Text)
			}
		}
	}
	close(done)
	m.onWorkerGone(w)
	nc.Close()
}

func (m *Manager) onWorkerGone(w *workerState) {
	m.mu.Lock()
	// The dead worker may have been the destination of in-flight peer
	// fetches: release each source's transfer slot, or the sources are
	// bled dry one crash at a time until pickSourceLocked permanently
	// excludes them and the spanning tree degrades to manager-only
	// sends.
	for id, src := range w.fetchSources { //vinelint:unordered slot releases commute; each entry touches a distinct record
		delete(w.fetchSources, id)
		if sw, live := m.workers[src]; live && sw.v.TransfersOut > 0 {
			sw.v.TransfersOut--
		}
	}
	// Drop the worker from every index (replicas, ready instances,
	// in-flight copies — waking placements queued behind a first copy
	// that will now never confirm).
	m.dropWorkerLocked(w)
	// Requeue everything that was running there, within each spec's
	// retry budget; a spec that has already exhausted it fails instead
	// of bouncing between crashing workers forever. Requeue in
	// ascending spec-ID order — map iteration order would otherwise
	// make the post-crash schedule nondeterministic, which the
	// differential fidelity harness (and anyone replaying a decision
	// trace) cannot tolerate.
	var lost []int64
	for _, id := range core.SortedKeys(m.inflight) {
		if m.inflight[id].worker == w.id {
			lost = append(lost, id)
		}
	}
	for _, id := range lost {
		e := m.inflight[id]
		delete(m.inflight, id)
		if m.opts.MaxRetries >= 0 && m.retries[id] < m.opts.MaxRetries {
			m.retries[id]++
			m.avoid[id] = w.id
			atomic.AddInt64(&m.stats.Requeued, 1)
			if e.task != nil {
				m.pendingTasks = append(m.pendingTasks, pendingTask{t: e.task, key: e.ringKey})
				m.markTasksDirtyLocked()
			} else if e.inv != nil {
				m.enqueueInvLocked(e.inv)
			}
			continue
		}
		atomic.AddInt64(&m.stats.Failures, 1)
		delete(m.retries, id)
		delete(m.avoid, id)
		m.deliver(core.Result{ID: id, Ok: false,
			Err: fmt.Sprintf("manager: worker %s lost and retry budget exhausted", w.id)})
	}
	// Losing a worker changes the ring; anything whose placement was
	// pinned behind this worker's state gets another look.
	m.wakeCapacityLocked()
	m.mu.Unlock()
	m.wake()
}

func (m *Manager) onFileAck(w *workerState, ack proto.FileAck) {
	m.mu.Lock()
	m.clearPendingLocked(w, ack.ID)
	src, fromPeer := w.fetchSources[ack.ID]
	if fromPeer {
		delete(w.fetchSources, ack.ID)
		if sw, live := m.workers[src]; live && sw.v.TransfersOut > 0 {
			sw.v.TransfersOut--
		}
	} else if ack.Source != "" {
		// The worker echoes the source the fetch was assigned
		// (proto.FetchFile.Source), so a fetch the manager no longer
		// tracks — its record displaced by recovery — still returns the
		// source's transfer slot instead of bleeding it.
		fromPeer = true
		if sw, live := m.workers[ack.Source]; live && sw.v.TransfersOut > 0 {
			sw.v.TransfersOut--
		}
	}
	if ack.Ok && ack.Cache {
		m.noteReplicaLocked(w, ack.ID)
	}
	restaged := false
	if !ack.Ok && fromPeer && w.v.Alive {
		// The peer fetch failed — stalled source, vanished source, or
		// timeout. The manager's own link is always a valid source:
		// re-stage directly rather than leaving every dispatch behind
		// this copy to die on "input not staged".
		if fs, known := m.catalog[ack.ID]; known {
			m.directSendLocked(w, fs)
			atomic.AddInt64(&m.stats.Restaged, 1)
			restaged = true
		}
	}
	// Stamp staging completion on every dispatch that was waiting for
	// this object on this worker: TransferTime is dispatch→last ack,
	// not the time spent enqueueing messages. The per-worker waiter
	// index hands us exactly those dispatches — unless the copy is
	// being restaged, in which case they are still waiting: the
	// replacement transfer's own ack will settle them.
	if list := w.ackWaiters[ack.ID]; !restaged && len(list) > 0 {
		delete(w.ackWaiters, ack.ID)
		now := time.Now()
		for _, e := range list {
			if e.waiting[ack.ID] {
				delete(e.waiting, ack.ID)
				e.transfer = now.Sub(e.sentAt).Seconds()
			}
		}
	}
	// Whether the copy confirmed (new source available) or failed (the
	// block is gone), everything queued behind this object gets one
	// reconsideration.
	m.wakeObjWaitersLocked(ack.ID)
	m.mu.Unlock()
	m.wake()
}

// maxLibraryFailures is how many consecutive failed deployments a
// library gets before its pending invocations are failed instead of
// retried — a broken context setup would otherwise redeploy forever.
const maxLibraryFailures = 3

// maxLibraryInfraFailures bounds consecutive *retryable* deployment
// failures (inputs lost to stalled transfers, resources exhausted).
// It is deliberately generous: chaos that heals should never
// quarantine a healthy library, but a library whose environment can
// never be staged must eventually fail its invocations cleanly.
const maxLibraryInfraFailures = 20

func (m *Manager) onLibraryAck(w *workerState, ack proto.LibraryAck) {
	m.mu.Lock()
	li := w.libs[ack.Library]
	if li != nil {
		if !li.Ready && m.installing[ack.Library] > 0 {
			m.installing[ack.Library]--
		}
		if ack.Ok {
			li.Ready = true
			li.instance = ack.Instance
			m.libFailures[ack.Library] = 0
			m.libInfraFailures[ack.Library] = 0
			m.libSlotsChangedLocked(w, li)
			m.markLibDirtyLocked(ack.Library)
			// A ready instance with no slots in use is an eviction
			// candidate (§3.5.2): other libraries blocked on capacity
			// may now be deployable here.
			if li.SlotsUsed == 0 && m.opts.EvictEmptyLibraries {
				m.markAllLibsDirtyLocked()
			}
		} else {
			li.Failed = true
			delete(w.libs, ack.Library)
			m.view.RemoveLibrary(w.v, ack.Library)
			w.v.Commit = w.v.Commit.Sub(li.Res)
			// Infrastructure-caused install failures (inputs lost to a
			// stalled transfer, resources gone) draw on a much larger
			// budget than broken-setup failures: transient chaos should
			// not quarantine a healthy library, but a persistently
			// unstageable one must still fail cleanly instead of
			// redeploying forever.
			if ack.Retryable {
				m.libInfraFailures[ack.Library]++
				if m.libInfraFailures[ack.Library] >= maxLibraryInfraFailures {
					m.failPendingForLibraryLocked(ack.Library, ack.Err)
				}
			} else {
				m.libFailures[ack.Library]++
				if m.libFailures[ack.Library] >= maxLibraryFailures {
					m.failPendingForLibraryLocked(ack.Library, ack.Err)
				}
			}
			// The failed install released resources on this worker.
			m.wakeCapacityLocked()
		}
	}
	m.mu.Unlock()
	m.wake()
}

// failPendingForLibraryLocked fails every queued invocation of a
// library that cannot be deployed. Caller holds the lock.
func (m *Manager) failPendingForLibraryLocked(library, reason string) {
	q := m.pendingInvs[library]
	if len(q) == 0 {
		return
	}
	delete(m.pendingInvs, library)
	m.pendingInvCount -= len(q)
	for _, inv := range q {
		atomic.AddInt64(&m.stats.Failures, 1)
		m.emitFailure(inv, fmt.Errorf("manager: library %q failed to deploy %d times: %s",
			library, maxLibraryFailures, reason))
	}
}

func (m *Manager) onResult(w *workerState, res core.Result) {
	m.mu.Lock()
	e, ok := m.inflight[res.ID]
	if ok {
		delete(m.inflight, res.ID)
		res.Metrics.TransferTime += e.transfer
		if e.task != nil {
			atomic.AddInt64(&m.stats.TasksDone, 1)
			w.v.Commit = w.v.Commit.Sub(e.task.Resources)
			// Cacheable inputs are now resident on that worker.
			for _, in := range e.task.Inputs {
				if in.Cache {
					m.noteReplicaLocked(w, in.Object.ID)
				}
			}
			// Freed resources: tasks and deployments compete for them.
			m.wakeCapacityLocked()
		} else if e.inv != nil {
			atomic.AddInt64(&m.stats.InvocationsDone, 1)
			idle := false
			if li := w.libs[e.library]; li != nil {
				if li.SlotsUsed > 0 {
					li.SlotsUsed--
				}
				li.served++
				idle = li.SlotsUsed == 0
				m.libSlotsChangedLocked(w, li)
			}
			// A freed slot unblocks this library's queue; an instance
			// going fully idle additionally becomes an eviction
			// candidate, which can unblock every other library waiting
			// on capacity (§3.5.2).
			m.markLibDirtyLocked(e.library)
			if idle && m.opts.EvictEmptyLibraries {
				m.markAllLibsDirtyLocked()
			}
		}
	}
	var backoff time.Duration
	retried := false
	if ok && !res.Ok && res.Retryable && m.opts.MaxRetries >= 0 &&
		m.retries[res.ID] < m.opts.MaxRetries && !m.closed {
		m.retries[res.ID]++
		atomic.AddInt64(&m.stats.Retries, 1)
		m.avoid[res.ID] = w.id
		m.backoffs++
		backoff = m.backoffDelayLocked(m.retries[res.ID])
		retried = true
	}
	if ok && !retried {
		if !res.Ok {
			atomic.AddInt64(&m.stats.Failures, 1)
		}
		delete(m.retries, res.ID)
		delete(m.avoid, res.ID)
		m.deliver(res)
	}
	m.mu.Unlock()
	if retried {
		m.requeueAfter(e, backoff)
	}
	m.wake()
}

// backoffDelayLocked computes the exponential backoff before retry
// attempt n (1-based).
func (m *Manager) backoffDelayLocked(attempt int) time.Duration {
	d := m.opts.RetryBaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= m.opts.RetryMaxDelay {
			return m.opts.RetryMaxDelay
		}
	}
	if d > m.opts.RetryMaxDelay {
		d = m.opts.RetryMaxDelay
	}
	return d
}

// requeueAfter puts a failed dispatch back on the pending queue once
// its backoff elapses.
func (m *Manager) requeueAfter(e *inflightEntry, delay time.Duration) {
	m.wg.Add(1)
	time.AfterFunc(delay, func() {
		defer m.wg.Done()
		m.mu.Lock()
		m.backoffs--
		if m.closed {
			m.mu.Unlock()
			return
		}
		if e.task != nil {
			m.pendingTasks = append(m.pendingTasks, pendingTask{t: e.task, key: e.ringKey})
			m.markTasksDirtyLocked()
		} else if e.inv != nil {
			m.enqueueInvLocked(e.inv)
		}
		m.mu.Unlock()
		m.wake()
	})
}

// deliver pushes a result to the application without ever blocking
// the caller: a full results channel spills into a goroutine instead
// of stalling the worker's reader goroutine (which would stop its
// FileAcks and LibraryAcks from draining). Safe to call with or
// without m.mu held.
func (m *Manager) deliver(res core.Result) {
	select {
	case m.results <- res:
	default:
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.results <- res
		}()
	}
}

// CheckQuiescence verifies the manager's recovery invariants at rest:
// no pending entry has outlived its transfer, every transfer slot has
// been returned, and no work is queued, in flight, or waiting out a
// retry backoff. Chaos tests call this after collecting all results;
// a non-nil error means bookkeeping leaked somewhere along a failure
// path.
func (m *Manager) CheckQuiescence() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range core.SortedKeys(m.workers) {
		w := m.workers[id]
		if w.v.TransfersOut != 0 {
			return fmt.Errorf("manager: worker %s still holds %d outbound transfer slots", w.id, w.v.TransfersOut)
		}
		if len(w.v.Pending) != 0 {
			return fmt.Errorf("manager: worker %s has %d unacked staged files", w.id, len(w.v.Pending))
		}
		if len(w.fetchSources) != 0 {
			return fmt.Errorf("manager: worker %s has %d dangling fetch-source records", w.id, len(w.fetchSources))
		}
	}
	if n := len(m.view.PendingCopies); n != 0 {
		return fmt.Errorf("manager: %d objects still counted as in-flight copies", n)
	}
	if n := len(m.inflight); n != 0 {
		return fmt.Errorf("manager: %d dispatches still in flight", n)
	}
	if n := len(m.pendingTasks) + m.pendingInvCount; n != 0 {
		return fmt.Errorf("manager: %d specs still queued", n)
	}
	if m.backoffs != 0 {
		return fmt.Errorf("manager: %d retries waiting out backoff", m.backoffs)
	}
	return nil
}

// LibraryDeployments returns, for each registered library, how many
// instances are currently deployed and their total share values —
// the data behind Figures 10 and 11.
func (m *Manager) LibraryDeployments() (instances int, totalServed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers { //vinelint:unordered summing counters commutes
		for _, li := range w.libs { //vinelint:unordered summing counters commutes
			if li.Ready {
				instances++
				totalServed += li.served
			}
		}
	}
	return instances, totalServed
}
