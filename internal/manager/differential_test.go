package manager

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Differential fidelity harness: one random event trace — submissions,
// environment acks, library readiness, completions — is fed through
// the real manager (synthetic workers, synchronous event injection)
// and through the simulator's untimed Replay. Both engines consult the
// shared policy core (internal/policy) for every scheduling decision
// against equivalently-maintained cluster views, so their decision
// traces must match line for line. A divergence means one driver's
// view maintenance or decision execution drifted from the other's —
// exactly the fidelity bug class this refactor exists to make
// impossible.
//
// The harness keeps the engines in lockstep by construction:
//
//   - Worker IDs, resources, library/environment identities, and the
//     peer-transfer options are identical, so both views hash to the
//     same ring and index the same objects.
//   - The sim side runs ManagerSourceCap so high its manager link
//     never saturates — the real manager's semantics (it has no
//     self-cap; only the paper's simulator models one).
//   - For the invocation workload, completions are withheld while a
//     deploy is in flight and invocations are queued: the manager
//     binds a queued invocation to a worker only when an instance
//     becomes ready, while the simulator binds it to the deploying
//     slot immediately, so a completion elsewhere in that window would
//     legitimately place it differently. Every other interleaving is
//     fair game.

const (
	diffLib = "difflib"
	diffEnv = "env:difflib"
)

// replayEngine is the event surface shared by the simulator's two
// untimed drivers: the single-loop Replay and the ShardedReplay
// composite. The harness drives either through the same trace, so the
// sharded manager can be diffed against the sharded replay shard by
// shard.
type replayEngine interface {
	Submit(n int)
	SubmitTenant(tenant string)
	PlaneDecisions() []string
	EnvArrived(id string) bool
	EnvFailed(id string) bool
	AddWorker() string
	KillWorker(id string) bool
	LibReady(id string) bool
	Complete(id string) bool
	CompleteTask(id, key string) bool
	Fail(id, key string) bool
	Pending() int
	Decisions() []string
	Dump() string
	ViewFor(id string) *policy.WorkerView
}

// shardTracer is implemented by both engines' sharded drivers; the
// harness uses it to localize a divergence to one shard before
// comparing the merged traces.
type shardTracer interface {
	ShardDecisions() [][]string
}

// refReplay is the proxy-object event surface (DESIGN.md §15) the ref
// differential drives on the sim side: by-ref completions, ref-input
// submissions, fetch acks and faults, and the global ref decision
// stream compared against Manager.RefDecisions. Single-shard only —
// the manager's ref trace is deterministic because one shard lock
// serializes every producer.
type refReplay interface {
	SubmitTaskRefs(refs ...string)
	CompleteTaskRef(id, key string, ref core.ObjectRef) bool
	RefArrived(id, refID string) bool
	RefFailed(id, refID string) bool
	RefDecisions() []string
}

func diffEnvSpec() core.FileSpec {
	return core.FileSpec{
		Object:       &content.Object{ID: diffEnv, Name: diffEnv, LogicalSize: 64 << 20},
		Cache:        true,
		PeerTransfer: true,
		Unpack:       true,
	}
}

type diffHarness struct {
	t      *testing.T
	m      *Manager
	rp     replayEngine
	ws     []*workerState
	dead   map[string]bool
	slots  int
	shards int
	next   int // next worker index (churn continues the numbering)
	level  core.ReuseLevel
	env    core.FileSpec
	opLog  []string
	// tenantMix, when non-nil, tags every submitted spec with a tenant
	// drawn from the mix in rotation (deterministic, so both engines see
	// the identical tenant sequence); submits counts spec submissions.
	tenantMix []string
	submits   int
	// refRp is the sim's proxy-object surface (set when opts.refs);
	// producers marks spec IDs submitted with ResultByRef, refsMade
	// records every fabricated ref in creation order, and nextRef
	// numbers them — both engines see the identical ref identities and
	// sizes.
	refRp     refReplay
	producers map[int64]bool
	refsMade  []core.ObjectRef
	nextRef   int
}

// diffTenants is the multi-tenant differential registry: one
// weight-heavy unbounded tenant, one quota-gated tenant that builds a
// plane queue and throttles, and one tightly-bounded tenant that sheds
// under pressure — every admission verdict and the fair-share drain
// interleaving all appear in a 600-op trace.
func diffTenants() []core.TenantSpec {
	return []core.TenantSpec{
		{Name: "alpha", Weight: 3},
		{Name: "beta", Weight: 1, Quota: 4, ThrottleAt: 6},
		{Name: "gamma", Weight: 2, Quota: 2, MaxQueue: 3, ThrottleAt: 2},
	}
}

// diffTenantMix rotates every registry tenant (gamma oversampled to
// force sheds), an empty tenant (bypasses the plane entirely), and an
// unregistered one (degrades to the direct path).
var diffTenantMix = []string{"alpha", "beta", "alpha", "gamma", "", "alpha", "ghost", "beta", "gamma", "gamma"}

func newDiffHarness(t *testing.T, level core.ReuseLevel, workers, slots int, opts diffOpts) *diffHarness {
	t.Helper()
	shards := opts.shards
	if shards < 1 {
		shards = 1
	}
	// A retry budget no random trace can exhaust, and a backoff short
	// enough that the harness's wait for the requeue is instant. The
	// settings only matter on failure-injecting traces; the happy-path
	// workloads never draw on them.
	mopts := Options{
		PeerTransfers: true, DecisionTrace: &policy.Recorder{}, Shards: shards,
		MaxRetries: 1000, RetryBaseDelay: time.Nanosecond, RetryMaxDelay: time.Nanosecond,
	}
	if opts.tenants {
		mopts.Tenants = diffTenants()
	}
	if opts.refs {
		// A cap the 1–3MB fabricated refs overflow constantly, so
		// ownership transfers, spills, shared-tier resolves, and
		// promotes all appear in the trace (a 3MB ref even self-spills).
		mopts.RefOwnedBytesCap = 2 << 20
	}
	m := New(mopts)
	h := &diffHarness{t: t, m: m, dead: map[string]bool{}, slots: slots, shards: shards, next: workers, level: level, env: diffEnvSpec(), producers: map[int64]bool{}}
	if opts.tenants {
		h.tenantMix = diffTenantMix
	}
	if level == core.L3 {
		if err := m.RegisterLibrary(&core.LibrarySpec{
			Name:      diffLib,
			Functions: []core.FunctionSpec{{Name: "f", Source: "1"}},
			Env:       &h.env,
			Slots:     1,
			Resources: core.Resources{Cores: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := sim.Config{
		App:              &apps.CostModel{Name: diffLib, EnvPackedBytes: 64 << 20},
		Level:            level,
		Workers:          workers,
		SlotsPerWorker:   slots,
		PeerTransfers:    true,
		PeerCap:          3,
		ManagerSourceCap: 1 << 30,
		Seed:             1,
	}
	if opts.tenants {
		cfg.Tenants = diffTenants()
	}
	if opts.refs {
		cfg.RefOwnedBytesCap = 2 << 20
		// The manager always plans through PlanTaskBatch; for plain
		// inputs sequential planning is provably equivalent, but a ref
		// stage's suppression effect (the batch overlay's pending mark)
		// only matches when the sim plans through the same batch entry
		// point.
		cfg.Batched = true
	}
	if shards == 1 {
		h.rp = sim.NewReplay(cfg)
	} else {
		// The sharded replay drains through the batched policy entry
		// points, like the sharded manager; workers join through the
		// composite so IDs shard identically on both sides.
		cfg.Batched = true
		cfg.Workers = 0
		h.rp = sim.NewShardedReplay(cfg, shards)
	}
	if opts.refs {
		rr, ok := h.rp.(refReplay)
		if !ok {
			t.Fatalf("ref harness driving an engine with no proxy-object surface (%T)", h.rp)
		}
		h.refRp = rr
	}
	for i := 0; i < workers; i++ {
		h.ws = append(h.ws, h.newWorker(fmt.Sprintf("w%04d", i)))
		if shards > 1 {
			if simID := h.rp.AddWorker(); simID != h.ws[i].id {
				t.Fatalf("worker numbering diverged at setup: manager %s, sim %s", h.ws[i].id, simID)
			}
		}
	}
	return h
}

// mgrTrace and mgrDump read the manager's decision trace through the
// deterministic per-shard merge (identical to the shared recorder when
// Shards == 1).
func (h *diffHarness) mgrTrace() []string { return h.m.MergedDecisions() }

func (h *diffHarness) mgrDump() string {
	s := ""
	for _, line := range h.mgrTrace() {
		s += line + "\n"
	}
	return s
}

// newWorker registers a synthetic worker with the manager, triggering
// the same capacity wake a real connection would.
func (h *diffHarness) newWorker(id string) *workerState {
	w := &workerState{
		id: id,
		// DataAddr must be non-empty: the ref plane treats an
		// address-less resolve source as dead (refSourceAddrs).
		hello:        proto.Hello{WorkerID: id, Resources: core.Resources{Cores: h.slots}, DataAddr: "sim://" + id},
		sendq:        make(chan outMsg, 256),
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}
	if !h.m.adoptWorker(w) {
		h.t.Fatalf("duplicate worker %s", w.id)
	}
	return w
}

// shardOf is the home shard of a harness worker.
func (h *diffHarness) shardOf(w *workerState) *shard {
	return h.m.shardFor(w.id)
}

// pendingInvTotal sums queued invocations across all shards.
func (h *diffHarness) pendingInvTotal() int {
	n := 0
	for _, s := range h.m.shards {
		s.mu.Lock()
		n += s.pendingInvCount
		s.mu.Unlock()
	}
	return n
}

// live returns the indices of living workers, in worker order.
func (h *diffHarness) live() []int {
	var out []int
	for i, w := range h.ws {
		if !h.dead[w.id] {
			out = append(out, i)
		}
	}
	return out
}

// settle drops queued worker messages so the synthetic send queues
// never fill (a full queue would drop the "connection").
func (h *diffHarness) settle() {
	for _, w := range h.ws {
		drainMsgs(w)
	}
}

// crossCheck compares per-worker view accounting between the two
// engines, localizing a drift to the first op that caused it.
func (h *diffHarness) crossCheck(op string) {
	for _, w := range h.ws {
		if h.dead[w.id] {
			continue
		}
		s := h.shardOf(w)
		s.mu.Lock()
		wv := h.rp.ViewFor(w.id)
		if wv == nil {
			h.t.Fatalf("after %s: %s live on the manager, gone from the sim", op, w.id)
		}
		if w.v.TransfersOut != wv.TransfersOut {
			h.t.Fatalf("after %s: %s TransfersOut manager=%d sim=%d\nops: %v\nmgr trace:\n%s\nsim trace:\n%s", op, w.id, w.v.TransfersOut, wv.TransfersOut, h.opLog, h.mgrDump(), h.rp.Dump())
		}
		if w.v.Commit != wv.Commit {
			h.t.Fatalf("after %s: %s Commit manager=%+v sim=%+v\nops: %v\nmgr trace:\n%s\nsim trace:\n%s", op, w.id, w.v.Commit, wv.Commit, h.opLog, h.mgrDump(), h.rp.Dump())
		}
		if w.v.Pending[diffEnv] != wv.Pending[diffEnv] {
			h.t.Fatalf("after %s: %s Pending[env] manager=%v sim=%v", op, w.id, w.v.Pending[diffEnv], wv.Pending[diffEnv])
		}
		if w.v.Files[diffEnv] != wv.Files[diffEnv] {
			h.t.Fatalf("after %s: %s Files[env] manager=%v sim=%v", op, w.id, w.v.Files[diffEnv], wv.Files[diffEnv])
		}
		for _, ref := range h.refsMade {
			if w.v.Pending[ref.ID] != wv.Pending[ref.ID] {
				h.t.Fatalf("after %s: %s Pending[%s] manager=%v sim=%v\nops: %v", op, w.id, ref.ID, w.v.Pending[ref.ID], wv.Pending[ref.ID], h.opLog)
			}
			if w.v.Files[ref.ID] != wv.Files[ref.ID] {
				h.t.Fatalf("after %s: %s Files[%s] manager=%v sim=%v\nops: %v", op, w.id, ref.ID, w.v.Files[ref.ID], wv.Files[ref.ID], h.opLog)
			}
		}
		s.mu.Unlock()
	}
}

func (h *diffHarness) submit(n int) {
	h.opLog = append(h.opLog, fmt.Sprintf("submit(%d)", n))
	if h.tenantMix != nil {
		// Tenant mode submits one spec at a time so the sim runs its
		// admission control and fair-share drain at the same points the
		// manager does; the mix rotation is deterministic, so both
		// engines tag the identical spec sequence.
		for i := 0; i < n; i++ {
			tenant := h.tenantMix[h.submits%len(h.tenantMix)]
			h.submits++
			if h.level == core.L3 {
				h.m.SubmitInvocation(&core.InvocationSpec{Library: diffLib, Function: "f", TenantID: tenant})
			} else {
				h.m.Submit(&core.TaskSpec{
					Script:    "1",
					Inputs:    []core.FileSpec{h.env},
					Resources: core.Resources{Cores: 1},
					TenantID:  tenant,
				})
			}
			h.rp.SubmitTenant(tenant)
		}
		return
	}
	for i := 0; i < n; i++ {
		if h.level == core.L3 {
			h.m.SubmitInvocation(&core.InvocationSpec{Library: diffLib, Function: "f"})
		} else {
			h.m.Submit(&core.TaskSpec{
				Script:    "1",
				Inputs:    []core.FileSpec{h.env},
				Resources: core.Resources{Cores: 1},
			})
		}
	}
	h.rp.Submit(n)
}

// canEnvAck reports whether an environment copy is in flight to w.
func (h *diffHarness) canEnvAck(w *workerState) bool {
	s := h.shardOf(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.v.Pending[diffEnv]
}

func (h *diffHarness) envAck(w *workerState) {
	h.opLog = append(h.opLog, "envAck("+w.id+")")
	h.shardOf(w).onFileAck(w, proto.FileAck{ID: diffEnv, Ok: true, Cache: true})
	if !h.rp.EnvArrived(w.id) {
		h.diffTraces(0)
		h.t.Fatalf("sim rejected EnvArrived(%s) the manager accepted\nmanager trace tail: %v",
			w.id, tail(h.mgrTrace(), 6))
	}
}

func tail(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// canLibReady reports whether w has an installing (un-acked) library
// instance whose environment has already arrived.
func (h *diffHarness) canLibReady(w *workerState) bool {
	s := h.shardOf(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	li := w.libs[diffLib]
	return li != nil && !li.Ready && !li.Failed && w.v.Files[diffEnv]
}

func (h *diffHarness) libReady(w *workerState) {
	h.opLog = append(h.opLog, "libReady("+w.id+")")
	h.shardOf(w).onLibraryAck(w, proto.LibraryAck{Library: diffLib, Ok: true, Instance: "i-" + w.id})
	if !h.rp.LibReady(w.id) {
		h.t.Fatalf("sim rejected LibReady(%s) the manager accepted", w.id)
	}
}

// completable returns the lowest-ID completable dispatch on w, if any.
// For tasks that means all staged inputs acked; for invocations it
// additionally requires no open deferred-binding window (see the
// harness comment above).
func (h *diffHarness) completable(w *workerState) (int64, bool) {
	if h.level == core.L3 && h.pendingInvTotal() > 0 {
		for _, ww := range h.ws {
			if h.dead[ww.id] {
				continue // a dead worker's stale instance records gate nothing
			}
			ss := h.shardOf(ww)
			ss.mu.Lock()
			li := ww.libs[diffLib]
			installing := li != nil && !li.Ready && !li.Failed
			ss.mu.Unlock()
			if installing {
				return 0, false
			}
		}
	}
	s := h.shardOf(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	best := int64(-1)
	for id, e := range s.inflight {
		if e.worker != w.id {
			continue
		}
		if h.level != core.L3 && len(e.waiting) > 0 {
			continue
		}
		if best < 0 || id < best {
			best = id
		}
	}
	return best, best >= 0
}

func (h *diffHarness) done(w *workerState, id int64) {
	if h.producers[id] {
		h.doneRef(w, id)
		return
	}
	h.opLog = append(h.opLog, fmt.Sprintf("done(%s,%d)", w.id, id))
	h.shardOf(w).onResult(w, core.Result{ID: id, Ok: true, Value: []byte("x")})
	// Task workloads complete by ring key: churn requeues carry keys,
	// so the engines must agree on which task each slot was running.
	ok := false
	if h.level == core.L3 {
		ok = h.rp.Complete(w.id)
	} else {
		ok = h.rp.CompleteTask(w.id, taskRingKey(id))
	}
	if !ok {
		h.t.Fatalf("sim rejected Complete(%s, task %d) the manager accepted\nops: %v\nmgr trace:\n%s\nsim trace:\n%s",
			w.id, id, h.opLog, h.mgrDump(), h.rp.Dump())
	}
}

// ---- proxy-object (pass-by-reference) events ----

// doneRef completes a ResultByRef producer: the harness fabricates the
// ObjectRef a real executor would return (deterministic ID and a 1–3MB
// size rotation that keeps the 2MB owned-bytes cap under pressure) and
// delivers it through the manager's onResult and the sim's
// CompleteTaskRef, so both catalogs perform the identical ownership
// transfer — and the identical cascaded spills.
func (h *diffHarness) doneRef(w *workerState, id int64) {
	ref := core.ObjectRef{
		ID:    fmt.Sprintf("ref-%04d", h.nextRef),
		Name:  fmt.Sprintf("task-%d.out", id),
		Size:  int64(1+h.nextRef%3) << 20,
		Owner: w.id,
		Tier:  core.TierCache,
	}
	h.nextRef++
	h.refsMade = append(h.refsMade, ref)
	h.opLog = append(h.opLog, fmt.Sprintf("doneRef(%s,%d,%s)", w.id, id, ref.ID))
	h.shardOf(w).onResult(w, core.Result{ID: id, Ok: true, Ref: &ref})
	if !h.refRp.CompleteTaskRef(w.id, taskRingKey(id), ref) {
		h.t.Fatalf("sim rejected CompleteTaskRef(%s, task %d) the manager accepted\nops: %v\nmgr trace:\n%s\nsim trace:\n%s",
			w.id, id, h.opLog, h.mgrDump(), h.rp.Dump())
	}
}

// submitProducer submits one task whose result stays on the producing
// worker (ResultByRef). The sim side sees a plain keyed task —
// ResultByRef does not affect planning, only the completion.
func (h *diffHarness) submitProducer() {
	h.opLog = append(h.opLog, "submitProducer")
	id := h.m.Submit(&core.TaskSpec{
		Script:      "1",
		Inputs:      []core.FileSpec{h.env},
		Resources:   core.Resources{Cores: 1},
		ResultByRef: true,
	})
	h.producers[id] = true
	h.rp.Submit(1)
}

// submitConsumer submits one task whose inputs are the environment plus
// a RefSpec per given ref ID — the pass-by-reference consumption path.
// Both engines rebuild the identical FileSpec bindings (the manager
// from refsMade, the sim from its mirrored catalog).
func (h *diffHarness) submitConsumer(ids []string) {
	h.opLog = append(h.opLog, fmt.Sprintf("submitConsumer(%v)", ids))
	inputs := []core.FileSpec{h.env}
	for _, rid := range ids {
		ref := h.refByID(rid)
		inputs = append(inputs, core.RefSpec(&core.ObjectRef{ID: ref.ID, Name: ref.Name, Size: ref.Size}))
	}
	h.m.Submit(&core.TaskSpec{Script: "1", Inputs: inputs, Resources: core.Resources{Cores: 1}})
	h.refRp.SubmitTaskRefs(ids...)
}

func (h *diffHarness) refByID(id string) core.ObjectRef {
	for _, ref := range h.refsMade {
		if ref.ID == id {
			return ref
		}
	}
	h.t.Fatalf("unknown ref %s", id)
	return core.ObjectRef{}
}

// refPending reports whether a ref copy is in flight to w.
func (h *diffHarness) refPending(w *workerState, refID string) bool {
	s := h.shardOf(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.v.Pending[refID]
}

// refPendingWorkers lists the live workers with an in-flight copy of
// refID, in worker order.
func (h *diffHarness) refPendingWorkers(refID string) []*workerState {
	var out []*workerState
	for _, w := range h.ws {
		if !h.dead[w.id] && h.refPending(w, refID) {
			out = append(out, w)
		}
	}
	return out
}

// refAck lands a consumer's ref fetch: the manager's FileAck path
// (replica note + ref-catalog holder) against the sim's RefArrived.
func (h *diffHarness) refAck(w *workerState, refID string) {
	h.opLog = append(h.opLog, "refAck("+w.id+","+refID+")")
	h.shardOf(w).onFileAck(w, proto.FileAck{ID: refID, Ok: true, Cache: true})
	if !h.refRp.RefArrived(w.id, refID) {
		h.t.Fatalf("sim rejected RefArrived(%s,%s) the manager accepted\nops: %v", w.id, refID, h.opLog)
	}
}

// refFail fails a consumer's in-flight ref fetch: the manager retracts
// every non-owner holder and plans a fresh traced resolve
// (restageRefLocked) against the sim's RefFailed mirror.
func (h *diffHarness) refFail(w *workerState, refID string) {
	h.opLog = append(h.opLog, "refFail("+w.id+","+refID+")")
	h.shardOf(w).onFileAck(w, proto.FileAck{ID: refID, Ok: false, Err: "injected ref fetch fault"})
	if !h.refRp.RefFailed(w.id, refID) {
		h.t.Fatalf("sim rejected RefFailed(%s,%s) the manager accepted\nops: %v", w.id, refID, h.opLog)
	}
}

// ---- churn and failure injection ----

func (h *diffHarness) addWorker() {
	id := fmt.Sprintf("w%04d", h.next)
	h.next++
	h.opLog = append(h.opLog, "join("+id+")")
	h.ws = append(h.ws, h.newWorker(id))
	if simID := h.rp.AddWorker(); simID != id {
		h.t.Fatalf("worker numbering diverged: manager added %s, sim added %s", id, simID)
	}
}

func (h *diffHarness) killWorker(w *workerState) {
	h.opLog = append(h.opLog, "kill("+w.id+")")
	h.dead[w.id] = true
	h.m.onWorkerGone(w)
	if !h.rp.KillWorker(w.id) {
		h.t.Fatalf("sim rejected KillWorker(%s)", w.id)
	}
}

// canEnvFail reports whether w has an in-flight *peer* env fetch — the
// only kind whose failure the manager recovers by restaging direct.
func (h *diffHarness) canEnvFail(w *workerState) bool {
	s := h.shardOf(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.v.Pending[diffEnv] && w.fetchSources[diffEnv] != ""
}

func (h *diffHarness) envFail(w *workerState) {
	h.opLog = append(h.opLog, "envFail("+w.id+")")
	h.shardOf(w).onFileAck(w, proto.FileAck{ID: diffEnv, Ok: false, Err: "injected transfer fault"})
	if !h.rp.EnvFailed(w.id) {
		h.t.Fatalf("sim rejected EnvFailed(%s) the manager accepted", w.id)
	}
}

func (h *diffHarness) taskFail(w *workerState, id int64) {
	h.opLog = append(h.opLog, fmt.Sprintf("fail(%s,%d)", w.id, id))
	h.shardOf(w).onResult(w, core.Result{ID: id, Ok: false, Retryable: true, Err: "injected fault"})
	h.waitRetryLanded()
	if !h.rp.Fail(w.id, taskRingKey(id)) {
		h.t.Fatalf("sim rejected Fail(%s, task %d) the manager accepted", w.id, id)
	}
}

// waitRetryLanded blocks until every pending backoff timer has fired
// and requeued its spec (and the follow-up schedule pass finished), so
// the manager's decisions from a retry are recorded before the sim's.
// The dirty marks are part of the predicate: the timer callback sets
// them and drops the lock before it calls wake, so backoffs can read 0
// with the requeue's schedule pass still ahead.
func (h *diffHarness) waitRetryLanded() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		quiet := true
		for _, s := range h.m.shards {
			s.mu.Lock()
			if s.backoffs != 0 || s.wakeState.Load() != wakeIdle || s.hasDirtyLocked() || s.intake.Load() != nil {
				quiet = false
			}
			s.mu.Unlock()
		}
		if quiet {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatal("backoff requeue never landed")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// quiesce applies every applicable non-submit event in deterministic
// order until none applies: all transfers land, all deploys come up,
// all dispatches complete.
func (h *diffHarness) quiesce() {
	for {
		progressed := false
		for _, w := range h.ws {
			if h.dead[w.id] {
				continue
			}
			h.settle()
			if h.canEnvAck(w) {
				h.envAck(w)
				progressed = true
			}
			for _, ref := range h.refsMade {
				if h.refPending(w, ref.ID) {
					h.refAck(w, ref.ID)
					progressed = true
				}
			}
			if h.level == core.L3 && h.canLibReady(w) {
				h.libReady(w)
				progressed = true
			}
			for {
				id, ok := h.completable(w)
				if !ok {
					break
				}
				h.done(w, id)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// diffTraces asserts the two decision traces are identical, printing
// the first divergence with context. Sharded runs are compared shard
// by shard first (a divergence names its shard), then as the merged
// trace — proving the per-shard streams AND the deterministic merge
// rule agree.
func (h *diffHarness) diffTraces(minLines int) {
	if h.tenantMix != nil {
		// The submission plane's trace (admit verdicts, fair-share
		// picks) is its own stream, compared before the shard traces so
		// an admission or drain-order divergence names itself directly.
		h.diffTracePair("plane", h.m.PlaneDecisions(), h.rp.PlaneDecisions())
	}
	if h.refRp != nil {
		// The global ref stream (ownership transfers, spills, resolves,
		// promotes, rehomes) is likewise its own trace, compared before
		// the merged view so a proxy-object divergence names itself.
		h.diffTracePair("refs", h.m.RefDecisions(), h.refRp.RefDecisions())
	}
	if h.shards > 1 {
		st, ok := h.rp.(shardTracer)
		if !ok {
			h.t.Fatalf("sharded harness driving an engine with no per-shard traces (%T)", h.rp)
		}
		mgrShards := h.m.ShardDecisions()
		simShards := st.ShardDecisions()
		if len(mgrShards) != len(simShards) {
			h.t.Fatalf("shard counts differ: manager=%d sim=%d", len(mgrShards), len(simShards))
		}
		for i := range mgrShards {
			h.diffTracePair(fmt.Sprintf("shard %d", i), mgrShards[i], simShards[i])
		}
	}
	mgr := h.mgrTrace()
	rep := h.rp.Decisions()
	h.diffTracePair("merged", mgr, rep)
	if len(mgr) < minLines {
		h.t.Fatalf("degenerate run: only %d decisions recorded, want >= %d", len(mgr), minLines)
	}
}

func (h *diffHarness) diffTracePair(what string, mgr, rep []string) {
	n := len(mgr)
	if len(rep) < n {
		n = len(rep)
	}
	for i := 0; i < n; i++ {
		if mgr[i] != rep[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			h.t.Fatalf("%s decision traces diverge at line %d:\n  manager: %q\n  sim:     %q\ncontext (manager):\n  %v\ncontext (sim):\n  %v\nFULL mgr:\n%s\nFULL sim:\n%s",
				what, i, mgr[i], rep[i], mgr[lo:i+1], rep[lo:i+1], h.mgrDump(), h.rp.Dump())
		}
	}
	if len(mgr) != len(rep) {
		h.t.Fatalf("%s trace lengths differ: manager=%d sim=%d (first %d lines identical)\nFULL mgr:\n%s\nFULL sim:\n%s",
			what, len(mgr), len(rep), n, h.mgrDump(), h.rp.Dump())
	}
}

// diffOpts selects the optional adversarial event classes a
// differential run mixes into its trace, and the dispatch-plane
// partition count both engines run at.
type diffOpts struct {
	churn bool // random worker joins and deaths mid-trace
	fail  bool // injected transfer faults and retryable task failures
	// shards > 1 runs the sharded manager against the sharded replay.
	// fail is incompatible with shards > 1: the manager upgrades some
	// cross-shard direct sends to peer fetches at the transport layer
	// (invisible to the per-shard policy view), so a canEnvFail probe
	// would pick transfers the sim has recorded as manager sends; the
	// failed-peer-fetch recovery is instead covered end to end by the
	// faultnet test (taskvine/fault_test.go).
	shards int
	// tenants activates the multi-tenant submission plane on both
	// engines (diffTenants registry, diffTenantMix spec tagging) and
	// adds the plane trace to the comparison.
	tenants bool
	// refs mixes in the proxy-object data plane: ResultByRef producers,
	// ref-consuming tasks, fetch acks, and (with fail) fetch faults,
	// with the global ref decision stream added to the comparison. Task
	// workloads only, single shard, single tenant — the manager's ref
	// trace is deterministic because one shard lock serializes every
	// producer (see refPlane).
	refs bool
}

// injectChaos maybe applies one churn or failure event, reporting
// whether it consumed the op. Called only when an opts flag is set, so
// the flag-free workloads draw exactly the random sequence they always
// did and their traces stay byte-identical.
func (h *diffHarness) injectChaos(rng *rand.Rand, opts diffOpts, joins *int) bool {
	switch rng.Intn(25) {
	case 0:
		if opts.churn {
			if live := h.live(); len(live) > 3 {
				h.killWorker(h.ws[live[rng.Intn(len(live))]])
				return true
			}
		}
	case 1:
		if opts.churn && *joins < 5 {
			*joins++
			h.addWorker()
			return true
		}
	case 2:
		if opts.fail {
			for _, k := range rng.Perm(len(h.ws)) {
				w := h.ws[k]
				if !h.dead[w.id] && h.canEnvFail(w) {
					h.envFail(w)
					return true
				}
			}
		}
	case 3:
		// Retryable task failure: only task workloads — the sim's
		// invocation pool is keyless, so a specific invocation cannot
		// be failed-and-avoided there.
		if opts.fail && h.level != core.L3 {
			for _, k := range rng.Perm(len(h.ws)) {
				w := h.ws[k]
				if h.dead[w.id] {
					continue
				}
				if id, ok := h.completable(w); ok {
					h.taskFail(w, id)
					return true
				}
			}
		}
	}
	return false
}

// injectRef maybe applies one proxy-object event, reporting whether it
// consumed the op. Called only when opts.refs is set, so the flag-free
// workloads keep their exact random sequences.
func (h *diffHarness) injectRef(rng *rand.Rand, opts diffOpts, outstanding *int) bool {
	switch rng.Intn(8) {
	case 0, 1:
		if *outstanding < 120 {
			h.submitProducer()
			*outstanding++
			return true
		}
	case 2, 3:
		if len(h.refsMade) > 0 && *outstanding < 120 {
			ids := []string{h.refsMade[rng.Intn(len(h.refsMade))].ID}
			if rng.Intn(2) == 1 {
				if id2 := h.refsMade[rng.Intn(len(h.refsMade))].ID; id2 != ids[0] {
					ids = append(ids, id2)
				}
			}
			h.submitConsumer(ids)
			*outstanding++
			return true
		}
	case 4, 5:
		for _, wi := range rng.Perm(len(h.ws)) {
			w := h.ws[wi]
			if h.dead[w.id] {
				continue
			}
			for _, ri := range rng.Perm(len(h.refsMade)) {
				if refID := h.refsMade[ri].ID; h.refPending(w, refID) {
					h.refAck(w, refID)
					return true
				}
			}
		}
	case 6:
		if opts.fail {
			for _, wi := range rng.Perm(len(h.ws)) {
				w := h.ws[wi]
				if h.dead[w.id] {
					continue
				}
				for _, ri := range rng.Perm(len(h.refsMade)) {
					if refID := h.refsMade[ri].ID; h.refPending(w, refID) {
						h.refFail(w, refID)
						return true
					}
				}
			}
		}
	}
	return false
}

// runDifferential drives ops random events through both engines and
// diffs the decision traces, then drives both to quiescence and diffs
// again.
func runDifferential(t *testing.T, level core.ReuseLevel, slots int, seed int64, ops int, opts diffOpts) {
	if opts.fail && opts.shards > 1 {
		t.Fatal("fail injection is not differential-testable at shards > 1 (see diffOpts)")
	}
	if opts.refs && (opts.shards > 1 || opts.tenants || level == core.L3) {
		t.Fatal("ref injection runs task workloads at one shard, no tenants (see diffOpts)")
	}
	h := newDiffHarness(t, level, 7, slots, opts)
	rng := rand.New(rand.NewSource(seed))
	outstanding := 0
	joins := 0
	for i := 0; i < ops; i++ {
		h.settle()
		h.crossCheck(fmt.Sprintf("op %d", i))
		if (opts.churn || opts.fail) && h.injectChaos(rng, opts, &joins) {
			continue
		}
		if opts.refs && h.injectRef(rng, opts, &outstanding) {
			continue
		}
		switch rng.Intn(10) {
		case 0, 1, 2:
			if outstanding < 120 {
				n := 1 + rng.Intn(4)
				h.submit(n)
				outstanding += n
			}
		case 3, 4:
			for _, k := range rng.Perm(len(h.ws)) {
				if !h.dead[h.ws[k].id] && h.canEnvAck(h.ws[k]) {
					h.envAck(h.ws[k])
					break
				}
			}
		case 5:
			if level == core.L3 {
				for _, k := range rng.Perm(len(h.ws)) {
					if !h.dead[h.ws[k].id] && h.canLibReady(h.ws[k]) {
						h.libReady(h.ws[k])
						break
					}
				}
			}
		default:
			for _, k := range rng.Perm(len(h.ws)) {
				if h.dead[h.ws[k].id] {
					continue
				}
				if id, ok := h.completable(h.ws[k]); ok {
					h.done(h.ws[k], id)
					outstanding--
					break
				}
			}
		}
	}
	h.quiesce()
	h.settle()
	if err := h.m.CheckQuiescence(); err != nil {
		t.Errorf("manager not quiescent after drain: %v", err)
	}
	if p := h.rp.Pending(); p != 0 {
		t.Errorf("sim replay still has %d pending invocations after drain", p)
	}
	h.diffTraces(ops / 4)
	if opts.tenants {
		// A trace where admission control never bit would vacuously
		// pass: require every verdict class and the fair-share drain to
		// have actually fired.
		st := h.m.Stats()
		if st.SubmitsShed == 0 || st.SubmitsThrottled == 0 || st.FairDrains == 0 {
			t.Errorf("degenerate tenant run: shed=%d throttled=%d fairDrains=%d — registry pressure never materialized",
				st.SubmitsShed, st.SubmitsThrottled, st.FairDrains)
		}
	}
	if opts.refs {
		// Likewise for the ref plane: ownership transfers and cap
		// pressure (spills) must have actually appeared, and no result
		// bytes may have transited the manager for the by-ref results.
		st := h.m.Stats()
		if st.RefResults == 0 || st.RefSpills == 0 {
			t.Errorf("degenerate ref run: refResults=%d refSpills=%d — the owned-bytes cap never bit", st.RefResults, st.RefSpills)
		}
		if st.BytesByRef == 0 {
			t.Errorf("degenerate ref run: no result bytes stayed on workers")
		}
	}
}

func TestDifferentialTaskWorkload(t *testing.T) {
	// L2-style stateless tasks carrying a cached peer-transferable
	// environment input: exercises ring placement, direct vs peer
	// staging, first-copy suppression, and per-source caps.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{})
	}
}

func TestDifferentialInvocationWorkload(t *testing.T) {
	// L3 function invocations on single-slot library instances:
	// exercises ready-instance placement, hash-ring deploys with the
	// saturation guard, and deploy staging.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L3, 1, seed, 600, diffOpts{})
	}
}

func TestDifferentialWorkerChurn(t *testing.T) {
	// Workers join and die mid-trace: exercises ring reshaping, replica
	// and in-flight-copy teardown, transfer-slot recovery from dead
	// sources and destinations, and the deterministic ascending-ID
	// requeue with the dead worker as the avoid preference.
	for _, seed := range []int64{1, 2} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{churn: true})
		runDifferential(t, core.L3, 1, seed, 600, diffOpts{churn: true})
	}
}

func TestDifferentialRetryAndAvoidance(t *testing.T) {
	// Injected transfer faults (peer fetch fails → manager restages
	// direct, no new decision) and retryable task failures (backoff →
	// requeue at the back with the failing worker avoided): exercises
	// the manager's recovery paths against the replay's keyed queue.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{fail: true})
	}
}

func TestDifferentialChurnWithFailures(t *testing.T) {
	// Both adversarial classes at once — deaths can strand in-flight
	// fetches that then fail, retries can land on workers that later
	// die. The harshest fidelity workload we run.
	runDifferential(t, core.L2, 2, 7, 600, diffOpts{churn: true, fail: true})
}

func TestDifferentialSharded(t *testing.T) {
	// The sharded dispatch plane against the sharded replay: identical
	// routing (ring-key owners for tasks, spec-ID round-robin for
	// invocations), identical batched decision sequences per shard, and
	// the same deterministic trace merge. 2 and 3 shards make both the
	// single-worker-shard and multi-worker-shard layouts appear.
	for _, shards := range []int{2, 3} {
		runDifferential(t, core.L2, 2, int64(10+shards), 600, diffOpts{shards: shards})
		runDifferential(t, core.L3, 1, int64(20+shards), 600, diffOpts{shards: shards})
	}
}

func TestDifferentialMultiTenant(t *testing.T) {
	// The multi-tenant submission plane against the sim's mirror:
	// identical admit verdicts (accept, throttle, quota-gated queuing,
	// shed), identical fair-share drain order under the virtual-time
	// model, identical quota releases on the completion path, and the
	// empty/unregistered tenants riding the direct path untouched. The
	// plane trace, each shard trace, and the merged trace must all be
	// byte-identical.
	for _, shards := range []int{1, 4} {
		for _, seed := range []int64{1, 2} {
			runDifferential(t, core.L3, 1, seed, 600, diffOpts{shards: shards, tenants: true})
			runDifferential(t, core.L2, 2, seed, 600, diffOpts{shards: shards, tenants: true})
		}
	}
}

func TestDifferentialMultiTenantChurn(t *testing.T) {
	// Worker churn with the plane active: deaths requeue dispatched
	// specs without releasing their quota units (the retry still holds
	// its admission), evacuations carry the admitted-owner FIFO across
	// shards, and the fair-share drain keeps feeding a reshaped plane.
	for _, seed := range []int64{41, 42} {
		runDifferential(t, core.L3, 1, seed, 600, diffOpts{shards: 3, churn: true, tenants: true})
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{shards: 3, churn: true, tenants: true})
	}
}

func TestDifferentialRefDataPlane(t *testing.T) {
	// The proxy-object data plane against the sim's ref mirror:
	// identical ownership transfers on by-ref completions, identical
	// cap-pressure spills (1–3MB refs against a 2MB owned budget),
	// identical resolves for ref-consuming tasks — ready on holders,
	// min-ID peer picks, shared-tier fetches with promote-on-reuse —
	// and identical holder bookkeeping on fetch acks. The ref stream,
	// the shard trace, and the merged trace must all be byte-identical.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{refs: true})
	}
}

func TestDifferentialRefChurnAndFailures(t *testing.T) {
	// Refs under churn and faults: owners die with consumers' fetches
	// in flight (rehome onto survivors, shared fallback, or lost),
	// failed fetches invalidate the holder walk and re-resolve, and
	// retryable task failures requeue consumers with their ref inputs
	// intact. Owner death mid-resolve arises naturally: a killed owner
	// leaves pending fetches the fault injector then fails.
	for _, seed := range []int64{7, 8} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{refs: true, churn: true, fail: true})
	}
}

func TestDifferentialRefOwnerDeathMidResolve(t *testing.T) {
	// The scripted worst case: a ref's owner dies while one consumer's
	// fetch from it is still in flight. A second consumer that already
	// acked adopts the ref (rehome), the stranded fetch fails and
	// re-resolves onto the new owner, and the replacement fetch lands —
	// every step compared across both engines.
	h := newDiffHarness(t, core.L2, 4, 2, diffOpts{refs: true})
	h.submitProducer()
	h.quiesce()
	h.settle()
	if len(h.refsMade) != 1 {
		t.Fatalf("expected 1 ref after the producer phase, have %d", len(h.refsMade))
	}
	ref := h.refsMade[0]
	owner := ref.Owner

	// Fill the cluster with consumers of that ref, then land every
	// environment copy (but no ref fetches): each non-owner worker
	// running a consumer now has the ref fetch in flight.
	for i := 0; i < 8; i++ {
		h.submitConsumer([]string{ref.ID})
	}
	h.settle()
	for _, w := range h.ws {
		if !h.dead[w.id] && h.canEnvAck(w) {
			h.envAck(w)
		}
	}
	h.settle()
	pend := h.refPendingWorkers(ref.ID)
	if len(pend) < 2 {
		t.Fatalf("need two in-flight ref fetches to script the race, have %d", len(pend))
	}
	wA, wB := pend[0], pend[1]

	// wA's fetch lands (second holder); wB's stays in flight while the
	// owner dies. The rehome must hand the ref to wA — the only
	// surviving holder of record.
	h.refAck(wA, ref.ID)
	for _, w := range h.ws {
		if w.id == owner {
			h.killWorker(w)
		}
	}
	h.settle()
	h.crossCheck("owner death")

	// wB's stranded fetch now fails; the re-resolve must land on the
	// new owner, and the replacement fetch completes the task.
	h.refFail(wB, ref.ID)
	if !h.refPending(wB, ref.ID) {
		t.Fatalf("failed fetch on %s was not re-staged onto the new owner", wB.id)
	}
	h.refAck(wB, ref.ID)
	h.quiesce()
	h.settle()
	if err := h.m.CheckQuiescence(); err != nil {
		t.Errorf("manager not quiescent after drain: %v", err)
	}
	h.crossCheck("final")
	h.diffTraces(1)

	// The ref stream must show the scripted fate: ownership, the
	// rehome onto wA, and a post-death resolve onto the new owner.
	trace := h.m.RefDecisions()
	wantRehome := fmt.Sprintf("rehome obj=%s owner=%s", ref.ID, wA.id)
	wantResolve := fmt.Sprintf("resolve obj=%s dst=%s mode=peer src=%s", ref.ID, wB.id, wA.id)
	var sawRehome, sawResolve bool
	for _, line := range trace {
		if line == wantRehome {
			sawRehome = true
		}
		if sawRehome && line == wantResolve {
			sawResolve = true
		}
	}
	if !sawRehome || !sawResolve {
		t.Errorf("ref trace missing the scripted fate (rehome=%v, post-death resolve=%v):\nwant %q then %q\ngot:\n%v",
			sawRehome, sawResolve, wantRehome, wantResolve, trace)
	}
	if st := h.m.Stats(); st.RefRehomes == 0 {
		t.Errorf("RefRehomes stat never counted the scripted rehome")
	}
}

func TestDifferentialShardedChurn(t *testing.T) {
	// Churn under sharding exercises every shard-crossing path: ring
	// reshaping moves task ownership between shards, a shard losing its
	// last worker evacuates its queues, overflow tasks hop to the next
	// live shard when the home shard's only worker is the avoid target,
	// and starvation nudges reset hop budgets on capacity events.
	for _, seed := range []int64{31, 32} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{shards: 3, churn: true})
		runDifferential(t, core.L3, 1, seed, 600, diffOpts{shards: 3, churn: true})
	}
}
