package manager

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Differential fidelity harness: one random event trace — submissions,
// environment acks, library readiness, completions — is fed through
// the real manager (synthetic workers, synchronous event injection)
// and through the simulator's untimed Replay. Both engines consult the
// shared policy core (internal/policy) for every scheduling decision
// against equivalently-maintained cluster views, so their decision
// traces must match line for line. A divergence means one driver's
// view maintenance or decision execution drifted from the other's —
// exactly the fidelity bug class this refactor exists to make
// impossible.
//
// The harness keeps the engines in lockstep by construction:
//
//   - Worker IDs, resources, library/environment identities, and the
//     peer-transfer options are identical, so both views hash to the
//     same ring and index the same objects.
//   - The sim side runs ManagerSourceCap so high its manager link
//     never saturates — the real manager's semantics (it has no
//     self-cap; only the paper's simulator models one).
//   - For the invocation workload, completions are withheld while a
//     deploy is in flight and invocations are queued: the manager
//     binds a queued invocation to a worker only when an instance
//     becomes ready, while the simulator binds it to the deploying
//     slot immediately, so a completion elsewhere in that window would
//     legitimately place it differently. Every other interleaving is
//     fair game.

const (
	diffLib = "difflib"
	diffEnv = "env:difflib"
)

func diffEnvSpec() core.FileSpec {
	return core.FileSpec{
		Object:       &content.Object{ID: diffEnv, Name: diffEnv, LogicalSize: 64 << 20},
		Cache:        true,
		PeerTransfer: true,
		Unpack:       true,
	}
}

type diffHarness struct {
	t     *testing.T
	m     *Manager
	rec   *policy.Recorder
	rp    *sim.Replay
	ws    []*workerState
	dead  map[string]bool
	slots int
	next  int // next worker index (churn continues the numbering)
	level core.ReuseLevel
	env   core.FileSpec
	opLog []string
}

func newDiffHarness(t *testing.T, level core.ReuseLevel, workers, slots int) *diffHarness {
	t.Helper()
	rec := &policy.Recorder{}
	// A retry budget no random trace can exhaust, and a backoff short
	// enough that the harness's wait for the requeue is instant. The
	// settings only matter on failure-injecting traces; the happy-path
	// workloads never draw on them.
	m := New(Options{
		PeerTransfers: true, DecisionTrace: rec,
		MaxRetries: 1000, RetryBaseDelay: time.Nanosecond, RetryMaxDelay: time.Nanosecond,
	})
	h := &diffHarness{t: t, m: m, rec: rec, dead: map[string]bool{}, slots: slots, next: workers, level: level, env: diffEnvSpec()}
	for i := 0; i < workers; i++ {
		h.ws = append(h.ws, h.newWorker(fmt.Sprintf("w%04d", i)))
	}
	if level == core.L3 {
		if err := m.RegisterLibrary(&core.LibrarySpec{
			Name:      diffLib,
			Functions: []core.FunctionSpec{{Name: "f", Source: "1"}},
			Env:       &h.env,
			Slots:     1,
			Resources: core.Resources{Cores: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.rp = sim.NewReplay(sim.Config{
		App:              &apps.CostModel{Name: diffLib, EnvPackedBytes: 64 << 20},
		Level:            level,
		Workers:          workers,
		SlotsPerWorker:   slots,
		PeerTransfers:    true,
		PeerCap:          3,
		ManagerSourceCap: 1 << 30,
		Seed:             1,
	})
	return h
}

// newWorker registers a synthetic worker with the manager, triggering
// the same capacity wake a real connection would.
func (h *diffHarness) newWorker(id string) *workerState {
	w := &workerState{
		id:           id,
		hello:        proto.Hello{WorkerID: id, Resources: core.Resources{Cores: h.slots}},
		sendq:        make(chan outMsg, 256),
		fetchSources: map[string]string{},
		ackWaiters:   map[string][]*inflightEntry{},
		libs:         map[string]*libInstance{},
	}
	h.m.mu.Lock()
	h.m.registerWorkerLocked(w)
	h.m.wakeCapacityLocked()
	h.m.mu.Unlock()
	h.m.wake()
	return w
}

// live returns the indices of living workers, in worker order.
func (h *diffHarness) live() []int {
	var out []int
	for i, w := range h.ws {
		if !h.dead[w.id] {
			out = append(out, i)
		}
	}
	return out
}

// settle drops queued worker messages so the synthetic send queues
// never fill (a full queue would drop the "connection").
func (h *diffHarness) settle() {
	for _, w := range h.ws {
		drainMsgs(w)
	}
}

// crossCheck compares per-worker view accounting between the two
// engines, localizing a drift to the first op that caused it.
func (h *diffHarness) crossCheck(op string) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	sv := h.rp.View()
	for _, w := range h.ws {
		if h.dead[w.id] {
			continue
		}
		wv := sv.Workers[w.id]
		if wv == nil {
			h.t.Fatalf("after %s: %s live on the manager, gone from the sim", op, w.id)
		}
		if w.v.TransfersOut != wv.TransfersOut {
			h.t.Fatalf("after %s: %s TransfersOut manager=%d sim=%d\nops: %v\nmgr trace:\n%s\nsim trace:\n%s", op, w.id, w.v.TransfersOut, wv.TransfersOut, h.opLog, h.rec.Dump(), h.rp.Dump())
		}
		if w.v.Commit != wv.Commit {
			h.t.Fatalf("after %s: %s Commit manager=%+v sim=%+v", op, w.id, w.v.Commit, wv.Commit)
		}
		if w.v.Pending[diffEnv] != wv.Pending[diffEnv] {
			h.t.Fatalf("after %s: %s Pending[env] manager=%v sim=%v", op, w.id, w.v.Pending[diffEnv], wv.Pending[diffEnv])
		}
		if w.v.Files[diffEnv] != wv.Files[diffEnv] {
			h.t.Fatalf("after %s: %s Files[env] manager=%v sim=%v", op, w.id, w.v.Files[diffEnv], wv.Files[diffEnv])
		}
	}
}

func (h *diffHarness) submit(n int) {
	h.opLog = append(h.opLog, fmt.Sprintf("submit(%d)", n))
	for i := 0; i < n; i++ {
		if h.level == core.L3 {
			h.m.SubmitInvocation(&core.InvocationSpec{Library: diffLib, Function: "f"})
		} else {
			h.m.Submit(&core.TaskSpec{
				Script:    "1",
				Inputs:    []core.FileSpec{h.env},
				Resources: core.Resources{Cores: 1},
			})
		}
	}
	h.rp.Submit(n)
}

// canEnvAck reports whether an environment copy is in flight to w.
func (h *diffHarness) canEnvAck(w *workerState) bool {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return w.v.Pending[diffEnv]
}

func (h *diffHarness) envAck(w *workerState) {
	h.opLog = append(h.opLog, "envAck("+w.id+")")
	h.m.onFileAck(w, proto.FileAck{ID: diffEnv, Ok: true, Cache: true})
	if !h.rp.EnvArrived(w.id) {
		h.diffTraces(0)
		h.t.Fatalf("sim rejected EnvArrived(%s) the manager accepted\nmanager trace tail: %v",
			w.id, tail(h.rec.Decisions, 6))
	}
}

func tail(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// canLibReady reports whether w has an installing (un-acked) library
// instance whose environment has already arrived.
func (h *diffHarness) canLibReady(w *workerState) bool {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	li := w.libs[diffLib]
	return li != nil && !li.Ready && !li.Failed && w.v.Files[diffEnv]
}

func (h *diffHarness) libReady(w *workerState) {
	h.opLog = append(h.opLog, "libReady("+w.id+")")
	h.m.onLibraryAck(w, proto.LibraryAck{Library: diffLib, Ok: true, Instance: "i-" + w.id})
	if !h.rp.LibReady(w.id) {
		h.t.Fatalf("sim rejected LibReady(%s) the manager accepted", w.id)
	}
}

// completable returns the lowest-ID completable dispatch on w, if any.
// For tasks that means all staged inputs acked; for invocations it
// additionally requires no open deferred-binding window (see the
// harness comment above).
func (h *diffHarness) completable(w *workerState) (int64, bool) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.level == core.L3 && h.m.pendingInvCount > 0 {
		for _, ww := range h.ws {
			if h.dead[ww.id] {
				continue // a dead worker's stale instance records gate nothing
			}
			if li := ww.libs[diffLib]; li != nil && !li.Ready && !li.Failed {
				return 0, false
			}
		}
	}
	best := int64(-1)
	for id, e := range h.m.inflight {
		if e.worker != w.id {
			continue
		}
		if h.level != core.L3 && len(e.waiting) > 0 {
			continue
		}
		if best < 0 || id < best {
			best = id
		}
	}
	return best, best >= 0
}

func (h *diffHarness) done(w *workerState, id int64) {
	h.opLog = append(h.opLog, fmt.Sprintf("done(%s,%d)", w.id, id))
	h.m.onResult(w, core.Result{ID: id, Ok: true, Value: []byte("x")})
	// Task workloads complete by ring key: churn requeues carry keys,
	// so the engines must agree on which task each slot was running.
	ok := false
	if h.level == core.L3 {
		ok = h.rp.Complete(w.id)
	} else {
		ok = h.rp.CompleteTask(w.id, taskRingKey(id))
	}
	if !ok {
		h.t.Fatalf("sim rejected Complete(%s, task %d) the manager accepted\nops: %v\nmgr trace:\n%s\nsim trace:\n%s",
			w.id, id, h.opLog, h.rec.Dump(), h.rp.Dump())
	}
}

// ---- churn and failure injection ----

func (h *diffHarness) addWorker() {
	id := fmt.Sprintf("w%04d", h.next)
	h.next++
	h.opLog = append(h.opLog, "join("+id+")")
	h.ws = append(h.ws, h.newWorker(id))
	if simID := h.rp.AddWorker(); simID != id {
		h.t.Fatalf("worker numbering diverged: manager added %s, sim added %s", id, simID)
	}
}

func (h *diffHarness) killWorker(w *workerState) {
	h.opLog = append(h.opLog, "kill("+w.id+")")
	h.dead[w.id] = true
	h.m.onWorkerGone(w)
	if !h.rp.KillWorker(w.id) {
		h.t.Fatalf("sim rejected KillWorker(%s)", w.id)
	}
}

// canEnvFail reports whether w has an in-flight *peer* env fetch — the
// only kind whose failure the manager recovers by restaging direct.
func (h *diffHarness) canEnvFail(w *workerState) bool {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return w.v.Pending[diffEnv] && w.fetchSources[diffEnv] != ""
}

func (h *diffHarness) envFail(w *workerState) {
	h.opLog = append(h.opLog, "envFail("+w.id+")")
	h.m.onFileAck(w, proto.FileAck{ID: diffEnv, Ok: false, Err: "injected transfer fault"})
	if !h.rp.EnvFailed(w.id) {
		h.t.Fatalf("sim rejected EnvFailed(%s) the manager accepted", w.id)
	}
}

func (h *diffHarness) taskFail(w *workerState, id int64) {
	h.opLog = append(h.opLog, fmt.Sprintf("fail(%s,%d)", w.id, id))
	h.m.onResult(w, core.Result{ID: id, Ok: false, Retryable: true, Err: "injected fault"})
	h.waitRetryLanded()
	if !h.rp.Fail(w.id, taskRingKey(id)) {
		h.t.Fatalf("sim rejected Fail(%s, task %d) the manager accepted", w.id, id)
	}
}

// waitRetryLanded blocks until every pending backoff timer has fired
// and requeued its spec (and the follow-up schedule pass finished), so
// the manager's decisions from a retry are recorded before the sim's.
// The dirty marks are part of the predicate: the timer callback sets
// them and drops the lock before it calls wake, so backoffs can read 0
// with the requeue's schedule pass still ahead.
func (h *diffHarness) waitRetryLanded() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.m.mu.Lock()
		quiet := h.m.backoffs == 0 && !h.m.scheduling && !h.m.hasDirtyLocked()
		h.m.mu.Unlock()
		if quiet {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatal("backoff requeue never landed")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// quiesce applies every applicable non-submit event in deterministic
// order until none applies: all transfers land, all deploys come up,
// all dispatches complete.
func (h *diffHarness) quiesce() {
	for {
		progressed := false
		for _, w := range h.ws {
			if h.dead[w.id] {
				continue
			}
			h.settle()
			if h.canEnvAck(w) {
				h.envAck(w)
				progressed = true
			}
			if h.level == core.L3 && h.canLibReady(w) {
				h.libReady(w)
				progressed = true
			}
			for {
				id, ok := h.completable(w)
				if !ok {
					break
				}
				h.done(w, id)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// diffTraces asserts the two decision traces are identical, printing
// the first divergence with context.
func (h *diffHarness) diffTraces(minLines int) {
	mgr := h.rec.Decisions
	rep := h.rp.Decisions()
	n := len(mgr)
	if len(rep) < n {
		n = len(rep)
	}
	for i := 0; i < n; i++ {
		if mgr[i] != rep[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			h.t.Fatalf("decision traces diverge at line %d:\n  manager: %q\n  sim:     %q\ncontext (manager):\n  %v\ncontext (sim):\n  %v\nFULL mgr:\n%s\nFULL sim:\n%s",
				i, mgr[i], rep[i], mgr[lo:i+1], rep[lo:i+1], h.rec.Dump(), h.rp.Dump())
		}
	}
	if len(mgr) != len(rep) {
		h.t.Fatalf("trace lengths differ: manager=%d sim=%d (first %d lines identical)", len(mgr), len(rep), n)
	}
	if len(mgr) < minLines {
		h.t.Fatalf("degenerate run: only %d decisions recorded, want >= %d", len(mgr), minLines)
	}
}

// diffOpts selects the optional adversarial event classes a
// differential run mixes into its trace.
type diffOpts struct {
	churn bool // random worker joins and deaths mid-trace
	fail  bool // injected transfer faults and retryable task failures
}

// injectChaos maybe applies one churn or failure event, reporting
// whether it consumed the op. Called only when an opts flag is set, so
// the flag-free workloads draw exactly the random sequence they always
// did and their traces stay byte-identical.
func (h *diffHarness) injectChaos(rng *rand.Rand, opts diffOpts, joins *int) bool {
	switch rng.Intn(25) {
	case 0:
		if opts.churn {
			if live := h.live(); len(live) > 3 {
				h.killWorker(h.ws[live[rng.Intn(len(live))]])
				return true
			}
		}
	case 1:
		if opts.churn && *joins < 5 {
			*joins++
			h.addWorker()
			return true
		}
	case 2:
		if opts.fail {
			for _, k := range rng.Perm(len(h.ws)) {
				w := h.ws[k]
				if !h.dead[w.id] && h.canEnvFail(w) {
					h.envFail(w)
					return true
				}
			}
		}
	case 3:
		// Retryable task failure: only task workloads — the sim's
		// invocation pool is keyless, so a specific invocation cannot
		// be failed-and-avoided there.
		if opts.fail && h.level != core.L3 {
			for _, k := range rng.Perm(len(h.ws)) {
				w := h.ws[k]
				if h.dead[w.id] {
					continue
				}
				if id, ok := h.completable(w); ok {
					h.taskFail(w, id)
					return true
				}
			}
		}
	}
	return false
}

// runDifferential drives ops random events through both engines and
// diffs the decision traces, then drives both to quiescence and diffs
// again.
func runDifferential(t *testing.T, level core.ReuseLevel, slots int, seed int64, ops int, opts diffOpts) {
	h := newDiffHarness(t, level, 7, slots)
	rng := rand.New(rand.NewSource(seed))
	outstanding := 0
	joins := 0
	for i := 0; i < ops; i++ {
		h.settle()
		h.crossCheck(fmt.Sprintf("op %d", i))
		if (opts.churn || opts.fail) && h.injectChaos(rng, opts, &joins) {
			continue
		}
		switch rng.Intn(10) {
		case 0, 1, 2:
			if outstanding < 120 {
				n := 1 + rng.Intn(4)
				h.submit(n)
				outstanding += n
			}
		case 3, 4:
			for _, k := range rng.Perm(len(h.ws)) {
				if !h.dead[h.ws[k].id] && h.canEnvAck(h.ws[k]) {
					h.envAck(h.ws[k])
					break
				}
			}
		case 5:
			if level == core.L3 {
				for _, k := range rng.Perm(len(h.ws)) {
					if !h.dead[h.ws[k].id] && h.canLibReady(h.ws[k]) {
						h.libReady(h.ws[k])
						break
					}
				}
			}
		default:
			for _, k := range rng.Perm(len(h.ws)) {
				if h.dead[h.ws[k].id] {
					continue
				}
				if id, ok := h.completable(h.ws[k]); ok {
					h.done(h.ws[k], id)
					outstanding--
					break
				}
			}
		}
	}
	h.quiesce()
	h.settle()
	if err := h.m.CheckQuiescence(); err != nil {
		t.Errorf("manager not quiescent after drain: %v", err)
	}
	if p := h.rp.Pending(); p != 0 {
		t.Errorf("sim replay still has %d pending invocations after drain", p)
	}
	h.diffTraces(ops / 4)
}

func TestDifferentialTaskWorkload(t *testing.T) {
	// L2-style stateless tasks carrying a cached peer-transferable
	// environment input: exercises ring placement, direct vs peer
	// staging, first-copy suppression, and per-source caps.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{})
	}
}

func TestDifferentialInvocationWorkload(t *testing.T) {
	// L3 function invocations on single-slot library instances:
	// exercises ready-instance placement, hash-ring deploys with the
	// saturation guard, and deploy staging.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L3, 1, seed, 600, diffOpts{})
	}
}

func TestDifferentialWorkerChurn(t *testing.T) {
	// Workers join and die mid-trace: exercises ring reshaping, replica
	// and in-flight-copy teardown, transfer-slot recovery from dead
	// sources and destinations, and the deterministic ascending-ID
	// requeue with the dead worker as the avoid preference.
	for _, seed := range []int64{1, 2} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{churn: true})
		runDifferential(t, core.L3, 1, seed, 600, diffOpts{churn: true})
	}
}

func TestDifferentialRetryAndAvoidance(t *testing.T) {
	// Injected transfer faults (peer fetch fails → manager restages
	// direct, no new decision) and retryable task failures (backoff →
	// requeue at the back with the failing worker avoided): exercises
	// the manager's recovery paths against the replay's keyed queue.
	for _, seed := range []int64{1, 2, 3} {
		runDifferential(t, core.L2, 2, seed, 600, diffOpts{fail: true})
	}
}

func TestDifferentialChurnWithFailures(t *testing.T) {
	// Both adversarial classes at once — deaths can strand in-flight
	// fetches that then fail, retries can land on workers that later
	// die. The harshest fidelity workload we run.
	runDifferential(t, core.L2, 2, 7, 600, diffOpts{churn: true, fail: true})
}
