package manager

import (
	"strconv"
	"sync/atomic"

	"repro/internal/core"
)

// This file maintains the scheduler's incremental indexes. The paper's
// headline result (§4) needs the manager off the critical path while
// invocations fan out; the original engine re-ran a full schedule scan
// of every pending spec against every worker after every event. The
// indexes below make each event O(1)/O(candidates):
//
//   - readyFree  (§3.5.2): library → workers holding a ready instance
//     with at least one free slot, so ready-instance placement never
//     walks the ring.
//   - holders    (§3.3): object → workers holding a confirmed replica,
//     so picking a peer-transfer source only looks at actual holders,
//     and ObjectHolders is a counter read.
//   - pendingCopies (§3.3): object → number of in-flight copies, so
//     the "first copy in flight, everyone else waits" check is O(1).
//   - objWaiters: object → the placements its arrival could unblock,
//     so a FileAck wakes exactly those queues.
//   - per-worker ackWaiters: object → dispatches on that worker still
//     waiting for the ack (TransferTime stamping without scanning the
//     whole inflight table).
//
// All functions here require m.mu unless noted. The randomized
// consistency test (index_test.go) asserts these structures always
// match a brute-force recomputation from ground-truth worker state.

// objWaiter records which placements a blocked object is holding up.
type objWaiter struct {
	tasks bool
	libs  map[string]bool
}

// ---- dirty marks + coalesced wakeups ----

// markTasksDirtyLocked queues a reconsideration of pending tasks.
func (m *Manager) markTasksDirtyLocked() { m.dirtyTasks = true }

// markLibDirtyLocked queues a reconsideration of one library's pending
// invocations.
func (m *Manager) markLibDirtyLocked(lib string) {
	if m.dirtyAllLibs {
		return
	}
	if m.dirtyLibs == nil {
		m.dirtyLibs = map[string]bool{}
	}
	m.dirtyLibs[lib] = true
}

// markAllLibsDirtyLocked queues a reconsideration of every library with
// pending invocations (worker churn, freed capacity).
func (m *Manager) markAllLibsDirtyLocked() {
	m.dirtyAllLibs = true
	m.dirtyLibs = nil
}

// wakeCapacityLocked marks everything that competes for worker
// resources: pending tasks and every library still waiting to deploy.
func (m *Manager) wakeCapacityLocked() {
	m.markTasksDirtyLocked()
	m.markAllLibsDirtyLocked()
}

func (m *Manager) hasDirtyLocked() bool {
	return m.dirtyTasks || m.dirtyAllLibs || len(m.dirtyLibs) > 0
}

// wake runs schedule passes until no dirty marks remain. If another
// goroutine is already inside the loop, wake returns immediately — the
// running scheduler will observe the new marks on its next iteration.
// This is the coalescing rule: a burst of N acks arriving while a pass
// runs triggers one follow-up pass, not N.
func (m *Manager) wake() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scheduling || m.closed {
		atomic.AddInt64(&m.stats.CoalescedWakeups, 1)
		return
	}
	m.scheduling = true
	for m.hasDirtyLocked() && !m.closed {
		tasks := m.dirtyTasks
		allLibs := m.dirtyAllLibs
		libs := m.dirtyLibs
		m.dirtyTasks, m.dirtyAllLibs, m.dirtyLibs = false, false, nil

		atomic.AddInt64(&m.stats.SchedulePasses, 1)
		if tasks {
			m.scheduleTasksLocked()
		}
		if allLibs {
			for lib := range m.pendingInvs {
				m.scheduleLibQueueLocked(lib)
			}
		} else {
			for lib := range libs {
				m.scheduleLibQueueLocked(lib)
			}
		}
		// Release briefly so event handlers blocked on the lock can
		// record their dirty marks (and coalesce) before the re-check.
		m.mu.Unlock()
		m.mu.Lock()
	}
	m.scheduling = false
}

// ---- pending queues ----

// taskRingKey is the consistent-hash key for a task, precomputed once
// per spec instead of fmt.Sprintf on every placement attempt.
func taskRingKey(id int64) string {
	return "task-" + strconv.FormatInt(id, 10)
}

// enqueueInvLocked appends an invocation to its library's wait queue.
func (m *Manager) enqueueInvLocked(inv *core.InvocationSpec) {
	m.pendingInvs[inv.Library] = append(m.pendingInvs[inv.Library], inv)
	m.pendingInvCount++
	m.markLibDirtyLocked(inv.Library)
}

// ---- replica (holders) index ----

// noteReplicaLocked records a confirmed cached copy of an object on a
// worker, keeping the holders index and the lock-free observability
// counter in sync.
func (m *Manager) noteReplicaLocked(w *workerState, id string) {
	if w.files[id] {
		return
	}
	w.files[id] = true
	set := m.holders[id]
	if set == nil {
		set = map[string]*workerState{}
		m.holders[id] = set
	}
	set[w.id] = w
	m.setHolderCount(id, len(set))
}

// dropReplicaLocked removes one worker's replica (worker death).
func (m *Manager) dropReplicaLocked(w *workerState, id string) {
	if !w.files[id] {
		return
	}
	delete(w.files, id)
	if set := m.holders[id]; set != nil {
		delete(set, w.id)
		if len(set) == 0 {
			delete(m.holders, id)
			m.setHolderCount(id, 0)
		} else {
			m.setHolderCount(id, len(set))
		}
	}
}

// setHolderCount publishes the replica count under its own lock so
// ObjectHolders never contends with the scheduler.
func (m *Manager) setHolderCount(id string, n int) {
	m.obsMu.Lock()
	if n == 0 {
		delete(m.holderCount, id)
	} else {
		m.holderCount[id] = n
	}
	m.obsMu.Unlock()
}

// ---- in-flight copy index ----

// notePendingLocked records that a copy of the object is in flight to
// the worker.
func (m *Manager) notePendingLocked(w *workerState, id string) {
	if w.pending[id] {
		return
	}
	w.pending[id] = true
	m.pendingCopies[id]++
}

// clearPendingLocked removes the in-flight record, reporting whether
// one existed. The count is guarded against state written behind the
// mutators' back (synthetic test workers).
func (m *Manager) clearPendingLocked(w *workerState, id string) bool {
	if !w.pending[id] {
		return false
	}
	delete(w.pending, id)
	if n := m.pendingCopies[id]; n > 1 {
		m.pendingCopies[id] = n - 1
	} else {
		delete(m.pendingCopies, id)
	}
	return true
}

// ---- ready-instance index (§3.5.2) ----

// libSlotsChangedLocked re-derives one instance's membership in the
// readyFree index after any slot or readiness transition.
func (m *Manager) libSlotsChangedLocked(w *workerState, li *libInstance) {
	slots := 1
	if spec := m.libSpecs[li.name]; spec != nil {
		slots = spec.SlotCount()
	}
	if li.ready && !li.failed && w.alive && li.slotsUsed < slots {
		set := m.readyFree[li.name]
		if set == nil {
			set = map[string]*workerState{}
			m.readyFree[li.name] = set
		}
		set[w.id] = w
		return
	}
	m.removeReadyLocked(li.name, w.id)
}

// decLibOnLocked decrements a library's deployed-instance count
// (failed install, eviction, worker death). Entries added behind the
// mutators' back (synthetic test workers) leave the count under-stated,
// which only costs a redundant ring walk — never a skipped deploy.
func (m *Manager) decLibOnLocked(lib string) {
	if n := m.libOn[lib]; n > 1 {
		m.libOn[lib] = n - 1
	} else {
		delete(m.libOn, lib)
	}
}

// removeReadyLocked drops a worker from a library's ready-free set
// (eviction, death, failed install, full slots).
func (m *Manager) removeReadyLocked(lib, workerID string) {
	set := m.readyFree[lib]
	if set == nil {
		return
	}
	delete(set, workerID)
	if len(set) == 0 {
		delete(m.readyFree, lib)
	}
}

// ---- blocked-placement wait queues ----

// addObjWaiterLocked registers interest in an object's next FileAck:
// either the task queue (lib == "") or one library's queue.
func (m *Manager) addObjWaiterLocked(id, lib string) {
	ww := m.objWaiters[id]
	if ww == nil {
		ww = &objWaiter{}
		m.objWaiters[id] = ww
	}
	if lib == "" {
		ww.tasks = true
		return
	}
	if ww.libs == nil {
		ww.libs = map[string]bool{}
	}
	ww.libs[lib] = true
}

// wakeObjWaitersLocked marks dirty exactly the queues an object event
// (ack, failed transfer, holder death) could unblock.
func (m *Manager) wakeObjWaitersLocked(id string) {
	ww := m.objWaiters[id]
	if ww == nil {
		return
	}
	delete(m.objWaiters, id)
	if ww.tasks {
		m.markTasksDirtyLocked()
	}
	for lib := range ww.libs {
		m.markLibDirtyLocked(lib)
	}
}

// ---- worker lifecycle ----

// registerWorkerLocked adds a connected worker to the worker table and
// the placement ring.
func (m *Manager) registerWorkerLocked(w *workerState) {
	m.workers[w.id] = w
	m.ring.Add(w.id)
}

// dropWorkerLocked removes a dead worker from every index: its ready
// instances, its replicas, its in-flight copies (waking anything queued
// behind a first copy that will now never confirm), and its ack
// waiters.
func (m *Manager) dropWorkerLocked(w *workerState) {
	delete(m.workers, w.id)
	m.ring.Remove(w.id)
	w.alive = false
	for name := range w.libs {
		m.removeReadyLocked(name, w.id)
		m.decLibOnLocked(name)
	}
	for id := range w.files {
		m.dropReplicaLocked(w, id)
	}
	for id := range w.pending {
		m.clearPendingLocked(w, id)
		if m.pendingCopies[id] == 0 {
			m.wakeObjWaitersLocked(id)
		}
	}
	w.ackWaiters = nil
}
