package manager

import (
	"strconv"
	"sync/atomic"

	"repro/internal/core"
)

// This file keeps the manager's policy.ClusterView current and runs the
// coalesced wake loop. The paper's headline result (§4) needs the
// manager off the critical path while invocations fan out; the view's
// derived indexes (ReadyFree, Holders, PendingCopies, LibFull —
// internal/policy) make each decision O(candidates), and the structures
// kept here make each *event* cheap:
//
//   - objWaiters: object → the placements its arrival could unblock,
//     so a FileAck wakes exactly those queues.
//   - per-worker ackWaiters: object → dispatches on that worker still
//     waiting for the ack (TransferTime stamping without scanning the
//     whole inflight table).
//   - dirty marks + wake(): a burst of events triggers one coalesced
//     schedule pass, not one per event.
//
// All functions here require m.mu unless noted. The randomized
// consistency test (index_test.go) asserts the view's indexes always
// match a brute-force recomputation from ground-truth worker state.

// objWaiter records which placements a blocked object is holding up.
type objWaiter struct {
	tasks bool
	libs  map[string]bool
}

// ---- dirty marks + coalesced wakeups ----

// markTasksDirtyLocked queues a reconsideration of pending tasks.
func (m *Manager) markTasksDirtyLocked() { m.dirtyTasks = true }

// markLibDirtyLocked queues a reconsideration of one library's pending
// invocations.
func (m *Manager) markLibDirtyLocked(lib string) {
	if m.dirtyAllLibs {
		return
	}
	if m.dirtyLibs == nil {
		m.dirtyLibs = map[string]bool{}
	}
	m.dirtyLibs[lib] = true
}

// markAllLibsDirtyLocked queues a reconsideration of every library with
// pending invocations (worker churn, freed capacity).
func (m *Manager) markAllLibsDirtyLocked() {
	m.dirtyAllLibs = true
	m.dirtyLibs = nil
}

// wakeCapacityLocked marks everything that competes for worker
// resources: pending tasks and every library still waiting to deploy.
func (m *Manager) wakeCapacityLocked() {
	m.markTasksDirtyLocked()
	m.markAllLibsDirtyLocked()
}

func (m *Manager) hasDirtyLocked() bool {
	return m.dirtyTasks || m.dirtyAllLibs || len(m.dirtyLibs) > 0
}

// wake runs schedule passes until no dirty marks remain. If another
// goroutine is already inside the loop, wake returns immediately — the
// running scheduler will observe the new marks on its next iteration.
// This is the coalescing rule: a burst of N acks arriving while a pass
// runs triggers one follow-up pass, not N.
func (m *Manager) wake() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scheduling || m.closed {
		atomic.AddInt64(&m.stats.CoalescedWakeups, 1)
		return
	}
	m.scheduling = true
	for m.hasDirtyLocked() && !m.closed {
		tasks := m.dirtyTasks
		allLibs := m.dirtyAllLibs
		libs := m.dirtyLibs
		m.dirtyTasks, m.dirtyAllLibs, m.dirtyLibs = false, false, nil

		atomic.AddInt64(&m.stats.SchedulePasses, 1)
		if tasks {
			m.scheduleTasksLocked()
		}
		// Competing library queues must drain in sorted-name order:
		// they contend for the same worker capacity, so map iteration
		// order here would leak straight into the decision trace and
		// break replay against the simulator.
		if allLibs {
			for _, lib := range core.SortedKeys(m.pendingInvs) {
				m.scheduleLibQueueLocked(lib)
			}
		} else {
			for _, lib := range core.SortedKeys(libs) {
				m.scheduleLibQueueLocked(lib)
			}
		}
		// Release briefly so event handlers blocked on the lock can
		// record their dirty marks (and coalesce) before the re-check.
		m.mu.Unlock()
		m.mu.Lock()
	}
	m.scheduling = false
}

// ---- pending queues ----

// taskRingKey is the consistent-hash key for a task, precomputed once
// per spec instead of fmt.Sprintf on every placement attempt.
func taskRingKey(id int64) string {
	return "task-" + strconv.FormatInt(id, 10)
}

// enqueueInvLocked appends an invocation to its library's wait queue.
func (m *Manager) enqueueInvLocked(inv *core.InvocationSpec) {
	m.pendingInvs[inv.Library] = append(m.pendingInvs[inv.Library], inv)
	m.pendingInvCount++
	m.markLibDirtyLocked(inv.Library)
}

// ---- view wrappers ----
//
// The scheduler's cluster state lives in m.view (policy.ClusterView);
// the wrappers below forward transitions and keep the lock-free
// observability counter in sync with the view's Holders index.

// noteReplicaLocked records a confirmed cached copy of an object on a
// worker.
func (m *Manager) noteReplicaLocked(w *workerState, id string) {
	if m.view.NoteReplica(w.v, id) {
		m.setHolderCount(id, len(m.view.Holders[id]))
	}
}

// dropReplicaLocked removes one worker's replica (worker death).
func (m *Manager) dropReplicaLocked(w *workerState, id string) {
	if m.view.DropReplica(w.v, id) {
		m.setHolderCount(id, len(m.view.Holders[id]))
	}
}

// setHolderCount publishes the replica count under its own lock so
// ObjectHolders never contends with the scheduler.
func (m *Manager) setHolderCount(id string, n int) {
	m.obsMu.Lock()
	if n == 0 {
		delete(m.holderCount, id)
	} else {
		m.holderCount[id] = n
	}
	m.obsMu.Unlock()
}

// notePendingLocked records that a copy of the object is in flight to
// the worker.
func (m *Manager) notePendingLocked(w *workerState, id string) {
	m.view.NotePending(w.v, id)
}

// clearPendingLocked removes the in-flight record, reporting whether
// one existed.
func (m *Manager) clearPendingLocked(w *workerState, id string) bool {
	return m.view.ClearPending(w.v, id)
}

// libSlotsChangedLocked republishes one instance's free ready-slot
// count after any slot or readiness transition, re-deriving its
// membership in the view's ReadyFree index.
func (m *Manager) libSlotsChangedLocked(w *workerState, li *libInstance) {
	free := 0
	if li.Ready && !li.Failed && li.SlotsUsed < li.Slots {
		free = li.Slots - li.SlotsUsed
	}
	m.view.SetFreeReady(w.v, &li.LibraryView, free)
}

// ---- blocked-placement wait queues ----

// addObjWaiterLocked registers interest in an object's next FileAck:
// either the task queue (lib == "") or one library's queue.
func (m *Manager) addObjWaiterLocked(id, lib string) {
	ww := m.objWaiters[id]
	if ww == nil {
		ww = &objWaiter{}
		m.objWaiters[id] = ww
	}
	if lib == "" {
		ww.tasks = true
		return
	}
	if ww.libs == nil {
		ww.libs = map[string]bool{}
	}
	ww.libs[lib] = true
}

// wakeObjWaitersLocked marks dirty exactly the queues an object event
// (ack, failed transfer, holder death) could unblock.
func (m *Manager) wakeObjWaitersLocked(id string) {
	ww := m.objWaiters[id]
	if ww == nil {
		return
	}
	delete(m.objWaiters, id)
	if ww.tasks {
		m.markTasksDirtyLocked()
	}
	for lib := range ww.libs { //vinelint:unordered dirty marks form a set; wake() drains them in sorted order
		m.markLibDirtyLocked(lib)
	}
}

// ---- worker lifecycle ----

// registerWorkerLocked adds a connected worker to the worker table and
// the view (which puts it on the placement ring).
func (m *Manager) registerWorkerLocked(w *workerState) {
	m.workers[w.id] = w
	w.v = m.view.AddWorker(w.id, w.hello.Cluster, w.hello.Resources)
}

// dropWorkerLocked removes a dead worker from the worker table and
// every view index: its library instances, its replicas, its in-flight
// copies — republishing observability counters and waking anything
// queued behind a first copy that will now never confirm.
func (m *Manager) dropWorkerLocked(w *workerState) {
	delete(m.workers, w.id)
	// Un-acked installs on the dead worker will never ack; release
	// their claims so queued invocations can trigger fresh deploys.
	for name, li := range w.libs { //vinelint:unordered per-library counter decrements commute
		if !li.Ready && !li.Failed && m.installing[name] > 0 {
			m.installing[name]--
		}
	}
	dropped, cleared := m.view.RemoveWorker(w.v)
	for _, id := range dropped {
		m.setHolderCount(id, len(m.view.Holders[id]))
	}
	for _, id := range cleared {
		if m.view.PendingCopies[id] == 0 {
			m.wakeObjWaitersLocked(id)
		}
	}
	w.ackWaiters = nil
}
