package manager

import (
	"sort"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
)

// This file keeps each shard's policy.ClusterView current and runs the
// shard's coalesced wake loop. The paper's headline result (§4) needs
// the manager off the critical path while invocations fan out; the
// view's derived indexes (ReadyFree, Holders, PendingCopies, LibFull —
// internal/policy) make each decision O(candidates), and the
// structures kept here make each *event* cheap:
//
//   - objWaiters: object → the placements its arrival could unblock,
//     so a FileAck wakes exactly those queues.
//   - per-worker ackWaiters: object → dispatches on that worker still
//     waiting for the ack (TransferTime stamping without scanning the
//     whole inflight table).
//   - dirty marks + wake(): a burst of events triggers one coalesced
//     schedule pass, not one per event — per shard.
//
// All shard methods here require s.mu unless noted. The randomized
// consistency test (index_test.go) asserts the view's indexes always
// match a brute-force recomputation from ground-truth worker state.

// objWaiter records which placements a blocked object is holding up.
type objWaiter struct {
	tasks bool
	libs  map[string]bool
}

// ---- dirty marks + coalesced wakeups ----

// markTasksDirtyLocked queues a reconsideration of pending tasks.
func (s *shard) markTasksDirtyLocked() { s.dirtyTasks = true }

// markLibDirtyLocked queues a reconsideration of one library's pending
// invocations.
func (s *shard) markLibDirtyLocked(lib string) {
	if s.dirtyAllLibs {
		return
	}
	if s.dirtyLibs == nil {
		s.dirtyLibs = map[string]bool{}
	}
	s.dirtyLibs[lib] = true
}

// markAllLibsDirtyLocked queues a reconsideration of every library with
// pending invocations (worker churn, freed capacity).
func (s *shard) markAllLibsDirtyLocked() {
	s.dirtyAllLibs = true
	clear(s.dirtyLibs)
}

// wakeCapacityLocked marks everything that competes for worker
// resources: pending tasks and every library still waiting to deploy.
func (s *shard) wakeCapacityLocked() {
	s.markTasksDirtyLocked()
	s.markAllLibsDirtyLocked()
}

func (s *shard) hasDirtyLocked() bool {
	return s.dirtyTasks || s.dirtyAllLibs || len(s.dirtyLibs) > 0
}

// hasPendingLocked reports whether any spec is queued in this shard.
func (s *shard) hasPendingLocked() bool {
	return len(s.pendingTasks) > 0 || s.pendingInvCount > 0
}

// wake ensures a schedule loop runs (and keeps running) until no
// dirty marks and no intake remain in this shard. The latch is
// lock-free: a caller finding the loop already running leaves a rerun
// request behind with one CAS and returns without ever touching the
// shard lock — so a submit burst coalesces into one follow-up pass,
// not N, and never queues behind a pass in progress.
//
// No wakeup is lost: a wake that arrives while the loop is exiting
// either lands its wakeRunning→wakeRerun CAS first (the exit CAS then
// fails and the loop runs again) or finds the latch idle and runs the
// loop itself.
func (s *shard) wake() {
	for {
		switch s.wakeState.Load() {
		case wakeIdle:
			if s.wakeState.CompareAndSwap(wakeIdle, wakeRunning) {
				s.runWake()
				// Quota released under a shard lock (emitFailure, crash
				// exhaustion, quarantine) parks its wakes; flush them now
				// that no lock is held. pump() may wake further shards
				// inline — bounded, since each flush empties the parked
				// set and refills only on new failure-path releases.
				if s.m.planeActive.Load() {
					s.m.plane.pump()
				}
				return
			}
		case wakeRunning:
			if !s.wakeState.CompareAndSwap(wakeRunning, wakeRerun) {
				continue
			}
			atomic.AddInt64(&s.m.stats.CoalescedWakeups, 1)
			return
		default: // wakeRerun: a follow-up pass is already owed
			atomic.AddInt64(&s.m.stats.CoalescedWakeups, 1)
			return
		}
	}
}

// runWake is the schedule loop body, entered only by the wake that won
// the idle→running CAS.
//
// The loop also hosts the shard-crossing evacuation path: a shard
// whose last worker died (or whose parked work predates the first
// worker) cannot place anything, so its queues are extracted and
// re-routed to live shards — with the shard lock released, never
// holding two shard locks at once.
func (s *shard) runWake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.drainIntakeLocked()
		if !s.hasDirtyLocked() || s.m.closed.Load() {
			// Starvation registration: queued work survives with nothing
			// in flight locally — no result, ack, or backoff timer of
			// this shard will ever re-run the pass. A capacity-freeing
			// event in any other shard nudges us awake (nudgeStarving).
			s.setStarvingLocked(s.hasPendingLocked() && s.quietLocked())
			if s.wakeState.CompareAndSwap(wakeRunning, wakeIdle) {
				return
			}
			// A wake arrived since the last pass: absorb the rerun
			// request and go around again.
			s.wakeState.Store(wakeRunning)
			continue
		}
		if len(s.workers) == 0 && s.hasPendingLocked() && s.m.router.Live() > 0 {
			tasks, invs := s.extractPendingLocked()
			s.mu.Unlock()
			s.m.forwardEvacuated(tasks, invs)
			s.mu.Lock()
			continue
		}
		tasks := s.dirtyTasks
		allLibs := s.dirtyAllLibs
		// Copy this pass's dirty libraries into the reusable scratch
		// slice and clear the (retained) map, so marks recorded while
		// the pass runs are observed by the next iteration. Sorting
		// restores determinism after the unordered collect.
		libs := s.libScratch[:0]
		for lib := range s.dirtyLibs { //vinelint:unordered collected keys are sorted below
			libs = append(libs, lib)
		}
		sort.Strings(libs)
		s.libScratch = libs
		clear(s.dirtyLibs)
		s.dirtyTasks, s.dirtyAllLibs = false, false

		atomic.AddInt64(&s.m.stats.SchedulePasses, 1)
		var fwdTasks []pendingTask
		var fwdTarget int
		if tasks {
			fwdTasks, fwdTarget = s.scheduleTasksLocked()
		}
		// Competing library queues must drain in sorted-name order:
		// they contend for the same worker capacity, so map iteration
		// order here would leak straight into the decision trace and
		// break replay against the simulator.
		var fwdInvs map[string][]pendingInv
		var invTarget int
		handleLib := func(lib string) {
			if q, target, ok := s.invOverflowLocked(lib); ok {
				if fwdInvs == nil {
					fwdInvs = map[string][]pendingInv{}
				}
				fwdInvs[lib] = q
				invTarget = target
				return
			}
			s.scheduleLibQueueLocked(lib)
		}
		if allLibs {
			for _, lib := range core.SortedKeys(s.pendingInvs) {
				handleLib(lib)
			}
		} else {
			for _, lib := range libs {
				handleLib(lib)
			}
		}
		// Overflow forwarding (shard-crossing path): work this shard
		// cannot place — and that no local event will unblock — hops
		// to the next live shard, with the shard lock released and at
		// most one shard lock held at a time.
		if len(fwdTasks) > 0 || len(fwdInvs) > 0 {
			s.mu.Unlock()
			if len(fwdTasks) > 0 {
				s.m.forwardTasksTo(fwdTarget, fwdTasks)
			}
			for _, lib := range core.SortedKeys(fwdInvs) {
				s.m.forwardInvQueue(invTarget, lib, fwdInvs[lib])
			}
			s.mu.Lock()
			continue
		}
		// Release briefly so event handlers blocked on the lock can
		// record their dirty marks (and coalesce) before the re-check.
		s.mu.Unlock()
		s.mu.Lock()
	}
}

// quietLocked reports whether no local event is pending that could
// change this shard's placement state: nothing in flight, no copies
// awaiting acks, no installs awaiting acks, no retries waiting out a
// backoff.
func (s *shard) quietLocked() bool {
	if len(s.inflight) > 0 || s.backoffs > 0 || len(s.view.PendingCopies) > 0 {
		return false
	}
	for _, n := range s.installing { //vinelint:unordered existence check over a set
		if n > 0 {
			return false
		}
	}
	return true
}

// extractPendingLocked removes and returns every queued spec so the
// coordinator can re-route it to live shards. Blocked-object interest
// is dropped too: the specs are leaving, and whichever shard receives
// them re-registers waiters against its own view.
func (s *shard) extractPendingLocked() ([]pendingTask, map[string][]pendingInv) {
	tasks := s.pendingTasks
	s.pendingTasks = nil
	invs := s.pendingInvs
	s.pendingInvs = map[string][]pendingInv{}
	s.pendingInvCount = 0
	s.objWaiters = map[string]*objWaiter{}
	return tasks, invs
}

// forwardEvacuated re-routes extracted specs: tasks individually by
// ring key, invocation queues whole per library (preserving order) to
// the library's owner shard. Called with no shard lock held.
func (m *Manager) forwardEvacuated(tasks []pendingTask, invs map[string][]pendingInv) {
	for _, pt := range tasks {
		atomic.AddInt64(&m.stats.ShardForwards, 1)
		m.routeTask(pt)
	}
	for _, lib := range core.SortedKeys(invs) {
		idx, ok := m.router.Owner(lib)
		if !ok {
			idx = m.router.Park(lib)
		}
		m.forwardInvQueue(idx, lib, invs[lib])
	}
}

// forwardTasksTo moves overflow tasks into a target shard's queue.
// Called with no shard lock held.
func (m *Manager) forwardTasksTo(idx int, tasks []pendingTask) {
	s := m.shards[idx]
	s.mu.Lock()
	s.pendingTasks = append(s.pendingTasks, tasks...)
	s.markTasksDirtyLocked()
	s.mu.Unlock()
	atomic.AddInt64(&m.stats.ShardForwards, int64(len(tasks)))
	s.wake()
}

// ---- overflow forwarding eligibility ----
//
// A shard forwards queued work to the next live shard when local
// placement is a dead end: either no non-avoided worker here is large
// enough to ever hold the spec, or capacity exists on paper but is
// committed with nothing in flight to free it (idle library
// deployments pinning a worker, an avoided worker being the only fit).
// The hop counter bounds circulation: once a spec has visited every
// shard without placing, it rests where it is until a membership
// change or a starvation nudge resets the budget. Transiently busy
// shards — inflight work, pending copies, ticking backoffs — never
// forward; their own completions re-run the pass.

// anyEligibleWorkerLocked reports whether some non-avoided worker in
// this shard is large enough to ever hold the task — the static
// pre-planning check deciding between planning here and hopping to
// the next live shard.
func (s *shard) anyEligibleWorkerLocked(pt pendingTask) bool {
	for _, w := range s.workers { //vinelint:unordered existence check over a set
		if w.id != pt.avoid && pt.t.Resources.Fits(w.v.Total) {
			return true
		}
	}
	return false
}

// invOverflowLocked decides whether one library's whole pending queue
// should hop to the next live shard: no worker in this shard is large
// enough to ever host an instance of the library. Queues move whole
// to preserve submission order. On a forward it removes the queue and
// returns it with hop counts bumped.
func (s *shard) invOverflowLocked(lib string) ([]pendingInv, int, bool) {
	q := s.pendingInvs[lib]
	if len(q) == 0 || q[0].hops >= len(s.m.shards) {
		return nil, 0, false
	}
	spec, known := s.m.libSpec(lib)
	if !known {
		return nil, 0, false
	}
	for _, w := range s.workers { //vinelint:unordered existence check over a set
		if spec.Resources.Fits(w.v.Total) {
			return nil, 0, false
		}
	}
	target, ok := s.m.router.NextAlive(s.idx)
	if !ok {
		return nil, 0, false
	}
	delete(s.pendingInvs, lib)
	s.pendingInvCount -= len(q)
	for i := range q {
		q[i].hops++
	}
	return q, target, true
}

// ---- pending queues ----

// taskRingKey is the consistent-hash key for a task, precomputed once
// per spec instead of fmt.Sprintf on every placement attempt.
func taskRingKey(id int64) string {
	return "task-" + strconv.FormatInt(id, 10)
}

// enqueueInvLocked appends an invocation to its library's wait queue.
func (s *shard) enqueueInvLocked(pi pendingInv) {
	s.pendingInvs[pi.inv.Library] = append(s.pendingInvs[pi.inv.Library], pi)
	s.pendingInvCount++
	s.markLibDirtyLocked(pi.inv.Library)
}

// ---- view wrappers ----
//
// The scheduler's cluster state lives in s.view (policy.ClusterView);
// the wrappers below forward transitions and keep the lock-free
// observability counter in sync with the view's Holders index. Holder
// counts are global across shards, so the wrappers publish deltas.

// noteReplicaLocked records a confirmed cached copy of an object on a
// worker.
func (s *shard) noteReplicaLocked(w *workerState, id string) {
	if s.view.NoteReplica(w.v, id) {
		s.m.holderAdd(id, w.id)
	}
}

// dropReplicaLocked removes one worker's replica (worker death).
func (s *shard) dropReplicaLocked(w *workerState, id string) {
	if s.view.DropReplica(w.v, id) {
		s.m.holderDrop(id, w.id)
	}
}

// holderAdd publishes a worker's confirmed replica in the global
// registry, under its own lock so ObjectHolders reads and cross-shard
// source picks never contend with any shard's scheduler.
func (m *Manager) holderAdd(id, workerID string) {
	m.obsMu.Lock()
	hs := m.holders[id]
	if hs == nil {
		hs = map[string]bool{}
		m.holders[id] = hs
	}
	hs[workerID] = true
	m.obsMu.Unlock()
}

// holderDrop retracts a worker's replica from the global registry.
func (m *Manager) holderDrop(id, workerID string) {
	m.obsMu.Lock()
	if hs := m.holders[id]; hs != nil {
		delete(hs, workerID)
		if len(hs) == 0 {
			delete(m.holders, id)
		}
	}
	m.obsMu.Unlock()
}

// peerAdd registers a live worker as a potential cross-shard peer
// source.
func (m *Manager) peerAdd(w *workerState) {
	m.obsMu.Lock()
	m.peers[w.id] = &peerSource{w: w}
	m.obsMu.Unlock()
}

// peerDrop unregisters a dead worker. In-flight release attempts
// against it become no-ops; its slots die with it.
func (m *Manager) peerDrop(workerID string) {
	m.obsMu.Lock()
	delete(m.peers, workerID)
	m.obsMu.Unlock()
}

// ---- global staging catalog ----

// catalogAdd remembers a staged FileSpec so any shard can later
// recover the object from the manager's own link (failed peer fetch,
// deploy planned in a shard that never staged it).
func (m *Manager) catalogAdd(fs core.FileSpec) {
	m.catMu.Lock()
	m.catalog[fs.Object.ID] = fs
	m.catMu.Unlock()
}

// catalogGet looks up a staged FileSpec by object ID.
func (m *Manager) catalogGet(id string) (core.FileSpec, bool) {
	m.catMu.RLock()
	fs, ok := m.catalog[id]
	m.catMu.RUnlock()
	return fs, ok
}

// ---- starvation registry (shard-crossing capacity signal) ----

// setStarvingLocked records whether this shard is resting work it
// cannot place and no local event will unblock. Caller holds s.mu;
// starveMu nests inside shard locks (never the reverse — nudges copy
// the set before taking any shard lock).
func (s *shard) setStarvingLocked(starving bool) {
	m := s.m
	m.starveMu.Lock()
	if starving && !m.starving[s.idx] {
		m.starving[s.idx] = true
		m.nStarving.Add(1)
	} else if !starving && m.starving[s.idx] {
		delete(m.starving, s.idx)
		m.nStarving.Add(-1)
	}
	m.starveMu.Unlock()
}

// nudgeStarving wakes every starving shard after a capacity-freeing
// event anywhere (a completed result, a ready instance, a membership
// change): overflow hop budgets reset so rested work circulates again
// and can reach the shard whose capacity just freed. Must be called
// with no shard lock held. When nothing is starving — the steady
// state — this is one atomic load.
func (m *Manager) nudgeStarving() {
	if m.nStarving.Load() == 0 {
		return
	}
	m.starveMu.Lock()
	idxs := make([]int, 0, len(m.starving))
	for idx := range m.starving { //vinelint:unordered wakes commute; each shard drains its own queues deterministically
		idxs = append(idxs, idx)
	}
	m.starveMu.Unlock()
	for _, idx := range idxs {
		s := m.shards[idx]
		s.mu.Lock()
		for i := range s.pendingTasks {
			s.pendingTasks[i].hops = 0
		}
		for lib := range s.pendingInvs { //vinelint:unordered resets commute; scheduling order is fixed by the wake loop
			q := s.pendingInvs[lib]
			for i := range q {
				q[i].hops = 0
			}
		}
		s.wakeCapacityLocked()
		s.mu.Unlock()
		s.wake()
	}
}

// notePendingLocked records that a copy of the object is in flight to
// the worker.
func (s *shard) notePendingLocked(w *workerState, id string) {
	s.view.NotePending(w.v, id)
}

// clearPendingLocked removes the in-flight record, reporting whether
// one existed.
func (s *shard) clearPendingLocked(w *workerState, id string) bool {
	return s.view.ClearPending(w.v, id)
}

// libSlotsChangedLocked republishes one instance's free ready-slot
// count after any slot or readiness transition, re-deriving its
// membership in the view's ReadyFree index.
func (s *shard) libSlotsChangedLocked(w *workerState, li *libInstance) {
	free := 0
	if li.Ready && !li.Failed && li.SlotsUsed < li.Slots {
		free = li.Slots - li.SlotsUsed
	}
	s.view.SetFreeReady(w.v, &li.LibraryView, free)
}

// ---- blocked-placement wait queues ----

// addObjWaiterLocked registers interest in an object's next FileAck:
// either the task queue (lib == "") or one library's queue.
func (s *shard) addObjWaiterLocked(id, lib string) {
	ww := s.objWaiters[id]
	if ww == nil {
		ww = &objWaiter{}
		s.objWaiters[id] = ww
	}
	if lib == "" {
		ww.tasks = true
		return
	}
	if ww.libs == nil {
		ww.libs = map[string]bool{}
	}
	ww.libs[lib] = true
}

// wakeObjWaitersLocked marks dirty exactly the queues an object event
// (ack, failed transfer, holder death) could unblock.
func (s *shard) wakeObjWaitersLocked(id string) {
	ww := s.objWaiters[id]
	if ww == nil {
		return
	}
	delete(s.objWaiters, id)
	if ww.tasks {
		s.markTasksDirtyLocked()
	}
	for lib := range ww.libs { //vinelint:unordered dirty marks form a set; wake() drains them in sorted order
		s.markLibDirtyLocked(lib)
	}
}

// ---- worker lifecycle ----

// registerWorkerLocked adds a connected worker to the shard's worker
// table and view (which puts it on the shard's placement ring).
func (s *shard) registerWorkerLocked(w *workerState) {
	s.workers[w.id] = w
	w.v = s.view.AddWorker(w.id, w.hello.Cluster, w.hello.Resources)
}

// dropWorkerLocked removes a dead worker from the worker table and
// every view index: its library instances, its replicas, its in-flight
// copies — republishing observability counters and waking anything
// queued behind a first copy that will now never confirm.
func (s *shard) dropWorkerLocked(w *workerState) {
	delete(s.workers, w.id)
	// Un-acked installs on the dead worker will never ack; release
	// their claims so queued invocations can trigger fresh deploys.
	for name, li := range w.libs { //vinelint:unordered per-library counter decrements commute
		if !li.Ready && !li.Failed && s.installing[name] > 0 {
			s.installing[name]--
		}
	}
	dropped, cleared := s.view.RemoveWorker(w.v)
	for _, id := range dropped {
		s.m.holderDrop(id, w.id)
	}
	for _, id := range cleared {
		if s.view.PendingCopies[id] == 0 {
			s.wakeObjWaitersLocked(id)
		}
	}
	w.ackWaiters = nil
}
