package manager

// Race-mode tests for the coalesced per-worker writer: the sender
// goroutine in serveWorker drains a worker's sendq into the
// connection's pending buffer and flushes whole bursts in one write.
// These tests drive the real sender over a net.Pipe whose peer stalls
// mid-frame, and assert the two properties coalescing must not break:
// every frame arrives intact and exactly once (no interleaving, no
// truncation), and the send-queue overflow path still disconnects and
// counts when the peer stops draining entirely. Run with -race (make
// check does).

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// dribbleConn delivers reads in tiny chunks with periodic pauses: the
// peer keeps draining, but every multi-byte frame crosses several Read
// calls with stalls landing mid-frame.
type dribbleConn struct {
	net.Conn
	chunk int
	reads int
}

func (c *dribbleConn) Read(p []byte) (int, error) {
	if len(p) > c.chunk {
		p = p[:c.chunk]
	}
	c.reads++
	if c.reads%7 == 0 {
		time.Sleep(200 * time.Microsecond)
	}
	return c.Conn.Read(p)
}

// startPipeWorker runs the real serveWorker loop against one end of a
// pipe, sends the Hello handshake from the other, and returns the
// registered workerState plus the peer-side framed connection.
func startPipeWorker(t *testing.T, m *Manager, id string, cores int, peerSide net.Conn, mgrSide net.Conn) (*workerState, *proto.Conn) {
	t.Helper()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.serveWorker(mgrSide)
	}()
	peer := proto.NewConn(peerSide)
	if err := peer.Send(proto.MsgHello, proto.Hello{
		WorkerID:  id,
		Resources: core.Resources{Cores: cores, MemoryMB: 64 << 10, DiskMB: 64 << 10},
	}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	s := m.shardFor(id)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		w := s.workers[id]
		s.mu.Unlock()
		if w != nil {
			return w, peer
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never registered", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoalescedWriterFrameIntegrityUnderStall(t *testing.T) {
	m := New(Options{Shards: 1})
	defer m.Shutdown()
	mgrSide, peerSide := net.Pipe()
	defer mgrSide.Close()
	defer peerSide.Close()

	// chunk=5 makes every length prefix and every frame body span
	// multiple reads, so the writer is routinely blocked mid-frame.
	w, peer := startPipeWorker(t, m, "stall", 32, &dribbleConn{Conn: peerSide, chunk: 5}, mgrSide)

	const producers, perProducer = 4, 64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				w.enqueue(outMsg{t: proto.MsgRunTask, v: &core.TaskSpec{
					ID:     int64(p*perProducer + k),
					Script: strings.Repeat("#", 64), // multi-chunk frame body
				}})
			}
		}(p)
	}

	// Drain from the stalling peer while producers flood. A coalescing
	// bug — two frames interleaved, a frame cut at a flush boundary —
	// surfaces as a decode error or a missing/duplicated task ID.
	peerSide.SetReadDeadline(time.Now().Add(30 * time.Second))
	const total = producers * perProducer
	seen := make(map[int64]int, total)
	for n := 0; n < total; {
		mt, raw, err := peer.Recv()
		if err != nil {
			t.Fatalf("recv after %d intact frames: %v", n, err)
		}
		if mt != proto.MsgRunTask {
			t.Fatalf("unexpected frame type %v mid-burst", mt)
		}
		ts, err := proto.Decode[core.TaskSpec](raw)
		if err != nil {
			t.Fatalf("frame %d corrupted: %v", n, err)
		}
		seen[ts.ID]++
		n++
	}
	wg.Wait()
	for id := int64(0); id < total; id++ {
		if seen[id] != 1 {
			t.Fatalf("task %d delivered %d times, want exactly once", id, seen[id])
		}
	}
	st := m.Stats()
	if st.SendQueueDrops != 0 {
		t.Errorf("draining peer was dropped: SendQueueDrops = %d", st.SendQueueDrops)
	}
	if st.FramesSent < total || st.FlushBatches < 1 {
		t.Errorf("coalescing accounting: FramesSent=%d FlushBatches=%d, want >= %d and >= 1",
			st.FramesSent, st.FlushBatches, total)
	}
	if st.FlushBatches > st.FramesSent {
		t.Errorf("more flushes (%d) than frames (%d)", st.FlushBatches, st.FramesSent)
	}
}

func TestCoalescedWriterOverflowUnderFullStall(t *testing.T) {
	m := New(Options{Shards: 1})
	defer m.Shutdown()
	mgrSide, peerSide := net.Pipe()
	defer mgrSide.Close()
	defer peerSide.Close()

	// Cores=1 gives the floor queue size; after the Hello the peer never
	// reads again, so the sender wedges mid-frame on the pipe with the
	// coalescing buffer full behind it.
	w, _ := startPipeWorker(t, m, "wedged", 1, peerSide, mgrSide)
	s := m.shardFor("wedged")

	// Each frame carries a 4 KiB script so the queue, the pending
	// buffer (maxPending), and the wedged in-flight write together
	// absorb far less than the flood.
	pad := strings.Repeat("#", 4096)
	total := 2*sendQueueSize(1) + 512
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := p; k < total; k += 8 {
				w.enqueue(outMsg{t: proto.MsgRunTask, v: &core.TaskSpec{ID: int64(k), Script: pad}})
			}
		}(p)
	}
	wg.Wait()

	if got := m.Stats().SendQueueDrops; got < 1 {
		t.Fatalf("SendQueueDrops = %d after flooding a wedged peer, want >= 1", got)
	}
	// The overflow path closed the connection; the reader loop must
	// notice and deregister the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		_, there := s.workers["wedged"]
		s.mu.Unlock()
		if !there {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged worker still registered after overflow drop")
		}
		time.Sleep(time.Millisecond)
	}
}
