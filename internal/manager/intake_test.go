package manager

// Tests for the lock-free MPSC submit intake: the Treiber-stack
// hand-off between submitters and a shard's wake loop must lose
// nothing, preserve per-producer submission order, and behave exactly
// like the mutex-guarded queue it replaced. Run with -race (make
// check does) — the interleavings are the point.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// intakeItem identifies one pushed spec for the cross-check: producer
// p's k-th submission.
type intakeItem struct{ p, k int }

// mutexIntake is the reference implementation the lock-free intake is
// cross-checked against: the pre-PR mutex-guarded append. Its
// guarantee — every item appears exactly once, and one producer's
// items drain in the order that producer pushed them — is the
// contract drainIntakeLocked must preserve.
type mutexIntake struct {
	mu sync.Mutex
	q  []intakeItem
}

func (m *mutexIntake) push(it intakeItem) {
	m.mu.Lock()
	m.q = append(m.q, it)
	m.mu.Unlock()
}

func (m *mutexIntake) drain() []intakeItem {
	m.mu.Lock()
	out := m.q
	m.q = nil
	m.mu.Unlock()
	return out
}

// runIntakeWorkload pushes producers×perProducer items through push
// while a concurrent drainer calls drain until everything arrived,
// returning the drained items in drain order.
func runIntakeWorkload(t *testing.T, producers, perProducer int, push func(intakeItem), drain func() []intakeItem) []intakeItem {
	t.Helper()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				push(intakeItem{p: p, k: k})
			}
		}(p)
	}
	var got []intakeItem
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for len(got) < producers*perProducer {
			got = append(got, drain()...)
			if time.Now().After(deadline) {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if len(got) != producers*perProducer {
		t.Fatalf("drained %d of %d items", len(got), producers*perProducer)
	}
	return got
}

// perProducerOrder projects the drain order onto one producer's items.
func perProducerOrder(items []intakeItem, producers int) [][]int {
	seqs := make([][]int, producers)
	for _, it := range items {
		seqs[it.p] = append(seqs[it.p], it.k)
	}
	return seqs
}

// TestIntakeConcurrentSubmitDrain floods one shard's intake stack from
// many producers while a concurrent consumer drains it, and
// cross-checks the result against the mutex reference: same item
// multiset, same per-producer FIFO order.
func TestIntakeConcurrentSubmitDrain(t *testing.T) {
	const producers, perProducer = 8, 500

	// Lock-free intake under test, on a bare shard (drainIntakeLocked
	// touches only queue state).
	s := &shard{pendingInvs: map[string][]pendingInv{}}
	push := func(it intakeItem) {
		n := intakeNodePool.Get().(*intakeNode)
		n.isTask = false
		n.inv = pendingInv{inv: &core.InvocationSpec{
			ID:      int64(it.p*perProducer + it.k),
			Library: fmt.Sprintf("lib%d", it.p),
		}}
		s.pushIntake(n)
	}
	drain := func() []intakeItem {
		s.mu.Lock()
		s.drainIntakeLocked()
		var out []intakeItem
		for p := 0; p < producers; p++ {
			lib := fmt.Sprintf("lib%d", p)
			for _, pi := range s.pendingInvs[lib] {
				id := int(pi.inv.ID)
				out = append(out, intakeItem{p: id / perProducer, k: id % perProducer})
			}
			delete(s.pendingInvs, lib)
		}
		s.pendingInvCount = 0
		s.mu.Unlock()
		return out
	}
	got := runIntakeWorkload(t, producers, perProducer, push, drain)

	// Reference run: same workload through the mutex version.
	ref := &mutexIntake{}
	want := runIntakeWorkload(t, producers, perProducer, ref.push, ref.drain)

	gotSeqs := perProducerOrder(got, producers)
	wantSeqs := perProducerOrder(want, producers)
	for p := 0; p < producers; p++ {
		if len(gotSeqs[p]) != perProducer || len(wantSeqs[p]) != perProducer {
			t.Fatalf("producer %d: drained %d items lock-free, %d mutex (want %d)", p, len(gotSeqs[p]), len(wantSeqs[p]), perProducer)
		}
		for k := 0; k < perProducer; k++ {
			if gotSeqs[p][k] != k {
				t.Fatalf("producer %d: lock-free intake reordered item %d to position %d", p, gotSeqs[p][k], k)
			}
			if wantSeqs[p][k] != k {
				t.Fatalf("producer %d: mutex reference reordered item %d to position %d", p, wantSeqs[p][k], k)
			}
		}
	}
}

// TestIntakeMixedTasksAndInvocations drains a racing mix of tasks and
// invocations and checks both kinds land in their queues in
// per-producer order.
func TestIntakeMixedTasksAndInvocations(t *testing.T) {
	const producers, perProducer = 4, 300
	s := &shard{pendingInvs: map[string][]pendingInv{}}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				n := intakeNodePool.Get().(*intakeNode)
				if k%2 == 0 {
					n.isTask = true
					n.task = pendingTask{t: &core.TaskSpec{ID: int64(p*perProducer + k)}}
				} else {
					n.isTask = false
					n.inv = pendingInv{inv: &core.InvocationSpec{ID: int64(p*perProducer + k), Library: "lib"}}
				}
				s.pushIntake(n)
			}
		}(p)
	}
	wg.Wait()
	s.mu.Lock()
	s.drainIntakeLocked()
	tasks, invs := s.pendingTasks, s.pendingInvs["lib"]
	if !s.dirtyTasks || !s.dirtyLibs["lib"] {
		t.Fatal("drain did not mark the drained queues dirty")
	}
	s.mu.Unlock()
	if len(tasks)+len(invs) != producers*perProducer {
		t.Fatalf("drained %d tasks + %d invs, want %d total", len(tasks), len(invs), producers*perProducer)
	}
	lastK := map[int]int{}
	for _, pt := range tasks {
		p, k := int(pt.t.ID)/perProducer, int(pt.t.ID)%perProducer
		if prev, ok := lastK[p]; ok && k <= prev {
			t.Fatalf("producer %d: task %d drained after item %d", p, k, prev)
		}
		lastK[p] = k
	}
	lastK = map[int]int{}
	for _, pi := range invs {
		p, k := int(pi.inv.ID)/perProducer, int(pi.inv.ID)%perProducer
		if prev, ok := lastK[p]; ok && k <= prev {
			t.Fatalf("producer %d: invocation %d drained after item %d", p, k, prev)
		}
		lastK[p] = k
	}
}

// TestIntakeNoLostWakeup hammers SubmitInvocation from many goroutines
// against a live (workerless) manager: every submission must come back
// as a validation failure even when its wake raced a running loop's
// exit. A lost wakeup strands invocations in the intake stack and
// times this test out.
func TestIntakeNoLostWakeup(t *testing.T) {
	m := NewDefault()
	defer m.Shutdown()
	const producers, perProducer = 8, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				m.SubmitInvocation(&core.InvocationSpec{Library: "no-such-library"})
			}
		}()
	}
	wg.Wait()
	res, err := m.Collect(producers*perProducer, 30*time.Second)
	if err != nil {
		t.Fatalf("collect: %v (got %d results)", err, len(res))
	}
	for _, r := range res {
		if r.Ok {
			t.Fatalf("invocation %d of an unknown library reported success", r.ID)
		}
	}
}
