package manager

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/policy"
)

// The submission plane (DESIGN.md §14) sits in front of the sharded
// dispatch plane: when Options.Tenants is set, every spec carrying a
// TenantID passes admission control, waits in its tenant's bounded
// plane queue, and is released to a shard's lock-free intake in
// weighted fair-share order. Every decision — the admit verdict and
// each drain pick — is a pure internal/policy call recorded in the
// plane's own trace, so the simulator mirrors the plane exactly and
// the differential harness diffs both engines line for line.
//
// Locking: the plane mutex is a leaf. Under it the plane only does
// tenant accounting and lock-free intake pushes (shard.pushIntake) —
// never a shard lock, never a wake. Shard wakes happen after the
// plane mutex is released; on paths that already hold a shard lock
// (emitFailure inside a schedule pass, crash-requeue exhaustion,
// library quarantine) the wakes are parked and flushed by pump() from
// the next wake-loop exit, which runs with no locks held.
type submitPlane struct {
	m *Manager
	// rec records admit verdicts and drain picks. The plane always
	// gets its own recorder (never a shard's): admissions serialize on
	// the plane mutex while placements serialize on shard locks, so
	// sharing one recorder would race under concurrent use.
	rec *policy.Recorder

	mu     sync.Mutex
	queues []*tenantQueue
	// states aliases each queue's TenantState in tenant-index order —
	// the slice the pure policy calls take.
	states []*policy.TenantState
	byName map[string]int
	// pendingWakes parks shard wake requests from drains performed
	// while the caller held a shard lock; deferredWakes makes the
	// empty check one atomic load for pump().
	pendingWakes  []bool
	deferredWakes atomic.Bool
}

// tenantQueue is one tenant's plane state: accounting for the pure
// policy calls plus the FIFO of admitted-but-unreleased specs.
type tenantQueue struct {
	state policy.TenantState
	q     []planeItem
	head  int
	// drained is the tenant's invocation routing cursor
	// (shardplane.Router.RouteSpecTenant): advancing per drained
	// invocation spreads each tenant's burst over all live shards
	// independent of global ID interleaving.
	drained int64
	// Cumulative per-tenant breakdown (TenantStats): every submission
	// entering admission control, the shed/throttled verdicts among
	// them, and the final results delivered (quota units returned).
	// Guarded by the plane mutex like the rest of the queue.
	submits   int64
	shed      int64
	throttled int64
	done      int64
}

type planeItem struct {
	isTask bool
	task   pendingTask
	inv    pendingInv
}

// newSubmitPlane builds the plane over the normalized tenant registry.
func newSubmitPlane(m *Manager, specs []core.TenantSpec, traced bool) *submitPlane {
	norm := core.NormalizeTenants(specs, policy.MaxTenantWeight)
	p := &submitPlane{
		m:            m,
		byName:       make(map[string]int, len(norm)),
		pendingWakes: make([]bool, m.opts.Shards),
	}
	if traced {
		p.rec = &policy.Recorder{}
	}
	for i, ts := range norm {
		tq := &tenantQueue{state: policy.TenantState{Spec: ts}}
		p.queues = append(p.queues, tq)
		p.states = append(p.states, &tq.state)
		p.byName[ts.Name] = i
	}
	return p
}

// submit runs one spec through admission control. It reports whether
// the plane consumed the spec: false means the tenant is unregistered
// and the caller should route directly (unknown tenants degrade to
// the single-tenant path rather than failing). On shed the spec's
// failed result has already been delivered.
func (p *submitPlane) submit(tenant string, it planeItem, id int64) bool {
	m := p.m
	p.mu.Lock()
	ti, known := p.byName[tenant]
	if !known {
		p.mu.Unlock()
		return false
	}
	tq := p.queues[ti]
	tq.submits++
	d := policy.AdmitSubmit(&tq.state)
	p.rec.Record(policy.TraceAdmit(tenant, d))
	if d.Verdict == policy.AdmitShed {
		tq.shed++
		atomic.AddInt64(&m.stats.SubmitsShed, 1)
		atomic.AddInt64(&m.stats.Failures, 1)
		p.mu.Unlock()
		m.deliver(core.Result{ID: id, Ok: false,
			Err: fmt.Sprintf("manager: submission shed (%s): tenant %q has %d queued", d.Reason, tenant, tq.state.Spec.MaxQueue)})
		return true
	}
	if d.Verdict == policy.AdmitThrottle {
		tq.throttled++
		atomic.AddInt64(&m.stats.SubmitsThrottled, 1)
	}
	policy.NoteQueued(p.states, &tq.state)
	tq.q = append(tq.q, it)
	wakes := p.drainLocked()
	p.mu.Unlock()
	p.wakeShards(wakes)
	return true
}

// release returns one unit of a tenant's in-flight capacity — called
// on every final result delivery for a plane-admitted spec, success
// or failure — and drains any work the freed quota unblocks. Callers
// holding a shard lock pass wakeNow=false: the drain still happens
// (intake pushes are lock-free) but the wakes park until pump().
func (p *submitPlane) release(tenant string, wakeNow bool) {
	if tenant == "" {
		return
	}
	p.mu.Lock()
	ti, known := p.byName[tenant]
	if !known {
		p.mu.Unlock()
		return
	}
	tq := p.queues[ti]
	tq.done++
	if tq.state.InFlight > 0 {
		tq.state.InFlight--
	}
	wakes := p.drainLocked()
	if !wakeNow && len(wakes) > 0 {
		for _, idx := range wakes {
			p.pendingWakes[idx] = true
		}
		p.deferredWakes.Store(true)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.wakeShards(wakes)
}

// drainLocked releases queued specs in fair-share order until no
// tenant is eligible: the pure batch plan picks the order, the plane
// pops each picked tenant's queue head and pushes it onto the target
// shard's intake stack. Returns the shard indexes needing a wake, in
// first-touched order. Caller holds p.mu.
func (p *submitPlane) drainLocked() []int {
	picks := policy.PlanSubmitBatch(p.states, 0, p.rec)
	if len(picks) == 0 {
		return nil
	}
	m := p.m
	var wakes []int
	touched := make([]bool, len(m.shards))
	for _, ti := range picks {
		tq := p.queues[ti]
		it := tq.q[tq.head]
		tq.q[tq.head] = planeItem{} // drop spec pointers
		tq.head++
		if tq.head == len(tq.q) {
			tq.q, tq.head = tq.q[:0], 0
		}
		var idx int
		n := intakeNodePool.Get().(*intakeNode)
		if it.isTask {
			var ok bool
			if idx, ok = m.router.Owner(it.task.key); !ok {
				idx = m.router.Park(it.task.key)
			}
			n.isTask, n.task = true, it.task
		} else {
			var ok bool
			if idx, ok = m.router.RouteSpecTenant(tq.state.Spec.Name, tq.drained); !ok {
				idx = m.router.Park(it.inv.inv.Library)
			}
			tq.drained++
			n.isTask, n.inv = false, it.inv
		}
		m.shards[idx].pushIntake(n)
		if !touched[idx] {
			touched[idx] = true
			wakes = append(wakes, idx)
		}
	}
	atomic.AddInt64(&m.stats.FairDrains, int64(len(picks)))
	return wakes
}

// wakeShards wakes the drained-to shards. Must be called with no
// locks held: wake may run a schedule pass inline.
func (p *submitPlane) wakeShards(wakes []int) {
	for _, idx := range wakes {
		p.m.shards[idx].wake()
	}
}

// pump flushes wakes parked by shard-lock-holding release paths. The
// wake-loop exit calls it with no locks held, so a quota release
// performed inside a schedule pass still wakes the shards its drain
// fed — without ever waking under a lock.
func (p *submitPlane) pump() {
	if !p.deferredWakes.Load() {
		return
	}
	p.mu.Lock()
	p.deferredWakes.Store(false)
	var wakes []int
	for idx, w := range p.pendingWakes {
		if w {
			p.pendingWakes[idx] = false
			wakes = append(wakes, idx)
		}
	}
	p.mu.Unlock()
	p.wakeShards(wakes)
}

// specTenant names the tenant of a resolved in-flight spec — empty
// for single-tenant work, so release() is a no-op there.
func specTenant(e *inflightEntry) string {
	if e.task != nil {
		return e.task.TenantID
	}
	if e.inv != nil {
		return e.inv.TenantID
	}
	return ""
}

// TenantStat is one tenant's submission-plane breakdown: cumulative
// admission outcomes plus a point-in-time view of its queue depth and
// quota occupancy.
type TenantStat struct {
	Name      string
	Weight    int
	Submits   int64 // submissions entering admission control
	Shed      int64 // rejected outright (queue bound hit)
	Throttled int64 // accepted with a backpressure verdict
	Done      int64 // final results delivered (quota units returned)
	Queued    int   // waiting in the plane queue right now
	InFlight  int   // released into the engine, not yet resolved
	Quota     int   // configured in-flight+queued bound (0 = unbounded)
	MaxQueue  int   // configured queue bound (0 = unbounded)
}

// TenantStats returns the per-tenant submission-plane breakdown in
// tenant-registry (sorted-name) order. Nil when the plane is off.
func (m *Manager) TenantStats() []TenantStat {
	p := m.plane
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantStat, 0, len(p.queues))
	for _, tq := range p.queues {
		out = append(out, TenantStat{
			Name:      tq.state.Spec.Name,
			Weight:    tq.state.Spec.Weight,
			Submits:   tq.submits,
			Shed:      tq.shed,
			Throttled: tq.throttled,
			Done:      tq.done,
			Queued:    tq.state.Queued,
			InFlight:  tq.state.InFlight,
			Quota:     tq.state.Spec.Quota,
			MaxQueue:  tq.state.Spec.MaxQueue,
		})
	}
	return out
}

// Decisions returns the plane's recorded admission/drain trace.
func (p *submitPlane) Decisions() []string {
	if p == nil || p.rec == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.rec.Decisions...)
}

// checkQuiescence verifies the plane at rest: no tenant has queued
// specs or unreleased in-flight capacity.
func (p *submitPlane) checkQuiescence() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, tq := range p.queues {
		if tq.state.Queued != 0 {
			return fmt.Errorf("manager: tenant %q still has %d specs queued in the submission plane", tq.state.Spec.Name, tq.state.Queued)
		}
		if tq.state.InFlight != 0 {
			return fmt.Errorf("manager: tenant %q still holds %d in-flight quota units", tq.state.Spec.Name, tq.state.InFlight)
		}
	}
	return nil
}
