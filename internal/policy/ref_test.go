package policy

import (
	"reflect"
	"testing"
)

// TestRefOwnershipAndSpill pins the ownership-transfer and
// oldest-first spill order under a tight owned-bytes cap.
func TestRefOwnershipAndSpill(t *testing.T) {
	rec := &Recorder{}
	tab := NewRefTable(100)
	if sp := tab.NoteRefResult("w1", "a", "a.out", 60, rec); sp != nil {
		t.Fatalf("unexpected spills: %v", sp)
	}
	if sp := tab.NoteRefResult("w1", "b", "b.out", 30, rec); sp != nil {
		t.Fatalf("unexpected spills: %v", sp)
	}
	// Third result overflows the cap: the oldest (a) spills.
	sp := tab.NoteRefResult("w1", "c", "c.out", 50, rec)
	if len(sp) != 1 || sp[0].ID != "a" {
		t.Fatalf("want spill of a, got %v", sp)
	}
	if ref := tab.Get("a"); !ref.Spilled || ref.Owner != "" || ref.Holders["w1"] {
		t.Fatalf("spilled ref state wrong: %+v", ref)
	}
	if got := tab.OwnedBytes("w1"); got != 80 {
		t.Fatalf("owned bytes after spill = %d, want 80", got)
	}
	want := []string{
		"own obj=a worker=w1 size=60",
		"own obj=b worker=w1 size=30",
		"own obj=c worker=w1 size=50",
		"spill obj=a worker=w1 tier=shared",
	}
	if !reflect.DeepEqual(rec.Decisions, want) {
		t.Fatalf("trace = %q, want %q", rec.Decisions, want)
	}
}

// TestRefResolveModes walks every resolve mode: peer from the min-ID
// holder with sorted alternates, shared-tier promote on re-use, the
// catalog last resort, and lost.
func TestRefResolveModes(t *testing.T) {
	rec := &Recorder{}
	tab := NewRefTable(0)
	tab.NoteRefResult("w3", "a", "a.out", 10, rec)
	tab.AddRefHolder("w2", "a")
	tab.AddRefHolder("w4", "a")

	d := tab.PlanResolve("w9", "a", false, rec)
	if d.Mode != ResolvePeer || d.Src != "w2" {
		t.Fatalf("want peer from w2, got %+v", d)
	}
	if !reflect.DeepEqual(d.Alts, []string{"w3", "w4"}) {
		t.Fatalf("alts = %v", d.Alts)
	}
	// Same-worker resolve is a no-op ready.
	if d := tab.PlanResolve("w2", "a", false, rec); d.Mode != ResolveReady {
		t.Fatalf("want ready, got %+v", d)
	}
	// Unknown ref: direct when the catalog can restage, lost otherwise.
	if d := tab.PlanResolve("w1", "zzz", true, rec); d.Mode != ResolveDirect {
		t.Fatalf("want direct, got %+v", d)
	}
	if d := tab.PlanResolve("w1", "zzz", false, rec); d.Mode != ResolveLost {
		t.Fatalf("want lost, got %+v", d)
	}

	// Spill a's every replica away, then resolve: shared + promote.
	tab.DropRefHolder("w2", "a")
	tab.DropRefHolder("w4", "a")
	tab.Get("a").Spilled = true
	tab.Get("a").Owner = ""
	tab.DropRefHolder("w3", "a")
	d = tab.PlanResolve("w7", "a", false, rec)
	if d.Mode != ResolveShared || !d.Promote {
		t.Fatalf("want shared promote, got %+v", d)
	}
	if ref := tab.Get("a"); ref.Owner != "w7" || !ref.Holders["w7"] {
		t.Fatalf("promote did not re-home: %+v", ref)
	}
}

// TestRefRehome pins owner-death semantics: re-home to the min-ID
// surviving holder, fall back to the shared tier, or declare lost —
// in ownership (completion) order.
func TestRefRehome(t *testing.T) {
	rec := &Recorder{}
	tab := NewRefTable(0)
	tab.NoteRefResult("w1", "a", "a.out", 10, rec) // will re-home to w5
	tab.NoteRefResult("w1", "b", "b.out", 10, rec) // will be lost
	tab.NoteRefResult("w1", "c", "c.out", 10, rec) // will fall back to shared
	tab.AddRefHolder("w5", "a")
	tab.AddRefHolder("w6", "a")
	tab.Get("c").Spilled = true

	rhs := tab.PlanRehome("w1", rec)
	if len(rhs) != 3 {
		t.Fatalf("want 3 rehomes, got %v", rhs)
	}
	if rhs[0].Owner != "w5" || rhs[1].Lost != true || rhs[2].Shared != true {
		t.Fatalf("rehome fates wrong: %+v", rhs)
	}
	if tab.Get("a").Owner != "w5" {
		t.Fatalf("a owner = %q", tab.Get("a").Owner)
	}
	if got := tab.OwnedBytes("w5"); got != 10 {
		t.Fatalf("new owner charge = %d", got)
	}
	if tab.OwnedBytes("w1") != 0 {
		t.Fatalf("dead owner still charged %d", tab.OwnedBytes("w1"))
	}
	// A second death with nothing tracked is a silent no-op.
	if rhs := tab.PlanRehome("w1", rec); rhs != nil {
		t.Fatalf("unexpected rehomes: %v", rhs)
	}
	tail := rec.Decisions[len(rec.Decisions)-3:]
	want := []string{"rehome obj=a owner=w5", "rehome obj=b lost", "rehome obj=c tier=shared"}
	if !reflect.DeepEqual(tail, want) {
		t.Fatalf("trace tail = %q, want %q", tail, want)
	}
}
