package policy

import (
	"repro/internal/core"
)

// Batched decision entry points (DESIGN.md §12): one call plans K
// placements instead of one, so a driver's lock acquisition and pass
// setup amortize over the whole batch. The contract is strict
// sequential equivalence — PlanTaskBatch and PlaceReadyBatch return
// exactly the decision sequence the unbatched calls would produce if
// the driver executed each placement before planning the next.
//
// Internally each planned placement's view effects (resource
// commitment, in-flight copies, source transfer slots, manager sends,
// free ready slots) are applied to the live view while the rest of the
// batch is planned, then undone in reverse before returning. The view
// is observably unchanged; the driver executes the returned placements
// in order, re-applying the same effects for real, and lands on the
// identical end state.

// TaskReq is one task placement request in a batch.
type TaskReq struct {
	Key    string
	Res    core.Resources
	Inputs []core.FileSpec
	// Avoid is the avoid-placement preference: planning first excludes
	// this worker, then falls back to anywhere (the avoided worker
	// beats starving) — the same two-stage rule both engines' unbatched
	// paths apply.
	Avoid string
	// Tenant names the submitting tenant (empty for single-tenant
	// work). Placement itself is tenant-neutral — fairness is enforced
	// at the submission plane (tenant.go), not by skewing worker choice
	// — but the identity rides the request so tenant-aware placement
	// policies can read it without another plumbing pass.
	Tenant string
}

// PlanTaskBatch plans a placement for every request, in order. The
// result is index-aligned with reqs: a zero Worker with Blocked set
// means "wait for those objects", a zero Worker with no Blocked means
// no candidate fits now — exactly PlanTask's contract. The view is
// unchanged on return.
//
//vinelint:ignore mirrorparity convenience wrapper over PlanTaskBatchInto; the manager takes the scratch-slice variant and batched_test proves both emit identical decisions
func (v *ClusterView) PlanTaskBatch(reqs []TaskReq, f Filter) []PlaceTask {
	return v.PlanTaskBatchInto(nil, reqs, f)
}

// PlanTaskBatchInto is PlanTaskBatch appending into dst (which may be
// nil or a recycled scratch slice truncated to zero). Drivers that
// plan every wake pass keep one scratch per shard so a pass allocates
// no decision slice; the returned slice is valid until the caller
// reuses dst.
func (v *ClusterView) PlanTaskBatchInto(dst []PlaceTask, reqs []TaskReq, f Filter) []PlaceTask {
	undo := v.undoScratch[:0]
	for _, r := range reqs {
		d := v.PlanTask(r.Key, r.Res, r.Inputs, andFilters(Excluding(r.Avoid), f))
		if d.Worker == nil && r.Avoid != "" {
			d = v.PlanTask(r.Key, r.Res, r.Inputs, f)
		}
		dst = append(dst, d)
		if d.Worker != nil {
			undo = v.applyPlacement(undo, d.Worker, r.Res, d.Stages)
		}
	}
	v.revert(undo)
	v.undoScratch = undo[:0]
	return dst
}

// PlaceReadyBatch picks ready instances for up to k invocations of
// lib, in order, stopping at the first "no ready capacity" — the
// skip-and-stop rule of a library queue pass (every queued invocation
// of one library faces the same cluster state). The view is unchanged
// on return.
//
//vinelint:ignore mirrorparity convenience wrapper over PlaceReadyBatchInto; the manager takes the scratch-slice variant and batched_test proves both emit identical decisions
func (v *ClusterView) PlaceReadyBatch(lib string, k int, f Filter) []PlaceInvocation {
	return v.PlaceReadyBatchInto(make([]PlaceInvocation, 0, k), lib, k, f)
}

// PlaceReadyBatchInto is PlaceReadyBatch appending into dst (which may
// be nil or a recycled scratch slice truncated to zero). The returned
// slice is valid until the caller reuses dst.
func (v *ClusterView) PlaceReadyBatchInto(dst []PlaceInvocation, lib string, k int, f Filter) []PlaceInvocation {
	undo := v.undoScratch[:0]
	for i := 0; i < k; i++ {
		d := v.PlaceReady(lib, f)
		if d.Worker == nil {
			break
		}
		// The overlay only decrements the candidate's free ready count:
		// PlaceReady skips entries at zero, so stale ReadyFree index
		// membership cannot change its choice.
		d.Lib.FreeReady--
		undo = append(undo, undoOp{freeReady: d.Lib})
		dst = append(dst, d)
	}
	v.revert(undo)
	v.undoScratch = undo[:0]
	return dst
}

// undoOp records one reversible overlay effect. Exactly one field is
// set.
type undoOp struct {
	commit    *WorkerView // undo: Commit.Sub(res)
	res       core.Resources
	pending   *WorkerView // undo: ClearPending(pending, obj)
	obj       string
	transfers *WorkerView  // undo: TransfersOut--
	mgrSend   bool         // undo: ManagerSends--
	freeReady *LibraryView // undo: FreeReady++
}

// applyPlacement applies one planned task placement's view effects —
// the commitment and staging bookkeeping the executing driver will
// perform — appending their inverses to undo.
func (v *ClusterView) applyPlacement(undo []undoOp, w *WorkerView, res core.Resources, stages []StageFile) []undoOp {
	w.Commit = w.Commit.Add(res)
	undo = append(undo, undoOp{commit: w, res: res})
	for _, sf := range stages {
		switch sf.Mode {
		case StagePeer:
			// PlanStage only stages objects the destination neither holds
			// nor awaits, so NotePending always inserts and ClearPending
			// is its exact inverse.
			v.NotePending(sf.Dst, sf.Object)
			undo = append(undo, undoOp{pending: sf.Dst, obj: sf.Object})
			sf.Src.TransfersOut++
			undo = append(undo, undoOp{transfers: sf.Src})
		case StageDirect:
			v.NotePending(sf.Dst, sf.Object)
			undo = append(undo, undoOp{pending: sf.Dst, obj: sf.Object})
			v.ManagerSends++
			undo = append(undo, undoOp{mgrSend: true})
		case StageRef:
			// Ref resolution is planned by the global RefTable at
			// execution time and consumes no view-tracked transfer slots,
			// but the pending mark still overlays: without it a later task
			// in the same batch re-stages the same ref to the same dst
			// (PlanStage's ready-check sees neither file nor pending) and
			// the driver issues a duplicate resolve and fetch. Ref inputs
			// bypass the PendingCopies wait rule (PlanStage returns before
			// it), so only the destination's own HasFile check reads this.
			v.NotePending(sf.Dst, sf.Object)
			undo = append(undo, undoOp{pending: sf.Dst, obj: sf.Object})
		}
	}
	return undo
}

// revert undoes overlay effects in reverse application order, leaving
// the view bit-identical to its pre-batch state.
func (v *ClusterView) revert(undo []undoOp) {
	for i := len(undo) - 1; i >= 0; i-- {
		op := undo[i]
		switch {
		case op.commit != nil:
			op.commit.Commit = op.commit.Commit.Sub(op.res)
		case op.pending != nil:
			v.ClearPending(op.pending, op.obj)
		case op.transfers != nil:
			op.transfers.TransfersOut--
		case op.mgrSend:
			v.ManagerSends--
		case op.freeReady != nil:
			op.freeReady.FreeReady++
		}
	}
}

// andFilters conjoins two optional view filters.
func andFilters(a, b Filter) Filter {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(w *WorkerView) bool { return a(w) && b(w) }
}
