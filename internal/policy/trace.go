package policy

import (
	"fmt"
	"strings"
)

// Recorder collects the canonical decision trace of an engine run. The
// differential harness replays one event trace through both engines
// and diffs their recorders line for line; the golden tests pin the
// seed workloads' traces. A nil *Recorder is valid and records
// nothing, so drivers can leave tracing off on hot paths.
type Recorder struct {
	// Max bounds the retained trace; 0 means unbounded. Decisions past
	// Max are counted in Dropped instead of stored.
	Max       int
	Decisions []string
	Dropped   int
}

// Record appends one decision line.
func (r *Recorder) Record(line string) {
	if r == nil {
		return
	}
	if r.Max > 0 && len(r.Decisions) >= r.Max {
		r.Dropped++
		return
	}
	r.Decisions = append(r.Decisions, line)
}

// Dump renders the trace one decision per line.
func (r *Recorder) Dump() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, d := range r.Decisions {
		b.WriteString(d)
		b.WriteByte('\n')
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "... %d more decisions dropped\n", r.Dropped)
	}
	return b.String()
}

// The Trace helpers below are the single source of the decision-string
// format. Both drivers must record through them so the differential
// diff compares semantics, not formatting.

// TraceTask renders a stateless-task placement.
func TraceTask(key string, d PlaceTask) string {
	return fmt.Sprintf("task key=%s worker=%s stages=%d", key, d.Worker.ID, len(d.Stages))
}

// TracePlace renders a ready-instance invocation placement. It
// deliberately omits the free-slot count: the engines agree on which
// worker runs the invocation, not on when earlier invocations on that
// worker finished.
func TracePlace(lib string, d PlaceInvocation) string {
	return fmt.Sprintf("place lib=%s worker=%s", lib, d.Worker.ID)
}

// TraceDeploy renders a library deploy, including the eviction plan.
func TraceDeploy(name string, d DeployLibrary) string {
	evict := make([]string, len(d.Evict))
	for i, e := range d.Evict {
		evict[i] = e.Lib
	}
	return fmt.Sprintf("deploy lib=%s worker=%s stages=%d evict=[%s]",
		name, d.Worker.ID, len(d.Stages), strings.Join(evict, ","))
}

// TraceAdmit renders one admission-control verdict.
func TraceAdmit(tenant string, d AdmitDecision) string {
	return fmt.Sprintf("admit tenant=%s verdict=%s reason=%s", tenant, d.Verdict, d.Reason)
}

// TraceNextTenant renders one fair-share drain pick: the tenant's
// virtual time and queue depth at pick time, before the pick's own
// dequeue and charge are applied.
func TraceNextTenant(tenant string, vtime int64, queued int) string {
	return fmt.Sprintf("tenant pick=%s v=%d queued=%d", tenant, vtime, queued)
}

// TraceOwn renders the ownership transfer of a ref result: the
// producing worker becomes holder of record.
func TraceOwn(id, worker string, size int64) string {
	return fmt.Sprintf("own obj=%s worker=%s size=%d", id, worker, size)
}

// TraceSpill renders one owned object's demotion to the shared tier.
func TraceSpill(sp RefSpill) string {
	return fmt.Sprintf("spill obj=%s worker=%s tier=shared", sp.ID, sp.Worker)
}

// TraceResolve renders a consumer's ref resolution.
func TraceResolve(id, dst string, d ResolveDecision) string {
	switch d.Mode {
	case ResolvePeer:
		return fmt.Sprintf("resolve obj=%s dst=%s mode=peer src=%s", id, dst, d.Src)
	case ResolveShared:
		return fmt.Sprintf("resolve obj=%s dst=%s mode=shared", id, dst)
	case ResolveDirect:
		return fmt.Sprintf("resolve obj=%s dst=%s mode=direct", id, dst)
	case ResolveLost:
		return fmt.Sprintf("resolve obj=%s dst=%s mode=lost", id, dst)
	default:
		return fmt.Sprintf("resolve obj=%s dst=%s mode=ready", id, dst)
	}
}

// TracePromote renders a shared-tier object's promotion back to the
// cache tier on re-use.
func TracePromote(id, worker string) string {
	return fmt.Sprintf("promote obj=%s worker=%s", id, worker)
}

// TraceRehome renders one ref's fate after its owner died.
func TraceRehome(rh Rehome) string {
	switch {
	case rh.Owner != "":
		return fmt.Sprintf("rehome obj=%s owner=%s", rh.ID, rh.Owner)
	case rh.Shared:
		return fmt.Sprintf("rehome obj=%s tier=shared", rh.ID)
	default:
		return fmt.Sprintf("rehome obj=%s lost", rh.ID)
	}
}

// TraceStage renders the execution of one staging decision.
func TraceStage(sf StageFile) string {
	switch sf.Mode {
	case StagePeer:
		return fmt.Sprintf("stage obj=%s dst=%s mode=peer src=%s", sf.Object, sf.Dst.ID, sf.Src.ID)
	case StageRef:
		return fmt.Sprintf("stage obj=%s dst=%s mode=ref", sf.Object, sf.Dst.ID)
	default:
		return fmt.Sprintf("stage obj=%s dst=%s mode=direct", sf.Object, sf.Dst.ID)
	}
}
