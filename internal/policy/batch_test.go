package policy

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// buildTaskView constructs one of two identical views for the
// batched-vs-sequential equivalence tests.
func buildTaskView(n int) (*ClusterView, []*WorkerView) {
	v := NewClusterView(Options{PeerTransfers: true, PeerTransferCap: 2, ManagerSourceCap: 1})
	ws := make([]*WorkerView, n)
	for i := 0; i < n; i++ {
		ws[i] = v.AddWorker(fmt.Sprintf("w%04d", i), "", core.Resources{Cores: 2, MemoryMB: 1 << 12, DiskMB: 1 << 12})
	}
	return v, ws
}

// applyTaskDecision mirrors what an executing driver does to the view
// for one placed task: commit resources and account each stage.
func applyTaskDecision(v *ClusterView, d PlaceTask, res core.Resources) {
	d.Worker.Commit = d.Worker.Commit.Add(res)
	for _, sf := range d.Stages {
		switch sf.Mode {
		case StagePeer:
			v.NotePending(sf.Dst, sf.Object)
			sf.Src.TransfersOut++
		case StageDirect:
			v.NotePending(sf.Dst, sf.Object)
			v.ManagerSends++
		}
	}
}

func describeTask(d PlaceTask) string {
	if d.Worker == nil {
		return fmt.Sprintf("blocked=%v", d.Blocked)
	}
	s := "worker=" + d.Worker.ID
	for _, sf := range d.Stages {
		s += fmt.Sprintf(" stage{obj=%s mode=%d", sf.Object, sf.Mode)
		if sf.Src != nil {
			s += " src=" + sf.Src.ID
		}
		s += "}"
	}
	return s
}

// TestPlanTaskBatchMatchesSequential drives the same request list
// through PlanTaskBatch and through the unbatched plan-execute-plan
// loop on an identical view, and requires decision-for-decision
// equality plus identical end states.
func TestPlanTaskBatchMatchesSequential(t *testing.T) {
	const workers, tasks = 5, 24
	res := core.Resources{Cores: 1}
	env := fileSpec("env", 1<<20)

	batchView, _ := buildTaskView(workers)
	seqView, _ := buildTaskView(workers)

	reqs := make([]TaskReq, tasks)
	for i := range reqs {
		avoid := ""
		if i%5 == 3 {
			avoid = fmt.Sprintf("w%04d", i%workers)
		}
		reqs[i] = TaskReq{
			Key:    fmt.Sprintf("task-%d", i+1),
			Res:    res,
			Inputs: []core.FileSpec{env},
			Avoid:  avoid,
		}
	}

	// Sequential baseline: plan one, execute one.
	seq := make([]PlaceTask, len(reqs))
	for i, r := range reqs {
		d := seqView.PlanTask(r.Key, r.Res, r.Inputs, Excluding(r.Avoid))
		if d.Worker == nil && r.Avoid != "" {
			d = seqView.PlanTask(r.Key, r.Res, r.Inputs, nil)
		}
		seq[i] = d
		if d.Worker != nil {
			applyTaskDecision(seqView, d, r.Res)
		}
	}

	pendingBefore := len(batchView.PendingCopies)
	sendsBefore := batchView.ManagerSends
	got := batchView.PlanTaskBatch(reqs, nil)

	// The view must be observably unchanged before the driver executes.
	if len(batchView.PendingCopies) != pendingBefore || batchView.ManagerSends != sendsBefore {
		t.Fatalf("PlanTaskBatch mutated the view: pending %d→%d, sends %d→%d",
			pendingBefore, len(batchView.PendingCopies), sendsBefore, batchView.ManagerSends)
	}
	for id, w := range batchView.Workers {
		if w.Commit != (core.Resources{}) || w.TransfersOut != 0 {
			t.Fatalf("PlanTaskBatch left residue on %s: commit=%+v transfers=%d", id, w.Commit, w.TransfersOut)
		}
	}

	if len(got) != len(seq) {
		t.Fatalf("batch returned %d decisions, want %d", len(got), len(seq))
	}
	for i := range seq {
		gd, sd := describeTask(got[i]), describeTask(seq[i])
		if gd != sd {
			t.Fatalf("decision %d diverges:\n  batch: %s\n  seq:   %s", i, gd, sd)
		}
		if got[i].Worker != nil {
			applyTaskDecision(batchView, got[i], reqs[i].Res)
		}
	}

	// End states agree.
	if batchView.ManagerSends != seqView.ManagerSends || len(batchView.PendingCopies) != len(seqView.PendingCopies) {
		t.Fatalf("end state diverges: sends %d vs %d, pending %d vs %d",
			batchView.ManagerSends, seqView.ManagerSends, len(batchView.PendingCopies), len(seqView.PendingCopies))
	}
	for id, bw := range batchView.Workers {
		sw := seqView.Workers[id]
		if bw.Commit != sw.Commit || bw.TransfersOut != sw.TransfersOut || len(bw.Pending) != len(sw.Pending) {
			t.Fatalf("worker %s end state diverges: commit %+v vs %+v, transfers %d vs %d",
				id, bw.Commit, sw.Commit, bw.TransfersOut, sw.TransfersOut)
		}
	}
}

// TestPlaceReadyBatchMatchesSequential checks the ready-instance batch
// against the unbatched place-then-decrement loop.
func TestPlaceReadyBatchMatchesSequential(t *testing.T) {
	build := func() (*ClusterView, []*WorkerView, []*LibraryView) {
		v, ws := newView(t, Options{}, 4)
		lvs := make([]*LibraryView, len(ws))
		frees := []int{1, 3, 3, 2}
		for i, w := range ws {
			lvs[i] = addReadyLib(v, w, "lib", 4, 4-frees[i])
		}
		return v, ws, lvs
	}

	batchView, _, _ := build()
	seqView, seqWs, seqLvs := build()

	const k = 12 // more than the 9 free slots: the batch must stop at capacity
	got := batchView.PlaceReadyBatch("lib", k, nil)

	// View unchanged before execution.
	for i, w := range seqWs {
		_ = w
		if batchView.Workers[seqWs[i].ID].Libs["lib"].FreeReady != seqLvs[i].FreeReady {
			t.Fatalf("PlaceReadyBatch mutated FreeReady on %s", seqWs[i].ID)
		}
	}

	var seq []PlaceInvocation
	for i := 0; i < k; i++ {
		d := seqView.PlaceReady("lib", nil)
		if d.Worker == nil {
			break
		}
		seq = append(seq, d)
		d.Lib.SlotsUsed++
		seqView.SetFreeReady(d.Worker, d.Lib, d.Lib.Slots-d.Lib.SlotsUsed)
	}

	if len(got) != len(seq) {
		t.Fatalf("batch placed %d, sequential placed %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i].Worker.ID != seq[i].Worker.ID {
			t.Fatalf("placement %d diverges: batch %s, sequential %s", i, got[i].Worker.ID, seq[i].Worker.ID)
		}
	}
	if len(got) != 9 {
		t.Fatalf("placed %d invocations, want all 9 free slots", len(got))
	}
}

// TestPlaceReadyBatchRespectsFilter pins that the filter applies to
// every element of the batch.
func TestPlaceReadyBatchRespectsFilter(t *testing.T) {
	v, ws := newView(t, Options{}, 2)
	addReadyLib(v, ws[0], "lib", 2, 0)
	addReadyLib(v, ws[1], "lib", 2, 0)
	got := v.PlaceReadyBatch("lib", 4, Excluding(ws[0].ID))
	if len(got) != 2 {
		t.Fatalf("placed %d, want 2 (only the admitted worker's slots)", len(got))
	}
	for _, d := range got {
		if d.Worker.ID != ws[1].ID {
			t.Fatalf("filter violated: placed on %s", d.Worker.ID)
		}
	}
}
