package policy

// RetryJitter perturbs a retry-backoff delay d (in nanoseconds) by a
// bounded offset derived deterministically from the spec ID and the
// attempt number, returning a value in [3d/4, 5d/4). Without jitter, a
// mass failure — a worker death requeueing dozens of specs, a library
// whose whole queue fails retryably — doubles every spec's delay in
// lockstep and sends the entire cohort back at the same instant, a
// synchronized retry storm on every subsequent round. Deriving the
// offset from (specID, attempt) instead of a random source keeps the
// function pure and replayable: the same spec's schedule is identical
// across runs, and fidelity traces stay stable.
//
// The delay is in plain nanoseconds because this package may not
// import time (policypurity).
func RetryJitter(d int64, specID int64, attempt int) int64 {
	span := d / 2
	if span <= 0 {
		return d
	}
	// splitmix64-style finalizer over the (specID, attempt) pair: cheap,
	// stateless, and well spread even for sequential IDs.
	h := uint64(specID)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 27
	return d - span/2 + int64(h%uint64(span))
}
