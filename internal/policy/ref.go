package policy

import (
	"repro/internal/core"
)

// Proxy-object (pass-by-reference) decisions. A task completing with
// ResultByRef leaves its result bytes on the producing worker and
// returns only a core.ObjectRef; the RefTable below is the pure,
// deterministic catalog of those objects — who owns each one, which
// workers hold cache replicas, and which tier the authoritative copy
// lives in — plus the decision functions the drivers consult:
//
//   - NoteRefResult: ownership transfer on completion. The producer
//     becomes owner/holder of record; if the owner's owned-bytes
//     budget overflows, the oldest owned objects spill to the shared
//     tier (PlanSpill folded in).
//   - PlanResolve: which source a consumer pulls a ref from — a live
//     holder picked exactly like PickSource (minimum worker ID), the
//     shared tier when the object was spilled (with a promote: the
//     consumer becomes the new cache-tier owner), the driver's own
//     catalog as the last resort, or lost.
//   - PlanRehome: owner death. Each ref owned by the dead worker is
//     re-homed onto the minimum-ID surviving holder, falls back to its
//     shared-tier copy, or is declared lost.
//
// Like the rest of the package these functions are side-effect free
// with respect to the world: they mutate only the table, and every
// decision is recorded through the shared trace helpers so the manager
// and both simulator mirrors emit byte-identical sequences.
//
// The table is driver-serialized (the manager guards it with the ref
// plane's own mutex, the simulators are single-threaded); it is not
// safe for concurrent use on its own.

// RefInfo is one proxy object's catalog entry.
type RefInfo struct {
	ID   string
	Name string
	Size int64
	// Owner is the cache-tier holder of record ("" when the only copy
	// lives in the shared tier, or after the ref is lost).
	Owner string
	// Tier is where the authoritative copy lives.
	Tier int
	// Spilled records that a shared-tier copy exists (it persists even
	// after a promote re-establishes a cache-tier owner, as a fallback).
	Spilled bool
	// Holders are workers with a cache replica (the owner included).
	Holders map[string]bool
}

// RefSpill is one planned demotion of an owned object to the shared
// tier.
type RefSpill struct {
	ID     string
	Worker string
	Size   int64
}

// ResolveMode says where a consumer pulls a ref from.
type ResolveMode int

const (
	// ResolveReady: the consumer already holds (or is receiving) a
	// replica; no staging needed.
	ResolveReady ResolveMode = iota
	// ResolvePeer: fetch from a live holder's data server.
	ResolvePeer
	// ResolveShared: fetch the spilled copy from the shared tier.
	ResolveShared
	// ResolveDirect: the driver restages from its own catalog — the
	// last resort when no holder and no shared copy survive.
	ResolveDirect
	// ResolveLost: no copy of the object survives anywhere.
	ResolveLost
)

// ResolveDecision is PlanResolve's outcome.
type ResolveDecision struct {
	Mode ResolveMode
	// Src is the holder serving a ResolvePeer fetch.
	Src string
	// Alts are up to two alternate holders (ascending worker ID,
	// excluding Src) the consumer's data plane may retry in-plane.
	Alts []string
	// Promote marks a ResolveShared fetch that re-establishes the
	// consumer as the ref's cache-tier owner (promote on re-use).
	Promote bool
	// Spills are demotions cascaded by the promote's owned-bytes
	// charge on the consumer.
	Spills []RefSpill
	// Size echoes the ref's logical size for the driver's transfer.
	Size int64
}

// Rehome is one ref's fate after its owner died.
type Rehome struct {
	ID string
	// Owner is the new holder of record ("" when the ref fell back to
	// the shared tier or was lost).
	Owner string
	// Shared marks a fallback to the shared-tier copy.
	Shared bool
	// Lost marks a ref with no surviving copy.
	Lost bool
	// Spills are demotions cascaded by the new owner's owned-bytes
	// charge.
	Spills []RefSpill
}

// RefTable is the pure proxy-object catalog shared by both engines.
type RefTable struct {
	// OwnedBytesCap bounds the owned (cache-tier, holder-of-record)
	// bytes per worker; exceeding it spills oldest-owned-first to the
	// shared tier. 0 means unbounded (no spills).
	OwnedBytesCap int64

	refs map[string]*RefInfo
	// owned: worker → ref IDs in ownership order (spill FIFO).
	owned map[string][]string
	// ownedBytes: worker → total owned logical bytes.
	ownedBytes map[string]int64
	// held: worker → refs it holds a replica of (death cleanup index).
	held map[string]map[string]bool
}

// NewRefTable builds an empty catalog with the given per-worker owned
// bytes cap (0 = unbounded).
func NewRefTable(ownedBytesCap int64) *RefTable {
	return &RefTable{
		OwnedBytesCap: ownedBytesCap,
		refs:          map[string]*RefInfo{},
		owned:         map[string][]string{},
		ownedBytes:    map[string]int64{},
		held:          map[string]map[string]bool{},
	}
}

// Len reports how many refs the catalog tracks.
func (t *RefTable) Len() int { return len(t.refs) }

// Has reports whether id names a tracked proxy object.
func (t *RefTable) Has(id string) bool { _, ok := t.refs[id]; return ok }

// Get returns a ref's catalog entry (nil if untracked). The entry is
// live — callers must not mutate it.
func (t *RefTable) Get(id string) *RefInfo { return t.refs[id] }

// addHolder records a replica without ownership side effects.
func (t *RefTable) addHolder(ref *RefInfo, worker string) {
	if ref.Holders == nil {
		ref.Holders = map[string]bool{}
	}
	ref.Holders[worker] = true
	hs := t.held[worker]
	if hs == nil {
		hs = map[string]bool{}
		t.held[worker] = hs
	}
	hs[ref.ID] = true
}

func (t *RefTable) dropHolder(ref *RefInfo, worker string) {
	delete(ref.Holders, worker)
	if hs := t.held[worker]; hs != nil {
		delete(hs, ref.ID)
		if len(hs) == 0 {
			delete(t.held, worker)
		}
	}
}

// AddRefHolder records a confirmed replica of a tracked ref on a
// worker (a consumer's fetch acked). Untracked IDs are ignored.
func (t *RefTable) AddRefHolder(worker, id string) {
	if ref := t.refs[id]; ref != nil {
		t.addHolder(ref, worker)
	}
}

// DropRefHolder retracts a replica (eviction on a live worker).
func (t *RefTable) DropRefHolder(worker, id string) {
	if ref := t.refs[id]; ref != nil {
		t.dropHolder(ref, worker)
	}
}

// noteOwned charges a newly-owned object against a worker's budget and
// spills oldest-owned-first until the worker fits under the cap. The
// new object itself spills only when it alone exceeds the cap.
func (t *RefTable) noteOwned(worker, id string, size int64, rec *Recorder) []RefSpill {
	t.owned[worker] = append(t.owned[worker], id)
	t.ownedBytes[worker] += size
	if t.OwnedBytesCap <= 0 {
		return nil
	}
	var spills []RefSpill
	for t.ownedBytes[worker] > t.OwnedBytesCap && len(t.owned[worker]) > 0 {
		victim := t.owned[worker][0]
		t.owned[worker] = t.owned[worker][1:]
		ref := t.refs[victim]
		if ref == nil || ref.Owner != worker {
			continue
		}
		sp := RefSpill{ID: victim, Worker: worker, Size: ref.Size}
		t.applySpill(ref, sp)
		rec.Record(TraceSpill(sp))
		spills = append(spills, sp)
	}
	return spills
}

// applySpill moves a ref's authoritative copy to the shared tier: the
// owner relinquishes, its cache replica is dropped, and its budget is
// credited back.
func (t *RefTable) applySpill(ref *RefInfo, sp RefSpill) {
	ref.Tier = core.TierShared
	ref.Spilled = true
	ref.Owner = ""
	t.dropHolder(ref, sp.Worker)
	t.ownedBytes[sp.Worker] -= ref.Size
	if t.ownedBytes[sp.Worker] <= 0 {
		delete(t.ownedBytes, sp.Worker)
	}
	if len(t.owned[sp.Worker]) == 0 {
		delete(t.owned, sp.Worker)
	}
}

// removeOwned drops id from a worker's ownership FIFO (rehome, death).
func (t *RefTable) removeOwned(worker, id string, size int64) {
	q := t.owned[worker]
	for i, v := range q {
		if v == id {
			t.owned[worker] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(t.owned[worker]) == 0 {
		delete(t.owned, worker)
	}
	t.ownedBytes[worker] -= size
	if t.ownedBytes[worker] <= 0 {
		delete(t.ownedBytes, worker)
	}
}

// NoteRefResult is the ownership transfer on completion: the producing
// worker becomes the ref's owner and holder of record, and any
// owned-bytes overflow spills oldest-first to the shared tier. Both
// the ownership and every spill are recorded. Re-registering a known
// ID is a no-op (duplicate result delivery).
func (t *RefTable) NoteRefResult(worker, id, name string, size int64, rec *Recorder) []RefSpill {
	if t.refs[id] != nil {
		return nil
	}
	ref := &RefInfo{ID: id, Name: name, Size: size, Owner: worker, Tier: core.TierCache}
	t.refs[id] = ref
	t.addHolder(ref, worker)
	rec.Record(TraceOwn(id, worker, size))
	return t.noteOwned(worker, id, size, rec)
}

// pickHolder returns the minimum-ID holder — the same deterministic
// fold PickSource uses over the view's Holders index.
func pickHolder(ref *RefInfo, exclude string) string {
	best := ""
	for w := range ref.Holders { //vinelint:unordered min-ID fold is order-independent
		if w == exclude {
			continue
		}
		if best == "" || w < best {
			best = w
		}
	}
	return best
}

// altHolders returns up to two alternate holders in ascending ID order
// (mirroring the manager's altSourcesLocked), excluding src and dst.
func altHolders(ref *RefInfo, src, dst string) []string {
	var alts []string
	for _, w := range core.SortedKeys(ref.Holders) {
		if w == src || w == dst {
			continue
		}
		alts = append(alts, w)
		if len(alts) == 2 {
			break
		}
	}
	return alts
}

// PlanResolve decides where the consumer dst pulls the ref id from,
// recording the decision. catalog reports whether the driver itself
// could restage the bytes (the true last resort).
func (t *RefTable) PlanResolve(dst, id string, catalog bool, rec *Recorder) ResolveDecision {
	ref := t.refs[id]
	if ref == nil {
		if catalog {
			rec.Record(TraceResolve(id, dst, ResolveDecision{Mode: ResolveDirect}))
			return ResolveDecision{Mode: ResolveDirect}
		}
		rec.Record(TraceResolve(id, dst, ResolveDecision{Mode: ResolveLost}))
		return ResolveDecision{Mode: ResolveLost}
	}
	if ref.Holders[dst] {
		d := ResolveDecision{Mode: ResolveReady, Size: ref.Size}
		rec.Record(TraceResolve(id, dst, d))
		return d
	}
	if src := pickHolder(ref, dst); src != "" {
		d := ResolveDecision{Mode: ResolvePeer, Src: src, Alts: altHolders(ref, src, dst), Size: ref.Size}
		rec.Record(TraceResolve(id, dst, d))
		return d
	}
	if ref.Spilled {
		// Promote on re-use: the consumer becomes the ref's cache-tier
		// owner (the shared copy stays as a fallback), charged against
		// its owned budget like a fresh result.
		d := ResolveDecision{Mode: ResolveShared, Promote: true, Size: ref.Size}
		rec.Record(TraceResolve(id, dst, d))
		ref.Owner = dst
		ref.Tier = core.TierCache
		t.addHolder(ref, dst)
		rec.Record(TracePromote(id, dst))
		d.Spills = t.noteOwned(dst, id, ref.Size, rec)
		return d
	}
	if catalog {
		d := ResolveDecision{Mode: ResolveDirect, Size: ref.Size}
		rec.Record(TraceResolve(id, dst, d))
		return d
	}
	d := ResolveDecision{Mode: ResolveLost, Size: ref.Size}
	rec.Record(TraceResolve(id, dst, d))
	return d
}

// PlanRehome handles an owner's death: every replica the dead worker
// held is retracted, and each ref it owned is re-homed onto the
// minimum-ID surviving holder, falls back to its shared-tier copy, or
// is declared lost. Decisions are recorded in ownership order (the
// dead worker's spill FIFO) — deterministic because both engines
// appended in the same completion order.
func (t *RefTable) PlanRehome(dead string, rec *Recorder) []Rehome {
	ownedQ := t.owned[dead]
	if len(ownedQ) == 0 && len(t.held[dead]) == 0 {
		return nil
	}
	// Ownership transfers first, while the dead worker's replica still
	// marks which refs it owned; then retract every remaining replica.
	ownedIDs := append([]string(nil), ownedQ...)
	var out []Rehome
	for _, id := range ownedIDs {
		ref := t.refs[id]
		if ref == nil || ref.Owner != dead {
			continue
		}
		t.removeOwned(dead, id, ref.Size)
		t.dropHolder(ref, dead)
		rh := Rehome{ID: id}
		if next := pickHolder(ref, ""); next != "" {
			ref.Owner = next
			rh.Owner = next
			rec.Record(TraceRehome(rh))
			rh.Spills = t.noteOwned(next, id, ref.Size, rec)
		} else if ref.Spilled {
			ref.Owner = ""
			ref.Tier = core.TierShared
			rh.Shared = true
			rec.Record(TraceRehome(rh))
		} else {
			ref.Owner = ""
			rh.Lost = true
			rec.Record(TraceRehome(rh))
		}
		out = append(out, rh)
	}
	for _, id := range core.SortedKeys(t.held[dead]) {
		t.DropRefHolder(dead, id)
	}
	return out
}

// OwnedBytes reports a worker's current owned-bytes charge (tests and
// stats).
func (t *RefTable) OwnedBytes(worker string) int64 { return t.ownedBytes[worker] }
