// Package policy is the shared, pure scheduling-policy core of the
// TaskVine reproduction. Both engines — the real manager
// (internal/manager) and the scale simulator (internal/sim) — maintain
// one ClusterView of cluster state and call the decision functions in
// decide.go for every scheduling choice: ready-instance placement and
// hash-ring library deploys (§3.5.2), spanning-tree peer source
// selection under a per-source cap with first-copy-in-flight
// suppression (§3.3), stateless task placement, and empty-library
// eviction order.
//
// The decision functions are side-effect free and deterministic: they
// read the view and return typed decisions (PlaceInvocation,
// DeployLibrary, PickPeerSource, StageFile, EvictCandidate, PlaceTask)
// without mutating anything. The drivers execute decisions — send
// messages, advance the virtual clock — and report the resulting state
// transitions back through the view mutators in this file. A policy
// change therefore lands once and applies to both the real engine and
// the simulated numbers, and the differential replay harness
// (internal/manager's differential test) proves the two drivers emit
// identical decision sequences for identical event traces.
package policy

import (
	"repro/internal/core"
	"repro/internal/hashring"
)

// Options are the policy knobs shared by both engines.
type Options struct {
	// PeerTransfers enables worker-to-worker distribution (Figure 3b);
	// off means every byte flows from the manager (Figure 3a).
	PeerTransfers bool
	// PeerTransferCap is the per-worker cap N on concurrent outbound
	// transfers, avoiding sinks in the spanning tree (§3.3).
	PeerTransferCap int
	// ClusterAware prefers same-cluster peers as transfer sources
	// (Figure 3c); cross-cluster peers are used only when the manager's
	// own link is saturated (see PickSource).
	ClusterAware bool
	// EvictEmptyLibraries allows deploys to reclaim workers occupied by
	// idle foreign libraries (§3.5.2).
	EvictEmptyLibraries bool
	// ManagerSourceCap bounds how many copies the manager itself sends
	// concurrently; 0 means unbounded (the real manager's link is not
	// modeled as a constrained resource).
	ManagerSourceCap int
}

// LibraryView is the policy-visible state of one library on one
// worker. The real manager runs one multi-slot instance per worker
// (Instances/MaxInstances = 1); the simulator runs one single-slot
// instance per occupied slot (MaxInstances = slots per worker). Both
// report the same FreeReady quantity — invocation slots that are ready
// and idle — which is all placement reads.
type LibraryView struct {
	Name   string
	Ready  bool
	Failed bool
	// Slots and SlotsUsed describe one instance's invocation capacity.
	Slots     int
	SlotsUsed int
	// FreeReady is the maintained count of free, ready invocation slots
	// this worker offers for the library (set via SetFreeReady).
	FreeReady int
	// Instances and MaxInstances bound how many instances this worker
	// can host; a worker at MaxInstances is skipped by deploys.
	Instances    int
	MaxInstances int
	// Res is the resource commitment of one instance.
	Res core.Resources
}

// WorkerView is the policy-visible state of one worker.
type WorkerView struct {
	ID      string
	Cluster string
	Alive   bool
	Total   core.Resources
	Commit  core.Resources
	// TransfersOut counts in-flight outbound peer transfers (the
	// spanning-tree cap N applies to it).
	TransfersOut int
	// Files are confirmed cached objects; Pending are copies in flight
	// to this worker. An object in either set needs no further staging
	// (messages on one connection are ordered).
	Files   map[string]bool
	Pending map[string]bool
	Libs    map[string]*LibraryView
}

// Avail is the worker's uncommitted resources.
func (w *WorkerView) Avail() core.Resources { return w.Total.Sub(w.Commit) }

// HasFile reports whether the object is cached or already on its way.
func (w *WorkerView) HasFile(id string) bool { return w.Files[id] || w.Pending[id] }

// ClusterView is the full cluster snapshot the decision functions read:
// the worker table, the consistent-hash placement ring, and the derived
// indexes that keep every decision O(candidates) instead of
// O(workers × objects). Drivers keep it current through the mutators
// below; the decision functions never write it.
type ClusterView struct {
	Opts    Options
	Workers map[string]*WorkerView
	// Ring is the consistent-hash ring over worker IDs that task
	// placement and library deploys walk.
	Ring *hashring.Ring
	// Holders: object ID → workers with a confirmed cached replica
	// (peer-transfer source candidates, §3.3).
	Holders map[string]map[string]*WorkerView
	// PendingCopies: object ID → copies in flight cluster-wide (the
	// O(1) "first copy in flight, everyone else waits" check).
	PendingCopies map[string]int
	// ReadyFree: library → workers offering at least one free ready
	// slot (ready-instance placement never walks the ring, §3.5.2).
	ReadyFree map[string]map[string]*WorkerView
	// LibFull: library → workers at MaxInstances; when every worker is
	// full the deploy path skips its ring walk outright.
	LibFull map[string]int
	// ManagerSends counts copies the manager is currently sending on
	// its own link (meaningful only under ManagerSourceCap).
	ManagerSends int

	// freeSets recycles emptied Holders/ReadyFree member sets. A 1-slot
	// worker oscillates free⇄busy on every dispatch, which would
	// otherwise delete and re-allocate its library's ReadyFree set each
	// cycle; the recycled maps keep their buckets, so the oscillation is
	// allocation-free. Contents are identical either way — decisions
	// never observe the difference.
	freeSets []map[string]*WorkerView
	// undoScratch is the batch planners' reusable overlay-undo log
	// (always empty between calls; batch calls never nest).
	undoScratch []undoOp
	// ringScratch/seenScratch/stageScratch are PlanTask/PlanDeploy's
	// reusable ring-walk buffers. The planners never nest, so one set
	// per view suffices; each walk truncates or clears before use.
	ringScratch  []string
	seenScratch  map[string]bool
	stageScratch map[string]bool
}

// clearedSeen returns the reusable blocked-object dedup set, emptied.
func (v *ClusterView) clearedSeen() map[string]bool {
	if v.seenScratch == nil {
		v.seenScratch = map[string]bool{}
	} else {
		clear(v.seenScratch)
	}
	return v.seenScratch
}

// clearedStage returns the reusable staged-object commit set, emptied.
func (v *ClusterView) clearedStage() map[string]bool {
	if v.stageScratch == nil {
		v.stageScratch = map[string]bool{}
	} else {
		clear(v.stageScratch)
	}
	return v.stageScratch
}

// newSet returns an empty member set, recycled when possible.
func (v *ClusterView) newSet() map[string]*WorkerView {
	if n := len(v.freeSets); n > 0 {
		set := v.freeSets[n-1]
		v.freeSets[n-1] = nil
		v.freeSets = v.freeSets[:n-1]
		return set
	}
	return map[string]*WorkerView{}
}

// releaseSet recycles an emptied member set.
func (v *ClusterView) releaseSet(set map[string]*WorkerView) {
	if len(v.freeSets) < 64 {
		v.freeSets = append(v.freeSets, set)
	}
}

// NewClusterView creates an empty view with option defaults applied.
func NewClusterView(opts Options) *ClusterView {
	if opts.PeerTransferCap <= 0 {
		opts.PeerTransferCap = 3
	}
	return &ClusterView{
		Opts:          opts,
		Workers:       map[string]*WorkerView{},
		Ring:          hashring.New(0),
		Holders:       map[string]map[string]*WorkerView{},
		PendingCopies: map[string]int{},
		ReadyFree:     map[string]map[string]*WorkerView{},
		LibFull:       map[string]int{},
	}
}

// ---- view mutators ----
//
// Drivers call these to report state transitions; each maintains the
// derived indexes so decisions stay cheap. The manager's randomized
// index-consistency test asserts they always match a brute-force
// recomputation from ground-truth worker state.

// AddWorker registers a joined worker and returns its view.
func (v *ClusterView) AddWorker(id, clusterName string, total core.Resources) *WorkerView {
	// Files/Pending/Libs are allocated lazily by the first mutator that
	// writes them: many workers in large runs never cache an object.
	w := &WorkerView{
		ID:      id,
		Cluster: clusterName,
		Alive:   true,
		Total:   total,
	}
	v.Workers[id] = w
	v.Ring.Add(id)
	return w
}

// RemoveWorker drops a dead worker from every index, returning the
// objects whose replica sets changed and the objects whose in-flight
// copies were cleared (so the driver can republish counters and wake
// anything queued behind a first copy that will never confirm).
func (v *ClusterView) RemoveWorker(w *WorkerView) (droppedReplicas, clearedPending []string) {
	delete(v.Workers, w.ID)
	v.Ring.Remove(w.ID)
	w.Alive = false
	for _, name := range core.SortedKeys(w.Libs) {
		v.RemoveLibrary(w, name)
	}
	for _, id := range core.SortedKeys(w.Files) {
		if v.DropReplica(w, id) {
			droppedReplicas = append(droppedReplicas, id)
		}
	}
	for _, id := range core.SortedKeys(w.Pending) {
		if v.ClearPending(w, id) {
			clearedPending = append(clearedPending, id)
		}
	}
	return droppedReplicas, clearedPending
}

// NoteReplica records a confirmed cached copy on a worker, reporting
// whether the replica set changed.
func (v *ClusterView) NoteReplica(w *WorkerView, id string) bool {
	if w.Files[id] {
		return false
	}
	if w.Files == nil {
		w.Files = map[string]bool{}
	}
	w.Files[id] = true
	set := v.Holders[id]
	if set == nil {
		set = v.newSet()
		v.Holders[id] = set
	}
	set[w.ID] = w
	return true
}

// DropReplica removes one worker's replica (worker death), reporting
// whether one existed.
func (v *ClusterView) DropReplica(w *WorkerView, id string) bool {
	if !w.Files[id] {
		return false
	}
	delete(w.Files, id)
	if set := v.Holders[id]; set != nil {
		delete(set, w.ID)
		if len(set) == 0 {
			delete(v.Holders, id)
			v.releaseSet(set)
		}
	}
	return true
}

// NotePending records a copy in flight to the worker.
func (v *ClusterView) NotePending(w *WorkerView, id string) {
	if w.Pending[id] {
		return
	}
	if w.Pending == nil {
		w.Pending = map[string]bool{}
	}
	w.Pending[id] = true
	v.PendingCopies[id]++
}

// ClearPending removes the in-flight record, reporting whether one
// existed. The count is guarded against state written behind the
// mutators' back (synthetic test workers).
func (v *ClusterView) ClearPending(w *WorkerView, id string) bool {
	if !w.Pending[id] {
		return false
	}
	delete(w.Pending, id)
	if n := v.PendingCopies[id]; n > 1 {
		v.PendingCopies[id] = n - 1
	} else {
		delete(v.PendingCopies, id)
	}
	return true
}

// AddInstance records one more instance of a library on a worker. The
// first call binds lv into the worker's library table; every call
// advances the instance count and the saturation index.
func (v *ClusterView) AddInstance(w *WorkerView, lv *LibraryView) {
	if w.Libs[lv.Name] == nil {
		if w.Libs == nil {
			w.Libs = map[string]*LibraryView{}
		}
		w.Libs[lv.Name] = lv
	}
	lv.Instances++
	if lv.MaxInstances > 0 && lv.Instances == lv.MaxInstances {
		v.LibFull[lv.Name]++
	}
}

// RemoveLibrary drops a worker's whole entry for a library (eviction,
// failed install, worker death).
func (v *ClusterView) RemoveLibrary(w *WorkerView, name string) {
	lv := w.Libs[name]
	if lv == nil {
		return
	}
	if lv.MaxInstances > 0 && lv.Instances >= lv.MaxInstances {
		if n := v.LibFull[name]; n > 1 {
			v.LibFull[name] = n - 1
		} else {
			delete(v.LibFull, name)
		}
	}
	delete(w.Libs, name)
	v.dropReadyFree(name, w.ID)
}

// SetFreeReady publishes a worker's current free ready-slot count for a
// library and re-derives its ReadyFree membership. Drivers call it
// after any slot or readiness transition.
func (v *ClusterView) SetFreeReady(w *WorkerView, lv *LibraryView, free int) {
	lv.FreeReady = free
	if free > 0 && w.Alive {
		set := v.ReadyFree[lv.Name]
		if set == nil {
			set = v.newSet()
			v.ReadyFree[lv.Name] = set
		}
		set[w.ID] = w
		return
	}
	v.dropReadyFree(lv.Name, w.ID)
}

func (v *ClusterView) dropReadyFree(lib, workerID string) {
	set := v.ReadyFree[lib]
	if set == nil {
		return
	}
	delete(set, workerID)
	if len(set) == 0 {
		delete(v.ReadyFree, lib)
		v.releaseSet(set)
	}
}
