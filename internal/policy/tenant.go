package policy

import (
	"repro/internal/core"
)

// The multi-tenant submission surface (DESIGN.md §14): every admission
// and fair-share decision the submission plane makes lives here as a
// pure function over explicit TenantState, so both engines — the real
// manager's plane and the simulator's mirror — execute identical
// decision sequences and the differential harness can diff them line
// for line.
//
// Fair share generalizes internal/event/fairshare.go's virtual-time
// model into integer arithmetic: each tenant carries a virtual time
// that advances by vtScale/weight per drained spec, and the next spec
// drained always belongs to the backlogged tenant with the smallest
// virtual time (ties break on tenant index — name order, pinned by
// core.NormalizeTenants). Integer virtual time makes the trace
// portable: no float formatting, no epsilon drift between engines.

// MaxTenantWeight bounds fair-share weights. vtScale is divisible by
// every weight in [1, MaxTenantWeight], so per-dispatch virtual-time
// increments are exact integers and weighted shares are exact ratios.
const (
	MaxTenantWeight = 16
	vtScale         = 720720 // lcm(1..16) = 720720
)

// TenantState is one tenant's live accounting in the submission plane.
// The driver owns the struct; every mutation goes through the pure
// helpers below so both engines account identically.
type TenantState struct {
	Spec core.TenantSpec
	// Queued counts specs waiting in the tenant's plane queue (admitted
	// but not yet released to a shard).
	Queued int
	// InFlight counts specs released into the engine and not yet
	// finally resolved (queued in a shard, dispatched, or retrying).
	// Quota gates on it.
	InFlight int
	// VTime is the tenant's fair-share virtual time: total drained
	// service normalized by weight. See ChargeDispatch / CatchUpVTime.
	VTime int64
}

// weight returns the clamped fair-share weight.
func (t *TenantState) weight() int {
	w := t.Spec.Weight
	if w < 1 {
		w = 1
	}
	if w > MaxTenantWeight {
		w = MaxTenantWeight
	}
	return w
}

// AdmitVerdict is the submission plane's answer to one submit.
type AdmitVerdict int

const (
	// AdmitAccept queues the spec normally.
	AdmitAccept AdmitVerdict = iota
	// AdmitThrottle queues the spec but flags backpressure: the tenant
	// is over its throttle mark or quota and should slow down.
	AdmitThrottle
	// AdmitShed rejects the spec outright: it fails immediately with a
	// non-retryable result instead of queueing.
	AdmitShed
)

func (v AdmitVerdict) String() string {
	switch v {
	case AdmitThrottle:
		return "throttle"
	case AdmitShed:
		return "shed"
	default:
		return "accept"
	}
}

// AdmitDecision is one admission-control verdict with its reason — the
// reason is part of the recorded trace, so overload behavior is as
// replayable as placement.
type AdmitDecision struct {
	Verdict AdmitVerdict
	Reason  string
}

// AdmitSubmit decides one submission against the tenant's current
// accounting, in strict precedence order: a full plane queue sheds,
// quota pressure throttles, a deep queue throttles, everything else is
// accepted. Pure — the caller applies the queue/in-flight updates.
func AdmitSubmit(t *TenantState) AdmitDecision {
	if t.Spec.MaxQueue > 0 && t.Queued >= t.Spec.MaxQueue {
		return AdmitDecision{Verdict: AdmitShed, Reason: "queue-full"}
	}
	if t.Spec.Quota > 0 && t.InFlight+t.Queued >= t.Spec.Quota {
		return AdmitDecision{Verdict: AdmitThrottle, Reason: "quota-pressure"}
	}
	if t.Spec.ThrottleAt > 0 && t.Queued >= t.Spec.ThrottleAt {
		return AdmitDecision{Verdict: AdmitThrottle, Reason: "queue-pressure"}
	}
	return AdmitDecision{Verdict: AdmitAccept, Reason: "ok"}
}

// NextTenant picks the tenant the plane drains next: among tenants
// with queued work and quota headroom, the one with the smallest
// virtual time; ties break on the lowest index. Returns -1 when no
// tenant is eligible. Pure — PlanSubmitBatch applies the accounting.
func NextTenant(ts []*TenantState) int {
	best := -1
	for i, t := range ts {
		if t.Queued == 0 {
			continue
		}
		if t.Spec.Quota > 0 && t.InFlight >= t.Spec.Quota {
			continue
		}
		if best < 0 || t.VTime < ts[best].VTime {
			best = i
		}
	}
	return best
}

// ChargeDispatch advances a tenant's virtual time for one drained
// spec: vtScale/weight, so a weight-w tenant's clock runs 1/w as fast
// and it drains w specs per competitor's one when both are backlogged.
func ChargeDispatch(t *TenantState) {
	t.VTime += int64(vtScale / t.weight())
}

// CatchUpVTime forwards a tenant's virtual time to the backlog
// frontier: the smallest virtual time among *other* tenants with
// queued work, or the largest virtual time anywhere when none are
// backlogged. A tenant going idle would otherwise bank credit — its
// stale clock would let a later burst monopolize the drain until the
// clock caught up. Never moves a clock backwards.
func CatchUpVTime(ts []*TenantState, t *TenantState) {
	frontier := int64(0)
	found := false
	for _, o := range ts {
		if o == t || o.Queued == 0 {
			continue
		}
		if !found || o.VTime < frontier {
			frontier = o.VTime
			found = true
		}
	}
	if !found {
		for _, o := range ts {
			if o.VTime > frontier {
				frontier = o.VTime
			}
		}
	}
	if frontier > t.VTime {
		t.VTime = frontier
	}
}

// NoteQueued accounts one accepted submission: on the tenant's
// idle→backlogged transition its clock first catches up to the
// frontier (no banked credit), then the queue deepens by one.
func NoteQueued(ts []*TenantState, t *TenantState) {
	if t.Queued == 0 {
		CatchUpVTime(ts, t)
	}
	t.Queued++
}

// PlanSubmitBatch drains the plane: repeatedly pick the fair-share
// next tenant, record the pick, and move one of its specs from queued
// to in flight, until no tenant is eligible or max picks are made
// (max <= 0 means unbounded). Returns the picked tenant indexes in
// drain order; the driver releases each tenant's queue head to a
// shard in exactly this order.
func PlanSubmitBatch(ts []*TenantState, max int, rec *Recorder) []int {
	var out []int
	for max <= 0 || len(out) < max {
		i := NextTenant(ts)
		if i < 0 {
			break
		}
		t := ts[i]
		rec.Record(TraceNextTenant(t.Spec.Name, t.VTime, t.Queued))
		t.Queued--
		t.InFlight++
		ChargeDispatch(t)
		out = append(out, i)
	}
	return out
}
