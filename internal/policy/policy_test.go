package policy

import (
	"reflect"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
)

func newView(t *testing.T, opts Options, n int) (*ClusterView, []*WorkerView) {
	t.Helper()
	v := NewClusterView(opts)
	ws := make([]*WorkerView, n)
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		ws[i] = v.AddWorker("w-"+id, "c0", core.Resources{Cores: 8, MemoryMB: 1 << 14, DiskMB: 1 << 14})
	}
	return v, ws
}

func addReadyLib(v *ClusterView, w *WorkerView, name string, slots, used int) *LibraryView {
	lv := &LibraryView{
		Name: name, Ready: true, Slots: slots, SlotsUsed: used,
		MaxInstances: 1, Res: core.Resources{Cores: 2},
	}
	v.AddInstance(w, lv)
	v.SetFreeReady(w, lv, slots-used)
	return lv
}

// TestPlaceReadyTieBreak pins the unified deterministic placement
// order shared by the manager and the simulator: most free ready
// slots first, minimum worker ID on ties (satellite 1).
func TestPlaceReadyTieBreak(t *testing.T) {
	v, ws := newView(t, Options{}, 4)
	addReadyLib(v, ws[0], "lib", 4, 3) // free 1
	addReadyLib(v, ws[1], "lib", 4, 1) // free 3
	addReadyLib(v, ws[2], "lib", 4, 1) // free 3 — ties with w-b, higher ID
	addReadyLib(v, ws[3], "lib", 4, 4) // free 0 — not a candidate

	d := v.PlaceReady("lib", nil)
	if d.Worker == nil || d.Worker.ID != "w-b" {
		t.Fatalf("PlaceReady picked %+v, want w-b (max free, min ID tie-break)", d.Worker)
	}

	// Equal free counts everywhere: strictly minimum worker ID wins.
	v.SetFreeReady(ws[0], ws[0].Libs["lib"], 3)
	d = v.PlaceReady("lib", nil)
	if d.Worker == nil || d.Worker.ID != "w-a" {
		t.Fatalf("PlaceReady picked %v, want w-a on all-equal tie", d.Worker)
	}

	// The avoid filter skips the would-be winner deterministically.
	d = v.PlaceReady("lib", Excluding("w-a"))
	if d.Worker == nil || d.Worker.ID != "w-b" {
		t.Fatalf("PlaceReady with avoid=w-a picked %v, want w-b", d.Worker)
	}
}

func fileSpec(id string, bytes int64) core.FileSpec {
	return core.FileSpec{
		Object:       &content.Object{ID: id, LogicalSize: bytes},
		Cache:        true,
		PeerTransfer: true,
	}
}

func TestPickSourceCapAndDeterminism(t *testing.T) {
	v, ws := newView(t, Options{PeerTransfers: true, PeerTransferCap: 2}, 4)
	v.NoteReplica(ws[2], "obj")
	v.NoteReplica(ws[1], "obj")

	if src := v.PickSource(ws[0], "obj"); src == nil || src.ID != "w-b" {
		t.Fatalf("PickSource = %v, want min-ID holder w-b", src)
	}
	// Saturated sources are skipped (per-source cap N, §3.3).
	ws[1].TransfersOut = 2
	if src := v.PickSource(ws[0], "obj"); src == nil || src.ID != "w-c" {
		t.Fatalf("PickSource with w-b saturated = %v, want w-c", src)
	}
	ws[2].TransfersOut = 2
	if src := v.PickSource(ws[0], "obj"); src != nil {
		t.Fatalf("PickSource with all saturated = %v, want nil (manager sends)", src)
	}
	// The destination itself is never a source.
	ws[1].TransfersOut = 0
	if src := v.PickSource(ws[1], "obj"); src != nil {
		t.Fatalf("PickSource for a holder dst = %v, want nil", src)
	}
}

func TestPickSourceClusterRule(t *testing.T) {
	v := NewClusterView(Options{PeerTransfers: true, ClusterAware: true, ManagerSourceCap: 1})
	dst := v.AddWorker("w-a", "c0", core.Resources{Cores: 8})
	far := v.AddWorker("w-b", "c1", core.Resources{Cores: 8})
	v.NoteReplica(far, "obj")

	// Manager link free: cross-cluster peers are ignored; the manager
	// (equidistant from every cluster) sends the copy itself.
	if src := v.PickSource(dst, "obj"); src != nil {
		t.Fatalf("cross-cluster source %v chosen with manager link free", src)
	}
	// Manager link saturated: the cross-cluster peer becomes eligible.
	v.ManagerSends = 1
	if src := v.PickSource(dst, "obj"); src == nil || src.ID != "w-b" {
		t.Fatalf("PickSource under manager saturation = %v, want w-b", src)
	}
	// A same-cluster holder always wins over cross-cluster.
	near := v.AddWorker("w-c", "c0", core.Resources{Cores: 8})
	v.NoteReplica(near, "obj")
	if src := v.PickSource(dst, "obj"); src == nil || src.ID != "w-c" {
		t.Fatalf("PickSource = %v, want same-cluster w-c", src)
	}
}

func TestPlanStageFirstCopySuppression(t *testing.T) {
	v, ws := newView(t, Options{PeerTransfers: true}, 3)
	fs := fileSpec("obj", 1<<20)

	// No replica, nothing in flight: the manager sends the first copy.
	if sf := v.PlanStage(ws[0], fs, nil); sf.Mode != StageDirect {
		t.Fatalf("first copy mode = %v, want StageDirect", sf.Mode)
	}
	v.NotePending(ws[0], "obj")
	// First copy in flight elsewhere: later destinations wait for a
	// peer source instead of drawing another manager copy.
	if sf := v.PlanStage(ws[1], fs, nil); sf.Mode != StageWait {
		t.Fatalf("second copy mode = %v, want StageWait", sf.Mode)
	}
	// The in-flight destination itself needs nothing more.
	if sf := v.PlanStage(ws[0], fs, nil); sf.Mode != StageReady {
		t.Fatalf("in-flight dst mode = %v, want StageReady", sf.Mode)
	}
	// Copy confirmed: the holder serves the next destination.
	v.ClearPending(ws[0], "obj")
	v.NoteReplica(ws[0], "obj")
	sf := v.PlanStage(ws[1], fs, nil)
	if sf.Mode != StagePeer || sf.Src.ID != "w-a" {
		t.Fatalf("post-confirm stage = %+v, want peer from w-a", sf)
	}
	// Non-peer files skip suppression entirely.
	plain := core.FileSpec{Object: &content.Object{ID: "plain"}}
	v.NotePending(ws[0], "plain")
	if sf := v.PlanStage(ws[1], plain, nil); sf.Mode != StageDirect {
		t.Fatalf("non-peer file mode = %v, want StageDirect", sf.Mode)
	}
}

func TestPlanEvictionOrderAndAllOrNothing(t *testing.T) {
	v, ws := newView(t, Options{EvictEmptyLibraries: true}, 1)
	w := ws[0]
	addReadyLib(v, w, "zeta", 1, 0)
	addReadyLib(v, w, "alpha", 1, 0)
	busy := addReadyLib(v, w, "busy", 1, 1)
	_ = busy
	w.Commit = core.Resources{Cores: 6} // three instances × 2 cores

	// Needs 6 free cores: evicting alpha then zeta (sorted order) frees
	// exactly enough; the busy library is never a candidate.
	evict, ok := v.PlanEviction(w, "incoming", core.Resources{Cores: 6})
	if !ok {
		t.Fatalf("eviction plan should fit: %+v", evict)
	}
	got := make([]string, len(evict))
	for i, e := range evict {
		got[i] = e.Lib
	}
	if !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Fatalf("eviction order = %v, want [alpha zeta]", got)
	}
	// Impossible ask: ok=false so the driver evicts nothing.
	if _, ok := v.PlanEviction(w, "incoming", core.Resources{Cores: 1 << 20}); ok {
		t.Fatal("oversized eviction plan reported ok")
	}
}

func TestPlanDeploySaturationGuard(t *testing.T) {
	v, ws := newView(t, Options{}, 2)
	spec := DeploySpec{Name: "lib", Res: core.Resources{Cores: 2}}

	d := v.PlanDeploy(spec, nil)
	if d.Worker == nil {
		t.Fatal("PlanDeploy found no worker on an empty cluster")
	}
	addReadyLib(v, ws[0], "lib", 4, 0)
	addReadyLib(v, ws[1], "lib", 4, 0)
	// Every worker at MaxInstances: the guard skips the ring walk.
	if d := v.PlanDeploy(spec, nil); d.Worker != nil {
		t.Fatalf("PlanDeploy placed on saturated cluster: %v", d.Worker.ID)
	}
	v.RemoveLibrary(ws[1], "lib")
	d = v.PlanDeploy(spec, nil)
	if d.Worker == nil || d.Worker.ID != "w-b" {
		t.Fatalf("PlanDeploy after desaturation = %v, want w-b", d.Worker)
	}
}

func TestRemoveWorkerCleansIndexes(t *testing.T) {
	v, ws := newView(t, Options{PeerTransfers: true}, 2)
	w := ws[0]
	v.NoteReplica(w, "cached")
	v.NotePending(w, "inflight")
	addReadyLib(v, w, "lib", 4, 0)

	dropped, cleared := v.RemoveWorker(w)
	if !reflect.DeepEqual(dropped, []string{"cached"}) || !reflect.DeepEqual(cleared, []string{"inflight"}) {
		t.Fatalf("RemoveWorker = (%v, %v)", dropped, cleared)
	}
	if len(v.Holders["cached"]) != 0 || v.PendingCopies["inflight"] != 0 {
		t.Fatal("replica indexes survived worker removal")
	}
	if len(v.ReadyFree["lib"]) != 0 || v.LibFull["lib"] != 0 {
		t.Fatal("library indexes survived worker removal")
	}
	if d := v.PlaceReady("lib", nil); d.Worker != nil {
		t.Fatalf("dead worker still placeable: %v", d.Worker.ID)
	}
}
