package policy

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func tenants(specs ...core.TenantSpec) []*TenantState {
	norm := core.NormalizeTenants(specs, MaxTenantWeight)
	out := make([]*TenantState, len(norm))
	for i, s := range norm {
		out[i] = &TenantState{Spec: s}
	}
	return out
}

func TestAdmitSubmitPrecedence(t *testing.T) {
	ts := &TenantState{Spec: core.TenantSpec{Name: "a", Quota: 4, MaxQueue: 3, ThrottleAt: 2}}
	if d := AdmitSubmit(ts); d.Verdict != AdmitAccept || d.Reason != "ok" {
		t.Fatalf("empty tenant: %+v", d)
	}
	// Queue at the throttle mark: accepted but flagged.
	ts.Queued = 2
	if d := AdmitSubmit(ts); d.Verdict != AdmitThrottle || d.Reason != "queue-pressure" {
		t.Fatalf("at throttle mark: %+v", d)
	}
	// Quota pressure outranks queue pressure.
	ts.InFlight = 2
	if d := AdmitSubmit(ts); d.Verdict != AdmitThrottle || d.Reason != "quota-pressure" {
		t.Fatalf("quota pressure: %+v", d)
	}
	// A full plane queue sheds regardless of anything else.
	ts.Queued = 3
	if d := AdmitSubmit(ts); d.Verdict != AdmitShed || d.Reason != "queue-full" {
		t.Fatalf("full queue: %+v", d)
	}
	// Zero-valued bounds never bite.
	open := &TenantState{Spec: core.TenantSpec{Name: "b"}, Queued: 1 << 20, InFlight: 1 << 20}
	if d := AdmitSubmit(open); d.Verdict != AdmitAccept {
		t.Fatalf("unbounded tenant: %+v", d)
	}
}

func TestNextTenantEligibilityAndTies(t *testing.T) {
	ts := tenants(
		core.TenantSpec{Name: "a", Quota: 1},
		core.TenantSpec{Name: "b"},
		core.TenantSpec{Name: "c"},
	)
	if got := NextTenant(ts); got != -1 {
		t.Fatalf("no queued work: pick %d, want -1", got)
	}
	// Equal virtual time: lowest index wins.
	ts[1].Queued, ts[2].Queued = 1, 1
	if got := NextTenant(ts); got != 1 {
		t.Fatalf("tie: pick %d, want 1", got)
	}
	// Smaller virtual time wins over index.
	ts[2].VTime = -1
	if got := NextTenant(ts); got != 2 {
		t.Fatalf("vtime: pick %d, want 2", got)
	}
	// A tenant at quota is ineligible even with queued work.
	ts[0].Queued, ts[0].InFlight, ts[0].VTime = 5, 1, -100
	if got := NextTenant(ts); got != 2 {
		t.Fatalf("quota-blocked: pick %d, want 2", got)
	}
	ts[0].InFlight = 0
	if got := NextTenant(ts); got != 0 {
		t.Fatalf("quota headroom: pick %d, want 0", got)
	}
}

// TestPlanSubmitBatchWeightedShare drains two backlogged tenants with
// weights 3 and 1 and expects picks in a 3:1 ratio over any window.
func TestPlanSubmitBatchWeightedShare(t *testing.T) {
	ts := tenants(
		core.TenantSpec{Name: "heavy", Weight: 3},
		core.TenantSpec{Name: "light", Weight: 1},
	)
	ts[0].Queued, ts[1].Queued = 40, 40
	rec := &Recorder{}
	picks := PlanSubmitBatch(ts, 40, rec)
	if len(picks) != 40 {
		t.Fatalf("picks = %d, want 40", len(picks))
	}
	heavy := 0
	for _, i := range picks {
		if i == 0 {
			heavy++
		}
	}
	if heavy != 30 {
		t.Fatalf("heavy picks = %d of 40, want 30 (weight 3:1)", heavy)
	}
	if len(rec.Decisions) != 40 {
		t.Fatalf("recorded %d picks, want 40", len(rec.Decisions))
	}
	// The longest run of consecutive heavy picks is bounded by its
	// weight: fair share interleaves, it does not batch.
	run, maxRun := 0, 0
	for _, i := range picks {
		if i == 0 {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 3 {
		t.Fatalf("heavy ran %d consecutive picks, want <= weight 3", maxRun)
	}
}

// TestCatchUpVTimeNoBankedCredit: a tenant idle while a competitor
// drained must not replay its missed share when it returns.
func TestCatchUpVTimeNoBankedCredit(t *testing.T) {
	ts := tenants(core.TenantSpec{Name: "busy"}, core.TenantSpec{Name: "idle"})
	busy, idle := ts[0], ts[1]
	busy.Queued = 100
	PlanSubmitBatch(ts, 50, nil)
	if busy.VTime != 50*vtScale {
		t.Fatalf("busy vtime = %d, want %d", busy.VTime, 50*vtScale)
	}
	// The idle tenant arrives: its clock catches up to the backlog
	// frontier before queueing, so the next 10 picks alternate instead
	// of going 10-0 to the newcomer.
	for i := 0; i < 5; i++ {
		NoteQueued(ts, idle)
	}
	if idle.VTime != busy.VTime {
		t.Fatalf("idle vtime = %d after catch-up, want %d", idle.VTime, busy.VTime)
	}
	picks := PlanSubmitBatch(ts, 10, nil)
	want := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if !reflect.DeepEqual(picks, want) {
		t.Fatalf("post-idle picks = %v, want alternating %v", picks, want)
	}
}

// TestCatchUpVTimeAllIdle: with no backlogged competitor the clock
// forwards to the global maximum, never backwards.
func TestCatchUpVTimeAllIdle(t *testing.T) {
	ts := tenants(core.TenantSpec{Name: "a"}, core.TenantSpec{Name: "b"})
	ts[0].VTime = 7 * vtScale
	CatchUpVTime(ts, ts[1])
	if ts[1].VTime != 7*vtScale {
		t.Fatalf("vtime = %d, want %d", ts[1].VTime, 7*vtScale)
	}
	CatchUpVTime(ts, ts[0])
	if ts[0].VTime != 7*vtScale {
		t.Fatalf("clock moved: %d", ts[0].VTime)
	}
}

// TestPlanSubmitBatchQuotaGate: a quota-blocked tenant's queue rests
// until in-flight capacity returns; the other tenant keeps draining.
func TestPlanSubmitBatchQuotaGate(t *testing.T) {
	ts := tenants(core.TenantSpec{Name: "capped", Quota: 2}, core.TenantSpec{Name: "open"})
	ts[0].Queued, ts[1].Queued = 10, 3
	picks := PlanSubmitBatch(ts, 0, nil)
	// capped drains 2 (hitting quota), open drains all 3.
	if ts[0].InFlight != 2 || ts[0].Queued != 8 {
		t.Fatalf("capped: inflight %d queued %d, want 2/8", ts[0].InFlight, ts[0].Queued)
	}
	if ts[1].InFlight != 3 || ts[1].Queued != 0 {
		t.Fatalf("open: inflight %d queued %d, want 3/0", ts[1].InFlight, ts[1].Queued)
	}
	if len(picks) != 5 {
		t.Fatalf("picks = %d, want 5", len(picks))
	}
	// One completion releases one slot: exactly one more drain.
	ts[0].InFlight--
	more := PlanSubmitBatch(ts, 0, nil)
	if !reflect.DeepEqual(more, []int{0}) {
		t.Fatalf("post-release picks = %v, want [0]", more)
	}
}

func TestNormalizeTenants(t *testing.T) {
	got := core.NormalizeTenants([]core.TenantSpec{
		{Name: "z", Weight: 99},
		{Name: "a"},
		{Name: ""},
		{Name: "z", Weight: 2}, // duplicate: first wins
		{Name: "m", Weight: -3},
	}, MaxTenantWeight)
	if len(got) != 3 || got[0].Name != "a" || got[1].Name != "m" || got[2].Name != "z" {
		t.Fatalf("normalize order: %+v", got)
	}
	if got[0].Weight != 1 || got[1].Weight != 1 || got[2].Weight != MaxTenantWeight {
		t.Fatalf("normalize weights: %+v", got)
	}
}

func TestTenantTraceFormats(t *testing.T) {
	if got := TraceAdmit("acme", AdmitDecision{Verdict: AdmitShed, Reason: "queue-full"}); got != "admit tenant=acme verdict=shed reason=queue-full" {
		t.Fatalf("TraceAdmit = %q", got)
	}
	if got := TraceNextTenant("acme", 720720, 3); got != "tenant pick=acme v=720720 queued=3" {
		t.Fatalf("TraceNextTenant = %q", got)
	}
}
