package policy

import (
	"repro/internal/core"
)

// Filter restricts candidate workers for a placement decision (retry
// avoid-placement, simulator admission caps). nil admits everyone.
type Filter func(w *WorkerView) bool

// Excluding returns a Filter rejecting one worker ID, or nil when the
// ID is empty — the "avoid the worker that just failed this spec"
// retry rule expressed as a view filter.
func Excluding(id string) Filter {
	if id == "" {
		return nil
	}
	return func(w *WorkerView) bool { return w.ID != id }
}

func admits(w *WorkerView, f Filter) bool {
	return w != nil && w.Alive && (f == nil || f(w))
}

// StageMode says how one input object reaches a destination worker.
type StageMode int

const (
	// StageReady: already cached or in flight to the destination —
	// nothing to send.
	StageReady StageMode = iota
	// StagePeer: fetch from the chosen peer source (spanning tree).
	StagePeer
	// StageDirect: manager sends the bytes itself.
	StageDirect
	// StageWait: do not start a copy now — either the object's first
	// copy is in flight elsewhere (wait for a peer source to appear,
	// §3.3) or the manager's own link is saturated.
	StageWait
	// StageRef: proxy-object input (§15) — the bytes never transited
	// the manager, so the per-shard view cannot plan the copy. The
	// executing driver resolves the source through the global RefTable
	// (PlanResolve), which owns the holder set and tier state. Ref
	// stages never block placement and never gate on transfer caps.
	StageRef
)

// StageFile is one per-object staging decision. Spec carries the
// original file spec so the executing driver has the object payload
// and cache/unpack flags without re-deriving them.
type StageFile struct {
	Dst    *WorkerView
	Object string
	Mode   StageMode
	Src    *WorkerView // set when Mode == StagePeer
	Spec   core.FileSpec
}

// PickSource selects a peer source for one object headed to dst, or
// nil when the manager must send it. Candidates are live replica
// holders under the per-source transfer cap N; with cluster awareness
// the same cluster is preferred and a cross-cluster peer is used only
// when the manager's own link is saturated (Figure 3c — otherwise the
// manager, equidistant from all clusters, sends the copy itself).
// Ties break on minimum worker ID so both engines choose identically.
func (v *ClusterView) PickSource(dst *WorkerView, obj string) *WorkerView {
	var same, cross *WorkerView
	for _, src := range v.Holders[obj] { //vinelint:unordered min-ID fold is order-independent by construction
		if src == dst || !src.Alive || src.TransfersOut >= v.Opts.PeerTransferCap {
			continue
		}
		if !v.Opts.ClusterAware || src.Cluster == dst.Cluster {
			if same == nil || src.ID < same.ID {
				same = src
			}
			continue
		}
		if cross == nil || src.ID < cross.ID {
			cross = src
		}
	}
	if same != nil {
		return same
	}
	if cross != nil && v.Opts.ManagerSourceCap > 0 && v.ManagerSends >= v.Opts.ManagerSourceCap {
		return cross
	}
	return nil
}

// PlanStage decides how one input reaches dst. committed is the set of
// objects earlier decisions in the same batch already put in flight to
// dst (so one placement pass doesn't double-send a shared input).
// Files without a backing object are placement-only hints and stage as
// ready.
func (v *ClusterView) PlanStage(dst *WorkerView, fs core.FileSpec, committed map[string]bool) StageFile {
	if fs.Object == nil {
		return StageFile{Dst: dst, Mode: StageReady, Spec: fs}
	}
	id := fs.Object.ID
	if dst.HasFile(id) || committed[id] {
		return StageFile{Dst: dst, Object: id, Mode: StageReady, Spec: fs}
	}
	if fs.ByRef {
		return StageFile{Dst: dst, Object: id, Mode: StageRef, Spec: fs}
	}
	if fs.Cache && fs.PeerTransfer && v.Opts.PeerTransfers {
		if src := v.PickSource(dst, id); src != nil {
			return StageFile{Dst: dst, Object: id, Mode: StagePeer, Src: src, Spec: fs}
		}
		// First-copy suppression: a copy is already in flight somewhere;
		// wait for it to confirm and become a peer source rather than
		// pushing a redundant copy from the manager (§3.3).
		if v.PendingCopies[id] > 0 {
			return StageFile{Dst: dst, Object: id, Mode: StageWait, Spec: fs}
		}
	}
	if v.Opts.ManagerSourceCap > 0 && v.ManagerSends >= v.Opts.ManagerSourceCap {
		return StageFile{Dst: dst, Object: id, Mode: StageWait, Spec: fs}
	}
	return StageFile{Dst: dst, Object: id, Mode: StageDirect, Spec: fs}
}

// PlanStageAll plans every input of a placement on dst. ok is false if
// any input must wait; blocked lists the objects holding it up.
func (v *ClusterView) PlanStageAll(dst *WorkerView, inputs []core.FileSpec, committed map[string]bool) (stages []StageFile, blocked []string, ok bool) {
	ok = true
	for _, fs := range inputs {
		sf := v.PlanStage(dst, fs, committed)
		switch sf.Mode {
		case StageWait:
			ok = false
			blocked = append(blocked, sf.Object)
		case StagePeer, StageDirect, StageRef:
			stages = append(stages, sf)
			if committed != nil {
				committed[sf.Object] = true
			}
		}
	}
	return stages, blocked, ok
}

// PlaceTask is the decision for one stateless task: run it on Worker
// after executing Stages. A zero Worker with Blocked set means "wait
// for those objects"; a zero Worker with no Blocked means no candidate
// fits right now.
type PlaceTask struct {
	Worker  *WorkerView
	Stages  []StageFile
	Blocked []string
}

// PlanTask places a stateless task: walk the consistent-hash ring from
// the task's key and take the first live worker that passes the filter,
// fits the resources, and can have all inputs staged now. Workers
// blocked only on in-flight objects contribute to Blocked so the
// driver can retry on arrival.
func (v *ClusterView) PlanTask(key string, res core.Resources, inputs []core.FileSpec, f Filter) PlaceTask {
	var out PlaceTask
	seen := v.clearedSeen()
	ring := v.Ring.AppendSequence(v.ringScratch[:0], key, 0)
	v.ringScratch = ring
	for _, id := range ring {
		w := v.Workers[id]
		if !admits(w, f) || !res.Fits(w.Avail()) {
			continue
		}
		stages, blocked, ok := v.PlanStageAll(w, inputs, v.clearedStage())
		if !ok {
			for _, obj := range blocked {
				if !seen[obj] {
					seen[obj] = true
					out.Blocked = append(out.Blocked, obj)
				}
			}
			continue
		}
		out.Worker = w
		out.Stages = stages
		out.Blocked = nil
		return out
	}
	return out
}

// PlaceInvocation is the decision for one function invocation that
// found a ready library instance with a free slot.
type PlaceInvocation struct {
	Worker *WorkerView
	Lib    *LibraryView
}

// PlaceReady picks the ready instance for an invocation of lib: the
// worker offering the most free ready slots (spread load), minimum
// worker ID on ties — the unified deterministic order both engines
// share (satellite 1). Zero result means no ready capacity.
func (v *ClusterView) PlaceReady(lib string, f Filter) PlaceInvocation {
	var best *WorkerView
	for _, w := range v.ReadyFree[lib] { //vinelint:unordered max-slots/min-ID fold is order-independent by construction
		if !admits(w, f) {
			continue
		}
		lv := w.Libs[lib]
		if lv == nil || lv.FreeReady <= 0 {
			continue
		}
		if best == nil {
			best = w
			continue
		}
		bf := best.Libs[lib].FreeReady
		if lv.FreeReady > bf || (lv.FreeReady == bf && w.ID < best.ID) {
			best = w
		}
	}
	if best == nil {
		return PlaceInvocation{}
	}
	return PlaceInvocation{Worker: best, Lib: best.Libs[lib]}
}

// EvictCandidate names one idle library instance to remove from a
// worker to make room for a deploy (§3.5.2).
type EvictCandidate struct {
	Worker *WorkerView
	Lib    string
}

// PlanEviction plans which idle libraries to evict from w so that need
// fits. Candidates are ready instances with no running invocations,
// taken in sorted name order until the deploy fits; ok reports whether
// it does. The plan is all-or-nothing: drivers execute it only when ok,
// so a deploy that still cannot fit evicts nothing.
func (v *ClusterView) PlanEviction(w *WorkerView, wantLib string, need core.Resources) (evict []EvictCandidate, ok bool) {
	avail := w.Avail()
	if need.Fits(avail) {
		return nil, true
	}
	for _, name := range core.SortedKeys(w.Libs) {
		lv := w.Libs[name]
		if name == wantLib || !lv.Ready || lv.SlotsUsed > 0 {
			continue
		}
		evict = append(evict, EvictCandidate{Worker: w, Lib: name})
		avail = avail.Add(lv.Res)
		if need.Fits(avail) {
			return evict, true
		}
	}
	return evict, need.Fits(avail)
}

// DeploySpec describes the library a deploy would install: its
// per-instance resource ask (zero means "the whole worker") and the
// files an instance needs on the destination.
type DeploySpec struct {
	Name  string
	Res   core.Resources
	Files []core.FileSpec
}

// DeployLibrary is the decision to install a library instance on
// Worker: evict Evict first, then execute Stages, then install with
// resource commitment Res. A zero Worker means no deploy is possible
// now; Blocked lists objects whose arrival could unblock one.
type DeployLibrary struct {
	Worker  *WorkerView
	Res     core.Resources
	Stages  []StageFile
	Evict   []EvictCandidate
	Blocked []string
}

// PlanDeploy picks the worker for a new instance of spec: skip
// entirely when every worker is saturated (LibFull guard), else walk
// the ring from the library name and take the first live worker below
// its instance cap whose files can be staged and whose resources fit —
// evicting idle foreign libraries if allowed and sufficient.
func (v *ClusterView) PlanDeploy(spec DeploySpec, f Filter) DeployLibrary {
	var out DeployLibrary
	if v.LibFull[spec.Name] >= len(v.Workers) {
		return out
	}
	seen := v.clearedSeen()
	ring := v.Ring.AppendSequence(v.ringScratch[:0], spec.Name, 0)
	v.ringScratch = ring
	for _, id := range ring {
		w := v.Workers[id]
		if !admits(w, f) {
			continue
		}
		if lv := w.Libs[spec.Name]; lv != nil && lv.MaxInstances > 0 && lv.Instances >= lv.MaxInstances {
			continue
		}
		need := spec.Res
		if need == (core.Resources{}) {
			need = w.Total
		}
		stages, blocked, ok := v.PlanStageAll(w, spec.Files, v.clearedStage())
		if !ok {
			for _, obj := range blocked {
				if !seen[obj] {
					seen[obj] = true
					out.Blocked = append(out.Blocked, obj)
				}
			}
			continue
		}
		evict, fits := []EvictCandidate(nil), need.Fits(w.Avail())
		if !fits && v.Opts.EvictEmptyLibraries {
			evict, fits = v.PlanEviction(w, spec.Name, need)
		}
		if !fits {
			continue
		}
		out.Worker = w
		out.Res = need
		out.Stages = stages
		out.Evict = evict
		out.Blocked = nil
		return out
	}
	return out
}
