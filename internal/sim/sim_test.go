package sim

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Reduced-scale configs keep the paper's worker counts but 1/20 of the
// invocations, so contention shapes survive while tests stay fast.
func lnni(level core.ReuseLevel, workers, n int) Config {
	return Config{
		App: apps.LNNI(), Level: level, Workers: workers,
		SlotsPerWorker: 16, Invocations: n, Units: 16,
		Seed: 7, PeerTransfers: true,
	}
}

func TestLevelsOrdering(t *testing.T) {
	n := 5000
	r1 := Run(lnni(core.L1, 150, n))
	r2 := Run(lnni(core.L2, 150, n))
	r3 := Run(lnni(core.L3, 150, n))
	if !(r1.TotalTime > r2.TotalTime && r2.TotalTime > r3.TotalTime) {
		t.Errorf("expected L1 > L2 > L3 totals, got %.0f / %.0f / %.0f",
			r1.TotalTime, r2.TotalTime, r3.TotalTime)
	}
	if !(r1.Summary.Mean > r2.Summary.Mean && r2.Summary.Mean > r3.Summary.Mean) {
		t.Errorf("expected mean runtimes L1 > L2 > L3, got %.2f / %.2f / %.2f",
			r1.Summary.Mean, r2.Summary.Mean, r3.Summary.Mean)
	}
	// L3's per-invocation cost must be in the seconds range while L1's
	// is tens of seconds (Table 4's shape). At this reduced scale a
	// larger fraction of invocations are cold (library startup), so the
	// bound is looser than the paper's 4.77 s steady-state mean.
	if r3.Summary.Mean > 10 {
		t.Errorf("L3 mean %.2f too high", r3.Summary.Mean)
	}
	if r1.Summary.Mean < 12 {
		t.Errorf("L1 mean %.2f too low", r1.Summary.Mean)
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(lnni(core.L3, 50, 2000))
	b := Run(lnni(core.L3, 50, 2000))
	if a.TotalTime != b.TotalTime {
		t.Errorf("same seed, different totals: %f vs %f", a.TotalTime, b.TotalTime)
	}
	if len(a.Times) != len(b.Times) {
		t.Fatalf("different result counts")
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("runtime %d differs: %f vs %f", i, a.Times[i], b.Times[i])
		}
	}
	c := lnni(core.L3, 50, 2000)
	c.Seed = 8
	if Run(c).TotalTime == a.TotalTime {
		t.Errorf("different seeds produced identical totals (suspicious)")
	}
}

func TestAllInvocationsComplete(t *testing.T) {
	for _, level := range []core.ReuseLevel{core.L1, core.L2, core.L3} {
		r := Run(lnni(level, 20, 1500))
		if len(r.Times) != 1500 {
			t.Errorf("%v: %d of 1500 invocations completed", level, len(r.Times))
		}
		for i, x := range r.Times {
			if x <= 0 {
				t.Fatalf("%v: invocation %d has non-positive runtime %f", level, i, x)
			}
		}
	}
}

func TestL3LibraryMetrics(t *testing.T) {
	r := Run(lnni(core.L3, 150, 20000))
	if r.LibsDeployed == 0 {
		t.Fatalf("no libraries deployed")
	}
	if r.LibsDeployed > 150*16 {
		t.Errorf("deployed %d libraries exceeds slot count", r.LibsDeployed)
	}
	// Share value grows linearly (Figure 11).
	slope, _, corr := r.ShareSeries.LinearFit()
	if corr < 0.98 {
		t.Errorf("share value not linear: r = %f", corr)
	}
	if slope <= 0 {
		t.Errorf("share value slope %f not positive", slope)
	}
	final := r.ShareSeries.Last().Y
	expect := float64(20000) / float64(r.LibsDeployed)
	if final < expect*0.8 || final > expect*1.2 {
		t.Errorf("final share value %f, expected about %f", final, expect)
	}
	// Deployed libraries ramp up and then plateau (Figure 10): the
	// value at 30%% completion is already most of the final value.
	at30 := r.DeployedSeries.YAt(20000 * 0.3)
	if at30 < 0.8*float64(r.LibsDeployed) {
		t.Errorf("deployment ramp too slow: %f at 30%%, final %d", at30, r.LibsDeployed)
	}
}

func TestL1UsesSharedFSOnly(t *testing.T) {
	r := Run(lnni(core.L1, 20, 500))
	if r.SharedFSBytes == 0 {
		t.Errorf("L1 read nothing from the shared FS")
	}
	if r.EnvDirect != 0 || r.EnvPeer != 0 {
		t.Errorf("L1 should not distribute environments (%d direct, %d peer)", r.EnvDirect, r.EnvPeer)
	}
	r2 := Run(lnni(core.L2, 20, 500))
	if r2.SharedFSBytes != 0 {
		t.Errorf("L2 should not touch the shared FS, read %f bytes", r2.SharedFSBytes)
	}
	if r2.EnvDirect+r2.EnvPeer != 20 {
		t.Errorf("L2 should deliver the environment to each worker once, got %d+%d", r2.EnvDirect, r2.EnvPeer)
	}
}

func TestPeerTransfersFormSpanningTree(t *testing.T) {
	cfg := lnni(core.L3, 100, 3000)
	cfg.PeerTransfers = true
	cfg.ManagerSourceCap = 1
	r := Run(cfg)
	if r.EnvDirect+r.EnvPeer != 100 {
		t.Fatalf("expected 100 env deliveries, got %d", r.EnvDirect+r.EnvPeer)
	}
	if r.EnvDirect > 10 {
		t.Errorf("manager sent %d copies; the tree should carry most", r.EnvDirect)
	}
	off := lnni(core.L3, 100, 3000)
	off.PeerTransfers = false
	off.ManagerSourceCap = 1 << 30
	r2 := Run(off)
	if r2.EnvPeer != 0 {
		t.Errorf("peer transfers disabled but %d happened", r2.EnvPeer)
	}
	if r2.EnvDirect != 100 {
		t.Errorf("manager-only mode sent %d copies, want 100", r2.EnvDirect)
	}
}

func TestMoreWorkersFlatForL3(t *testing.T) {
	// Figure 9's key shape: L3 gains little beyond 50 workers because
	// the manager, not compute, is the limit.
	n := 5000
	t50 := Run(lnni(core.L3, 50, n)).TotalTime
	t150 := Run(lnni(core.L3, 150, n)).TotalTime
	if t150 < t50*0.5 {
		t.Errorf("L3 sped up too much with workers (%.0f -> %.0f): should be manager-bound", t50, t150)
	}
	// But very few workers do hurt (slot-bound region).
	t10 := Run(lnni(core.L3, 10, n)).TotalTime
	if t10 < t50*1.3 {
		t.Errorf("10 workers (%.0f) should be clearly slower than 50 (%.0f)", t10, t50)
	}
}

func TestUnitsScaleExecution(t *testing.T) {
	// Few workers and many invocations keep the cold fraction small so
	// the means reflect steady-state execution.
	short := Run(lnni(core.L3, 10, 3000))
	cfg := lnni(core.L3, 10, 3000)
	cfg.Units = 160
	long := Run(cfg)
	ratio := long.Summary.Mean / short.Summary.Mean
	if ratio < 5 || ratio > 15 {
		t.Errorf("160 vs 16 inferences mean ratio %.1f, want ~10", ratio)
	}
}

func TestMachineHeterogeneityMatters(t *testing.T) {
	fast := lnni(core.L3, 50, 2000)
	fast.Machines = cluster.SampleBiased(cluster.Table3(), 50, "g2-epyc7543", 1.0)
	slow := lnni(core.L3, 50, 2000)
	slow.Machines = cluster.SampleBiased(cluster.Table3(), 50, "g5-xeon4316", 1.0)
	rf := Run(fast)
	rs := Run(slow)
	if rs.Summary.Mean <= rf.Summary.Mean {
		t.Errorf("slow machines (%.2f) should have larger mean than fast (%.2f)",
			rs.Summary.Mean, rf.Summary.Mean)
	}
}

func TestExecDrawsMakeLevelsComparable(t *testing.T) {
	app := apps.LNNI()
	draws := make([]float64, 1000)
	for i := range draws {
		draws[i] = 3.0
	}
	cfg := lnni(core.L3, 20, 1000)
	cfg.App = app
	cfg.ExecDraws = draws
	r := Run(cfg)
	// With constant draws, runtime variation comes only from machine
	// scaling — min is the fastest machine's 3.0 s.
	if r.Summary.Min < 2.9 || r.Summary.Min > 3.3 {
		t.Errorf("min runtime %f with constant 3.0s draws on g2 machines", r.Summary.Min)
	}
}

func TestExaMolModel(t *testing.T) {
	cfg := Config{
		App: apps.ExaMol(), Level: core.L2, Workers: 50,
		SlotsPerWorker: 8, Invocations: 1000, Seed: 11, PeerTransfers: true,
	}
	r := Run(cfg)
	if r.Summary.Mean < 100 || r.Summary.Mean > 600 {
		t.Errorf("ExaMol task mean %.0f outside minutes range", r.Summary.Mean)
	}
	cfg.Level = core.L1
	r1 := Run(cfg)
	if r1.TotalTime <= r.TotalTime {
		t.Errorf("ExaMol L1 (%.0f) should be slower than L2 (%.0f)", r1.TotalTime, r.TotalTime)
	}
}

func TestClusterTopologyConstrainsTransfers(t *testing.T) {
	cfg := lnni(core.L3, 60, 2000)
	cfg.Clusters = 3
	cfg.CrossClusterBytesPerSec = 50e6
	r := Run(cfg)
	if len(r.Times) != 2000 {
		t.Fatalf("clustered run incomplete: %d", len(r.Times))
	}
	flat := lnni(core.L3, 60, 2000)
	rf := Run(flat)
	if r.TotalTime < rf.TotalTime {
		t.Errorf("constrained cross-cluster links should not be faster (%.0f vs %.0f)", r.TotalTime, rf.TotalTime)
	}
}

func TestBreakdownsPopulated(t *testing.T) {
	r := Run(Config{
		App: apps.LNNI(), Level: core.L2, Workers: 1, SlotsPerWorker: 1,
		Invocations: 2, Units: 16, Seed: 3, PeerTransfers: true,
	})
	if r.ColdBreakdown.Worker < 10 {
		t.Errorf("cold worker overhead %.2f should include the ~15s unpack", r.ColdBreakdown.Worker)
	}
	if r.HotBreakdown.Exec <= 0 {
		t.Errorf("hot exec missing")
	}
	if r.HotBreakdown.Worker != 0 {
		t.Errorf("hot worker overhead should be ~0, got %f", r.HotBreakdown.Worker)
	}
	r3 := Run(Config{
		App: apps.LNNI(), Level: core.L3, Workers: 1, SlotsPerWorker: 1,
		Invocations: 2, Units: 16, Seed: 3, PeerTransfers: true,
	})
	if r3.LibBreakdown.Setup < 1 {
		t.Errorf("library setup %.2f should include the ~2.7s context setup", r3.LibBreakdown.Setup)
	}
	if r3.InvBreakdown.Exec <= 0 || r3.InvBreakdown.Exec > r.HotBreakdown.Exec {
		t.Errorf("L3 invocation exec %.2f should be positive and below L2 hot exec %.2f",
			r3.InvBreakdown.Exec, r.HotBreakdown.Exec)
	}
}
