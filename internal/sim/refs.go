package sim

import (
	"repro/internal/core"
	"repro/internal/policy"
)

// simRefs is the replay's mirror of the manager's ref plane (DESIGN.md
// §15): the same pure policy.RefTable driven at the same points —
// ownership transfer on by-ref completions, resolves at ref-stage
// execution, holder retraction plus a fresh resolve on failed fetches,
// rehoming on owner death — recording into its own recorder so the
// global ref decision stream stays a separate trace, compared against
// Manager.RefDecisions line for line by the differential harness.
//
// The mirror carries no transport: the manager's spill/adopt messages
// (MsgSpillObject/MsgOwnObject) have no view or table effect — the
// catalog re-tiers at decision time — so the replay simply drops them.
type simRefs struct {
	tab *policy.RefTable
	rec *policy.Recorder
}

func newSimRefs(ownedBytesCap int64) *simRefs {
	return &simRefs{tab: policy.NewRefTable(ownedBytesCap), rec: &policy.Recorder{}}
}

// spec rebuilds the ref's input binding from the catalog, so both
// engines plan over identical FileSpecs. The ref must exist: the
// harness only submits consumers for refs already created.
func (r *simRefs) spec(id string) core.FileSpec {
	ref := r.tab.Get(id)
	if ref == nil {
		panic("sim: ref input " + id + " is not in the replay's ref catalog")
	}
	return core.RefSpec(&core.ObjectRef{ID: ref.ID, Name: ref.Name, Size: ref.Size})
}

// result is the ownership transfer on a by-ref completion — the
// manager's refPlane.noteResult. Cascaded spills re-tiered the catalog
// at decision time; the spill messages themselves carry no state.
func (r *simRefs) result(workerID string, ref core.ObjectRef) {
	r.tab.NoteRefResult(workerID, ref.ID, ref.Name, ref.Size, r.rec)
}

// stage resolves one proxy-object input at ref-stage execution — the
// manager's execRefStageLocked. catalog is always false here: the
// replay's manager never holds by-ref bytes, so ResolveDirect cannot
// arise. Peer and shared fetches mark the in-flight copy (the ack
// plumbing's record); ready and lost stage nothing — a lost ref's
// dispatch proceeds and fails retryably on the worker. A resolved peer
// source is always live in the synchronous replay (rehome retracts a
// dead owner's records before any later resolve), so the manager's
// dead-source fallback never fires.
func (r *simRefs) stage(st *state, dst *wstate, id string) {
	d := r.tab.PlanResolve(dst.id, id, false, r.rec)
	switch d.Mode {
	case policy.ResolvePeer, policy.ResolveShared, policy.ResolveDirect:
		st.view.NotePending(dst.v, id)
	}
}

// restage recovers a failed ref fetch — the manager's
// restageRefLocked: the walk proved the replica records unreliable, so
// retract every non-owner holder (untraced, like AddRefHolder) and
// plan a fresh traced resolve against what survives — the owner's
// pinned copy, the shared tier, or lost.
func (r *simRefs) restage(st *state, w *wstate, id string) {
	ref := r.tab.Get(id)
	if ref == nil {
		return
	}
	for _, h := range core.SortedKeys(ref.Holders) {
		if h != ref.Owner {
			r.tab.DropRefHolder(h, id)
		}
	}
	d := r.tab.PlanResolve(w.id, id, false, r.rec)
	switch d.Mode {
	case policy.ResolvePeer, policy.ResolveShared, policy.ResolveDirect:
		st.view.NotePending(w.v, id)
	}
}

// rehome re-homes every ref a dead worker owned and drops its held
// replicas — the manager's refPlane.rehome, called before the dead
// worker's queue teardown. A no-op (and trace-silent) when the worker
// owned and held nothing.
func (r *simRefs) rehome(deadID string) {
	r.tab.PlanRehome(deadID, r.rec)
}

// decisions returns a copy of the recorded ref decision stream.
func (r *simRefs) decisions() []string {
	if r == nil || r.rec == nil {
		return nil
	}
	return append([]string(nil), r.rec.Decisions...)
}
