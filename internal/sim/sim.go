// Package sim is the scale simulator: it replays the paper's
// experiments (up to 100k invocations on 150 heterogeneous workers)
// under a deterministic virtual clock, and the calibrated cost models
// of internal/apps. Contention is modeled with processor-sharing
// resources: the shared filesystem (bandwidth + IOPS), the manager's
// NIC, per-worker NICs and local disks.
//
// The real engine (internal/manager, internal/worker) demonstrates the
// mechanisms; this simulator reproduces the paper's numbers. Both are
// thin drivers of the same pure policy core: the simulator maintains a
// policy.ClusterView mirroring its virtual cluster and calls
// internal/policy for every scheduling decision — task placement,
// ready-instance selection, library deploys, peer-source picks,
// first-copy suppression — exactly as the manager does. This file only
// executes those decisions under the virtual clock; replay.go drives
// the same state machine from an explicit event list so the
// differential harness can diff decision traces against the real
// manager.
package sim

import (
	"strconv"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// Config parameterizes one simulated run.
type Config struct {
	App   *apps.CostModel
	Level core.ReuseLevel
	// Workers is the number of TaskVine workers (each 32 cores / 64 GB,
	// §4.2).
	Workers int
	// SlotsPerWorker is the concurrent invocation capacity (16 for
	// LNNI's 2-core invocations, 8 for ExaMol's 4-core ones).
	SlotsPerWorker int
	// Invocations is the workload size.
	Invocations int
	// Units scales one invocation's work (inferences per invocation).
	Units int
	Seed  uint64
	// PeerTransfers enables worker-to-worker environment distribution
	// (Figure 3b); off forces manager-only (3a).
	PeerTransfers bool
	// PeerCap is the per-source concurrent transfer cap N.
	PeerCap int
	// ManagerSourceCap is how many environment copies the manager sends
	// concurrently itself (1 = the paper's sequential initial sends).
	ManagerSourceCap int
	// FetchConcurrency bounds how many inbound transfers one worker
	// runs concurrently — the virtual-time mirror of the worker data
	// plane's bounded fetch pool (internal/dataplane). Transfers beyond
	// the cap queue FIFO on the destination; staging *decisions* are
	// made (and traced) before the queueing, so the bound shapes timing
	// only, never decision order.
	FetchConcurrency int
	// Machines overrides the default Table 3 proportional sample.
	Machines []cluster.Machine
	// Clusters splits workers into k equal network-locality groups with
	// constrained cross-group transfers (Figure 3c). 0 or 1 = one
	// cluster.
	Clusters int
	// CrossClusterBytesPerSec is the constrained inter-cluster
	// bandwidth (used when Clusters > 1).
	CrossClusterBytesPerSec float64
	// SeriesSamples is the number of points recorded for the
	// deployed-libraries and share-value series.
	SeriesSamples int
	// KeepTimes retains every invocation runtime (Table 4 / Figure 7);
	// disable to save memory on huge sweeps.
	DropTimes bool
	// MaxEvents bounds the event count (0 = a generous default backstop).
	MaxEvents int64
	// FSPerFlowBW caps one client's shared-FS streaming rate
	// (bytes/second; default 35 MB/s — the effective per-client rate of
	// a many-small-file read pattern on the paper's Panasas system).
	FSPerFlowBW float64
	// FSPerFlowOps caps one client's shared-FS metadata operation rate
	// (default 200/s — latency-bound RPCs).
	FSPerFlowOps float64
	// ExecDraws optionally fixes the per-invocation base execution
	// times (reference-machine seconds): invocation i uses ExecDraws[i].
	// Experiments use this as common random numbers so different reuse
	// levels face the identical workload and differences reflect only
	// the mechanisms.
	ExecDraws []float64
	// EvictIdleLibraries ablates §3.5.2's empty-library eviction when
	// running two-app mixes (used by the ablation experiments).
	// (Single-app runs never evict.)
	EvictIdleLibraries bool
	// DecisionTrace, when set, records every scheduling decision the
	// policy core hands this run (differential and golden tests). nil
	// keeps tracing off the dispatch path.
	DecisionTrace *policy.Recorder
	// Batched makes Replay drains plan through the batched policy entry
	// points (PlanTaskBatch / PlaceReadyBatch) the sharded manager uses,
	// instead of one decision at a time. The batch contract is strict
	// sequential equivalence, so the decision trace must be identical
	// either way — the batched-vs-unbatched differential test proves it
	// on live random traces. Replay-only; the timed path is untouched.
	Batched bool
	// Tenants enables the submission plane (DESIGN.md §14): every
	// arrival passes admission control and waits in its tenant's plane
	// queue until the weighted fair-share drain releases it. Replay
	// drivers mirror the manager's plane exactly (tenant specs arrive
	// via the *Tenant entry points); the timed simulator replaces
	// Invocations with per-tenant Poisson arrival processes.
	Tenants []core.TenantSpec
	// TenantRates are per-tenant Poisson arrival rates in
	// invocations/second, index-aligned with Tenants as given (timed
	// runs only; unset entries default to 1/s).
	TenantRates []float64
	// TenantInvocations are per-tenant arrival counts, index-aligned
	// with Tenants as given (timed runs only). Their sum replaces
	// Invocations as the workload size.
	TenantInvocations []int
	// RefOwnedBytesCap bounds the owned (cache-tier) proxy-object bytes
	// per worker in the replay's ref mirror — the manager's
	// Options.RefOwnedBytesCap. 0 means unbounded (no spills).
	RefOwnedBytesCap int64
}

func (c *Config) defaults() {
	if c.SlotsPerWorker == 0 {
		c.SlotsPerWorker = 16
	}
	if c.Units == 0 {
		c.Units = 16
	}
	if c.PeerCap == 0 {
		c.PeerCap = 3
	}
	if c.ManagerSourceCap == 0 {
		c.ManagerSourceCap = 1
	}
	if c.FetchConcurrency == 0 {
		c.FetchConcurrency = 4
	}
	if c.SeriesSamples == 0 {
		c.SeriesSamples = 200
	}
	if c.Seed == 0 {
		c.Seed = 0xC0FFEE
	}
	if c.FSPerFlowBW == 0 {
		c.FSPerFlowBW = 60e6
	}
	if c.FSPerFlowOps == 0 {
		c.FSPerFlowOps = 200
	}
	if len(c.Tenants) > 0 && c.Invocations == 0 {
		for _, n := range c.TenantInvocations {
			c.Invocations += n
		}
	}
}

// Breakdown is the Table 5 style per-phase decomposition, in seconds.
type Breakdown struct {
	Transfer float64 // invocation & data transfer
	Worker   float64 // worker-side environment setup (unpack, sandbox)
	Setup    float64 // library/invocation state reconstruction
	Exec     float64 // function execution
}

// Total sums the phases.
func (b Breakdown) Total() float64 { return b.Transfer + b.Worker + b.Setup + b.Exec }

// Result is everything a run produces.
type Result struct {
	Level       core.ReuseLevel
	Workers     int
	Invocations int
	Units       int

	// TotalTime is the application execution time (Figure 6/8/9).
	TotalTime float64
	// Times are per-invocation runtimes, slot-assignment to completion
	// (Table 4 / Figure 7).
	Times   []float64
	Summary metrics.Summary

	// DeployedSeries is deployed library instances vs completed
	// invocations (Figure 10); ShareSeries is average share value vs
	// completed invocations (Figure 11). L3 only.
	DeployedSeries metrics.Series
	ShareSeries    metrics.Series
	LibsDeployed   int

	// ColdBreakdown and HotBreakdown decompose the first and the
	// steady-state invocation on a worker (Table 5 L2 rows); LibBreakdown
	// and InvBreakdown decompose L3's library install and per-invocation
	// costs (Table 5 L3 rows).
	ColdBreakdown Breakdown
	HotBreakdown  Breakdown
	LibBreakdown  Breakdown
	InvBreakdown  Breakdown

	// ManagerBusySeconds is time the manager spent serialized on
	// dispatch+retrieval.
	ManagerBusySeconds float64
	// SubmitsShed and SubmitsThrottled count submission-plane admission
	// outcomes (tenant runs only): shed arrivals never enter the
	// engine; throttled ones are admitted with backpressure signaled.
	SubmitsShed      int
	SubmitsThrottled int
	// EnvDirect and EnvPeer count environment transfers by source.
	EnvDirect int
	EnvPeer   int
	// SharedFSBytes is the total volume read from the shared FS.
	SharedFSBytes float64
	// PeakInFlight is the maximum concurrent invocations observed.
	PeakInFlight int
}

// state is the live simulation.
type state struct {
	cfg Config
	S   *event.Sim
	rng *event.RNG

	fs         *event.DualFairShare
	managerNIC *event.FairShare
	crossNIC   *event.FairShare

	workers []*wstate
	byID    map[string]*wstate
	// machines is the sampled (and shuffled) machine pool; nextIdx is
	// the next worker index, so churn (Replay.AddWorker) continues the
	// "wNNNN" numbering instead of reusing dead IDs.
	machines []cluster.Machine
	nextIdx  int

	// view mirrors the virtual cluster for the policy core: worker
	// resources are invocation slots (1 core = 1 slot), the library's
	// per-slot instances, the environment tarball's replicas and
	// in-flight copies. All placement decisions read it.
	view *policy.ClusterView
	rec  *policy.Recorder
	// envSpec is the environment tarball as a policy-visible file spec
	// (L2/L3); envObj is its identity.
	envSpec core.FileSpec
	envObj  string
	lib     string

	pending    int
	nextInv    int
	mgrBusy    bool
	completed  int
	inFlight   int
	sampleStep int

	// plane is the timed simulator's submission plane (Config.Tenants);
	// the replay drivers keep their planes on the Replay/ShardedReplay
	// composites instead, with their own recorders, so the plane trace
	// stays a separate stream exactly as the manager's is.
	plane *simPlane
	// trackOwners threads admitted-spec identity through the pending
	// pool: owners is the FIFO of admitted-but-unplaced invocation refs
	// (head-indexed like the manager's tenantQueue). The timed path
	// pops at bind; replay pops at each recorded placement, mirroring
	// the manager placing its queue head at every TracePlace.
	trackOwners bool
	owners      []specRef
	ownersHead  int
	// arrivalsLeft and nextSpecID drive the timed per-tenant Poisson
	// arrival processes.
	arrivalsLeft []int
	nextSpecID   int64

	// replay bypasses the virtual clock: decisions and view/slot state
	// advance, timing callbacks do not (replay.go drives transitions).
	replay bool

	// refs is the replay's mirror of the manager's ref plane (refs.go);
	// nil on the timed path, which never builds by-ref inputs.
	refs *simRefs

	res *Result

	coldN, hotN, libN, invN float64
}

type wstate struct {
	idx     int
	id      string
	mach    cluster.Machine
	cluster int
	disk    *event.FairShare
	nic     *event.FairShare

	// v and lv are this worker's entries in the policy view; lv models
	// the application library with one single-slot instance per
	// deploy-committed slot (MaxInstances = SlotsPerWorker), so the
	// policy core sees the same FreeReady quantity the manager
	// publishes for its one multi-slot instance.
	v  *policy.WorkerView
	lv *policy.LibraryView

	hasEnv     bool // environment unpacked and usable
	envReqAt   float64
	envWaiters []func()
	// envSrc is the peer serving the in-flight environment fetch (nil
	// for manager sends); its transfer slot is released on arrival.
	envSrc *wstate
	// dead marks a worker removed by Replay.KillWorker; it stays in
	// st.workers (indexes are stable) but is out of byID and the view.
	dead bool

	// fetchActive/fetchq implement the destination-side transfer bound
	// (Config.FetchConcurrency): inbound transfers beyond the cap wait
	// here FIFO, after their staging decision was already recorded.
	fetchActive int
	fetchq      []func()

	slots []*slot

	// busySlots, freeReady and readySlots are maintained counters so
	// slot selection scans workers, not workers×slots; freeReady is
	// also what the view's ReadyFree index publishes.
	busySlots  int
	freeReady  int
	readySlots int
}

type slot struct {
	w        *wstate
	busy     bool
	libReady bool
	served   int
	invIdx   int    // index of the invocation currently assigned
	key      string // replay only: the bound task's ring key (requeued verbatim on churn)
	// refs are the bound task's proxy-object input IDs (replay only):
	// requeued with the key on churn or retry, and noted as view
	// replicas on the slot's result — the manager's cacheable-input
	// replica notes in onResult.
	refs []string
	// owner and tenant identify the bound spec in tenant runs: owner is
	// the manager-side spec ID (completions free the lowest owner, the
	// differential harness's rule), tenant names whose quota the
	// completion releases.
	owner  int64
	tenant string
}

var oneSlot = core.Resources{Cores: 1}

// takeSlot marks a slot occupied, maintaining the scan counters and
// the worker's view commitment. Commitment follows the manager's
// model: tasks (L1/L2) commit per running task, but L3 commits per
// *installed instance* — charged at deploy time in tryDeploy and held
// across idle periods, exactly like installLibraryLocked — so binding
// or freeing an invocation moves no resources.
func (st *state) takeSlot(w *wstate, sl *slot) {
	sl.busy = true
	w.busySlots++
	if sl.libReady {
		w.freeReady--
	}
	if st.cfg.Level != core.L3 {
		w.v.Commit = w.v.Commit.Add(oneSlot)
	}
	st.syncLib(w)
}

// freeSlot releases a slot.
func (st *state) freeSlot(w *wstate, sl *slot) {
	sl.busy = false
	w.busySlots--
	if sl.libReady {
		w.freeReady++
	}
	if st.cfg.Level != core.L3 {
		w.v.Commit = w.v.Commit.Sub(oneSlot)
	}
	st.syncLib(w)
}

// markLibReady flags a deploy-bound slot's instance as ready — the
// simulator's LibraryAck — and records the resulting invocation
// placement, mirroring the manager placing the queued invocation when
// the ack arrives.
func (st *state) markLibReady(w *wstate, sl *slot) {
	if sl.libReady {
		return
	}
	sl.libReady = true
	w.readySlots++
	if !sl.busy {
		w.freeReady++
	}
	w.lv.Ready = true
	st.syncLib(w)
	if st.rec != nil {
		st.rec.Record(policy.TracePlace(st.lib, policy.PlaceInvocation{Worker: w.v}))
	}
	st.stampOwner(sl)
}

// syncLib republishes the worker's free ready-slot count into the
// view's ReadyFree index (L3 only — tasks have no library).
func (st *state) syncLib(w *wstate) {
	if st.cfg.Level != core.L3 {
		return
	}
	st.view.SetFreeReady(w.v, w.lv, w.freeReady)
}

// firstFree returns the worker's first free slot in slot order,
// optionally restricted to deployed-library slots. Callers invoke it
// only after the counters guarantee a match exists, so the single
// inner scan happens once per dispatch, not once per candidate worker.
func (w *wstate) firstFree(needLib bool) *slot {
	for _, sl := range w.slots {
		if !sl.busy && (!needLib || sl.libReady) {
			return sl
		}
	}
	return nil
}

// Run executes one simulated experiment.
func Run(cfg Config) *Result {
	cfg.defaults()
	st := newState(cfg)
	st.startTenantArrivals()
	st.tryDispatch()
	st.res.TotalTime = st.S.Run()
	if st.plane != nil {
		st.res.SubmitsShed = st.plane.shed
		st.res.SubmitsThrottled = st.plane.throttled
	}
	st.res.Summary = metrics.Summarize(st.res.Times)
	st.finishBreakdowns()
	return st.res
}

// newState builds the initial simulation state.
func newState(cfg Config) *state {
	st := &state{
		cfg: cfg,
		S:   event.NewSim(),
		rng: event.NewRNG(cfg.Seed),
		res: &Result{
			Level:       cfg.Level,
			Workers:     cfg.Workers,
			Invocations: cfg.Invocations,
			Units:       cfg.Units,
		},
		byID: map[string]*wstate{},
		rec:  cfg.DecisionTrace,
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000_000
	}
	st.S.MaxEvents = cfg.MaxEvents
	st.res.DeployedSeries.Name = "deployed-libraries"
	st.res.ShareSeries.Name = "avg-share-value"

	st.view = policy.NewClusterView(policy.Options{
		PeerTransfers:       cfg.PeerTransfers,
		PeerTransferCap:     cfg.PeerCap,
		ClusterAware:        cfg.Clusters > 1,
		EvictEmptyLibraries: cfg.EvictIdleLibraries,
		ManagerSourceCap:    cfg.ManagerSourceCap,
	})
	if cfg.App != nil {
		st.lib = cfg.App.Name
		st.envObj = "env:" + cfg.App.Name
		st.envSpec = core.FileSpec{
			Object: &content.Object{
				ID:          st.envObj,
				Name:        st.envObj,
				LogicalSize: cfg.App.EnvPackedBytes + cfg.App.FuncBlobBytes,
			},
			Cache:        true,
			PeerTransfer: true,
			Unpack:       true,
		}
	}

	// Shared filesystem: the Panasas figures of §4.3 with per-client
	// effective-rate caps.
	st.fs = event.NewDualFairShare(st.S, 84e9/8, cfg.FSPerFlowBW, 94000, cfg.FSPerFlowOps)
	st.managerNIC = event.NewFairShare(st.S, cluster.NIC10GbE, 0)
	if cfg.Clusters > 1 {
		bw := cfg.CrossClusterBytesPerSec
		if bw == 0 {
			bw = cluster.NIC10GbE / 8 // constrained WAN-ish link
		}
		st.crossNIC = event.NewFairShare(st.S, bw, 0)
	}

	machines := cfg.Machines
	if machines == nil {
		// Workers may be 0 (a sharded-replay shard that receives all its
		// workers by AddWorkerNamed): keep at least one machine sampled so
		// mid-run joins have hardware to draw from.
		n := cfg.Workers
		if n < 1 {
			n = 1
		}
		machines = cluster.Sample(cluster.Table3(), n)
	}
	// Deterministically shuffle so machine groups interleave across the
	// dispatch order.
	perm := st.rng
	for i := len(machines) - 1; i > 0; i-- {
		j := perm.Intn(i + 1)
		machines[i], machines[j] = machines[j], machines[i]
	}
	st.machines = machines
	for i := 0; i < cfg.Workers; i++ {
		st.addWorker()
	}

	st.pending = cfg.Invocations
	st.sampleStep = cfg.Invocations / cfg.SeriesSamples
	if st.sampleStep == 0 {
		st.sampleStep = 1
	}
	if !cfg.DropTimes {
		st.res.Times = make([]float64, 0, cfg.Invocations)
	}
	return st
}

// addWorker builds worker nextIdx, registers it in the view (which
// puts it on the placement ring), and returns it. Used both by
// newState and by Replay.AddWorker for mid-run joins.
func (st *state) addWorker() *wstate {
	return st.addWorkerNamed("w" + pad4(st.nextIdx))
}

// addWorkerNamed is addWorker with an explicit ID — the sharded replay
// numbers workers globally (across shards), so a shard cannot derive
// the ID from its own worker count.
func (st *state) addWorkerNamed(id string) *wstate {
	cfg := st.cfg
	i := st.nextIdx
	st.nextIdx++
	m := st.machines[i%len(st.machines)]
	w := &wstate{
		idx:  i,
		id:   id,
		mach: m,
		disk: event.NewFairShare(st.S, m.DiskBytesPerSec, 0),
		nic:  event.NewFairShare(st.S, m.NICBytesPerSec, 0),
	}
	if cfg.Clusters > 1 {
		if i < cfg.Workers {
			w.cluster = i * cfg.Clusters / cfg.Workers
		} else {
			w.cluster = i % cfg.Clusters
		}
	}
	clusterName := ""
	if cfg.Clusters > 1 {
		clusterName = strconv.Itoa(w.cluster)
	}
	w.v = st.view.AddWorker(w.id, clusterName, core.Resources{Cores: cfg.SlotsPerWorker})
	w.lv = &policy.LibraryView{
		Name:         st.lib,
		Slots:        1,
		MaxInstances: cfg.SlotsPerWorker,
		Res:          oneSlot,
	}
	for k := 0; k < cfg.SlotsPerWorker; k++ {
		w.slots = append(w.slots, &slot{w: w})
	}
	st.workers = append(st.workers, w)
	st.byID[w.id] = w
	return w
}

// pad4 renders a worker index as a fixed-width suffix so worker IDs
// sort (and hash) identically across engines.
func pad4(i int) string {
	s := strconv.Itoa(i)
	for len(s) < 4 {
		s = "0" + s
	}
	return s
}

func (st *state) finishBreakdowns() {
	if st.coldN > 0 {
		st.res.ColdBreakdown = scaleBreakdown(st.res.ColdBreakdown, 1/st.coldN)
	}
	if st.hotN > 0 {
		st.res.HotBreakdown = scaleBreakdown(st.res.HotBreakdown, 1/st.hotN)
	}
	if st.libN > 0 {
		st.res.LibBreakdown = scaleBreakdown(st.res.LibBreakdown, 1/st.libN)
	}
	if st.invN > 0 {
		st.res.InvBreakdown = scaleBreakdown(st.res.InvBreakdown, 1/st.invN)
	}
}

func scaleBreakdown(b Breakdown, f float64) Breakdown {
	return Breakdown{Transfer: b.Transfer * f, Worker: b.Worker * f, Setup: b.Setup * f, Exec: b.Exec * f}
}

// cpuScale converts a reference-machine duration to this machine.
func cpuScale(m cluster.Machine) float64 {
	if m.GFlops <= 0 {
		return 1
	}
	return cluster.ReferenceGFlops / m.GFlops
}

func (st *state) dispatchCost() float64 {
	switch st.cfg.Level {
	case core.L1:
		return st.cfg.App.DispatchL1
	case core.L2:
		return st.cfg.App.DispatchL2
	default:
		return st.cfg.App.DispatchL3
	}
}

// tryDispatch runs the manager's serialized dispatch loop: one
// dispatch at a time, each charging the per-level manager cost, each
// requiring a placement decision from the policy core.
func (st *state) tryDispatch() {
	if st.replay || st.mgrBusy || st.pending == 0 {
		return
	}
	sl := st.place()
	if sl == nil {
		return
	}
	st.inFlight++
	if st.inFlight > st.res.PeakInFlight {
		st.res.PeakInFlight = st.inFlight
	}
	st.mgrBusy = true
	d := st.dispatchCost()
	st.res.ManagerBusySeconds += d
	st.S.After(d, func() {
		st.mgrBusy = false
		st.assign(sl)
		st.tryDispatch()
	})
}

// speculativeCap bounds how many invocations stack on a worker whose
// environment has not arrived yet: a deep queue there would burst into
// the local disk all at once on arrival. It is driver knowledge (a
// virtual-time admission heuristic), expressed as a view filter.
const speculativeCap = 4

func (st *state) stackFilter() policy.Filter {
	if st.cfg.Level == core.L1 {
		return nil
	}
	return func(wv *policy.WorkerView) bool {
		return st.byID[wv.ID].hasEnv || wv.Commit.Cores < speculativeCap
	}
}

// place asks the policy core where the next invocation runs, executes
// the staging decisions, and binds the invocation to a slot. nil means
// no placement is possible until some event (arrival, completion,
// unpack) changes the view.
func (st *state) place() *slot {
	if st.cfg.Level == core.L3 {
		return st.placeL3()
	}
	return st.placeTask()
}

// bind assigns the next invocation index to the chosen slot. The
// timed path stamps the spec's owner here (one engine, any consistent
// assignment works); replay stamps at each recorded placement instead
// (stampOwner), mirroring the manager's queue-head pop per TracePlace.
func (st *state) bind(w *wstate, sl *slot) *slot {
	st.takeSlot(w, sl)
	sl.invIdx = st.nextInv
	st.nextInv++
	st.pending--
	if st.trackOwners && !st.replay {
		ref := st.popOwner()
		sl.owner, sl.tenant = ref.id, ref.tenant
	}
	return sl
}

// placeTask places an L1/L2 invocation as a stateless task: hash-ring
// walk keyed by the task, environment staged as an input (L2).
func (st *state) placeTask() *slot {
	key := "task-" + strconv.Itoa(st.nextInv+1)
	var inputs []core.FileSpec
	if st.cfg.Level != core.L1 {
		inputs = []core.FileSpec{st.envSpec}
	}
	d := st.view.PlanTask(key, oneSlot, inputs, st.stackFilter())
	if d.Worker == nil {
		return nil
	}
	w := st.byID[d.Worker.ID]
	if st.rec != nil {
		st.rec.Record(policy.TraceTask(key, d))
	}
	for _, sf := range d.Stages {
		st.execStage(sf)
	}
	return st.bind(w, w.firstFree(false))
}

// placeL3 places an invocation on a ready library instance, or deploys
// a new per-slot instance when none has room (§3.5.2).
func (st *state) placeL3() *slot {
	if d := st.view.PlaceReady(st.lib, nil); d.Worker != nil {
		return st.execReady(d)
	}
	return st.tryDeploy()
}

// execReady binds an invocation to the ready instance the policy core
// picked, recording the placement.
func (st *state) execReady(d policy.PlaceInvocation) *slot {
	w := st.byID[d.Worker.ID]
	if st.rec != nil {
		st.rec.Record(policy.TracePlace(st.lib, d))
	}
	sl := st.bind(w, w.firstFree(true))
	st.stampOwner(sl)
	return sl
}

// tryDeploy asks the policy core for a deploy decision and binds an
// invocation to the deploying slot. nil means no worker can host a new
// instance now.
func (st *state) tryDeploy() *slot {
	d := st.view.PlanDeploy(policy.DeploySpec{
		Name:  st.lib,
		Res:   oneSlot,
		Files: []core.FileSpec{st.envSpec},
	}, st.stackFilter())
	if d.Worker == nil {
		return nil
	}
	w := st.byID[d.Worker.ID]
	if st.rec != nil {
		st.rec.Record(policy.TraceDeploy(st.lib, d))
	}
	for _, sf := range d.Stages {
		st.execStage(sf)
	}
	st.view.AddInstance(w.v, w.lv)
	// The install's resource claim, held for the instance's lifetime
	// (the manager releases it only on eviction, install failure, or
	// worker death — none of which the simulator's instances hit).
	w.v.Commit = w.v.Commit.Add(oneSlot)
	return st.bind(w, w.firstFree(false))
}

// ---- environment distribution (§3.3) ----

func (st *state) envBytes() float64 {
	return float64(st.cfg.App.EnvPackedBytes + st.cfg.App.FuncBlobBytes)
}

// startFetch admits an inbound transfer on the destination worker:
// run starts it on its link now if the worker has a free fetch slot
// (Config.FetchConcurrency — the data plane's bounded pool), otherwise
// it queues FIFO until fetchDone frees one. The staging decision was
// already made and traced; the gate only delays the wire time.
func (st *state) startFetch(w *wstate, run func()) {
	if w.fetchActive < st.cfg.FetchConcurrency {
		w.fetchActive++
		run()
		return
	}
	w.fetchq = append(w.fetchq, run)
}

// fetchDone releases one inbound-transfer slot, starting the oldest
// queued transfer if any.
func (st *state) fetchDone(w *wstate) {
	if len(w.fetchq) > 0 {
		run := w.fetchq[0]
		w.fetchq = w.fetchq[1:]
		run()
		return
	}
	if w.fetchActive > 0 {
		w.fetchActive--
	}
}

// execStage carries out one staging decision: account it in the view
// (in-flight copy, source transfer slot, manager sends) and start the
// transfer on the owning link. StageReady is a no-op by construction;
// StageWait never reaches execution (the policy returns it only from
// rejected placements).
func (st *state) execStage(sf policy.StageFile) {
	dst := st.byID[sf.Dst.ID]
	switch sf.Mode {
	case policy.StagePeer:
		src := st.byID[sf.Src.ID]
		st.view.NotePending(dst.v, sf.Object)
		src.v.TransfersOut++
		dst.envSrc = src
		st.res.EnvPeer++
		if st.rec != nil {
			st.rec.Record(policy.TraceStage(sf))
		}
		dst.envReqAt = st.S.Now()
		if !st.replay {
			link := src.nic
			if st.crossNIC != nil && src.cluster != dst.cluster {
				link = st.crossNIC
			}
			st.startFetch(dst, func() {
				link.Start(st.envBytes(), func() {
					st.fetchDone(dst)
					st.envArrived(dst)
				})
			})
		}
	case policy.StageDirect:
		st.view.NotePending(dst.v, sf.Object)
		st.view.ManagerSends++
		st.res.EnvDirect++
		if st.rec != nil {
			st.rec.Record(policy.TraceStage(sf))
		}
		dst.envReqAt = st.S.Now()
		if !st.replay {
			st.startFetch(dst, func() {
				st.managerNIC.Start(st.envBytes(), func() {
					st.fetchDone(dst)
					st.envArrived(dst)
				})
			})
		}
	case policy.StageRef:
		// Proxy-object input (§15): the shard trace records only that a
		// ref stage ran — the per-shard view cannot plan the copy — and
		// the global ref mirror plans (and traces) the actual source,
		// exactly as the manager's ref plane does.
		if st.rec != nil {
			st.rec.Record(policy.TraceStage(sf))
		}
		if st.refs != nil {
			st.refs.stage(st, dst, sf.Object)
		}
	}
}

// envLanded settles the transfer's accounting once the tarball is on
// the destination: release the serving link's slot and flip the
// in-flight copy into a confirmed replica (a peer-transfer source,
// before unpacking even starts).
func (st *state) envLanded(w *wstate) {
	if src := w.envSrc; src != nil {
		w.envSrc = nil
		if src.v.TransfersOut > 0 {
			src.v.TransfersOut--
		}
	} else if st.view.ManagerSends > 0 {
		st.view.ManagerSends--
	}
	st.view.ClearPending(w.v, st.envObj)
	st.view.NoteReplica(w.v, st.envObj)
}

// envArrived (timed path) charges the transfer and unpack breakdowns,
// then wakes the invocations waiting on the environment.
func (st *state) envArrived(w *wstate) {
	app := st.cfg.App
	transfer := st.S.Now() - w.envReqAt
	unpack := st.jitter(app.UnpackSeconds)
	if st.cfg.Level == core.L3 {
		st.res.LibBreakdown.Worker += unpack
		st.res.LibBreakdown.Transfer += transfer
	} else {
		st.res.ColdBreakdown.Worker += unpack
		st.res.ColdBreakdown.Transfer += transfer
	}
	st.envLanded(w)
	// A new source (and a freed serving slot) can unblock placements
	// that the policy answered with Wait.
	st.tryDispatch()
	st.S.After(unpack, func() {
		w.hasEnv = true
		waiters := w.envWaiters
		w.envWaiters = nil
		for _, cont := range waiters {
			cont()
		}
		st.tryDispatch()
	})
}

// ensureEnv continues when the worker's environment is unpacked and
// ready. The transfer itself was already started by the placement's
// staging decision (or an earlier one); invocations placed behind an
// in-flight copy just wait here.
func (st *state) ensureEnv(w *wstate, cont func()) {
	if w.hasEnv {
		cont()
		return
	}
	w.envWaiters = append(w.envWaiters, cont)
}

// ---- invocation execution ----

// assign runs one invocation through its level's phases on the slot.
func (st *state) assign(sl *slot) {
	start := st.S.Now()
	switch st.cfg.Level {
	case core.L1:
		st.runL1(sl, start)
	case core.L2:
		st.runL2(sl, start)
	default:
		st.runL3(sl, start)
	}
}

// execFor samples (or looks up) the invocation's base execution time
// and scales it to the slot's machine.
func (st *state) execFor(sl *slot) float64 {
	if d := st.cfg.ExecDraws; len(d) > 0 {
		t := d[sl.invIdx%len(d)]
		if g := sl.w.mach.GFlops; g > 0 {
			t *= cluster.ReferenceGFlops / g
		}
		return t
	}
	return st.cfg.App.ExecOn(st.rng, st.cfg.Units, sl.w.mach.GFlops, cluster.ReferenceGFlops)
}

func (st *state) jitter(x float64) float64 {
	if st.cfg.App.JitterSigma <= 0 || x <= 0 {
		return x
	}
	return st.rng.LogNormal(x, st.cfg.App.JitterSigma)
}

// complete finishes an invocation: record metrics, free the slot,
// resume dispatch.
func (st *state) complete(sl *slot, start float64) {
	runtime := st.S.Now() - start
	if !st.cfg.DropTimes {
		st.res.Times = append(st.res.Times, runtime)
	}
	st.freeSlot(sl.w, sl)
	sl.served++
	st.inFlight--
	st.completed++
	if st.cfg.Level == core.L3 && st.completed%st.sampleStep == 0 {
		st.sampleSeries()
	}
	if st.plane != nil {
		tenant := sl.tenant
		sl.owner, sl.tenant = 0, ""
		if tenant != "" {
			st.plane.release(tenant)
			st.drainPlaneTimed()
		}
	}
	st.tryDispatch()
}

func (st *state) sampleSeries() {
	deployed := 0
	served := 0
	for _, w := range st.workers {
		for _, sl := range w.slots {
			if sl.libReady {
				deployed++
				served += sl.served
			}
		}
	}
	x := float64(st.completed)
	st.res.DeployedSeries.Add(x, float64(deployed))
	if deployed > 0 {
		st.res.ShareSeries.Add(x, float64(served)/float64(deployed))
	}
	st.res.LibsDeployed = deployed
}

// ---- L1: no reuse; everything through the shared filesystem ----

func (st *state) runL1(sl *slot, start float64) {
	app := st.cfg.App
	scale := cpuScale(sl.w.mach)
	bytes := float64(app.SharedFSBytes + app.FuncBlobBytes)
	if app.FSBytesSigma > 0 {
		bytes = st.rng.LogNormal(bytes, app.FSBytesSigma)
	}
	ops := app.SharedFSOps
	if app.FSStormProb > 0 && st.rng.Float64() < app.FSStormProb {
		// A storm replaces the usual spread: the cost is re-walking the
		// whole environment through the metadata server.
		ops = app.SharedFSOps * app.FSStormFactor
	} else if app.FSOpsSigma > 0 {
		ops = st.rng.LogNormal(ops, app.FSOpsSigma)
	}
	st.res.SharedFSBytes += bytes
	fsStart := st.S.Now()
	st.fs.Start(bytes, ops, func() {
		read := st.S.Now() - fsStart
		deser := st.jitter(app.DeserializeSeconds * scale)
		build := st.jitter(app.BuildSeconds * scale)
		exec := st.execFor(sl)
		st.res.ColdBreakdown.Transfer += 0
		st.res.ColdBreakdown.Worker += read
		st.res.ColdBreakdown.Setup += deser
		st.res.ColdBreakdown.Exec += build + exec
		st.coldN++
		st.S.After(deser+build+exec, func() { st.complete(sl, start) })
	})
}

// ---- L2: context on local disk ----

func (st *state) runL2(sl *slot, start float64) {
	app := st.cfg.App
	w := sl.w
	cold := !w.hasEnv
	st.ensureEnv(w, func() {
		scale := cpuScale(w.mach)
		deser := st.jitter(app.DeserializeSeconds * scale)
		build := st.jitter(app.BuildSeconds * scale)
		exec := st.execFor(sl)
		diskStart := st.S.Now()
		w.disk.Start(float64(app.LocalDiskBytes), func() {
			disk := st.S.Now() - diskStart
			st.S.After(deser+build+exec, func() {
				if cold {
					st.res.ColdBreakdown.Setup += deser
					st.res.ColdBreakdown.Exec += build + disk + exec
					st.coldN++
				} else {
					st.res.HotBreakdown.Transfer += st.fsArgTime()
					st.res.HotBreakdown.Setup += deser
					st.res.HotBreakdown.Exec += build + disk + exec
					st.hotN++
				}
				st.complete(sl, start)
			})
		})
	})
}

func (st *state) fsArgTime() float64 {
	return float64(st.cfg.App.ArgsBytes) / cluster.NIC10GbE
}

// ---- L3: context retained in library memory ----

func (st *state) runL3(sl *slot, start float64) {
	app := st.cfg.App
	w := sl.w
	st.ensureEnv(w, func() {
		if sl.libReady {
			st.invokeL3(sl, start)
			return
		}
		// Deploy the library on this slot: run the context setup once
		// (Table 5's L3 library overhead).
		setup := st.jitter(app.ContextSetupSeconds * cpuScale(w.mach))
		st.res.LibBreakdown.Setup += setup
		st.libN++
		st.S.After(setup, func() {
			st.markLibReady(w, sl)
			st.invokeL3(sl, start)
		})
	})
}

func (st *state) invokeL3(sl *slot, start float64) {
	app := st.cfg.App
	argLoad := app.ArgLoadSeconds
	exec := st.execFor(sl)
	st.res.InvBreakdown.Transfer += st.fsArgTime()
	st.res.InvBreakdown.Setup += argLoad
	st.res.InvBreakdown.Exec += exec
	st.invN++
	st.S.After(argLoad+exec, func() { st.complete(sl, start) })
}

// DebugStart initializes a run without executing it, returning the
// internal state and simulator for diagnostic stepping (cmd/probe).
func DebugStart(cfg Config) (*state, *event.Sim) {
	cfg.defaults()
	st := newState(cfg)
	st.startTenantArrivals()
	st.tryDispatch()
	return st, st.S
}

// DebugCompleted reports the completed-invocation count of a debug run.
func DebugCompleted(st *state) int { return st.completed }
