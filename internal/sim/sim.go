// Package sim is the scale simulator: it replays the paper's
// experiments (up to 100k invocations on 150 heterogeneous workers)
// under a deterministic virtual clock, reusing the engine's policies —
// manager-serialized dispatch, spanning-tree environment distribution
// with a per-source cap, per-worker caches, library deploy-on-demand
// with ready-instance preference — and the calibrated cost models of
// internal/apps. Contention is modeled with processor-sharing
// resources: the shared filesystem (bandwidth + IOPS), the manager's
// NIC, per-worker NICs and local disks.
//
// The real engine (internal/manager, internal/worker) demonstrates the
// mechanisms; this simulator reproduces the paper's numbers. They share
// the level definitions (core.ReuseLevel) and the distribution
// discipline.
package sim

import (
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
)

// Config parameterizes one simulated run.
type Config struct {
	App   *apps.CostModel
	Level core.ReuseLevel
	// Workers is the number of TaskVine workers (each 32 cores / 64 GB,
	// §4.2).
	Workers int
	// SlotsPerWorker is the concurrent invocation capacity (16 for
	// LNNI's 2-core invocations, 8 for ExaMol's 4-core ones).
	SlotsPerWorker int
	// Invocations is the workload size.
	Invocations int
	// Units scales one invocation's work (inferences per invocation).
	Units int
	Seed  uint64
	// PeerTransfers enables worker-to-worker environment distribution
	// (Figure 3b); off forces manager-only (3a).
	PeerTransfers bool
	// PeerCap is the per-source concurrent transfer cap N.
	PeerCap int
	// ManagerSourceCap is how many environment copies the manager sends
	// concurrently itself (1 = the paper's sequential initial sends).
	ManagerSourceCap int
	// Machines overrides the default Table 3 proportional sample.
	Machines []cluster.Machine
	// Clusters splits workers into k equal network-locality groups with
	// constrained cross-group transfers (Figure 3c). 0 or 1 = one
	// cluster.
	Clusters int
	// CrossClusterBytesPerSec is the constrained inter-cluster
	// bandwidth (used when Clusters > 1).
	CrossClusterBytesPerSec float64
	// SeriesSamples is the number of points recorded for the
	// deployed-libraries and share-value series.
	SeriesSamples int
	// KeepTimes retains every invocation runtime (Table 4 / Figure 7);
	// disable to save memory on huge sweeps.
	DropTimes bool
	// MaxEvents bounds the event count (0 = a generous default backstop).
	MaxEvents int64
	// FSPerFlowBW caps one client's shared-FS streaming rate
	// (bytes/second; default 35 MB/s — the effective per-client rate of
	// a many-small-file read pattern on the paper's Panasas system).
	FSPerFlowBW float64
	// FSPerFlowOps caps one client's shared-FS metadata operation rate
	// (default 200/s — latency-bound RPCs).
	FSPerFlowOps float64
	// ExecDraws optionally fixes the per-invocation base execution
	// times (reference-machine seconds): invocation i uses ExecDraws[i].
	// Experiments use this as common random numbers so different reuse
	// levels face the identical workload and differences reflect only
	// the mechanisms.
	ExecDraws []float64
	// EvictIdleLibraries ablates §3.5.2's empty-library eviction when
	// running two-app mixes (used by the ablation experiments).
	// (Single-app runs never evict.)
	EvictIdleLibraries bool
}

func (c *Config) defaults() {
	if c.SlotsPerWorker == 0 {
		c.SlotsPerWorker = 16
	}
	if c.Units == 0 {
		c.Units = 16
	}
	if c.PeerCap == 0 {
		c.PeerCap = 3
	}
	if c.ManagerSourceCap == 0 {
		c.ManagerSourceCap = 1
	}
	if c.SeriesSamples == 0 {
		c.SeriesSamples = 200
	}
	if c.Seed == 0 {
		c.Seed = 0xC0FFEE
	}
	if c.FSPerFlowBW == 0 {
		c.FSPerFlowBW = 60e6
	}
	if c.FSPerFlowOps == 0 {
		c.FSPerFlowOps = 200
	}
}

// Breakdown is the Table 5 style per-phase decomposition, in seconds.
type Breakdown struct {
	Transfer float64 // invocation & data transfer
	Worker   float64 // worker-side environment setup (unpack, sandbox)
	Setup    float64 // library/invocation state reconstruction
	Exec     float64 // function execution
}

// Total sums the phases.
func (b Breakdown) Total() float64 { return b.Transfer + b.Worker + b.Setup + b.Exec }

// Result is everything a run produces.
type Result struct {
	Level       core.ReuseLevel
	Workers     int
	Invocations int
	Units       int

	// TotalTime is the application execution time (Figure 6/8/9).
	TotalTime float64
	// Times are per-invocation runtimes, slot-assignment to completion
	// (Table 4 / Figure 7).
	Times   []float64
	Summary metrics.Summary

	// DeployedSeries is deployed library instances vs completed
	// invocations (Figure 10); ShareSeries is average share value vs
	// completed invocations (Figure 11). L3 only.
	DeployedSeries metrics.Series
	ShareSeries    metrics.Series
	LibsDeployed   int

	// ColdBreakdown and HotBreakdown decompose the first and the
	// steady-state invocation on a worker (Table 5 L2 rows); LibBreakdown
	// and InvBreakdown decompose L3's library install and per-invocation
	// costs (Table 5 L3 rows).
	ColdBreakdown Breakdown
	HotBreakdown  Breakdown
	LibBreakdown  Breakdown
	InvBreakdown  Breakdown

	// ManagerBusySeconds is time the manager spent serialized on
	// dispatch+retrieval.
	ManagerBusySeconds float64
	// EnvDirect and EnvPeer count environment transfers by source.
	EnvDirect int
	EnvPeer   int
	// SharedFSBytes is the total volume read from the shared FS.
	SharedFSBytes float64
	// PeakInFlight is the maximum concurrent invocations observed.
	PeakInFlight int
}

// state is the live simulation.
type state struct {
	cfg Config
	S   *event.Sim
	rng *event.RNG

	fs         *event.DualFairShare
	managerNIC *event.FairShare
	crossNIC   *event.FairShare

	workers []*wstate

	pending      int
	mgrBusy      bool
	completed    int
	inFlight     int
	rrWorker     int
	sampleStep   int
	mgrEnvActive int

	res *Result

	coldN, hotN, libN, invN float64
}

type wstate struct {
	idx     int
	mach    cluster.Machine
	cluster int
	disk    *event.FairShare
	nic     *event.FairShare

	hasEnv       bool // environment unpacked and usable
	envCached    bool // tarball cached (transfer-source eligible)
	envRequested bool
	envReqAt     float64
	envWaiters   []func()

	peerOut int
	slots   []*slot

	// busySlots and freeReady are maintained counters so pickSlot scans
	// workers, not workers×slots: busySlots counts occupied slots,
	// freeReady counts free slots whose library is deployed.
	busySlots int
	freeReady int
}

// takeSlot marks a slot occupied, maintaining the scan counters.
func (w *wstate) takeSlot(sl *slot) {
	sl.busy = true
	w.busySlots++
	if sl.libReady {
		w.freeReady--
	}
}

// freeSlot releases a slot.
func (w *wstate) freeSlot(sl *slot) {
	sl.busy = false
	w.busySlots--
	if sl.libReady {
		w.freeReady++
	}
}

// markLibReady flags the slot's library as deployed.
func (w *wstate) markLibReady(sl *slot) {
	if sl.libReady {
		return
	}
	sl.libReady = true
	if !sl.busy {
		w.freeReady++
	}
}

// firstFree returns the worker's first free slot in slot order,
// optionally restricted to deployed-library slots. Callers invoke it
// only after the counters guarantee a match exists, so the single
// inner scan happens once per dispatch, not once per candidate worker.
func (w *wstate) firstFree(needLib bool) *slot {
	for _, sl := range w.slots {
		if !sl.busy && (!needLib || sl.libReady) {
			return sl
		}
	}
	return nil
}

type slot struct {
	w        *wstate
	busy     bool
	libReady bool
	served   int
	invIdx   int // index of the invocation currently assigned
}

// Run executes one simulated experiment.
func Run(cfg Config) *Result {
	cfg.defaults()
	st := newState(cfg)
	st.tryDispatch()
	st.res.TotalTime = st.S.Run()
	st.res.Summary = metrics.Summarize(st.res.Times)
	st.finishBreakdowns()
	return st.res
}

// newState builds the initial simulation state.
func newState(cfg Config) *state {
	st := &state{
		cfg: cfg,
		S:   event.NewSim(),
		rng: event.NewRNG(cfg.Seed),
		res: &Result{
			Level:       cfg.Level,
			Workers:     cfg.Workers,
			Invocations: cfg.Invocations,
			Units:       cfg.Units,
		},
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000_000
	}
	st.S.MaxEvents = cfg.MaxEvents
	st.res.DeployedSeries.Name = "deployed-libraries"
	st.res.ShareSeries.Name = "avg-share-value"

	// Shared filesystem: the Panasas figures of §4.3 with per-client
	// effective-rate caps.
	st.fs = event.NewDualFairShare(st.S, 84e9/8, cfg.FSPerFlowBW, 94000, cfg.FSPerFlowOps)
	st.managerNIC = event.NewFairShare(st.S, cluster.NIC10GbE, 0)
	if cfg.Clusters > 1 {
		bw := cfg.CrossClusterBytesPerSec
		if bw == 0 {
			bw = cluster.NIC10GbE / 8 // constrained WAN-ish link
		}
		st.crossNIC = event.NewFairShare(st.S, bw, 0)
	}

	machines := cfg.Machines
	if machines == nil {
		machines = cluster.Sample(cluster.Table3(), cfg.Workers)
	}
	// Deterministically shuffle so machine groups interleave across the
	// dispatch order.
	perm := st.rng
	for i := len(machines) - 1; i > 0; i-- {
		j := perm.Intn(i + 1)
		machines[i], machines[j] = machines[j], machines[i]
	}
	for i := 0; i < cfg.Workers; i++ {
		m := machines[i%len(machines)]
		w := &wstate{
			idx:  i,
			mach: m,
			disk: event.NewFairShare(st.S, m.DiskBytesPerSec, 0),
			nic:  event.NewFairShare(st.S, m.NICBytesPerSec, 0),
		}
		if cfg.Clusters > 1 {
			w.cluster = i * cfg.Clusters / cfg.Workers
		}
		for k := 0; k < cfg.SlotsPerWorker; k++ {
			w.slots = append(w.slots, &slot{w: w})
		}
		st.workers = append(st.workers, w)
	}

	st.pending = cfg.Invocations
	st.sampleStep = cfg.Invocations / cfg.SeriesSamples
	if st.sampleStep == 0 {
		st.sampleStep = 1
	}
	if !cfg.DropTimes {
		st.res.Times = make([]float64, 0, cfg.Invocations)
	}
	return st
}

func (st *state) finishBreakdowns() {
	if st.coldN > 0 {
		st.res.ColdBreakdown = scaleBreakdown(st.res.ColdBreakdown, 1/st.coldN)
	}
	if st.hotN > 0 {
		st.res.HotBreakdown = scaleBreakdown(st.res.HotBreakdown, 1/st.hotN)
	}
	if st.libN > 0 {
		st.res.LibBreakdown = scaleBreakdown(st.res.LibBreakdown, 1/st.libN)
	}
	if st.invN > 0 {
		st.res.InvBreakdown = scaleBreakdown(st.res.InvBreakdown, 1/st.invN)
	}
}

func scaleBreakdown(b Breakdown, f float64) Breakdown {
	return Breakdown{Transfer: b.Transfer * f, Worker: b.Worker * f, Setup: b.Setup * f, Exec: b.Exec * f}
}

// cpuScale converts a reference-machine duration to this machine.
func cpuScale(m cluster.Machine) float64 {
	if m.GFlops <= 0 {
		return 1
	}
	return cluster.ReferenceGFlops / m.GFlops
}

func (st *state) dispatchCost() float64 {
	switch st.cfg.Level {
	case core.L1:
		return st.cfg.App.DispatchL1
	case core.L2:
		return st.cfg.App.DispatchL2
	default:
		return st.cfg.App.DispatchL3
	}
}

// tryDispatch runs the manager's serialized dispatch loop: one
// dispatch at a time, each charging the per-level manager cost, each
// requiring a free slot.
func (st *state) tryDispatch() {
	if st.mgrBusy || st.pending == 0 {
		return
	}
	sl := st.pickSlot()
	if sl == nil {
		return
	}
	sl.invIdx = st.cfg.Invocations - st.pending
	st.pending--
	sl.w.takeSlot(sl)
	st.inFlight++
	if st.inFlight > st.res.PeakInFlight {
		st.res.PeakInFlight = st.inFlight
	}
	st.mgrBusy = true
	d := st.dispatchCost()
	st.res.ManagerBusySeconds += d
	st.S.After(d, func() {
		st.mgrBusy = false
		st.assign(sl)
		st.tryDispatch()
	})
}

// pickSlot chooses where the next invocation runs. L3 prefers a free
// slot whose library is already deployed (§3.5.2's ready-instance
// check); otherwise any free slot, rotating across workers so load and
// machine groups interleave.
func (st *state) pickSlot() *slot {
	n := len(st.workers)
	if st.cfg.Level == core.L3 {
		// Among workers with a ready library slot, pick the least busy,
		// matching the balance the task path gets from its least-busy
		// rule below.
		var best *wstate
		bestBusy := 1 << 30
		for i := 0; i < n; i++ {
			w := st.workers[(st.rrWorker+i)%n]
			if w.freeReady > 0 && w.busySlots < bestBusy {
				best, bestBusy = w, w.busySlots
			}
		}
		if best != nil {
			st.rrWorker = (best.idx + 1) % n
			return best.firstFree(true)
		}
	}
	// For L2, prefer workers that already hold (or are fetching) the
	// environment so the spanning tree grows with demand rather than
	// all at once — and among those, the least-busy worker, so local
	// disks are not thrashed by piling every task on the first ready
	// worker.
	if st.cfg.Level == core.L2 || st.cfg.Level == core.L3 {
		var best *wstate
		bestBusy := 1 << 30
		for i := 0; i < n; i++ {
			w := st.workers[(st.rrWorker+i)%n]
			if !w.hasEnv && !w.envRequested {
				continue
			}
			// Limit speculative stacking on workers whose environment
			// has not arrived yet: a deep queue there would burst into
			// the local disk all at once on arrival.
			if !w.hasEnv && w.busySlots >= 4 {
				continue
			}
			if w.busySlots < len(w.slots) && w.busySlots < bestBusy {
				best, bestBusy = w, w.busySlots
			}
		}
		if best != nil {
			st.rrWorker = (best.idx + 1) % n
			return best.firstFree(false)
		}
	}
	for i := 0; i < n; i++ {
		w := st.workers[(st.rrWorker+i)%n]
		if st.cfg.Level != core.L1 && !w.hasEnv && w.busySlots >= 6 {
			continue
		}
		if w.busySlots < len(w.slots) {
			st.rrWorker = (w.idx + 1) % n
			return w.firstFree(false)
		}
	}
	return nil
}

// assign runs one invocation through its level's phases on the slot.
func (st *state) assign(sl *slot) {
	start := st.S.Now()
	switch st.cfg.Level {
	case core.L1:
		st.runL1(sl, start)
	case core.L2:
		st.runL2(sl, start)
	default:
		st.runL3(sl, start)
	}
}

// execFor samples (or looks up) the invocation's base execution time
// and scales it to the slot's machine.
func (st *state) execFor(sl *slot) float64 {
	if d := st.cfg.ExecDraws; len(d) > 0 {
		t := d[sl.invIdx%len(d)]
		if g := sl.w.mach.GFlops; g > 0 {
			t *= cluster.ReferenceGFlops / g
		}
		return t
	}
	return st.cfg.App.ExecOn(st.rng, st.cfg.Units, sl.w.mach.GFlops, cluster.ReferenceGFlops)
}

func (st *state) jitter(x float64) float64 {
	if st.cfg.App.JitterSigma <= 0 || x <= 0 {
		return x
	}
	return st.rng.LogNormal(x, st.cfg.App.JitterSigma)
}

// complete finishes an invocation: record metrics, free the slot,
// resume dispatch.
func (st *state) complete(sl *slot, start float64) {
	runtime := st.S.Now() - start
	if !st.cfg.DropTimes {
		st.res.Times = append(st.res.Times, runtime)
	}
	sl.w.freeSlot(sl)
	sl.served++
	st.inFlight--
	st.completed++
	if st.cfg.Level == core.L3 && st.completed%st.sampleStep == 0 {
		st.sampleSeries()
	}
	st.tryDispatch()
}

func (st *state) sampleSeries() {
	deployed := 0
	served := 0
	for _, w := range st.workers {
		for _, sl := range w.slots {
			if sl.libReady {
				deployed++
				served += sl.served
			}
		}
	}
	x := float64(st.completed)
	st.res.DeployedSeries.Add(x, float64(deployed))
	if deployed > 0 {
		st.res.ShareSeries.Add(x, float64(served)/float64(deployed))
	}
	st.res.LibsDeployed = deployed
}

// ---- L1: no reuse; everything through the shared filesystem ----

func (st *state) runL1(sl *slot, start float64) {
	app := st.cfg.App
	scale := cpuScale(sl.w.mach)
	bytes := float64(app.SharedFSBytes + app.FuncBlobBytes)
	if app.FSBytesSigma > 0 {
		bytes = st.rng.LogNormal(bytes, app.FSBytesSigma)
	}
	ops := app.SharedFSOps
	if app.FSStormProb > 0 && st.rng.Float64() < app.FSStormProb {
		// A storm replaces the usual spread: the cost is re-walking the
		// whole environment through the metadata server.
		ops = app.SharedFSOps * app.FSStormFactor
	} else if app.FSOpsSigma > 0 {
		ops = st.rng.LogNormal(ops, app.FSOpsSigma)
	}
	st.res.SharedFSBytes += bytes
	fsStart := st.S.Now()
	st.fs.Start(bytes, ops, func() {
		read := st.S.Now() - fsStart
		deser := st.jitter(app.DeserializeSeconds * scale)
		build := st.jitter(app.BuildSeconds * scale)
		exec := st.execFor(sl)
		st.res.ColdBreakdown.Transfer += 0
		st.res.ColdBreakdown.Worker += read
		st.res.ColdBreakdown.Setup += deser
		st.res.ColdBreakdown.Exec += build + exec
		st.coldN++
		st.S.After(deser+build+exec, func() { st.complete(sl, start) })
	})
}

// ---- L2: context on local disk ----

func (st *state) runL2(sl *slot, start float64) {
	app := st.cfg.App
	w := sl.w
	cold := !w.hasEnv
	st.ensureEnv(w, func() {
		scale := cpuScale(w.mach)
		deser := st.jitter(app.DeserializeSeconds * scale)
		build := st.jitter(app.BuildSeconds * scale)
		exec := st.execFor(sl)
		diskStart := st.S.Now()
		w.disk.Start(float64(app.LocalDiskBytes), func() {
			disk := st.S.Now() - diskStart
			st.S.After(deser+build+exec, func() {
				if cold {
					st.res.ColdBreakdown.Setup += deser
					st.res.ColdBreakdown.Exec += build + disk + exec
					st.coldN++
				} else {
					st.res.HotBreakdown.Transfer += st.fsArgTime()
					st.res.HotBreakdown.Setup += deser
					st.res.HotBreakdown.Exec += build + disk + exec
					st.hotN++
				}
				st.complete(sl, start)
			})
		})
	})
}

func (st *state) fsArgTime() float64 {
	return float64(st.cfg.App.ArgsBytes) / cluster.NIC10GbE
}

// ---- L3: context retained in library memory ----

func (st *state) runL3(sl *slot, start float64) {
	app := st.cfg.App
	w := sl.w
	st.ensureEnv(w, func() {
		if sl.libReady {
			st.invokeL3(sl, start)
			return
		}
		// Deploy the library on this slot: run the context setup once
		// (Table 5's L3 library overhead).
		setup := st.jitter(app.ContextSetupSeconds * cpuScale(w.mach))
		st.res.LibBreakdown.Setup += setup
		st.libN++
		st.S.After(setup, func() {
			w.markLibReady(sl)
			st.invokeL3(sl, start)
		})
	})
}

func (st *state) invokeL3(sl *slot, start float64) {
	app := st.cfg.App
	argLoad := app.ArgLoadSeconds
	exec := st.execFor(sl)
	st.res.InvBreakdown.Transfer += st.fsArgTime()
	st.res.InvBreakdown.Setup += argLoad
	st.res.InvBreakdown.Exec += exec
	st.invN++
	st.S.After(argLoad+exec, func() { st.complete(sl, start) })
}

// ---- environment distribution (§3.3) ----

// ensureEnv continues when the worker's environment is unpacked and
// ready, fetching it first if needed. Distribution follows the paper's
// discipline: the manager seeds the first copies (ManagerSourceCap
// concurrent), confirmed workers serve up to PeerCap peers each, and
// cross-cluster traffic is constrained when Clusters > 1.
func (st *state) ensureEnv(w *wstate, cont func()) {
	if w.hasEnv {
		cont()
		return
	}
	w.envWaiters = append(w.envWaiters, cont)
	if w.envRequested {
		return
	}
	w.envRequested = true
	w.envReqAt = st.S.Now()
	st.startEnvTransfer(w)
}

func (st *state) startEnvTransfer(dst *wstate) {
	app := st.cfg.App
	size := float64(app.EnvPackedBytes + app.FuncBlobBytes)

	var src *wstate
	if st.cfg.PeerTransfers {
		src = st.pickEnvSource(dst)
	}
	if src == nil {
		// Manager is the source; respect its sequential-send cap by
		// queueing behind the NIC when over cap.
		if st.mgrEnvSends() >= st.cfg.ManagerSourceCap {
			// Retry when a transfer finishes; poll cheaply.
			st.S.After(0.2, func() { st.startEnvTransfer(dst) })
			return
		}
		st.mgrEnvActive++
		st.res.EnvDirect++
		st.managerNIC.Start(size, func() {
			st.mgrEnvActive--
			st.envArrived(dst)
		})
		return
	}
	src.peerOut++
	st.res.EnvPeer++
	link := src.nic
	if st.crossNIC != nil && src.cluster != dst.cluster {
		link = st.crossNIC
	}
	link.Start(size, func() {
		src.peerOut--
		st.envArrived(dst)
		// A freed slot may unblock queued manager-path retries
		// naturally via their polling.
	})
}

func (st *state) mgrEnvSends() int { return st.mgrEnvActive }

func (st *state) pickEnvSource(dst *wstate) *wstate {
	for _, w := range st.workers {
		if w == dst || !w.envCached || w.peerOut >= st.cfg.PeerCap {
			continue
		}
		if st.crossNIC != nil && w.cluster != dst.cluster {
			continue // prefer same-cluster; cross handled below
		}
		return w
	}
	if st.crossNIC != nil {
		for _, w := range st.workers {
			if w != dst && w.envCached && w.peerOut < st.cfg.PeerCap {
				return w
			}
		}
	}
	return nil
}

// envArrived unpacks the tarball and wakes the waiters.
func (st *state) envArrived(w *wstate) {
	app := st.cfg.App
	transfer := st.S.Now() - w.envReqAt
	unpack := st.jitter(app.UnpackSeconds)
	if st.cfg.Level == core.L3 {
		st.res.LibBreakdown.Worker += unpack
		st.res.LibBreakdown.Transfer += transfer
	} else {
		st.res.ColdBreakdown.Worker += unpack
		st.res.ColdBreakdown.Transfer += transfer
	}
	w.envCached = true // the cached tarball can serve peers immediately
	st.S.After(unpack, func() {
		w.hasEnv = true
		waiters := w.envWaiters
		w.envWaiters = nil
		for _, cont := range waiters {
			cont()
		}
	})
}

// DebugStart initializes a run without executing it, returning the
// internal state and simulator for diagnostic stepping (cmd/probe).
func DebugStart(cfg Config) (*state, *event.Sim) {
	cfg.defaults()
	st := newState(cfg)
	st.tryDispatch()
	return st, st.S
}

// DebugCompleted reports the completed-invocation count of a debug run.
func DebugCompleted(st *state) int { return st.completed }
