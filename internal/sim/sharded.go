package sim

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/shardplane"
)

// ShardedReplay drives N independent Replay shards through the sharded
// dispatch plane's routing and shard-crossing rules, mirroring the
// manager's architecture (DESIGN.md §12) one layer up from the policy
// core:
//
//   - every worker lives in exactly one shard
//     (hashring.Partition(id, N), via shardplane.Router);
//   - tasks route to the shard owning their ring key, invocations
//     round-robin across shards with live workers;
//   - each shard runs its own coalesced wake loop (dirty mark +
//     scheduling flag), and the shard-crossing paths — overflow
//     forwarding, evacuation of workerless shards, starvation nudges —
//     run between local passes exactly as the manager's do.
//
// Each shard records its own decision trace; the differential harness
// (internal/manager) diffs them per shard against the sharded
// manager's, then as one merged trace (shardplane.MergeTraces).
type ShardedReplay struct {
	cfg    Config
	shards []*shardReplica
	router *shardplane.Router
	// nextID numbers specs globally — the manager's nextID counter, so
	// ring keys and round-robin routing agree across engines.
	nextID int
	// nextWorker numbers workers globally ("wNNNN"); a shard cannot
	// derive the ID from its own worker count.
	nextWorker int
	// workerShard maps each live worker to its home shard.
	workerShard map[string]int
	// plane is the submission plane (cfg.Tenants): one plane in front
	// of all shards, its own recorder — the manager's topology. Specs
	// released by the fair-share drain route to shard intake queues
	// exactly as the manager's drainLocked pushes them.
	plane *simPlane
}

// shardReplica is one shard's replay plus its wake-loop state.
type shardReplica struct {
	rp *Replay
	// dirty and scheduling implement the manager's coalescing rule: a
	// wake arriving while the loop runs leaves its mark and returns;
	// the running loop observes it on the re-check.
	dirty      bool
	scheduling bool
	// intake mirrors the manager's lock-free submit intake: routed
	// specs queue here rather than going straight into the pending
	// queues, and the wake loop drains them (in submission order) at
	// the top of each pass — so the decision order stays byte-identical
	// to the manager's MPSC hand-off.
	intake []simIntake
	// starving mirrors the manager's starvation registry entry: queued
	// work survives a wake with nothing in flight locally, so only a
	// capacity event in another shard (nudge) can unblock it.
	starving bool
}

// simIntake is one routed spec waiting in a shard's intake queue: a
// task by ring key, or (isTask false) one pooled invocation carrying
// its owner ref (tenant runs thread identity through the pool).
type simIntake struct {
	isTask bool
	task   replayTask
	ref    specRef
}

// drainIntake replays queued intake items into the shard's pending
// state, marking it dirty — the manager's drainIntakeLocked.
func (sh *shardReplica) drainIntake() {
	if len(sh.intake) == 0 {
		return
	}
	for _, it := range sh.intake {
		if it.isTask {
			sh.rp.pendq = append(sh.rp.pendq, it.task)
		} else {
			sh.rp.st.pending++
			if sh.rp.st.trackOwners {
				sh.rp.st.pushOwner(it.ref)
			}
		}
	}
	sh.intake = sh.intake[:0]
	sh.dirty = true
}

// NewShardedReplay builds an untimed sharded simulation. cfg.Workers
// initial workers join through the composite (global numbering);
// shards < 1 defaults to shardplane.DefaultShards.
func NewShardedReplay(cfg Config, shards int) *ShardedReplay {
	if shards < 1 {
		shards = shardplane.DefaultShards
	}
	workers := cfg.Workers
	cfg.Workers = 0
	sr := &ShardedReplay{
		cfg:         cfg,
		router:      shardplane.NewRouter(shards),
		workerShard: map[string]int{},
	}
	if len(cfg.Tenants) > 0 {
		sr.plane = newSimPlane(cfg.Tenants, &policy.Recorder{})
	}
	for i := 0; i < shards; i++ {
		scfg := cfg
		scfg.DecisionTrace = &policy.Recorder{}
		// The plane lives on the composite (the manager's topology);
		// shards only thread owner identity through their pools.
		scfg.Tenants = nil
		sh := &shardReplica{rp: NewReplay(scfg)}
		if sr.plane != nil {
			sh.rp.st.trackOwners = true
		}
		idx := i
		sh.rp.wakeFn = func() {
			sh.dirty = true
			sr.wake(idx)
		}
		sr.shards = append(sr.shards, sh)
	}
	for i := 0; i < workers; i++ {
		sr.AddWorker()
	}
	return sr
}

func (sr *ShardedReplay) lib() string { return sr.shards[0].rp.st.lib }

// wake runs shard i's coalesced schedule loop — the manager's
// shard.wake without the locking. A re-entrant call (a forward chain
// arriving back here) finds scheduling set, leaves its dirty mark, and
// returns; the running loop's re-check picks it up. Termination: hop
// counters only grow within a nudge epoch, so forward chains die out.
func (sr *ShardedReplay) wake(i int) {
	sh := sr.shards[i]
	if sh.scheduling {
		return
	}
	sh.scheduling = true
	r := sh.rp
	for {
		sh.drainIntake()
		if !sh.dirty {
			break
		}
		// Evacuation: a workerless shard can place nothing and no local
		// event will change that — its queues leave for live shards
		// before the pass snapshot. Routing cannot pick a workerless
		// shard, so this never cycles back here.
		if r.liveWorkers() == 0 && r.Pending() > 0 && sr.router.Live() > 0 {
			tasks, invs, refs := r.extractPending()
			sr.forwardEvacuated(tasks, invs, refs)
			continue
		}
		sh.dirty = false
		if sr.cfg.Level == core.L3 {
			// Invocation pools never overflow-forward on saturation
			// (only the static no-worker-ever-fits rule moves them, and
			// a one-slot instance fits any live worker; the workerless
			// case evacuated above). The local pass is the whole pass.
			r.drainPass()
			continue
		}
		next, hasNext := sr.router.NextAlive(i)
		if forward := r.drainTasksSharded(hasNext, len(sr.shards)); len(forward) > 0 {
			sr.forwardTasksTo(next, forward)
		}
	}
	sh.starving = r.Pending() > 0 && r.quiet()
	sh.scheduling = false
}

// routeTask delivers a task to the shard owning its ring key — or, in
// an empty cluster, parks it in the key's home shard (shardplane
// routing rules, shared verbatim with the manager). Like the
// manager's routeTask, the spec goes through the shard's intake queue
// and the wake loop moves it into the pending queue.
func (sr *ShardedReplay) routeTask(pt replayTask) {
	idx, ok := sr.router.Owner(pt.key)
	if !ok {
		idx = sr.router.Park(pt.key)
	}
	sh := sr.shards[idx]
	sh.intake = append(sh.intake, simIntake{isTask: true, task: pt})
	sr.wake(idx)
}

// routeInv delivers one invocation to a live shard by round-robin over
// its spec ID, parking in the library's home shard when no worker is
// live anywhere. Intake hand-off, like routeTask.
func (sr *ShardedReplay) routeInv(ref specRef) {
	idx, ok := sr.router.RouteSpec(ref.id)
	if !ok {
		idx = sr.router.Park(sr.lib())
	}
	sh := sr.shards[idx]
	sh.intake = append(sh.intake, simIntake{ref: ref})
	sr.wake(idx)
}

// forwardTasksTo moves overflow tasks into a target shard's queue and
// wakes it — the manager's forwardTasksTo.
func (sr *ShardedReplay) forwardTasksTo(idx int, tasks []replayTask) {
	sh := sr.shards[idx]
	sh.rp.pendq = append(sh.rp.pendq, tasks...)
	sh.dirty = true
	sr.wake(idx)
}

// forwardEvacuated re-routes an evacuated shard's specs: tasks
// individually by ring key (hop counts preserved), the invocation pool
// whole — count and owner FIFO, in order — to the library's owner
// shard, the manager's forwardEvacuated.
func (sr *ShardedReplay) forwardEvacuated(tasks []replayTask, invs int, refs []specRef) {
	for _, pt := range tasks {
		sr.routeTask(pt)
	}
	if invs > 0 {
		idx, ok := sr.router.Owner(sr.lib())
		if !ok {
			idx = sr.router.Park(sr.lib())
		}
		sh := sr.shards[idx]
		sh.rp.st.pending += invs
		for _, ref := range refs {
			sh.rp.st.pushOwner(ref)
		}
		sh.dirty = true
		sr.wake(idx)
	}
}

// wakeParked nudges every workerless shard holding queued specs after
// a join: its wake loop evacuates them to live shards.
func (sr *ShardedReplay) wakeParked() {
	for i, sh := range sr.shards {
		if sh.rp.liveWorkers() == 0 && sh.rp.Pending() > 0 {
			sh.dirty = true
			sr.wake(i)
		}
	}
}

// nudgeStarving wakes every starving shard after a capacity-freeing
// event anywhere, resetting overflow hop budgets so rested work
// circulates again. The starving set is snapshotted first (the
// manager's rule), then drained in shard-index order — the manager's
// map order is unordered but its wakes commute.
func (sr *ShardedReplay) nudgeStarving() {
	var idxs []int
	for i, sh := range sr.shards {
		if sh.starving {
			idxs = append(idxs, i)
		}
	}
	for _, i := range idxs {
		sh := sr.shards[i]
		for j := range sh.rp.pendq {
			sh.rp.pendq[j].hops = 0
		}
		sh.dirty = true
		sr.wake(i)
	}
}

// shardOf returns the live worker's shard replica, nil if unknown.
func (sr *ShardedReplay) shardOf(workerID string) *shardReplica {
	if idx, ok := sr.workerShard[workerID]; ok {
		return sr.shards[idx]
	}
	return nil
}

// ---- the Replay-shaped event surface ----

// Submit enqueues n specs, routing each like the manager's Submit /
// SubmitInvocation, and schedules as much as possible.
func (sr *ShardedReplay) Submit(n int) {
	for k := 0; k < n; k++ {
		sr.nextID++
		if sr.cfg.Level == core.L3 {
			sr.routeInv(specRef{id: int64(sr.nextID)})
		} else {
			sr.routeTask(replayTask{key: "task-" + strconv.Itoa(sr.nextID)})
		}
	}
}

// SubmitTenant submits one spec for tenant through the submission
// plane — the manager's Submit/SubmitInvocation with a TenantID:
// admission, plane queue, fair-share drain into shard intake.
// Unregistered tenants degrade to the direct routing path.
func (sr *ShardedReplay) SubmitTenant(tenant string) {
	sr.nextID++
	isTask := sr.cfg.Level != core.L3
	var it simPlaneItem
	if isTask {
		it = simPlaneItem{isTask: true, task: replayTask{key: "task-" + strconv.Itoa(sr.nextID), tenant: tenant}}
	} else {
		it = simPlaneItem{ref: specRef{id: int64(sr.nextID), tenant: tenant}}
	}
	if sr.plane != nil && tenant != "" {
		known, accepted := sr.plane.submit(tenant, it)
		if known {
			if accepted {
				sr.drainPlane()
			}
			return
		}
	}
	if isTask {
		sr.routeTask(it.task)
	} else {
		sr.routeInv(it.ref)
	}
}

// drainPlane releases plane-queued specs in fair-share order into
// shard intake queues and wakes the fed shards in first-touched order
// — the manager's drainLocked + wakeShards. Invocations route by the
// tenant's own cursor (Router.RouteSpecTenant); tasks keep ring-key
// locality.
func (sr *ShardedReplay) drainPlane() {
	if sr.plane == nil {
		return
	}
	var wakes []int
	touched := make([]bool, len(sr.shards))
	sr.plane.drain(func(it simPlaneItem, tenant string, seq int64) {
		var idx int
		if it.isTask {
			var ok bool
			if idx, ok = sr.router.Owner(it.task.key); !ok {
				idx = sr.router.Park(it.task.key)
			}
			sr.shards[idx].intake = append(sr.shards[idx].intake, simIntake{isTask: true, task: it.task})
		} else {
			var ok bool
			if idx, ok = sr.router.RouteSpecTenant(tenant, seq); !ok {
				idx = sr.router.Park(sr.lib())
			}
			sr.shards[idx].intake = append(sr.shards[idx].intake, simIntake{ref: it.ref})
		}
		if !touched[idx] {
			touched[idx] = true
			wakes = append(wakes, idx)
		}
	})
	for _, idx := range wakes {
		sr.wake(idx)
	}
}

// AddWorker joins a fresh worker in its home shard — the manager's
// adoptWorker order: register, route, wake the shard, then evacuate
// parked work and reset starving shards' hop budgets.
func (sr *ShardedReplay) AddWorker() string {
	id := "w" + pad4(sr.nextWorker)
	sr.nextWorker++
	idx := sr.router.ShardOf(id)
	sh := sr.shards[idx]
	sh.rp.st.addWorkerNamed(id)
	sr.workerShard[id] = idx
	sr.router.Add(id)
	sh.dirty = true
	sr.wake(idx)
	sr.wakeParked()
	sr.nudgeStarving()
	return id
}

// KillWorker removes worker id — the manager's onWorkerGone order:
// membership first (forward targets and ring ownership move), then the
// owning shard's surgery and requeue, then the membership-change nudge.
func (sr *ShardedReplay) KillWorker(id string) bool {
	sh := sr.shardOf(id)
	if sh == nil {
		return false
	}
	sr.router.Remove(id)
	delete(sr.workerShard, id)
	ok := sh.rp.KillWorker(id)
	sr.nudgeStarving()
	return ok
}

// EnvArrived delivers the environment on worker id (its shard's
// FileAck). File acks free no invocation capacity, so no nudge.
func (sr *ShardedReplay) EnvArrived(id string) bool {
	sh := sr.shardOf(id)
	return sh != nil && sh.rp.EnvArrived(id)
}

// EnvFailed fails worker id's in-flight peer environment fetch.
func (sr *ShardedReplay) EnvFailed(id string) bool {
	sh := sr.shardOf(id)
	return sh != nil && sh.rp.EnvFailed(id)
}

// LibReady marks the oldest deploy-bound slot on worker id ready. A
// new ready instance is capacity starving shards may be waiting for.
func (sr *ShardedReplay) LibReady(id string) bool {
	sh := sr.shardOf(id)
	if sh == nil || !sh.rp.LibReady(id) {
		return false
	}
	sr.nudgeStarving()
	return true
}

// Complete finishes one running invocation on worker id. Freed
// capacity is a shard-crossing signal (the manager's onResult nudge);
// in tenant runs the completion also returns the spec's quota unit to
// the composite plane and drains whatever it unblocks.
func (sr *ShardedReplay) Complete(id string) bool {
	sh := sr.shardOf(id)
	if sh == nil {
		return false
	}
	tenant, ok := sh.rp.completeOne(id)
	if !ok {
		return false
	}
	if sr.plane != nil && tenant != "" {
		sr.plane.release(tenant)
		sr.drainPlane()
	}
	sr.nudgeStarving()
	return true
}

// CompleteTask finishes the task bound to ring key key on worker id.
func (sr *ShardedReplay) CompleteTask(id, key string) bool {
	sh := sr.shardOf(id)
	if sh == nil {
		return false
	}
	tenant, ok := sh.rp.completeTaskOne(id, key, nil)
	if !ok {
		return false
	}
	if sr.plane != nil && tenant != "" {
		sr.plane.release(tenant)
		sr.drainPlane()
	}
	sr.nudgeStarving()
	return true
}

// Fail fails the task bound to ring key key on worker id retryably;
// the requeue stays shard-local, the manager's requeueAfter rule.
func (sr *ShardedReplay) Fail(id, key string) bool {
	sh := sr.shardOf(id)
	if sh == nil || !sh.rp.Fail(id, key) {
		return false
	}
	sr.nudgeStarving()
	return true
}

// Pending reports specs submitted but not yet placed, over all shards.
func (sr *ShardedReplay) Pending() int {
	n := 0
	for _, sh := range sr.shards {
		n += sh.rp.Pending()
	}
	return n
}

// ShardDecisions returns each shard's decision trace.
func (sr *ShardedReplay) ShardDecisions() [][]string {
	out := make([][]string, len(sr.shards))
	for i, sh := range sr.shards {
		out[i] = sh.rp.Decisions()
	}
	return out
}

// PlaneDecisions returns the submission plane's recorded trace — a
// separate stream from the shard traces, as in the manager.
func (sr *ShardedReplay) PlaneDecisions() []string { return sr.plane.decisions() }

// Decisions returns the per-shard traces merged by the deterministic
// rule (concatenation in shard-index order), prefixed by the plane
// trace when the submission plane is on — Manager.MergedDecisions.
func (sr *ShardedReplay) Decisions() []string {
	merged := shardplane.MergeTraces(sr.ShardDecisions())
	if plane := sr.PlaneDecisions(); len(plane) > 0 {
		return append(append([]string(nil), plane...), merged...)
	}
	return merged
}

// Dump renders the merged decision trace (diagnostics).
func (sr *ShardedReplay) Dump() string {
	s := ""
	for _, line := range sr.Decisions() {
		s += line + "\n"
	}
	return s
}

// ViewFor returns worker id's view entry in its owning shard, nil if
// the worker is not live.
func (sr *ShardedReplay) ViewFor(id string) *policy.WorkerView {
	if sh := sr.shardOf(id); sh != nil {
		return sh.rp.ViewFor(id)
	}
	return nil
}
