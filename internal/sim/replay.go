package sim

import (
	"repro/internal/core"
	"repro/internal/policy"
)

// Replay drives the simulator's scheduling state machine from an
// explicit event sequence instead of the virtual clock. Placement,
// staging and deploy decisions still come from the shared policy core
// against the live ClusterView; what Replay removes is time — the
// caller says when transfers land, libraries come up, and invocations
// finish. The differential harness (internal/manager) feeds one random
// event trace through a Replay and through the real manager and diffs
// their decision recorders line for line.
type Replay struct {
	st *state
}

// NewReplay builds an untimed simulation. cfg.Invocations is ignored
// (work arrives via Submit); cfg.DecisionTrace defaults to a fresh
// unbounded recorder.
func NewReplay(cfg Config) *Replay {
	cfg.defaults()
	cfg.Invocations = 0
	if cfg.DecisionTrace == nil {
		cfg.DecisionTrace = &policy.Recorder{}
	}
	st := newState(cfg)
	st.replay = true
	return &Replay{st: st}
}

// drain places pending invocations until the policy core reports no
// placement is currently possible — the untimed equivalent of the
// manager's coalesced schedule pass.
func (r *Replay) drain() {
	for r.st.pending > 0 {
		if r.st.place() == nil {
			return
		}
	}
}

// Submit enqueues n invocations and schedules as many as possible.
func (r *Replay) Submit(n int) {
	r.st.pending += n
	r.drain()
}

// EnvArrived delivers the environment tarball on worker id (the
// FileAck): the in-flight copy becomes a replica, the serving slot is
// released, and the environment is immediately usable. Returns false
// if no copy was in flight there.
func (r *Replay) EnvArrived(id string) bool {
	w := r.st.byID[id]
	if w == nil || w.hasEnv || !w.v.Pending[r.st.envObj] {
		return false
	}
	r.st.envLanded(w)
	w.hasEnv = true
	r.drain()
	return true
}

// LibReady marks the oldest deploy-bound slot on worker id ready (the
// LibraryAck), which places the invocation bound to it. Returns false
// if the worker has no deploy in progress or its environment has not
// arrived.
func (r *Replay) LibReady(id string) bool {
	w := r.st.byID[id]
	if w == nil || !w.hasEnv {
		return false
	}
	for _, sl := range w.slots {
		if sl.busy && !sl.libReady {
			r.st.markLibReady(w, sl)
			r.drain()
			return true
		}
	}
	return false
}

// Complete finishes one running invocation on worker id, freeing its
// slot and scheduling whatever the freed capacity unblocks. Returns
// false if nothing on the worker is in a completable state.
func (r *Replay) Complete(id string) bool {
	w := r.st.byID[id]
	if w == nil || !w.hasEnv {
		return false
	}
	needLib := r.st.cfg.Level == core.L3
	for _, sl := range w.slots {
		if sl.busy && (!needLib || sl.libReady) {
			r.st.freeSlot(w, sl)
			sl.served++
			r.drain()
			return true
		}
	}
	return false
}

// Pending reports invocations submitted but not yet placed.
func (r *Replay) Pending() int { return r.st.pending }

// Decisions returns the decision trace recorded so far.
func (r *Replay) Decisions() []string { return r.st.rec.Decisions }

// Dump renders the recorded decision trace (diagnostics).
func (r *Replay) Dump() string { return r.st.rec.Dump() }

// View exposes the replay's cluster view so the differential harness
// can cross-check per-worker accounting against the manager's.
func (r *Replay) View() *policy.ClusterView { return r.st.view }
