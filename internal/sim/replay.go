package sim

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/policy"
)

// Replay drives the simulator's scheduling state machine from an
// explicit event sequence instead of the virtual clock. Placement,
// staging and deploy decisions still come from the shared policy core
// against the live ClusterView; what Replay removes is time — the
// caller says when transfers land (or fail), libraries come up,
// workers join and die, and invocations finish. The differential
// harness (internal/manager) feeds one random event trace through a
// Replay and through the real manager and diffs their decision
// recorders line for line.
type Replay struct {
	st *state
	// pendq is the keyed pending-task queue (task workloads): ring
	// keys are assigned at submission — mirroring the manager, which
	// assigns task IDs in Submit — and requeued verbatim on worker
	// death or retryable failure, carrying the failed worker as the
	// avoid preference. Invocation workloads keep the plain counter
	// (st.pending): invocations of one library are interchangeable.
	pendq   []replayTask
	nextKey int
	// wakeFn, when set, replaces the internal drain: the sharded
	// composite (ShardedReplay) installs its own coalesced wake loop
	// here so the shard-crossing paths — overflow forwarding,
	// evacuation, starvation nudges — run between local passes.
	wakeFn func()
	// plane is the submission plane (cfg.Tenants, single-shard runs):
	// specs submitted via the *Tenant entry points pass admission
	// control and drain in fair-share order, exactly as the manager's
	// submitPlane. It records into its own recorder — the manager's
	// plane trace is a separate stream from the shard traces. The
	// sharded composite keeps its plane on ShardedReplay instead.
	plane *simPlane
}

type replayTask struct {
	key   string
	avoid string
	// hops counts overflow forwards (sharded replay only): once a task
	// has visited every shard without placing it rests until a
	// membership change or starvation nudge resets the budget — the
	// manager's pendingTask.hops.
	hops int
	// tenant names the submitting tenant (requeued verbatim, like the
	// manager's pendingTask.t.TenantID) so completions release the
	// right quota.
	tenant string
	// refs are proxy-object input IDs (§15): the task's inputs are the
	// environment plus one RefSpec per entry, resolved through the ref
	// mirror at stage execution. Requeued verbatim, like the manager
	// requeueing the task spec whose Inputs carry the refs.
	refs []string
}

// NewReplay builds an untimed simulation. cfg.Invocations is ignored
// (work arrives via Submit); cfg.DecisionTrace defaults to a fresh
// unbounded recorder.
func NewReplay(cfg Config) *Replay {
	cfg.defaults()
	cfg.Invocations = 0
	if cfg.DecisionTrace == nil {
		cfg.DecisionTrace = &policy.Recorder{}
	}
	st := newState(cfg)
	st.replay = true
	st.refs = newSimRefs(cfg.RefOwnedBytesCap)
	r := &Replay{st: st}
	if len(cfg.Tenants) > 0 {
		r.plane = newSimPlane(cfg.Tenants, &policy.Recorder{})
		st.trackOwners = true
	}
	return r
}

// drain runs one schedule pass — the untimed equivalent of the
// manager's coalesced wake. With a wakeFn installed (sharded replay)
// the composite's wake loop runs instead, so forwarding and
// evacuation happen between local passes.
func (r *Replay) drain() {
	if r.wakeFn != nil {
		r.wakeFn()
		return
	}
	r.drainPass()
}

// drainPass runs one local schedule pass, with no shard-crossing
// paths.
func (r *Replay) drainPass() {
	if r.st.cfg.Level == core.L3 {
		r.drainInvs()
		return
	}
	r.drainTasks()
}

// drainInvs places pending invocations until the policy core reports
// no placement is possible — scheduleLibQueueLocked's skip-and-stop
// pass (every queued invocation of the one library would hit the same
// cluster state, so the first failure ends the pass).
func (r *Replay) drainInvs() {
	if r.st.cfg.Batched {
		r.drainInvsBatched()
		return
	}
	for r.st.pending > 0 {
		if r.st.place() == nil {
			return
		}
	}
}

// drainInvsBatched is the same pass through the batched entry point
// the sharded manager uses: one PlaceReadyBatch call covers the whole
// pool (its overlay stops exactly where sequential execution would),
// and the remainder tries deploys one at a time — an instance deployed
// mid-pass is not Ready until its ack, so no ready capacity can appear
// between the batch and the deploys.
func (r *Replay) drainInvsBatched() {
	st := r.st
	if st.pending == 0 {
		return
	}
	for _, d := range st.view.PlaceReadyBatch(st.lib, st.pending, nil) {
		st.execReady(d)
	}
	for st.pending > 0 {
		if st.tryDeploy() == nil {
			return
		}
	}
}

// drainTasks runs one skip-and-continue pass over the keyed queue —
// the manager's scheduleTasksLocked: a task that cannot place is
// skipped in place, later tasks still get their try, and queue order
// is preserved. Skip-and-continue matters once requeues make the
// queue heterogeneous (different keys, different avoid preferences).
func (r *Replay) drainTasks() {
	if r.st.cfg.Batched {
		r.drainTasksBatched()
		return
	}
	remaining := r.pendq[:0]
	for _, pt := range r.pendq {
		if placed, _ := r.placeKeyed(pt); !placed {
			remaining = append(remaining, pt)
		}
	}
	r.pendq = remaining
}

// drainTasksBatched plans the whole keyed queue in one PlanTaskBatch
// call and executes the returned placements in order. The batch
// contract is strict sequential equivalence, so the decision trace is
// identical to drainTasks's plan-one/execute-one loop — the
// batched-vs-unbatched differential test (batched_test.go) proves it.
func (r *Replay) drainTasksBatched() {
	st := r.st
	if len(r.pendq) == 0 {
		return
	}
	decisions := st.view.PlanTaskBatch(r.taskReqs(), st.stackFilter())
	remaining := r.pendq[:0]
	for i, pt := range r.pendq {
		if decisions[i].Worker == nil {
			remaining = append(remaining, pt)
			continue
		}
		r.execKeyed(pt, decisions[i])
	}
	r.pendq = remaining
}

// taskReqs renders the pending queue as a batch-planning request list.
func (r *Replay) taskReqs() []policy.TaskReq {
	reqs := make([]policy.TaskReq, len(r.pendq))
	for i, pt := range r.pendq {
		reqs[i] = policy.TaskReq{Key: pt.key, Res: oneSlot, Inputs: r.taskInputs(pt), Avoid: pt.avoid, Tenant: pt.tenant}
	}
	return reqs
}

// taskInputs builds one task's input specs: the environment (L2/L3)
// plus a RefSpec per proxy-object input, rebuilt from the ref catalog
// so both engines plan over identical bindings.
func (r *Replay) taskInputs(pt replayTask) []core.FileSpec {
	st := r.st
	var inputs []core.FileSpec
	if st.cfg.Level != core.L1 {
		inputs = append(inputs, st.envSpec)
	}
	for _, id := range pt.refs {
		inputs = append(inputs, st.refs.spec(id))
	}
	return inputs
}

// placeKeyed attempts one keyed task placement, mirroring the
// manager's task pass: first excluding the avoid worker, then
// anywhere — the avoided worker beats starving. blocked reports a
// placement refused only because first copies are in flight (the
// manager keeps those local; they never overflow-forward).
func (r *Replay) placeKeyed(pt replayTask) (placed, blocked bool) {
	st := r.st
	inputs := r.taskInputs(pt)
	base := st.stackFilter()
	d := st.view.PlanTask(pt.key, oneSlot, inputs, andFilter(policy.Excluding(pt.avoid), base))
	if d.Worker == nil && pt.avoid != "" {
		d = st.view.PlanTask(pt.key, oneSlot, inputs, base)
	}
	if d.Worker == nil {
		return false, len(d.Blocked) > 0
	}
	r.execKeyed(pt, d)
	return true, false
}

// execKeyed carries out one planned keyed placement: trace, staging,
// slot binding.
func (r *Replay) execKeyed(pt replayTask, d policy.PlaceTask) {
	st := r.st
	w := st.byID[d.Worker.ID]
	if st.rec != nil {
		st.rec.Record(policy.TraceTask(pt.key, d))
	}
	for _, sf := range d.Stages {
		st.execStage(sf)
	}
	sl := w.firstFree(false)
	st.takeSlot(w, sl)
	sl.invIdx = st.nextInv
	st.nextInv++
	sl.key = pt.key
	sl.refs = pt.refs
	sl.owner, sl.tenant = int64(taskKeyNum(pt.key)), pt.tenant
}

// ---- sharded-replay hooks (ShardedReplay) ----

// drainTasksSharded runs the sharded manager's task pass for one
// composite shard: statically ineligible tasks hop to the next live
// shard before planning (the avoid fallback would otherwise pin them
// to the avoided worker forever), planner failures hop only while the
// shard is quiet — no local event will ever free capacity — and within
// the hop budget. Returns the tasks to forward.
func (r *Replay) drainTasksSharded(hasNext bool, maxHops int) (forward []replayTask) {
	if len(r.pendq) == 0 {
		return nil
	}
	if hasNext {
		keep := r.pendq[:0]
		for _, pt := range r.pendq {
			if pt.hops < maxHops && !r.anyEligible(pt.avoid) {
				pt.hops++
				forward = append(forward, pt)
				continue
			}
			keep = append(keep, pt)
		}
		r.pendq = keep
		if len(r.pendq) == 0 {
			return forward
		}
	}
	// Batched mode plans the whole queue up front (the manager's
	// PlanTaskBatch call); unbatched plans each task against the
	// executed state of its predecessors. Sequential equivalence makes
	// the decision streams identical, and quiet() is evaluated at the
	// same point either way: during execution, after every earlier
	// placement in the pass has landed.
	var decisions []policy.PlaceTask
	if r.st.cfg.Batched {
		decisions = r.st.view.PlanTaskBatch(r.taskReqs(), r.st.stackFilter())
	}
	remaining := r.pendq[:0]
	for i, pt := range r.pendq {
		var placed, blocked bool
		if decisions != nil {
			if d := decisions[i]; d.Worker != nil {
				r.execKeyed(pt, d)
				placed = true
			} else {
				blocked = len(d.Blocked) > 0
			}
		} else {
			placed, blocked = r.placeKeyed(pt)
		}
		if placed {
			continue
		}
		if !blocked && hasNext && pt.hops < maxHops && r.quiet() {
			pt.hops++
			forward = append(forward, pt)
			continue
		}
		remaining = append(remaining, pt)
	}
	r.pendq = remaining
	return forward
}

// quiet is the manager's quietLocked: no local event is pending that
// could change this shard's placement state — nothing dispatched
// (busy slots double as the inflight table), no copies awaiting acks.
func (r *Replay) quiet() bool {
	if len(r.st.view.PendingCopies) > 0 {
		return false
	}
	for _, w := range r.st.workers {
		if !w.dead && w.busySlots > 0 {
			return false
		}
	}
	return true
}

// anyEligible is the manager's anyEligibleWorkerLocked: some live
// non-avoided worker is large enough to ever hold a one-slot task.
// The append-only worker slice gives a deterministic scan (the
// manager's map scan is an existence check, so order is immaterial
// there too).
func (r *Replay) anyEligible(avoid string) bool {
	for _, w := range r.st.workers {
		if !w.dead && w.id != avoid && oneSlot.Fits(w.v.Total) {
			return true
		}
	}
	return false
}

// extractPending removes and returns every queued spec so the sharded
// composite can evacuate a workerless shard — extractPendingLocked.
// refs carries the invocation pool's owner FIFO (tenant runs): a
// workerless shard holds no claimed installs, so the FIFO and the pool
// move whole, in order.
func (r *Replay) extractPending() (tasks []replayTask, invs int, refs []specRef) {
	tasks = r.pendq
	r.pendq = nil
	invs = r.st.pending
	r.st.pending = 0
	if r.st.trackOwners {
		refs = append(refs, r.st.queuedOwners()...)
		r.st.owners, r.st.ownersHead = nil, 0
	}
	return tasks, invs, refs
}

// liveWorkers reports how many live workers this replay holds.
func (r *Replay) liveWorkers() int { return len(r.st.byID) }

// andFilter conjoins two optional view filters.
func andFilter(a, b policy.Filter) policy.Filter {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(w *policy.WorkerView) bool { return a(w) && b(w) }
}

func taskKeyNum(k string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(k, "task-"))
	return n
}

// Submit enqueues n invocations and schedules as many as possible.
// nextKey is the replay's spec counter — the manager's nextID, shared
// by tasks and invocations — so ring keys, owner IDs, and routing
// agree across engines whatever the submission mix.
func (r *Replay) Submit(n int) {
	if r.st.cfg.Level == core.L3 {
		for i := 0; i < n; i++ {
			r.nextKey++
			r.st.pending++
			if r.st.trackOwners {
				r.st.pushOwner(specRef{id: int64(r.nextKey)})
			}
		}
	} else {
		for i := 0; i < n; i++ {
			r.nextKey++
			r.pendq = append(r.pendq, replayTask{key: "task-" + strconv.Itoa(r.nextKey)})
		}
	}
	r.drain()
}

// SubmitTaskRefs enqueues one task consuming the given proxy-object
// results (inputs: environment + one RefSpec per ID) and schedules it
// if possible — the manager's Submit of a TaskSpec whose Inputs carry
// core.RefSpec bindings. The refs must already exist in the catalog
// (created by earlier CompleteTaskRef calls).
func (r *Replay) SubmitTaskRefs(refs ...string) {
	r.nextKey++
	r.pendq = append(r.pendq, replayTask{key: "task-" + strconv.Itoa(r.nextKey), refs: refs})
	r.drain()
}

// RefArrived confirms a consumer's ref fetch on worker id (the
// FileAck{Ok:true, Cache:true}): the in-flight copy becomes a view
// replica and the consumer registers as a holder in the ref catalog.
// Returns false if no ref copy is in flight there.
func (r *Replay) RefArrived(id, refID string) bool {
	st := r.st
	w := st.byID[id]
	if w == nil || !w.v.Pending[refID] {
		return false
	}
	st.view.ClearPending(w.v, refID)
	st.view.NoteReplica(w.v, refID)
	st.refs.tab.AddRefHolder(id, refID)
	r.drain()
	return true
}

// RefFailed fails a consumer's in-flight ref fetch on worker id (the
// FileAck{Ok:false} path): the manager retracts every non-owner holder
// — the walk just proved the replica records unreliable — and plans a
// fresh traced resolve against what survives. Returns false if no ref
// copy is in flight there.
func (r *Replay) RefFailed(id, refID string) bool {
	st := r.st
	w := st.byID[id]
	if w == nil || !w.v.Pending[refID] {
		return false
	}
	st.view.ClearPending(w.v, refID)
	st.refs.restage(st, w, refID)
	r.drain()
	return true
}

// RefDecisions returns the ref mirror's recorded decision stream — the
// global trace diffed against Manager.RefDecisions.
func (r *Replay) RefDecisions() []string { return r.st.refs.decisions() }

// SubmitTenant submits one spec for tenant — the manager's
// Submit/SubmitInvocation with a TenantID: admission control, then the
// fair-share drain releases whatever became eligible. L3 runs submit
// an invocation, task runs a keyed task whose ring key comes from the
// shared spec counter (the manager derives it from the spec ID).
// Unregistered tenants degrade to the direct single-tenant path.
func (r *Replay) SubmitTenant(tenant string) {
	r.nextKey++
	var it simPlaneItem
	if r.st.cfg.Level == core.L3 {
		it = simPlaneItem{ref: specRef{id: int64(r.nextKey), tenant: tenant}}
	} else {
		it = simPlaneItem{isTask: true, task: replayTask{key: "task-" + strconv.Itoa(r.nextKey), tenant: tenant}}
	}
	if r.plane != nil && tenant != "" {
		known, accepted := r.plane.submit(tenant, it)
		if known {
			if accepted && r.drainPlane() > 0 {
				r.drain()
			}
			return
		}
	}
	if it.isTask {
		r.pendq = append(r.pendq, it.task)
	} else {
		r.st.pending++
		if r.st.trackOwners {
			r.st.pushOwner(it.ref)
		}
	}
	r.drain()
}

// drainPlane moves fair-share-released specs into this replay's local
// queues (single-shard runs; the sharded composite routes instead).
// Returns the release count; callers drain the engine only when it is
// nonzero, mirroring the manager waking shards only for fed intake.
func (r *Replay) drainPlane() int {
	if r.plane == nil {
		return 0
	}
	return r.plane.drain(func(it simPlaneItem, tenant string, seq int64) {
		if it.isTask {
			r.pendq = append(r.pendq, it.task)
			return
		}
		r.st.pending++
		r.st.pushOwner(it.ref)
	})
}

// finishRelease returns the completed spec's quota unit and schedules
// whatever the release unblocks (single-shard runs).
func (r *Replay) finishRelease(tenant string) {
	if r.plane == nil || tenant == "" {
		return
	}
	r.plane.release(tenant)
	if r.drainPlane() > 0 {
		r.drain()
	}
}

// PlaneDecisions returns the submission plane's recorded trace — a
// separate stream from the shard trace, as in the manager.
func (r *Replay) PlaneDecisions() []string { return r.plane.decisions() }

// EnvArrived delivers the environment tarball on worker id (the
// FileAck): the in-flight copy becomes a replica, the serving slot is
// released, and the environment is immediately usable. Returns false
// if no copy was in flight there.
func (r *Replay) EnvArrived(id string) bool {
	w := r.st.byID[id]
	if w == nil || w.hasEnv || !w.v.Pending[r.st.envObj] {
		return false
	}
	r.st.envLanded(w)
	w.hasEnv = true
	r.drain()
	return true
}

// EnvFailed fails worker id's in-flight *peer* environment fetch (the
// FileAck{Ok:false} path): the source's transfer slot comes back (if
// the source is still alive), the in-flight copy is cleared, and —
// mirroring the manager's recovery — the copy is immediately restaged
// over the manager's own link. Recovery bypasses the policy core on
// both engines, so no decision is traced. Returns false if no peer
// fetch is in flight there (failed direct sends are never restaged).
func (r *Replay) EnvFailed(id string) bool {
	st := r.st
	w := st.byID[id]
	if w == nil || w.hasEnv || !w.v.Pending[st.envObj] || w.envSrc == nil {
		return false
	}
	src := w.envSrc
	w.envSrc = nil
	if !src.dead && src.v.TransfersOut > 0 {
		src.v.TransfersOut--
	}
	st.view.ClearPending(w.v, st.envObj)
	st.view.NotePending(w.v, st.envObj)
	st.view.ManagerSends++
	st.res.EnvDirect++
	r.drain()
	return true
}

// AddWorker joins a fresh worker mid-run (the manager registering a
// new connection), continuing the wNNNN numbering — dead IDs are never
// reused — and schedules anything the new capacity unblocks. Returns
// the new worker's ID.
func (r *Replay) AddWorker() string {
	w := r.st.addWorker()
	r.drain()
	return w.id
}

// KillWorker removes worker id mid-run — the manager's onWorkerGone:
// the source serving its inbound fetch gets its transfer slot back,
// the view drops its replicas, in-flight copies, instances and ring
// position, and everything bound to its slots requeues in ascending
// spec order with the dead worker as the avoid preference. Transfers
// the dead worker was *serving* are not failed here; the caller fails
// each stranded destination via EnvFailed, exactly as the real
// destinations' own failing FileAcks would arrive later.
func (r *Replay) KillWorker(id string) bool {
	st := r.st
	w := st.byID[id]
	if w == nil {
		return false
	}
	// Re-home every ref the dead worker owned before its queue
	// teardown — the manager calls refPlane.rehome before taking the
	// shard lock. Trace-silent when the worker owned nothing.
	st.refs.rehome(id)
	if src := w.envSrc; src != nil {
		w.envSrc = nil
		if !src.dead && src.v.TransfersOut > 0 {
			src.v.TransfersOut--
		}
	} else if w.v.Pending[st.envObj] && st.view.ManagerSends > 0 {
		st.view.ManagerSends--
	}
	st.view.RemoveWorker(w.v)
	delete(st.byID, id)
	w.dead = true
	if st.cfg.Level == core.L3 {
		// Bound invocations — dispatched or riding a deploy — go back
		// to the interchangeable pending pool, matching the manager's
		// requeue of its inflight plus the released install claim. In
		// tenant runs, dispatched (libReady) slots re-enter the owner
		// FIFO tail in ascending spec order — the manager requeues its
		// inflight sorted by ID — while a riding deploy's claim keeps
		// its original FIFO position (the owner was never popped).
		var refs []specRef
		for _, sl := range w.slots {
			if sl.busy {
				if st.trackOwners && sl.libReady {
					refs = append(refs, specRef{id: sl.owner, tenant: sl.tenant})
				}
				sl.busy = false
				sl.owner, sl.tenant = 0, ""
				st.pending++
			}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
		for _, ref := range refs {
			st.pushOwner(ref)
		}
	} else {
		var requeue []replayTask
		for _, sl := range w.slots {
			if sl.busy {
				sl.busy = false
				requeue = append(requeue, replayTask{key: sl.key, avoid: id, tenant: sl.tenant, refs: sl.refs})
				sl.key = ""
				sl.refs = nil
				sl.owner, sl.tenant = 0, ""
			}
		}
		sort.Slice(requeue, func(i, j int) bool { return taskKeyNum(requeue[i].key) < taskKeyNum(requeue[j].key) })
		r.pendq = append(r.pendq, requeue...)
	}
	r.drain()
	return true
}

// LibReady marks the oldest deploy-bound slot on worker id ready (the
// LibraryAck), which places the invocation bound to it. Returns false
// if the worker has no deploy in progress or its environment has not
// arrived.
func (r *Replay) LibReady(id string) bool {
	w := r.st.byID[id]
	if w == nil || !w.hasEnv {
		return false
	}
	for _, sl := range w.slots {
		if sl.busy && !sl.libReady {
			r.st.markLibReady(w, sl)
			r.drain()
			return true
		}
	}
	return false
}

// Complete finishes one running invocation on worker id, freeing its
// slot and scheduling whatever the freed capacity unblocks. Returns
// false if nothing on the worker is in a completable state. Task
// workloads under churn should use CompleteTask: requeues carry ring
// keys, so the engines must agree on which task each slot was running.
func (r *Replay) Complete(id string) bool {
	tenant, ok := r.completeOne(id)
	if !ok {
		return false
	}
	r.finishRelease(tenant)
	return true
}

// completeOne frees one completable slot — in tenant runs the one with
// the lowest owner, because the differential harness completes the
// manager's lowest in-flight spec ID on that worker — runs the local
// drain, and returns the released tenant. The quota release itself is
// the caller's: single-shard runs release into r.plane, the sharded
// composite into its own plane.
func (r *Replay) completeOne(id string) (string, bool) {
	st := r.st
	w := st.byID[id]
	if w == nil || !w.hasEnv {
		return "", false
	}
	needLib := st.cfg.Level == core.L3
	var pick *slot
	for _, sl := range w.slots {
		if !sl.busy || (needLib && !sl.libReady) {
			continue
		}
		if !st.trackOwners {
			pick = sl
			break
		}
		if pick == nil || sl.owner < pick.owner {
			pick = sl
		}
	}
	if pick == nil {
		return "", false
	}
	tenant := pick.tenant
	st.freeSlot(w, pick)
	pick.served++
	pick.key = ""
	pick.owner, pick.tenant = 0, ""
	r.drain()
	return tenant, true
}

// CompleteTask finishes the task bound to ring key key on worker id.
func (r *Replay) CompleteTask(id, key string) bool {
	tenant, ok := r.completeTaskOne(id, key, nil)
	if !ok {
		return false
	}
	r.finishRelease(tenant)
	return true
}

// CompleteTaskRef finishes the task bound to ring key key on worker id
// with a pass-by-reference result — the manager's onResult for a
// Result carrying an ObjectRef: the producing worker becomes the ref's
// owner and holder of record, and the catalog (not the manager's wire)
// carries the object from then on.
func (r *Replay) CompleteTaskRef(id, key string, ref core.ObjectRef) bool {
	tenant, ok := r.completeTaskOne(id, key, &ref)
	if !ok {
		return false
	}
	r.finishRelease(tenant)
	return true
}

// completeTaskOne is completeOne addressed by ring key. ref, when
// non-nil, is a by-ref result: the ownership transfer lands in the ref
// catalog before the freed slot's schedule pass, exactly where the
// manager's onResult hook runs.
func (r *Replay) completeTaskOne(id, key string, ref *core.ObjectRef) (string, bool) {
	st := r.st
	w := st.byID[id]
	if w == nil || !w.hasEnv {
		return "", false
	}
	for _, sl := range w.slots {
		if sl.busy && sl.key == key {
			tenant := sl.tenant
			if ref != nil {
				st.refs.result(id, *ref)
			}
			st.freeSlot(w, sl)
			st.noteRefInputs(w, sl)
			sl.served++
			sl.key = ""
			sl.refs = nil
			sl.owner, sl.tenant = 0, ""
			r.drain()
			return tenant, true
		}
	}
	return "", false
}

// noteRefInputs mirrors the manager's onResult replica notes for a
// finished task's cacheable inputs: the bytes are resident on the
// worker whatever the task's outcome. The environment's note is always
// a dedup no-op (its ack gated the completion), so only the
// proxy-object inputs are recorded — including a lost ref that never
// staged, which becomes the same (vacuous) view replica on both
// engines.
func (st *state) noteRefInputs(w *wstate, sl *slot) {
	for _, id := range sl.refs {
		st.view.NoteReplica(w.v, id)
	}
}

// Fail fails the task bound to ring key key on worker id retryably —
// the manager's Retryable-result path: the slot frees and the key
// requeues at the back of the queue with this worker as the avoid
// preference (the retry prefers any other placement, falling back to
// the avoided worker over starving).
func (r *Replay) Fail(id, key string) bool {
	st := r.st
	w := st.byID[id]
	if w == nil || !w.hasEnv {
		return false
	}
	for _, sl := range w.slots {
		if sl.busy && sl.key == key {
			tenant := sl.tenant
			refs := sl.refs
			st.freeSlot(w, sl)
			st.noteRefInputs(w, sl)
			sl.key = ""
			sl.refs = nil
			sl.owner, sl.tenant = 0, ""
			// A retry holds its quota unit — the manager releases only on
			// final delivery — so the requeue carries the tenant, no release.
			r.pendq = append(r.pendq, replayTask{key: key, avoid: id, tenant: tenant, refs: refs})
			r.drain()
			return true
		}
	}
	return false
}

// Pending reports invocations submitted but not yet placed.
func (r *Replay) Pending() int { return r.st.pending + len(r.pendq) }

// Decisions returns the decision trace recorded so far, prefixed by
// the ref mirror's stream and the submission plane's trace when either
// is non-empty — the manager's MergedDecisions concatenation rule
// (plane, then refs, then the shard trace).
func (r *Replay) Decisions() []string {
	merged := r.st.rec.Decisions
	if refs := r.RefDecisions(); len(refs) > 0 {
		merged = append(refs, merged...)
	}
	if plane := r.plane.decisions(); len(plane) > 0 {
		return append(append([]string(nil), plane...), merged...)
	}
	return merged
}

// Dump renders the recorded decision trace (diagnostics).
func (r *Replay) Dump() string { return r.st.rec.Dump() }

// View exposes the replay's cluster view so the differential harness
// can cross-check per-worker accounting against the manager's.
func (r *Replay) View() *policy.ClusterView { return r.st.view }

// ViewFor returns worker id's view entry, or nil if it is not live
// here — the engine-neutral cross-check hook (a sharded engine owns
// each worker in exactly one shard).
func (r *Replay) ViewFor(id string) *policy.WorkerView {
	if w := r.st.byID[id]; w != nil {
		return w.v
	}
	return nil
}
