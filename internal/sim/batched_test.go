package sim

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
)

// Batched-vs-unbatched differential: one random event script drives
// two Replays that differ only in Config.Batched, so the per-decision
// policy entry points (PlanTask / PlaceReady) and the batched ones
// (PlanTaskBatch / PlaceReadyBatch) replay the same trace. The batch
// contract promises strict sequential equivalence — each batch
// decision must equal what the per-decision call would have returned
// against the incrementally-updated view — so the two engines must
// accept exactly the same events and emit byte-identical decision
// traces. This is the single-engine half of the sharded fidelity
// argument: the manager's sharded pass plans through the batch entry
// points, and internal/manager's differential tests compare it against
// the batched Replay; this test closes the loop back to the
// per-decision simulator the golden traces were recorded with.

func newBatchedPair(level core.ReuseLevel, slots int) (plain, batched *Replay) {
	mk := func(b bool) *Replay {
		return NewReplay(Config{
			App:              &apps.CostModel{Name: "batchlib", EnvPackedBytes: 64 << 20},
			Level:            level,
			Workers:          5,
			SlotsPerWorker:   slots,
			PeerTransfers:    true,
			PeerCap:          3,
			ManagerSourceCap: 1 << 30,
			Seed:             1,
			Batched:          b,
		})
	}
	return mk(false), mk(true)
}

// both applies one event to both engines and requires them to agree on
// whether it was accepted; divergent acceptance means the batched
// drain saw a different view than the per-decision one.
func both(t *testing.T, op string, a, b bool) bool {
	t.Helper()
	if a != b {
		t.Fatalf("%s: unbatched=%v batched=%v", op, a, b)
	}
	return a
}

func runBatchedDifferential(t *testing.T, level core.ReuseLevel, slots int, seed int64, ops int) {
	plain, batched := newBatchedPair(level, slots)
	rng := rand.New(rand.NewSource(seed))
	var live []string
	for i := 0; i < 5; i++ {
		live = append(live, "w"+pad4(i))
	}
	joins := 0
	for i := 0; i < ops; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			n := 1 + rng.Intn(4)
			plain.Submit(n)
			batched.Submit(n)
		case 3, 4:
			for _, k := range rng.Perm(len(live)) {
				if both(t, "EnvArrived("+live[k]+")",
					plain.EnvArrived(live[k]), batched.EnvArrived(live[k])) {
					break
				}
			}
		case 5:
			if level == core.L3 {
				for _, k := range rng.Perm(len(live)) {
					if both(t, "LibReady("+live[k]+")",
						plain.LibReady(live[k]), batched.LibReady(live[k])) {
						break
					}
				}
			}
		case 6:
			for _, k := range rng.Perm(len(live)) {
				if both(t, "EnvFailed("+live[k]+")",
					plain.EnvFailed(live[k]), batched.EnvFailed(live[k])) {
					break
				}
			}
		case 7:
			// Churn exercises the batch planners' failure paths: kills
			// requeue work carrying an avoid preference (the two-phase
			// Excluding fallback inside PlanTaskBatch), and joins grow
			// the view mid-batch.
			if len(live) > 3 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				both(t, "KillWorker("+live[k]+")",
					plain.KillWorker(live[k]), batched.KillWorker(live[k]))
				live = append(live[:k], live[k+1:]...)
			} else if joins < 4 {
				joins++
				ida, idb := plain.AddWorker(), batched.AddWorker()
				if ida != idb {
					t.Fatalf("AddWorker: unbatched=%s batched=%s", ida, idb)
				}
				live = append(live, ida)
			}
		default:
			for _, k := range rng.Perm(len(live)) {
				if both(t, "Complete("+live[k]+")",
					plain.Complete(live[k]), batched.Complete(live[k])) {
					break
				}
			}
		}
	}
	// Quiesce both engines: sweep deliveries and completions in worker
	// order until a full sweep makes no progress, still in lockstep.
	for progress := true; progress; {
		progress = false
		for _, id := range live {
			if both(t, "quiesce EnvArrived("+id+")",
				plain.EnvArrived(id), batched.EnvArrived(id)) {
				progress = true
			}
			if level == core.L3 && both(t, "quiesce LibReady("+id+")",
				plain.LibReady(id), batched.LibReady(id)) {
				progress = true
			}
			if both(t, "quiesce Complete("+id+")",
				plain.Complete(id), batched.Complete(id)) {
				progress = true
			}
		}
	}
	if p, q := plain.Pending(), batched.Pending(); p != 0 || q != 0 {
		t.Fatalf("pending after quiesce: unbatched=%d batched=%d", p, q)
	}
	pd, bd := plain.Decisions(), batched.Decisions()
	for i := 0; i < len(pd) && i < len(bd); i++ {
		if pd[i] != bd[i] {
			t.Fatalf("decision %d diverged:\nunbatched: %s\nbatched:   %s\nunbatched trace:\n%s\nbatched trace:\n%s",
				i, pd[i], bd[i], plain.Dump(), batched.Dump())
		}
	}
	if len(pd) != len(bd) {
		t.Fatalf("trace lengths diverged: unbatched=%d batched=%d", len(pd), len(bd))
	}
	if len(pd) < ops/4 {
		t.Fatalf("degenerate run: only %d decisions over %d ops", len(pd), ops)
	}
}

func TestBatchedReplayDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		runBatchedDifferential(t, core.L2, 2, seed, 500)
		runBatchedDifferential(t, core.L3, 1, seed, 500)
		runBatchedDifferential(t, core.L3, 2, seed+100, 500)
	}
}
