package sim

import (
	"repro/internal/core"
	"repro/internal/policy"
)

// simPlane mirrors the manager's submission plane (internal/manager
// submit.go, DESIGN.md §14) for both simulator drivers: the same pure
// policy calls — AdmitSubmit on every tenant-carrying spec,
// PlanSubmitBatch for the fair-share drain order — against the same
// per-tenant accounting, recorded through the same trace lines. The
// simulator is single-threaded, so the plane needs no mutex and no
// deferred-wake machinery; everything else is line for line what the
// manager does, which is exactly what the differential harness proves.
type simPlane struct {
	queues []*simTenantQueue
	// states aliases each queue's TenantState in tenant-index order —
	// the slice the pure policy calls take.
	states []*policy.TenantState
	byName map[string]int
	// rec records admit verdicts and drain picks. The replay drivers
	// give the plane its own recorder (the manager's plane trace is a
	// separate stream from the shard traces); the timed simulator
	// shares its run recorder, interleaving plane and placement lines.
	rec *policy.Recorder

	shed      int
	throttled int
}

// simTenantQueue is one tenant's plane state: accounting for the pure
// policy calls plus the FIFO of admitted-but-unreleased specs.
type simTenantQueue struct {
	state policy.TenantState
	q     []simPlaneItem
	head  int
	// drained is the tenant's invocation routing cursor
	// (shardplane.Router.RouteSpecTenant), advanced per drained
	// invocation exactly as the manager's tenantQueue.drained.
	drained int64
}

// simPlaneItem is one queued spec: a keyed task, or (isTask false) an
// invocation identified by its specRef.
type simPlaneItem struct {
	isTask bool
	task   replayTask
	ref    specRef
}

// specRef identifies one admitted invocation across the plane and the
// slot it eventually binds to: the manager-side spec ID plus the
// owning tenant, so quota releases on completion name the same tenant
// in both engines.
type specRef struct {
	id     int64
	tenant string
}

// newSimPlane builds the plane over the normalized tenant registry.
func newSimPlane(specs []core.TenantSpec, rec *policy.Recorder) *simPlane {
	norm := core.NormalizeTenants(specs, policy.MaxTenantWeight)
	p := &simPlane{byName: make(map[string]int, len(norm)), rec: rec}
	for i, ts := range norm {
		tq := &simTenantQueue{state: policy.TenantState{Spec: ts}}
		p.queues = append(p.queues, tq)
		p.states = append(p.states, &tq.state)
		p.byName[ts.Name] = i
	}
	return p
}

// submit runs one spec through admission control — the manager's
// submitPlane.submit without the locking and the shed-result delivery.
// known is false for unregistered tenants (the caller degrades to the
// direct single-tenant path); accepted is false when the spec was shed.
func (p *simPlane) submit(tenant string, it simPlaneItem) (known, accepted bool) {
	ti, ok := p.byName[tenant]
	if !ok {
		return false, false
	}
	tq := p.queues[ti]
	d := policy.AdmitSubmit(&tq.state)
	p.rec.Record(policy.TraceAdmit(tenant, d))
	if d.Verdict == policy.AdmitShed {
		p.shed++
		return true, false
	}
	if d.Verdict == policy.AdmitThrottle {
		p.throttled++
	}
	policy.NoteQueued(p.states, &tq.state)
	tq.q = append(tq.q, it)
	return true, true
}

// drain releases queued specs in fair-share order until no tenant is
// eligible — the manager's drainLocked, with the shard hand-off
// abstracted into route: each released item is delivered with its
// tenant name and (for invocations) the tenant's routing cursor value
// at release time. Returns the release count.
func (p *simPlane) drain(route func(it simPlaneItem, tenant string, seq int64)) int {
	picks := policy.PlanSubmitBatch(p.states, 0, p.rec)
	for _, ti := range picks {
		tq := p.queues[ti]
		it := tq.q[tq.head]
		tq.q[tq.head] = simPlaneItem{} // drop spec references
		tq.head++
		if tq.head == len(tq.q) {
			tq.q, tq.head = tq.q[:0], 0
		}
		var seq int64
		if !it.isTask {
			seq = tq.drained
			tq.drained++
		}
		route(it, tq.state.Spec.Name, seq)
	}
	return len(picks)
}

// release returns one unit of a tenant's in-flight quota — called on
// every completion of a plane-admitted spec, empty tenant a no-op.
func (p *simPlane) release(tenant string) {
	if tenant == "" {
		return
	}
	ti, ok := p.byName[tenant]
	if !ok {
		return
	}
	if tq := p.queues[ti]; tq.state.InFlight > 0 {
		tq.state.InFlight--
	}
}

// decisions returns the plane's recorded trace (nil plane/recorder
// safe).
func (p *simPlane) decisions() []string {
	if p == nil || p.rec == nil {
		return nil
	}
	return p.rec.Decisions
}

// ---- owner threading through the pending pool ----

// pushOwner appends one admitted invocation's identity to the pool's
// owner FIFO.
func (st *state) pushOwner(ref specRef) { st.owners = append(st.owners, ref) }

// popOwner removes the FIFO head (head-indexed with storage recycling,
// like the manager's tenantQueue). An empty FIFO yields the zero ref —
// an untracked spec — rather than panicking.
func (st *state) popOwner() specRef {
	if st.ownersHead == len(st.owners) {
		return specRef{}
	}
	ref := st.owners[st.ownersHead]
	st.owners[st.ownersHead] = specRef{}
	st.ownersHead++
	if st.ownersHead == len(st.owners) {
		st.owners, st.ownersHead = st.owners[:0], 0
	}
	return ref
}

// queuedOwners returns the FIFO's live window (evacuation).
func (st *state) queuedOwners() []specRef { return st.owners[st.ownersHead:] }

// stampOwner assigns the next placed invocation's identity to the slot
// in replay runs: the manager pops its pending queue's head at every
// recorded placement, so the replay pops the owner FIFO at the same
// points — execReady and the deploy-ack placement in markLibReady.
func (st *state) stampOwner(sl *slot) {
	if st.trackOwners && st.replay {
		ref := st.popOwner()
		sl.owner, sl.tenant = ref.id, ref.tenant
	}
}

// ---- the timed simulator's tenant mode ----

// startTenantArrivals switches a timed run into tenant mode: the
// submission plane forms over Config.Tenants, the batch-sized pending
// pool empties, and each tenant gets an independent Poisson arrival
// process (exponential inter-arrival gaps from the run's RNG) feeding
// admission control.
func (st *state) startTenantArrivals() {
	if len(st.cfg.Tenants) == 0 || st.replay {
		return
	}
	st.plane = newSimPlane(st.cfg.Tenants, st.rec)
	st.trackOwners = true
	st.pending = 0
	st.arrivalsLeft = make([]int, len(st.cfg.Tenants))
	for i := range st.cfg.Tenants {
		if i < len(st.cfg.TenantInvocations) {
			st.arrivalsLeft[i] = st.cfg.TenantInvocations[i]
		}
		if st.arrivalsLeft[i] > 0 {
			st.scheduleArrival(i)
		}
	}
}

// scheduleArrival queues tenant i's next arrival one exponential gap
// from now.
func (st *state) scheduleArrival(i int) {
	rate := 1.0
	if i < len(st.cfg.TenantRates) && st.cfg.TenantRates[i] > 0 {
		rate = st.cfg.TenantRates[i]
	}
	st.S.After(st.rng.Exp(1/rate), func() { st.arrive(i) })
}

// arrive submits tenant i's next invocation through admission control:
// accepted specs queue in the plane and drain in fair-share order into
// the pending pool; shed specs vanish (counted); unregistered tenant
// names degrade to the direct single-tenant path, as in the manager.
func (st *state) arrive(i int) {
	st.arrivalsLeft[i]--
	st.nextSpecID++
	tenant := st.cfg.Tenants[i].Name
	ref := specRef{id: st.nextSpecID, tenant: tenant}
	known, accepted := st.plane.submit(tenant, simPlaneItem{ref: ref})
	if !known {
		st.pending++
		st.pushOwner(specRef{id: ref.id})
	} else if accepted {
		st.drainPlaneTimed()
	}
	st.tryDispatch()
	if st.arrivalsLeft[i] > 0 {
		st.scheduleArrival(i)
	}
}

// drainPlaneTimed moves every fair-share-released spec into the
// pending pool; the caller's tryDispatch picks them up.
func (st *state) drainPlaneTimed() {
	st.plane.drain(func(it simPlaneItem, tenant string, seq int64) {
		st.pending++
		st.pushOwner(it.ref)
	})
}
