// Package proto implements the wire protocol between the manager, its
// workers, and worker data servers: length-prefixed, type-tagged JSON
// frames over any net.Conn. It carries the message vocabulary of §3.4:
// file staging (direct and peer-to-peer), task execution, library
// installation and removal, invocations, and results.
//
// Control messages are JSON. Bulk object bytes move as binary frames
// (MsgPutFileBulk, MsgFileDataBulk): a small JSON header followed by
// the raw payload, so a multi-MB environment tarball is written
// straight from its backing slice — no base64 expansion and no second
// in-memory copy on either side of the connection.
package proto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// MsgType tags a frame with its message kind.
type MsgType byte

const (
	// MsgHello is sent by a worker on connect.
	MsgHello MsgType = iota + 1
	// MsgPutFile carries an object from the manager to a worker.
	MsgPutFile
	// MsgFetchFile instructs a worker to pull an object from a peer.
	MsgFetchFile
	// MsgFileAck confirms an object is cached on the worker.
	MsgFileAck
	// MsgRunTask dispatches a stateless task.
	MsgRunTask
	// MsgInstallLibrary dispatches a library (the special context task).
	MsgInstallLibrary
	// MsgLibraryAck reports a library instance is ready (or failed).
	MsgLibraryAck
	// MsgRemoveLibrary evicts an idle library instance.
	MsgRemoveLibrary
	// MsgInvoke dispatches a FunctionCall to a worker with the library.
	MsgInvoke
	// MsgResult returns a task or invocation result to the manager.
	MsgResult
	// MsgShutdown tells a worker to exit.
	MsgShutdown
	// MsgGetFile requests an object by ID from a peer data server.
	MsgGetFile
	// MsgFileData answers MsgGetFile with the object.
	MsgFileData
	// MsgError answers MsgGetFile when the object is unavailable.
	MsgError
	// MsgPutFileBulk carries an object manager→worker as a bulk frame:
	// a PutFileHdr JSON header followed by the raw object bytes.
	MsgPutFileBulk
	// MsgFileDataBulk answers MsgGetFile as a bulk frame: a FileHdr
	// JSON header followed by the raw object bytes.
	MsgFileDataBulk
	// MsgLog carries a worker-side diagnostic line to the manager —
	// today, protocol decode failures that would otherwise vanish
	// silently on the worker.
	MsgLog
	// MsgSpillObject demotes an owned object to the shared tier: the
	// worker writes the bytes to the shared filesystem and drops its
	// cache copy (the manager already re-tiered the ref at decision
	// time).
	MsgSpillObject
	// MsgOwnObject transfers ownership of a proxy object to this
	// worker — sent when the previous owner died and the manager
	// re-homed the ref onto a surviving holder. The worker protects its
	// replica from cache eviction from then on.
	MsgOwnObject
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgHello: "hello", MsgPutFile: "put-file", MsgFetchFile: "fetch-file",
		MsgFileAck: "file-ack", MsgRunTask: "run-task",
		MsgInstallLibrary: "install-library", MsgLibraryAck: "library-ack",
		MsgRemoveLibrary: "remove-library", MsgInvoke: "invoke",
		MsgResult: "result", MsgShutdown: "shutdown", MsgGetFile: "get-file",
		MsgFileData: "file-data", MsgError: "error",
		MsgPutFileBulk: "put-file-bulk", MsgFileDataBulk: "file-data-bulk",
		MsgLog: "log", MsgSpillObject: "spill-object", MsgOwnObject: "own-object",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// MaxFrame bounds a single frame (metadata plus payload) to guard
// against corrupt length prefixes.
const MaxFrame = 512 << 20

// Hello announces a worker to the manager.
type Hello struct {
	WorkerID  string         `json:"worker_id"`
	Resources core.Resources `json:"resources"`
	// Cluster names the worker's network locality group (Figure 3c).
	Cluster string `json:"cluster,omitempty"`
	// DataAddr is where peers can fetch this worker's cached objects.
	DataAddr string `json:"data_addr,omitempty"`
	// MachineGFlops is the worker machine's compute rating, used for
	// heterogeneity-aware metrics.
	MachineGFlops float64 `json:"machine_gflops,omitempty"`
}

// FileMeta describes an object in transit.
type FileMeta struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Kind         int    `json:"kind"`
	Data         []byte `json:"data"`
	LogicalSize  int64  `json:"logical_size"`
	UnpackedSize int64  `json:"unpacked_size,omitempty"`
}

// PutFile carries object data manager→worker.
type PutFile struct {
	File  FileMeta `json:"file"`
	Cache bool     `json:"cache"`
	// Unpack asks the worker to expand the tarball after caching.
	Unpack bool `json:"unpack"`
}

// FileHdr describes an object whose bytes travel out-of-band in the
// binary part of a bulk frame (it is FileMeta minus Data).
type FileHdr struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Kind         int    `json:"kind"`
	LogicalSize  int64  `json:"logical_size"`
	UnpackedSize int64  `json:"unpacked_size,omitempty"`
}

// PutFileHdr is the JSON header of a MsgPutFileBulk frame; the object
// bytes follow as the frame's binary payload.
type PutFileHdr struct {
	File  FileHdr `json:"file"`
	Cache bool    `json:"cache"`
	// Unpack asks the worker to expand the tarball after caching.
	Unpack bool `json:"unpack"`
}

// FetchFile instructs a worker to fetch an object from a peer's data
// server (spanning-tree distribution, Figure 3b).
type FetchFile struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	FromAddr string `json:"from_addr"`
	// AltAddrs lists alternate holders' data addresses. On a transfer
	// error against FromAddr the worker's data plane retries these in
	// order before surfacing failure — first-error surrender would
	// otherwise fall back to a full manager restage (§4.3).
	AltAddrs []string `json:"alt_addrs,omitempty"`
	// Source is the worker ID serving the fetch; the worker echoes it
	// in its FileAck so the manager can return the source's transfer
	// slot even when its own fetch record was displaced by recovery.
	Source string `json:"source,omitempty"`
	Cache  bool   `json:"cache"`
	Unpack bool   `json:"unpack"`
	// Shared redirects the fetch to the shared filesystem tier: the
	// object was spilled there and no live worker holds a cache copy.
	// FromAddr/AltAddrs are unused on this path.
	Shared bool `json:"shared,omitempty"`
	// Own marks the fetched object as owned on arrival (a shared-tier
	// promote: the fetching worker becomes the ref's new holder of
	// record and must protect the copy from plain eviction).
	Own bool `json:"own,omitempty"`
	// Size is the object's logical size, needed for shared-tier fetches
	// where no peer FileHdr travels with the bytes.
	Size int64 `json:"size,omitempty"`
}

// SpillObject demotes one owned object to the shared tier
// (MsgSpillObject).
type SpillObject struct {
	ID string `json:"id"`
}

// OwnObject transfers ownership of a cached object to this worker
// (MsgOwnObject).
type OwnObject struct {
	ID string `json:"id"`
}

// FileAck confirms (or denies) that an object is now cached. Cache
// echoes whether the object was staged as worker-resident (so the
// manager only records durable replicas as transfer sources).
type FileAck struct {
	ID    string `json:"id"`
	Ok    bool   `json:"ok"`
	Cache bool   `json:"cache"`
	// Source echoes FetchFile.Source for peer fetches ("" for direct
	// puts), closing the transfer-slot accounting loop.
	Source string `json:"source,omitempty"`
	Err    string `json:"err,omitempty"`
}

// LibraryAck reports library installation outcome.
type LibraryAck struct {
	Library string `json:"library"`
	// Instance distinguishes multiple instances of one library across
	// workers (share-value accounting).
	Instance string `json:"instance"`
	Ok       bool   `json:"ok"`
	Err      string `json:"err,omitempty"`
	// Retryable marks a failed install as infrastructure-caused (inputs
	// not staged, no resources) rather than a broken library; the
	// manager redeploys without counting it toward quarantine.
	Retryable bool `json:"retryable,omitempty"`
	// SetupTime is the context-setup duration in seconds (Table 5, L3
	// library row).
	SetupTime float64 `json:"setup_time"`
}

// RemoveLibrary evicts a library instance by name.
type RemoveLibrary struct {
	Library string `json:"library"`
}

// GetFile requests an object from a peer data server.
type GetFile struct {
	ID string `json:"id"`
}

// ErrorMsg is a generic failure answer.
type ErrorMsg struct {
	Err string `json:"err"`
}

// LogMsg is a worker diagnostic surfaced to the manager (MsgLog).
type LogMsg struct {
	Worker string `json:"worker"`
	Text   string `json:"text"`
}

// Conn is a framed, type-tagged message connection. Reads and writes
// are independently serialized, so one goroutine may receive while
// others send.
//
// Reads are buffered: the dispatch plane's hot path is thousands of
// small control frames per second, and an unbuffered framed read costs
// two syscalls per frame (length prefix, then body). The internal
// reader amortizes that to one syscall per kernel-buffer drain.
//
// Writes support explicit coalescing: Send writes one frame in one
// syscall (as before), while Buffer appends a frame to a pending
// buffer and Flush writes everything pending at once — the sender
// loops of the manager and worker drain their outbound queues through
// Buffer and flush once per drain, so a dispatch burst of K frames
// costs one write syscall instead of K. Ordering between Send,
// Buffer/Flush, and SendBulk is preserved: every path drains the
// pending buffer first under the shared write lock.
type Conn struct {
	rw   io.ReadWriter
	br   *bufio.Reader
	rmu  sync.Mutex
	rbuf []byte // RecvReuse's per-connection frame buffer
	wmu  sync.Mutex
	pend bytes.Buffer // frames buffered by Buffer, awaiting Flush
}

// readBufSize is the framed reader's buffer: large enough to drain a
// burst of control frames per syscall, small enough to be irrelevant
// next to a worker's data-plane transfers.
const readBufSize = 64 << 10

// NewConn wraps a stream in a framed message connection.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, br: bufio.NewReaderSize(rw, readBufSize)}
}

// bufferPool is the encode-buffer supply contract. The default is a
// sync.Pool; tests swap in a counting pool to prove the pool
// discipline below — every Get is returned by a Put on every path,
// success or error (the pooldiscipline analyzer enforces the
// lexical shape, the leak test the dynamic one).
type bufferPool interface {
	Get() *bytes.Buffer
	Put(*bytes.Buffer)
}

type syncBufPool struct{ p sync.Pool }

func (s *syncBufPool) Get() *bytes.Buffer  { return s.p.Get().(*bytes.Buffer) }
func (s *syncBufPool) Put(b *bytes.Buffer) { s.p.Put(b) }

// encPool recycles the per-send encode buffers so the steady-state
// message stream (acks, results, dispatches) allocates no temporaries.
var encPool bufferPool = &syncBufPool{p: sync.Pool{New: func() any { return new(bytes.Buffer) }}}

// maxPooledBuf bounds what goes back in the pool: an occasional giant
// frame must not pin megabytes inside it.
const maxPooledBuf = 1 << 20

// getEncBuf takes a reset encode buffer from the pool. Pool
// discipline: every getEncBuf must be paired with a dominating
// `defer putEncBuf` so error returns cannot leak buffers.
func getEncBuf() *bytes.Buffer {
	buf := encPool.Get()
	buf.Reset()
	return buf
}

func putEncBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		encPool.Put(buf)
	}
}

// Send encodes v as a frame of the given type. The frame is assembled
// in a pooled buffer (header placeholder + JSON body) and written with
// a single Write call (after draining any frames pending from Buffer,
// so cross-path ordering holds).
func (c *Conn) Send(t MsgType, v any) error {
	buf := getEncBuf()
	defer putEncBuf(buf)
	if err := encodeFrame(buf, t, v); err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	if _, err := c.rw.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("proto: writing frame: %w", err)
	}
	return nil
}

// encodeFrame appends one [length][type][body] frame to buf. Hot
// message types (invocations, results) get the binary body of
// codec.go; everything else is JSON.
func encodeFrame(buf *bytes.Buffer, t MsgType, v any) error {
	start := buf.Len()
	buf.Write([]byte{0, 0, 0, 0, byte(t)})
	if !encodeBinaryBody(buf, v) {
		if err := json.NewEncoder(buf).Encode(v); err != nil {
			return fmt.Errorf("proto: encoding %v: %w", t, err)
		}
	}
	frame := buf.Bytes()[start:]
	if len(frame)-4 > MaxFrame {
		return fmt.Errorf("proto: frame too large (%d bytes)", len(frame)-5)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return nil
}

// maxPending bounds the coalescing buffer: a Buffer call that would
// grow it past this flushes first, so a long drain cannot pin
// megabytes before its Flush.
const maxPending = 256 << 10

// Buffer encodes v as a frame into the connection's pending write
// buffer without touching the wire. The frame is not visible to the
// peer until Flush (or any Send/SendBulk, which drain pending frames
// first). An encoding error leaves the pending buffer unchanged.
func (c *Conn) Buffer(t MsgType, v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.pend.Len() > maxPending {
		if err := c.flushLocked(); err != nil {
			return err
		}
	}
	start := c.pend.Len()
	if err := encodeFrame(&c.pend, t, v); err != nil {
		c.pend.Truncate(start)
		return err
	}
	return nil
}

// Flush writes every frame buffered since the last flush in one Write
// call. A no-op when nothing is pending.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.flushLocked()
}

func (c *Conn) flushLocked() error {
	if c.pend.Len() == 0 {
		return nil
	}
	_, err := c.rw.Write(c.pend.Bytes())
	c.pend.Reset()
	if err != nil {
		return fmt.Errorf("proto: flushing frames: %w", err)
	}
	return nil
}

// SendBulk writes a bulk frame: the JSON-encoded header hdr followed
// by the raw payload bytes. The payload is written directly from the
// caller's slice — never base64-encoded, never copied into a staging
// buffer — so shipping a multi-MB object costs one small header
// allocation regardless of payload size.
//
// Wire layout inside the standard [length][type] frame:
//
//	[4B header length][header JSON][payload bytes]
func (c *Conn) SendBulk(t MsgType, hdr any, payload []byte) error {
	buf := getEncBuf()
	defer putEncBuf(buf)
	buf.Write([]byte{0, 0, 0, 0, byte(t), 0, 0, 0, 0})
	if err := json.NewEncoder(buf).Encode(hdr); err != nil {
		return fmt.Errorf("proto: encoding %v header: %w", t, err)
	}
	meta := buf.Bytes()
	hdrLen := len(meta) - 9
	total := 1 + 4 + hdrLen + len(payload)
	if total > MaxFrame {
		return fmt.Errorf("proto: frame too large (%d bytes)", total)
	}
	binary.BigEndian.PutUint32(meta[:4], uint32(total))
	binary.BigEndian.PutUint32(meta[5:9], uint32(hdrLen))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	// Drain coalesced frames first: a bulk send must not overtake
	// frames already buffered on this connection.
	if err := c.flushLocked(); err != nil {
		return err
	}
	if _, err := c.rw.Write(meta); err != nil {
		return fmt.Errorf("proto: writing bulk frame header: %w", err)
	}
	if _, err := c.rw.Write(payload); err != nil {
		return fmt.Errorf("proto: writing bulk frame payload: %w", err)
	}
	return nil
}

// SplitBulk separates a received bulk frame body (as returned by Recv)
// into its JSON header and raw payload. The payload aliases the
// receive buffer — callers that retain it own that memory.
func SplitBulk(raw []byte) (hdr json.RawMessage, payload []byte, err error) {
	if len(raw) < 4 {
		return nil, nil, fmt.Errorf("proto: bulk frame too short (%d bytes)", len(raw))
	}
	n := int(binary.BigEndian.Uint32(raw[:4]))
	if n < 0 || 4+n > len(raw) {
		return nil, nil, fmt.Errorf("proto: bad bulk header length %d in %d-byte frame", n, len(raw))
	}
	return json.RawMessage(raw[4 : 4+n]), raw[4+n:], nil
}

// DecodeBulk splits a bulk frame and unmarshals its header into T.
func DecodeBulk[T any](raw json.RawMessage) (T, []byte, error) {
	var v T
	hdr, payload, err := SplitBulk(raw)
	if err != nil {
		return v, nil, err
	}
	if err := json.Unmarshal(hdr, &v); err != nil {
		return v, nil, fmt.Errorf("proto: decoding bulk %T header: %w", v, err)
	}
	return v, payload, nil
}

// Recv reads the next frame, returning its type and raw payload in a
// fresh buffer the caller may retain.
func (c *Conn) Recv() (MsgType, json.RawMessage, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	buf, err := c.recvFrame(nil)
	if err != nil {
		return 0, nil, err
	}
	return MsgType(buf[0]), json.RawMessage(buf[1:]), nil
}

// RecvReuse reads the next frame like Recv, but the returned payload
// aliases a per-connection buffer that the next RecvReuse call will
// overwrite. The receive loops of the manager and worker process tens
// of thousands of small control frames per second and decode each one
// before reading the next, so reusing one buffer removes a per-frame
// allocation (and its zeroing) from the dispatch hot path. Callers
// that retain any part of the payload past the next receive — e.g. a
// bulk frame's object bytes — must copy it first.
func (c *Conn) RecvReuse() (MsgType, json.RawMessage, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	buf, err := c.recvFrame(c.rbuf)
	if err != nil {
		return 0, nil, err
	}
	if cap(buf) <= maxPooledBuf {
		c.rbuf = buf
	}
	return MsgType(buf[0]), json.RawMessage(buf[1:]), nil
}

// recvFrame reads one frame body into scratch (growing it as needed).
// The body is read in bounded chunks so a corrupt length prefix from a
// malicious or broken peer cannot force a giant upfront allocation.
func (c *Conn) recvFrame(scratch []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1 || n > MaxFrame {
		return nil, fmt.Errorf("proto: bad frame length %d", n)
	}
	const chunk = 1 << 20
	buf := scratch[:0]
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		start := len(buf)
		if cap(buf) >= start+step {
			buf = buf[:start+step]
		} else {
			buf = append(buf, make([]byte, step)...)
		}
		if _, err := io.ReadFull(c.br, buf[start:]); err != nil {
			return nil, fmt.Errorf("proto: reading frame body: %w", err)
		}
	}
	return buf, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WithIdleTimeout returns a conn that arms a fresh read (write)
// deadline before every Read (Write), turning the absolute deadline
// into an idle timeout: any single I/O operation that makes no
// progress for d fails with a timeout error instead of blocking
// forever. A transfer that keeps moving bytes is never cut off, no
// matter how large. d <= 0 returns nc unchanged.
func WithIdleTimeout(nc net.Conn, d time.Duration) net.Conn {
	if d <= 0 {
		return nc
	}
	return &idleConn{Conn: nc, idle: d}
}

type idleConn struct {
	net.Conn
	idle time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *idleConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(time.Now().Add(c.idle)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Decode unmarshals a payload into T.
func Decode[T any](raw json.RawMessage) (T, error) {
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("proto: decoding %T: %w", v, err)
	}
	return v, nil
}
