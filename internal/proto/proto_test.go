package proto

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestSendRecvRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	hello := Hello{WorkerID: "w1", Resources: core.Resources{Cores: 32, MemoryMB: 1024}, Cluster: "a", DataAddr: "127.0.0.1:9"}
	if err := c.Send(MsgHello, hello); err != nil {
		t.Fatal(err)
	}
	typ, raw, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgHello {
		t.Fatalf("type = %v", typ)
	}
	got, err := Decode[Hello](raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != hello {
		t.Errorf("round trip: %+v != %+v", got, hello)
	}
}

func TestMultipleFramesInOrder(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	for i := 0; i < 10; i++ {
		if err := c.Send(MsgFileAck, FileAck{ID: string(rune('a' + i)), Ok: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		typ, raw, err := c.Recv()
		if err != nil || typ != MsgFileAck {
			t.Fatalf("frame %d: %v %v", i, typ, err)
		}
		ack, err := Decode[FileAck](raw)
		if err != nil {
			t.Fatal(err)
		}
		if ack.ID != string(rune('a'+i)) {
			t.Errorf("frame %d out of order: %q", i, ack.ID)
		}
	}
}

func TestBinaryPayloadSurvivesJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	put := PutFile{File: FileMeta{ID: "x", Name: "bin", Data: data, LogicalSize: 256}, Cache: true}
	if err := c.Send(MsgPutFile, put); err != nil {
		t.Fatal(err)
	}
	_, raw, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode[PutFile](raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.File.Data, data) {
		t.Errorf("binary payload corrupted")
	}
}

func TestCorruptFrames(t *testing.T) {
	// Bad length prefix.
	c := NewConn(bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}))
	if _, _, err := c.Recv(); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Errorf("huge length accepted: %v", err)
	}
	// Truncated body.
	c2 := NewConn(bytes.NewBuffer([]byte{0, 0, 0, 10, byte(MsgHello), 1, 2}))
	if _, _, err := c2.Recv(); err == nil {
		t.Errorf("truncated frame accepted")
	}
	// Empty stream: clean EOF.
	c3 := NewConn(&bytes.Buffer{})
	if _, _, err := c3.Recv(); err == nil {
		t.Errorf("EOF not reported")
	}
}

func TestConcurrentSendersOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan map[string]int, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		c := NewConn(nc)
		counts := map[string]int{}
		for i := 0; i < 200; i++ {
			_, raw, err := c.Recv()
			if err != nil {
				break
			}
			ack, err := Decode[FileAck](raw)
			if err != nil {
				break
			}
			counts[ack.ID]++
		}
		done <- counts
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := NewConn(nc)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('A' + g))
			for i := 0; i < 50; i++ {
				if err := c.Send(MsgFileAck, FileAck{ID: id, Ok: true}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	counts := <-done
	// Frames must not interleave mid-frame: every message decodes and
	// per-sender counts are exact.
	for g := 0; g < 4; g++ {
		id := string(rune('A' + g))
		if counts[id] != 50 {
			t.Errorf("sender %s delivered %d of 50 frames", id, counts[id])
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgHello, MsgPutFile, MsgFetchFile, MsgFileAck,
		MsgRunTask, MsgInstallLibrary, MsgLibraryAck, MsgRemoveLibrary,
		MsgInvoke, MsgResult, MsgShutdown, MsgGetFile, MsgFileData, MsgError} {
		if s := mt.String(); strings.HasPrefix(s, "MsgType(") {
			t.Errorf("missing name for %d", mt)
		}
	}
	if s := MsgType(200).String(); !strings.HasPrefix(s, "MsgType(") {
		t.Errorf("unknown type should fall back: %q", s)
	}
}

// Property: any FileAck survives a frame round trip.
func TestQuickFileAckRoundTrip(t *testing.T) {
	f := func(id string, ok bool, errMsg string) bool {
		var buf bytes.Buffer
		c := NewConn(&buf)
		in := FileAck{ID: id, Ok: ok, Err: errMsg}
		if err := c.Send(MsgFileAck, in); err != nil {
			return false
		}
		typ, raw, err := c.Recv()
		if err != nil || typ != MsgFileAck {
			return false
		}
		out, err := Decode[FileAck](raw)
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Recv never panics on arbitrary byte streams — it parses or
// errors.
func TestQuickRecvNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		c := NewConn(bytes.NewBuffer(data))
		for i := 0; i < 4; i++ {
			if _, _, err := c.Recv(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWithIdleTimeoutCutsStalledRead(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rc := WithIdleTimeout(a, 60*time.Millisecond)
	start := time.Now()
	_, err := rc.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read on a silent peer should time out")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timed out after %v, want ~60ms", d)
	}
}

func TestWithIdleTimeoutRefreshesOnProgress(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rc := WithIdleTimeout(a, 120*time.Millisecond)
	// A slow but steady writer: each chunk arrives well inside the idle
	// window, yet the whole transfer takes several windows.
	const chunks = 6
	go func() {
		for i := 0; i < chunks; i++ {
			time.Sleep(40 * time.Millisecond)
			b.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, chunks)
	for got := 0; got < chunks; {
		n, err := rc.Read(buf[got:])
		if err != nil {
			t.Fatalf("steady transfer cut by idle timeout after %d bytes: %v", got, err)
		}
		got += n
	}
}

func TestWithIdleTimeoutZeroIsPassthrough(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	if c := WithIdleTimeout(a, 0); c != a {
		t.Errorf("zero idle timeout should return the conn unchanged")
	}
}

func TestBulkFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	hdr := PutFileHdr{File: FileHdr{ID: "obj", Name: "env.tar.gz", Kind: 1, LogicalSize: 1 << 16}, Cache: true, Unpack: true}
	if err := c.SendBulk(MsgPutFileBulk, hdr, payload); err != nil {
		t.Fatal(err)
	}
	typ, raw, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgPutFileBulk {
		t.Fatalf("type = %v", typ)
	}
	got, data, err := DecodeBulk[PutFileHdr](raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != hdr {
		t.Errorf("header round trip: %+v != %+v", got, hdr)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("payload corrupted (%d bytes)", len(data))
	}
}

func TestBulkFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.SendBulk(MsgFileDataBulk, FileHdr{ID: "x"}, nil); err != nil {
		t.Fatal(err)
	}
	_, raw, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	hdr, data, err := DecodeBulk[FileHdr](raw)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ID != "x" || len(data) != 0 {
		t.Errorf("hdr=%+v payload=%d bytes", hdr, len(data))
	}
}

func TestBulkAndJSONFramesInterleave(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(MsgFileAck, FileAck{ID: "a", Ok: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBulk(MsgPutFileBulk, PutFileHdr{File: FileHdr{ID: "b"}}, []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(MsgFileAck, FileAck{ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if typ, raw, err := c.Recv(); err != nil || typ != MsgFileAck {
		t.Fatalf("frame 1: %v %v", typ, err)
	} else if ack, _ := Decode[FileAck](raw); ack.ID != "a" {
		t.Errorf("frame 1 = %+v", ack)
	}
	typ, raw, err := c.Recv()
	if err != nil || typ != MsgPutFileBulk {
		t.Fatalf("frame 2: %v %v", typ, err)
	}
	hdr, data, err := DecodeBulk[PutFileHdr](raw)
	if err != nil || hdr.File.ID != "b" || string(data) != "bytes" {
		t.Fatalf("frame 2 = %+v %q %v", hdr, data, err)
	}
	if typ, _, err := c.Recv(); err != nil || typ != MsgFileAck {
		t.Fatalf("frame 3: %v %v", typ, err)
	}
}

func TestSplitBulkRejectsCorruptHeaders(t *testing.T) {
	if _, _, err := SplitBulk([]byte{1, 2}); err == nil {
		t.Errorf("short frame accepted")
	}
	// Header length pointing past the end of the frame.
	bad := []byte{0, 0, 0, 200, 'x', 'y'}
	if _, _, err := SplitBulk(bad); err == nil {
		t.Errorf("oversized header length accepted")
	}
}

// BenchmarkPutFileEncodeJSON64MB is the legacy control-plane path for
// bulk bytes: the object rides inside the JSON message, paying a
// base64 expansion plus encoder staging on every send.
func BenchmarkPutFileEncodeJSON64MB(b *testing.B) {
	payload := make([]byte, 64<<20)
	c := NewConn(struct{ io.ReadWriter }{discardRW{}})
	msg := PutFile{File: FileMeta{ID: "obj", Name: "env.tar.gz", Data: payload, LogicalSize: int64(len(payload))}, Cache: true}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(MsgPutFile, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutFileEncodeBulk64MB is the binary bulk path: a small JSON
// header, then the payload written straight from its backing slice.
// B/op must stay near zero no matter the payload size — this is the
// "no base64 copy" acceptance check.
func BenchmarkPutFileEncodeBulk64MB(b *testing.B) {
	payload := make([]byte, 64<<20)
	c := NewConn(struct{ io.ReadWriter }{discardRW{}})
	hdr := PutFileHdr{File: FileHdr{ID: "obj", Name: "env.tar.gz", LogicalSize: int64(len(payload))}, Cache: true}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendBulk(MsgPutFileBulk, hdr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

type discardRW struct{}

func (discardRW) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardRW) Write(p []byte) (int, error) { return len(p), nil }
