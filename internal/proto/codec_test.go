package proto

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

var codecInvocations = []core.InvocationSpec{
	{},
	{ID: 1, Library: "lib", Function: "f", Args: []byte{1, 2, 3}},
	{ID: -9, Library: "", Function: "g"},
	{ID: 1<<62 + 7, Library: "a-very-long-library-name-with-dashes", Function: "λ", Args: bytes.Repeat([]byte{0xFF}, 300)},
}

var codecResults = []core.Result{
	{},
	{ID: 42, Ok: true, Value: []byte("pickled"), Metrics: core.InvocationMetrics{
		TransferTime: 0.25, WorkerTime: 1e-9, SetupTime: 3.5, ExecTime: 100,
		WorkerID: "w001", LibraryInstance: "lib#2",
	}},
	{ID: -3, Ok: false, Err: "boom: λ", Retryable: true},
}

// TestBinaryCodecRoundTrip sends every sample through a real framed
// connection and asserts exact reconstruction — and that the wire body
// really took the binary path.
func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, inv := range codecInvocations {
		var buf bytes.Buffer
		c := NewConn(&buf)
		if err := c.Send(MsgInvoke, &inv); err != nil {
			t.Fatal(err)
		}
		typ, raw, err := c.Recv()
		if err != nil || typ != MsgInvoke {
			t.Fatalf("recv: %v %v", typ, err)
		}
		if raw[0] != binMarker {
			t.Fatalf("invocation %d: body not binary-encoded (first byte %#x)", inv.ID, raw[0])
		}
		got, err := DecodeInvocation(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, inv) {
			t.Fatalf("invocation round-trip:\n got %+v\nwant %+v", got, inv)
		}
	}
	for _, res := range codecResults {
		var buf bytes.Buffer
		c := NewConn(&buf)
		if err := c.Send(MsgResult, res); err != nil {
			t.Fatal(err)
		}
		typ, raw, err := c.Recv()
		if err != nil || typ != MsgResult {
			t.Fatalf("recv: %v %v", typ, err)
		}
		if raw[0] != binMarker {
			t.Fatalf("result %d: body not binary-encoded (first byte %#x)", res.ID, raw[0])
		}
		got, err := DecodeResult(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("result round-trip:\n got %+v\nwant %+v", got, res)
		}
	}
}

// TestBinaryCodecJSONFallback asserts the sniffing decoders still
// accept a JSON body — the format every frame used before the binary
// fast path, and the one hand-built frames in tests produce.
func TestBinaryCodecJSONFallback(t *testing.T) {
	for _, inv := range codecInvocations {
		raw, err := json.Marshal(inv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInvocation(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, inv) {
			t.Fatalf("JSON invocation:\n got %+v\nwant %+v", got, inv)
		}
	}
	for _, res := range codecResults {
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("JSON result:\n got %+v\nwant %+v", got, res)
		}
	}
}

// TestBinaryCodecTruncation asserts every proper prefix of a binary
// body errors instead of decoding garbage or panicking.
func TestBinaryCodecTruncation(t *testing.T) {
	inv := appendInvocation(nil, &codecInvocations[1])
	for n := 1; n < len(inv); n++ {
		if _, err := DecodeInvocation(inv[:n]); err == nil {
			t.Fatalf("invocation prefix of %d/%d bytes decoded without error", n, len(inv))
		}
	}
	res := appendResult(nil, &codecResults[1])
	for n := 1; n < len(res); n++ {
		if _, err := DecodeResult(res[:n]); err == nil {
			t.Fatalf("result prefix of %d/%d bytes decoded without error", n, len(res))
		}
	}
}

// TestBinaryCodecBogusLength asserts a length prefix pointing past the
// end of the body is rejected (no over-read, no giant allocation).
func TestBinaryCodecBogusLength(t *testing.T) {
	body := []byte{binMarker, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	if _, err := DecodeInvocation(body); err == nil {
		t.Fatal("bogus string length decoded without error")
	}
	if _, err := DecodeResult(body); err == nil {
		t.Fatal("bogus result length decoded without error")
	}
}
