// Binary fast path for the dispatch plane's two hot messages.
//
// Every control frame used to carry JSON. For most of the vocabulary
// that is the right trade — staging and lifecycle messages are rare —
// but MsgInvoke and MsgResult travel once per invocation, and at
// dispatch-benchmark rates (tens of thousands of invocations per
// second) reflective JSON encode/decode plus base64 for the pickled
// argument/value bytes dominated the manager's CPU profile. These two
// messages get a hand-rolled binary body instead: length-prefixed
// strings and raw byte slices, fixed-width floats, no reflection, no
// base64.
//
// The body stays self-describing: a JSON body always starts with '{',
// so the binary form leads with binMarker (an invalid JSON start
// byte) and the decoders sniff the first byte. DecodeInvocation and
// DecodeResult therefore accept both forms — a frame hand-built as
// JSON (tests, older traces) decodes exactly like a binary one.
package proto

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
)

// binMarker is the first byte of a binary-encoded message body. JSON
// bodies start with '{' (our encoder never emits leading whitespace),
// so one-byte sniffing distinguishes the two encodings.
const binMarker = 0xB1

// encodeBinaryBody appends the binary body for hot message types,
// reporting whether v had a binary form. Everything else returns
// false and is JSON-encoded by the caller.
func encodeBinaryBody(buf *bytes.Buffer, v any) bool {
	switch m := v.(type) {
	case *core.InvocationSpec:
		buf.Write(appendInvocation(buf.AvailableBuffer(), m))
	case core.InvocationSpec:
		buf.Write(appendInvocation(buf.AvailableBuffer(), &m))
	case *core.Result:
		buf.Write(appendResult(buf.AvailableBuffer(), m))
	case core.Result:
		buf.Write(appendResult(buf.AvailableBuffer(), &m))
	default:
		return false
	}
	return true
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

func appendInvocation(b []byte, inv *core.InvocationSpec) []byte {
	b = append(b, binMarker)
	b = binary.BigEndian.AppendUint64(b, uint64(inv.ID))
	b = appendStr(b, inv.Library)
	b = appendStr(b, inv.Function)
	return appendBytes(b, inv.Args)
}

func appendResult(b []byte, r *core.Result) []byte {
	b = append(b, binMarker)
	b = binary.BigEndian.AppendUint64(b, uint64(r.ID))
	var flags byte
	if r.Ok {
		flags |= 1
	}
	if r.Retryable {
		flags |= 2
	}
	if r.Ref != nil {
		flags |= 4
	}
	b = append(b, flags)
	b = appendStr(b, r.Err)
	b = appendBytes(b, r.Value)
	if r.Ref != nil {
		b = appendStr(b, r.Ref.ID)
		b = appendStr(b, r.Ref.Name)
		b = binary.BigEndian.AppendUint64(b, uint64(r.Ref.Size))
		b = appendStr(b, r.Ref.Owner)
		b = append(b, byte(r.Ref.Tier))
	}
	b = appendFloat(b, r.Metrics.TransferTime)
	b = appendFloat(b, r.Metrics.WorkerTime)
	b = appendFloat(b, r.Metrics.SetupTime)
	b = appendFloat(b, r.Metrics.ExecTime)
	b = appendStr(b, r.Metrics.WorkerID)
	return appendStr(b, r.Metrics.LibraryInstance)
}

// Interner deduplicates the dispatch plane's small identifier
// vocabulary (worker IDs, library and function names, instance IDs):
// a receive loop keeps one, and a repeated identifier decodes to the
// same string instead of costing a fresh allocation per frame. Not
// safe for concurrent use — one Interner per receive loop. A nil
// *Interner is valid and interns nothing.
type Interner struct {
	m map[string]string
}

// maxInternerEntries bounds the table so a pathological vocabulary
// (say, per-invocation instance IDs) cannot pin unbounded memory;
// past the cap, lookups still hit but misses fall back to plain
// copies.
const maxInternerEntries = 4096

func (in *Interner) intern(b []byte) string {
	if in == nil || len(b) == 0 {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok { // compiler elides the conversion
		return s
	}
	if in.m == nil {
		in.m = make(map[string]string)
	}
	if len(in.m) >= maxInternerEntries {
		return string(b)
	}
	s := string(b)
	in.m[s] = s
	return s
}

// binReader is a bounds-checked cursor over a binary body. Errors
// stick: after the first failure every read returns zero values, so
// decoders check err once at the end.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("proto: truncated binary frame at %s (offset %d of %d)", what, r.off, len(r.b))
	}
}

func (r *binReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *binReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) bytes(what string) []byte {
	if r.err != nil {
		return nil
	}
	n, w := binary.Uvarint(r.b[r.off:])
	if w <= 0 || n > uint64(len(r.b)-r.off-w) {
		r.fail(what)
		return nil
	}
	r.off += w
	v := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v
}

func (r *binReader) str(what string) string {
	return string(r.bytes(what))
}

func (r *binReader) float(what string) float64 {
	return math.Float64frombits(r.u64(what))
}

// DecodeInvocation decodes a MsgInvoke body in either encoding.
func DecodeInvocation(raw []byte) (core.InvocationSpec, error) {
	return DecodeInvocationInterned(raw, nil)
}

// DecodeInvocationInterned is DecodeInvocation with identifier strings
// (library, function) interned through in — the worker's receive loop
// sees the same few names tens of thousands of times per second.
func DecodeInvocationInterned(raw []byte, in *Interner) (core.InvocationSpec, error) {
	if len(raw) == 0 || raw[0] != binMarker {
		return Decode[core.InvocationSpec](raw)
	}
	var inv core.InvocationSpec
	r := &binReader{b: raw, off: 1}
	inv.ID = int64(r.u64("id"))
	inv.Library = in.intern(r.bytes("library"))
	inv.Function = in.intern(r.bytes("function"))
	if b := r.bytes("args"); len(b) > 0 {
		// The cursor aliases the receive buffer; the spec outlives it.
		inv.Args = append([]byte(nil), b...)
	}
	return inv, r.err
}

// DecodeResult decodes a MsgResult body in either encoding.
func DecodeResult(raw []byte) (core.Result, error) {
	return DecodeResultInterned(raw, nil)
}

// DecodeResultInterned is DecodeResult with identifier strings (worker
// ID, library instance) interned through in — the manager's per-worker
// receive loop sees the same identifiers on every completion.
func DecodeResultInterned(raw []byte, in *Interner) (core.Result, error) {
	if len(raw) == 0 || raw[0] != binMarker {
		return Decode[core.Result](raw)
	}
	var res core.Result
	r := &binReader{b: raw, off: 1}
	res.ID = int64(r.u64("id"))
	flags := r.byte("flags")
	res.Ok = flags&1 != 0
	res.Retryable = flags&2 != 0
	res.Err = r.str("err")
	if b := r.bytes("value"); len(b) > 0 {
		res.Value = append([]byte(nil), b...)
	}
	if flags&4 != 0 {
		ref := &core.ObjectRef{}
		ref.ID = r.str("ref_id")
		ref.Name = r.str("ref_name")
		ref.Size = int64(r.u64("ref_size"))
		ref.Owner = in.intern(r.bytes("ref_owner"))
		ref.Tier = int(r.byte("ref_tier"))
		res.Ref = ref
	}
	res.Metrics.TransferTime = r.float("transfer_time")
	res.Metrics.WorkerTime = r.float("worker_time")
	res.Metrics.SetupTime = r.float("setup_time")
	res.Metrics.ExecTime = r.float("exec_time")
	res.Metrics.WorkerID = in.intern(r.bytes("worker_id"))
	res.Metrics.LibraryInstance = in.intern(r.bytes("library_instance"))
	return res, r.err
}
