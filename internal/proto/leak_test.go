package proto

// Pool-discipline leak tests. The encode-buffer pool is an interface
// (bufferPool) precisely so these tests can swap in a counting
// implementation and prove the dynamic property the pooldiscipline
// analyzer can only check lexically: every buffer taken by getEncBuf
// comes back through putEncBuf on every path — success, encode error,
// flush error, and mid-frame write error alike.
//
// Audit map of the package's pool surface (keep in sync with proto.go):
//
//	Send      getEncBuf + defer putEncBuf — error paths: encodeFrame
//	          (JSON error, oversized frame), flushLocked, rw.Write
//	SendBulk  getEncBuf + defer putEncBuf — error paths: header JSON
//	          error, oversized frame, flushLocked, header Write,
//	          payload Write
//	Buffer    no pool use: encodes into the per-conn pending buffer,
//	          truncating it back on error
//	codec.go  no pool use: encodeBinaryBody appends into the caller's
//	          buffer; decode copies out of the caller's frame
//
// putEncBuf intentionally drops buffers above maxPooledBuf, so these
// tests keep every frame far below that bound: any Get/Put imbalance
// they observe is a leak, not the size gate.

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// countingPool wraps a real pool and counts traffic through it.
type countingPool struct {
	mu   sync.Mutex
	gets int
	puts int
	p    sync.Pool
}

func (c *countingPool) Get() *bytes.Buffer {
	c.mu.Lock()
	c.gets++
	c.mu.Unlock()
	if b, ok := c.p.Get().(*bytes.Buffer); ok {
		return b
	}
	return new(bytes.Buffer)
}

func (c *countingPool) Put(b *bytes.Buffer) {
	c.mu.Lock()
	c.puts++
	c.mu.Unlock()
	c.p.Put(b)
}

func (c *countingPool) outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets - c.puts
}

// swapPool installs a counting pool for the duration of the test.
func swapPool(t *testing.T) *countingPool {
	t.Helper()
	cp := &countingPool{}
	old := encPool
	encPool = cp
	t.Cleanup(func() { encPool = old })
	return cp
}

// failingRW fails the (okWrites+1)-th Write call, letting one test
// target each write in a multi-write path (SendBulk's header then
// payload).
type failingRW struct {
	okWrites int
	writes   int
	sink     bytes.Buffer
}

func (f *failingRW) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.okWrites {
		return 0, errors.New("peer gone")
	}
	return f.sink.Write(p)
}

func (f *failingRW) Read(p []byte) (int, error) { return 0, io.EOF }

func TestSendPoolBalance(t *testing.T) {
	cp := swapPool(t)

	cases := []struct {
		name    string
		run     func() error
		wantErr string
	}{
		{
			name: "success",
			run: func() error {
				c := NewConn(&failingRW{okWrites: 100})
				return c.Send(MsgHello, Hello{WorkerID: "w1"})
			},
		},
		{
			name: "encode error",
			run: func() error {
				c := NewConn(&failingRW{okWrites: 100})
				return c.Send(MsgHello, make(chan int)) // json: unsupported type
			},
			wantErr: "encoding",
		},
		{
			name: "write error",
			run: func() error {
				c := NewConn(&failingRW{})
				return c.Send(MsgHello, Hello{WorkerID: "w1"})
			},
			wantErr: "writing frame",
		},
		{
			name: "flush error before send",
			run: func() error {
				c := NewConn(&failingRW{})
				if err := c.Buffer(MsgHello, Hello{WorkerID: "w1"}); err != nil {
					return err
				}
				return c.Send(MsgHello, Hello{WorkerID: "w2"})
			},
			wantErr: "flushing",
		},
		{
			name: "binary body success",
			run: func() error {
				c := NewConn(&failingRW{okWrites: 100})
				return c.Send(MsgResult, &core.Result{ID: 7, Ok: true})
			},
		},
	}
	for _, tc := range cases {
		err := tc.run()
		if tc.wantErr == "" && err != nil {
			t.Fatalf("%s: unexpected error: %v", tc.name, err)
		}
		if tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)) {
			t.Fatalf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
		}
		if n := cp.outstanding(); n != 0 {
			t.Fatalf("%s: %d encode buffer(s) leaked (gets=%d puts=%d)", tc.name, n, cp.gets, cp.puts)
		}
	}
}

func TestSendBulkPoolBalance(t *testing.T) {
	cp := swapPool(t)
	payload := bytes.Repeat([]byte("x"), 4096)

	cases := []struct {
		name    string
		run     func() error
		wantErr string
	}{
		{
			name: "success",
			run: func() error {
				c := NewConn(&failingRW{okWrites: 100})
				return c.SendBulk(MsgPutFileBulk, PutFileHdr{File: FileHdr{ID: "f1"}}, payload)
			},
		},
		{
			name: "header encode error",
			run: func() error {
				c := NewConn(&failingRW{okWrites: 100})
				return c.SendBulk(MsgPutFileBulk, make(chan int), payload)
			},
			wantErr: "encoding",
		},
		{
			name: "flush error before bulk",
			run: func() error {
				c := NewConn(&failingRW{})
				if err := c.Buffer(MsgHello, Hello{WorkerID: "w1"}); err != nil {
					return err
				}
				return c.SendBulk(MsgPutFileBulk, PutFileHdr{File: FileHdr{ID: "f1"}}, payload)
			},
			wantErr: "flushing",
		},
		{
			name: "header write error",
			run: func() error {
				c := NewConn(&failingRW{})
				return c.SendBulk(MsgPutFileBulk, PutFileHdr{File: FileHdr{ID: "f1"}}, payload)
			},
			wantErr: "bulk frame header",
		},
		{
			name: "payload write error",
			run: func() error {
				c := NewConn(&failingRW{okWrites: 1})
				return c.SendBulk(MsgPutFileBulk, PutFileHdr{File: FileHdr{ID: "f1"}}, payload)
			},
			wantErr: "bulk frame payload",
		},
	}
	for _, tc := range cases {
		err := tc.run()
		if tc.wantErr == "" && err != nil {
			t.Fatalf("%s: unexpected error: %v", tc.name, err)
		}
		if tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)) {
			t.Fatalf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
		}
		if n := cp.outstanding(); n != 0 {
			t.Fatalf("%s: %d encode buffer(s) leaked (gets=%d puts=%d)", tc.name, n, cp.gets, cp.puts)
		}
	}
}

// TestBufferErrorLeavesPendingIntact proves the documented Buffer
// contract alongside the pool audit: an encode error truncates the
// pending buffer back to its pre-call state, so a later Flush writes
// exactly the frames that were successfully buffered.
func TestBufferErrorLeavesPendingIntact(t *testing.T) {
	rw := &failingRW{okWrites: 100}
	c := NewConn(rw)
	if err := c.Buffer(MsgHello, Hello{WorkerID: "w1"}); err != nil {
		t.Fatalf("buffer: %v", err)
	}
	before := c.pend.Len()
	if err := c.Buffer(MsgHello, make(chan int)); err == nil {
		t.Fatal("buffering an unencodable value succeeded")
	}
	if c.pend.Len() != before {
		t.Fatalf("failed Buffer left %d pending bytes, want %d", c.pend.Len(), before)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	peer := NewConn(&rw.sink)
	mt, raw, err := peer.Recv()
	if err != nil || mt != MsgHello {
		t.Fatalf("recv after partial-failure flush: type=%v err=%v", mt, err)
	}
	h, err := Decode[Hello](raw)
	if err != nil || h.WorkerID != "w1" {
		t.Fatalf("decoded hello = %+v, err=%v", h, err)
	}
	if _, _, err := peer.Recv(); err != io.EOF {
		t.Fatalf("expected exactly one frame on the wire, second Recv err = %v", err)
	}
}

// TestSendPoolBalanceConcurrent hammers one connection from many
// goroutines across mixed success/failure writers and checks the pool
// balances out — the concurrent analogue of the table tests above.
func TestSendPoolBalanceConcurrent(t *testing.T) {
	cp := swapPool(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewConn(&failingRW{okWrites: 50}) // fails partway through
			for i := 0; i < 100; i++ {
				switch i % 3 {
				case 0:
					_ = c.Send(MsgHello, Hello{WorkerID: "w"})
				case 1:
					_ = c.Send(MsgResult, &core.Result{ID: int64(i), Ok: true})
				case 2:
					_ = c.SendBulk(MsgPutFileBulk, PutFileHdr{File: FileHdr{ID: "f"}}, []byte("data"))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := cp.outstanding(); n != 0 {
		t.Fatalf("%d encode buffer(s) leaked under concurrency (gets=%d puts=%d)", n, cp.gets, cp.puts)
	}
}
