package modlib

import (
	"fmt"
	"math"

	"repro/internal/minipy"
)

// This file implements the application-facing modules: the ResNet50
// inference stack used by LNNI and the chemistry/ML stack used by
// ExaMol. Compute is deterministic pseudo-work so results are
// reproducible and fast enough for the real engine; the paper-scale
// timing is modeled separately by the simulator's cost model.

// resnetHandle is the in-memory model state a loaded ResNet carries.
// It lives in Object.Host, which pickle refuses to serialize — loading
// the model is precisely the kind of context setup (§2.1.3) that must
// be re-done by a context-setup function on each worker rather than
// shipped with every invocation.
type resnetHandle struct {
	layers  int
	classes int
	seed    uint64
}

// inferOne runs one deterministic pseudo-inference. The work loop
// touches every layer so the cost scales with model depth.
func (h *resnetHandle) inferOne(image int64) int64 {
	state := h.seed ^ uint64(image)
	acc := uint64(0)
	for layer := 0; layer < h.layers; layer++ {
		for k := 0; k < 12; k++ {
			acc ^= splitmix64(&state)
		}
	}
	return int64(acc % uint64(h.classes))
}

func buildResnet() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "resnet", Attrs: map[string]minipy.Value{}}
	m.Attrs["load_model"] = fn("load_model", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		name := "resnet50"
		if len(args) > 0 {
			s, err := wantStr(args, 0, "load_model")
			if err != nil {
				return nil, err
			}
			name = s
		}
		// "Loading parameters and building the model" — the expensive
		// deterministic setup the library hoists out of invocations.
		state := uint64(len(name) + 50)
		var checksum uint64
		for i := 0; i < 200000; i++ {
			checksum ^= splitmix64(&state)
		}
		model := minipy.NewObject("ResNetModel")
		model.Attrs["name"] = minipy.Str(name)
		model.Attrs["classes"] = minipy.Int(1000)
		model.Attrs["checksum"] = minipy.Int(int64(checksum % 1000000))
		h := &resnetHandle{layers: 50, classes: 1000, seed: checksum}
		model.Host = h
		model.Attrs["infer"] = fn("infer", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
			img, err := wantInt(args, 0, "infer")
			if err != nil {
				return nil, err
			}
			return minipy.Int(h.inferOne(img)), nil
		})
		model.Attrs["infer_batch"] = fn("infer_batch", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
			batch, err := wantList(args, 0, "infer_batch")
			if err != nil {
				return nil, err
			}
			out := &minipy.List{}
			for _, im := range batch.Elems {
				img, ok := im.(minipy.Int)
				if !ok {
					return nil, fmt.Errorf("infer_batch() images must be ints, got %s", im.Type())
				}
				out.Elems = append(out.Elems, minipy.Int(h.inferOne(int64(img))))
			}
			return out, nil
		})
		return model, nil
	})
	return m
}

func buildImageproc() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "imageproc", Attrs: map[string]minipy.Value{}}
	m.Attrs["generate_batch"] = fn("generate_batch", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		seed, err := wantInt(args, 0, "generate_batch")
		if err != nil {
			return nil, err
		}
		n, err := wantInt(args, 1, "generate_batch")
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<20 {
			return nil, fmt.Errorf("generate_batch() count %d out of range", n)
		}
		state := uint64(seed)
		out := &minipy.List{}
		for i := int64(0); i < n; i++ {
			out.Elems = append(out.Elems, minipy.Int(int64(splitmix64(&state)%1000000)))
		}
		return out, nil
	})
	m.Attrs["normalize"] = fn("normalize", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		img, err := wantInt(args, 0, "normalize")
		if err != nil {
			return nil, err
		}
		return minipy.Int(img % 1000000), nil
	})
	return m
}

func buildWeightstore() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "weightstore", Attrs: map[string]minipy.Value{}}
	m.Attrs["manifest"] = fn("manifest", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		name := "resnet50"
		if len(args) > 0 {
			s, err := wantStr(args, 0, "manifest")
			if err != nil {
				return nil, err
			}
			name = s
		}
		d := minipy.NewDict()
		_ = d.Set(minipy.Str("name"), minipy.Str(name))
		_ = d.Set(minipy.Str("bytes"), minipy.Int(102*1024*1024))
		_ = d.Set(minipy.Str("shards"), minipy.Int(4))
		return d, nil
	})
	return m
}

// ---- chemistry stack ----

func buildChemtools() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "chemtools", Attrs: map[string]minipy.Value{}}
	m.Attrs["parse_smiles"] = fn("parse_smiles", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		s, err := wantStr(args, 0, "parse_smiles")
		if err != nil {
			return nil, err
		}
		if s == "" {
			return nil, fmt.Errorf("parse_smiles(): empty SMILES string")
		}
		mol := minipy.NewObject("Molecule")
		mol.Attrs["smiles"] = minipy.Str(s)
		atoms := 0
		rings := 0
		for _, c := range s {
			switch {
			case c >= 'A' && c <= 'Z':
				atoms++
			case c >= '0' && c <= '9':
				rings++
			}
		}
		if atoms == 0 {
			return nil, fmt.Errorf("parse_smiles(): no atoms in %q", s)
		}
		mol.Attrs["atoms"] = minipy.Int(int64(atoms))
		mol.Attrs["rings"] = minipy.Int(int64(rings / 2))
		return mol, nil
	})
	m.Attrs["featurize"] = fn("featurize", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("featurize() takes 1 argument")
		}
		mol, ok := args[0].(*minipy.Object)
		if !ok || mol.Class != "Molecule" {
			return nil, fmt.Errorf("featurize() argument must be a Molecule")
		}
		smiles := string(mol.Attrs["smiles"].(minipy.Str))
		state := uint64(0)
		for _, c := range smiles {
			state = state*131 + uint64(c)
		}
		feats := &minipy.List{}
		for i := 0; i < 16; i++ {
			feats.Elems = append(feats.Elems, minipy.Float(float64(splitmix64(&state)%10000)/10000.0))
		}
		return feats, nil
	})
	return m
}

func buildQuantumsim() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "quantumsim", Attrs: map[string]minipy.Value{}}
	// pm7_energy runs an iterative SCF-like loop: deterministic but
	// genuinely iterative, so compute scales with the step count.
	m.Attrs["pm7_energy"] = fn("pm7_energy", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("pm7_energy() takes a molecule and optional step count")
		}
		mol, ok := args[0].(*minipy.Object)
		if !ok || mol.Class != "Molecule" {
			return nil, fmt.Errorf("pm7_energy() argument must be a Molecule")
		}
		steps := int64(500)
		if len(args) > 1 {
			n, err := wantInt(args, 1, "pm7_energy")
			if err != nil {
				return nil, err
			}
			steps = n
		}
		atoms := int64(mol.Attrs["atoms"].(minipy.Int))
		energy := -13.6 * float64(atoms)
		for i := int64(0); i < steps; i++ {
			energy += math.Sin(energy+float64(i)) * 0.01
		}
		return minipy.Float(energy), nil
	})
	m.Attrs["ionization_potential"] = fn("ionization_potential", func(ip *minipy.Interp, args []minipy.Value, kw map[string]minipy.Value) (minipy.Value, error) {
		eNeutral, err := m.Attrs["pm7_energy"].(*minipy.Builtin).Fn(ip, args, kw)
		if err != nil {
			return nil, err
		}
		mol := args[0].(*minipy.Object)
		atoms := float64(int64(mol.Attrs["atoms"].(minipy.Int)))
		rings := float64(int64(mol.Attrs["rings"].(minipy.Int)))
		e := float64(eNeutral.(minipy.Float))
		ipv := 5.0 + math.Abs(math.Mod(e, 7))/2 + rings*0.3 - atoms*0.01
		return minipy.Float(ipv), nil
	})
	return m
}

func buildMlpack() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "mlpack", Attrs: map[string]minipy.Value{}}
	// train builds a linear model by gradient descent over the feature
	// vectors; the returned model is a plain Object (picklable) so
	// trained surrogates can travel back to the manager.
	m.Attrs["train"] = fn("train", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		xs, err := wantList(args, 0, "train")
		if err != nil {
			return nil, err
		}
		ys, err := wantList(args, 1, "train")
		if err != nil {
			return nil, err
		}
		if len(xs.Elems) != len(ys.Elems) || len(xs.Elems) == 0 {
			return nil, fmt.Errorf("train(): need equal-length nonempty X and y")
		}
		iters := int64(50)
		if len(args) > 2 {
			if n, err := wantInt(args, 2, "train"); err == nil {
				iters = n
			}
		}
		dim := 0
		feats := make([][]float64, len(xs.Elems))
		targets := make([]float64, len(ys.Elems))
		for i, xv := range xs.Elems {
			row, ok := xv.(*minipy.List)
			if !ok {
				return nil, fmt.Errorf("train(): X rows must be lists")
			}
			feats[i] = make([]float64, len(row.Elems))
			for j, f := range row.Elems {
				v, err := wantFloat(row.Elems, j, "train")
				_ = f
				if err != nil {
					return nil, err
				}
				feats[i][j] = v
			}
			if dim == 0 {
				dim = len(feats[i])
			} else if len(feats[i]) != dim {
				return nil, fmt.Errorf("train(): inconsistent feature dimensions")
			}
		}
		for i := range targets {
			v, err := wantFloat(ys.Elems, i, "train")
			if err != nil {
				return nil, err
			}
			targets[i] = v
		}
		w := make([]float64, dim+1)
		lr := 0.05
		for it := int64(0); it < iters; it++ {
			for i, row := range feats {
				pred := w[dim]
				for j, x := range row {
					pred += w[j] * x
				}
				errv := pred - targets[i]
				for j, x := range row {
					w[j] -= lr * errv * x / float64(len(feats))
				}
				w[dim] -= lr * errv / float64(len(feats))
			}
		}
		model := minipy.NewObject("LinearModel")
		wl := &minipy.List{}
		for _, x := range w {
			wl.Elems = append(wl.Elems, minipy.Float(x))
		}
		model.Attrs["weights"] = wl
		model.Attrs["dim"] = minipy.Int(int64(dim))
		return model, nil
	})
	m.Attrs["predict"] = fn("predict", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("predict() takes a model and a feature list")
		}
		model, ok := args[0].(*minipy.Object)
		if !ok || model.Class != "LinearModel" {
			return nil, fmt.Errorf("predict() first argument must be a LinearModel")
		}
		xs, err := wantList(args, 1, "predict")
		if err != nil {
			return nil, err
		}
		wl := model.Attrs["weights"].(*minipy.List)
		dim := int(model.Attrs["dim"].(minipy.Int))
		out := &minipy.List{}
		for _, xv := range xs.Elems {
			row, ok := xv.(*minipy.List)
			if !ok {
				return nil, fmt.Errorf("predict(): X rows must be lists")
			}
			if len(row.Elems) != dim {
				return nil, fmt.Errorf("predict(): row has %d features, model wants %d", len(row.Elems), dim)
			}
			pred := float64(wl.Elems[dim].(minipy.Float))
			for j := range row.Elems {
				x, err := wantFloat(row.Elems, j, "predict")
				if err != nil {
					return nil, err
				}
				pred += float64(wl.Elems[j].(minipy.Float)) * x
			}
			out.Elems = append(out.Elems, minipy.Float(pred))
		}
		return out, nil
	})
	return m
}

func buildSurrogates() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "surrogates", Attrs: map[string]minipy.Value{}}
	m.Attrs["acquisition"] = fn("acquisition", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		// Upper-confidence-bound style score: prediction + exploration
		// bonus that shrinks with observations.
		pred, err := wantFloat(args, 0, "acquisition")
		if err != nil {
			return nil, err
		}
		nobs, err := wantInt(args, 1, "acquisition")
		if err != nil {
			return nil, err
		}
		if nobs < 0 {
			return nil, fmt.Errorf("acquisition(): negative observation count")
		}
		bonus := 1.0 / math.Sqrt(float64(nobs)+1)
		return minipy.Float(pred + bonus), nil
	})
	return m
}
