package modlib

import (
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/minipy"
	"repro/internal/pickle"
)

// registryHost exposes every module in a registry (as if all packages
// were installed).
type registryHost struct{ reg *Registry }

func (h *registryHost) ResolveModule(_ *minipy.Interp, name string) (*minipy.ModuleVal, error) {
	if !h.reg.Has(name) {
		return nil, fmt.Errorf("no module named '%s'", name)
	}
	return h.reg.Build(name)
}
func (h *registryHost) Stdout() io.Writer { return io.Discard }

func run(t *testing.T, src string) (*minipy.Interp, *minipy.Env) {
	t.Helper()
	ip := minipy.NewInterp(&registryHost{reg: Standard()})
	env, err := ip.RunModule(src, "m")
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	return ip, env
}

func evalf(t *testing.T, ip *minipy.Interp, env *minipy.Env, expr string) minipy.Value {
	t.Helper()
	v, err := ip.Eval(expr, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return v
}

func TestRegistryNames(t *testing.T) {
	reg := Standard()
	for _, want := range []string{"mathx", "resnet", "imageproc", "chemtools", "quantumsim", "mlpack", "jsonx"} {
		if !reg.Has(want) {
			t.Errorf("registry missing %q", want)
		}
	}
	if reg.Has("nonexistent") {
		t.Errorf("registry claims nonexistent module")
	}
	if _, err := reg.Build("nonexistent"); err == nil {
		t.Errorf("Build of unknown module should fail")
	}
	if len(reg.Names()) < 10 {
		t.Errorf("registry too small: %v", reg.Names())
	}
}

func TestMathx(t *testing.T) {
	ip, env := run(t, "import mathx\nr = mathx.sqrt(16.0)\np = mathx.pow(2, 10)\n")
	if got := evalf(t, ip, env, "r").Repr(); got != "4.0" {
		t.Errorf("sqrt(16) = %s", got)
	}
	if got := evalf(t, ip, env, "p").Repr(); got != "1024.0" {
		t.Errorf("pow(2,10) = %s", got)
	}
}

func TestRandomxDeterminism(t *testing.T) {
	src := `
import randomx
randomx.seed(42)
a = [randomx.randint(0, 100), randomx.randint(0, 100), randomx.randint(0, 100)]
randomx.seed(42)
b = [randomx.randint(0, 100), randomx.randint(0, 100), randomx.randint(0, 100)]
`
	ip, env := run(t, src)
	av := evalf(t, ip, env, "a")
	bv := evalf(t, ip, env, "b")
	if !minipy.Equal(av, bv) {
		t.Errorf("same seed gave different sequences: %s vs %s", av.Repr(), bv.Repr())
	}
	for _, e := range av.(*minipy.List).Elems {
		n := int64(e.(minipy.Int))
		if n < 0 || n > 100 {
			t.Errorf("randint out of range: %d", n)
		}
	}
}

func TestJsonxRoundTrip(t *testing.T) {
	src := `
import jsonx
payload = {"name": "run", "vals": [1, 2.5, None, True], "nested": {"k": "v"}}
s = jsonx.dumps(payload)
back = jsonx.loads(s)
`
	ip, env := run(t, src)
	orig := evalf(t, ip, env, "payload")
	back := evalf(t, ip, env, "back")
	if !minipy.Equal(orig, back) {
		t.Errorf("json round trip: %s -> %s", orig.Repr(), back.Repr())
	}
}

func TestResnetInferenceDeterministic(t *testing.T) {
	src := `
import resnet
import imageproc
model = resnet.load_model("resnet50")
batch = imageproc.generate_batch(7, 16)
preds = model.infer_batch(batch)
single = model.infer(batch[0])
`
	ip, env := run(t, src)
	preds := evalf(t, ip, env, "preds").(*minipy.List)
	if len(preds.Elems) != 16 {
		t.Fatalf("got %d predictions", len(preds.Elems))
	}
	for _, p := range preds.Elems {
		n := int64(p.(minipy.Int))
		if n < 0 || n >= 1000 {
			t.Errorf("prediction %d outside [0,1000)", n)
		}
	}
	single := evalf(t, ip, env, "single")
	if !minipy.Equal(single, preds.Elems[0]) {
		t.Errorf("infer and infer_batch disagree: %s vs %s", single.Repr(), preds.Elems[0].Repr())
	}
	// Same model, same input, later call: still deterministic.
	again := evalf(t, ip, env, "model.infer(batch[0])")
	if !minipy.Equal(again, single) {
		t.Errorf("inference not deterministic")
	}
}

func TestResnetModelNotPicklable(t *testing.T) {
	ip, env := run(t, "import resnet\nmodel = resnet.load_model(\"resnet50\")\n")
	model := evalf(t, ip, env, "model")
	if _, err := pickle.Marshal(model); err == nil {
		t.Errorf("loaded model should not be picklable (host handle)")
	} else if !strings.Contains(err.Error(), "host resource handle") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestImageprocBatchErrors(t *testing.T) {
	ip, env := run(t, "import imageproc\n")
	if _, err := ip.Eval("imageproc.generate_batch(1, -5)", env); err == nil {
		t.Errorf("negative batch size should fail")
	}
}

func TestChemtoolsParseAndFeaturize(t *testing.T) {
	src := `
import chemtools
mol = chemtools.parse_smiles("C1CCOC1N")
feats = chemtools.featurize(mol)
`
	ip, env := run(t, src)
	if got := evalf(t, ip, env, "mol.atoms").Repr(); got != "6" {
		t.Errorf("atoms = %s", got)
	}
	if got := evalf(t, ip, env, "mol.rings").Repr(); got != "1" {
		t.Errorf("rings = %s", got)
	}
	feats := evalf(t, ip, env, "feats").(*minipy.List)
	if len(feats.Elems) != 16 {
		t.Errorf("feature dim = %d", len(feats.Elems))
	}
	if _, err := ip.Eval("chemtools.parse_smiles(\"\")", env); err == nil {
		t.Errorf("empty SMILES should fail")
	}
	if _, err := ip.Eval("chemtools.featurize(3)", env); err == nil {
		t.Errorf("featurize of non-molecule should fail")
	}
}

func TestQuantumsimEnergy(t *testing.T) {
	src := `
import chemtools
import quantumsim
mol = chemtools.parse_smiles("CCO")
e1 = quantumsim.pm7_energy(mol, 100)
e2 = quantumsim.pm7_energy(mol, 100)
ip_val = quantumsim.ionization_potential(mol, 100)
`
	ip, env := run(t, src)
	e1 := float64(evalf(t, ip, env, "e1").(minipy.Float))
	e2 := float64(evalf(t, ip, env, "e2").(minipy.Float))
	if e1 != e2 {
		t.Errorf("pm7_energy not deterministic: %f vs %f", e1, e2)
	}
	if e1 >= 0 {
		t.Errorf("energy should be negative, got %f", e1)
	}
	ipv := float64(evalf(t, ip, env, "ip_val").(minipy.Float))
	if ipv < 0 || ipv > 20 || math.IsNaN(ipv) {
		t.Errorf("ionization potential %f implausible", ipv)
	}
}

func TestMlpackTrainPredict(t *testing.T) {
	// y = 2*x0 + 1 is learnable by the linear trainer.
	src := `
import mlpack
X = [[0.0], [1.0], [2.0], [3.0]]
y = [1.0, 3.0, 5.0, 7.0]
model = mlpack.train(X, y, 2000)
preds = mlpack.predict(model, [[4.0]])
`
	ip, env := run(t, src)
	preds := evalf(t, ip, env, "preds").(*minipy.List)
	got := float64(preds.Elems[0].(minipy.Float))
	if math.Abs(got-9.0) > 0.5 {
		t.Errorf("predict(4) = %f, want ~9", got)
	}
}

func TestMlpackModelIsPicklable(t *testing.T) {
	src := `
import mlpack
model = mlpack.train([[1.0], [2.0]], [1.0, 2.0], 100)
`
	ip, env := run(t, src)
	model := evalf(t, ip, env, "model")
	data, err := pickle.Marshal(model)
	if err != nil {
		t.Fatalf("trained surrogate must be picklable: %v", err)
	}
	ip2 := minipy.NewInterp(&registryHost{reg: Standard()})
	back, err := pickle.Unmarshal(data, ip2)
	if err != nil {
		t.Fatal(err)
	}
	obj := back.(*minipy.Object)
	if obj.Class != "LinearModel" {
		t.Errorf("class = %q", obj.Class)
	}
}

func TestMlpackValidation(t *testing.T) {
	ip, env := run(t, "import mlpack\n")
	cases := []string{
		"mlpack.train([], [], 10)",
		"mlpack.train([[1.0]], [1.0, 2.0], 10)",
		"mlpack.train([[1.0], [1.0, 2.0]], [1.0, 2.0], 10)",
		"mlpack.predict(3, [[1.0]])",
	}
	for _, c := range cases {
		if _, err := ip.Eval(c, env); err == nil {
			t.Errorf("%s should fail", c)
		}
	}
}

func TestSurrogatesAcquisition(t *testing.T) {
	ip, env := run(t, "import surrogates\na = surrogates.acquisition(5.0, 0)\nb = surrogates.acquisition(5.0, 100)\n")
	a := float64(evalf(t, ip, env, "a").(minipy.Float))
	b := float64(evalf(t, ip, env, "b").(minipy.Float))
	if a <= b {
		t.Errorf("exploration bonus should shrink with observations: %f vs %f", a, b)
	}
	if b <= 5.0 {
		t.Errorf("acquisition should exceed prediction: %f", b)
	}
}

func TestTimexMonotonic(t *testing.T) {
	ip, env := run(t, "import timex\na = timex.monotonic()\nb = timex.monotonic()\n")
	a := int64(evalf(t, ip, env, "a").(minipy.Int))
	b := int64(evalf(t, ip, env, "b").(minipy.Int))
	if b <= a {
		t.Errorf("monotonic not increasing: %d then %d", a, b)
	}
}
