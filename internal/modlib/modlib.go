// Package modlib implements the importable MiniPy modules that stand in
// for the Python packages the paper's applications use: the ML
// inference stack (resnet, imageproc, tensorstore), the chemistry stack
// (chemtools, quantumsim, mlpack), and small utilities. A worker can
// only import a module if (a) modlib implements it and (b) the module's
// package is installed in the environment unpacked on that worker —
// which is how missing software dependencies surface as import errors,
// exactly as in Python.
package modlib

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/minipy"
)

// Builder constructs a fresh instance of a module for one interpreter.
type Builder func() *minipy.ModuleVal

// Registry maps module names to their implementations.
type Registry struct {
	builders map[string]Builder
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{builders: map[string]Builder{}} }

// Register adds a module implementation.
func (r *Registry) Register(name string, b Builder) { r.builders[name] = b }

// Has reports whether the registry implements the named module.
func (r *Registry) Has(name string) bool {
	_, ok := r.builders[name]
	return ok
}

// Build constructs a fresh module instance.
func (r *Registry) Build(name string) (*minipy.ModuleVal, error) {
	b, ok := r.builders[name]
	if !ok {
		return nil, fmt.Errorf("modlib: module %q has no implementation", name)
	}
	return b(), nil
}

// Names lists implemented module names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.builders))
	for n := range r.builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Standard builds the registry with every module this repository
// implements.
func Standard() *Registry {
	r := NewRegistry()
	r.Register("mathx", buildMathx)
	r.Register("randomx", buildRandomx)
	r.Register("jsonx", buildJsonx)
	r.Register("timex", buildTimex)
	r.Register("imageproc", buildImageproc)
	r.Register("resnet", buildResnet)
	r.Register("weightstore", buildWeightstore)
	r.Register("chemtools", buildChemtools)
	r.Register("quantumsim", buildQuantumsim)
	r.Register("mlpack", buildMlpack)
	r.Register("surrogates", buildSurrogates)
	return r
}

// fn wraps a Go function as a module attribute.
func fn(name string, f func(ip *minipy.Interp, args []minipy.Value, kwargs map[string]minipy.Value) (minipy.Value, error)) *minipy.Builtin {
	return &minipy.Builtin{Name: name, Fn: f}
}

func wantFloat(args []minipy.Value, i int, fname string) (float64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%s() missing argument %d", fname, i+1)
	}
	switch x := args[i].(type) {
	case minipy.Int:
		return float64(x), nil
	case minipy.Float:
		return float64(x), nil
	case minipy.Bool:
		if x {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("%s() argument %d must be a number, not %s", fname, i+1, args[i].Type())
}

func wantInt(args []minipy.Value, i int, fname string) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%s() missing argument %d", fname, i+1)
	}
	switch x := args[i].(type) {
	case minipy.Int:
		return int64(x), nil
	case minipy.Bool:
		if x {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("%s() argument %d must be an int, not %s", fname, i+1, args[i].Type())
}

func wantStr(args []minipy.Value, i int, fname string) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("%s() missing argument %d", fname, i+1)
	}
	s, ok := args[i].(minipy.Str)
	if !ok {
		return "", fmt.Errorf("%s() argument %d must be a str, not %s", fname, i+1, args[i].Type())
	}
	return string(s), nil
}

func wantList(args []minipy.Value, i int, fname string) (*minipy.List, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("%s() missing argument %d", fname, i+1)
	}
	l, ok := args[i].(*minipy.List)
	if !ok {
		return nil, fmt.Errorf("%s() argument %d must be a list, not %s", fname, i+1, args[i].Type())
	}
	return l, nil
}

// ---- mathx ----

func buildMathx() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "mathx", Attrs: map[string]minipy.Value{}}
	m.Attrs["pi"] = minipy.Float(math.Pi)
	m.Attrs["e"] = minipy.Float(math.E)
	unary := func(name string, f func(float64) float64) {
		m.Attrs[name] = fn(name, func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
			x, err := wantFloat(args, 0, name)
			if err != nil {
				return nil, err
			}
			return minipy.Float(f(x)), nil
		})
	}
	unary("sqrt", math.Sqrt)
	unary("exp", math.Exp)
	unary("log", math.Log)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	unary("tanh", math.Tanh)
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)
	m.Attrs["pow"] = fn("pow", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		x, err := wantFloat(args, 0, "pow")
		if err != nil {
			return nil, err
		}
		y, err := wantFloat(args, 1, "pow")
		if err != nil {
			return nil, err
		}
		return minipy.Float(math.Pow(x, y)), nil
	})
	m.Attrs["hypot"] = fn("hypot", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		x, err := wantFloat(args, 0, "hypot")
		if err != nil {
			return nil, err
		}
		y, err := wantFloat(args, 1, "hypot")
		if err != nil {
			return nil, err
		}
		return minipy.Float(math.Hypot(x, y)), nil
	})
	return m
}

// ---- randomx ----

// splitmix64 is the deterministic PRNG core shared by randomx and the
// workload generators.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func buildRandomx() *minipy.ModuleVal {
	// The generator state is guarded: a library in fork mode may run
	// concurrent invocations against one cached module instance.
	var mu sync.Mutex
	state := uint64(0x12345678)
	next := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return splitmix64(&state)
	}
	m := &minipy.ModuleVal{Name: "randomx", Attrs: map[string]minipy.Value{}}
	m.Attrs["seed"] = fn("seed", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		n, err := wantInt(args, 0, "seed")
		if err != nil {
			return nil, err
		}
		mu.Lock()
		state = uint64(n)
		mu.Unlock()
		return minipy.NoneValue, nil
	})
	m.Attrs["random"] = fn("random", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		return minipy.Float(float64(next()>>11) / float64(1<<53)), nil
	})
	m.Attrs["randint"] = fn("randint", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		lo, err := wantInt(args, 0, "randint")
		if err != nil {
			return nil, err
		}
		hi, err := wantInt(args, 1, "randint")
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("randint() empty range [%d, %d]", lo, hi)
		}
		span := uint64(hi - lo + 1)
		return minipy.Int(lo + int64(next()%span)), nil
	})
	m.Attrs["choice"] = fn("choice", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		l, err := wantList(args, 0, "choice")
		if err != nil {
			return nil, err
		}
		if len(l.Elems) == 0 {
			return nil, fmt.Errorf("choice() from empty list")
		}
		return l.Elems[next()%uint64(len(l.Elems))], nil
	})
	return m
}

// ---- jsonx ----

func buildJsonx() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "jsonx", Attrs: map[string]minipy.Value{}}
	m.Attrs["dumps"] = fn("dumps", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("dumps() takes 1 argument")
		}
		g, err := toGo(args[0])
		if err != nil {
			return nil, err
		}
		data, err := json.Marshal(g)
		if err != nil {
			return nil, fmt.Errorf("dumps(): %v", err)
		}
		return minipy.Str(data), nil
	})
	m.Attrs["loads"] = fn("loads", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		s, err := wantStr(args, 0, "loads")
		if err != nil {
			return nil, err
		}
		var g any
		if err := json.Unmarshal([]byte(s), &g); err != nil {
			return nil, fmt.Errorf("loads(): %v", err)
		}
		return fromGo(g)
	})
	return m
}

func toGo(v minipy.Value) (any, error) {
	switch x := v.(type) {
	case minipy.None:
		return nil, nil
	case minipy.Bool:
		return bool(x), nil
	case minipy.Int:
		return int64(x), nil
	case minipy.Float:
		return float64(x), nil
	case minipy.Str:
		return string(x), nil
	case *minipy.List:
		out := make([]any, len(x.Elems))
		for i, e := range x.Elems {
			g, err := toGo(e)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil
	case *minipy.Tuple:
		out := make([]any, len(x.Elems))
		for i, e := range x.Elems {
			g, err := toGo(e)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil
	case *minipy.Dict:
		out := map[string]any{}
		for _, k := range x.Keys() {
			ks, ok := k.(minipy.Str)
			if !ok {
				return nil, fmt.Errorf("json keys must be strings, not %s", k.Type())
			}
			val, _ := x.Get(k)
			g, err := toGo(val)
			if err != nil {
				return nil, err
			}
			out[string(ks)] = g
		}
		return out, nil
	}
	return nil, fmt.Errorf("value of type %s is not JSON serializable", v.Type())
}

func fromGo(g any) (minipy.Value, error) {
	switch x := g.(type) {
	case nil:
		return minipy.NoneValue, nil
	case bool:
		return minipy.Bool(x), nil
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return minipy.Int(int64(x)), nil
		}
		return minipy.Float(x), nil
	case string:
		return minipy.Str(x), nil
	case []any:
		l := &minipy.List{}
		for _, e := range x {
			v, err := fromGo(e)
			if err != nil {
				return nil, err
			}
			l.Elems = append(l.Elems, v)
		}
		return l, nil
	case map[string]any:
		d := minipy.NewDict()
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, err := fromGo(x[k])
			if err != nil {
				return nil, err
			}
			if err := d.Set(minipy.Str(k), v); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	return nil, fmt.Errorf("cannot convert %T from JSON", g)
}

// ---- timex ----

func buildTimex() *minipy.ModuleVal {
	m := &minipy.ModuleVal{Name: "timex", Attrs: map[string]minipy.Value{}}
	var tick atomic.Int64
	m.Attrs["monotonic"] = fn("monotonic", func(_ *minipy.Interp, args []minipy.Value, _ map[string]minipy.Value) (minipy.Value, error) {
		return minipy.Int(tick.Add(1)), nil
	})
	return m
}
