// Package pickle serializes MiniPy values — including function objects
// with their code, closures, captured globals, and parameter defaults —
// into a compact self-describing binary format, and reconstructs them
// in another interpreter. It plays the role cloudpickle plays in the
// paper: the Discover mechanism uses it whenever a function's code
// cannot be shipped as plain source, and FunctionCall arguments and
// results travel through it between manager, worker, and library.
//
// Function code is serialized by walking the AST: the printer renders
// the code object to canonical source, which the remote side re-parses.
// Closure cells and referenced module globals are pickled by value;
// module references are pickled by name and re-imported on the remote
// side, which is exactly what makes the software-dependency part of a
// function context matter (an import that is not installed in the
// worker's environment fails at unpickle time).
//
// Shared and cyclic structure is preserved through a memo table, so
// self-recursive functions and aliased containers round-trip correctly.
package pickle

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/minipy"
)

// Format tags. The format starts with a magic byte and version.
const (
	magic   = 0xD4
	version = 1
)

const (
	tagNone byte = iota
	tagTrue
	tagFalse
	tagInt
	tagFloat
	tagStr
	tagList
	tagTuple
	tagDict
	tagFunc
	tagBuiltin
	tagModule
	tagObject
	tagRef
)

// encoderPool recycles encoders (buffer plus memo table): arguments
// and results are pickled once per invocation, so at dispatch rates a
// fresh encoder per call is measurable allocation churn.
var encoderPool = sync.Pool{New: func() any { return &encoder{memo: map[any]int{}} }}

// maxPooledEncoder bounds what goes back in the pool, so one giant
// value graph cannot pin its buffer forever.
const maxPooledEncoder = 1 << 20

// Marshal serializes a MiniPy value graph to bytes.
func Marshal(v minipy.Value) ([]byte, error) {
	e := encoderPool.Get().(*encoder)
	e.buf.WriteByte(magic)
	e.buf.WriteByte(version)
	if err := e.encode(v); err != nil {
		e.release()
		return nil, err
	}
	out := append([]byte(nil), e.buf.Bytes()...)
	e.release()
	return out, nil
}

// release resets the encoder and returns it to the pool.
func (e *encoder) release() {
	if e.buf.Cap() > maxPooledEncoder || len(e.memo) > 1024 {
		return
	}
	e.buf.Reset()
	clear(e.memo)
	e.next = 0
	encoderPool.Put(e)
}

// Unmarshal reconstructs a value graph in the context of the given
// interpreter. The interpreter supplies the builtins for rebuilt
// function globals and resolves module references through its host —
// so unpickling a function whose context imports an uninstalled module
// fails here, mirroring Python behaviour.
func Unmarshal(data []byte, ip *minipy.Interp) (minipy.Value, error) {
	if len(data) < 2 || data[0] != magic {
		return nil, fmt.Errorf("pickle: bad magic")
	}
	if data[1] != version {
		return nil, fmt.Errorf("pickle: unsupported version %d", data[1])
	}
	d := decoderPool.Get().(*decoder)
	d.data, d.pos, d.ip = data, 2, ip
	v, err := d.decode()
	if err == nil && d.pos != len(d.data) {
		err = fmt.Errorf("pickle: %d trailing bytes", len(d.data)-d.pos)
	}
	d.data, d.ip = nil, nil
	if cap(d.memo) <= 1024 {
		clear(d.memo)
		d.memo = d.memo[:0]
		decoderPool.Put(d)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

// decoderPool recycles decoders (struct plus memo slice) — the decode
// counterpart of encoderPool.
var decoderPool = sync.Pool{New: func() any { return new(decoder) }}

type encoder struct {
	buf  bytes.Buffer
	memo map[any]int // pointer identity -> memo id
	next int
}

func (e *encoder) writeUvarint(n uint64) {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], n)
	e.buf.Write(tmp[:k])
}

func (e *encoder) writeVarint(n int64) {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutVarint(tmp[:], n)
	e.buf.Write(tmp[:k])
}

func (e *encoder) writeString(s string) {
	e.writeUvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

// memoize registers ptr and returns (id, alreadySeen).
func (e *encoder) memoize(ptr any) (int, bool) {
	if id, ok := e.memo[ptr]; ok {
		return id, true
	}
	id := e.next
	e.next++
	e.memo[ptr] = id
	return id, false
}

func (e *encoder) emitRef(id int) {
	e.buf.WriteByte(tagRef)
	e.writeUvarint(uint64(id))
}

func (e *encoder) encode(v minipy.Value) error {
	switch x := v.(type) {
	case minipy.None:
		e.buf.WriteByte(tagNone)
	case minipy.Bool:
		if x {
			e.buf.WriteByte(tagTrue)
		} else {
			e.buf.WriteByte(tagFalse)
		}
	case minipy.Int:
		e.buf.WriteByte(tagInt)
		e.writeVarint(int64(x))
	case minipy.Float:
		e.buf.WriteByte(tagFloat)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(float64(x)))
		e.buf.Write(tmp[:])
	case minipy.Str:
		e.buf.WriteByte(tagStr)
		e.writeString(string(x))
	case *minipy.List:
		if id, seen := e.memoize(x); seen {
			e.emitRef(id)
			return nil
		}
		e.buf.WriteByte(tagList)
		e.writeUvarint(uint64(len(x.Elems)))
		for _, el := range x.Elems {
			if err := e.encode(el); err != nil {
				return err
			}
		}
	case *minipy.Tuple:
		if id, seen := e.memoize(x); seen {
			e.emitRef(id)
			return nil
		}
		e.buf.WriteByte(tagTuple)
		e.writeUvarint(uint64(len(x.Elems)))
		for _, el := range x.Elems {
			if err := e.encode(el); err != nil {
				return err
			}
		}
	case *minipy.Dict:
		if id, seen := e.memoize(x); seen {
			e.emitRef(id)
			return nil
		}
		e.buf.WriteByte(tagDict)
		keys := x.Keys()
		e.writeUvarint(uint64(len(keys)))
		for _, k := range keys {
			val, _ := x.Get(k)
			if err := e.encode(k); err != nil {
				return err
			}
			if err := e.encode(val); err != nil {
				return err
			}
		}
	case *minipy.Func:
		return e.encodeFunc(x)
	case *minipy.Builtin:
		e.buf.WriteByte(tagBuiltin)
		e.writeString(x.Name)
	case *minipy.ModuleVal:
		e.buf.WriteByte(tagModule)
		e.writeString(x.Name)
	case *minipy.Object:
		if x.Host != nil {
			return fmt.Errorf("pickle: cannot serialize %s object holding a host resource handle", x.Class)
		}
		if id, seen := e.memoize(x); seen {
			e.emitRef(id)
			return nil
		}
		e.buf.WriteByte(tagObject)
		e.writeString(x.Class)
		names := make([]string, 0, len(x.Attrs))
		for k := range x.Attrs {
			names = append(names, k)
		}
		sort.Strings(names)
		e.writeUvarint(uint64(len(names)))
		for _, k := range names {
			e.writeString(k)
			if err := e.encode(x.Attrs[k]); err != nil {
				return err
			}
		}
	case *minipy.BoundMethod:
		return fmt.Errorf("pickle: cannot serialize bound method %s of %s", x.Name, x.Recv.Type())
	default:
		return fmt.Errorf("pickle: cannot serialize value of type %s", v.Type())
	}
	return nil
}

func (e *encoder) encodeFunc(f *minipy.Func) error {
	if id, seen := e.memoize(f); seen {
		e.emitRef(id)
		return nil
	}
	src, _, err := minipy.GetSource(f)
	if err != nil {
		return fmt.Errorf("pickle: function %q: %w", f.Name, err)
	}
	closure, globals, _ := minipy.ResolveFree(f)
	params := minipy.FuncParams(f)

	e.buf.WriteByte(tagFunc)
	e.writeString(f.Name)
	e.writeString(f.Module)
	if f.Expr != nil {
		e.buf.WriteByte(1) // lambda
	} else {
		e.buf.WriteByte(0)
	}
	e.writeString(src)
	e.writeUvarint(uint64(len(params)))
	for _, p := range params {
		e.writeString(p.Name)
		if p.HasDefault {
			e.buf.WriteByte(1)
			if err := e.encode(p.Default); err != nil {
				return err
			}
		} else {
			e.buf.WriteByte(0)
		}
	}
	if err := e.encodeStringMap(closure, f.Name); err != nil {
		return err
	}
	if err := e.encodeStringMap(globals, f.Name); err != nil {
		return err
	}
	return nil
}

func (e *encoder) encodeStringMap(m map[string]minipy.Value, fname string) error {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	e.writeUvarint(uint64(len(names)))
	for _, k := range names {
		e.writeString(k)
		if err := e.encode(m[k]); err != nil {
			return fmt.Errorf("pickle: capturing %q for function %q: %w", k, fname, err)
		}
	}
	return nil
}

type decoder struct {
	data []byte
	pos  int
	ip   *minipy.Interp
	memo []minipy.Value
}

func (d *decoder) readByte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("pickle: truncated data")
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) readUvarint() (uint64, error) {
	n, k := binary.Uvarint(d.data[d.pos:])
	if k <= 0 {
		return 0, fmt.Errorf("pickle: bad uvarint")
	}
	d.pos += k
	return n, nil
}

func (d *decoder) readVarint() (int64, error) {
	n, k := binary.Varint(d.data[d.pos:])
	if k <= 0 {
		return 0, fmt.Errorf("pickle: bad varint")
	}
	d.pos += k
	return n, nil
}

func (d *decoder) readString() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if uint64(d.pos)+n > uint64(len(d.data)) {
		return "", fmt.Errorf("pickle: truncated string")
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) remember(v minipy.Value) int {
	d.memo = append(d.memo, v)
	return len(d.memo) - 1
}

func (d *decoder) decode() (minipy.Value, error) {
	tag, err := d.readByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNone:
		return minipy.NoneValue, nil
	case tagTrue:
		return minipy.Bool(true), nil
	case tagFalse:
		return minipy.Bool(false), nil
	case tagInt:
		n, err := d.readVarint()
		if err != nil {
			return nil, err
		}
		return minipy.Int(n), nil
	case tagFloat:
		if d.pos+8 > len(d.data) {
			return nil, fmt.Errorf("pickle: truncated float")
		}
		bits := binary.LittleEndian.Uint64(d.data[d.pos:])
		d.pos += 8
		return minipy.Float(math.Float64frombits(bits)), nil
	case tagStr:
		s, err := d.readString()
		if err != nil {
			return nil, err
		}
		return minipy.Str(s), nil
	case tagList:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		l := &minipy.List{Elems: make([]minipy.Value, 0, n)}
		d.remember(l)
		for i := uint64(0); i < n; i++ {
			el, err := d.decode()
			if err != nil {
				return nil, err
			}
			l.Elems = append(l.Elems, el)
		}
		return l, nil
	case tagTuple:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		t := &minipy.Tuple{Elems: make([]minipy.Value, 0, n)}
		d.remember(t)
		for i := uint64(0); i < n; i++ {
			el, err := d.decode()
			if err != nil {
				return nil, err
			}
			t.Elems = append(t.Elems, el)
		}
		return t, nil
	case tagDict:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		dict := minipy.NewDict()
		d.remember(dict)
		for i := uint64(0); i < n; i++ {
			k, err := d.decode()
			if err != nil {
				return nil, err
			}
			v, err := d.decode()
			if err != nil {
				return nil, err
			}
			if err := dict.Set(k, v); err != nil {
				return nil, fmt.Errorf("pickle: %w", err)
			}
		}
		return dict, nil
	case tagFunc:
		return d.decodeFunc()
	case tagBuiltin:
		name, err := d.readString()
		if err != nil {
			return nil, err
		}
		env := d.ip.NewGlobals()
		v, ok := env.Get(name)
		if !ok {
			return nil, fmt.Errorf("pickle: unknown builtin %q", name)
		}
		return v, nil
	case tagModule:
		name, err := d.readString()
		if err != nil {
			return nil, err
		}
		mod, err := d.ip.Host().ResolveModule(d.ip, name)
		if err != nil {
			return nil, fmt.Errorf("pickle: resolving module reference: %w", err)
		}
		return mod, nil
	case tagObject:
		class, err := d.readString()
		if err != nil {
			return nil, err
		}
		obj := minipy.NewObject(class)
		d.remember(obj)
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			k, err := d.readString()
			if err != nil {
				return nil, err
			}
			v, err := d.decode()
			if err != nil {
				return nil, err
			}
			obj.Attrs[k] = v
		}
		return obj, nil
	case tagRef:
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if id >= uint64(len(d.memo)) {
			return nil, fmt.Errorf("pickle: dangling memo reference %d", id)
		}
		return d.memo[id], nil
	}
	return nil, fmt.Errorf("pickle: unknown tag 0x%02x", tag)
}

func (d *decoder) decodeFunc() (minipy.Value, error) {
	name, err := d.readString()
	if err != nil {
		return nil, err
	}
	module, err := d.readString()
	if err != nil {
		return nil, err
	}
	lambdaByte, err := d.readByte()
	if err != nil {
		return nil, err
	}
	src, err := d.readString()
	if err != nil {
		return nil, err
	}
	spec := &minipy.RebuildSpec{
		Name:     name,
		Module:   module,
		IsLambda: lambdaByte == 1,
		Source:   src,
		Closure:  map[string]minipy.Value{},
		Globals:  map[string]minipy.Value{},
	}
	// Allocate the function shell and register it in the memo *before*
	// decoding its captures, so self-recursive and mutually recursive
	// references resolve to the final object.
	fn := &minipy.Func{}
	d.remember(fn)

	np, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < np; i++ {
		pname, err := d.readString()
		if err != nil {
			return nil, err
		}
		hasDef, err := d.readByte()
		if err != nil {
			return nil, err
		}
		info := minipy.ParamInfo{Name: pname}
		if hasDef == 1 {
			def, err := d.decode()
			if err != nil {
				return nil, err
			}
			info.HasDefault = true
			info.Default = def
		}
		spec.Params = append(spec.Params, info)
	}
	readMap := func(dst map[string]minipy.Value) error {
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			k, err := d.readString()
			if err != nil {
				return err
			}
			v, err := d.decode()
			if err != nil {
				return err
			}
			dst[k] = v
		}
		return nil
	}
	if err := readMap(spec.Closure); err != nil {
		return nil, err
	}
	if err := readMap(spec.Globals); err != nil {
		return nil, err
	}
	if err := minipy.RebuildFuncInto(d.ip, spec, fn); err != nil {
		return nil, err
	}
	return fn, nil
}
